bench/ablations.ml: Common Flextoe Host List Netsim Option Printf Sim
