bench/common.ml: Baselines Bytes Flextoe Host List Netsim Printf Sim
