bench/fig10.ml: Common Hashtbl Host List Sim
