bench/fig11.ml: Common Host List Printf Sim
