bench/fig12.ml: Common Host List Sim
