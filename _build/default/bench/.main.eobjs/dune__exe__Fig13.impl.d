bench/fig13.ml: Common Host List Sim
