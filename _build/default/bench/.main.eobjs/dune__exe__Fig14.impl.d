bench/fig14.ml: Common Flextoe Host List Sim
