bench/fig15.ml: Common Host List Printf Sim
