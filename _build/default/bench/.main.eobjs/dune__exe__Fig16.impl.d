bench/fig16.ml: Array Common Flextoe Host List Sim
