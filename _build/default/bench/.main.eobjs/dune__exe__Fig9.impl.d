bench/fig9.ml: Common Host List Sim
