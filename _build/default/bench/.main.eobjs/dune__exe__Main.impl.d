bench/main.ml: Ablations Array Common Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig9 List Microbench Printf String Sys Table1 Table2 Table3 Table4 Unix
