bench/main.mli:
