bench/microbench.ml: Analyze Array Bechamel Benchmark Bytes Common Flextoe Hashtbl Host Instance List Measure Netsim Printf Sim Staged Tcp Test Time Toolkit
