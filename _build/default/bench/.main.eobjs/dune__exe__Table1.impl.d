bench/table1.ml: Common Host List Option Printf Sim
