bench/table2.ml: Common Flextoe Host List Option Printf Sim
