bench/table3.ml: Common Flextoe Host List Printf Sim
