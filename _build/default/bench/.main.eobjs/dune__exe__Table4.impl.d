bench/table4.ml: Common Flextoe Host List Netsim Printf Sim
