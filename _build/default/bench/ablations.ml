(* Ablations beyond the paper's tables: the design choices DESIGN.md
   calls out that are not already covered by Table 3.

   1. Delayed ACKs: the paper notes FlexTOE acknowledges every
      incoming packet and that "implementing delayed ACKs would
      improve FlexTOE's performance further for large flows" (§5.2).
      We implemented them (data path counts, control plane flushes)
      and measure the prediction.
   2. Congestion-control algorithm: DCTCP vs TIMELY vs none under the
      Table 4 incast, exercising the control-plane framework's
      pluggability (§3.4). *)

open Common

let delayed_acks_row delayed =
  let config =
    { Flextoe.Config.default with Flextoe.Config.delayed_acks = delayed }
  in
  (* Bidirectional large RPCs: the case the paper predicts benefits. *)
  let w = mk_world () in
  let server = mk_node w FlexTOE ~config ip_server in
  let client = mk_node w FlexTOE ~config (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:250 ~handler:Host.Rpc.echo_handler;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
       ~server_ip:ip_server ~server_port:7 ~conns:1 ~pipeline:2
       ~req_bytes:1_048_576 ~stats ());
  measure w ~warmup:(Sim.Time.ms 20) ~window:(Sim.Time.ms 60) [ stats ];
  let gbps =
    float_of_int (Host.Rpc.Stats.ops stats * 1_048_576 * 8)
    /. Sim.Time.to_sec (Sim.Time.ms 60) /. 1e9
  in
  let st = Flextoe.Datapath.stats (Flextoe.datapath (Option.get server.flex)) in
  (gbps, st.Flextoe.Datapath.tx_acks, st.Flextoe.Datapath.tx_segments)

let cc_row cc =
  let config = { Flextoe.Config.default with Flextoe.Config.cc } in
  let w = mk_world () in
  let server = mk_node w FlexTOE ~app_cores:8 ~config ip_server in
  Netsim.Fabric.shape_port w.fabric server.port ~rate_gbps:10.
    ~queue_bytes:(512 * 1024) ~ecn_threshold_bytes:(64 * 1024);
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:200
    ~handler:(Host.Rpc.const_handler 32);
  for i = 0 to 3 do
    let client = mk_node w FlexTOE ~app_cores:8 ~config (ip_client i) in
    ignore
      (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
         ~server_ip:ip_server ~server_port:7 ~conns:16 ~pipeline:1
         ~req_bytes:65536 ~stats ())
  done;
  measure w ~warmup:(Sim.Time.ms 30) ~window:(Sim.Time.ms 100) [ stats ];
  let gbps =
    float_of_int (Host.Rpc.Stats.ops stats * 65536 * 8)
    /. Sim.Time.to_sec (Sim.Time.ms 100) /. 1e9
  in
  ( gbps,
    Host.Rpc.Stats.rtt_percentile_us stats 99.99 /. 1000.,
    Host.Rpc.Stats.jain_index stats )

let run () =
  header "Ablation: delayed ACKs (1MB bidirectional echo, 1 connection)";
  Printf.printf "%-24s %10s %12s %12s\n" "" "Gbps" "pure ACKs" "data segs";
  let g0, a0, d0 = delayed_acks_row false in
  Printf.printf "%-24s %10.2f %12d %12d\n" "ack every segment" g0 a0 d0;
  let g1, a1, d1 = delayed_acks_row true in
  Printf.printf "%-24s %10.2f %12d %12d\n" "delayed ACKs" g1 a1 d1;
  log_result ~experiment:"ablations"
    "delayed ACKs: %.2f -> %.2f Gbps (%+.0f%%), pure ACKs %d -> %d \
     (paper predicts an improvement for large flows)"
    g0 g1
    (100. *. ((g1 /. g0) -. 1.))
    a0 a1;
  header "Ablation: congestion-control algorithm under incast (64 conns)";
  Printf.printf "%-10s %10s %12s %8s\n" "" "Gbps" "99.99p (ms)" "JFI";
  List.iter
    (fun (name, cc) ->
      let g, tail, jfi = cc_row cc in
      Printf.printf "%-10s %10.2f %12.2f %8.2f\n" name g tail jfi;
      log_result ~experiment:"ablations" "cc=%s: %.2fG tail %.2fms JFI %.2f"
        name g tail jfi)
    [
      ("DCTCP", Flextoe.Config.Dctcp);
      ("TIMELY", Flextoe.Config.Timely);
      ("none", Flextoe.Config.Cc_none);
    ]
