(* Figure 10: latency of different server/client stack combinations.

   A single-threaded memcached-style RTT benchmark run for all 16
   combinations. Paper: FlexTOE provides the lowest median and tail
   latency across combinations, though its minimum latency can be
   higher (wimpy FPCs + pipelining). *)

open Common

let measure_combo server_stack client_stack =
  let w = mk_world () in
  let server = mk_node w server_stack ip_server in
  let client = mk_node w client_stack (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  ignore (Host.App_kv.server ~endpoint:server.ep ~port:11211 ~app_cycles:890 ());
  Host.App_kv.client ~endpoint:client.ep ~engine:w.engine ~server_ip:ip_server
    ~server_port:11211 ~conns:1 ~pipeline:1 ~key_bytes:32 ~value_bytes:32
    ~set_ratio:0.1 ~stats ();
  measure w ~warmup:(Sim.Time.ms 10) ~window:(Sim.Time.ms 100) [ stats ];
  ( Host.Rpc.Stats.rtt_percentile_us stats 50.,
    Host.Rpc.Stats.rtt_percentile_us stats 99. )

let run () =
  header "Figure 10: RTT by server/client stack combination (median us)";
  columns (List.map (fun s -> stack_name s ^ " cl") all_stacks);
  let medians = Hashtbl.create 16 in
  List.iter
    (fun server ->
      let vals =
        List.map
          (fun client ->
            let p50, p99 = measure_combo server client in
            Hashtbl.replace medians (server, client) (p50, p99);
            p50)
          all_stacks
      in
      row_of_floats (stack_name server ^ " sv") vals)
    all_stacks;
  subheader "99th percentile (us)";
  columns (List.map (fun s -> stack_name s ^ " cl") all_stacks);
  List.iter
    (fun server ->
      let vals =
        List.map
          (fun client -> snd (Hashtbl.find medians (server, client)))
          all_stacks
      in
      row_of_floats (stack_name server ^ " sv") vals)
    all_stacks;
  let flex_flex = fst (Hashtbl.find medians (FlexTOE, FlexTOE)) in
  let linux_linux = fst (Hashtbl.find medians (Linux, Linux)) in
  log_result ~experiment:"fig10"
    "FlexTOE/FlexTOE median %.1f us vs Linux/Linux %.1f us (paper: Linux \
     at least 5x worse than the kernel-bypass stacks)"
    flex_flex linux_linux;
  note "paper: FlexTOE lowest median+tail across combinations; Linux >= 5x."
