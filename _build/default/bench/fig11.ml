(* Figure 11: RPC throughput for a saturated single-threaded server.

   128 connections from multiple clients keep the server saturated;
   the server simulates 250 or 1000 cycles of application work per
   RPC. RX: clients send size-S requests and the server answers 32 B.
   TX: clients send 32 B requests and the server answers size-S.

   Paper: FlexTOE up to 4x Linux / 5.3x Chelsio on RX at 250 cycles;
   TAS and FlexTOE track closely (the single application core is the
   bottleneck for both). *)

open Common

let sizes = [ 64; 256; 1024; 2048 ]

let measure_point stack ~dir ~app_cycles ~size =
  let w = mk_world () in
  let server = mk_node w stack ip_server in
  let stats = Host.Rpc.Stats.create w.engine in
  let handler =
    match dir with
    | `Rx -> Host.Rpc.const_handler 32
    | `Tx -> Host.Rpc.const_handler size
  in
  let req_bytes = match dir with `Rx -> size | `Tx -> 32 in
  start_server server ~port:7 ~app_cycles ~handler;
  for i = 0 to 3 do
    let client = mk_node w FlexTOE ~app_cores:8 (ip_client i) in
    ignore
      (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
         ~server_ip:ip_server ~server_port:7 ~conns:32 ~pipeline:4
         ~req_bytes ~stats ())
  done;
  measure w ~warmup:(Sim.Time.ms 6) ~window:(Sim.Time.ms 12) [ stats ];
  Host.Rpc.Stats.mops stats

let sweep ~dir ~app_cycles =
  subheader
    (Printf.sprintf "%s, %d cycles/RPC (mOps vs RPC bytes)"
       (match dir with `Rx -> "RX (server receives)"
        | `Tx -> "TX (server sends)")
       app_cycles);
  columns (List.map string_of_int sizes);
  List.map
    (fun stack ->
      let vals =
        List.map (fun size -> measure_point stack ~dir ~app_cycles ~size)
          sizes
      in
      row_of_floats (stack_name stack) vals;
      (stack, vals))
    all_stacks

let run () =
  header "Figure 11: RPC throughput for saturated server";
  let rx250 = sweep ~dir:`Rx ~app_cycles:250 in
  let _ = sweep ~dir:`Tx ~app_cycles:250 in
  let _ = sweep ~dir:`Rx ~app_cycles:1000 in
  let _ = sweep ~dir:`Tx ~app_cycles:1000 in
  let at64 stack = List.nth (List.assoc stack rx250) 0 in
  log_result ~experiment:"fig11"
    "RX 250c 64B: FlexTOE %.2f mOps = %.1fx Linux, %.1fx Chelsio, %.2fx TAS \
     (paper: 4x Linux, 5.3x Chelsio, ~1x TAS)"
    (at64 FlexTOE)
    (at64 FlexTOE /. at64 Linux)
    (at64 FlexTOE /. at64 Chelsio)
    (at64 FlexTOE /. at64 TAS);
  note "paper: FlexTOE ~4x Linux and ~5.3x Chelsio receiving at 250 cycles;"
  ;
  note "TAS and FlexTOE track closely (both saturate the app core)."
