(* Figure 12: single-RPC RTT, median / 99p / 99.99p, vs message size.

   One connection, one RPC in flight, echo server. Paper: Linux's
   median is >= 5x everyone else; FlexTOE's median (~20 us) is 1.4x
   Chelsio's and 1.25x TAS's for small messages, but FlexTOE's tail is
   up to 3.2x smaller than Chelsio's, and at 2 KB (multi-segment)
   FlexTOE beats TAS by 22% median / 50% tail thanks to parallel
   segment processing. *)

open Common

let sizes = [ 64; 256; 1024; 2048 ]

let measure_point stack size =
  let w = mk_world () in
  let server = mk_node w stack ip_server in
  let client = mk_node w stack (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:250 ~handler:Host.Rpc.echo_handler;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
       ~server_ip:ip_server ~server_port:7 ~conns:1 ~pipeline:1
       ~req_bytes:size ~stats ());
  measure w ~warmup:(Sim.Time.ms 10) ~window:(Sim.Time.ms 300) [ stats ];
  ( Host.Rpc.Stats.rtt_percentile_us stats 50.,
    Host.Rpc.Stats.rtt_percentile_us stats 99.,
    Host.Rpc.Stats.rtt_percentile_us stats 99.99 )

let run () =
  header "Figure 12: RPC RTT percentiles vs message size (us)";
  let results =
    List.concat_map
      (fun stack ->
        List.map
          (fun size ->
            let r = measure_point stack size in
            ((stack, size), r))
          sizes)
      all_stacks
  in
  List.iter
    (fun (label, pick) ->
      subheader label;
      columns (List.map string_of_int sizes);
      List.iter
        (fun stack ->
          row_of_floats (stack_name stack)
            (List.map (fun s -> pick (List.assoc (stack, s) results)) sizes))
        all_stacks)
    [
      ("median", fun (a, _, _) -> a);
      ("99p", fun (_, b, _) -> b);
      ("99.99p", fun (_, _, c) -> c);
    ];
  let p9999 stack size =
    let _, _, v = List.assoc (stack, size) results in
    v
  in
  let p50 stack size =
    let v, _, _ = List.assoc (stack, size) results in
    v
  in
  log_result ~experiment:"fig12"
    "2KB: FlexTOE tail %.0f us vs Chelsio %.0f us (%.1fx, paper 3.2x) and \
     TAS %.0f us (%.1fx, paper 2x); medians F/T/C/L = %.0f/%.0f/%.0f/%.0f us"
    (p9999 FlexTOE 2048) (p9999 Chelsio 2048)
    (p9999 Chelsio 2048 /. p9999 FlexTOE 2048)
    (p9999 TAS 2048)
    (p9999 TAS 2048 /. p9999 FlexTOE 2048)
    (p50 FlexTOE 2048) (p50 TAS 2048) (p50 Chelsio 2048) (p50 Linux 2048);
  note "paper: FlexTOE 99.99p 3.2x below Chelsio, 50%% below TAS at 2KB;";
  note "Linux median at least 5x the kernel-bypass stacks."
