(* Figure 13: per-connection throughput for large RPCs.

   A single connection carries large messages. (a) the server replies
   32 B (unidirectional streaming); (b) the server echoes the message
   (bidirectional). Paper: Chelsio wins (a) by ~20% (100G ASIC
   optimised for streaming) but loses (b) by 20% to FlexTOE, which
   parallelises per-connection processing; FlexTOE acks every segment,
   so bidirectional flows quadruple its packet load. *)

open Common

let sizes = [ 65_536; 262_144; 1_048_576; 4_194_304 ]

let measure_point stack ~echo ~size =
  let w = mk_world () in
  let server = mk_node w stack ip_server in
  let client = mk_node w stack (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  let handler =
    if echo then Host.Rpc.echo_handler else Host.Rpc.const_handler 32
  in
  start_server server ~port:7 ~app_cycles:250 ~handler;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
       ~server_ip:ip_server ~server_port:7 ~conns:1 ~pipeline:2
       ~req_bytes:size ~stats ());
  measure w ~warmup:(Sim.Time.ms 12) ~window:(Sim.Time.ms 50) [ stats ];
  (* Goodput in the request direction. *)
  let d = Sim.Time.to_sec (Sim.Time.ms 50) in
  float_of_int (Host.Rpc.Stats.ops stats * size * 8) /. d /. 1e9

let sweep ~echo =
  subheader
    (if echo then "(b) echoed response (Gbps vs RPC bytes)"
     else "(a) 32B response (Gbps vs RPC bytes)");
  columns (List.map (fun s -> string_of_int (s / 1024) ^ "K") sizes);
  List.map
    (fun stack ->
      let vals = List.map (fun size -> measure_point stack ~echo ~size) sizes in
      row_of_floats (stack_name stack) vals;
      (stack, vals))
    all_stacks

let run () =
  header "Figure 13: large-RPC per-connection throughput";
  let a = sweep ~echo:false in
  let b = sweep ~echo:true in
  let last l s = List.nth (List.assoc s l) (List.length sizes - 1) in
  log_result ~experiment:"fig13"
    "4MB streaming: Chelsio %.1f vs FlexTOE %.1f Gbps (paper: Chelsio +20%%); \
     4MB echo: FlexTOE %.1f vs Chelsio %.1f Gbps (paper: FlexTOE +20%%)"
    (last a Chelsio) (last a FlexTOE) (last b FlexTOE) (last b Chelsio);
  note "paper: Chelsio ~20%% ahead unidirectionally, ~20%% behind on echo."
