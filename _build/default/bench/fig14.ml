(* Figure 14: connection scalability.

   An increasing number of client connections to a multi-threaded echo
   server, each with a single 64 B RPC in flight — worst case for
   per-connection state caching (a cache miss at every stage for every
   segment). Paper: FlexTOE 3.3x Linux up to 2K connections (the CLS
   cache capacity, 512 x 4 islands), declines ~24% by 8K and plateaus
   (EMEM cache); TAS does ~1.5x FlexTOE using the large host LLC;
   Linux declines sharply; Chelsio is dominated by epoll overhead. *)

open Common

let conn_counts = [ 64; 256; 1024; 2048; 4096; 8192 ]

let measure_point stack conns =
  let w = mk_world () in
  (* Congestion control is irrelevant (one tiny RPC in flight) and a
     per-flow control loop over 16K flows only slows the simulation. *)
  let config =
    { Flextoe.Config.default with Flextoe.Config.cc = Flextoe.Config.Cc_none;
      cc_interval = Sim.Time.ms 10 }
  in
  let server = mk_node w stack ~app_cores:8 ~config ip_server in
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:250 ~handler:Host.Rpc.echo_handler;
  (* Five client machines, as in the testbed. *)
  let per_client = max 1 (conns / 5) in
  for i = 0 to 4 do
    let client = mk_node w FlexTOE ~app_cores:8 ~config (ip_client i) in
    ignore
      (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
         ~server_ip:ip_server ~server_port:7 ~conns:per_client ~pipeline:1
         ~req_bytes:64 ~stats ~req_cycles:200 ())
  done;
  (* Connection setup takes longer at high counts. *)
  let setup = Sim.Time.ms (8 + (conns / 400)) in
  measure w ~warmup:setup ~window:(Sim.Time.ms 15) [ stats ];
  Host.Rpc.Stats.mops stats

let run () =
  header "Figure 14: connection scalability (mOps vs #connections)";
  columns (List.map string_of_int conn_counts);
  let results =
    List.map
      (fun stack ->
        let vals = List.map (measure_point stack) conn_counts in
        row_of_floats (stack_name stack) vals;
        (stack, vals))
      all_stacks
  in
  let v stack i = List.nth (List.assoc stack results) i in
  log_result ~experiment:"fig14"
    "2K conns: FlexTOE %.2f = %.1fx Linux (paper 3.3x), TAS/FlexTOE %.2fx \
     (paper 1.5x); FlexTOE 8K/2K = %.2f (paper ~0.76, the 24%% decline)"
    (v FlexTOE 3)
    (v FlexTOE 3 /. v Linux 3)
    (v TAS 3 /. v FlexTOE 3)
    (v FlexTOE 5 /. v FlexTOE 3);
  note "paper: FlexTOE caches 2K conns in CLS; beyond that the EMEM";
  note "cache strains, -24%% at 8K then plateau; TAS ~1.5x (host LLC)."
