(* Figure 16: per-connection throughput distribution at line rate.

   Bulk flows between two nodes; the flow scheduler (Carousel) should
   keep the distribution tight. Paper: FlexTOE's median tracks the
   fair share with the 1st percentile at 0.67x of it and JFI 0.98 at
   2K connections; Linux degrades beyond 256 connections (JFI 0.36 at
   2K), where its median falls below FlexTOE's 1st percentile. *)

open Common

let conn_counts = [ 16; 64; 256; 1024; 2048 ]

let measure_point stack conns =
  let w = mk_world () in
  let config =
    { Flextoe.Config.default with Flextoe.Config.cc = Flextoe.Config.Cc_none;
      cc_interval = Sim.Time.ms 10 }
  in
  let server = mk_node w stack ~app_cores:8 ~config ip_server in
  let client = mk_node w stack ~app_cores:8 ~config (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  start_sink server ~port:7 ~stats;
  start_bulk_sources client ~engine:w.engine ~server_ip:ip_server
    ~server_port:7 ~conns;
  let setup = Sim.Time.ms (10 + (conns / 100)) in
  measure w ~warmup:setup ~window:(Sim.Time.ms 40) [ stats ];
  let tps = Host.Rpc.Stats.conn_throughputs stats in
  Array.sort compare tps;
  let med = Sim.Stats.percentile_of_sorted tps 50. in
  let p1 = Sim.Stats.percentile_of_sorted tps 1. in
  let mean = Sim.Stats.mean tps in
  (med, p1, Sim.Stats.jain_fairness tps, mean)

let run () =
  header "Figure 16: fairness of bulk flows at line rate";
  let results =
    List.concat_map
      (fun stack ->
        List.map (fun c -> ((stack, c), measure_point stack c)) conn_counts)
      [ FlexTOE; Linux ]
  in
  List.iter
    (fun (label, pick) ->
      subheader label;
      columns (List.map string_of_int conn_counts);
      List.iter
        (fun stack ->
          row_of_floats (stack_name stack)
            (List.map (fun c -> pick (List.assoc (stack, c) results))
               conn_counts))
        [ FlexTOE; Linux ])
    [
      ("median / fair share", fun (m, _, _, mean) ->
        if mean > 0. then m /. mean else 0.);
      ("p1 / median", fun (m, p1, _, _) -> if m > 0. then p1 /. m else 0.);
      ("Jain fairness index", fun (_, _, j, _) -> j);
    ];
  let _, _, jf, _ = List.assoc (FlexTOE, 2048) results in
  let _, _, jl, _ = List.assoc (Linux, 2048) results in
  let mf, p1f, _, _ = List.assoc (FlexTOE, 2048) results in
  log_result ~experiment:"fig16"
    "2K conns: JFI FlexTOE %.2f (paper 0.98) vs Linux %.2f (paper 0.36); \
     FlexTOE p1/median %.2f (paper 0.67)"
    jf jl
    (if mf > 0. then p1f /. mf else 0.);
  note "paper: FlexTOE JFI 0.98 and p1 = 0.67x median at 2K conns;";
  note "Linux JFI collapses to 0.36 beyond 256 connections."
