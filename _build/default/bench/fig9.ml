(* Figure 9: Memcached throughput scalability vs server cores.

   Paper: FlexTOE reaches up to 1.6x TAS, 4.9x Chelsio and 5.5x Linux;
   FlexTOE and TAS scale with per-core context queues while Linux and
   Chelsio are limited by kernel locking; the Agilio CX becomes the
   bottleneck around 12 host cores. *)

open Common

let core_counts = [ 1; 2; 4; 8; 12; 16 ]

let measure_point stack cores =
  let w = mk_world () in
  let server = mk_node w stack ~app_cores:cores ip_server in
  let stats = Host.Rpc.Stats.create w.engine in
  ignore (Host.App_kv.server ~endpoint:server.ep ~port:11211 ~app_cycles:890 ());
  (* Several strong client machines, as in the testbed. *)
  for i = 0 to 3 do
    let client = mk_node w FlexTOE ~app_cores:8 (ip_client i) in
    Host.App_kv.client ~endpoint:client.ep ~engine:w.engine
      ~server_ip:ip_server ~server_port:11211 ~conns:(8 * cores) ~pipeline:8
      ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.1 ~stats ()
  done;
  measure w ~warmup:(Sim.Time.ms 8) ~window:(Sim.Time.ms 15) [ stats ];
  Host.Rpc.Stats.mops stats

let run () =
  header "Figure 9: Memcached throughput scalability (mOps vs cores)";
  columns (List.map string_of_int core_counts);
  let results =
    List.map
      (fun stack ->
        let vals = List.map (measure_point stack) core_counts in
        row_of_floats (stack_name stack) vals;
        (stack, vals))
      all_stacks
  in
  let at12 stack = List.nth (List.assoc stack results) 4 in
  log_result ~experiment:"fig9"
    "at 12 cores: FlexTOE %.2f mOps = %.1fx TAS, %.1fx Chelsio, %.1fx Linux \
     (paper: 1.6x / 4.9x / 5.5x)"
    (at12 FlexTOE)
    (at12 FlexTOE /. at12 TAS)
    (at12 FlexTOE /. at12 Chelsio)
    (at12 FlexTOE /. at12 Linux);
  note "paper: FlexTOE up to 1.6x TAS, 4.9x Chelsio, 5.5x Linux;";
  note "NIC compute becomes the bottleneck at high core counts."
