(* Bechamel micro-benchmarks of the hot data structures underneath the
   experiments: wire codec + checksums, reassembly, the sequencer, the
   eBPF VM, the event queue, and the end-to-end simulator itself.
   These quantify the cost of the simulation substrate, not FlexTOE's
   modelled performance. *)

open Bechamel
open Toolkit

let test_checksum =
  let buf = Bytes.make 1448 'x' in
  Test.make ~name:"checksum/internet-1448B" (Staged.stage (fun () ->
      ignore (Tcp.Checksum.internet buf ~off:0 ~len:1448)))

let test_crc32 =
  let buf = Bytes.make 64 'x' in
  Test.make ~name:"checksum/crc32-64B" (Staged.stage (fun () ->
      ignore (Tcp.Checksum.crc32 buf ~off:0 ~len:64)))

let test_wire_roundtrip =
  let seg =
    Tcp.Segment.make ~payload:(Bytes.make 256 'p') ~src_ip:1 ~dst_ip:2
      ~src_port:3 ~dst_port:4 ~seq:5 ~ack_seq:6
      ~options:{ Tcp.Segment.mss = None; ts = Some (1, 2) }
      ()
  in
  let frame = Tcp.Segment.make_frame ~src_mac:1 ~dst_mac:2 seg in
  Test.make ~name:"wire/encode+decode-256B" (Staged.stage (fun () ->
      match Tcp.Wire.decode (Tcp.Wire.encode frame) with
      | Ok _ -> ()
      | Error _ -> assert false))

let test_reassembly =
  Test.make ~name:"reassembly/in-order-window" (Staged.stage (fun () ->
      let r = Tcp.Reassembly.create ~next:0 in
      for i = 0 to 63 do
        ignore
          (Tcp.Reassembly.process r ~seq:(i * 1448) ~len:1448
             ~window:(1 lsl 20))
      done))

let test_sequencer =
  Test.make ~name:"sequencer/64-reversed" (Staged.stage (fun () ->
      let s = Flextoe.Sequencer.create ~name:"b" ~release:ignore in
      let seqs = Array.init 64 (fun _ -> Flextoe.Sequencer.next_seq s) in
      for i = 63 downto 0 do
        Flextoe.Sequencer.submit s ~seq:seqs.(i) ()
      done))

let test_ebpf_splice =
  let prog =
    match Flextoe.Ebpf.load (Flextoe.Ext_splice.program ()) with
    | Ok p -> p
    | Error _ -> assert false
  in
  let map =
    Flextoe.Bpf_map.create Flextoe.Bpf_map.Hash_map ~key_size:12
      ~value_size:Flextoe.Ext_splice.value_size ~max_entries:64
  in
  let seg =
    Tcp.Segment.make ~flags:Tcp.Segment.flags_ack
      ~payload:(Bytes.make 64 'q') ~src_ip:1 ~dst_ip:2 ~src_port:3
      ~dst_port:4 ~seq:5 ~ack_seq:6 ()
  in
  let packet =
    Tcp.Wire.encode (Tcp.Segment.make_frame ~src_mac:1 ~dst_mac:2 seg)
  in
  Test.make ~name:"ebpf/splice-program-miss" (Staged.stage (fun () ->
      ignore (Flextoe.Ebpf.run prog ~maps:[| map |] ~now_ns:0L ~packet)))

let test_event_queue =
  Test.make ~name:"sim/event-queue-256" (Staged.stage (fun () ->
      let q = Sim.Event_queue.create () in
      for i = 0 to 255 do
        Sim.Event_queue.push q ((i * 7919) mod 1024) i
      done;
      while not (Sim.Event_queue.is_empty q) do
        ignore (Sim.Event_queue.pop q)
      done))

let test_end_to_end_rpc =
  Test.make ~name:"sim/flextoe-1ms-echo" (Staged.stage (fun () ->
      let engine = Sim.Engine.create () in
      let fabric = Netsim.Fabric.create engine () in
      let server = Flextoe.create_node engine ~fabric ~ip:0x0A000001 () in
      let client = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in
      let stats = Host.Rpc.Stats.create engine in
      Host.Rpc.server ~endpoint:(Flextoe.endpoint server) ~port:7
        ~app_cycles:100 ~handler:Host.Rpc.echo_handler ();
      ignore
        (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint client)
           ~engine ~server_ip:0x0A000001 ~server_port:7 ~conns:4 ~pipeline:2
           ~req_bytes:64 ~stats ());
      Sim.Engine.run ~until:(Sim.Time.ms 1) engine))

let benchmarks =
  [
    test_checksum;
    test_crc32;
    test_wire_roundtrip;
    test_reassembly;
    test_sequencer;
    test_ebpf_splice;
    test_event_queue;
    test_end_to_end_rpc;
  ]

let run () =
  Common.header "Microbenchmarks (Bechamel; simulator substrate costs)";
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let results =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false
                       ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-32s %12.1f ns/run\n" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n" name)
        results)
    benchmarks
