(* Table 1: per-request CPU impact of TCP processing.

   A single-threaded memcached-style server saturated by closed-loop
   clients (32B keys and values); we report host cycles per
   request-response pair, split by module, for each stack. The
   instruction/IPC/Icache rows of the paper's table are
   microarchitectural and out of scope for the simulator. *)

open Common

(* Paper's Table 1, kilocycles per request. *)
let paper =
  [
    (Linux, (3.37, 2.70, 1.37, 3.61, 11.04));
    (Chelsio, (1.68, 2.61, 1.31, 3.28, 8.89));
    (TAS, (1.62, 0.79, 0.85, 0.09, 3.34));
    (FlexTOE, (0.00, 0.74, 0.89, 0.04, 1.67));
  ]

let app_cycles = 890  (* memcached per request, from the paper *)

let measure_stack stack =
  let w = mk_world () in
  let server = mk_node w stack ~app_cores:1 ip_server in
  let client = mk_node w FlexTOE ~app_cores:4 (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  let _kv =
    Host.App_kv.server ~endpoint:server.ep ~port:11211
      ~app_cycles ()
  in
  Host.App_kv.client ~endpoint:client.ep ~engine:w.engine ~server_ip:ip_server
    ~server_port:11211 ~conns:16 ~pipeline:8 ~key_bytes:32 ~value_bytes:32
    ~set_ratio:0.1 ~stats ();
  (* Reset accounting after warmup so cycles match the window's ops. *)
  Sim.Engine.run ~until:(Sim.Time.ms 20) w.engine;
  let base = Host.Host_cpu.cycles_by_category server.cpu in
  measure w ~warmup:0 ~window:(Sim.Time.ms 50) [ stats ];
  let after = Host.Host_cpu.cycles_by_category server.cpu in
  let delta cat =
    let get l = Option.value ~default:0 (List.assoc_opt cat l) in
    get after - get base
  in
  let ops = max 1 (Host.Rpc.Stats.ops stats) in
  let kc cat = float_of_int (delta cat) /. float_of_int ops /. 1000. in
  let stack_kc = kc "stack" in
  let sockets_kc = kc "sockets" in
  let app_kc = kc "app" in
  let other_kc = kc "notify" +. kc "other" +. kc "cp" in
  (stack_kc, sockets_kc, app_kc, other_kc, Host.Rpc.Stats.mops stats)

let run () =
  header "Table 1: per-request CPU impact of TCP processing (kc/request)";
  columns [ "stack+drv"; "sockets"; "app"; "other"; "total"; "mOps" ];
  List.iter
    (fun stack ->
      let st, so, ap, ot, mops = measure_stack stack in
      let total = st +. so +. ap +. ot in
      row_of_floats (stack_name stack) [ st; so; ap; ot; total; mops ];
      let p_st, p_so, p_ap, p_ot, p_tot = List.assoc stack paper in
      row_of_strings "  (paper)"
        (List.map (Printf.sprintf "%.2f") [ p_st; p_so; p_ap; p_ot; p_tot ]
        @ [ "-" ]);
      log_result ~experiment:"table1"
        "%s: measured total %.2f kc/req (paper %.2f); stack %.2f (paper %.2f)"
        (stack_name stack) total p_tot st p_st)
    all_stacks;
  note "FlexTOE eliminates host TCP-stack cycles entirely;";
  note "instruction/IPC/Icache rows are microarchitectural (not modelled)."
