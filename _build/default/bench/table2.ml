(* Table 2: data-path throughput with flexible extensions.

   64 B echo against a many-core server so the data path, not the
   application, dominates. Builds: baseline; all 48 tracepoints
   enabled; tcpdump-style capture of every packet; XDP null module;
   XDP vlan-strip module. Paper: 11.35 mOps baseline, -24% with
   profiling, -43% with tcpdump, -4% with null XDP. *)

open Common

type build = Base | Tracing | Tcpdump | Xdp_null | Xdp_vlan

let builds = [ Base; Tracing; Tcpdump; Xdp_null; Xdp_vlan ]

let build_name = function
  | Base -> "Baseline FlexTOE"
  | Tracing -> "Statistics and profiling"
  | Tcpdump -> "tcpdump (no filter)"
  | Xdp_null -> "XDP (null)"
  | Xdp_vlan -> "XDP (vlan-strip)"

let paper = [ (Base, 11.35); (Tracing, 8.67); (Tcpdump, 6.52);
              (Xdp_null, 10.87); (Xdp_vlan, 10.83) ]

let measure_build build =
  let w = mk_world () in
  let server = mk_node w FlexTOE ~app_cores:12 ip_server in
  let dp = Flextoe.datapath (Option.get server.flex) in
  (match build with
  | Base -> ()
  | Tracing -> ignore (Sim.Trace.enable (Flextoe.Datapath.traces dp) ())
  | Tcpdump ->
      let pcap =
        Flextoe.Ext_pcap.create w.engine ~snaplen:96 ~limit:4096
          ~filter:Flextoe.Ext_pcap.All ()
      in
      Flextoe.Ext_pcap.attach pcap dp
  | Xdp_null ->
      let x =
        Flextoe.Xdp.create w.engine ~program:(Flextoe.Xdp.null_program ())
          ~maps:[||]
      in
      Flextoe.Xdp.install x dp
  | Xdp_vlan ->
      let v = Flextoe.Ext_vlan.create w.engine in
      Flextoe.Ext_vlan.install v dp);
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:100 ~handler:Host.Rpc.echo_handler;
  for i = 0 to 3 do
    let client = mk_node w FlexTOE ~app_cores:8 (ip_client i) in
    ignore
      (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
         ~server_ip:ip_server ~server_port:7 ~conns:32 ~pipeline:8
         ~req_bytes:64 ~stats ~req_cycles:150 ())
  done;
  measure w ~warmup:(Sim.Time.ms 8) ~window:(Sim.Time.ms 15) [ stats ];
  Host.Rpc.Stats.mops stats

let run () =
  header "Table 2: performance with flexible extensions";
  columns [ "mOps"; "vs base"; "paper"; "p vs base" ];
  let base = measure_build Base in
  let paper_base = List.assoc Base paper in
  List.iter
    (fun build ->
      let mops = if build = Base then base else measure_build build in
      let p = List.assoc build paper in
      Printf.printf "%-26s %8.2f %9.2f %9.2f %9.2f\n" (build_name build)
        mops (mops /. base) p (p /. paper_base);
      if build <> Base then
        log_result ~experiment:"table2" "%s: %.0f%% of baseline (paper %.0f%%)"
          (build_name build)
          (100. *. mops /. base)
          (100. *. p /. paper_base))
    builds;
  note "paper: profiling -24%%, tcpdump -43%%, null XDP -4%%."
