(* Table 3: the data-path parallelism ablation.

   64-connection echo with one 2 KB RPC in flight per connection
   (exercising both intra- and inter-connection parallelism), as the
   server's data path gains each level of parallelism:

     baseline (run to completion) -> + pipelining -> + intra-FPC
     hardware threads -> + replicated pre/post-processing ->
     + flow-group islands.

   Paper: 79 mbps -> 46x -> 103x -> 140x -> 286x, with 50p/99.99p
   latency falling from 1179/6929 us to 46/58 us. *)

open Common

let rows =
  [
    ("Baseline (run-to-completion)", Flextoe.Config.t3_baseline, (1.0, 1179., 6929.));
    ("+ Pipelining", Flextoe.Config.t3_pipelined, (46., 183., 684.));
    ("+ Intra-FPC parallelism", Flextoe.Config.t3_threads, (103., 128., 148.));
    ("+ Replicated pre/post", Flextoe.Config.t3_replicated, (140., 94., 106.));
    ("+ Flow-group islands", Flextoe.Config.t3_flow_groups, (286., 46., 58.));
  ]

let measure_row parallelism =
  let w = mk_world () in
  let config = Flextoe.Config.with_parallelism Flextoe.Config.default
      parallelism in
  let server = mk_node w FlexTOE ~app_cores:8 ~config ip_server in
  let client = mk_node w FlexTOE ~app_cores:8 (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:100 ~handler:Host.Rpc.echo_handler;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
       ~server_ip:ip_server ~server_port:7 ~conns:64 ~pipeline:1
       ~req_bytes:2048 ~stats ());
  measure w ~warmup:(Sim.Time.ms 20) ~window:(Sim.Time.ms 40) [ stats ];
  (* Throughput as echoed application bytes, both directions. *)
  let mbps = 2. *. Host.Rpc.Stats.gbps stats *. 1000. in
  ( mbps,
    Host.Rpc.Stats.rtt_percentile_us stats 50.,
    Host.Rpc.Stats.rtt_percentile_us stats 99.99 )

let run () =
  header "Table 3: data-path parallelism breakdown (64 conns, 2KB echo)";
  Printf.printf "%-30s %10s %6s %9s %10s  (paper x, 50p, 99.99p)\n" ""
    "mbps" "x" "50p us" "99.99p us";
  let base = ref 1. in
  List.iter
    (fun (name, par, (px, p50, p9999)) ->
      let mbps, m50, m9999 = measure_row par in
      if !base = 1. then base := mbps;
      let factor = mbps /. !base in
      Printf.printf "%-30s %10.1f %6.1f %9.1f %10.1f  (%gx, %g, %g)\n" name
        mbps factor m50 m9999 px p50 p9999;
      log_result ~experiment:"table3" "%s: %.0f mbps (%.0fx), 50p %.0fus"
        name mbps factor m50)
    rows;
  note "paper: each level is necessary; cumulative gain 286x with the";
  note "largest single jump from pipelining (46x)."
