(* Table 4: congestion control under incast.

   Clients on four machines send 64 KB requests; the server answers
   32 B. The switch port toward the server is shaped to 10 Gbps with a
   WRED-style queue that marks ECN and tail-drops when full. With the
   control plane's DCTCP enabled, FlexTOE holds the shaped line rate
   with low tails and high fairness; disabled, bursts overflow the
   switch queue, inflating the 99.99p latency ~5x and halving JFI. *)

open Common

let conn_counts = [ 16; 64; 128 ]

let paper =
  [ (16, (9.51, 9.47, 5.98, 11.58, 0.98, 0.95));
    (64, (9.51, 9.23, 10.75, 44.39, 0.96, 0.73));
    (128, (9.48, 8.96, 13.74, 64.25, 0.99, 0.53)) ]

let measure_point ~cc conns =
  let w = mk_world () in
  let config =
    {
      Flextoe.Config.default with
      Flextoe.Config.cc =
        (if cc then Flextoe.Config.Dctcp else Flextoe.Config.Cc_none);
    }
  in
  let server = mk_node w FlexTOE ~app_cores:8 ~config ip_server in
  (* Shape the path toward the server to 10G; 512KB switch buffer,
     ECN marking above 64KB occupancy. *)
  Netsim.Fabric.shape_port w.fabric server.port ~rate_gbps:10.
    ~queue_bytes:(512 * 1024) ~ecn_threshold_bytes:(64 * 1024);
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:200
    ~handler:(Host.Rpc.const_handler 32);
  let per_client = max 1 (conns / 4) in
  for i = 0 to 3 do
    let client = mk_node w FlexTOE ~app_cores:8 ~config (ip_client i) in
    ignore
      (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
         ~server_ip:ip_server ~server_port:7 ~conns:per_client ~pipeline:1
         ~req_bytes:65536 ~stats ())
  done;
  measure w ~warmup:(Sim.Time.ms 40) ~window:(Sim.Time.ms 160) [ stats ];
  (* Goodput of the request direction (the shaped direction). *)
  let gbps =
    float_of_int (Host.Rpc.Stats.ops stats * 65536 * 8)
    /. Sim.Time.to_sec (Sim.Time.ms 160)
    /. 1e9
  in
  ( gbps,
    Host.Rpc.Stats.rtt_percentile_us stats 99.99 /. 1000.,
    Host.Rpc.Stats.jain_index stats )

let run () =
  header "Table 4: FlexTOE congestion control under incast (10G shaped)";
  Printf.printf "%8s | %8s %8s | %9s %9s | %6s %6s   (paper)\n" "#conns"
    "Tpt on" "Tpt off" "99.99 on" "99.99 off" "JFI on" "JFIoff";
  List.iter
    (fun conns ->
      let g_on, l_on, j_on = measure_point ~cc:true conns in
      let g_off, l_off, j_off = measure_point ~cc:false conns in
      let p_gon, p_goff, p_lon, p_loff, p_jon, p_joff =
        List.assoc conns paper
      in
      Printf.printf
        "%8d | %8.2f %8.2f | %9.2f %9.2f | %6.2f %6.2f   (%.2f/%.2f G, \
         %.1f/%.1f ms, %.2f/%.2f)\n"
        conns g_on g_off l_on l_off j_on j_off p_gon p_goff p_lon p_loff
        p_jon p_joff;
      log_result ~experiment:"table4"
        "%d conns: cc-on %.2fG tail %.1fms JFI %.2f; cc-off %.2fG tail \
         %.1fms JFI %.2f"
        conns g_on l_on j_on g_off l_off j_off)
    conn_counts;
  note "paper: cc holds ~9.5G with ms-scale tails and JFI ~0.98;";
  note "disabling cc inflates the tail up to ~5x and halves fairness."
