examples/classifier_xdp.ml: Flextoe Host Netsim Printf Sim
