examples/classifier_xdp.mli:
