examples/firewall_xdp.ml: Flextoe Host Netsim Printf Sim
