examples/firewall_xdp.mli:
