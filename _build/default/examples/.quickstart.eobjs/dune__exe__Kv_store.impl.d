examples/kv_store.ml: Baselines Flextoe Host List Netsim Option Printf Sim
