examples/loss_recovery.ml: Bytes Flextoe Host List Netsim Printf Sim
