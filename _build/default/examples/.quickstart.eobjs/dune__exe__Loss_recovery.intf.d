examples/loss_recovery.mli:
