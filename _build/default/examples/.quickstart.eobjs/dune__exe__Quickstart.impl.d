examples/quickstart.ml: Flextoe Host List Netsim Printf Sim String
