examples/quickstart.mli:
