examples/splice_proxy.ml: Flextoe Host List Netsim Printf Sim
