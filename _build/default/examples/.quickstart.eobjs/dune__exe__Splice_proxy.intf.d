examples/splice_proxy.mli:
