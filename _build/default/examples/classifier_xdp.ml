(* Programmable flow classification (§2.1): an eBPF module counts
   ingress packets per traffic class, with the port-to-class table
   managed by the control plane at run time.

     dune exec examples/classifier_xdp.exe *)

let ip_server = 0x0A000001

let () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let server = Flextoe.create_node engine ~fabric ~app_cores:2 ~ip:ip_server () in
  let cl = Flextoe.Ext_classifier.create engine in
  Flextoe.Ext_classifier.install cl (Flextoe.datapath server);
  (* Class 1: the KV service; class 2: the echo service. *)
  Flextoe.Ext_classifier.classify cl ~port:11211 ~cls:1;
  Flextoe.Ext_classifier.classify cl ~port:7 ~cls:2;

  let kv_stats = Host.Rpc.Stats.create engine in
  let echo_stats = Host.Rpc.Stats.create engine in
  ignore
    (Host.App_kv.server ~endpoint:(Flextoe.endpoint server) ~port:11211
       ~app_cycles:890 ());
  Host.Rpc.server ~endpoint:(Flextoe.endpoint server) ~port:7
    ~app_cycles:250 ~handler:Host.Rpc.echo_handler ();
  Host.Rpc.Stats.start_measuring kv_stats;
  Host.Rpc.Stats.start_measuring echo_stats;

  let kv_client = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in
  Host.App_kv.client
    ~endpoint:(Flextoe.endpoint kv_client)
    ~engine ~server_ip:ip_server ~server_port:11211 ~conns:4 ~pipeline:4
    ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.1 ~stats:kv_stats ();
  let echo_client = Flextoe.create_node engine ~fabric ~ip:0x0A000003 () in
  ignore
    (Host.Rpc.closed_loop_client
       ~endpoint:(Flextoe.endpoint echo_client)
       ~engine ~server_ip:ip_server ~server_port:7 ~conns:2 ~pipeline:2
       ~req_bytes:64 ~stats:echo_stats ());

  Sim.Engine.run ~until:(Sim.Time.ms 30) engine;
  Printf.printf "KV ops   : %d (class 1 counted %d ingress packets)\n"
    (Host.Rpc.Stats.ops kv_stats)
    (Flextoe.Ext_classifier.count cl ~cls:1);
  Printf.printf "echo ops : %d (class 2 counted %d ingress packets)\n"
    (Host.Rpc.Stats.ops echo_stats)
    (Flextoe.Ext_classifier.count cl ~cls:2);
  Printf.printf "other    : class 0 counted %d packets (ACKs to ephemeral \
                 ports, handshakes)\n"
    (Flextoe.Ext_classifier.count cl ~cls:0);
  (* Retarget a class at run time: the control plane moves the echo
     service into class 1. *)
  Flextoe.Ext_classifier.classify cl ~port:7 ~cls:1;
  let c1 = Flextoe.Ext_classifier.count cl ~cls:1 in
  Sim.Engine.run ~until:(Sim.Time.ms 40) engine;
  Printf.printf "after retarget: class 1 grew by %d packets in 10ms\n"
    (Flextoe.Ext_classifier.count cl ~cls:1 - c1)
