(* Dynamic firewalling with an XDP module (§3.3): the blacklist lives
   in a BPF hash map that the control plane updates at run time — no
   reboot, no pipeline rebuild.

     dune exec examples/firewall_xdp.exe *)

let ip_server = 0x0A000001
let ip_good = 0x0A000002
let ip_bad = 0x0A000003

let () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let server = Flextoe.create_node engine ~fabric ~ip:ip_server () in
  let good = Flextoe.create_node engine ~fabric ~ip:ip_good () in
  let bad = Flextoe.create_node engine ~fabric ~ip:ip_bad () in

  let fw = Flextoe.Ext_firewall.create engine in
  Flextoe.Ext_firewall.install fw (Flextoe.datapath server);

  Host.Rpc.server
    ~endpoint:(Flextoe.endpoint server)
    ~port:7 ~app_cycles:100 ~handler:Host.Rpc.echo_handler ();
  let stats_good = Host.Rpc.Stats.create engine in
  let stats_bad = Host.Rpc.Stats.create engine in
  Host.Rpc.Stats.start_measuring stats_good;
  Host.Rpc.Stats.start_measuring stats_bad;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint good) ~engine
       ~server_ip:ip_server ~server_port:7 ~conns:2 ~pipeline:2
       ~req_bytes:64 ~stats:stats_good ());
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint bad) ~engine
       ~server_ip:ip_server ~server_port:7 ~conns:2 ~pipeline:2
       ~req_bytes:64 ~stats:stats_bad ());

  (* Phase 1: both clients allowed. *)
  Sim.Engine.run ~until:(Sim.Time.ms 20) engine;
  let g1 = Host.Rpc.Stats.ops stats_good
  and b1 = Host.Rpc.Stats.ops stats_bad in
  Printf.printf "t=20ms  ops: good=%d bad=%d (both allowed)\n" g1 b1;

  (* Phase 2: the control plane blacklists the bad client, live. *)
  Flextoe.Ext_firewall.block fw ~ip:ip_bad;
  Sim.Engine.run ~until:(Sim.Time.ms 40) engine;
  let g2 = Host.Rpc.Stats.ops stats_good
  and b2 = Host.Rpc.Stats.ops stats_bad in
  Printf.printf "t=40ms  ops: good=%d (+%d) bad=%d (+%d) -- blocked\n" g2
    (g2 - g1) b2 (b2 - b1);

  (* Phase 3: unblock; the victim's retransmissions recover. *)
  Flextoe.Ext_firewall.unblock fw ~ip:ip_bad;
  Sim.Engine.run ~until:(Sim.Time.ms 80) engine;
  let g3 = Host.Rpc.Stats.ops stats_good
  and b3 = Host.Rpc.Stats.ops stats_bad in
  Printf.printf "t=80ms  ops: good=%d (+%d) bad=%d (+%d) -- recovered\n" g3
    (g3 - g2) b3 (b3 - b2);
  Printf.printf "frames dropped by the XDP firewall: %d\n"
    (Flextoe.Ext_firewall.dropped fw)
