(* A memcached-style deployment: a multi-core KV server on FlexTOE
   loaded by memtier-style clients from two machines, compared against
   the same setup on the Linux stack model — the paper's motivating
   workload (§2.1).

     dune exec examples/kv_store.exe *)

let run_stack name make_endpoint =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let server_ep, server_cpu = make_endpoint engine fabric 0x0A000001 in
  let stats = Host.Rpc.Stats.create engine in
  let kv =
    Host.App_kv.server ~endpoint:server_ep ~port:11211 ~app_cycles:890 ()
  in
  for i = 1 to 2 do
    let client =
      Flextoe.create_node engine ~fabric ~app_cores:8 ~ip:(0x0A000010 + i) ()
    in
    Host.App_kv.client
      ~endpoint:(Flextoe.endpoint client)
      ~engine ~server_ip:0x0A000001 ~server_port:11211 ~conns:32 ~pipeline:8
      ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.1 ~stats ()
  done;
  Sim.Engine.run ~until:(Sim.Time.ms 15) engine;
  Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Time.ms 65) engine;
  Printf.printf
    "%-8s  %6.2f mOps  median %5.1f us  p99 %6.1f us  (%d keys stored)\n"
    name (Host.Rpc.Stats.mops stats)
    (Host.Rpc.Stats.rtt_percentile_us stats 50.)
    (Host.Rpc.Stats.rtt_percentile_us stats 99.)
    (Host.App_kv.entries kv);
  let per_req cat =
    let cycles =
      Option.value ~default:0
        (List.assoc_opt cat (Host.Host_cpu.cycles_by_category server_cpu))
    in
    float_of_int cycles /. float_of_int (max 1 (Host.Rpc.Stats.ops stats))
    /. 1000.
  in
  Printf.printf
    "          per request: stack %.2fkc, sockets %.2fkc, app %.2fkc\n"
    (per_req "stack") (per_req "sockets") (per_req "app")

let () =
  print_endline "4-core key-value store, 64 connections, 32B keys/values:";
  run_stack "FlexTOE" (fun engine fabric ip ->
      let n = Flextoe.create_node engine ~fabric ~app_cores:4 ~ip () in
      (Flextoe.endpoint n, Flextoe.cpu n));
  run_stack "Linux" (fun engine fabric ip ->
      let n =
        Baselines.Stack.create engine ~fabric
          ~profile:Baselines.Profile.linux ~ip ~app_cores:4 ()
      in
      (Baselines.Stack.endpoint n, Baselines.Stack.cpu n))
