(* Loss recovery under the microscope: sweep random loss on a bulk
   transfer, watch FlexTOE's tracepoints count out-of-order segments
   and fast retransmissions, and dump a filtered pcap of one run.

     dune exec examples/loss_recovery.exe *)

let run_loss loss =
  let engine = Sim.Engine.create ~seed:21L () in
  let fabric = Netsim.Fabric.create engine () in
  Netsim.Fabric.set_loss fabric loss;
  let server = Flextoe.create_node engine ~fabric ~ip:0x0A000001 () in
  let client = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in
  let dp = Flextoe.datapath server in
  (* Watch the protocol stage's loss-related tracepoints. *)
  ignore
    (Sim.Trace.enable (Flextoe.Datapath.traces dp) ~group:"protocol" ());
  (* Capture retransmission-heavy traffic: data segments to port 5001. *)
  let pcap =
    Flextoe.Ext_pcap.create engine
      ~filter:Flextoe.Ext_pcap.(And (Port 5001, Tcp_flag `Psh))
      ()
  in
  Flextoe.Ext_pcap.attach pcap dp;
  let received = ref 0 in
  (Flextoe.endpoint server).Host.Api.listen ~port:5001 ~on_accept:(fun sock ->
      sock.Host.Api.on_readable <-
        (fun () ->
          received :=
            !received + Bytes.length (sock.Host.Api.recv ~max:max_int)));
  (Flextoe.endpoint client).Host.Api.connect ~remote_ip:0x0A000001
    ~remote_port:5001
    ~on_connected:(fun r ->
      match r with
      | Error e -> failwith e
      | Ok sock ->
          let chunk = Bytes.make 8192 'd' in
          let push () = while sock.Host.Api.send chunk > 0 do () done in
          sock.Host.Api.on_writable <- push;
          push ());
  Sim.Engine.run ~until:(Sim.Time.ms 100) engine;
  let gbps = float_of_int (8 * !received) /. 0.1 /. 1e9 in
  ignore dp;
  (* The client is the sender: loss recovery happens on its NIC (fast
     retransmits in the protocol stage) and its control plane (RTOs). *)
  let client_st = Flextoe.Datapath.stats (Flextoe.datapath client) in
  Printf.printf
    "loss %-7g  %6.2f Gbps  fast-retx=%d  rtos=%d  captured=%d pkts\n"
    loss gbps client_st.Flextoe.Datapath.fast_retx
    (Flextoe.Control_plane.retransmit_timeouts (Flextoe.control client))
    (Flextoe.Ext_pcap.captured pcap);
  if loss = 0.01 then begin
    Flextoe.Ext_pcap.write_file pcap "loss_recovery.pcap";
    Printf.printf "  (wrote loss_recovery.pcap: %d packets)\n"
      (Flextoe.Ext_pcap.captured pcap)
  end

let () =
  print_endline "bulk transfer under random loss (FlexTOE, go-back-N +";
  print_endline "single out-of-order interval):";
  List.iter run_loss [ 0.0; 0.001; 0.005; 0.01; 0.02 ]
