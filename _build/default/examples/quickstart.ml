(* Quickstart: two FlexTOE nodes on a simulated fabric, an echo
   server, and a handful of closed-loop clients.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. A virtual-time engine and a switch fabric. *)
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in

  (* 2. Two machines, each with a FlexTOE SmartNIC: the data path runs
     on the (simulated) NFP-4000, the control plane and libTOE on the
     host. *)
  let server = Flextoe.create_node engine ~fabric ~ip:0x0A000001 () in
  let client = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in

  (* 3. An echo server on port 7. Applications use the POSIX-shaped
     Host.Api and run unmodified on any stack in this repository. *)
  Host.Rpc.server
    ~endpoint:(Flextoe.endpoint server)
    ~port:7 ~app_cycles:250 ~handler:Host.Rpc.echo_handler ();

  (* 4. Eight connections, two pipelined 64-byte RPCs each. *)
  let stats = Host.Rpc.Stats.create engine in
  ignore
    (Host.Rpc.closed_loop_client
       ~endpoint:(Flextoe.endpoint client)
       ~engine ~server_ip:0x0A000001 ~server_port:7 ~conns:8 ~pipeline:2
       ~req_bytes:64 ~stats ());

  (* 5. Run 5 ms of warm-up, then measure 50 ms of virtual time. *)
  Sim.Engine.run ~until:(Sim.Time.ms 5) engine;
  Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Time.ms 55) engine;

  Printf.printf "echo throughput : %.2f mOps\n" (Host.Rpc.Stats.mops stats);
  Printf.printf "median RTT      : %.1f us\n"
    (Host.Rpc.Stats.rtt_percentile_us stats 50.);
  Printf.printf "99p RTT         : %.1f us\n"
    (Host.Rpc.Stats.rtt_percentile_us stats 99.);
  let st = Flextoe.Datapath.stats (Flextoe.datapath server) in
  Printf.printf "server data path: %d segments in, %d out, %d acks\n"
    st.Flextoe.Datapath.rx_segments st.Flextoe.Datapath.tx_segments
    st.Flextoe.Datapath.tx_acks;
  Printf.printf "host CPU        : %s\n"
    (String.concat ", "
       (List.map
          (fun (c, n) -> Printf.sprintf "%s %dkc" c (n / 1000))
          (Host.Host_cpu.cycles_by_category (Flextoe.cpu server))))
