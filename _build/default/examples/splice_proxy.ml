(* Connection splicing (the paper's Listing 1): a proxy accepts client
   connections, opens a backend connection, and splices the pair with
   an eBPF XDP module — after which every data segment is header-
   patched and bounced straight off the proxy's NIC without touching
   its host.

     dune exec examples/splice_proxy.exe *)

let ip_client = 0x0A000001
let ip_proxy = 0x0A000002
let ip_server = 0x0A000003

let () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let client = Flextoe.create_node engine ~fabric ~ip:ip_client () in
  let proxy = Flextoe.create_node engine ~fabric ~ip:ip_proxy () in
  let server = Flextoe.create_node engine ~fabric ~ip:ip_server () in

  (* Backend echo service. *)
  Host.Rpc.server
    ~endpoint:(Flextoe.endpoint server)
    ~port:9 ~app_cycles:100 ~handler:Host.Rpc.echo_handler ();

  (* The proxy: the splice module is installed up front (entries are
     added per connection pair); the listener advertises a zero window
     in its SYN-ACK so no payload arrives before the splice is live. *)
  let splice = Flextoe.Ext_splice.create engine in
  Flextoe.Ext_splice.install splice (Flextoe.datapath proxy);
  let cp = Flextoe.control proxy in
  Flextoe.Control_plane.listen cp ~syn_ack_window:0 ~port:7
    ~on_accept:(fun a ->
      Flextoe.Control_plane.connect cp ~remote_ip:ip_server ~remote_port:9
        ~ctx:0
        ~on_connected:(function
          | Ok b ->
              Flextoe.Ext_splice.splice_pair splice
                ~dp:(Flextoe.datapath proxy) ~a ~b
          | Error e -> Printf.eprintf "backend connect failed: %s\n" e))
    ();

  (* Clients talk to the proxy; their RPCs transparently reach the
     backend. *)
  let stats = Host.Rpc.Stats.create engine in
  ignore
    (Host.Rpc.closed_loop_client
       ~endpoint:(Flextoe.endpoint client)
       ~engine ~server_ip:ip_proxy ~server_port:7 ~conns:8 ~pipeline:4
       ~req_bytes:200 ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms 10) engine;
  Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Time.ms 60) engine;

  Printf.printf "spliced RPC throughput : %.2f mOps (median RTT %.1f us)\n"
    (Host.Rpc.Stats.mops stats)
    (Host.Rpc.Stats.rtt_percentile_us stats 50.);
  Printf.printf "segments spliced by XDP: %d (entries live: %d)\n"
    (Flextoe.Ext_splice.spliced_segments splice)
    (Flextoe.Ext_splice.entries splice);
  let app =
    List.assoc_opt "app"
      (Host.Host_cpu.cycles_by_category (Flextoe.cpu proxy))
  in
  Printf.printf "proxy host app cycles  : %s (the proxy host never sees \
                 payload)\n"
    (match app with None -> "0" | Some c -> string_of_int c)
