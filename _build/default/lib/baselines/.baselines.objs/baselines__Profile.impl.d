lib/baselines/profile.ml: Sim Tcp
