lib/baselines/profile.mli: Sim
