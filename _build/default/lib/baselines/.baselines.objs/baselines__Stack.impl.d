lib/baselines/stack.ml: Bytes Hashtbl Host Lazy Netsim Option Profile Sim Tcp
