lib/baselines/stack.mli: Host Netsim Profile Sim
