type placement = Inline | Dedicated of int

type recovery = Go_back_n | Selective_repeat | Rto_only

type t = {
  name : string;
  rx_seg_cycles : int;
  tx_seg_cycles : int;
  placement : placement;
  api_cycles : int;
  notify_cycles : int;
  notify_latency : Sim.Time.t;
  notify_moderation : Sim.Time.t;
  lock_factor : float;
  conn_penalty : int -> int;
  epoll_factor : float;
  nic_latency : Sim.Time.t;
  nic_seg_rate : float option;
  recovery : recovery;
  min_rto : Sim.Time.t;
  dupack_threshold : int;
  noise_interval_cycles : int;
  noise_mean_cycles : int;
  ecn_enabled : bool;
  mss : int;
  rx_buf_bytes : int;
  tx_buf_bytes : int;
  window_scale : int;
}

(* Calibration sources (paper Table 1, per memcached request =
   roughly one RX segment + one TX segment + two socket calls):
   Linux:   driver 0.75kc + stack 2.62kc over 2 segments;
            sockets 2.70kc over 2 calls; "other" 3.61kc folded into
            notification cost (wakeups, scheduling, idle loops).
   Chelsio: driver 1.28kc + stack 0.40kc; sockets 2.61kc;
            other 3.28kc; TCP itself runs on the Terminator ASIC.
   TAS:     stack 1.44kc on dedicated fast-path cores; driver 0.18kc;
            sockets 0.79kc; other 0.09kc. *)

let linux =
  {
    name = "Linux";
    rx_seg_cycles = 2200;
    tx_seg_cycles = 2200;
    placement = Inline;
    api_cycles = 1700;
    notify_cycles = 5500;
    notify_latency = Sim.Time.us 30;
    notify_moderation = Sim.Time.us 15;
    lock_factor = 0.18;
    conn_penalty = (fun conns -> min 1200 (conns / 3));
    epoll_factor = 0.;
    nic_latency = Sim.Time.zero;
    nic_seg_rate = None;
    recovery = Selective_repeat;
    min_rto = Sim.Time.ms 4;
    dupack_threshold = 3;
    noise_interval_cycles = 1_200_000;
    noise_mean_cycles = 120_000;  (* ~60 us stall at 2 GHz *)
    ecn_enabled = true;
    mss = Tcp.Segment.mss_with_timestamps;
    rx_buf_bytes = 256 * 1024;
    tx_buf_bytes = 256 * 1024;
    window_scale = 7;
  }

let tas =
  {
    name = "TAS";
    rx_seg_cycles = 720;
    tx_seg_cycles = 720;
    placement = Dedicated 5;
    api_cycles = 395;
    notify_cycles = 180;
    notify_latency = Sim.Time.us 5;
    notify_moderation = Sim.Time.us 8;
    lock_factor = 0.015;
    conn_penalty = (fun conns -> min 350 (conns / 24));
    epoll_factor = 0.;
    nic_latency = Sim.Time.zero;
    nic_seg_rate = None;
    recovery = Go_back_n;
    min_rto = Sim.Time.ms 2;
    dupack_threshold = 3;
    noise_interval_cycles = 2_000_000;
    noise_mean_cycles = 50_000;  (* ~25 us *)
    ecn_enabled = true;
    mss = Tcp.Segment.mss_with_timestamps;
    rx_buf_bytes = 1024 * 1024;
    tx_buf_bytes = 1024 * 1024;
    window_scale = 7;
  }

let chelsio =
  {
    name = "Chelsio";
    (* The Terminator runs TCP itself and delivers coalesced buffers;
       the per-segment driver share is small, with the kernel's cost
       concentrated in wake-ups and socket calls. *)
    rx_seg_cycles = 400;
    tx_seg_cycles = 400;
    placement = Inline;
    api_cycles = 1650;
    notify_cycles = 4400;
    notify_latency = Sim.Time.us 1;
    notify_moderation = Sim.Time.us 12;
    lock_factor = 0.16;
    conn_penalty = (fun conns -> min 900 (conns / 4));
    epoll_factor = 0.35;
    nic_latency = Sim.Time.ns 500;
    nic_seg_rate = Some 12_000_000.;  (* 100G ASIC, streaming-tuned *)
    recovery = Rto_only;
    min_rto = Sim.Time.ms 8;
    dupack_threshold = 1000;  (* effectively disabled *)
    noise_interval_cycles = 1_600_000;
    noise_mean_cycles = 90_000;  (* ~45 us: kernel involvement *)
    ecn_enabled = true;
    mss = Tcp.Segment.mss_with_timestamps;
    rx_buf_bytes = 1024 * 1024;
    tx_buf_bytes = 1024 * 1024;
    window_scale = 7;
  }
