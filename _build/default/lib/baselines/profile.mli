(** Behavioural profiles of the comparison stacks.

    The paper compares FlexTOE against the in-kernel Linux stack, the
    TAS kernel-bypass accelerator, and the Chelsio Terminator TOE
    (§2.1, §5). Each baseline is the same host TCP engine
    ({!Stack}) parameterised by a profile: where segment processing
    runs, what it costs (calibrated from the paper's own Table 1
    measurements), how loss recovery behaves, and how performance
    degrades with core and connection counts. *)

(** Where per-segment TCP processing executes. *)
type placement =
  | Inline
      (** On the socket's application core (Linux syscalls + softirq;
          Chelsio's kernel driver). *)
  | Dedicated of int
      (** On a pool of N dedicated fast-path cores (TAS). *)

type recovery =
  | Go_back_n  (** TAS: reset to the cumulative ACK on loss. *)
  | Selective_repeat
      (** Linux: SACK-style recovery retransmitting only holes. *)
  | Rto_only
      (** Chelsio: no duplicate-ACK fast retransmit; recovery waits
          for the (long) hardware retransmission timeout. *)

type t = {
  name : string;
  (* Per-segment host work (cycles). *)
  rx_seg_cycles : int;
  tx_seg_cycles : int;
  placement : placement;
  (* Per-socket-call and per-notification work (cycles). *)
  api_cycles : int;
  notify_cycles : int;
  (* Fixed latency between segment arrival and application wake-up
     (interrupts, scheduling); the big term in Linux's RPC RTT. *)
  notify_latency : Sim.Time.t;
  (* Interrupt moderation: after a wake-up fires, further wake-ups for
     the same connection are deferred until this much time has passed
     (NAPI-style). Sparse RPC traffic is unaffected; bulk flows pay
     the notification cost once per window. *)
  notify_moderation : Sim.Time.t;
  (* Kernel lock contention: effective per-segment cycles are
     multiplied by [1 + lock_factor * (cores - 1)]. *)
  lock_factor : float;
  (* Connection-count cache penalty: extra per-segment cycles as a
     function of the number of active connections. *)
  conn_penalty : int -> int;
  (* Per-notification cost that grows with connection count
     (Chelsio's epoll). *)
  epoll_factor : float;
  (* NIC-side TCP processing (Chelsio): per-segment latency and the
     ASIC's segment rate. Zero/None for host stacks. *)
  nic_latency : Sim.Time.t;
  nic_seg_rate : float option;  (** segments/second capacity. *)
  recovery : recovery;
  min_rto : Sim.Time.t;
  dupack_threshold : int;
  (* Host jitter (scheduler preemption, interrupts): mean busy-cycles
     between stalls, and the mean stall length (cycles). Produces the
     latency tails of Figures 10/12. *)
  noise_interval_cycles : int;
  noise_mean_cycles : int;
  (* Congestion response to ECN marks (all stacks run DCTCP-style
     halving here; Linux uses a Reno cut). *)
  ecn_enabled : bool;
  mss : int;
  rx_buf_bytes : int;
  tx_buf_bytes : int;
  window_scale : int;
}

val linux : t
val tas : t
val chelsio : t
