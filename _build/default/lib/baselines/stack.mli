(** A complete host TCP stack, parameterised by a {!Profile}.

    This is the engine behind the Linux, TAS, and Chelsio baselines:
    a window-based TCP (slow start, congestion avoidance, ECN
    response, duplicate-ACK fast retransmit where the profile allows,
    exponential-backoff RTO) with full payload transfer and
    reassembly ({!Tcp.Reassembly_multi}), whose per-segment and
    per-call CPU costs are charged to host cores per the profile, and
    whose loss recovery follows the profile's model (selective repeat
    / go-back-N / RTO-only).

    Applications attach through the same {!Host.Api} as FlexTOE, so
    identical "binaries" run over every stack (§5, Baseline). *)

type t

val create :
  Sim.Engine.t ->
  fabric:Netsim.Fabric.t ->
  profile:Profile.t ->
  ip:int ->
  ?app_cores:int ->
  ?wire_gbps:float ->
  unit ->
  t

val endpoint : t -> Host.Api.endpoint
val fabric_port : t -> Netsim.Fabric.port
val cpu : t -> Host.Host_cpu.t
val profile : t -> Profile.t
val active_conns : t -> int

(** Counters. *)

val segments_rx : t -> int
val segments_tx : t -> int
val retransmits : t -> int
val rto_fires : t -> int

val mac_of_ip : int -> int
(** Same fabric-wide convention as FlexTOE's control plane. *)

val debug_conns : t -> (int * int * int * int * int * int) list
(** Per connection: (flight, cwnd, remote window, unsent backlog,
    rx_avail, rx_ready). Inspection/debugging only. *)
