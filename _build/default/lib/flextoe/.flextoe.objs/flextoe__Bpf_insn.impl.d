lib/flextoe/bpf_insn.ml: Array Bytes Char Format Hashtbl Int64 List
