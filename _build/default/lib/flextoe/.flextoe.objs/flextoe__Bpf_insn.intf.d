lib/flextoe/bpf_insn.mli: Bytes Format
