lib/flextoe/bpf_map.ml: Bytes Char Hashtbl Option Queue
