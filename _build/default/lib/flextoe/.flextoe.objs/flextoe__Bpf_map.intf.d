lib/flextoe/bpf_map.mli: Bytes
