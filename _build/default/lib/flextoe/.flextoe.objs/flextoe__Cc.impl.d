lib/flextoe/cc.ml: Float Sim
