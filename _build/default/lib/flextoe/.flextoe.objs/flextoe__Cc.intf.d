lib/flextoe/cc.mli: Sim
