lib/flextoe/config.ml: Nfp Sim Tcp
