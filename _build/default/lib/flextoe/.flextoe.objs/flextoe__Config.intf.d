lib/flextoe/config.mli: Nfp Sim
