lib/flextoe/conn_state.ml: Host Sim Tcp
