lib/flextoe/conn_state.mli: Host Sim Tcp
