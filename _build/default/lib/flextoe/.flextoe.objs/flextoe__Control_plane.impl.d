lib/flextoe/control_plane.ml: Bytes Cc Config Conn_state Datapath Hashtbl Host List Meta Nfp Option Printf Sim Tcp
