lib/flextoe/control_plane.mli: Config Conn_state Datapath Host Sim
