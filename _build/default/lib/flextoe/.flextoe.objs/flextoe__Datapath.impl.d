lib/flextoe/datapath.ml: Array Bytes Config Conn_state Float Hashtbl Host Lazy List Meta Netsim Nfp Printf Protocol Queue Scheduler Sequencer Sim Tcp
