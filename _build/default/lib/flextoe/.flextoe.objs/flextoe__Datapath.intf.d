lib/flextoe/datapath.mli: Config Conn_state Meta Netsim Sim Tcp
