lib/flextoe/ebpf.ml: Array Bpf_insn Bpf_map Bytes Char Int64 List Printf Tcp
