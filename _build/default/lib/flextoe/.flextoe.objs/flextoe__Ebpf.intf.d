lib/flextoe/ebpf.mli: Bpf_insn Bpf_map Bytes
