lib/flextoe/ext_classifier.ml: Bpf_insn Bpf_map Bytes Char Ebpf Tcp Xdp
