lib/flextoe/ext_classifier.mli: Bpf_insn Datapath Sim Xdp
