lib/flextoe/ext_firewall.ml: Bpf_insn Bpf_map Bytes Char Ebpf Tcp Xdp
