lib/flextoe/ext_firewall.mli: Bpf_insn Datapath Sim Xdp
