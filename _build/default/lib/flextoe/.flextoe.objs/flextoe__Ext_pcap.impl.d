lib/flextoe/ext_pcap.ml: Bytes Char Datapath Queue Sim Tcp
