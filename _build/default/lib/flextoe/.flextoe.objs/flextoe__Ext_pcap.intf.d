lib/flextoe/ext_pcap.mli: Bytes Datapath Sim Tcp
