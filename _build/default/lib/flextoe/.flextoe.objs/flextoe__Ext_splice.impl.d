lib/flextoe/ext_splice.ml: Bpf_insn Bpf_map Bytes Char Conn_state Control_plane Datapath Ebpf Tcp Xdp
