lib/flextoe/ext_splice.mli: Bpf_insn Bytes Control_plane Datapath Sim Xdp
