lib/flextoe/ext_vlan.ml: Bpf_insn Ebpf Xdp
