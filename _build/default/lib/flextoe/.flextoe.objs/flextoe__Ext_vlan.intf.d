lib/flextoe/ext_vlan.mli: Bpf_insn Datapath Sim Xdp
