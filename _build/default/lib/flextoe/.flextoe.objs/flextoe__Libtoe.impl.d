lib/flextoe/libtoe.ml: Array Bytes Config Conn_state Control_plane Datapath Hashtbl Host Lazy List Meta Sim
