lib/flextoe/libtoe.mli: Config Control_plane Datapath Host Sim
