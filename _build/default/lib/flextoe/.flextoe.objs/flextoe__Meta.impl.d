lib/flextoe/meta.ml: Bytes Sim Tcp
