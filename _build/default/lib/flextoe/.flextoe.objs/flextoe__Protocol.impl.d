lib/flextoe/protocol.ml: Bytes Config Conn_state Host Meta Tcp
