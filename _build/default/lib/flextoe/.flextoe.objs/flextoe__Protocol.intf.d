lib/flextoe/protocol.mli: Config Conn_state Meta Sim
