lib/flextoe/scheduler.ml: Hashtbl Queue Sim
