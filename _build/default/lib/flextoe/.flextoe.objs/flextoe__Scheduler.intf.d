lib/flextoe/scheduler.mli: Sim
