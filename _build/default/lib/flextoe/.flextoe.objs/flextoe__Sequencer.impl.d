lib/flextoe/sequencer.ml: Hashtbl
