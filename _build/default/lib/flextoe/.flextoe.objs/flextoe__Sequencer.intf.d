lib/flextoe/sequencer.mli:
