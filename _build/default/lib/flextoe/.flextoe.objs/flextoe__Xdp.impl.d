lib/flextoe/xdp.ml: Bpf_insn Bpf_map Bytes Datapath Ebpf Int64 Sim Tcp
