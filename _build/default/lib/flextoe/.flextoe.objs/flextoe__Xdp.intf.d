lib/flextoe/xdp.mli: Bpf_map Datapath Ebpf Sim
