type size = W8 | W16 | W32 | W64

type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

type jmp_cond =
  | Jeq | Jgt | Jge | Jlt | Jle | Jset | Jne | Jsgt | Jsge | Jslt | Jsle

type src = Reg of int | Imm of int

type t =
  | Alu64 of alu_op * int * src
  | Alu32 of alu_op * int * src
  | Endian_be of int * int
  | Ld_imm64 of int * int64
  | Ldx of size * int * int * int
  | St_imm of size * int * int * int
  | Stx of size * int * int * int
  | Ja of int
  | Jmp of jmp_cond * int * src * int
  | Call of int
  | Exit

let helper_map_lookup = 1
let helper_map_update = 2
let helper_map_delete = 3
let helper_ktime = 5
let helper_adjust_head = 44
let helper_csum_fixup = 100

let xdp_aborted = 0
let xdp_drop = 1
let xdp_pass = 2
let xdp_tx = 3
let xdp_redirect = 4

(* --- Assembler ------------------------------------------------------ *)

type labeled =
  | L of string
  | I of t
  | Jl of jmp_cond * int * src * string
  | Jal of string

let assemble items =
  (* First pass: label -> instruction index. Ld_imm64 occupies two
     encoding slots but one array slot; offsets here are in array
     slots (the VM interprets the array form). *)
  let labels = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (fun item ->
      match item with
      | L name ->
          if Hashtbl.mem labels name then
            invalid_arg ("Bpf_insn.assemble: duplicate label " ^ name);
          Hashtbl.replace labels name !idx
      | I _ | Jl _ | Jal _ -> incr idx)
    items;
  let resolve name at =
    match Hashtbl.find_opt labels name with
    | Some target -> target - at - 1
    | None -> invalid_arg ("Bpf_insn.assemble: unknown label " ^ name)
  in
  let out = ref [] in
  let idx = ref 0 in
  List.iter
    (fun item ->
      match item with
      | L _ -> ()
      | I i ->
          out := i :: !out;
          incr idx
      | Jl (cond, dst, src, name) ->
          out := Jmp (cond, dst, src, resolve name !idx) :: !out;
          incr idx
      | Jal name ->
          out := Ja (resolve name !idx) :: !out;
          incr idx)
    items;
  Array.of_list (List.rev !out)

(* --- Wire encoding ---------------------------------------------------- *)

let alu_code = function
  | Add -> 0x0 | Sub -> 0x1 | Mul -> 0x2 | Div -> 0x3 | Or -> 0x4
  | And -> 0x5 | Lsh -> 0x6 | Rsh -> 0x7 | Neg -> 0x8 | Mod -> 0x9
  | Xor -> 0xa | Mov -> 0xb | Arsh -> 0xc

let alu_of_code = function
  | 0x0 -> Some Add | 0x1 -> Some Sub | 0x2 -> Some Mul | 0x3 -> Some Div
  | 0x4 -> Some Or | 0x5 -> Some And | 0x6 -> Some Lsh | 0x7 -> Some Rsh
  | 0x8 -> Some Neg | 0x9 -> Some Mod | 0xa -> Some Xor | 0xb -> Some Mov
  | 0xc -> Some Arsh | _ -> None

let jmp_code = function
  | Jeq -> 0x1 | Jgt -> 0x2 | Jge -> 0x3 | Jset -> 0x4 | Jne -> 0x5
  | Jsgt -> 0x6 | Jsge -> 0x7 | Jlt -> 0xa | Jle -> 0xb | Jslt -> 0xc
  | Jsle -> 0xd

let jmp_of_code = function
  | 0x1 -> Some Jeq | 0x2 -> Some Jgt | 0x3 -> Some Jge | 0x4 -> Some Jset
  | 0x5 -> Some Jne | 0x6 -> Some Jsgt | 0x7 -> Some Jsge | 0xa -> Some Jlt
  | 0xb -> Some Jle | 0xc -> Some Jslt | 0xd -> Some Jsle | _ -> None

let size_bits = function W32 -> 0x00 | W16 -> 0x08 | W8 -> 0x10
  | W64 -> 0x18

let size_of_bits = function
  | 0x00 -> W32 | 0x08 -> W16 | 0x10 -> W8 | _ -> W64

(* One 8-byte slot: opcode, dst|src<<4, off (s16 LE), imm (s32 LE). *)
let write_slot buf i ~opcode ~dst ~src ~off ~imm =
  let base = i * 8 in
  Bytes.set buf base (Char.chr (opcode land 0xFF));
  Bytes.set buf (base + 1) (Char.chr ((dst land 0xF) lor ((src land 0xF) lsl 4)));
  let off = off land 0xFFFF in
  Bytes.set buf (base + 2) (Char.chr (off land 0xFF));
  Bytes.set buf (base + 3) (Char.chr ((off lsr 8) land 0xFF));
  let imm = Int64.to_int (Int64.logand imm 0xFFFFFFFFL) in
  Bytes.set buf (base + 4) (Char.chr (imm land 0xFF));
  Bytes.set buf (base + 5) (Char.chr ((imm lsr 8) land 0xFF));
  Bytes.set buf (base + 6) (Char.chr ((imm lsr 16) land 0xFF));
  Bytes.set buf (base + 7) (Char.chr ((imm lsr 24) land 0xFF))

let slots_of = function Ld_imm64 _ -> 2 | _ -> 1

let src_fields = function
  | Reg r -> (0x08, r, 0L)
  | Imm v -> (0x00, 0, Int64.of_int v)

let encode prog =
  let n = Array.length prog in
  (* Wire jump offsets count 8-byte slots; array offsets count
     instructions. Precompute the slot index of every instruction. *)
  let slot_of = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    slot_of.(i + 1) <- slot_of.(i) + slots_of prog.(i)
  done;
  let fix_off i off =
    let target = i + 1 + off in
    if target < 0 || target > n then
      invalid_arg "Bpf_insn.encode: jump out of bounds";
    slot_of.(target) - slot_of.(i) - slots_of prog.(i)
  in
  let total = slot_of.(n) in
  let buf = Bytes.make (total * 8) '\000' in
  let slot = ref 0 in
  Array.iteri
    (fun i insn ->
      (match insn with
      | Alu64 (op, dst, s) ->
          let sbit, sreg, imm = src_fields s in
          write_slot buf !slot
            ~opcode:(0x07 lor sbit lor (alu_code op lsl 4))
            ~dst ~src:sreg ~off:0 ~imm
      | Alu32 (op, dst, s) ->
          let sbit, sreg, imm = src_fields s in
          write_slot buf !slot
            ~opcode:(0x04 lor sbit lor (alu_code op lsl 4))
            ~dst ~src:sreg ~off:0 ~imm
      | Endian_be (dst, bits) ->
          write_slot buf !slot
            ~opcode:(0x04 lor 0x08 lor (0xd lsl 4))
            ~dst ~src:0 ~off:0 ~imm:(Int64.of_int bits)
      | Ld_imm64 (dst, v) ->
          write_slot buf !slot ~opcode:0x18 ~dst ~src:0 ~off:0
            ~imm:(Int64.logand v 0xFFFFFFFFL);
          write_slot buf (!slot + 1) ~opcode:0 ~dst:0 ~src:0 ~off:0
            ~imm:(Int64.shift_right_logical v 32)
      | Ldx (sz, dst, src, off) ->
          write_slot buf !slot
            ~opcode:(0x61 lor size_bits sz)
            ~dst ~src ~off ~imm:0L
      | St_imm (sz, dst, off, imm) ->
          write_slot buf !slot
            ~opcode:(0x62 lor size_bits sz)
            ~dst ~src:0 ~off ~imm:(Int64.of_int imm)
      | Stx (sz, dst, off, src) ->
          write_slot buf !slot
            ~opcode:(0x63 lor size_bits sz)
            ~dst ~src ~off ~imm:0L
      | Ja off ->
          write_slot buf !slot ~opcode:0x05 ~dst:0 ~src:0 ~off:(fix_off i off)
            ~imm:0L
      | Jmp (cond, dst, s, off) ->
          let sbit, sreg, imm = src_fields s in
          write_slot buf !slot
            ~opcode:(0x05 lor sbit lor (jmp_code cond lsl 4))
            ~dst ~src:sreg ~off:(fix_off i off) ~imm
      | Call id ->
          write_slot buf !slot ~opcode:0x85 ~dst:0 ~src:0 ~off:0
            ~imm:(Int64.of_int id)
      | Exit -> write_slot buf !slot ~opcode:0x95 ~dst:0 ~src:0 ~off:0 ~imm:0L);
      slot := !slot + slots_of insn)
    prog;
  buf

let read_slot buf i =
  let base = i * 8 in
  let b n = Char.code (Bytes.get buf (base + n)) in
  let opcode = b 0 in
  let dst = b 1 land 0xF in
  let src = (b 1 lsr 4) land 0xF in
  let off =
    let v = b 2 lor (b 3 lsl 8) in
    if v >= 0x8000 then v - 0x10000 else v
  in
  let imm_u = b 4 lor (b 5 lsl 8) lor (b 6 lsl 16) lor (b 7 lsl 24) in
  let imm = if imm_u >= 0x80000000 then imm_u - 0x100000000 else imm_u in
  (opcode, dst, src, off, imm, imm_u)

let decode buf =
  if Bytes.length buf mod 8 <> 0 then Error "truncated program"
  else begin
    let n = Bytes.length buf / 8 in
    let out = ref [] in
    let slots = ref [] in  (* starting slot of each decoded insn *)
    let err = ref None in
    let i = ref 0 in
    while !i < n && !err = None do
      slots := !i :: !slots;
      let opcode, dst, src, off, imm, imm_u = read_slot buf !i in
      let cls = opcode land 0x07 in
      let push insn = out := insn :: !out in
      (match cls with
      | 0x07 | 0x04 -> begin
          let op = (opcode lsr 4) land 0xF in
          let is_reg = opcode land 0x08 <> 0 in
          if op = 0xd then push (Endian_be (dst, imm))
          else
            match alu_of_code op with
            | Some aop ->
                let s = if is_reg then Reg src else Imm imm in
                if cls = 0x07 then push (Alu64 (aop, dst, s))
                else push (Alu32 (aop, dst, s))
            | None -> err := Some "bad alu op"
        end
      | 0x00 ->
          (* LD: only LD_IMM64 supported. *)
          if opcode = 0x18 && !i + 1 < n then begin
            let _, _, _, _, _, hi = read_slot buf (!i + 1) in
            push
              (Ld_imm64
                 ( dst,
                   Int64.logor
                     (Int64.of_int (imm_u land 0xFFFFFFFF))
                     (Int64.shift_left (Int64.of_int hi) 32) ));
            incr i
          end
          else err := Some "unsupported LD"
      | 0x01 ->
          push (Ldx (size_of_bits (opcode land 0x18), dst, src, off))
      | 0x02 -> push (St_imm (size_of_bits (opcode land 0x18), dst, off, imm))
      | 0x03 -> push (Stx (size_of_bits (opcode land 0x18), dst, off, src))
      | 0x05 -> begin
          let op = (opcode lsr 4) land 0xF in
          let is_reg = opcode land 0x08 <> 0 in
          match op with
          | 0x0 -> push (Ja off)
          | 0x8 -> push (Call imm)
          | 0x9 -> push Exit
          | _ -> (
              match jmp_of_code op with
              | Some cond ->
                  let s = if is_reg then Reg src else Imm imm in
                  push (Jmp (cond, dst, s, off))
              | None -> err := Some "bad jmp op")
        end
      | _ -> err := Some "unsupported class");
      incr i
    done;
    match !err with
    | Some e -> Error e
    | None ->
        let insns = Array.of_list (List.rev !out) in
        let slot_starts = Array.of_list (List.rev !slots) in
        (* slot -> array index *)
        let of_slot = Hashtbl.create 64 in
        Array.iteri (fun idx s -> Hashtbl.replace of_slot s idx) slot_starts;
        let fix idx off =
          let target_slot = slot_starts.(idx) + slots_of insns.(idx) + off in
          match Hashtbl.find_opt of_slot target_slot with
          | Some t -> Ok (t - idx - 1)
          | None ->
              if target_slot = n then Ok (Array.length insns - idx - 1)
              else Error "jump into the middle of an instruction"
        in
        let err = ref None in
        Array.iteri
          (fun idx insn ->
            match insn with
            | Ja off -> begin
                match fix idx off with
                | Ok o -> insns.(idx) <- Ja o
                | Error e -> err := Some e
              end
            | Jmp (c, d, s, off) -> begin
                match fix idx off with
                | Ok o -> insns.(idx) <- Jmp (c, d, s, o)
                | Error e -> err := Some e
              end
            | _ -> ())
          insns;
        (match !err with Some e -> Error e | None -> Ok insns)
  end

let pp_src fmt = function
  | Reg r -> Format.fprintf fmt "r%d" r
  | Imm v -> Format.fprintf fmt "#%d" v

let pp fmt = function
  | Alu64 (op, d, s) ->
      Format.fprintf fmt "alu64.%d r%d, %a" (alu_code op) d pp_src s
  | Alu32 (op, d, s) ->
      Format.fprintf fmt "alu32.%d r%d, %a" (alu_code op) d pp_src s
  | Endian_be (d, bits) -> Format.fprintf fmt "be%d r%d" bits d
  | Ld_imm64 (d, v) -> Format.fprintf fmt "lddw r%d, %Ld" d v
  | Ldx (_, d, s, off) -> Format.fprintf fmt "ldx r%d, [r%d%+d]" d s off
  | St_imm (_, d, off, v) -> Format.fprintf fmt "st [r%d%+d], #%d" d off v
  | Stx (_, d, off, s) -> Format.fprintf fmt "stx [r%d%+d], r%d" d off s
  | Ja off -> Format.fprintf fmt "ja %+d" off
  | Jmp (c, d, s, off) ->
      Format.fprintf fmt "j.%d r%d, %a, %+d" (jmp_code c) d pp_src s off
  | Call id -> Format.fprintf fmt "call %d" id
  | Exit -> Format.fprintf fmt "exit"
