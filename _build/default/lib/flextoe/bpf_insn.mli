(** eBPF instruction set: structured form, assembler, and the
    standard 8-byte wire encoding.

    FlexTOE accepts XDP modules as eBPF programs compiled to NFP
    assembly (§3.3). We implement a practical subset of the classic
    eBPF ISA — 64/32-bit ALU, byte-swaps, loads/stores, conditional
    jumps, helper calls, exit — enough to run the paper's
    connection-splicing (Listing 1), firewalling, and VLAN-strip
    modules. Programs can be authored directly as instruction arrays
    or via the tiny label-resolving {!assemble} layer, and round-trip
    through {!encode}/{!decode} in the kernel's instruction format. *)

type size = W8 | W16 | W32 | W64

type alu_op =
  | Add | Sub | Mul | Div | Or | And | Lsh | Rsh | Neg | Mod | Xor
  | Mov | Arsh

type jmp_cond =
  | Jeq | Jgt | Jge | Jlt | Jle | Jset | Jne | Jsgt | Jsge | Jslt | Jsle

type src = Reg of int | Imm of int

type t =
  | Alu64 of alu_op * int * src  (** dst op= src, 64-bit. *)
  | Alu32 of alu_op * int * src
  | Endian_be of int * int  (** dst, bits in {16,32,64}: to big-endian. *)
  | Ld_imm64 of int * int64
  | Ldx of size * int * int * int  (** dst <- [src + off]. *)
  | St_imm of size * int * int * int  (** [dst + off] <- imm. *)
  | Stx of size * int * int * int  (** [dst + off] <- src. *)
  | Ja of int  (** Unconditional jump, relative. *)
  | Jmp of jmp_cond * int * src * int  (** if (dst cond src) jump off. *)
  | Call of int  (** Helper call by id. *)
  | Exit

(** Helper ids understood by the VM:
    - [helper_map_lookup]: r1=map id, r2=key ptr; r0=value ptr or 0;
    - [helper_map_update]: r1=map, r2=key ptr, r3=value ptr; r0=0;
    - [helper_map_delete]: r1=map, r2=key ptr; r0=0 or -1;
    - [helper_ktime]: r0 = virtual time in ns;
    - [helper_adjust_head]: r2=delta; r0=0 or -1; moves the packet
      start (VLAN strip);
    - [helper_csum_fixup]: recompute the frame's IPv4/TCP checksums in
      place (the NFP does this in hardware on egress; the paper notes
      FlexTOE handles checksum updates for spliced segments). *)

val helper_map_lookup : int
val helper_map_update : int
val helper_map_delete : int
val helper_ktime : int
val helper_adjust_head : int
val helper_csum_fixup : int

(** XDP return codes (r0 at exit): aborted 0, drop 1, pass 2, tx 3,
    redirect 4. *)

val xdp_aborted : int
val xdp_drop : int
val xdp_pass : int
val xdp_tx : int
val xdp_redirect : int

(** {1 Assembler} *)

type labeled = L of string | I of t | Jl of jmp_cond * int * src * string
  | Jal of string
(** Assembly stream element: a label definition, a plain instruction,
    or a jump to a label. *)

val assemble : labeled list -> t array
(** Resolve labels to relative offsets. Raises [Invalid_argument] on
    unknown or duplicate labels. *)

(** {1 Wire format} *)

val encode : t array -> Bytes.t
(** Standard 8-byte-per-slot encoding ([Ld_imm64] uses two slots). *)

val decode : Bytes.t -> (t array, string) result

val pp : Format.formatter -> t -> unit
