type kind = Array_map | Hash_map

type t = {
  kind : kind;
  key_size : int;
  value_size : int;
  max_entries : int;
  arena : Bytes.t;  (* max_entries fixed-size value slots *)
  slots : (string, int) Hashtbl.t;  (* key -> slot index (hash maps) *)
  free : int Queue.t;
  mutable used : int;  (* array maps: all slots considered live *)
}

let create kind ~key_size ~value_size ~max_entries =
  if key_size <= 0 || value_size <= 0 || max_entries <= 0 then
    invalid_arg "Bpf_map.create: sizes must be positive";
  let free = Queue.create () in
  for i = 0 to max_entries - 1 do
    Queue.push i free
  done;
  {
    kind;
    key_size;
    value_size;
    max_entries;
    arena = Bytes.make (max_entries * value_size) '\000';
    slots = Hashtbl.create (2 * max_entries);
    free;
    used = 0;
  }

let kind t = t.kind
let key_size t = t.key_size
let value_size t = t.value_size
let max_entries t = t.max_entries

let length t =
  match t.kind with
  | Array_map -> t.max_entries
  | Hash_map -> Hashtbl.length t.slots

let array_index t key =
  if Bytes.length key < 4 then None
  else begin
    let b i = Char.code (Bytes.get key i) in
    let idx = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    if idx >= 0 && idx < t.max_entries then Some idx else None
  end

let slot_of_index t i =
  if i >= 0 && i < t.max_entries then Some (i * t.value_size) else None

let lookup_slot t ~key =
  match t.kind with
  | Array_map -> Option.bind (array_index t key) (slot_of_index t)
  | Hash_map -> begin
      match Hashtbl.find_opt t.slots (Bytes.to_string key) with
      | Some slot -> Some (slot * t.value_size)
      | None -> None
    end

let update t ~key ~value =
  if Bytes.length value <> t.value_size then Error "bad value size"
  else
    match t.kind with
    | Array_map -> begin
        match array_index t key with
        | Some i ->
            Bytes.blit value 0 t.arena (i * t.value_size) t.value_size;
            Ok ()
        | None -> Error "index out of bounds"
      end
    | Hash_map ->
        if Bytes.length key <> t.key_size then Error "bad key size"
        else begin
          let k = Bytes.to_string key in
          match Hashtbl.find_opt t.slots k with
          | Some slot ->
              Bytes.blit value 0 t.arena (slot * t.value_size) t.value_size;
              Ok ()
          | None ->
              if Queue.is_empty t.free then Error "map full"
              else begin
                let slot = Queue.pop t.free in
                Hashtbl.replace t.slots k slot;
                Bytes.blit value 0 t.arena (slot * t.value_size)
                  t.value_size;
                Ok ()
              end
        end

let lookup t ~key =
  match lookup_slot t ~key with
  | Some off -> Some (Bytes.sub t.arena off t.value_size)
  | None -> None

let delete t ~key =
  match t.kind with
  | Array_map -> false
  | Hash_map -> begin
      let k = Bytes.to_string key in
      match Hashtbl.find_opt t.slots k with
      | Some slot ->
          Hashtbl.remove t.slots k;
          Bytes.fill t.arena (slot * t.value_size) t.value_size '\000';
          Queue.push slot t.free;
          true
      | None -> false
    end

let arena t = t.arena

let iter f t =
  match t.kind with
  | Array_map ->
      for i = 0 to t.max_entries - 1 do
        let key = Bytes.create 4 in
        Bytes.set key 0 (Char.chr (i land 0xFF));
        Bytes.set key 1 (Char.chr ((i lsr 8) land 0xFF));
        Bytes.set key 2 (Char.chr ((i lsr 16) land 0xFF));
        Bytes.set key 3 (Char.chr ((i lsr 24) land 0xFF));
        f key (Bytes.sub t.arena (i * t.value_size) t.value_size)
      done
  | Hash_map ->
      Hashtbl.iter
        (fun k slot ->
          f (Bytes.of_string k)
            (Bytes.sub t.arena (slot * t.value_size) t.value_size))
        t.slots
