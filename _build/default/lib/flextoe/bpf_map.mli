(** BPF maps: array and hash maps over fixed-size byte keys/values.

    XDP modules store state in BPF maps that the control plane can
    also read and update (§3.3) — e.g. a firewall's blacklist or the
    splicing table. Value storage is a flat byte arena so the VM can
    hand out stable "pointers" (arena offsets) from
    [map_lookup_elem], with in-place value mutation, matching eBPF
    semantics. *)

type kind = Array_map | Hash_map

type t

val create :
  kind -> key_size:int -> value_size:int -> max_entries:int -> t

val kind : t -> kind
val key_size : t -> int
val value_size : t -> int
val max_entries : t -> int
val length : t -> int

val update : t -> key:Bytes.t -> value:Bytes.t -> (unit, string) result
(** Insert or overwrite. For [Array_map], the key is a little-endian
    u32 index. Fails when full or on size mismatch. *)

val lookup : t -> key:Bytes.t -> Bytes.t option
(** Copy of the current value. *)

val delete : t -> key:Bytes.t -> bool
(** [false] if absent. [Array_map] entries cannot be deleted. *)

(** {1 VM internals} *)

val lookup_slot : t -> key:Bytes.t -> int option
(** Arena byte offset of the value (stable until delete). *)

val slot_of_index : t -> int -> int option
val arena : t -> Bytes.t
(** The value arena; the VM reads and writes values through it. *)

val iter : (Bytes.t -> Bytes.t -> unit) -> t -> unit
(** Iterate (key, value copy) pairs. *)
