type observation = {
  acked_bytes : int;
  ecn_bytes : int;
  fast_retx : int;
  rtt_ns : int;
  interval : Sim.Time.t;
}

type decision = Keep | Rate of int | Uncongested

let min_rate_bps = 2_000_000
(* Additive-dominated growth: a fixed 8 Mbps term drives paced flows
   toward equal shares (pure proportional growth preserves ratios and
   never converges to fairness), while the rate/64 term keeps recovery
   of fat flows from taking thousands of RTTs. *)
let ai_increment rate = max 8_000_000 (rate / 64)

let throughput_estimate obs =
  let s = Sim.Time.to_sec obs.interval in
  if s <= 0. then 0
  else int_of_float (float_of_int (8 * obs.acked_bytes) /. s)

(* Clamp and convert a raw rate into a decision. *)
let decide ~wire_bps bps =
  if bps >= wire_bps then Uncongested else Rate (max bps min_rate_bps)

module Dctcp = struct
  type t = { mutable alpha : float; mutable rate : int }

  let create () = { alpha = 0.; rate = 0 }
  let alpha t = t.alpha
  let rate_bps t = t.rate

  let g = 1. /. 16.

  let current_rate t ~wire_bps obs =
    if t.rate > 0 then t.rate
    else begin
      (* Unpaced flow entering congestion: start from what it actually
         achieved. *)
      let est = throughput_estimate obs in
      if est <= 0 then wire_bps else min est wire_bps
    end

  let update t ~wire_bps obs =
    if obs.acked_bytes > 0 then begin
      let frac =
        float_of_int obs.ecn_bytes /. float_of_int obs.acked_bytes
      in
      t.alpha <- (t.alpha *. (1. -. g)) +. (frac *. g)
    end;
    if obs.ecn_bytes > 0 || obs.fast_retx > 0 then begin
      let rate = current_rate t ~wire_bps obs in
      let cut =
        if obs.fast_retx > 0 then 0.5 else 1. -. (t.alpha /. 2.)
      in
      let d = decide ~wire_bps (int_of_float (float_of_int rate *. cut)) in
      (match d with
      | Rate r -> t.rate <- r
      | Uncongested -> t.rate <- 0
      | Keep -> ());
      d
    end
    else if t.rate > 0 then begin
      let d = decide ~wire_bps (t.rate + ai_increment t.rate) in
      (match d with
      | Rate r -> t.rate <- r
      | Uncongested -> t.rate <- 0
      | Keep -> ());
      d
    end
    else Keep
end

module Timely = struct
  type t = {
    mutable rate : int;
    mutable prev_rtt_ns : int;
    mutable min_rtt_ns : int;
  }

  let create () = { rate = 0; prev_rtt_ns = 0; min_rtt_ns = 0 }
  let rate_bps t = t.rate
  let t_low_ns = 50_000
  let t_high_ns = 500_000
  let beta = 0.8

  let current_rate t ~wire_bps obs =
    if t.rate > 0 then t.rate
    else begin
      let est = throughput_estimate obs in
      if est <= 0 then wire_bps else min est wire_bps
    end

  let apply t ~wire_bps bps =
    let d = decide ~wire_bps bps in
    (match d with
    | Rate r -> t.rate <- r
    | Uncongested -> t.rate <- 0
    | Keep -> ());
    d

  let update t ~wire_bps obs =
    let rtt = obs.rtt_ns in
    if obs.fast_retx > 0 then
      apply t ~wire_bps (current_rate t ~wire_bps obs / 2)
    else if rtt <= 0 then Keep
    else begin
      if t.min_rtt_ns = 0 || rtt < t.min_rtt_ns then t.min_rtt_ns <- rtt;
      let decision =
        if rtt < t_low_ns then
          if t.rate > 0 then apply t ~wire_bps (t.rate + ai_increment t.rate)
          else Keep
        else if rtt > t_high_ns then
          apply t ~wire_bps
            (int_of_float
               (float_of_int (current_rate t ~wire_bps obs)
               *. (1.
                  -. (beta *. (1. -. (float_of_int t_high_ns
                                      /. float_of_int rtt))))))
        else begin
          let gradient =
            float_of_int (rtt - t.prev_rtt_ns)
            /. float_of_int (max 1 t.min_rtt_ns)
          in
          if gradient <= 0. then
            if t.rate > 0 then
              apply t ~wire_bps (t.rate + ai_increment t.rate)
            else Keep
          else
            apply t ~wire_bps
              (int_of_float
                 (float_of_int (current_rate t ~wire_bps obs)
                 *. (1. -. (beta *. Float.min 1. gradient))))
        end
      in
      t.prev_rtt_ns <- rtt;
      decision
    end
end
