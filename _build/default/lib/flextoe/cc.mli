(** Congestion-control algorithms for the control-plane loop (§3.4).

    The control plane periodically reads per-flow statistics from the
    data path (acked bytes, ECN-marked bytes, fast retransmits, RTT
    estimate) and computes a new transmission rate, which the flow
    scheduler enforces. Both of the paper's policies are implemented:
    DCTCP (ECN-fraction driven) and TIMELY (RTT-gradient driven).

    The functions here are pure: state in, observation in, decision
    out — so each algorithm is unit-testable without a data path. *)

type observation = {
  acked_bytes : int;  (** Bytes newly acknowledged this interval. *)
  ecn_bytes : int;  (** ...of which acknowledged with ECE set. *)
  fast_retx : int;  (** Fast retransmits this interval. *)
  rtt_ns : int;  (** Smoothed RTT estimate; 0 = no sample. *)
  interval : Sim.Time.t;  (** Time since the last iteration. *)
}

type decision =
  | Keep  (** No change. *)
  | Rate of int  (** Pace at this many bits per second. *)
  | Uncongested  (** Remove pacing (round-robin bypass). *)

val min_rate_bps : int

val ai_increment : int -> int
(** Per-decision rate increase for a paced flow:
    [max 8 Mbps (rate/64)] — additive-dominated near fair shares (so
    flows converge to equality, as DCTCP's +1 MSS/RTT does) with a
    mild proportional term so fat flows recover in tens rather than
    thousands of RTTs. *)

val throughput_estimate : observation -> int
(** Achieved bits per second over the interval (used to initialise
    the rate of a previously unpaced flow entering congestion). *)

module Dctcp : sig
  type t
  (** Per-flow DCTCP state: the EWMA marking fraction [alpha]
      (gain 1/16) and the current rate. *)

  val create : unit -> t
  val alpha : t -> float
  val rate_bps : t -> int
  (** 0 when uncongested. *)

  val update : t -> wire_bps:int -> observation -> decision
  (** One control iteration: update alpha from the ECN fraction;
      multiplicative decrease by [alpha/2] on marks (or halve on
      retransmissions), additive increase otherwise; return to
      uncongested once the rate reaches the wire rate. *)
end

module Timely : sig
  type t

  val create : unit -> t
  val rate_bps : t -> int

  val update : t -> wire_bps:int -> observation -> decision
  (** RTT-gradient control: additive increase below [t_low], fixed
      multiplicative decrease above [t_high], gradient-proportional
      decrease in between (β = 0.8). *)

  val t_low_ns : int
  val t_high_ns : int
end
