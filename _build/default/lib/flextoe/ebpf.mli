(** The eBPF virtual machine.

    Interprets {!Bpf_insn} programs against a packet, a 512-byte
    stack, and a set of {!Bpf_map}s, with the XDP calling convention:
    r1 points to a context holding [data]/[data_end] pointers, and r0
    at [Exit] is the XDP action. Memory is a segmented address space
    (context, packet, stack, map value arenas); every access is
    bounds-checked and a bad access aborts the program (XDP_ABORTED),
    like the hardware offload would.

    The instruction count of each run is reported so the data path can
    charge FPC cycles (eBPF compiles roughly 1:1 to NFP instructions). *)

type program

val load : ?max_insns:int -> Bpf_insn.t array -> (program, string) result
(** Validate and load: bounded size, jump targets in range, register
    numbers valid, no writes to r10, known helpers, and an [Exit]
    present. (A static verifier in the spirit of, but much weaker
    than, the kernel's.) *)

val instructions : program -> Bpf_insn.t array

type outcome = {
  ret : int;  (** r0 at exit (an XDP action code), or
                  {!Bpf_insn.xdp_aborted} on fault. *)
  insns_executed : int;
  packet : Bytes.t;  (** Final packet view (head adjustments and
                          stores applied). *)
}

val run :
  program ->
  maps:Bpf_map.t array ->
  now_ns:int64 ->
  packet:Bytes.t ->
  outcome
(** Execute over (a copy of) [packet]. Runaway programs are cut off
    at 65536 instructions and abort. *)
