(** Programmable flow classification (§2.1, §3.3).

    An eBPF module classifying ingress segments by destination port: a
    control-plane-managed BPF hash map assigns ports to traffic
    classes, and the program bumps a per-class packet counter in a BPF
    array map — in place, through the map-value pointer, exactly as
    real XDP classifiers do. Unclassified traffic lands in class 0.
    All segments pass through to the data path. *)

type t

val classes : int
(** Number of traffic classes (8). *)

val program : unit -> Bpf_insn.t array
val create : Sim.Engine.t -> t
val xdp : t -> Xdp.t
val install : t -> Datapath.t -> unit

val classify : t -> port:int -> cls:int -> unit
(** Control plane: assign a destination port to a class (1..7). *)

val declassify : t -> port:int -> unit
val class_of_port : t -> port:int -> int

val count : t -> cls:int -> int
(** Packets seen in a class so far. *)
