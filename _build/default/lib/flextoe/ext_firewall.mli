(** Firewall XDP module: drop ingress frames from blacklisted source
    IPs, with the blacklist in a BPF hash map the control plane
    updates at run time (§3.3). *)

type t

val create : Sim.Engine.t -> t
val program : unit -> Bpf_insn.t array
(** The eBPF program (exposed for tests and inspection). *)

val xdp : t -> Xdp.t
val install : t -> Datapath.t -> unit
val block : t -> ip:int -> unit
val unblock : t -> ip:int -> unit
val blocked : t -> int
(** Number of blacklisted addresses. *)

val dropped : t -> int
(** Frames dropped so far. *)
