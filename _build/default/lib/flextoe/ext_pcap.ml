type filter =
  | All
  | Host of int
  | Src_host of int
  | Dst_host of int
  | Port of int
  | Tcp_flag of [ `Syn | `Fin | `Rst | `Ack | `Psh ]
  | And of filter * filter
  | Or of filter * filter
  | Not of filter

let rec matches f (frame : Tcp.Segment.frame) =
  let seg = frame.Tcp.Segment.seg in
  match f with
  | All -> true
  | Host ip -> seg.Tcp.Segment.src_ip = ip || seg.Tcp.Segment.dst_ip = ip
  | Src_host ip -> seg.Tcp.Segment.src_ip = ip
  | Dst_host ip -> seg.Tcp.Segment.dst_ip = ip
  | Port p -> seg.Tcp.Segment.src_port = p || seg.Tcp.Segment.dst_port = p
  | Tcp_flag flag -> begin
      let fl = seg.Tcp.Segment.flags in
      match flag with
      | `Syn -> fl.Tcp.Segment.syn
      | `Fin -> fl.Tcp.Segment.fin
      | `Rst -> fl.Tcp.Segment.rst
      | `Ack -> fl.Tcp.Segment.ack
      | `Psh -> fl.Tcp.Segment.psh
    end
  | And (a, b) -> matches a frame && matches b frame
  | Or (a, b) -> matches a frame || matches b frame
  | Not a -> not (matches a frame)

type record = { ts : Sim.Time.t; orig_len : int; data : Bytes.t }

type t = {
  engine : Sim.Engine.t;
  snaplen : int;
  limit : int;
  filter : filter;
  records : record Queue.t;
  mutable seen : int;
  mutable captured : int;
}

let create engine ?(snaplen = 96) ?(limit = 65536) ?(filter = All) () =
  { engine; snaplen; limit; filter; records = Queue.create ();
    seen = 0; captured = 0 }

let tap t (_dir : Datapath.direction) frame =
  t.seen <- t.seen + 1;
  if matches t.filter frame then begin
    t.captured <- t.captured + 1;
    let bytes = Tcp.Wire.encode frame in
    let orig_len = Bytes.length bytes in
    let data =
      if orig_len > t.snaplen then Bytes.sub bytes 0 t.snaplen else bytes
    in
    Queue.push { ts = Sim.Engine.now t.engine; orig_len; data } t.records;
    if Queue.length t.records > t.limit then ignore (Queue.pop t.records)
  end

let attach t dp = Datapath.set_capture dp (Some (tap t))
let detach dp = Datapath.set_capture dp None
let captured t = t.captured
let seen t = t.seen

let put_u32_le b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let put_u16_le b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let to_pcap t =
  let total =
    Queue.fold (fun n r -> n + 16 + Bytes.length r.data) 24 t.records
  in
  let out = Bytes.make total '\000' in
  (* Global header. *)
  put_u32_le out 0 0xa1b2c3d4;
  put_u16_le out 4 2;  (* major *)
  put_u16_le out 6 4;  (* minor *)
  put_u32_le out 16 t.snaplen;
  put_u32_le out 20 1;  (* LINKTYPE_ETHERNET *)
  let off = ref 24 in
  Queue.iter
    (fun r ->
      let usec_total = int_of_float (Sim.Time.to_us r.ts) in
      put_u32_le out !off (usec_total / 1_000_000);
      put_u32_le out (!off + 4) (usec_total mod 1_000_000);
      put_u32_le out (!off + 8) (Bytes.length r.data);
      put_u32_le out (!off + 12) r.orig_len;
      Bytes.blit r.data 0 out (!off + 16) (Bytes.length r.data);
      off := !off + 16 + Bytes.length r.data)
    t.records;
  out

let write_file t path =
  let oc = open_out_bin path in
  output_bytes oc (to_pcap t);
  close_out oc
