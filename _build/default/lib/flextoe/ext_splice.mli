(** Connection splicing as an XDP module — the paper's Listing 1
    (Appendix B), AccelTCP-style proxy bypass.

    Spliced segments are header-patched (MACs, IPs, ports, seq/ack
    deltas) and bounced out the MAC without touching the proxy host;
    control-flagged segments tear the entry down and go to the
    control plane. *)

type t

val program : unit -> Bpf_insn.t array
val value_size : int
val create : Sim.Engine.t -> t
val xdp : t -> Xdp.t
val install : t -> Datapath.t -> unit

type rewrite = {
  remote_mac : int;
  remote_ip : int;
  local_port : int;
  remote_port : int;
  seq_delta : int;  (** mod 2^32 *)
  ack_delta : int;
}

val encode_rewrite : rewrite -> Bytes.t

val add :
  t ->
  src_ip:int ->
  dst_ip:int ->
  src_port:int ->
  dst_port:int ->
  rewrite ->
  unit
(** Install a one-direction splice keyed by the arriving segment's
    source-oriented 4-tuple. *)

val remove :
  t -> src_ip:int -> dst_ip:int -> src_port:int -> dst_port:int -> unit

val splice_pair :
  t ->
  dp:Datapath.t ->
  a:Control_plane.conn_handle ->
  b:Control_plane.conn_handle ->
  unit
(** Splice two established proxy connections in both directions,
    deriving port translations and seq/ack deltas from their initial
    sequence numbers. Splice before payload flows: have the proxy
    listen with [~syn_ack_window:0] so the client cannot send until
    the splice's window-update nudges (sent through [dp]) arrive. *)

val spliced_segments : t -> int
val entries : t -> int
