(** VLAN-strip XDP module: remove 802.1Q tags on ingress (Table 2's
    "XDP (vlan-strip)" extension). *)

type t

val program : unit -> Bpf_insn.t array
val create : Sim.Engine.t -> t
val xdp : t -> Xdp.t
val install : t -> Datapath.t -> unit

val stripped : t -> int
(** Frames that passed through the module (tagged or not). *)
