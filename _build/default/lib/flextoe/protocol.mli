(** Protocol-stage logic: the TCP data-path state machine (§3.1).

    This is the one pipeline stage that must execute atomically per
    connection; these functions are pure transition logic over the
    {!Conn_state.proto} partition — the data path ({!Datapath})
    supplies atomicity (per-connection locking on the protocol FPC)
    and charges the cycle costs.

    Time is passed as [now_us] where 32-bit TCP timestamps are
    involved. *)

val rx :
  Config.t ->
  now:Sim.Time.t ->
  Conn_state.t ->
  Meta.rx_summary ->
  alloc_gseq:(unit -> int) ->
  Meta.rx_verdict
(** Receive processing (Win step): cumulative-ACK handling with
    duplicate-ACK counting and go-back-N fast retransmit, window
    update, reassembly via the single out-of-order interval, FIN,
    ECN-echo bookkeeping, RTT sampling from the timestamp option, and
    acknowledgment generation. FlexTOE acknowledges every received
    data segment (§5.2). [alloc_gseq] allocates the egress reorder
    sequence for a generated ACK. *)

val tx :
  Config.t ->
  now:Sim.Time.t ->
  Conn_state.t ->
  alloc_gseq:(unit -> int) ->
  Meta.tx_desc option
(** Transmission (Seq step): emit the next segment if the send window
    (peer window minus in-flight) and the TX buffer allow, assigning
    the TCP sequence number and buffer position; piggybacks FIN on the
    last segment. [None] when nothing can be sent. *)

type hc_result = {
  hc_wake_tx : bool;
  hc_window_update : Meta.ack_info option;
      (** Window-update ACK when an RX credit re-opens a closed
          window. *)
}

val hc :
  Config.t ->
  now:Sim.Time.t ->
  Conn_state.t ->
  Meta.hc_op ->
  alloc_gseq:(unit -> int) ->
  hc_result
(** Host-control processing (Win/Fin/Reset steps): transmit-window
    extension, receive credits, connection close, and control-plane
    triggered go-back-N retransmission. *)

val us_of_time : Sim.Time.t -> int
(** 32-bit microsecond timestamp clock used in the TCP timestamp
    option. *)
