lib/host/api.ml: Bytes Host_cpu
