lib/host/api.mli: Bytes Host_cpu
