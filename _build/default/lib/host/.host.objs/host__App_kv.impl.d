lib/host/app_kv.ml: Api Bytes Char Framing Hashtbl Host_cpu Queue Rpc Sim String
