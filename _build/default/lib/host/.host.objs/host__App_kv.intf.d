lib/host/app_kv.mli: Api Bytes Rpc Sim
