lib/host/framing.ml: Buffer Bytes Char
