lib/host/framing.mli: Bytes
