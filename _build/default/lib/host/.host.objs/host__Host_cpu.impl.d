lib/host/host_cpu.ml: Array Float Hashtbl List Option Queue Sim String
