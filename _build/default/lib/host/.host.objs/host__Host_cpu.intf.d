lib/host/host_cpu.mli: Sim
