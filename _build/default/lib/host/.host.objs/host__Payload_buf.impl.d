lib/host/payload_buf.ml: Bytes
