lib/host/payload_buf.mli: Bytes
