lib/host/rpc.ml: Api Array Bytes Framing Hashtbl Host_cpu List Queue Sim
