lib/host/rpc.mli: Api Bytes Sim
