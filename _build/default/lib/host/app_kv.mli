(** A memcached-style key-value store over the socket API.

    The paper's headline application (§2.1, §5.1): a KV server driven
    by closed-loop clients issuing transactions on persistent
    connections with 32 B keys and values, generated memtier-style.

    Protocol (binary, framed with {!Framing}):
    - request: [op:1] [klen:2 BE] [vlen:4 BE] [key] [value]
      where op 0 = GET (vlen 0), 1 = SET.
    - response: [status:1] [vlen:4 BE] [value]
      where status 0 = ok, 1 = miss, 2 = bad request. *)

type request = Get of Bytes.t | Set of Bytes.t * Bytes.t
type response = Value of Bytes.t | Stored | Miss | Bad_request

val encode_request : request -> Bytes.t
(** Unframed request body (callers frame it). *)

val decode_request : Bytes.t -> request option
val encode_response : response -> Bytes.t
val decode_response : Bytes.t -> response option

type server

val server :
  endpoint:Api.endpoint -> port:int -> app_cycles:int -> unit -> server
(** Start a KV server. Request handlers run on each accepted socket's
    delivery core (the stack distributes sockets over its configured
    cores), modelling a multi-threaded memcached; [app_cycles] is the
    per-request application work (hash + store lookup). *)

val entries : server -> int

val client :
  endpoint:Api.endpoint ->
  engine:Sim.Engine.t ->
  server_ip:int ->
  server_port:int ->
  conns:int ->
  pipeline:int ->
  key_bytes:int ->
  value_bytes:int ->
  set_ratio:float ->
  ?think_cycles:int ->
  stats:Rpc.Stats.t ->
  unit ->
  unit
(** memtier-style closed-loop transaction generator: each connection
    keeps [pipeline] transactions outstanding, each SET with
    probability [set_ratio] else GET, over a small keyspace so GETs
    hit. [think_cycles] (default 200) is the client-side work to
    generate/parse each transaction, charged to the client's core —
    it also spreads requests so they are not artificially batched
    into single segments. *)
