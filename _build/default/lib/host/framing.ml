let encode payload =
  let n = Bytes.length payload in
  let out = Bytes.create (4 + n) in
  Bytes.set out 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set out 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set out 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set out 3 (Char.chr (n land 0xFF));
  Bytes.blit payload 0 out 4 n;
  out

let encoded_len n = n + 4

(* Stream bytes accumulate in [buf]; [pos] is the consumed prefix.
   The prefix is dropped only when it dominates the buffer, keeping
   every operation amortised O(1) per byte. *)
type t = { mutable buf : Buffer.t; mutable pos : int }

let create () = { buf = Buffer.create 4096; pos = 0 }

let push t chunk = Buffer.add_bytes t.buf chunk

let compact t =
  if t.pos > 65536 && t.pos * 2 > Buffer.length t.buf then begin
    let live = Buffer.length t.buf - t.pos in
    let fresh = Buffer.create (max 4096 live) in
    Buffer.add_subbytes fresh (Buffer.to_bytes t.buf) t.pos live;
    t.buf <- fresh;
    t.pos <- 0
  end

let byte t i = Char.code (Buffer.nth t.buf (t.pos + i))

let next t =
  let avail = Buffer.length t.buf - t.pos in
  if avail < 4 then None
  else begin
    let n =
      (byte t 0 lsl 24) lor (byte t 1 lsl 16) lor (byte t 2 lsl 8)
      lor byte t 3
    in
    if avail < 4 + n then None
    else begin
      let payload = Bytes.of_string (Buffer.sub t.buf (t.pos + 4) n) in
      t.pos <- t.pos + 4 + n;
      compact t;
      Some payload
    end
  end

let rec iter_available t f =
  match next t with
  | Some m ->
      f m;
      iter_available t f
  | None -> ()

let buffered t = Buffer.length t.buf - t.pos
