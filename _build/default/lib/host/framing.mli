(** Length-prefixed message framing over a byte stream.

    RPC workloads exchange messages of [4-byte big-endian length ++
    payload]. The decoder accumulates arbitrary stream chunks and
    yields complete messages, independent of segmentation. *)

val encode : Bytes.t -> Bytes.t
(** Prepend the 4-byte length header. *)

val encoded_len : int -> int
(** Wire size of a message with a payload of the given size. *)

type t
(** A streaming decoder. *)

val create : unit -> t

val push : t -> Bytes.t -> unit
(** Feed a chunk of the stream. *)

val next : t -> Bytes.t option
(** Pop the next complete message payload, if available. *)

val iter_available : t -> (Bytes.t -> unit) -> unit
(** Pop and process every complete message. *)

val buffered : t -> int
(** Bytes held but not yet returned. *)
