(** Host CPU model.

    Each core is a FIFO work server: submitted items execute in order,
    each occupying the core for a given number of cycles. Per-category
    cycle accounting reproduces the paper's Table 1 breakdown (NIC
    driver / TCP stack / sockets / application / other). *)

type t
(** A multi-core host CPU. *)

type core

val create : Sim.Engine.t -> ?freq:Sim.Time.Freq.t -> cores:int -> unit -> t
(** [freq] defaults to 2 GHz (the testbed's Xeon Gold 6138). *)

val engine : t -> Sim.Engine.t
val cores : t -> int
val core : t -> int -> core
val freq : t -> Sim.Time.Freq.t

val set_noise : t -> interval_cycles:int -> mean_cycles:int -> unit
(** System jitter: while a core executes, it suffers an
    exponentially-distributed stall of mean [mean_cycles] roughly once
    per [interval_cycles] of busy time (scheduler preemption,
    interrupts, SMIs). Charged to the "noise" accounting category;
    this is what produces latency tails in an otherwise deterministic
    simulation, and it scales with CPU time rather than with the
    number of work items. *)

val exec : core -> ?category:string -> cycles:int -> (unit -> unit) -> unit
(** Enqueue a work item of [cycles]; the continuation runs when it
    completes. [category] (default ["other"]) attributes the cycles
    for accounting. *)

val exec_now : core -> ?category:string -> cycles:int -> unit -> unit
(** Account cycles with no continuation. *)

val busy_time : core -> Sim.Time.t
val queue_length : core -> int

val cycles_by_category : t -> (string * int) list
(** Total cycles charged per category across all cores, sorted by
    category name. *)

val total_cycles : t -> int

val utilization : core -> total:Sim.Time.t -> float
