type t = { data : Bytes.t; size : int }

let create ~size =
  if size <= 0 then invalid_arg "Payload_buf.create: size must be positive";
  { data = Bytes.create size; size }

let size t = t.size

let write t ~off ~src ~src_off ~len =
  if len > t.size then invalid_arg "Payload_buf.write: larger than buffer";
  let start = ((off mod t.size) + t.size) mod t.size in
  let first = min len (t.size - start) in
  Bytes.blit src src_off t.data start first;
  if len > first then Bytes.blit src (src_off + first) t.data 0 (len - first)

let read_into t ~off ~dst ~dst_off ~len =
  if len > t.size then invalid_arg "Payload_buf.read: larger than buffer";
  let start = ((off mod t.size) + t.size) mod t.size in
  let first = min len (t.size - start) in
  Bytes.blit t.data start dst dst_off first;
  if len > first then Bytes.blit t.data 0 dst (dst_off + first) (len - first)

let read t ~off ~len =
  let out = Bytes.create len in
  read_into t ~off ~dst:out ~dst_off:0 ~len;
  out
