(** Per-socket payload buffers in host memory.

    FlexTOE keeps per-socket RX/TX payload buffers in per-process host
    memory (allocated from hugepages by the control plane); the NIC
    data-path DMAs payloads directly to/from them at positions
    computed by the protocol stage. The buffer is addressed by
    {e absolute stream offset}: offset [o] maps to ring index
    [o mod size]. Range accounting (what is valid, acked, readable) is
    the caller's responsibility, exactly as in FlexTOE where the
    protocol stage owns the positions (§3, Table 5). *)

type t

val create : size:int -> t
(** [size] must be positive (FlexTOE would also require a power of
    two; we only require positivity). *)

val size : t -> int

val write : t -> off:int -> src:Bytes.t -> src_off:int -> len:int -> unit
(** Copy [len] bytes of [src] starting at [src_off] into the ring at
    stream offset [off] (wrapping). Raises [Invalid_argument] if
    [len > size]. *)

val read : t -> off:int -> len:int -> Bytes.t
(** Copy out [len] bytes at stream offset [off]. *)

val read_into : t -> off:int -> dst:Bytes.t -> dst_off:int -> len:int -> unit
