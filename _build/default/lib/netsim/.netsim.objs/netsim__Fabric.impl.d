lib/netsim/fabric.ml: Float Hashtbl Sim Tcp
