lib/netsim/fabric.mli: Sim Tcp
