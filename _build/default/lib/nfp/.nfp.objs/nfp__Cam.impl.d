lib/nfp/cam.ml: Array
