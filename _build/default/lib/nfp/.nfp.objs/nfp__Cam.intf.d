lib/nfp/cam.mli:
