lib/nfp/direct_cache.ml: Array
