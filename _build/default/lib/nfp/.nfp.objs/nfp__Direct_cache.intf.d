lib/nfp/direct_cache.mli:
