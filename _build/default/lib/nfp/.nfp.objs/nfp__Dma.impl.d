lib/nfp/dma.ml: Array Float Params Queue Sim
