lib/nfp/dma.mli: Params Sim
