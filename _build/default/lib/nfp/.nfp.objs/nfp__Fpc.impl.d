lib/nfp/fpc.ml: List Memory Params Queue Sim
