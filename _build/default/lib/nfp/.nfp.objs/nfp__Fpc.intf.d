lib/nfp/fpc.mli: Memory Params Sim
