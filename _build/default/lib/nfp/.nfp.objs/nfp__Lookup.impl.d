lib/nfp/lookup.ml: Hashtbl List Option
