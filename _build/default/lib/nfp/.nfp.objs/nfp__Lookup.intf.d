lib/nfp/lookup.mli:
