lib/nfp/lru.ml: Hashtbl
