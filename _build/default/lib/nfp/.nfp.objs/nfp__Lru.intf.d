lib/nfp/lru.mli:
