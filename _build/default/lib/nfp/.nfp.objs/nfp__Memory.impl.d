lib/nfp/memory.ml: Format Params
