lib/nfp/memory.mli: Format Params
