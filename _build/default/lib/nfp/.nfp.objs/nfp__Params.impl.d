lib/nfp/params.ml: Sim
