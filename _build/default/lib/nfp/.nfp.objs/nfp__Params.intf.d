lib/nfp/params.mli: Sim
