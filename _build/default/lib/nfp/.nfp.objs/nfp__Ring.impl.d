lib/nfp/ring.ml: Queue
