lib/nfp/ring.mli:
