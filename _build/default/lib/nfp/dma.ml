type queue_state = {
  mutable inflight : int;
  waiting : (int * (unit -> unit)) Queue.t;
}

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  queues : queue_state array;
  mutable link_free : Sim.Time.t;  (* when the shared link next frees *)
  mutable completed : int;
  mutable bytes : int;
}

let create engine ~params =
  {
    engine;
    params;
    queues =
      Array.init params.Params.dma_queues (fun _ ->
          { inflight = 0; waiting = Queue.create () });
    link_free = Sim.Time.zero;
    completed = 0;
    bytes = 0;
  }

let serialization_time t bytes =
  if bytes <= 0 then 0
  else
    (* bits / (Gb/s) = ns; work in picoseconds. *)
    let ps = float_of_int (8 * bytes) *. 1000. /. t.params.Params.pcie_gbps in
    int_of_float (Float.round ps)

let rec start t q ~bytes k =
  q.inflight <- q.inflight + 1;
  let now = Sim.Engine.now t.engine in
  let ser = serialization_time t bytes in
  let start_time = max now t.link_free in
  t.link_free <- start_time + ser;
  let completion =
    start_time + ser + t.params.Params.pcie_base_latency - now
  in
  Sim.Engine.schedule t.engine completion (fun () ->
      t.completed <- t.completed + 1;
      t.bytes <- t.bytes + bytes;
      q.inflight <- q.inflight - 1;
      (* Free slot: admit a waiter, if any. *)
      if not (Queue.is_empty q.waiting) then begin
        let wbytes, wk = Queue.pop q.waiting in
        start t q ~bytes:wbytes wk
      end;
      k ())

let issue t ~queue ~bytes k =
  let q = t.queues.(queue mod Array.length t.queues) in
  if q.inflight < t.params.Params.dma_inflight then start t q ~bytes k
  else Queue.push (bytes, k) q.waiting

let in_flight t = Array.fold_left (fun n q -> n + q.inflight) 0 t.queues

let queued t =
  Array.fold_left (fun n q -> n + Queue.length q.waiting) 0 t.queues

let transfers_completed t = t.completed
let bytes_transferred t = t.bytes
let busy_until t = t.link_free
