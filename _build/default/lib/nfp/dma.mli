(** PCIe DMA engine model.

    The PCIe island exposes a pair of DMA transaction queues; FPCs can
    keep up to 128 asynchronous operations in flight on each (§2.3).
    The link itself is a serial resource: transfers share PCIe
    bandwidth, so a congested link stretches completion times — the
    effect behind the paper's TX-reordering example (§3.2, Figure 7).

    A transfer completes after [base_latency + serialisation on the
    shared link]. When a queue's in-flight window is full, further
    issues wait (modelling the FPC's descriptor-slot backpressure). *)

type t

val create : Sim.Engine.t -> params:Params.t -> t

val issue : t -> queue:int -> bytes:int -> (unit -> unit) -> unit
(** [issue t ~queue ~bytes k] starts a DMA of [bytes]; [k] runs at
    completion time. [queue] selects a transaction queue
    (mod the configured queue count). Zero-byte transfers model pure
    descriptor reads/writes and still pay base latency. *)

val in_flight : t -> int
(** Transfers currently occupying in-flight slots (all queues). *)

val queued : t -> int
(** Issues waiting for an in-flight slot. *)

val transfers_completed : t -> int
val bytes_transferred : t -> int

val busy_until : t -> Sim.Time.t
(** Time at which the shared link drains, given current commitments. *)
