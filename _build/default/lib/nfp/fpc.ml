type phase = Compute of int | Mem of Memory.level | Sleep of Sim.Time.t

type work = { phases : phase list; k : unit -> unit }

type t = {
  engine : Sim.Engine.t;
  params : Params.t;
  name : string;
  threads : int;
  mutable idle_threads : int;
  pending : work Queue.t;
  (* Issue unit: serves one compute burst at a time. *)
  mutable core_busy : bool;
  core_waiters : (int * (unit -> unit)) Queue.t;
  mutable busy : Sim.Time.t;
  mutable completed : int;
}

let create engine ~params ?threads ~name () =
  let threads =
    match threads with Some n -> n | None -> params.Params.fpc_threads
  in
  if threads <= 0 then invalid_arg "Fpc.create: threads must be positive";
  {
    engine;
    params;
    name;
    threads;
    idle_threads = threads;
    pending = Queue.create ();
    core_busy = false;
    core_waiters = Queue.create ();
    busy = 0;
    completed = 0;
  }

let name t = t.name

let mem_latency t level =
  Sim.Time.Freq.cycles t.params.Params.fpc_freq
    (Memory.latency_cycles t.params level)

(* Grant the core to a compute burst; on completion, hand it to the
   next waiter. *)
let rec grant_core t cycles k =
  t.core_busy <- true;
  let dur = Sim.Time.Freq.cycles t.params.Params.fpc_freq cycles in
  t.busy <- t.busy + dur;
  Sim.Engine.schedule t.engine dur (fun () ->
      t.core_busy <- false;
      release_core t;
      k ())

and release_core t =
  if (not t.core_busy) && not (Queue.is_empty t.core_waiters) then begin
    let cycles, k = Queue.pop t.core_waiters in
    grant_core t cycles k
  end

let request_core t cycles k =
  if t.core_busy then Queue.push (cycles, k) t.core_waiters
  else grant_core t cycles k

let rec run_phases t phases k =
  match phases with
  | [] ->
      t.completed <- t.completed + 1;
      k ();
      thread_done t
  | Compute 0 :: rest -> run_phases t rest k
  | Compute cycles :: rest ->
      request_core t cycles (fun () -> run_phases t rest k)
  | Mem level :: rest ->
      Sim.Engine.schedule t.engine (mem_latency t level) (fun () ->
          run_phases t rest k)
  | Sleep d :: rest ->
      Sim.Engine.schedule t.engine d (fun () -> run_phases t rest k)

and thread_done t =
  if Queue.is_empty t.pending then t.idle_threads <- t.idle_threads + 1
  else begin
    let w = Queue.pop t.pending in
    run_phases t w.phases w.k
  end

let submit t phases k =
  if t.idle_threads > 0 then begin
    t.idle_threads <- t.idle_threads - 1;
    (* Start on the next engine tick to keep submit non-reentrant. *)
    Sim.Engine.schedule t.engine 0 (fun () -> run_phases t phases k)
  end
  else Queue.push { phases; k } t.pending

let queue_length t = Queue.length t.pending
let in_flight t = t.threads - t.idle_threads
let busy_time t = t.busy

let utilization t ~total =
  if total <= 0 then 0. else Sim.Time.to_sec t.busy /. Sim.Time.to_sec total

let items_completed t = t.completed

let phase_cost params phases =
  let freq = params.Params.fpc_freq in
  List.fold_left
    (fun acc -> function
      | Compute c -> acc + Sim.Time.Freq.cycles freq c
      | Mem l ->
          acc + Sim.Time.Freq.cycles freq (Memory.latency_cycles params l)
      | Sleep d -> acc + d)
    0 phases
