type 'tuple t = {
  equal : 'tuple -> 'tuple -> bool;
  buckets : (int, ('tuple * int) list) Hashtbl.t;
  mutable entries : int;
}

let create ~equal = { equal; buckets = Hashtbl.create 1024; entries = 0 }

let remove t ~hash tuple =
  match Hashtbl.find_opt t.buckets hash with
  | None -> ()
  | Some chain ->
      let chain' =
        List.filter (fun (tp, _) -> not (t.equal tp tuple)) chain
      in
      if List.length chain' < List.length chain then
        t.entries <- t.entries - 1;
      if chain' = [] then Hashtbl.remove t.buckets hash
      else Hashtbl.replace t.buckets hash chain'

let add t ~hash tuple conn_idx =
  remove t ~hash tuple;
  let chain = Option.value ~default:[] (Hashtbl.find_opt t.buckets hash) in
  Hashtbl.replace t.buckets hash ((tuple, conn_idx) :: chain);
  t.entries <- t.entries + 1

let lookup t ~hash tuple =
  match Hashtbl.find_opt t.buckets hash with
  | None -> None
  | Some chain ->
      List.find_map
        (fun (tp, idx) -> if t.equal tp tuple then Some idx else None)
        chain

let entries t = t.entries
