(** IMEM hardware lookup engine: the active-connection database.

    The pre-processor hashes a segment's 4-tuple with CRC-32 and uses
    the IMEM lookup engine to resolve the connection index, with CAM
    resolution of hash collisions (§4.1). A small direct-mapped cache
    on the hash value (128 entries) sits in the pre-processor's local
    memory in front of the engine.

    The caller supplies the CRC-32 hash (computed with the FPC's CRC
    acceleration) and, on a candidate match, verifies the full tuple —
    this module stores tuples keyed by hash and handles collisions
    with per-bucket chains, like the hardware CAM. *)

type 'tuple t

val create : equal:('tuple -> 'tuple -> bool) -> 'tuple t

val add : 'tuple t -> hash:int -> 'tuple -> int -> unit
(** [add t ~hash tuple conn_idx] registers an active connection. *)

val remove : 'tuple t -> hash:int -> 'tuple -> unit

val lookup : 'tuple t -> hash:int -> 'tuple -> int option
(** Resolve a tuple to its connection index. *)

val entries : 'tuple t -> int
