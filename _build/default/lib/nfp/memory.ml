type level = Local | Cls | Ctm | Imem | Emem_cached | Emem

let latency_cycles (p : Params.t) = function
  | Local -> p.local_mem_cycles
  | Cls -> p.cls_cycles
  | Ctm -> p.ctm_cycles
  | Imem -> p.imem_cycles
  | Emem_cached -> p.emem_cache_cycles
  | Emem -> p.emem_cycles

let pp_level fmt l =
  Format.pp_print_string fmt
    (match l with
    | Local -> "local"
    | Cls -> "CLS"
    | Ctm -> "CTM"
    | Imem -> "IMEM"
    | Emem_cached -> "EMEM$"
    | Emem -> "EMEM")
