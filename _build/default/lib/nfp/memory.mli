(** The NFP memory hierarchy as access-latency levels. *)

type level =
  | Local  (** FPC-local memory and registers. *)
  | Cls  (** Island-local scratch (64 KB). *)
  | Ctm  (** Island target memory (256 KB). *)
  | Imem  (** Internal SRAM (4 MB). *)
  | Emem_cached  (** EMEM access hitting the 3 MB SRAM cache. *)
  | Emem  (** External DRAM (2 GB). *)

val latency_cycles : Params.t -> level -> int
val pp_level : Format.formatter -> level -> unit
