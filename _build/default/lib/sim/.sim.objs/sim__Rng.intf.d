lib/sim/rng.mli:
