lib/sim/trace.ml: Hashtbl List Time
