type handle = Event_queue.handle

type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Event_queue.t;
  root_rng : Rng.t;
  mutable processed : int;
}

let create ?(seed = 1L) () =
  {
    clock = Time.zero;
    queue = Event_queue.create ();
    root_rng = Rng.create seed;
    processed = 0;
  }

let now t = t.clock
let rng t = t.root_rng

let schedule_at t time k =
  if time < t.clock then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is in the past (now %a)"
         Time.pp time Time.pp t.clock);
  Event_queue.push t.queue time k

let schedule t delay k =
  let delay = max 0 delay in
  Event_queue.push t.queue (t.clock + delay) k

let schedule_cancellable t delay k =
  let delay = max 0 delay in
  Event_queue.push_cancellable t.queue (t.clock + delay) k

let cancel t h = Event_queue.cancel t.queue h

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, k) ->
      t.clock <- max t.clock time;
      t.processed <- t.processed + 1;
      k ();
      true

let run ?until ?max_events t =
  let continue () =
    (match max_events with Some m -> t.processed < m | None -> true)
    &&
    match (until, Event_queue.peek_time t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some u, Some next -> next <= u
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some u when t.clock < u -> t.clock <- u
  | _ -> ()

let events_processed t = t.processed
let pending t = Event_queue.length t.queue
