(** The discrete-event simulation engine.

    A single global virtual clock and an event loop. All hardware and
    software actors in the model (FPCs, DMA engines, links, host
    cores, applications) schedule continuation callbacks on one
    engine. Execution is single-threaded and deterministic. *)

type t

type handle
(** A cancellable scheduled callback. *)

val create : ?seed:int64 -> unit -> t
(** [create ~seed ()] is a fresh engine at time zero with a
    deterministic root RNG ([seed] defaults to [1L]). *)

val now : t -> Time.t
(** Current virtual time. *)

val rng : t -> Rng.t
(** The engine's root RNG. Actors needing independent streams should
    {!Rng.split} it at construction time. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> unit
(** [schedule_at t time k] runs [k] at absolute [time]. Scheduling in
    the past raises [Invalid_argument]. *)

val schedule : t -> Time.t -> (unit -> unit) -> unit
(** [schedule t delay k] runs [k] after [delay] (relative). A
    non-positive delay runs [k] at the current time, after events
    already queued for this instant. *)

val schedule_cancellable : t -> Time.t -> (unit -> unit) -> handle
(** Like {!schedule} (relative delay) but cancellable. *)

val cancel : t -> handle -> unit

val run : ?until:Time.t -> ?max_events:int -> t -> unit
(** Run the event loop until the queue empties, [until] is reached
    (events at later times stay queued), or [max_events] callbacks
    have run. *)

val step : t -> bool
(** Run a single event; [false] if the queue was empty. *)

val events_processed : t -> int

val pending : t -> int
(** Number of events currently queued. *)
