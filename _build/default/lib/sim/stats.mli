(** Measurement utilities for experiments.

    Counters, log-bucketed latency histograms with percentile queries
    (HdrHistogram-style), throughput meters, and fairness metrics. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val get : t -> int
  val reset : t -> unit
end

module Histogram : sig
  type t
  (** Records non-negative integer samples (typically picoseconds or
      cycles) in logarithmic buckets with 64 sub-buckets per octave,
      bounding relative quantile error below ~1.6%. *)

  val create : unit -> t
  val add : t -> int -> unit
  val count : t -> int
  val min : t -> int
  val max : t -> int
  val mean : t -> float

  val percentile : t -> float -> int
  (** [percentile h p] for [p] in [0, 100]. Returns 0 on an empty
      histogram. *)

  val merge : t -> t -> unit
  (** [merge dst src] adds all of [src]'s samples into [dst]. *)

  val reset : t -> unit
end

module Meter : sig
  type t
  (** Accumulates (bytes, operations) over a window of virtual time to
      report throughput. *)

  val create : unit -> t
  val record : t -> ?bytes:int -> ?ops:int -> unit -> unit
  val bytes : t -> int
  val ops : t -> int

  val gbps : t -> duration:Time.t -> float
  (** Bits per second / 1e9 over [duration]. *)

  val mops : t -> duration:Time.t -> float
  (** Million operations per second over [duration]. *)

  val reset : t -> unit
end

val jain_fairness : float array -> float
(** Jain's fairness index: [(sum x)^2 / (n * sum x^2)]. 1.0 is
    perfectly fair; 1/n is maximally unfair. Returns 1.0 for empty or
    all-zero input. *)

val mean : float array -> float
val percentile_of_sorted : float array -> float -> float
(** [percentile_of_sorted a p] with [a] sorted ascending, [p] in
    [0, 100], using linear interpolation. *)
