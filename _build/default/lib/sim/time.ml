type t = int

let zero = 0
let ps n = n
let ns n = n * 1_000
let us n = n * 1_000_000
let ms n = n * 1_000_000_000
let sec s = int_of_float (Float.round (s *. 1e12))
let to_ns t = float_of_int t /. 1e3
let to_us t = float_of_int t /. 1e6
let to_ms t = float_of_int t /. 1e9
let to_sec t = float_of_int t /. 1e12

let pp fmt t =
  let a = abs t in
  if a < 1_000 then Format.fprintf fmt "%dps" t
  else if a < 1_000_000 then Format.fprintf fmt "%.2fns" (to_ns t)
  else if a < 1_000_000_000 then Format.fprintf fmt "%.2fus" (to_us t)
  else if a < 1_000_000_000_000 then Format.fprintf fmt "%.2fms" (to_ms t)
  else Format.fprintf fmt "%.3fs" (to_sec t)

module Freq = struct
  type time = t
  type t = { ps_per_cycle : int }

  let of_mhz f =
    if f <= 0 then invalid_arg "Freq.of_mhz: non-positive frequency";
    if 1_000_000 mod f <> 0 then
      invalid_arg "Freq.of_mhz: period is not a whole number of picoseconds";
    { ps_per_cycle = 1_000_000 / f }

  let of_ghz f = of_mhz (int_of_float (Float.round (f *. 1000.)))
  let ps_per_cycle { ps_per_cycle } = ps_per_cycle
  let cycles f n = n * f.ps_per_cycle

  let to_cycles f t =
    (t + f.ps_per_cycle - 1) / f.ps_per_cycle

  let mhz f = 1e6 /. float_of_int f.ps_per_cycle
end
