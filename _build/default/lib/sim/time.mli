(** Simulated time.

    All simulation timestamps are integer picoseconds. Picosecond
    resolution keeps clock-cycle arithmetic exact for every frequency
    used in the model (an 800 MHz FPC cycle is exactly 1250 ps, a
    2 GHz host cycle is exactly 500 ps) while an OCaml [int] still
    covers more than a month of simulated time. *)

type t = int
(** A point in (or span of) simulated time, in picoseconds. *)

val zero : t

val ps : int -> t
(** [ps n] is [n] picoseconds. *)

val ns : int -> t
(** [ns n] is [n] nanoseconds. *)

val us : int -> t
(** [us n] is [n] microseconds. *)

val ms : int -> t
(** [ms n] is [n] milliseconds. *)

val sec : float -> t
(** [sec s] is [s] seconds, rounded to the nearest picosecond. *)

val to_ns : t -> float
(** [to_ns t] is [t] expressed in nanoseconds. *)

val to_us : t -> float
(** [to_us t] is [t] expressed in microseconds. *)

val to_ms : t -> float
(** [to_ms t] is [t] expressed in milliseconds. *)

val to_sec : t -> float
(** [to_sec t] is [t] expressed in seconds. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print with an auto-selected unit (ps/ns/us/ms/s). *)

module Freq : sig
  type time = t

  type t
  (** A clock frequency, represented exactly as picoseconds per cycle. *)

  val of_mhz : int -> t
  (** [of_mhz f] is a clock of [f] MHz. Raises [Invalid_argument] if
      the period is not a whole number of picoseconds. *)

  val of_ghz : float -> t

  val ps_per_cycle : t -> int

  val cycles : t -> int -> time
  (** [cycles f n] is the duration of [n] cycles of clock [f]. *)

  val to_cycles : t -> time -> int
  (** [to_cycles f t] is [t] expressed in whole cycles of [f],
      rounding up (a partial cycle still occupies the core). *)

  val mhz : t -> float
end
