type point = {
  group : string;
  name : string;
  mutable on : bool;
  mutable count : int;
}

type event = { time : Time.t; point_name : string; conn : int; arg : int }

type t = {
  tbl : (string * string, point) Hashtbl.t;
  mutable order : point list;  (* reverse registration order *)
  mutable sink : (event -> unit) option;
  mutable n_enabled : int;
}

let create () =
  { tbl = Hashtbl.create 64; order = []; sink = None; n_enabled = 0 }

let register t ~group name =
  match Hashtbl.find_opt t.tbl (group, name) with
  | Some p -> p
  | None ->
      let p = { group; name; on = false; count = 0 } in
      Hashtbl.replace t.tbl (group, name) p;
      t.order <- p :: t.order;
      p

let point_name p = p.group ^ ":" ^ p.name

let matches ?group ?name p =
  (match group with Some g -> p.group = g | None -> true)
  && match name with Some n -> p.name = n | None -> true

let set_state t ?group ?name on =
  List.iter
    (fun p ->
      if matches ?group ?name p && p.on <> on then begin
        p.on <- on;
        t.n_enabled <- (t.n_enabled + if on then 1 else -1)
      end)
    t.order;
  t.n_enabled

let enable t ?group ?name () = set_state t ?group ?name true
let disable t ?group ?name () = set_state t ?group ?name false
let enabled_count t = t.n_enabled
let enabled p = p.on

let set_sink t f = t.sink <- Some f

let hit t p ~now ~conn ~arg =
  if p.on then begin
    p.count <- p.count + 1;
    match t.sink with
    | Some f -> f { time = now; point_name = point_name p; conn; arg }
    | None -> ()
  end

let hits p = p.count
let points t = List.rev t.order
let reset_counts t = List.iter (fun p -> p.count <- 0) t.order
