(** Lightweight tracepoint registry.

    FlexTOE's flexibility story (§5.1 of the paper) includes 48
    data-path tracepoints that can be toggled at run time. This module
    provides the registry: named tracepoints grouped by subsystem,
    each with a hit counter and an optional sink. Disabled tracepoints
    cost one branch. The data-path charges extra FPC cycles per
    enabled tracepoint; that cost lives in the pipeline code, not
    here. *)

type t
(** A tracepoint registry. *)

type point
(** A single named tracepoint. *)

type event = {
  time : Time.t;
  point_name : string;
  conn : int;  (** Connection index, or -1. *)
  arg : int;  (** Tracepoint-specific argument (e.g. queue depth). *)
}

val create : unit -> t

val register : t -> group:string -> string -> point
(** [register t ~group name] adds a tracepoint. Registering the same
    [group]/[name] twice returns the existing point. *)

val point_name : point -> string

val enable : t -> ?group:string -> ?name:string -> unit -> int
(** Enable matching tracepoints (all, a whole group, or a single
    point). Returns the number of points now enabled. *)

val disable : t -> ?group:string -> ?name:string -> unit -> int
val enabled_count : t -> int
val enabled : point -> bool

val set_sink : t -> (event -> unit) -> unit
(** Install a callback receiving every hit of every enabled point. *)

val hit : t -> point -> now:Time.t -> conn:int -> arg:int -> unit
(** Record a hit if the point is enabled (counter + sink). *)

val hits : point -> int
(** Total recorded hits of a point. *)

val points : t -> point list
val reset_counts : t -> unit
