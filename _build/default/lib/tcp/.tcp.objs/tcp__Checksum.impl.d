lib/tcp/checksum.ml: Array Bytes Char Lazy List
