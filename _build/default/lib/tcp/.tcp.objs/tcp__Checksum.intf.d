lib/tcp/checksum.mli: Bytes
