lib/tcp/flow.ml: Checksum Format Hashtbl Map Segment Stdlib
