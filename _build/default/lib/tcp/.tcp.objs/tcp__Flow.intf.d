lib/tcp/flow.mli: Format Hashtbl Map Segment
