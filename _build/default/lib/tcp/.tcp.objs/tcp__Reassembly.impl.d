lib/tcp/reassembly.ml: Format Seq32
