lib/tcp/reassembly.mli: Format Seq32
