lib/tcp/reassembly_multi.ml: List Seq32
