lib/tcp/reassembly_multi.mli: Seq32
