lib/tcp/segment.ml: Bytes Format List Printf Seq32 String
