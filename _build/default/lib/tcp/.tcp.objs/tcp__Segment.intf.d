lib/tcp/segment.mli: Bytes Format Seq32
