lib/tcp/seq32.ml: Format
