lib/tcp/wire.ml: Bytes Char Checksum Format Result Segment
