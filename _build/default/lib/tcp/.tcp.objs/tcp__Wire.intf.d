lib/tcp/wire.mli: Bytes Format Segment
