let ones_complement buf ~off ~len ~init =
  let sum = ref init in
  let i = ref off in
  let stop = off + len in
  while !i + 1 < stop do
    sum := !sum + (Char.code (Bytes.get buf !i) lsl 8)
           + Char.code (Bytes.get buf (!i + 1));
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Char.code (Bytes.get buf !i) lsl 8);
  !sum

let finish sum =
  let s = ref sum in
  while !s > 0xFFFF do
    s := (!s land 0xFFFF) + (!s lsr 16)
  done;
  lnot !s land 0xFFFF

let internet buf ~off ~len = finish (ones_complement buf ~off ~len ~init:0)

let pseudo_header_sum ~src_ip ~dst_ip ~protocol ~length =
  (src_ip lsr 16)
  + (src_ip land 0xFFFF)
  + (dst_ip lsr 16)
  + (dst_ip land 0xFFFF)
  + protocol + length

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32_update crc byte =
  let table = Lazy.force crc_table in
  table.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let crc32 buf ~off ~len =
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := crc32_update !crc (Char.code (Bytes.get buf i))
  done;
  !crc lxor 0xFFFFFFFF

let crc32_ints words =
  let crc = ref 0xFFFFFFFF in
  List.iter
    (fun w ->
      crc := crc32_update !crc ((w lsr 24) land 0xFF);
      crc := crc32_update !crc ((w lsr 16) land 0xFF);
      crc := crc32_update !crc ((w lsr 8) land 0xFF);
      crc := crc32_update !crc (w land 0xFF))
    words;
  !crc lxor 0xFFFFFFFF
