(** Internet checksum (RFC 1071) and CRC-32.

    The Internet checksum covers IPv4 headers and TCP
    pseudo-header+segment. CRC-32 (IEEE 802.3 polynomial) models the
    NFP-4000's CRC acceleration, used by FlexTOE's pre-processor to
    hash a segment's 4-tuple into the active-connection database and
    to pick flow groups. *)

val ones_complement : Bytes.t -> off:int -> len:int -> init:int -> int
(** Raw 16-bit ones'-complement sum (not yet complemented). An odd
    trailing byte is padded with zero, per RFC 1071. *)

val finish : int -> int
(** Fold carries and complement, yielding the 16-bit checksum. *)

val internet : Bytes.t -> off:int -> len:int -> int
(** [finish (ones_complement ~init:0 ...)]. *)

val pseudo_header_sum :
  src_ip:int -> dst_ip:int -> protocol:int -> length:int -> int
(** Ones'-complement sum of the IPv4 pseudo-header for TCP/UDP
    checksums. *)

val crc32 : Bytes.t -> off:int -> len:int -> int
(** CRC-32 (reflected, IEEE polynomial 0xEDB88320), as used for flow
    hashing. *)

val crc32_ints : int list -> int
(** CRC-32 over a list of 32-bit big-endian words; convenient for
    hashing a 4-tuple without materialising bytes. *)
