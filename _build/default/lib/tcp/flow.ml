type t = {
  local_ip : int;
  local_port : int;
  remote_ip : int;
  remote_port : int;
}

let v ~local_ip ~local_port ~remote_ip ~remote_port =
  { local_ip; local_port; remote_ip; remote_port }

let reverse t =
  {
    local_ip = t.remote_ip;
    local_port = t.remote_port;
    remote_ip = t.local_ip;
    remote_port = t.local_port;
  }

let of_segment_rx (s : Segment.t) =
  {
    local_ip = s.dst_ip;
    local_port = s.dst_port;
    remote_ip = s.src_ip;
    remote_port = s.src_port;
  }

let hash t =
  Checksum.crc32_ints
    [ t.local_ip; t.remote_ip; (t.local_port lsl 16) lor t.remote_port ]

let flow_group t ~groups = hash t mod groups

let equal a b =
  a.local_ip = b.local_ip && a.local_port = b.local_port
  && a.remote_ip = b.remote_ip && a.remote_port = b.remote_port

let compare = Stdlib.compare

let pp fmt t =
  Format.fprintf fmt "%a:%d<->%a:%d" Segment.pp_ip t.local_ip t.local_port
    Segment.pp_ip t.remote_ip t.remote_port

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
