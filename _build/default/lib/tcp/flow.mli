(** Connection 4-tuples and flow-group hashing.

    A flow is identified by (local ip, local port, remote ip, remote
    port). FlexTOE partitions established connections into
    {e flow groups} by hashing the 4-tuple with CRC-32 (the NFP's CRC
    acceleration); each flow group is pinned to one protocol island. *)

type t = {
  local_ip : int;
  local_port : int;
  remote_ip : int;
  remote_port : int;
}

val v : local_ip:int -> local_port:int -> remote_ip:int -> remote_port:int -> t

val reverse : t -> t
(** Swap local and remote: the tuple as seen from the peer. *)

val of_segment_rx : Segment.t -> t
(** The tuple of a {e received} segment from the receiver's point of
    view (local = segment destination). *)

val hash : t -> int
(** Direction-sensitive CRC-32 of the tuple. Note: [hash t] and
    [hash (reverse t)] differ; the data path always hashes the RX
    orientation. *)

val flow_group : t -> groups:int -> int
(** [hash t mod groups]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
