(** Receive-side byte-stream reassembly, FlexTOE style (§3.1.3).

    FlexTOE's protocol stage tracks exactly {e one} out-of-order
    interval per connection and reassembles directly in the host
    socket receive buffer: in-order data advances the window;
    out-of-order data is merged into the interval when it overlaps or
    abuts it, and dropped otherwise (forcing the sender to
    retransmit); when an in-order segment fills the hole, the window
    jumps past the interval and the interval resets.

    Offsets in outcomes are byte offsets relative to the {e current}
    expected sequence number, i.e. relative to the receive buffer
    head, so the caller can place payload without further seq
    arithmetic. *)

type t

val create : next:Seq32.t -> t
val next : t -> Seq32.t
(** Next expected sequence number (the cumulative ACK point). *)

val ooo_interval : t -> (Seq32.t * int) option
(** The tracked out-of-order interval (start, length), if any. *)

val has_hole : t -> bool

type outcome =
  | Accept of {
      trim : int;  (** Payload bytes to skip at the front (old data). *)
      len : int;  (** Bytes to copy at buffer offset 0. *)
      advance : int;
          (** How far the window advances: [>= len] when the segment
              fills the hole and the interval is consumed. *)
      filled_hole : bool;
    }  (** In-order (possibly head-trimmed) data. *)
  | Ooo_accept of {
      trim : int;
      off : int;  (** Buffer offset (relative to window head). *)
      len : int;
    }  (** Stored out of order; merged into the interval. *)
  | Duplicate  (** Entirely old data: triggers a duplicate ACK. *)
  | Drop_merge_failed
      (** Out-of-order and not mergeable with the tracked interval. *)
  | Drop_out_of_window  (** Beyond the advertised receive window. *)

val process : t -> seq:Seq32.t -> len:int -> window:int -> outcome
(** [process t ~seq ~len ~window] handles a payload-bearing segment.
    [window] is the free receive-buffer space measured from the
    window head. [len] must be positive. State is updated according
    to the returned outcome. *)

val force_advance : t -> int -> unit
(** Advance the expected sequence number without data (used for FIN,
    which consumes one sequence number). Clears the interval if the
    advance covers it. *)

val pp : Format.formatter -> t -> unit
