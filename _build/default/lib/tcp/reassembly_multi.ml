type t = {
  mutable next : Seq32.t;
  mutable ivs : (Seq32.t * int) list;  (* disjoint, ascending *)
}

let create ~next = { next; ivs = [] }
let next t = t.next
let intervals t = t.ivs

type outcome =
  | Accept of { trim : int; len : int; advance : int }
  | Ooo_accept of { trim : int; off : int; len : int }
  | Duplicate
  | Drop_out_of_window

(* Insert [s, e) into the interval set, coalescing overlaps. *)
let insert t s e =
  let rec go = function
    | [] -> [ (s, Seq32.diff e s) ]
    | (is, il) :: rest ->
        let ie = Seq32.add is il in
        if Seq32.lt e is then (s, Seq32.diff e s) :: (is, il) :: rest
        else if Seq32.gt s ie then (is, il) :: go rest
        else begin
          (* Overlapping or abutting: merge and retry. *)
          let ns = Seq32.min s is and ne = Seq32.max e ie in
          let merged = go_merge ns ne rest in
          merged
        end
  and go_merge s e = function
    | [] -> [ (s, Seq32.diff e s) ]
    | (is, il) :: rest ->
        let ie = Seq32.add is il in
        if Seq32.lt e is then (s, Seq32.diff e s) :: (is, il) :: rest
        else go_merge s (Seq32.max e ie) rest
  in
  t.ivs <- go t.ivs

(* Consume intervals now contiguous with [next]. *)
let drain t =
  let rec go () =
    match t.ivs with
    | (is, il) :: rest when Seq32.le is t.next ->
        let ie = Seq32.add is il in
        if Seq32.gt ie t.next then t.next <- ie;
        t.ivs <- rest;
        go ()
    | _ -> ()
  in
  go ()

let process t ~seq ~len ~window =
  assert (len > 0);
  let rel = Seq32.diff seq t.next in
  if rel + len <= 0 then Duplicate
  else begin
    let trim = if rel < 0 then -rel else 0 in
    let off = if rel > 0 then rel else 0 in
    let eff_len = min (len - trim) (window - off) in
    if eff_len <= 0 then Drop_out_of_window
    else if off = 0 then begin
      let before = t.next in
      t.next <- Seq32.add t.next eff_len;
      drain t;
      Accept { trim; len = eff_len; advance = Seq32.diff t.next before }
    end
    else begin
      let s = Seq32.add t.next off in
      insert t s (Seq32.add s eff_len);
      Ooo_accept { trim; off; len = eff_len }
    end
  end

let force_advance t n =
  t.next <- Seq32.add t.next n;
  (* Drop intervals the advance swallowed. *)
  t.ivs <-
    List.filter (fun (is, il) -> Seq32.gt (Seq32.add is il) t.next) t.ivs;
  drain t
