(** General multi-interval receive reassembly.

    Unlike FlexTOE's deliberately restricted single-interval scheme
    ({!Reassembly}), this tracks arbitrarily many out-of-order
    intervals — the behaviour of a full host stack such as Linux,
    whose "more sophisticated reassembly and recovery algorithms"
    (§5.3) let it ride out higher loss rates. Used by the baseline
    stack models. *)

type t

val create : next:Seq32.t -> t

val next : t -> Seq32.t
(** Cumulative in-order point. *)

val intervals : t -> (Seq32.t * int) list
(** Out-of-order intervals, ascending. *)

type outcome =
  | Accept of { trim : int; len : int; advance : int }
      (** In-order data; [advance >= len] when it joins buffered
          intervals. *)
  | Ooo_accept of { trim : int; off : int; len : int }
  | Duplicate
  | Drop_out_of_window

val process : t -> seq:Seq32.t -> len:int -> window:int -> outcome
(** Same contract as {!Reassembly.process}, but out-of-order data is
    never dropped for lack of interval slots. *)

val force_advance : t -> int -> unit
