type t = int

let mask = 0xFFFF_FFFF
let of_int x = x land mask
let zero = 0
let add a n = (a + n) land mask
let succ a = add a 1

let diff a b =
  let d = (a - b) land mask in
  if d >= 0x8000_0000 then d - 0x1_0000_0000 else d

let lt a b = diff a b < 0
let le a b = diff a b <= 0
let gt a b = diff a b > 0
let ge a b = diff a b >= 0
let max a b = if ge a b then a else b
let min a b = if le a b then a else b

let in_window x ~base ~size =
  let d = (x - base) land mask in
  d < size

let pp fmt t = Format.fprintf fmt "%u" t
