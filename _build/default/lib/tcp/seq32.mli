(** 32-bit wrapping TCP sequence-number arithmetic (RFC 793 / 1982).

    Sequence numbers live in [\[0, 2^32)] and all comparisons are
    modular: [lt a b] means "a is before b" when the distance between
    them is less than 2^31. *)

type t = int
(** Always in [\[0, 2^32)]. *)

val of_int : int -> t
(** Truncates to 32 bits. *)

val zero : t
val add : t -> int -> t
val succ : t -> t

val diff : t -> t -> int
(** [diff a b] is the signed modular distance [a - b], in
    [\[-2^31, 2^31)]. *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool

val max : t -> t -> t
(** The later of the two in modular order. *)

val min : t -> t -> t

val in_window : t -> base:t -> size:int -> bool
(** [in_window x ~base ~size] is true iff [x] lies in
    [\[base, base+size)] modulo 2^32. *)

val pp : Format.formatter -> t -> unit
