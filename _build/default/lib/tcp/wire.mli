(** Wire format: Ethernet II (+ optional 802.1Q) / IPv4 / TCP.

    Encoding computes real IPv4 and TCP checksums; decoding validates
    structure and (optionally) checksums. This is the boundary where
    XDP/eBPF modules, pcap capture, and wire-format tests see packets
    as raw bytes. *)

type error =
  | Truncated of string
  | Bad_ethertype of int
  | Bad_ip_version of int
  | Bad_protocol of int  (** Not TCP. *)
  | Bad_ip_checksum
  | Bad_tcp_checksum
  | Fragmented

val pp_error : Format.formatter -> error -> unit

val encode : Segment.frame -> Bytes.t
(** Serialise a frame with correct checksums. *)

val decode : ?verify_checksums:bool -> Bytes.t -> (Segment.frame, error) result
(** Parse a frame. [verify_checksums] defaults to [true]. Unknown TCP
    options are skipped. *)

(** Fixed byte offsets into an untagged TCP/IPv4 frame, used by eBPF
    programs and header-patching extensions. For VLAN-tagged frames
    add 4 to every offset at or beyond {!off_ethertype}. *)

val off_eth_dst : int
val off_eth_src : int
val off_ethertype : int
val off_ip : int
val off_ip_ecn : int
val off_ip_proto : int
val off_ip_csum : int
val off_ip_src : int
val off_ip_dst : int
val off_tcp : int
val off_tcp_sport : int
val off_tcp_dport : int
val off_tcp_seq : int
val off_tcp_ack : int
val off_tcp_flags : int
val off_tcp_csum : int

val fixup_tcp_checksum : Bytes.t -> unit
(** Recompute and rewrite the TCP and IPv4 checksums of an encoded,
    untagged frame in place (after header patching, e.g. by the
    connection-splicing module). *)
