test/smoke.ml: Alcotest Flextoe Host Netsim Sim
