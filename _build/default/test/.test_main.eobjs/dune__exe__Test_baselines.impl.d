test/test_baselines.ml: Alcotest Baselines Bytes Host List Netsim Option Sim
