test/test_cc.ml: Alcotest Flextoe Printf Sim
