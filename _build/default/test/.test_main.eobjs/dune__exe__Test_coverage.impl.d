test/test_coverage.ml: Alcotest Bytes Flextoe Host List Netsim Sim Tcp
