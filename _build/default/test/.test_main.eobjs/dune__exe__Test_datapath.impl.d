test/test_datapath.ml: Alcotest Bytes Flextoe Host List Netsim Option Sim String Tcp
