test/test_ebpf.ml: Alcotest Array Bytes Char Flextoe Gen Int64 List QCheck QCheck_alcotest Sim Tcp
