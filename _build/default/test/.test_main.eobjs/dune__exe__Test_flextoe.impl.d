test/test_flextoe.ml: Alcotest Array Bytes Flextoe Int64 List Option QCheck QCheck_alcotest Sim Tcp
