test/test_host.ml: Alcotest Bytes Char Flextoe Gen Host List Netsim Option Printf QCheck QCheck_alcotest Sim
