test/test_integration.ml: Alcotest Array Baselines Buffer Bytes Char Flextoe Host List Netsim Printf Sim
