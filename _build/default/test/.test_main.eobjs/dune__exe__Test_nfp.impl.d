test/test_nfp.ml: Alcotest Int List Nfp QCheck QCheck_alcotest Sim String
