test/test_policies.ml: Alcotest Bytes Flextoe Host Netsim Printf Sim
