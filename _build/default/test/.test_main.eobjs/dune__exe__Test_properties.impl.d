test/test_properties.ml: Alcotest Bytes Flextoe Gen Host Int64 Netsim QCheck QCheck_alcotest Sim Tcp
