test/test_sim.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Sim
