test/test_tcp.ml: Alcotest Array Bytes Char Int64 List Printf QCheck QCheck_alcotest Result Sim String Tcp
