(* Quick end-to-end smoke check used while bringing the system up;
   kept as a test. *)

let run () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let server = Flextoe.create_node engine ~fabric ~ip:0x0A000001 () in
  let client = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in
  let stats = Host.Rpc.Stats.create engine in
  Host.Rpc.server
    ~endpoint:(Flextoe.endpoint server)
    ~port:7 ~app_cycles:250 ~handler:Host.Rpc.echo_handler ();
  Host.Rpc.Stats.start_measuring stats;
  let _client =
    Host.Rpc.closed_loop_client
      ~endpoint:(Flextoe.endpoint client)
      ~engine ~server_ip:0x0A000001 ~server_port:7 ~conns:4 ~pipeline:2
      ~req_bytes:64 ~stats ()
  in
  Sim.Engine.run ~until:(Sim.Time.ms 20) engine;
  (Host.Rpc.Stats.ops stats, Flextoe.datapath server)

let test_echo_ops () =
  let ops, dp = run () in
  Alcotest.(check bool) "some RPCs completed" true (ops > 100);
  let st = Flextoe.Datapath.stats dp in
  Alcotest.(check bool) "segments received" true
    (st.Flextoe.Datapath.rx_segments > 100);
  Alcotest.(check bool) "acks sent" true (st.Flextoe.Datapath.tx_acks > 100)

let suite =
  [ Alcotest.test_case "end-to-end echo over FlexTOE" `Quick test_echo_ops ]
