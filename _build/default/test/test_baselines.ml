(* Baseline-stack model tests: profiles, recovery behaviour
   differences, fast-path placement, and cost scaling. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(loss = 0.) ?(seed = 2L) profile =
  let engine = Sim.Engine.create ~seed () in
  let fabric = Netsim.Fabric.create engine () in
  Netsim.Fabric.set_loss fabric loss;
  let a =
    Baselines.Stack.create engine ~fabric ~profile ~ip:0x0A000001 ()
  in
  let b =
    Baselines.Stack.create engine ~fabric ~profile ~ip:0x0A000002 ()
  in
  (engine, fabric, a, b)

(* Push one bulk transfer through a lossy fabric and report how each
   profile recovered. *)
let transfer ?(loss = 0.) ?(total = 64 * 1024) ?(ms = 300) profile =
  let engine, _, a, b = mk ~loss profile in
  let received = ref 0 in
  (Baselines.Stack.endpoint a).Host.Api.listen ~port:5001
    ~on_accept:(fun sock ->
      sock.Host.Api.on_readable <-
        (fun () ->
          received := !received + Bytes.length (sock.Host.Api.recv ~max:max_int)));
  (Baselines.Stack.endpoint b).Host.Api.connect ~remote_ip:0x0A000001
    ~remote_port:5001
    ~on_connected:(fun r ->
      match r with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok sock ->
          let data = Bytes.make total 'z' in
          let sent = ref 0 in
          let push () =
            if !sent < total then begin
              let n =
                sock.Host.Api.send
                  (Bytes.sub data !sent (min 8192 (total - !sent)))
              in
              sent := !sent + n
            end
          in
          sock.Host.Api.on_writable <- push;
          push ());
  Sim.Engine.run ~until:(Sim.Time.ms ms) engine;
  (!received, Baselines.Stack.retransmits b, Baselines.Stack.rto_fires b)

let test_clean_transfer_all_profiles () =
  List.iter
    (fun p ->
      let received, retx, rtos = transfer p in
      check_int (p.Baselines.Profile.name ^ " complete") (64 * 1024) received;
      check_int (p.Baselines.Profile.name ^ " no retx") 0 retx;
      check_int (p.Baselines.Profile.name ^ " no rtos") 0 rtos)
    [ Baselines.Profile.linux; Baselines.Profile.tas;
      Baselines.Profile.chelsio ]

let test_linux_fast_retransmits_under_loss () =
  let received, retx, _ =
    transfer ~loss:0.02 ~total:(512 * 1024) ~ms:1500
      Baselines.Profile.linux
  in
  check_int "completes despite loss" (512 * 1024) received;
  check_bool "selective-repeat retransmitted" true (retx > 0)

let test_chelsio_rto_only () =
  (* Chelsio never fast-retransmits: every recovery is an RTO. *)
  let received, _, rtos = transfer ~loss:0.02 ~ms:1000
      Baselines.Profile.chelsio in
  check_int "completes eventually" (64 * 1024) received;
  check_bool "recovered via timeouts" true (rtos > 0)

let test_recovery_speed_ordering () =
  (* At the same loss rate, SACK-style Linux recovers in less virtual
     time than RTO-only Chelsio (the Figure 15b mechanism). *)
  let time_to_complete profile =
    let engine, _, a, b = mk ~loss:0.01 ~seed:5L profile in
    let done_at = ref None in
    let total = 512 * 1024 in
    let received = ref 0 in
    (Baselines.Stack.endpoint a).Host.Api.listen ~port:5001
      ~on_accept:(fun sock ->
        sock.Host.Api.on_readable <-
          (fun () ->
            received :=
              !received + Bytes.length (sock.Host.Api.recv ~max:max_int);
            if !received >= total && !done_at = None then
              done_at := Some (Sim.Engine.now engine)));
    (Baselines.Stack.endpoint b).Host.Api.connect ~remote_ip:0x0A000001
      ~remote_port:5001
      ~on_connected:(fun r ->
        match r with
        | Error e -> Alcotest.failf "connect: %s" e
        | Ok sock ->
            let sent = ref 0 in
            let push () =
              if !sent < total then
                sent :=
                  !sent
                  + sock.Host.Api.send
                      (Bytes.make (min 8192 (total - !sent)) 'z')
            in
            sock.Host.Api.on_writable <- push;
            push ());
    Sim.Engine.run ~until:(Sim.Time.sec 5.) engine;
    Option.value ~default:max_int !done_at
  in
  let linux = time_to_complete Baselines.Profile.linux in
  let chelsio = time_to_complete Baselines.Profile.chelsio in
  check_bool "both completed" true (linux < max_int && chelsio < max_int);
  check_bool "SACK beats RTO-only" true (linux < chelsio)

let test_tas_uses_dedicated_cores () =
  let engine, _, a, b = mk Baselines.Profile.tas in
  let stats = Host.Rpc.Stats.create engine in
  Host.Rpc.server ~endpoint:(Baselines.Stack.endpoint a) ~port:7
    ~app_cycles:100 ~handler:Host.Rpc.echo_handler ();
  Host.Rpc.Stats.start_measuring stats;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:(Baselines.Stack.endpoint b)
       ~engine ~server_ip:0x0A000001 ~server_port:7 ~conns:4 ~pipeline:2
       ~req_bytes:64 ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms 20) engine;
  check_bool "RPCs flowed" true (Host.Rpc.Stats.ops stats > 100);
  (* App core 0 must carry no "stack" cycles: the fast path is on the
     dedicated cores (1 app core + 5 fast-path cores in the profile). *)
  let cpu = Baselines.Stack.cpu a in
  check_int "1 + 5 cores" 6 (Host.Host_cpu.cores cpu);
  let app_core_busy = Host.Host_cpu.busy_time (Host.Host_cpu.core cpu 0) in
  let fp_busy = Host.Host_cpu.busy_time (Host.Host_cpu.core cpu 1) in
  check_bool "fast-path cores do stack work" true (fp_busy > 0);
  check_bool "app core also busy" true (app_core_busy > 0)

let test_lock_factor_scales_costs () =
  let p = Baselines.Profile.linux in
  (* The same workload on more cores burns more cycles per segment. *)
  let run cores =
    let engine = Sim.Engine.create () in
    let fabric = Netsim.Fabric.create engine () in
    let a =
      Baselines.Stack.create engine ~fabric ~profile:p ~ip:0x0A000001
        ~app_cores:cores ()
    in
    let b =
      Baselines.Stack.create engine ~fabric ~profile:p ~ip:0x0A000002 ()
    in
    let stats = Host.Rpc.Stats.create engine in
    Host.Rpc.server ~endpoint:(Baselines.Stack.endpoint a) ~port:7
      ~app_cycles:100 ~handler:Host.Rpc.echo_handler ();
    Host.Rpc.Stats.start_measuring stats;
    ignore
      (Host.Rpc.closed_loop_client ~endpoint:(Baselines.Stack.endpoint b)
         ~engine ~server_ip:0x0A000001 ~server_port:7 ~conns:4 ~pipeline:1
         ~req_bytes:64 ~stats ());
    Sim.Engine.run ~until:(Sim.Time.ms 20) engine;
    let stack =
      Option.value ~default:0
        (List.assoc_opt "stack" (Host.Host_cpu.cycles_by_category
                                   (Baselines.Stack.cpu a)))
    in
    float_of_int stack /. float_of_int (max 1 (Host.Rpc.Stats.ops stats))
  in
  let c1 = run 1 and c8 = run 8 in
  check_bool "contention inflates per-request cycles" true (c8 > c1 *. 1.5)

let suite =
  [
    Alcotest.test_case "clean transfers complete (all profiles)" `Quick
      test_clean_transfer_all_profiles;
    Alcotest.test_case "linux fast retransmit" `Quick
      test_linux_fast_retransmits_under_loss;
    Alcotest.test_case "chelsio recovers by RTO only" `Quick
      test_chelsio_rto_only;
    Alcotest.test_case "recovery speed: SACK < RTO-only" `Quick
      test_recovery_speed_ordering;
    Alcotest.test_case "TAS dedicated fast-path cores" `Quick
      test_tas_uses_dedicated_cores;
    Alcotest.test_case "kernel lock contention scaling" `Quick
      test_lock_factor_scales_costs;
  ]
