(* Congestion-control algorithm tests (pure Cc module). *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let wire = 40_000_000_000

let obs ?(acked = 100_000) ?(ecn = 0) ?(fretx = 0) ?(rtt = 100_000) () =
  {
    Flextoe.Cc.acked_bytes = acked;
    ecn_bytes = ecn;
    fast_retx = fretx;
    rtt_ns = rtt;
    interval = Sim.Time.us 50;
  }

let test_throughput_estimate () =
  (* 100 KB over 50 us = 16 Gbps. *)
  check_int "estimate" 16_000_000_000
    (Flextoe.Cc.throughput_estimate (obs ()))

(* --- DCTCP ------------------------------------------------------------ *)

let test_dctcp_starts_uncongested () =
  let d = Flextoe.Cc.Dctcp.create () in
  check_bool "no marks -> keep" true
    (Flextoe.Cc.Dctcp.update d ~wire_bps:wire (obs ()) = Flextoe.Cc.Keep);
  check_int "still unpaced" 0 (Flextoe.Cc.Dctcp.rate_bps d)

let test_dctcp_alpha_tracks_marking () =
  let d = Flextoe.Cc.Dctcp.create () in
  (* Fully-marked intervals drive alpha toward 1 with gain 1/16. *)
  for _ = 1 to 100 do
    ignore
      (Flextoe.Cc.Dctcp.update d ~wire_bps:wire
         (obs ~acked:100_000 ~ecn:100_000 ()))
  done;
  check_bool "alpha -> 1" true (Flextoe.Cc.Dctcp.alpha d > 0.95);
  (* Unmarked intervals decay it back. *)
  for _ = 1 to 100 do
    ignore (Flextoe.Cc.Dctcp.update d ~wire_bps:wire (obs ()))
  done;
  check_bool "alpha decays" true (Flextoe.Cc.Dctcp.alpha d < 0.05)

let test_dctcp_cut_proportional_to_alpha () =
  (* Light marking cuts gently; heavy marking cuts toward half. *)
  let run_marked frac n =
    let d = Flextoe.Cc.Dctcp.create () in
    let acked = 1_000_000 in
    for _ = 1 to n do
      ignore
        (Flextoe.Cc.Dctcp.update d ~wire_bps:wire
           (obs ~acked ~ecn:(int_of_float (frac *. float_of_int acked)) ()))
    done;
    Flextoe.Cc.Dctcp.rate_bps d
  in
  let light = run_marked 0.05 10 in
  let heavy = run_marked 1.0 10 in
  check_bool "both paced" true (light > 0 && heavy > 0);
  check_bool "heavier marking, lower rate" true (heavy < light)

let test_dctcp_additive_increase_recovers () =
  let d = Flextoe.Cc.Dctcp.create () in
  (* Enter congestion once. *)
  ignore
    (Flextoe.Cc.Dctcp.update d ~wire_bps:wire
       (obs ~acked:1_000_000 ~ecn:1_000_000 ()));
  let r0 = Flextoe.Cc.Dctcp.rate_bps d in
  check_bool "paced" true (r0 > 0);
  (* Clean intervals: proportional increase until uncongested again
     (rate/16 per step compounds: ~16 ln(wire/r0) steps). *)
  let steps = ref 0 in
  while Flextoe.Cc.Dctcp.rate_bps d > 0 && !steps < 100_000 do
    incr steps;
    ignore (Flextoe.Cc.Dctcp.update d ~wire_bps:wire (obs ()))
  done;
  check_bool "returns to uncongested" true
    (Flextoe.Cc.Dctcp.rate_bps d = 0);
  check_bool
    (Printf.sprintf "recovers in tens of decisions (%d)" !steps)
    true
    (!steps >= 1 && !steps < 2000)

let test_dctcp_retx_halves () =
  let d = Flextoe.Cc.Dctcp.create () in
  ignore
    (Flextoe.Cc.Dctcp.update d ~wire_bps:wire
       (obs ~acked:1_000_000 ~ecn:100_000 ()));
  let before = Flextoe.Cc.Dctcp.rate_bps d in
  ignore (Flextoe.Cc.Dctcp.update d ~wire_bps:wire (obs ~fretx:1 ()));
  let after = Flextoe.Cc.Dctcp.rate_bps d in
  check_bool "halved on loss" true
    (after <= (before / 2) + Flextoe.Cc.min_rate_bps)

let test_dctcp_rate_floor () =
  let d = Flextoe.Cc.Dctcp.create () in
  for _ = 1 to 50 do
    ignore
      (Flextoe.Cc.Dctcp.update d ~wire_bps:wire
         (obs ~acked:1000 ~ecn:1000 ~fretx:1 ()))
  done;
  check_bool "never below the floor" true
    (Flextoe.Cc.Dctcp.rate_bps d >= Flextoe.Cc.min_rate_bps)

(* --- TIMELY ------------------------------------------------------------- *)

let test_timely_low_rtt_no_pacing () =
  let t = Flextoe.Cc.Timely.create () in
  for _ = 1 to 20 do
    ignore
      (Flextoe.Cc.Timely.update t ~wire_bps:wire
         (obs ~rtt:(Flextoe.Cc.Timely.t_low_ns / 2) ()))
  done;
  check_int "stays uncongested below t_low" 0 (Flextoe.Cc.Timely.rate_bps t)

let test_timely_high_rtt_cuts () =
  let t = Flextoe.Cc.Timely.create () in
  ignore
    (Flextoe.Cc.Timely.update t ~wire_bps:wire
       (obs ~rtt:(2 * Flextoe.Cc.Timely.t_high_ns) ()));
  check_bool "paced above t_high" true (Flextoe.Cc.Timely.rate_bps t > 0);
  let r1 = Flextoe.Cc.Timely.rate_bps t in
  ignore
    (Flextoe.Cc.Timely.update t ~wire_bps:wire
       (obs ~rtt:(4 * Flextoe.Cc.Timely.t_high_ns) ()));
  check_bool "keeps cutting while RTT high" true
    (Flextoe.Cc.Timely.rate_bps t < r1)

let test_timely_gradient () =
  let t = Flextoe.Cc.Timely.create () in
  (* Mid-band rising RTT: gradient positive -> decrease. *)
  ignore (Flextoe.Cc.Timely.update t ~wire_bps:wire (obs ~rtt:100_000 ()));
  ignore (Flextoe.Cc.Timely.update t ~wire_bps:wire (obs ~rtt:200_000 ()));
  let paced = Flextoe.Cc.Timely.rate_bps t in
  check_bool "rising RTT paces" true (paced > 0);
  (* Falling RTT: gradient negative -> additive increase. *)
  ignore (Flextoe.Cc.Timely.update t ~wire_bps:wire (obs ~rtt:150_000 ()));
  check_bool "falling RTT increases" true
    (Flextoe.Cc.Timely.rate_bps t > paced)

let test_timely_no_sample_keeps () =
  let t = Flextoe.Cc.Timely.create () in
  check_bool "no RTT sample -> keep" true
    (Flextoe.Cc.Timely.update t ~wire_bps:wire (obs ~rtt:0 ())
    = Flextoe.Cc.Keep)

let suite =
  [
    Alcotest.test_case "throughput estimate" `Quick test_throughput_estimate;
    Alcotest.test_case "dctcp starts uncongested" `Quick
      test_dctcp_starts_uncongested;
    Alcotest.test_case "dctcp alpha EWMA" `Quick test_dctcp_alpha_tracks_marking;
    Alcotest.test_case "dctcp proportional cut" `Quick
      test_dctcp_cut_proportional_to_alpha;
    Alcotest.test_case "dctcp additive increase" `Quick
      test_dctcp_additive_increase_recovers;
    Alcotest.test_case "dctcp halves on retransmit" `Quick
      test_dctcp_retx_halves;
    Alcotest.test_case "dctcp rate floor" `Quick test_dctcp_rate_floor;
    Alcotest.test_case "timely low rtt" `Quick test_timely_low_rtt_no_pacing;
    Alcotest.test_case "timely high rtt cuts" `Quick test_timely_high_rtt_cuts;
    Alcotest.test_case "timely gradient band" `Quick test_timely_gradient;
    Alcotest.test_case "timely keeps without sample" `Quick
      test_timely_no_sample_keeps;
  ]
