(* Odds-and-ends coverage: pcap filters, XDP accounting, config
   presets, cache statistics, stats helpers, trace reset. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- pcap filters --------------------------------------------------- *)

let frame ?(src = 1) ?(dst = 2) ?(sport = 10) ?(dport = 20)
    ?(flags = Tcp.Segment.flags_ack) () =
  let seg =
    Tcp.Segment.make ~flags ~src_ip:src ~dst_ip:dst ~src_port:sport
      ~dst_port:dport ~seq:0 ~ack_seq:0 ()
  in
  Tcp.Segment.make_frame ~src_mac:src ~dst_mac:dst seg

let test_pcap_filters () =
  let open Flextoe.Ext_pcap in
  check_bool "All" true (matches All (frame ()));
  check_bool "Host src" true (matches (Host 1) (frame ()));
  check_bool "Host dst" true (matches (Host 2) (frame ()));
  check_bool "Host miss" false (matches (Host 9) (frame ()));
  check_bool "Src_host dir" false (matches (Src_host 2) (frame ()));
  check_bool "Dst_host dir" true (matches (Dst_host 2) (frame ()));
  check_bool "Port either" true (matches (Port 10) (frame ()));
  check_bool "flag" true (matches (Tcp_flag `Ack) (frame ()));
  check_bool "flag miss" false (matches (Tcp_flag `Syn) (frame ()));
  check_bool "and" true
    (matches (And (Host 1, Port 20)) (frame ()));
  check_bool "or" true (matches (Or (Host 9, Port 20)) (frame ()));
  check_bool "not" false (matches (Not All) (frame ()))

let test_pcap_snaplen_and_limit () =
  let e = Sim.Engine.create () in
  let p = Flextoe.Ext_pcap.create e ~snaplen:32 ~limit:4 () in
  (* Tap directly (the datapath normally calls this). *)
  let dp_dir = Flextoe.Datapath.Dir_rx in
  ignore dp_dir;
  for _ = 1 to 10 do
    (* matches All *)
    ()
  done;
  (* Use attach-less: to_pcap of empty capture has just the header. *)
  check_int "empty pcap = 24B header" 24
    (Bytes.length (Flextoe.Ext_pcap.to_pcap p))

(* --- XDP accounting -------------------------------------------------- *)

let test_xdp_counters () =
  let e = Sim.Engine.create () in
  let x =
    Flextoe.Xdp.create e ~program:(Flextoe.Xdp.null_program ()) ~maps:[||]
  in
  let hook = Flextoe.Xdp.hook x in
  for _ = 1 to 5 do
    ignore (hook.Flextoe.Datapath.xdp_run (frame ()))
  done;
  check_int "runs" 5 (Flextoe.Xdp.runs x);
  check_int "passed" 5 (Flextoe.Xdp.passed x);
  check_int "dropped" 0 (Flextoe.Xdp.dropped x);
  check_bool "instructions counted" true (Flextoe.Xdp.insns_total x >= 10)

(* --- Config presets ---------------------------------------------------- *)

let test_t3_presets_form_a_chain () =
  let open Flextoe.Config in
  check_bool "baseline is unpipelined" true (not t3_baseline.pipelined);
  check_bool "pipelined differs only in that" true
    (t3_pipelined = { t3_baseline with pipelined = true });
  check_bool "threads adds hardware threads" true
    (t3_threads.fpc_threads > t3_pipelined.fpc_threads
    && t3_threads.preproc_replicas = t3_pipelined.preproc_replicas);
  check_bool "replicated adds pre/post replicas" true
    (t3_replicated.preproc_replicas > t3_threads.preproc_replicas
    && t3_replicated.flow_groups = 1);
  check_bool "flow groups add islands" true
    (t3_flow_groups.flow_groups > t3_replicated.flow_groups);
  check_bool "default uses the full configuration" true
    (default.parallelism = t3_flow_groups)

(* --- Cache statistics ----------------------------------------------------- *)

let test_cache_stats_shape () =
  let e = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create e () in
  let n = Flextoe.create_node e ~fabric ~ip:1 () in
  let stats = Flextoe.Datapath.cache_stats (Flextoe.datapath n) in
  (* pre-lookup + 4 CAMs + 4 CLS + emem *)
  check_int "all cache levels reported" 10 (List.length stats);
  check_bool "cold caches" true
    (List.for_all (fun (_, h, m) -> h = 0 && m = 0) stats)

let test_cache_hits_accumulate () =
  let e = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create e () in
  let a = Flextoe.create_node e ~fabric ~ip:1 () in
  let b = Flextoe.create_node e ~fabric ~ip:2 () in
  let stats = Host.Rpc.Stats.create e in
  Host.Rpc.server ~endpoint:(Flextoe.endpoint a) ~port:7 ~app_cycles:100
    ~handler:Host.Rpc.echo_handler ();
  Host.Rpc.Stats.start_measuring stats;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint b) ~engine:e
       ~server_ip:1 ~server_port:7 ~conns:4 ~pipeline:2 ~req_bytes:64
       ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms 10) e;
  let cs = Flextoe.Datapath.cache_stats (Flextoe.datapath a) in
  let total_hits = List.fold_left (fun acc (_, h, _) -> acc + h) 0 cs in
  check_bool "4 hot connections hit the CAMs" true (total_hits > 1000)

(* --- Stats helpers ------------------------------------------------------------ *)

let test_percentile_of_sorted () =
  let a = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "median" 3. (Sim.Stats.percentile_of_sorted a 50.);
  Alcotest.(check (float 1e-9)) "min" 1. (Sim.Stats.percentile_of_sorted a 0.);
  Alcotest.(check (float 1e-9)) "max" 5. (Sim.Stats.percentile_of_sorted a 100.);
  Alcotest.(check (float 1e-9)) "interpolated" 1.04
    (Sim.Stats.percentile_of_sorted a 1.)

let test_trace_reset () =
  let t = Sim.Trace.create () in
  let p = Sim.Trace.register t ~group:"g" "x" in
  ignore (Sim.Trace.enable t ());
  Sim.Trace.hit t p ~now:0 ~conn:0 ~arg:0;
  check_int "hit" 1 (Sim.Trace.hits p);
  Sim.Trace.reset_counts t;
  check_int "reset" 0 (Sim.Trace.hits p)

(* --- BPF map iteration ----------------------------------------------------------- *)

let test_bpf_map_iter () =
  let m =
    Flextoe.Bpf_map.create Flextoe.Bpf_map.Hash_map ~key_size:2 ~value_size:2
      ~max_entries:8
  in
  List.iter
    (fun k ->
      match
        Flextoe.Bpf_map.update m ~key:(Bytes.of_string k)
          ~value:(Bytes.of_string k)
      with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ "aa"; "bb"; "cc" ];
  let seen = ref [] in
  Flextoe.Bpf_map.iter (fun k v ->
      check_bool "value matches key" true (Bytes.equal k v);
      seen := Bytes.to_string k :: !seen)
    m;
  Alcotest.(check (list string)) "all entries" [ "aa"; "bb"; "cc" ]
    (List.sort compare !seen)

let suite =
  [
    Alcotest.test_case "pcap filters" `Quick test_pcap_filters;
    Alcotest.test_case "pcap header" `Quick test_pcap_snaplen_and_limit;
    Alcotest.test_case "xdp counters" `Quick test_xdp_counters;
    Alcotest.test_case "Table 3 presets chain" `Quick
      test_t3_presets_form_a_chain;
    Alcotest.test_case "cache stats shape" `Quick test_cache_stats_shape;
    Alcotest.test_case "cache hits accumulate" `Quick
      test_cache_hits_accumulate;
    Alcotest.test_case "percentile of sorted" `Quick
      test_percentile_of_sorted;
    Alcotest.test_case "trace reset" `Quick test_trace_reset;
    Alcotest.test_case "bpf map iteration" `Quick test_bpf_map_iter;
  ]
