(* Data-path-level tests: NIC-facing interfaces that the integration
   suite doesn't isolate — connection database, reinjection, context
   queues, semantic tracepoints, and FPC bookkeeping. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip_a = 0x0A000001
let ip_b = 0x0A000002

let mk_pair ?config () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let a = Flextoe.create_node engine ~fabric ?config ~ip:ip_a () in
  let b = Flextoe.create_node engine ~fabric ?config ~ip:ip_b () in
  (engine, a, b)

let echo_load engine a b ~conns ~ms =
  let stats = Host.Rpc.Stats.create engine in
  Host.Rpc.server ~endpoint:(Flextoe.endpoint a) ~port:7 ~app_cycles:100
    ~handler:Host.Rpc.echo_handler ();
  Host.Rpc.Stats.start_measuring stats;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint b) ~engine
       ~server_ip:ip_a ~server_port:7 ~conns ~pipeline:2 ~req_bytes:256
       ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms ms) engine;
  stats

let test_has_flow () =
  let engine, a, b = mk_pair () in
  let dp = Flextoe.datapath a in
  let flow =
    Tcp.Flow.v ~local_ip:ip_a ~local_port:7 ~remote_ip:ip_b
      ~remote_port:40_000
  in
  check_bool "unknown before" false (Flextoe.Datapath.has_flow dp flow);
  ignore (echo_load engine a b ~conns:1 ~ms:10);
  (* The CP allocates client ports from 40000 upward. *)
  check_bool "installed after connect" true
    (Flextoe.Datapath.has_flow dp flow)

let test_semantic_tracepoints () =
  let engine, a, b = mk_pair () in
  let dp = Flextoe.datapath a in
  ignore (Sim.Trace.enable (Flextoe.Datapath.traces dp) ());
  ignore (echo_load engine a b ~conns:4 ~ms:20);
  let hits name =
    List.fold_left
      (fun acc p ->
        if Sim.Trace.point_name p = name then acc + Sim.Trace.hits p else acc)
      0
      (Sim.Trace.points (Flextoe.Datapath.traces dp))
  in
  let st = Flextoe.Datapath.stats dp in
  check_bool "rx_seg counted" true (hits "protocol:rx_seg" > 1000);
  check_bool "tx_seg counted" true (hits "protocol:tx_seg" > 1000);
  (* tx_acks also counts HC window updates and ACKs still in flight
     at the horizon; the tracepoint counts RX-generated ones. *)
  let ack_gen = hits "postproc:ack_gen" in
  check_bool "ack tracepoint tracks the wire counter" true
    (abs (st.Flextoe.Datapath.tx_acks - ack_gen) < (ack_gen / 50) + 64);
  check_int "clean network: no ooo" 0 (hits "protocol:ooo_seg");
  check_int "clean network: no fast retx" 0 (hits "protocol:fast_retx")

let test_tracepoints_under_loss () =
  let engine = Sim.Engine.create ~seed:23L () in
  let fabric = Netsim.Fabric.create engine () in
  Netsim.Fabric.set_loss fabric 0.02;
  let a = Flextoe.create_node engine ~fabric ~ip:ip_a () in
  let b = Flextoe.create_node engine ~fabric ~ip:ip_b () in
  List.iter
    (fun n ->
      ignore (Sim.Trace.enable (Flextoe.Datapath.traces (Flextoe.datapath n)) ()))
    [ a; b ];
  ignore (echo_load engine a b ~conns:16 ~ms:100);
  let hits dp name =
    List.fold_left
      (fun acc p ->
        if Sim.Trace.point_name p = name then acc + Sim.Trace.hits p else acc)
      0
      (Sim.Trace.points (Flextoe.Datapath.traces dp))
  in
  let dpa = Flextoe.datapath a and dpb = Flextoe.datapath b in
  check_bool "loss shows out-of-order arrivals" true
    (hits dpa "protocol:ooo_seg" + hits dpb "protocol:ooo_seg" > 0);
  let sta = Flextoe.Datapath.stats dpa and stb = Flextoe.Datapath.stats dpb in
  check_int "fast-retx tracepoint matches the counter"
    (sta.Flextoe.Datapath.fast_retx + stb.Flextoe.Datapath.fast_retx)
    (hits dpa "protocol:fast_retx" + hits dpb "protocol:fast_retx")

let test_xdp_uninstall_restores () =
  let engine, a, b = mk_pair () in
  let dp = Flextoe.datapath a in
  let fw = Flextoe.Ext_firewall.create engine in
  Flextoe.Ext_firewall.install fw dp;
  Flextoe.Ext_firewall.block fw ~ip:ip_b;
  let stats = echo_load engine a b ~conns:1 ~ms:20 in
  check_int "blocked client got nothing" 0 (Host.Rpc.Stats.ops stats);
  (* Uninstall at run time: the client's retransmissions then get
     through. *)
  Flextoe.Xdp.uninstall dp;
  Sim.Engine.run ~until:(Sim.Time.ms 120) engine;
  check_bool "service restored after uninstall" true
    (Host.Rpc.Stats.ops stats > 50)

let test_fpc_busy_reporting () =
  let engine, a, b = mk_pair () in
  ignore (echo_load engine a b ~conns:8 ~ms:10);
  let busy = Flextoe.Datapath.fpc_busy (Flextoe.datapath a) in
  check_bool "many FPCs listed" true (List.length busy > 20);
  let protos =
    List.filter
      (fun (n, _) -> String.length n >= 5 && String.sub n 0 5 = "proto")
      busy
  in
  check_bool "protocol FPCs did work" true
    (List.exists (fun (_, b) -> b > 0) protos);
  check_bool "rtc FPC idle in pipelined mode" true
    (List.assoc "rtc0" busy = 0)

let test_rtc_uses_only_rtc_fpc () =
  let config =
    Flextoe.Config.with_parallelism Flextoe.Config.default
      Flextoe.Config.t3_baseline
  in
  let engine, a, b = mk_pair ~config () in
  ignore (echo_load engine a b ~conns:2 ~ms:10);
  let busy = Flextoe.Datapath.fpc_busy (Flextoe.datapath a) in
  check_bool "rtc FPC did the work" true (List.assoc "rtc0" busy > 0);
  check_int "protocol FPCs idle in run-to-completion" 0
    (List.assoc "proto0" busy)

let test_stats_consistency () =
  let engine, a, b = mk_pair () in
  let stats = echo_load engine a b ~conns:8 ~ms:30 in
  let sa = Flextoe.Datapath.stats (Flextoe.datapath a) in
  let sb = Flextoe.Datapath.stats (Flextoe.datapath b) in
  check_bool "ops flowed" true (Host.Rpc.Stats.ops stats > 1000);
  (* On a lossless fabric, what a sends is what b receives (off by the
     segments still in flight at the horizon). *)
  let sent = sa.Flextoe.Datapath.tx_segments + sa.Flextoe.Datapath.tx_acks in
  let seen = sb.Flextoe.Datapath.rx_segments in
  check_bool "conservation a->b" true (abs (sent - seen) < 64);
  check_int "nothing dropped" 0 sa.Flextoe.Datapath.rx_dropped

let suite =
  [
    Alcotest.test_case "connection database lookup" `Quick test_has_flow;
    Alcotest.test_case "semantic tracepoints (clean)" `Quick
      test_semantic_tracepoints;
    Alcotest.test_case "semantic tracepoints (loss)" `Quick
      test_tracepoints_under_loss;
    Alcotest.test_case "XDP uninstall restores service" `Quick
      test_xdp_uninstall_restores;
    Alcotest.test_case "fpc busy reporting" `Quick test_fpc_busy_reporting;
    Alcotest.test_case "run-to-completion placement" `Quick
      test_rtc_uses_only_rtc_fpc;
    Alcotest.test_case "segment conservation" `Quick test_stats_consistency;
  ]

(* VLAN-tagged ingress end to end: without the strip module, tagged
   frames are not data-path segments (they detour to the control
   plane); with it, they flow normally. *)
let test_vlan_ingress () =
  let run with_strip =
    let engine = Sim.Engine.create () in
    let fabric = Netsim.Fabric.create engine () in
    let a = Flextoe.create_node engine ~fabric ~ip:ip_a () in
    let b = Flextoe.create_node engine ~fabric ~ip:ip_b () in
    if with_strip then begin
      let vs = Flextoe.Ext_vlan.create engine in
      Flextoe.Ext_vlan.install vs (Flextoe.datapath a)
    end;
    let stats = Host.Rpc.Stats.create engine in
    Host.Rpc.server ~endpoint:(Flextoe.endpoint a) ~port:7 ~app_cycles:50
      ~handler:Host.Rpc.echo_handler ();
    Host.Rpc.Stats.start_measuring stats;
    (* Establish one normal connection first. *)
    let sock = ref None in
    (Flextoe.endpoint b).Host.Api.connect ~remote_ip:ip_a ~remote_port:7
      ~on_connected:(fun r ->
        match r with Ok s -> sock := Some s | Error e -> Alcotest.failf "%s" e);
    Sim.Engine.run ~until:(Sim.Time.ms 2) engine;
    let sock = Option.get !sock in
    ignore (sock.Host.Api.send (Host.Framing.encode (Bytes.make 32 'x')));
    Sim.Engine.run ~until:(Sim.Time.ms 5) engine;
    let before = Host.Rpc.Stats.ops stats in
    ignore before;
    (* Now inject VLAN-tagged copies of a data segment directly into
       the fabric toward the server. *)
    let cs =
      Option.get (Flextoe.Datapath.conn (Flextoe.datapath b) 0)
    in
    let flow = cs.Flextoe.Conn_state.flow in
    let seg =
      Tcp.Segment.make ~flags:Tcp.Segment.flags_ack
        ~payload:Bytes.empty
        ~src_ip:flow.Tcp.Flow.local_ip
        ~dst_ip:flow.Tcp.Flow.remote_ip
        ~src_port:flow.Tcp.Flow.local_port
        ~dst_port:flow.Tcp.Flow.remote_port
        ~seq:
          (Flextoe.Conn_state.tx_seq_of_pos cs
             cs.Flextoe.Conn_state.proto.Flextoe.Conn_state.tx_next_pos)
        ~ack_seq:(Tcp.Reassembly.next cs.Flextoe.Conn_state.proto.Flextoe.Conn_state.reasm)
        ()
    in
    let tagged =
      Tcp.Segment.make_frame ~vlan:(Some 7)
        ~src_mac:(Flextoe.mac_of_ip ip_b) ~dst_mac:(Flextoe.mac_of_ip ip_a)
        seg
    in
    let port = Flextoe.Datapath.fabric_port (Flextoe.datapath b) in
    let ctl_before =
      (Flextoe.Datapath.stats (Flextoe.datapath a)).Flextoe.Datapath
      .rx_to_control
    in
    for _ = 1 to 10 do
      Netsim.Fabric.transmit port tagged
    done;
    Sim.Engine.run ~until:(Sim.Time.ms 8) engine;
    let ctl_after =
      (Flextoe.Datapath.stats (Flextoe.datapath a)).Flextoe.Datapath
      .rx_to_control
    in
    ctl_after - ctl_before
  in
  (* Without the strip module, the 10 tagged frames detour to the
     control plane; with it, they are stripped and handled by the
     data path. *)
  check_bool "tagged frames detour without strip" true (run false >= 10);
  check_int "stripped frames stay on the data path" 0 (run true)

let vlan_suite =
  [ Alcotest.test_case "VLAN ingress with/without strip module" `Quick
      test_vlan_ingress ]
