(* FlexTOE core unit tests: connection state, protocol stage logic,
   sequencer, Carousel scheduler. *)

module C = Flextoe.Conn_state
module P = Flextoe.Protocol
module M = Flextoe.Meta

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let cfg = Flextoe.Config.default

let mk_conn ?(rx_buf = 65536) ?(tx_buf = 65536) () =
  let flow =
    Tcp.Flow.v ~local_ip:1 ~local_port:80 ~remote_ip:2 ~remote_port:4000
  in
  C.create ~idx:0 ~flow ~peer_mac:2 ~flow_group:0 ~tx_isn:5000 ~rx_isn:9000
    ~opaque:0 ~ctx_id:0 ~rx_buf_bytes:rx_buf ~tx_buf_bytes:tx_buf ()

let gseq = ref 0

let alloc_gseq () =
  incr gseq;
  !gseq

let summary ?(seq = 0) ?(ack_seq = 0) ?(has_ack = true) ?(payload = Bytes.empty)
    ?(wnd = 512) ?(fin = false) ?(ece = false) ?(cwr = false)
    ?(ecn_ce = false) ?ts () =
  {
    M.rx_gseq = 0;
    conn = 0;
    seq;
    ack_seq;
    has_ack;
    wnd;
    payload;
    fin;
    psh = false;
    ece;
    cwr;
    ecn_ce;
    ts;
    arrival = 0;
  }

(* --- Conn_state mappings ------------------------------------------------ *)

let test_state_partition_sizes () =
  check_int "protocol partition" 43 C.state_bytes_proto;
  check_int "post partition" 51 C.state_bytes_post;
  check_int "pre partition (Table 5)" 14 C.state_bytes_pre;
  check_int "total 108B" 108
    (C.state_bytes_pre + C.state_bytes_proto + C.state_bytes_post)

let test_seq_pos_mapping () =
  let c = mk_conn () in
  check_int "pos 0 is isn+1" 5001 (C.tx_seq_of_pos c 0);
  check_int "inverse" 1234 (C.tx_pos_of_seq c (C.tx_seq_of_pos c 1234));
  check_int "rx mapping" 0 (C.rx_pos_of_seq c 9001);
  check_int "rx next pos starts at 0" 0 (C.rx_next_pos c)

(* --- Protocol: RX ---------------------------------------------------------- *)

let test_rx_in_order_data () =
  let c = mk_conn () in
  let v =
    P.rx cfg ~now:0 c
      (summary ~seq:9001 ~payload:(Bytes.of_string "hello") ())
      ~alloc_gseq
  in
  (match v.M.v_place with
  | Some (0, b) -> Alcotest.(check string) "payload" "hello" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected placement at 0");
  check_int "advance" 5 v.M.v_rx_advance;
  check_bool "acked" true (v.M.v_ack <> None);
  check_int "window shrank" (65536 - 5) c.C.proto.C.rx_avail;
  match v.M.v_ack with
  | Some a -> check_int "cumulative ack" 9006 a.M.a_ack
  | None -> ()

let test_rx_pure_ack_frees_tx () =
  let c = mk_conn () in
  (* Pretend we sent 1000 bytes. *)
  c.C.proto.C.tx_tail_pos <- 1000;
  c.C.proto.C.tx_next_pos <- 1000;
  c.C.proto.C.tx_max_pos <- 1000;
  let v =
    P.rx cfg ~now:0 c (summary ~ack_seq:(C.tx_seq_of_pos c 600) ())
      ~alloc_gseq
  in
  check_int "600 freed" 600 v.M.v_tx_freed;
  check_int "acked pos" 600 c.C.proto.C.tx_acked_pos;
  check_bool "wakes tx" true v.M.v_wake_tx;
  check_bool "no ack for pure ack" true (v.M.v_ack = None)

let test_rx_dupacks_trigger_fast_retx () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 5000;
  c.C.proto.C.tx_next_pos <- 3000;
  c.C.proto.C.tx_max_pos <- 3000;
  c.C.proto.C.tx_acked_pos <- 1000;
  let dup () =
    P.rx cfg ~now:0 c (summary ~ack_seq:(C.tx_seq_of_pos c 1000) ())
      ~alloc_gseq
  in
  (* The first ACK carries a new advertised window: a window update,
     not a duplicate. Duplicates start once the window is stable. *)
  ignore (dup ());
  let v1 = dup () and v2 = dup () in
  check_bool "not yet" false (v1.M.v_fast_retx || v2.M.v_fast_retx);
  let v3 = dup () in
  check_bool "third dupack fires" true v3.M.v_fast_retx;
  check_int "go-back-N reset" 1000 c.C.proto.C.tx_next_pos;
  (* No immediate second fast retransmit (recover gate). *)
  c.C.proto.C.tx_next_pos <- 3000;
  c.C.proto.C.tx_max_pos <- 3000;
  let v4 = dup () and v5 = dup () and v6 = dup () in
  check_bool "gated during recovery" false
    (v4.M.v_fast_retx || v5.M.v_fast_retx || v6.M.v_fast_retx)

let test_rx_ooo_generates_dup_ack () =
  let c = mk_conn () in
  let v =
    P.rx cfg ~now:0 c
      (summary ~seq:10001 ~payload:(Bytes.make 10 'x') ())
      ~alloc_gseq
  in
  (match v.M.v_place with
  | Some (pos, _) -> check_int "placed at hole offset" 1000 pos
  | None -> Alcotest.fail "ooo data should be placed");
  check_int "no advance" 0 v.M.v_rx_advance;
  (match v.M.v_ack with
  | Some a -> check_int "acks expected seq" 9001 a.M.a_ack
  | None -> Alcotest.fail "dup ack expected");
  check_bool "hole tracked" true (Tcp.Reassembly.has_hole c.C.proto.C.reasm)

let test_rx_fin_in_order () =
  let c = mk_conn () in
  let v =
    P.rx cfg ~now:0 c
      (summary ~seq:9001 ~payload:(Bytes.of_string "bye") ~fin:true ())
      ~alloc_gseq
  in
  check_bool "fin reached" true v.M.v_fin_reached;
  check_bool "rx_fin" true c.C.proto.C.rx_fin;
  match v.M.v_ack with
  | Some a -> check_int "fin consumes a seq" 9005 a.M.a_ack
  | None -> Alcotest.fail "fin must be acked"

let test_rx_fin_out_of_order_ignored () =
  let c = mk_conn () in
  (* FIN whose data hasn't arrived yet. *)
  let v =
    P.rx cfg ~now:0 c (summary ~seq:9500 ~fin:true ()) ~alloc_gseq
  in
  check_bool "not consumed" false v.M.v_fin_reached;
  check_bool "state unchanged" false c.C.proto.C.rx_fin

let test_rx_ecn_echo () =
  let c = mk_conn () in
  let v =
    P.rx cfg ~now:0 c
      (summary ~seq:9001 ~payload:(Bytes.make 3 'x') ~ecn_ce:true ())
      ~alloc_gseq
  in
  (match v.M.v_ack with
  | Some a -> check_bool "ECE echoed" true a.M.a_ece
  | None -> Alcotest.fail "ack expected");
  (* Echo persists until CWR. *)
  let v2 =
    P.rx cfg ~now:0 c (summary ~seq:9004 ~payload:(Bytes.make 3 'x') ())
      ~alloc_gseq
  in
  (match v2.M.v_ack with
  | Some a -> check_bool "still echoing" true a.M.a_ece
  | None -> ());
  let v3 =
    P.rx cfg ~now:0 c
      (summary ~seq:9007 ~payload:(Bytes.make 3 'x') ~cwr:true ())
      ~alloc_gseq
  in
  match v3.M.v_ack with
  | Some a -> check_bool "CWR clears echo" false a.M.a_ece
  | None -> ()

let test_rx_ece_on_ack_counts_ecn_bytes () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 1000;
  c.C.proto.C.tx_next_pos <- 1000;
  c.C.proto.C.tx_max_pos <- 1000;
  let v =
    P.rx cfg ~now:0 c
      (summary ~ack_seq:(C.tx_seq_of_pos c 500) ~ece:true ())
      ~alloc_gseq
  in
  check_int "ack bytes" 500 v.M.v_ack_bytes;
  check_int "ecn bytes" 500 v.M.v_ecn_bytes;
  check_bool "cwr pending on sender" true c.C.proto.C.cwr_pending

let test_rx_rtt_from_timestamp () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 100;
  c.C.proto.C.tx_next_pos <- 100;
  c.C.proto.C.tx_max_pos <- 100;
  let now = Sim.Time.us 150 in
  (* Peer echoes our tsval of 100us in its ack at 150us: RTT 50us. *)
  let v =
    P.rx cfg ~now c
      (summary ~ack_seq:(C.tx_seq_of_pos c 100) ~ts:(7, 100) ())
      ~alloc_gseq
  in
  check_int "rtt sample 50us" 50_000 v.M.v_rtt_sample_ns

let test_rx_bogus_ack_ignored () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 100;
  c.C.proto.C.tx_next_pos <- 100;
  c.C.proto.C.tx_max_pos <- 100;
  let v =
    P.rx cfg ~now:0 c (summary ~ack_seq:(C.tx_seq_of_pos c 5000) ())
      ~alloc_gseq
  in
  check_int "nothing freed" 0 v.M.v_tx_freed;
  check_int "state untouched" 0 c.C.proto.C.tx_acked_pos

let test_rx_window_update_wakes () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 4000;
  c.C.proto.C.tx_next_pos <- 2000;
  c.C.proto.C.tx_max_pos <- 2000;
  c.C.proto.C.remote_win <- 2000;  (* window full *)
  let v =
    P.rx cfg ~now:0 c
      (summary ~ack_seq:(C.tx_seq_of_pos c 0) ~wnd:64 ())
      ~alloc_gseq
  in
  (* 64 << 7 = 8192 > in-flight: flow can move again. *)
  check_bool "window open wakes" true v.M.v_wake_tx;
  check_int "remote window scaled" 8192 c.C.proto.C.remote_win

(* --- Protocol: TX ------------------------------------------------------------ *)

let test_tx_segments_stream () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 3000;
  let d1 = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_int "first at 0" 0 d1.M.t_pos;
  check_int "mss-sized" cfg.Flextoe.Config.mss d1.M.t_len;
  check_int "seq" (C.tx_seq_of_pos c 0) d1.M.t_seq;
  check_bool "more to send" true d1.M.t_more;
  let d2 = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_int "second chunk" cfg.Flextoe.Config.mss d2.M.t_pos;
  check_int "full mss again" cfg.Flextoe.Config.mss d2.M.t_len;
  check_bool "still more" true d2.M.t_more;
  let d3 = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_int "remainder" (3000 - (2 * cfg.Flextoe.Config.mss)) d3.M.t_len;
  check_bool "no more" false d3.M.t_more;
  check_bool "fourth is none" true (P.tx cfg ~now:0 c ~alloc_gseq = None)

let test_tx_respects_remote_window () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 3000;
  c.C.proto.C.remote_win <- 100;
  let d = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_int "clamped to window" 100 d.M.t_len;
  check_bool "window exhausted" false d.M.t_more;
  check_bool "stalled" true (P.tx cfg ~now:0 c ~alloc_gseq = None)

let test_tx_fin_piggyback () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 10;
  c.C.proto.C.tx_fin <- true;
  let d = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_bool "fin on last segment" true d.M.t_fin;
  check_bool "fin_sent" true c.C.proto.C.fin_sent

let test_tx_fin_only_segment () =
  let c = mk_conn () in
  c.C.proto.C.tx_fin <- true;
  let d = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_int "empty fin" 0 d.M.t_len;
  check_bool "fin flag" true d.M.t_fin;
  check_bool "nothing after fin" true (P.tx cfg ~now:0 c ~alloc_gseq = None)

let test_tx_cwr_set_once () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 5000;
  c.C.proto.C.cwr_pending <- true;
  let d1 = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  let d2 = Option.get (P.tx cfg ~now:0 c ~alloc_gseq) in
  check_bool "first carries CWR" true d1.M.t_cwr;
  check_bool "second does not" false d2.M.t_cwr

(* --- Protocol: HC ---------------------------------------------------------------- *)

let test_hc_tx_avail () =
  let c = mk_conn () in
  let r = P.hc cfg ~now:0 c (M.Tx_avail 500) ~alloc_gseq in
  check_bool "wakes" true r.P.hc_wake_tx;
  check_int "tail moved" 500 c.C.proto.C.tx_tail_pos

let test_hc_rx_credit_window_update () =
  let c = mk_conn ~rx_buf:4096 () in
  c.C.proto.C.rx_avail <- 0;  (* app stopped reading; window closed *)
  let r = P.hc cfg ~now:0 c (M.Rx_credit 4096) ~alloc_gseq in
  check_bool "window update emitted" true (r.P.hc_window_update <> None);
  check_int "window restored" 4096 c.C.proto.C.rx_avail;
  (* Small credits above the threshold don't spam updates. *)
  let r2 = P.hc cfg ~now:0 c (M.Rx_credit 100) ~alloc_gseq in
  check_bool "no update when open" true (r2.P.hc_window_update = None)

let test_hc_retransmit_reset () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 2000;
  c.C.proto.C.tx_next_pos <- 1500;
  c.C.proto.C.tx_max_pos <- 1500;
  c.C.proto.C.tx_acked_pos <- 300;
  c.C.proto.C.fin_sent <- true;
  let r = P.hc cfg ~now:77 c M.Retransmit ~alloc_gseq in
  check_bool "wakes" true r.P.hc_wake_tx;
  check_int "go-back-N" 300 c.C.proto.C.tx_next_pos;
  check_bool "fin resend allowed" false c.C.proto.C.fin_sent

(* --- Sequencer --------------------------------------------------------------------- *)

let test_sequencer_reorders () =
  let out = ref [] in
  let s = Flextoe.Sequencer.create ~name:"t" ~release:(fun v -> out := v :: !out) in
  let s0 = Flextoe.Sequencer.next_seq s in
  let s1 = Flextoe.Sequencer.next_seq s in
  let s2 = Flextoe.Sequencer.next_seq s in
  Flextoe.Sequencer.submit s ~seq:s2 "c";
  Flextoe.Sequencer.submit s ~seq:s0 "a";
  Alcotest.(check (list string)) "only prefix released" [ "a" ] (List.rev !out);
  Flextoe.Sequencer.submit s ~seq:s1 "b";
  Alcotest.(check (list string)) "rest drains in order" [ "a"; "b"; "c" ]
    (List.rev !out);
  (* Only [c] arrived ahead of its turn. *)
  check_int "reordered count" 1 (Flextoe.Sequencer.reordered s)

let test_sequencer_skip () =
  let out = ref [] in
  let s = Flextoe.Sequencer.create ~name:"t" ~release:(fun v -> out := v :: !out) in
  let s0 = Flextoe.Sequencer.next_seq s in
  let s1 = Flextoe.Sequencer.next_seq s in
  Flextoe.Sequencer.submit s ~seq:s1 "b";
  Flextoe.Sequencer.skip s ~seq:s0;
  Alcotest.(check (list string)) "skip unblocks" [ "b" ] (List.rev !out)

let test_sequencer_rejects_duplicates () =
  let s = Flextoe.Sequencer.create ~name:"t" ~release:ignore in
  let s0 = Flextoe.Sequencer.next_seq s in
  Flextoe.Sequencer.submit s ~seq:s0 ();
  Alcotest.check_raises "double submit"
    (Invalid_argument "t: duplicate sequence number") (fun () ->
      Flextoe.Sequencer.submit s ~seq:s0 ())

let prop_sequencer_any_permutation =
  QCheck.Test.make ~name:"sequencer: any submit order releases in order"
    ~count:200
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 3)) in
      let n = 50 in
      let out = ref [] in
      let s =
        Flextoe.Sequencer.create ~name:"t" ~release:(fun v -> out := v :: !out)
      in
      let seqs = Array.init n (fun _ -> Flextoe.Sequencer.next_seq s) in
      Sim.Rng.shuffle rng seqs;
      Array.iter (fun q -> Flextoe.Sequencer.submit s ~seq:q q) seqs;
      List.rev !out = List.init n (fun i -> i)
      && Flextoe.Sequencer.pending s = 0)

(* --- Scheduler (Carousel) -------------------------------------------------------------- *)

let test_scheduler_round_robin () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  let sch = ref None in
  let s =
    Flextoe.Scheduler.create e ~slot:(Sim.Time.us 1) ~slots:256 ~credits:1
      ~dispatch:(fun ~conn ->
        log := conn :: !log;
        (* Simulate a TX workflow completing a bit later. *)
        let sc = Option.get !sch in
        Sim.Engine.schedule e 100 (fun () ->
            Flextoe.Scheduler.on_sent sc ~conn ~bytes:100 ~more:true;
            Flextoe.Scheduler.credit_return sc))
  in
  sch := Some s;
  Flextoe.Scheduler.wakeup s ~conn:1;
  Flextoe.Scheduler.wakeup s ~conn:2;
  Sim.Engine.run ~until:(Sim.Time.ns 2) e ~max_events:200;
  let first_six =
    List.rev !log |> List.filteri (fun i _ -> i < 6)
  in
  Alcotest.(check (list int)) "alternates fairly" [ 1; 2; 1; 2; 1; 2 ]
    first_six

let test_scheduler_pacing () =
  let e = Sim.Engine.create () in
  let times = ref [] in
  let sch = ref None in
  let s =
    Flextoe.Scheduler.create e ~slot:(Sim.Time.us 1) ~slots:4096 ~credits:4
      ~dispatch:(fun ~conn ->
        times := Sim.Engine.now e :: !times;
        let sc = Option.get !sch in
        Flextoe.Scheduler.on_sent sc ~conn ~bytes:1000 ~more:true;
        Flextoe.Scheduler.credit_return sc)
  in
  sch := Some s;
  (* 1000 bytes at 10 ps/byte = 10 ns per segment... below slot
     granularity; use a slower rate: 10_000 ps/byte -> 10 us/segment. *)
  Flextoe.Scheduler.set_interval s ~conn:5 ~ps_per_byte:10_000;
  Flextoe.Scheduler.wakeup s ~conn:5;
  Sim.Engine.run ~until:(Sim.Time.us 95) e;
  let n = List.length !times in
  (* ~1 segment per 10us over 95us, plus the initial one. *)
  check_bool "paced rate respected" true (n >= 9 && n <= 11)

let test_scheduler_uncongested_bypass () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let sch = ref None in
  let s =
    Flextoe.Scheduler.create e ~slot:(Sim.Time.us 1) ~slots:4096 ~credits:1
      ~dispatch:(fun ~conn ->
        incr count;
        let sc = Option.get !sch in
        Sim.Engine.schedule e 10 (fun () ->
            Flextoe.Scheduler.on_sent sc ~conn ~bytes:1500 ~more:true;
            Flextoe.Scheduler.credit_return sc))
  in
  sch := Some s;
  Flextoe.Scheduler.wakeup s ~conn:1;
  Sim.Engine.run ~until:(Sim.Time.us 10) e ~max_events:10_000;
  (* rate 0: no pacing, limited only by workflow latency. *)
  check_bool "work conserving" true (!count > 100)

let test_scheduler_idle_flow_stops () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  let sch = ref None in
  let s =
    Flextoe.Scheduler.create e ~slot:(Sim.Time.us 1) ~slots:16 ~credits:1
      ~dispatch:(fun ~conn ->
        incr count;
        let sc = Option.get !sch in
        Flextoe.Scheduler.on_sent sc ~conn ~bytes:0 ~more:false;
        Flextoe.Scheduler.credit_return sc)
  in
  sch := Some s;
  Flextoe.Scheduler.wakeup s ~conn:9;
  Sim.Engine.run e;
  check_int "dispatched once then idles" 1 !count;
  (* A wakeup during dispatch requeues exactly once. *)
  Flextoe.Scheduler.wakeup s ~conn:9;
  Sim.Engine.run e;
  check_int "re-armed" 2 !count

let test_scheduler_credit_gating () =
  let e = Sim.Engine.create () in
  let inflight = ref 0 and max_inflight = ref 0 in
  let sch = ref None in
  let s =
    Flextoe.Scheduler.create e ~slot:(Sim.Time.us 1) ~slots:16 ~credits:3
      ~dispatch:(fun ~conn ->
        incr inflight;
        if !inflight > !max_inflight then max_inflight := !inflight;
        let sc = Option.get !sch in
        Sim.Engine.schedule e 1000 (fun () ->
            decr inflight;
            Flextoe.Scheduler.on_sent sc ~conn ~bytes:100 ~more:true;
            Flextoe.Scheduler.credit_return sc))
  in
  sch := Some s;
  for conn = 1 to 10 do
    Flextoe.Scheduler.wakeup s ~conn
  done;
  Sim.Engine.run ~until:(Sim.Time.us 1) e ~max_events:5_000;
  check_bool "never exceeds credits" true (!max_inflight <= 3)

let suite =
  [
    Alcotest.test_case "Table 5 partition sizes" `Quick
      test_state_partition_sizes;
    Alcotest.test_case "seq/pos mapping" `Quick test_seq_pos_mapping;
    Alcotest.test_case "rx in-order data" `Quick test_rx_in_order_data;
    Alcotest.test_case "rx pure ack frees tx" `Quick
      test_rx_pure_ack_frees_tx;
    Alcotest.test_case "rx triple dupack fast retransmit" `Quick
      test_rx_dupacks_trigger_fast_retx;
    Alcotest.test_case "rx out-of-order dup ack" `Quick
      test_rx_ooo_generates_dup_ack;
    Alcotest.test_case "rx FIN in order" `Quick test_rx_fin_in_order;
    Alcotest.test_case "rx FIN out of order" `Quick
      test_rx_fin_out_of_order_ignored;
    Alcotest.test_case "rx ECN echo until CWR" `Quick test_rx_ecn_echo;
    Alcotest.test_case "rx ECE counts ecn bytes" `Quick
      test_rx_ece_on_ack_counts_ecn_bytes;
    Alcotest.test_case "rx RTT from timestamps" `Quick
      test_rx_rtt_from_timestamp;
    Alcotest.test_case "rx bogus ack ignored" `Quick
      test_rx_bogus_ack_ignored;
    Alcotest.test_case "rx window update wakes sender" `Quick
      test_rx_window_update_wakes;
    Alcotest.test_case "tx segments the stream" `Quick
      test_tx_segments_stream;
    Alcotest.test_case "tx respects remote window" `Quick
      test_tx_respects_remote_window;
    Alcotest.test_case "tx FIN piggyback" `Quick test_tx_fin_piggyback;
    Alcotest.test_case "tx FIN-only segment" `Quick test_tx_fin_only_segment;
    Alcotest.test_case "tx CWR set once" `Quick test_tx_cwr_set_once;
    Alcotest.test_case "hc tx_avail" `Quick test_hc_tx_avail;
    Alcotest.test_case "hc rx credit window update" `Quick
      test_hc_rx_credit_window_update;
    Alcotest.test_case "hc retransmit reset" `Quick test_hc_retransmit_reset;
    Alcotest.test_case "sequencer reorders" `Quick test_sequencer_reorders;
    Alcotest.test_case "sequencer skip" `Quick test_sequencer_skip;
    Alcotest.test_case "sequencer duplicate rejection" `Quick
      test_sequencer_rejects_duplicates;
    QCheck_alcotest.to_alcotest prop_sequencer_any_permutation;
    Alcotest.test_case "scheduler round robin" `Quick
      test_scheduler_round_robin;
    Alcotest.test_case "scheduler pacing via time wheel" `Quick
      test_scheduler_pacing;
    Alcotest.test_case "scheduler uncongested bypass" `Quick
      test_scheduler_uncongested_bypass;
    Alcotest.test_case "scheduler idles empty flows" `Quick
      test_scheduler_idle_flow_stops;
    Alcotest.test_case "scheduler credit gating" `Quick
      test_scheduler_credit_gating;
  ]

(* --- Delayed ACKs (paper §5.2 future-work feature) ------------------- *)

let dcfg = { cfg with Flextoe.Config.delayed_acks = true }

let test_delayed_ack_every_second_segment () =
  let c = mk_conn () in
  let seg1 =
    P.rx dcfg ~now:0 c
      (summary ~seq:9001 ~payload:(Bytes.make 100 'a') ())
      ~alloc_gseq
  in
  check_bool "first segment unacked" true (seg1.M.v_ack = None);
  check_int "pending counter" 1 c.C.proto.C.delack_segs;
  let seg2 =
    P.rx dcfg ~now:0 c
      (summary ~seq:9101 ~payload:(Bytes.make 100 'a') ())
      ~alloc_gseq
  in
  check_bool "second segment acked" true (seg2.M.v_ack <> None);
  check_int "counter reset" 0 c.C.proto.C.delack_segs

let test_delayed_ack_immediate_on_ooo () =
  let c = mk_conn () in
  (* Out-of-order segments must produce immediate duplicate ACKs or
     fast retransmit breaks. *)
  let v =
    P.rx dcfg ~now:0 c
      (summary ~seq:9501 ~payload:(Bytes.make 100 'a') ())
      ~alloc_gseq
  in
  check_bool "ooo acked immediately" true (v.M.v_ack <> None)

let test_delayed_ack_immediate_on_fin () =
  let c = mk_conn () in
  let v =
    P.rx dcfg ~now:0 c
      (summary ~seq:9001 ~payload:(Bytes.make 10 'a') ~fin:true ())
      ~alloc_gseq
  in
  check_bool "fin acked immediately" true (v.M.v_ack <> None)

let test_delayed_ack_piggyback_clears () =
  let c = mk_conn () in
  c.C.proto.C.tx_tail_pos <- 100;
  ignore
    (P.rx dcfg ~now:0 c
       (summary ~seq:9001 ~payload:(Bytes.make 100 'a') ())
       ~alloc_gseq);
  check_int "one pending" 1 c.C.proto.C.delack_segs;
  ignore (P.tx dcfg ~now:0 c ~alloc_gseq);
  check_int "data segment piggybacks the ack" 0 c.C.proto.C.delack_segs

let test_delayed_ack_flush_op () =
  let c = mk_conn () in
  ignore
    (P.rx dcfg ~now:0 c
       (summary ~seq:9001 ~payload:(Bytes.make 100 'a') ())
       ~alloc_gseq);
  let r = P.hc dcfg ~now:0 c M.Ack_flush ~alloc_gseq in
  check_bool "flush emits the ack" true (r.P.hc_window_update <> None);
  check_int "pending cleared" 0 c.C.proto.C.delack_segs;
  let r2 = P.hc dcfg ~now:0 c M.Ack_flush ~alloc_gseq in
  check_bool "idempotent" true (r2.P.hc_window_update = None)

let delayed_ack_suite =
  [
    Alcotest.test_case "delayed ack every 2nd segment" `Quick
      test_delayed_ack_every_second_segment;
    Alcotest.test_case "delayed ack: ooo immediate" `Quick
      test_delayed_ack_immediate_on_ooo;
    Alcotest.test_case "delayed ack: fin immediate" `Quick
      test_delayed_ack_immediate_on_fin;
    Alcotest.test_case "delayed ack: piggyback clears" `Quick
      test_delayed_ack_piggyback_clears;
    Alcotest.test_case "delayed ack: control-plane flush" `Quick
      test_delayed_ack_flush_op;
  ]

(* --- Sequence-number wraparound -------------------------------------- *)

let test_wraparound_transfer () =
  (* ISNs just below 2^32: both streams wrap within the first few
     kilobytes. All position arithmetic must survive it. *)
  let flow =
    Tcp.Flow.v ~local_ip:1 ~local_port:80 ~remote_ip:2 ~remote_port:4000
  in
  let c =
    C.create ~idx:0 ~flow ~peer_mac:2 ~flow_group:0
      ~tx_isn:(Tcp.Seq32.of_int 0xFFFFFC00)
      ~rx_isn:(Tcp.Seq32.of_int 0xFFFFFE00)
      ~opaque:0 ~ctx_id:0 ~rx_buf_bytes:65536 ~tx_buf_bytes:65536 ()
  in
  (* Transmit 8 KB (the sequence space wraps after 1 KB). *)
  ignore (P.hc cfg ~now:0 c (M.Tx_avail 8192) ~alloc_gseq);
  let descs = ref [] in
  let rec drain () =
    match P.tx cfg ~now:0 c ~alloc_gseq with
    | Some d ->
        descs := d :: !descs;
        if d.M.t_more then drain ()
    | None -> ()
  in
  drain ();
  let descs = List.rev !descs in
  check_int "whole stream segmented" 8192
    (List.fold_left (fun a d -> a + d.M.t_len) 0 descs);
  (* Positions are continuous even though sequence numbers wrapped. *)
  ignore
    (List.fold_left
       (fun expect d ->
         check_int "contiguous positions" expect d.M.t_pos;
         expect + d.M.t_len)
       0 descs);
  (* Ack everything across the wrap. *)
  let v =
    P.rx cfg ~now:0 c
      (summary ~ack_seq:(C.tx_seq_of_pos c 8192) ())
      ~alloc_gseq
  in
  check_int "all freed across wrap" 8192 v.M.v_tx_freed;
  (* Receive 4 KB across the RX wrap, out of order then in order. *)
  let seg2 = C.rx_seq_of_pos c 1448 in
  let v1 =
    P.rx cfg ~now:0 c
      (summary ~seq:seg2 ~payload:(Bytes.make 1448 'b') ())
      ~alloc_gseq
  in
  check_int "ooo across wrap placed at right offset" 1448
    (match v1.M.v_place with Some (pos, _) -> pos | None -> -1);
  let v2 =
    P.rx cfg ~now:0 c
      (summary ~seq:(C.rx_seq_of_pos c 0) ~payload:(Bytes.make 1448 'a') ())
      ~alloc_gseq
  in
  check_int "hole fill advances past the wrap" 2896 v2.M.v_rx_advance

let wraparound_suite =
  [ Alcotest.test_case "sequence wraparound end to end" `Quick
      test_wraparound_transfer ]
