(* Host substrate tests: CPU accounting, payload buffers, framing,
   KV protocol. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Host CPU ----------------------------------------------------------- *)

let test_cpu_fifo () =
  let e = Sim.Engine.create () in
  let cpu = Host.Host_cpu.create e ~cores:1 () in
  let core = Host.Host_cpu.core cpu 0 in
  let log = ref [] in
  Host.Host_cpu.exec core ~cycles:2000 (fun () ->
      log := ("a", Sim.Engine.now e) :: !log);
  Host.Host_cpu.exec core ~cycles:2000 (fun () ->
      log := ("b", Sim.Engine.now e) :: !log);
  Sim.Engine.run e;
  (* 2000 cycles at 2 GHz = 1 us each, in order. *)
  Alcotest.(check (list (pair string int)))
    "fifo with correct timing"
    [ ("b", Sim.Time.us 2); ("a", Sim.Time.us 1) ]
    !log

let test_cpu_accounting () =
  let e = Sim.Engine.create () in
  let cpu = Host.Host_cpu.create e ~cores:2 () in
  Host.Host_cpu.exec (Host.Host_cpu.core cpu 0) ~category:"app" ~cycles:100
    ignore;
  Host.Host_cpu.exec (Host.Host_cpu.core cpu 1) ~category:"app" ~cycles:50
    ignore;
  Host.Host_cpu.exec (Host.Host_cpu.core cpu 0) ~category:"stack" ~cycles:10
    ignore;
  Sim.Engine.run e;
  Alcotest.(check (list (pair string int)))
    "per category"
    [ ("app", 150); ("stack", 10) ]
    (Host.Host_cpu.cycles_by_category cpu);
  check_int "total" 160 (Host.Host_cpu.total_cycles cpu)

let test_cpu_cores_independent () =
  let e = Sim.Engine.create () in
  let cpu = Host.Host_cpu.create e ~cores:2 () in
  let t0 = ref 0 and t1 = ref 0 in
  Host.Host_cpu.exec (Host.Host_cpu.core cpu 0) ~cycles:20_000 (fun () ->
      t0 := Sim.Engine.now e);
  Host.Host_cpu.exec (Host.Host_cpu.core cpu 1) ~cycles:20_000 (fun () ->
      t1 := Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "parallel cores" !t0 !t1

(* --- Payload buffer ------------------------------------------------------- *)

let test_payload_wraparound () =
  let b = Host.Payload_buf.create ~size:16 in
  let data = Bytes.of_string "0123456789abcdef" in
  (* Write 10 bytes at stream offset 12: wraps at 16. *)
  Host.Payload_buf.write b ~off:12 ~src:data ~src_off:0 ~len:10;
  Alcotest.(check string)
    "wrapped readback" "0123456789"
    (Bytes.to_string (Host.Payload_buf.read b ~off:12 ~len:10))

let prop_payload_stream_semantics =
  QCheck.Test.make
    ~name:"payload buffer: non-overlapping in-window writes read back"
    ~count:200
    QCheck.(pair (int_bound 1000) (list_of_size (Gen.return 8) (int_bound 30)))
    (fun (base, lens) ->
      let size = 256 in
      let b = Host.Payload_buf.create ~size in
      (* Sequential stream writes within one window always read back. *)
      let off = ref base in
      let chunks =
        List.map
          (fun l ->
            let l = max 1 l in
            let data =
              Bytes.init l (fun i -> Char.chr ((!off + i) land 0xFF))
            in
            Host.Payload_buf.write b ~off:!off ~src:data ~src_off:0 ~len:l;
            let this = (!off, data) in
            off := !off + l;
            this)
          lens
      in
      (* Total must fit in the ring for all chunks to be intact. *)
      !off - base <= size
      && List.for_all
           (fun (o, data) ->
             Bytes.equal data
               (Host.Payload_buf.read b ~off:o ~len:(Bytes.length data)))
           chunks)

let test_payload_oversize_rejected () =
  let b = Host.Payload_buf.create ~size:8 in
  Alcotest.check_raises "oversize write"
    (Invalid_argument "Payload_buf.write: larger than buffer") (fun () ->
      Host.Payload_buf.write b ~off:0 ~src:(Bytes.create 9) ~src_off:0 ~len:9)

(* --- Framing ------------------------------------------------------------------ *)

let test_framing_simple () =
  let d = Host.Framing.create () in
  Host.Framing.push d (Host.Framing.encode (Bytes.of_string "hello"));
  Alcotest.(check (option string))
    "one message" (Some "hello")
    (Option.map Bytes.to_string (Host.Framing.next d));
  Alcotest.(check (option string)) "empty" None
    (Option.map Bytes.to_string (Host.Framing.next d))

let prop_framing_chunking_invariant =
  QCheck.Test.make
    ~name:"framing: messages survive arbitrary stream chunking" ~count:200
    QCheck.(pair (list (string_of_size (Gen.int_range 0 50))) (int_range 1 7))
    (fun (msgs, chunk) ->
      let stream =
        Bytes.concat Bytes.empty
          (List.map (fun m -> Host.Framing.encode (Bytes.of_string m)) msgs)
      in
      let d = Host.Framing.create () in
      let n = Bytes.length stream in
      let i = ref 0 in
      let out = ref [] in
      while !i < n do
        let l = min chunk (n - !i) in
        Host.Framing.push d (Bytes.sub stream !i l);
        i := !i + l;
        Host.Framing.iter_available d (fun m ->
            out := Bytes.to_string m :: !out)
      done;
      List.rev !out = msgs)

let test_framing_buffered () =
  let d = Host.Framing.create () in
  Host.Framing.push d (Bytes.of_string "\000\000");
  check_int "partial header buffered" 2 (Host.Framing.buffered d)

(* --- KV protocol ------------------------------------------------------------------ *)

let test_kv_request_roundtrip () =
  let reqs =
    [
      Host.App_kv.Get (Bytes.of_string "key1");
      Host.App_kv.Set (Bytes.of_string "key2", Bytes.of_string "value2");
      Host.App_kv.Set (Bytes.of_string "", Bytes.of_string "");
    ]
  in
  List.iter
    (fun r ->
      match Host.App_kv.decode_request (Host.App_kv.encode_request r) with
      | Some r' -> check_bool "roundtrip" true (r = r')
      | None -> Alcotest.fail "decode failed")
    reqs

let test_kv_response_roundtrip () =
  let resps =
    [
      Host.App_kv.Value (Bytes.of_string "v");
      Host.App_kv.Stored;
      Host.App_kv.Miss;
      Host.App_kv.Bad_request;
    ]
  in
  List.iter
    (fun r ->
      match Host.App_kv.decode_response (Host.App_kv.encode_response r) with
      | Some r' -> check_bool "roundtrip" true (r = r')
      | None -> Alcotest.fail "decode failed")
    resps

let prop_kv_roundtrip =
  QCheck.Test.make ~name:"kv: random request roundtrip" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 0 64))
              (string_of_size (Gen.int_range 0 256)))
    (fun (k, v) ->
      let r = Host.App_kv.Set (Bytes.of_string k, Bytes.of_string v) in
      Host.App_kv.decode_request (Host.App_kv.encode_request r) = Some r)

let test_kv_garbage_rejected () =
  Alcotest.(check (option reject)) "short" None
    (Host.App_kv.decode_request (Bytes.of_string "xx"));
  Alcotest.(check bool) "bad opcode" true
    (Host.App_kv.decode_request
       (Bytes.cat (Bytes.of_string "\x09\x00\x00")
          (Bytes.of_string "\x00\x00\x00\x00"))
    = None)

(* --- RPC stats -------------------------------------------------------------------- *)

let test_rpc_stats_window () =
  let e = Sim.Engine.create () in
  let s = Host.Rpc.Stats.create e in
  Host.Rpc.Stats.record_op s ~bytes:100;  (* before measuring: dropped *)
  Host.Rpc.Stats.start_measuring s;
  Host.Rpc.Stats.record_op s ~bytes:100;
  Host.Rpc.Stats.record_rtt s (Sim.Time.us 5);
  check_int "ops in window only" 1 (Host.Rpc.Stats.ops s);
  Alcotest.(check (float 0.2)) "rtt recorded" 5.0
    (Host.Rpc.Stats.rtt_percentile_us s 50.)

let test_rpc_stats_fairness () =
  let e = Sim.Engine.create () in
  let s = Host.Rpc.Stats.create e in
  Host.Rpc.Stats.start_measuring s;
  for _ = 1 to 10 do
    Host.Rpc.Stats.record_conn_op s ~conn:0 ~bytes:1
  done;
  for _ = 1 to 10 do
    Host.Rpc.Stats.record_conn_op s ~conn:1 ~bytes:1
  done;
  Alcotest.(check (float 1e-6)) "perfectly fair" 1.0
    (Host.Rpc.Stats.jain_index s)

let suite =
  [
    Alcotest.test_case "cpu FIFO timing" `Quick test_cpu_fifo;
    Alcotest.test_case "cpu accounting" `Quick test_cpu_accounting;
    Alcotest.test_case "cpu cores run in parallel" `Quick
      test_cpu_cores_independent;
    Alcotest.test_case "payload buffer wraparound" `Quick
      test_payload_wraparound;
    QCheck_alcotest.to_alcotest prop_payload_stream_semantics;
    Alcotest.test_case "payload oversize rejected" `Quick
      test_payload_oversize_rejected;
    Alcotest.test_case "framing simple" `Quick test_framing_simple;
    QCheck_alcotest.to_alcotest prop_framing_chunking_invariant;
    Alcotest.test_case "framing partial header" `Quick test_framing_buffered;
    Alcotest.test_case "kv request roundtrip" `Quick test_kv_request_roundtrip;
    Alcotest.test_case "kv response roundtrip" `Quick
      test_kv_response_roundtrip;
    QCheck_alcotest.to_alcotest prop_kv_roundtrip;
    Alcotest.test_case "kv rejects garbage" `Quick test_kv_garbage_rejected;
    Alcotest.test_case "rpc stats measurement window" `Quick
      test_rpc_stats_window;
    Alcotest.test_case "rpc stats fairness" `Quick test_rpc_stats_fairness;
  ]

(* Open-loop generator: exercised against a FlexTOE pair elsewhere;
   here we check the Poisson arrival machinery's rate accuracy against
   a fast local server. *)
let test_open_loop_rate () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let a = Flextoe.create_node engine ~fabric ~ip:0x0A000001 () in
  let b = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in
  let stats = Host.Rpc.Stats.create engine in
  Host.Rpc.server ~endpoint:(Flextoe.endpoint a) ~port:7 ~app_cycles:100
    ~handler:Host.Rpc.echo_handler ();
  ignore
    (Host.Rpc.open_loop_client ~endpoint:(Flextoe.endpoint b) ~engine
       ~server_ip:0x0A000001 ~server_port:7 ~conns:8 ~rate_per_sec:100_000.
       ~req_bytes:64 ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms 10) engine;
  Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Time.ms 110) engine;
  (* 100k req/s over 100 ms = ~10k responses. *)
  let ops = Host.Rpc.Stats.ops stats in
  Alcotest.(check bool)
    (Printf.sprintf "open-loop rate ~100k/s (got %d in 100ms)" ops)
    true
    (ops > 9_000 && ops < 11_000)

let open_loop_suite =
  [ Alcotest.test_case "open-loop Poisson rate" `Quick test_open_loop_rate ]
