(* Network-fabric model tests: serialisation timing, forwarding, loss
   injection, shaping with ECN marking and tail drop. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk_frame ?(payload = 100) ?(ecn = Tcp.Segment.Not_ect) ~src ~dst () =
  let seg =
    Tcp.Segment.make
      ~payload:(Bytes.make payload 'x')
      ~src_ip:src ~dst_ip:dst ~src_port:1 ~dst_port:2 ~seq:0 ~ack_seq:0 ()
  in
  Tcp.Segment.make_frame ~ecn ~src_mac:src ~dst_mac:dst seg

let test_wire_time () =
  (* 1500B frame + 24B overhead at 40G: 1524 * 8 / 40 = 304.8 ns. *)
  check_int "40G full frame" 304_800
    (Netsim.Fabric.wire_time ~rate_gbps:40. ~bytes:1500);
  (* Minimum frame size applies. *)
  check_int "runt padded to 64B" (88 * 8 * 25)
    (Netsim.Fabric.wire_time ~rate_gbps:40. ~bytes:10)

let test_delivery_and_latency () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e ~switch_latency:(Sim.Time.us 1) () in
  let got = ref [] in
  let _a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  let _b =
    Netsim.Fabric.add_port fab ~mac:2 ~ip:2
      ~rx:(fun f -> got := (Sim.Engine.now e, f) :: !got)
      ()
  in
  Netsim.Fabric.transmit _a (mk_frame ~src:1 ~dst:2 ());
  Sim.Engine.run e;
  check_int "delivered" 1 (List.length !got);
  let t, _ = List.hd !got in
  (* tx serialisation + switch latency + rx serialisation *)
  let ser = Netsim.Fabric.wire_time ~rate_gbps:40. ~bytes:154 in
  check_int "timing" ((2 * ser) + Sim.Time.us 1) t

let test_unroutable_dropped () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e () in
  let a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  Netsim.Fabric.transmit a (mk_frame ~src:1 ~dst:99 ());
  Sim.Engine.run e;
  check_int "unroutable counted" 1 (Netsim.Fabric.dropped_unroutable fab)

let test_loss_rate () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e ~seed:3L () in
  Netsim.Fabric.set_loss fab 0.1;
  let got = ref 0 in
  let a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  let _b = Netsim.Fabric.add_port fab ~mac:2 ~ip:2 ~rx:(fun _ -> incr got) () in
  let n = 20_000 in
  for _ = 1 to n do
    Netsim.Fabric.transmit a (mk_frame ~src:1 ~dst:2 ())
  done;
  Sim.Engine.run e;
  let rate = 1. -. (float_of_int !got /. float_of_int n) in
  check_bool "≈10% dropped" true (rate > 0.09 && rate < 0.11);
  check_int "accounts match" n (!got + Netsim.Fabric.dropped_loss fab)

let test_shaping_rate () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e () in
  let received = ref 0 in
  let a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  let b =
    Netsim.Fabric.add_port fab ~mac:2 ~ip:2
      ~rx:(fun f -> received := !received + Tcp.Segment.frame_wire_len f)
      ()
  in
  Netsim.Fabric.shape_port fab b ~rate_gbps:1. ~queue_bytes:(1 lsl 20)
    ~ecn_threshold_bytes:(1 lsl 19);
  (* Offer ~4 Mbit over 1 ms into a 1 Gbps shaper: only ~1 Mbit
     (125 KB) can drain per ms. *)
  for _ = 1 to 300 do
    Netsim.Fabric.transmit a (mk_frame ~payload:1400 ~src:1 ~dst:2 ())
  done;
  Sim.Engine.run ~until:(Sim.Time.ms 1) e;
  check_bool "shaped near 1 Gbps" true
    (!received > 100_000 && !received < 140_000)

let test_ecn_marking_and_tail_drop () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e () in
  let ce = ref 0 and total = ref 0 in
  let a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  let b =
    Netsim.Fabric.add_port fab ~mac:2 ~ip:2
      ~rx:(fun f ->
        incr total;
        if f.Tcp.Segment.ecn = Tcp.Segment.Ce then incr ce)
      ()
  in
  Netsim.Fabric.shape_port fab b ~rate_gbps:1. ~queue_bytes:30_000
    ~ecn_threshold_bytes:6_000;
  for _ = 1 to 100 do
    Netsim.Fabric.transmit a
      (mk_frame ~payload:1400 ~ecn:Tcp.Segment.Ect0 ~src:1 ~dst:2 ())
  done;
  Sim.Engine.run e;
  check_bool "deep queue marked CE" true (!ce > 0);
  check_bool "tail drops occurred" true (Netsim.Fabric.dropped_queue fab > 0);
  check_int "conservation" 100 (!total + Netsim.Fabric.dropped_queue fab);
  check_int "marks counted" !ce (Netsim.Fabric.ecn_marked fab)

let test_not_ect_never_marked () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e () in
  let ce = ref 0 in
  let a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  let b =
    Netsim.Fabric.add_port fab ~mac:2 ~ip:2
      ~rx:(fun f -> if f.Tcp.Segment.ecn = Tcp.Segment.Ce then incr ce)
      ()
  in
  Netsim.Fabric.shape_port fab b ~rate_gbps:1. ~queue_bytes:(1 lsl 20)
    ~ecn_threshold_bytes:1_000;
  for _ = 1 to 50 do
    Netsim.Fabric.transmit a (mk_frame ~payload:1400 ~src:1 ~dst:2 ())
  done;
  Sim.Engine.run e;
  check_int "non-ECT untouched" 0 !ce

let test_fifo_per_destination () =
  let e = Sim.Engine.create () in
  let fab = Netsim.Fabric.create e () in
  let order = ref [] in
  let a = Netsim.Fabric.add_port fab ~mac:1 ~ip:1 ~rx:(fun _ -> ()) () in
  let _b =
    Netsim.Fabric.add_port fab ~mac:2 ~ip:2
      ~rx:(fun f ->
        order := f.Tcp.Segment.seg.Tcp.Segment.seq :: !order)
      ()
  in
  for i = 1 to 20 do
    let seg =
      Tcp.Segment.make ~payload:(Bytes.make 10 'x') ~src_ip:1 ~dst_ip:2
        ~src_port:1 ~dst_port:2 ~seq:i ~ack_seq:0 ()
    in
    Netsim.Fabric.transmit a
      (Tcp.Segment.make_frame ~src_mac:1 ~dst_mac:2 seg)
  done;
  Sim.Engine.run e;
  Alcotest.(check (list int))
    "in-order delivery" (List.init 20 (fun i -> i + 1))
    (List.rev !order)

let suite =
  [
    Alcotest.test_case "wire time" `Quick test_wire_time;
    Alcotest.test_case "delivery and latency" `Quick
      test_delivery_and_latency;
    Alcotest.test_case "unroutable frames dropped" `Quick
      test_unroutable_dropped;
    Alcotest.test_case "loss injection rate" `Quick test_loss_rate;
    Alcotest.test_case "egress shaping rate" `Quick test_shaping_rate;
    Alcotest.test_case "WRED: ECN marking + tail drop" `Quick
      test_ecn_marking_and_tail_drop;
    Alcotest.test_case "non-ECT never CE-marked" `Quick
      test_not_ect_never_marked;
    Alcotest.test_case "FIFO per destination" `Quick
      test_fifo_per_destination;
  ]
