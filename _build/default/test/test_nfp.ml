(* NFP-4000 hardware-model tests: caches, FPC timing, DMA, rings. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let params = Nfp.Params.default

(* --- CAM (LRU) --------------------------------------------------------- *)

let test_cam_lru_eviction () =
  let c = Nfp.Cam.create ~entries:3 in
  ignore (Nfp.Cam.insert c 1 "a");
  ignore (Nfp.Cam.insert c 2 "b");
  ignore (Nfp.Cam.insert c 3 "c");
  (* Touch 1 so it becomes MRU; inserting 4 must evict 2. *)
  ignore (Nfp.Cam.find c 1);
  (match Nfp.Cam.insert c 4 "d" with
  | Some (2, "b") -> ()
  | Some (k, _) -> Alcotest.failf "evicted %d, expected 2" k
  | None -> Alcotest.fail "expected an eviction");
  check_bool "1 still present" true (Nfp.Cam.mem c 1);
  check_bool "2 evicted" false (Nfp.Cam.mem c 2)

let test_cam_hit_miss_counters () =
  let c = Nfp.Cam.create ~entries:2 in
  ignore (Nfp.Cam.find c 7);
  ignore (Nfp.Cam.insert c 7 ());
  ignore (Nfp.Cam.find c 7);
  check_int "hits" 1 (Nfp.Cam.hits c);
  check_int "misses" 1 (Nfp.Cam.misses c)

let test_cam_overwrite () =
  let c = Nfp.Cam.create ~entries:2 in
  ignore (Nfp.Cam.insert c 1 "x");
  ignore (Nfp.Cam.insert c 1 "y");
  check_int "no duplicate" 1 (Nfp.Cam.length c);
  Alcotest.(check (option string)) "updated" (Some "y") (Nfp.Cam.find c 1)

let prop_cam_never_exceeds_capacity =
  QCheck.Test.make ~name:"cam: occupancy bounded by capacity" ~count:100
    QCheck.(list (int_bound 50))
    (fun keys ->
      let c = Nfp.Cam.create ~entries:16 in
      List.iter (fun k -> ignore (Nfp.Cam.insert c k k)) keys;
      Nfp.Cam.length c <= 16)

(* --- Direct-mapped cache -------------------------------------------------- *)

let test_direct_cache_conflicts () =
  let c = Nfp.Direct_cache.create ~entries:8 in
  check_bool "cold miss" false (Nfp.Direct_cache.access c 1);
  check_bool "hit" true (Nfp.Direct_cache.access c 1);
  (* 9 maps to the same slot as 1: conflict evicts. *)
  check_bool "conflict miss" false (Nfp.Direct_cache.access c 9);
  check_bool "1 was evicted" false (Nfp.Direct_cache.access c 1)

let test_direct_cache_invalidate () =
  let c = Nfp.Direct_cache.create ~entries:8 in
  ignore (Nfp.Direct_cache.access c 3);
  Nfp.Direct_cache.invalidate c 3;
  check_bool "gone" false (Nfp.Direct_cache.probe c 3)

(* --- LRU (EMEM cache) ------------------------------------------------------- *)

let test_lru_eviction_order () =
  let l = Nfp.Lru.create ~entries:3 in
  ignore (Nfp.Lru.access l 1);
  ignore (Nfp.Lru.access l 2);
  ignore (Nfp.Lru.access l 3);
  ignore (Nfp.Lru.access l 1);  (* 2 is now LRU *)
  ignore (Nfp.Lru.access l 4);  (* evicts 2 *)
  check_bool "2 evicted" false (Nfp.Lru.mem l 2);
  check_bool "1 kept" true (Nfp.Lru.mem l 1);
  check_int "size stable" 3 (Nfp.Lru.length l)

let prop_lru_working_set =
  QCheck.Test.make
    ~name:"lru: working set smaller than capacity always hits after warmup"
    ~count:50
    QCheck.(int_range 1 64)
    (fun ws ->
      let l = Nfp.Lru.create ~entries:64 in
      for i = 0 to ws - 1 do
        ignore (Nfp.Lru.access l i)
      done;
      let all_hit = ref true in
      for _ = 1 to 3 do
        for i = 0 to ws - 1 do
          if not (Nfp.Lru.access l i) then all_hit := false
        done
      done;
      !all_hit)

(* --- FPC timing ---------------------------------------------------------------- *)

let test_fpc_compute_serialises () =
  let e = Sim.Engine.create () in
  let fpc = Nfp.Fpc.create e ~params ~threads:8 ~name:"t" () in
  let done_at = ref [] in
  for _ = 1 to 4 do
    Nfp.Fpc.submit fpc [ Nfp.Fpc.Compute 100 ] (fun () ->
        done_at := Sim.Engine.now e :: !done_at)
  done;
  Sim.Engine.run e;
  (* 4 x 100 cycles at 800 MHz: pure compute serialises on the issue
     unit even with 8 threads. *)
  check_int "last completion" (4 * 100 * 1250) (List.hd !done_at);
  check_int "items" 4 (Nfp.Fpc.items_completed fpc)

let test_fpc_threads_hide_memory_latency () =
  let run threads =
    let e = Sim.Engine.create () in
    let fpc = Nfp.Fpc.create e ~params ~threads ~name:"t" () in
    let finish = ref 0 in
    for _ = 1 to 8 do
      Nfp.Fpc.submit fpc
        [ Nfp.Fpc.Compute 50; Mem Nfp.Memory.Emem; Compute 50 ]
        (fun () -> finish := max !finish (Sim.Engine.now e))
    done;
    Sim.Engine.run e;
    !finish
  in
  let serial = run 1 in
  let threaded = run 8 in
  (* 1 thread: 8 x (100 compute + 500 stall) = 4800 cycles.
     8 threads: stalls overlap -> dominated by compute + one stall. *)
  check_int "serial" (8 * 600 * 1250) serial;
  check_bool "threads hide stalls" true (threaded < serial / 3)

let test_fpc_queue_when_threads_busy () =
  let e = Sim.Engine.create () in
  let fpc = Nfp.Fpc.create e ~params ~threads:2 ~name:"t" () in
  for _ = 1 to 5 do
    Nfp.Fpc.submit fpc [ Nfp.Fpc.Sleep (Sim.Time.us 10) ] ignore
  done;
  Sim.Engine.run ~until:(Sim.Time.us 1) e;
  check_int "2 in flight" 2 (Nfp.Fpc.in_flight fpc);
  check_int "3 queued" 3 (Nfp.Fpc.queue_length fpc);
  Sim.Engine.run e;
  check_int "all done" 5 (Nfp.Fpc.items_completed fpc)

let test_fpc_utilization () =
  let e = Sim.Engine.create () in
  let fpc = Nfp.Fpc.create e ~params ~threads:1 ~name:"t" () in
  Nfp.Fpc.submit fpc [ Nfp.Fpc.Compute 800 ] ignore;
  Sim.Engine.run e;
  (* 800 cycles at 800 MHz = 1 us busy. *)
  Alcotest.(check (float 0.01))
    "50% busy over 2us" 0.5
    (Nfp.Fpc.utilization fpc ~total:(Sim.Time.us 2))

let test_phase_cost () =
  check_int "cost sums"
    ((100 * 1250) + (params.Nfp.Params.emem_cycles * 1250) + 7)
    (Nfp.Fpc.phase_cost params
       [ Compute 100; Mem Nfp.Memory.Emem; Sleep 7 ])

(* --- DMA ---------------------------------------------------------------------- *)

let test_dma_base_latency () =
  let e = Sim.Engine.create () in
  let dma = Nfp.Dma.create e ~params in
  let t = ref 0 in
  Nfp.Dma.issue dma ~queue:0 ~bytes:0 (fun () -> t := Sim.Engine.now e);
  Sim.Engine.run e;
  check_int "zero-byte pays base latency" params.Nfp.Params.pcie_base_latency
    !t

let test_dma_serialisation () =
  let e = Sim.Engine.create () in
  let dma = Nfp.Dma.create e ~params in
  let times = ref [] in
  for _ = 1 to 3 do
    Nfp.Dma.issue dma ~queue:0 ~bytes:65_000 (fun () ->
        times := Sim.Engine.now e :: !times)
  done;
  Sim.Engine.run e;
  let times = List.rev !times in
  (* 65 kB at 52 Gb/s = 10 us serialisation; transfers share the link. *)
  let ser = int_of_float (65_000. *. 8. *. 1000. /. 52.) in
  check_int "first" (ser + params.Nfp.Params.pcie_base_latency)
    (List.nth times 0);
  check_int "second queued behind first"
    ((2 * ser) + params.Nfp.Params.pcie_base_latency)
    (List.nth times 1)

let test_dma_inflight_cap () =
  let e = Sim.Engine.create () in
  let dma = Nfp.Dma.create e ~params in
  for _ = 1 to 200 do
    Nfp.Dma.issue dma ~queue:0 ~bytes:64 ignore
  done;
  check_int "128 in flight" 128 (Nfp.Dma.in_flight dma);
  check_int "72 waiting" 72 (Nfp.Dma.queued dma);
  Sim.Engine.run e;
  check_int "all complete" 200 (Nfp.Dma.transfers_completed dma)

let test_dma_queues_independent_windows () =
  let e = Sim.Engine.create () in
  let dma = Nfp.Dma.create e ~params in
  for _ = 1 to 128 do
    Nfp.Dma.issue dma ~queue:0 ~bytes:64 ignore
  done;
  Nfp.Dma.issue dma ~queue:1 ~bytes:64 ignore;
  check_int "queue 1 admits immediately" 129 (Nfp.Dma.in_flight dma);
  Sim.Engine.run e

(* --- Ring ----------------------------------------------------------------------- *)

let test_ring_capacity_and_drops () =
  let r = Nfp.Ring.create ~capacity:2 ~name:"r" () in
  check_bool "push1" true (Nfp.Ring.push r 1);
  check_bool "push2" true (Nfp.Ring.push r 2);
  check_bool "push3 rejected" false (Nfp.Ring.push r 3);
  check_int "drops" 1 (Nfp.Ring.drops r);
  Alcotest.(check (option int)) "fifo" (Some 1) (Nfp.Ring.pop r);
  check_bool "room again" true (Nfp.Ring.push r 4);
  check_int "max occupancy" 2 (Nfp.Ring.max_occupancy r)

let test_ring_notify () =
  let r = Nfp.Ring.create ~name:"r" () in
  let notified = ref 0 in
  Nfp.Ring.set_notify r (fun () -> incr notified);
  ignore (Nfp.Ring.push r ());
  ignore (Nfp.Ring.push r ());
  check_int "notified per push" 2 !notified

(* --- Lookup engine ----------------------------------------------------------------- *)

let test_lookup_collisions () =
  let l = Nfp.Lookup.create ~equal:String.equal in
  (* Two tuples colliding on the same hash resolve by full compare. *)
  Nfp.Lookup.add l ~hash:42 "flow-a" 1;
  Nfp.Lookup.add l ~hash:42 "flow-b" 2;
  Alcotest.(check (option int)) "a" (Some 1)
    (Nfp.Lookup.lookup l ~hash:42 "flow-a");
  Alcotest.(check (option int)) "b" (Some 2)
    (Nfp.Lookup.lookup l ~hash:42 "flow-b");
  check_int "entries" 2 (Nfp.Lookup.entries l);
  Nfp.Lookup.remove l ~hash:42 "flow-a";
  Alcotest.(check (option int)) "a gone" None
    (Nfp.Lookup.lookup l ~hash:42 "flow-a");
  Alcotest.(check (option int)) "b kept" (Some 2)
    (Nfp.Lookup.lookup l ~hash:42 "flow-b")

let test_lookup_readd () =
  let l = Nfp.Lookup.create ~equal:Int.equal in
  Nfp.Lookup.add l ~hash:1 100 1;
  Nfp.Lookup.add l ~hash:1 100 2;
  check_int "no duplicates" 1 (Nfp.Lookup.entries l);
  Alcotest.(check (option int)) "latest" (Some 2)
    (Nfp.Lookup.lookup l ~hash:1 100)

let suite =
  [
    Alcotest.test_case "cam LRU eviction" `Quick test_cam_lru_eviction;
    Alcotest.test_case "cam counters" `Quick test_cam_hit_miss_counters;
    Alcotest.test_case "cam overwrite" `Quick test_cam_overwrite;
    QCheck_alcotest.to_alcotest prop_cam_never_exceeds_capacity;
    Alcotest.test_case "direct cache conflicts" `Quick
      test_direct_cache_conflicts;
    Alcotest.test_case "direct cache invalidate" `Quick
      test_direct_cache_invalidate;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    QCheck_alcotest.to_alcotest prop_lru_working_set;
    Alcotest.test_case "fpc compute serialises" `Quick
      test_fpc_compute_serialises;
    Alcotest.test_case "fpc threads hide memory latency" `Quick
      test_fpc_threads_hide_memory_latency;
    Alcotest.test_case "fpc queues work" `Quick
      test_fpc_queue_when_threads_busy;
    Alcotest.test_case "fpc utilization" `Quick test_fpc_utilization;
    Alcotest.test_case "phase cost accounting" `Quick test_phase_cost;
    Alcotest.test_case "dma base latency" `Quick test_dma_base_latency;
    Alcotest.test_case "dma link serialisation" `Quick
      test_dma_serialisation;
    Alcotest.test_case "dma in-flight cap" `Quick test_dma_inflight_cap;
    Alcotest.test_case "dma queue windows" `Quick
      test_dma_queues_independent_windows;
    Alcotest.test_case "ring capacity and drops" `Quick
      test_ring_capacity_and_drops;
    Alcotest.test_case "ring notify" `Quick test_ring_notify;
    Alcotest.test_case "lookup collision chains" `Quick
      test_lookup_collisions;
    Alcotest.test_case "lookup re-add" `Quick test_lookup_readd;
  ]
