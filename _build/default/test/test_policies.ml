(* Control-plane policy tests (§3.4): per-connection rate limits,
   connection limits, port partitioning. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ip_a = 0x0A000001
let ip_b = 0x0A000002

let mk_pair () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let a = Flextoe.create_node engine ~fabric ~ip:ip_a () in
  let b = Flextoe.create_node engine ~fabric ~ip:ip_b () in
  (engine, a, b)

let test_rate_limit_enforced () =
  let engine, a, b = mk_pair () in
  (* Sink on a; bulk source on b; cap b's flow to 2 Gbps. *)
  let received = ref 0 in
  (Flextoe.endpoint a).Host.Api.listen ~port:5001 ~on_accept:(fun sock ->
      sock.Host.Api.on_readable <-
        (fun () ->
          received :=
            !received + Bytes.length (sock.Host.Api.recv ~max:max_int)));
  let conn_id = ref (-1) in
  Flextoe.Control_plane.connect (Flextoe.control b) ~remote_ip:ip_a
    ~remote_port:5001 ~ctx:0
    ~on_connected:(fun r ->
      match r with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok handle -> conn_id := handle.Flextoe.Control_plane.ch_conn);
  Sim.Engine.run ~until:(Sim.Time.ms 5) engine;
  check_bool "connected" true (!conn_id >= 0);
  (* Drive the flow via libTOE-level plumbing: write through the raw
     handle is awkward, so open a normal socket alongside. *)
  let engine2, a2, b2 = mk_pair () in
  let received2 = ref 0 in
  (Flextoe.endpoint a2).Host.Api.listen ~port:5001 ~on_accept:(fun sock ->
      sock.Host.Api.on_readable <-
        (fun () ->
          received2 :=
            !received2 + Bytes.length (sock.Host.Api.recv ~max:max_int)));
  (Flextoe.endpoint b2).Host.Api.connect ~remote_ip:ip_a ~remote_port:5001
    ~on_connected:(fun r ->
      match r with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok sock ->
          let chunk = Bytes.make 16384 'r' in
          let push () = while sock.Host.Api.send chunk > 0 do () done in
          sock.Host.Api.on_writable <- push;
          push ());
  Sim.Engine.run ~until:(Sim.Time.ms 5) engine2;
  (* Cap every active flow on b2 at 2 Gbps. *)
  Flextoe.Control_plane.set_rate_limit (Flextoe.control b2) ~conn:0
    ~bps:2_000_000_000;
  let before = !received2 in
  Sim.Engine.run ~until:(Sim.Time.ms 55) engine2;
  let gbps = float_of_int (8 * (!received2 - before)) /. 0.05 /. 1e9 in
  check_bool
    (Printf.sprintf "rate near the 2G cap (got %.2f)" gbps)
    true
    (gbps > 1.2 && gbps < 2.4);
  check_int "limit readable" 2_000_000_000
    (Flextoe.Control_plane.rate_limit (Flextoe.control b2) ~conn:0);
  ignore engine

let test_connection_limit () =
  let engine, a, b = mk_pair () in
  Flextoe.Control_plane.set_connection_limit (Flextoe.control a) (Some 3);
  (Flextoe.endpoint a).Host.Api.listen ~port:7 ~on_accept:(fun _ -> ());
  let ok = ref 0 and failed = ref 0 in
  for _ = 1 to 6 do
    (Flextoe.endpoint b).Host.Api.connect ~remote_ip:ip_a ~remote_port:7
      ~on_connected:(fun r ->
        match r with Ok _ -> incr ok | Error _ -> incr failed)
  done;
  Sim.Engine.run ~until:(Sim.Time.ms 100) engine;
  check_int "only 3 admitted" 3 !ok;
  check_int "the rest timed out" 3 !failed;
  check_int "server tracks 3" 3
    (Flextoe.Datapath.active_conns (Flextoe.datapath a))

let test_local_connect_limit () =
  let engine, a, b = mk_pair () in
  Flextoe.Control_plane.set_connection_limit (Flextoe.control b) (Some 2);
  (Flextoe.endpoint a).Host.Api.listen ~port:7 ~on_accept:(fun _ -> ());
  let ok = ref 0 and failed = ref 0 in
  let rec connect_next n =
    if n > 0 then
      (Flextoe.endpoint b).Host.Api.connect ~remote_ip:ip_a ~remote_port:7
        ~on_connected:(fun r ->
          (match r with Ok _ -> incr ok | Error _ -> incr failed);
          connect_next (n - 1))
  in
  connect_next 4;
  Sim.Engine.run ~until:(Sim.Time.ms 50) engine;
  check_int "two connects succeed" 2 !ok;
  check_int "then the limit rejects immediately" 2 !failed

let test_port_partitioning () =
  let _, a, _ = mk_pair () in
  let cp = Flextoe.control a in
  Flextoe.Control_plane.reserve_ports cp ~lo:8000 ~hi:8099 ~app:1;
  Flextoe.Control_plane.reserve_ports cp ~lo:9000 ~hi:9000 ~app:2;
  Alcotest.(check (option int)) "owner" (Some 1)
    (Flextoe.Control_plane.port_owner cp 8042);
  (* The owning app may listen. *)
  Flextoe.Control_plane.listen cp ~app:1 ~port:8042 ~on_accept:(fun _ -> ())
    ();
  (* Another app may not. *)
  Alcotest.check_raises "foreign app rejected"
    (Invalid_argument
       "Control_plane.listen: port 9000 is reserved for application 2")
    (fun () ->
      Flextoe.Control_plane.listen cp ~app:1 ~port:9000
        ~on_accept:(fun _ -> ())
        ());
  (* Unreserved ports are free for all. *)
  Flextoe.Control_plane.listen cp ~app:7 ~port:12345
    ~on_accept:(fun _ -> ())
    ()

let suite =
  [
    Alcotest.test_case "per-connection rate limit" `Quick
      test_rate_limit_enforced;
    Alcotest.test_case "incoming connection limit" `Quick
      test_connection_limit;
    Alcotest.test_case "local connect limit" `Quick test_local_connect_limit;
    Alcotest.test_case "port partitioning" `Quick test_port_partitioning;
  ]
