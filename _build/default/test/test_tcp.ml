(* TCP substrate tests: sequence arithmetic, checksums, wire format,
   flows, and both reassembly schemes. *)

module S = Tcp.Segment
module Seq32 = Tcp.Seq32

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Seq32 ------------------------------------------------------------ *)

let test_seq_wraparound () =
  let near_max = Seq32.of_int 0xFFFF_FFF0 in
  let wrapped = Seq32.add near_max 0x20 in
  check_int "wraps" 0x10 wrapped;
  check_bool "wrapped is after" true (Seq32.gt wrapped near_max);
  check_int "diff across wrap" 0x20 (Seq32.diff wrapped near_max);
  check_int "negative diff" (-0x20) (Seq32.diff near_max wrapped)

let test_seq_window () =
  check_bool "inside" true (Seq32.in_window 5 ~base:0 ~size:10);
  check_bool "at base" true (Seq32.in_window 0 ~base:0 ~size:10);
  check_bool "past end" false (Seq32.in_window 10 ~base:0 ~size:10);
  check_bool "window across wrap" true
    (Seq32.in_window 3 ~base:0xFFFF_FFF8 ~size:16)

let prop_seq_diff_inverse =
  QCheck.Test.make ~name:"seq32: diff (add a n) a = n for |n| < 2^31"
    ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range (-1000000) 1000000))
    (fun (a, n) ->
      let a = Seq32.of_int (a * 16) in
      Seq32.diff (Seq32.add a n) a = n)

let prop_seq_total_order_local =
  QCheck.Test.make ~name:"seq32: lt is antisymmetric for close values"
    ~count:500
    QCheck.(pair int int)
    (fun (a, b) ->
      let a = Seq32.of_int a and b = Seq32.of_int b in
      if a = b then (not (Seq32.lt a b)) && not (Seq32.gt a b)
      else Seq32.lt a b <> Seq32.lt b a || Seq32.diff a b = -0x8000_0000)

(* --- Checksum ----------------------------------------------------------- *)

let test_internet_checksum_rfc1071 () =
  (* Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check_int "rfc1071 example" 0x220d (Tcp.Checksum.internet b ~off:0 ~len:8)

let test_checksum_verification_roundtrip () =
  let b = Bytes.of_string "\x45\x00\x00\x30\x44\x22\x40\x00\x80\x06\x00\x00\x8c\x7c\x19\xac\xae\x24\x1e\x2b" in
  let csum = Tcp.Checksum.internet b ~off:0 ~len:20 in
  Bytes.set b 10 (Char.chr (csum lsr 8));
  Bytes.set b 11 (Char.chr (csum land 0xFF));
  check_int "verifies to zero" 0 (Tcp.Checksum.internet b ~off:0 ~len:20)

let test_crc32_vector () =
  (* CRC-32 of "123456789" is 0xCBF43926. *)
  let b = Bytes.of_string "123456789" in
  check_int "check vector" 0xCBF43926 (Tcp.Checksum.crc32 b ~off:0 ~len:9)

let test_crc32_ints_matches_bytes () =
  let b = Bytes.of_string "\x0A\x00\x00\x01\x0A\x00\x00\x02" in
  check_int "int form agrees"
    (Tcp.Checksum.crc32 b ~off:0 ~len:8)
    (Tcp.Checksum.crc32_ints [ 0x0A000001; 0x0A000002 ])

(* --- Flow ------------------------------------------------------------------ *)

let test_flow_reverse () =
  let f = Tcp.Flow.v ~local_ip:1 ~local_port:10 ~remote_ip:2 ~remote_port:20 in
  let r = Tcp.Flow.reverse f in
  check_int "rev local" 2 r.Tcp.Flow.local_ip;
  check_bool "double reverse" true (Tcp.Flow.equal f (Tcp.Flow.reverse r))

let test_flow_group_stable () =
  let f = Tcp.Flow.v ~local_ip:0x0A000001 ~local_port:7 ~remote_ip:0x0A000002
      ~remote_port:40000 in
  let g1 = Tcp.Flow.flow_group f ~groups:4 in
  let g2 = Tcp.Flow.flow_group f ~groups:4 in
  check_int "deterministic" g1 g2;
  check_bool "in range" true (g1 >= 0 && g1 < 4)

let test_flow_of_segment_rx () =
  let seg =
    S.make ~src_ip:2 ~dst_ip:1 ~src_port:20 ~dst_port:10 ~seq:0 ~ack_seq:0 ()
  in
  let f = Tcp.Flow.of_segment_rx seg in
  check_int "local is dst" 1 f.Tcp.Flow.local_ip;
  check_int "remote is src" 2 f.Tcp.Flow.remote_ip

(* --- Wire format -------------------------------------------------------------- *)

let frame_gen =
  let open QCheck.Gen in
  let* src_ip = int_bound 0xFFFFFFF in
  let* dst_ip = int_bound 0xFFFFFFF in
  let* src_port = int_range 1 65535 in
  let* dst_port = int_range 1 65535 in
  let* seq = int_bound 0xFFFFFFF in
  let* ack_seq = int_bound 0xFFFFFFF in
  let* window = int_bound 0xFFFF in
  let* syn = bool and* ack = bool and* fin = bool and* psh = bool
  and* ece = bool and* cwr = bool in
  let* with_mss = bool and* with_ts = bool in
  let* vlan = opt (int_bound 0xFFF) in
  let* ecn = oneofl [ S.Not_ect; S.Ect0; S.Ect1; S.Ce ] in
  let* payload_len = int_bound 64 in
  let* payload_byte = char in
  let seg =
    S.make
      ~flags:{ S.no_flags with S.syn; ack; fin; psh; ece; cwr }
      ~window
      ~options:
        {
          S.mss = (if with_mss then Some 1448 else None);
          ts = (if with_ts then Some (123456, 654321) else None);
        }
      ~payload:(Bytes.make payload_len payload_byte)
      ~src_ip ~dst_ip ~src_port ~dst_port ~seq ~ack_seq ()
  in
  let* src_mac = int_bound 0xFFFFFF in
  let* dst_mac = int_bound 0xFFFFFF in
  return (S.make_frame ~vlan ~ecn ~src_mac ~dst_mac seg)

let frame_eq (a : S.frame) (b : S.frame) =
  a.S.src_mac = b.S.src_mac && a.S.dst_mac = b.S.dst_mac
  && a.S.vlan = b.S.vlan && a.S.ecn = b.S.ecn
  &&
  let x = a.S.seg and y = b.S.seg in
  x.S.src_ip = y.S.src_ip && x.S.dst_ip = y.S.dst_ip
  && x.S.src_port = y.S.src_port && x.S.dst_port = y.S.dst_port
  && x.S.seq = y.S.seq && x.S.ack_seq = y.S.ack_seq && x.S.flags = y.S.flags
  && x.S.window = y.S.window && x.S.options = y.S.options
  && Bytes.equal x.S.payload y.S.payload

let prop_wire_roundtrip =
  QCheck.Test.make ~name:"wire: decode (encode frame) = frame" ~count:500
    (QCheck.make frame_gen) (fun frame ->
      match Tcp.Wire.decode (Tcp.Wire.encode frame) with
      | Ok decoded -> frame_eq frame decoded
      | Error _ -> false)

let test_wire_length () =
  let seg =
    S.make ~payload:(Bytes.make 100 'x') ~src_ip:1 ~dst_ip:2 ~src_port:3
      ~dst_port:4 ~seq:0 ~ack_seq:0 ()
  in
  let frame = S.make_frame ~src_mac:1 ~dst_mac:2 seg in
  check_int "wire length" (14 + 20 + 20 + 100)
    (Bytes.length (Tcp.Wire.encode frame));
  check_int "frame_wire_len agrees" (S.frame_wire_len frame)
    (Bytes.length (Tcp.Wire.encode frame))

let test_wire_detects_corruption () =
  let seg =
    S.make ~payload:(Bytes.of_string "hello") ~src_ip:1 ~dst_ip:2 ~src_port:3
      ~dst_port:4 ~seq:0 ~ack_seq:0 ()
  in
  let b = Tcp.Wire.encode (S.make_frame ~src_mac:1 ~dst_mac:2 seg) in
  (* Flip a payload byte: TCP checksum must catch it. *)
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xFF));
  (match Tcp.Wire.decode b with
  | Error Tcp.Wire.Bad_tcp_checksum -> ()
  | Ok _ -> Alcotest.fail "corruption not detected"
  | Error e -> Alcotest.failf "wrong error: %a" Tcp.Wire.pp_error e);
  check_bool "ignorable" true
    (Result.is_ok (Tcp.Wire.decode ~verify_checksums:false b))

let test_wire_truncated () =
  match Tcp.Wire.decode (Bytes.make 10 '\000') with
  | Error (Tcp.Wire.Truncated _) -> ()
  | _ -> Alcotest.fail "expected truncation error"

let test_wire_bad_ethertype () =
  let b = Bytes.make 64 '\000' in
  Bytes.set b 12 '\x86';
  Bytes.set b 13 '\xdd';
  match Tcp.Wire.decode b with
  | Error (Tcp.Wire.Bad_ethertype 0x86dd) -> ()
  | _ -> Alcotest.fail "expected ethertype error"

let test_wire_fixup () =
  let seg =
    S.make ~payload:(Bytes.of_string "data") ~src_ip:1 ~dst_ip:2 ~src_port:3
      ~dst_port:4 ~seq:10 ~ack_seq:20 ()
  in
  let b = Tcp.Wire.encode (S.make_frame ~src_mac:1 ~dst_mac:2 seg) in
  (* Patch the destination port, then fix up checksums. *)
  Bytes.set b (Tcp.Wire.off_tcp_dport + 1) '\x09';
  Tcp.Wire.fixup_tcp_checksum b;
  match Tcp.Wire.decode b with
  | Ok f -> check_int "patched port decodes" 9 f.S.seg.S.dst_port
  | Error e -> Alcotest.failf "fixup broken: %a" Tcp.Wire.pp_error e

(* --- Reassembly (single interval, FlexTOE) ------------------------------------- *)

let mk_reasm () = Tcp.Reassembly.create ~next:1000

let test_reasm_in_order () =
  let r = mk_reasm () in
  (match Tcp.Reassembly.process r ~seq:1000 ~len:100 ~window:10000 with
  | Tcp.Reassembly.Accept { trim = 0; len = 100; advance = 100;
                            filled_hole = false } -> ()
  | _ -> Alcotest.fail "in-order accept expected");
  check_int "next advanced" 1100 (Tcp.Reassembly.next r)

let test_reasm_duplicate () =
  let r = mk_reasm () in
  ignore (Tcp.Reassembly.process r ~seq:1000 ~len:100 ~window:10000);
  match Tcp.Reassembly.process r ~seq:1000 ~len:100 ~window:10000 with
  | Tcp.Reassembly.Duplicate -> ()
  | _ -> Alcotest.fail "duplicate expected"

let test_reasm_head_trim () =
  let r = mk_reasm () in
  ignore (Tcp.Reassembly.process r ~seq:1000 ~len:100 ~window:10000);
  (* Retransmission overlapping old + new data. *)
  match Tcp.Reassembly.process r ~seq:1050 ~len:100 ~window:10000 with
  | Tcp.Reassembly.Accept { trim = 50; len = 50; advance = 50; _ } -> ()
  | _ -> Alcotest.fail "head trim expected"

let test_reasm_ooo_then_fill () =
  let r = mk_reasm () in
  (* Hole at 1000..1100, segment at 1100. *)
  (match Tcp.Reassembly.process r ~seq:1100 ~len:100 ~window:10000 with
  | Tcp.Reassembly.Ooo_accept { trim = 0; off = 100; len = 100 } -> ()
  | _ -> Alcotest.fail "ooo accept expected");
  check_bool "hole tracked" true (Tcp.Reassembly.has_hole r);
  check_int "next unchanged" 1000 (Tcp.Reassembly.next r);
  (* Fill the hole: next jumps past the merged interval. *)
  (match Tcp.Reassembly.process r ~seq:1000 ~len:100 ~window:10000 with
  | Tcp.Reassembly.Accept { len = 100; advance = 200; filled_hole = true; _ }
    -> ()
  | _ -> Alcotest.fail "hole fill expected");
  check_int "next past interval" 1200 (Tcp.Reassembly.next r);
  check_bool "interval reset" false (Tcp.Reassembly.has_hole r)

let test_reasm_ooo_merge () =
  let r = mk_reasm () in
  ignore (Tcp.Reassembly.process r ~seq:1200 ~len:100 ~window:10000);
  (* Extends the interval on the left (abuts). *)
  (match Tcp.Reassembly.process r ~seq:1100 ~len:100 ~window:10000 with
  | Tcp.Reassembly.Ooo_accept { off = 100; len = 100; _ } -> ()
  | _ -> Alcotest.fail "left merge expected");
  Alcotest.(check (option (pair int int)))
    "interval grew" (Some (1100, 200))
    (Tcp.Reassembly.ooo_interval r);
  (* Extends on the right. *)
  ignore (Tcp.Reassembly.process r ~seq:1300 ~len:50 ~window:10000);
  Alcotest.(check (option (pair int int)))
    "interval grew right" (Some (1100, 250))
    (Tcp.Reassembly.ooo_interval r)

let test_reasm_merge_fails () =
  let r = mk_reasm () in
  ignore (Tcp.Reassembly.process r ~seq:1100 ~len:50 ~window:10000);
  (* Disjoint second interval: FlexTOE drops it. *)
  match Tcp.Reassembly.process r ~seq:1300 ~len:50 ~window:10000 with
  | Tcp.Reassembly.Drop_merge_failed -> ()
  | _ -> Alcotest.fail "merge failure expected"

let test_reasm_window_trim () =
  let r = mk_reasm () in
  (match Tcp.Reassembly.process r ~seq:1000 ~len:100 ~window:60 with
  | Tcp.Reassembly.Accept { len = 60; advance = 60; _ } -> ()
  | _ -> Alcotest.fail "tail trim expected");
  match Tcp.Reassembly.process r ~seq:2000 ~len:10 ~window:60 with
  | Tcp.Reassembly.Drop_out_of_window -> ()
  | _ -> Alcotest.fail "window drop expected"

let test_reasm_fin_advance () =
  let r = mk_reasm () in
  ignore (Tcp.Reassembly.process r ~seq:1000 ~len:10 ~window:100);
  Tcp.Reassembly.force_advance r 1;
  check_int "fin consumed" 1011 (Tcp.Reassembly.next r)

(* Random segment arrivals of a contiguous stream: whatever is
   accepted must land at the right offset, and after enough
   retransmission rounds the stream completes. *)
let prop_reasm_single_converges =
  QCheck.Test.make ~name:"reassembly: random order converges via go-back-N"
    ~count:50
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 1)) in
      let total = 20 in
      let r = Tcp.Reassembly.create ~next:0 in
      let received = Array.make total false in
      let rounds = ref 0 in
      while Tcp.Reassembly.next r < total * 100 && !rounds < 50 do
        incr rounds;
        (* Go-back-N sender: transmit from the ack point, randomly
           dropping and reordering. *)
        let base = Tcp.Reassembly.next r / 100 in
        let segs = ref [] in
        for i = base to total - 1 do
          if not (Sim.Rng.bool rng 0.2) then segs := i :: !segs
        done;
        let arr = Array.of_list !segs in
        Sim.Rng.shuffle rng arr;
        Array.iter
          (fun i ->
            match
              Tcp.Reassembly.process r ~seq:(i * 100) ~len:100
                ~window:(total * 100)
            with
            | Tcp.Reassembly.Accept { advance; _ } ->
                let start = (Tcp.Reassembly.next r - advance) / 100 in
                for k = start to (Tcp.Reassembly.next r / 100) - 1 do
                  received.(k) <- true
                done
            | Tcp.Reassembly.Ooo_accept _ -> received.(i) <- true
            | _ -> ())
          arr
      done;
      Tcp.Reassembly.next r = total * 100
      && Array.for_all (fun x -> x) received)

(* --- Reassembly (multi interval, Linux-style) ------------------------------------ *)

let prop_reasm_multi_any_order =
  QCheck.Test.make
    ~name:"multi-interval reassembly: any arrival order reconstructs"
    ~count:100
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Sim.Rng.create (Int64.of_int (seed + 17)) in
      let total = 30 in
      let order = Array.init total (fun i -> i) in
      Sim.Rng.shuffle rng order;
      let r = Tcp.Reassembly_multi.create ~next:0 in
      Array.iter
        (fun i ->
          ignore
            (Tcp.Reassembly_multi.process r ~seq:(i * 50) ~len:50
               ~window:(total * 50)))
        order;
      Tcp.Reassembly_multi.next r = total * 50
      && Tcp.Reassembly_multi.intervals r = [])

let test_reasm_multi_holes () =
  let r = Tcp.Reassembly_multi.create ~next:0 in
  ignore (Tcp.Reassembly_multi.process r ~seq:100 ~len:50 ~window:10000);
  ignore (Tcp.Reassembly_multi.process r ~seq:300 ~len:50 ~window:10000);
  check_int "two intervals" 2
    (List.length (Tcp.Reassembly_multi.intervals r));
  (* Fill first hole: drains only through the first interval. *)
  (match Tcp.Reassembly_multi.process r ~seq:0 ~len:100 ~window:10000 with
  | Tcp.Reassembly_multi.Accept { advance = 150; _ } -> ()
  | _ -> Alcotest.fail "drain through first interval");
  check_int "one interval left" 1
    (List.length (Tcp.Reassembly_multi.intervals r));
  check_int "next" 150 (Tcp.Reassembly_multi.next r)

let test_reasm_multi_overlap_merge () =
  let r = Tcp.Reassembly_multi.create ~next:0 in
  ignore (Tcp.Reassembly_multi.process r ~seq:100 ~len:100 ~window:10000);
  ignore (Tcp.Reassembly_multi.process r ~seq:150 ~len:100 ~window:10000);
  Alcotest.(check (list (pair int int)))
    "merged" [ (100, 150) ]
    (Tcp.Reassembly_multi.intervals r)

let suite =
  [
    Alcotest.test_case "seq32 wraparound" `Quick test_seq_wraparound;
    Alcotest.test_case "seq32 windows" `Quick test_seq_window;
    QCheck_alcotest.to_alcotest prop_seq_diff_inverse;
    QCheck_alcotest.to_alcotest prop_seq_total_order_local;
    Alcotest.test_case "internet checksum vector" `Quick
      test_internet_checksum_rfc1071;
    Alcotest.test_case "checksum verify roundtrip" `Quick
      test_checksum_verification_roundtrip;
    Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
    Alcotest.test_case "crc32 int form" `Quick test_crc32_ints_matches_bytes;
    Alcotest.test_case "flow reverse" `Quick test_flow_reverse;
    Alcotest.test_case "flow group stability" `Quick test_flow_group_stable;
    Alcotest.test_case "flow of rx segment" `Quick test_flow_of_segment_rx;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip;
    Alcotest.test_case "wire lengths" `Quick test_wire_length;
    Alcotest.test_case "wire corruption detection" `Quick
      test_wire_detects_corruption;
    Alcotest.test_case "wire truncation" `Quick test_wire_truncated;
    Alcotest.test_case "wire ethertype" `Quick test_wire_bad_ethertype;
    Alcotest.test_case "wire checksum fixup" `Quick test_wire_fixup;
    Alcotest.test_case "reassembly in order" `Quick test_reasm_in_order;
    Alcotest.test_case "reassembly duplicate" `Quick test_reasm_duplicate;
    Alcotest.test_case "reassembly head trim" `Quick test_reasm_head_trim;
    Alcotest.test_case "reassembly ooo + hole fill" `Quick
      test_reasm_ooo_then_fill;
    Alcotest.test_case "reassembly interval merge" `Quick
      test_reasm_ooo_merge;
    Alcotest.test_case "reassembly merge failure drops" `Quick
      test_reasm_merge_fails;
    Alcotest.test_case "reassembly window trim" `Quick
      test_reasm_window_trim;
    Alcotest.test_case "reassembly FIN advance" `Quick
      test_reasm_fin_advance;
    QCheck_alcotest.to_alcotest prop_reasm_single_converges;
    QCheck_alcotest.to_alcotest prop_reasm_multi_any_order;
    Alcotest.test_case "multi-interval holes" `Quick test_reasm_multi_holes;
    Alcotest.test_case "multi-interval overlap merge" `Quick
      test_reasm_multi_overlap_merge;
  ]

(* Golden wire vector: a fully specified frame must encode to exactly
   these bytes (checked against an independent hand computation of
   the IPv4/TCP checksums). Guards against silent codec drift. *)
let test_wire_golden_vector () =
  let seg =
    S.make
      ~flags:{ S.no_flags with S.ack = true; psh = true }
      ~window:0x1234
      ~options:{ S.mss = None; ts = Some (0x01020304, 0x0A0B0C0D) }
      ~payload:(Bytes.of_string "AB")
      ~src_ip:0xC0A80001 ~dst_ip:0xC0A80002 ~src_port:0x0050
      ~dst_port:0xABCD ~seq:0x11223344 ~ack_seq:0x55667788 ()
  in
  let frame =
    S.make_frame ~src_mac:0x0200AABBCCDD ~dst_mac:0x020011223344 seg
  in
  let hex b =
    String.concat ""
      (List.init (Bytes.length b) (fun i ->
           Printf.sprintf "%02x" (Char.code (Bytes.get b i))))
  in
  let expected =
    (* Ethernet II *)
    "020011223344" ^ "0200aabbccdd" ^ "0800"
    (* IPv4: ver/ihl tos len id flags/frag ttl proto csum src dst *)
    ^ "4500" ^ "0036" ^ "0000" ^ "4000" ^ "4006" ^ "b96e"
    ^ "c0a80001" ^ "c0a80002"
    (* TCP: sport dport seq ack off/flags win csum urg *)
    ^ "0050" ^ "abcd" ^ "11223344" ^ "55667788" ^ "8018" ^ "1234"
    ^ "ca58" ^ "0000"
    (* options: NOP NOP TS *)
    ^ "0101" ^ "080a" ^ "01020304" ^ "0a0b0c0d"
    (* payload *)
    ^ "4142"
  in
  Alcotest.(check string) "golden bytes" expected
    (hex (Tcp.Wire.encode frame))

let golden_suite =
  [ Alcotest.test_case "wire golden vector" `Quick test_wire_golden_vector ]
