open Flextoe
open Bpf_insn

(* r2 = (r2 & 1) - ktime(); verifier should NOT prove r2 constant.
   Then compare r2 against min_int+1: if the verifier statically
   decides the branch, the fall edge (with an unguarded packet read)
   is never checked. *)
let prog =
  assemble [
    I (Alu64 (Mov, 6, Reg 1));          (* save ctx *)
    I (Call helper_ktime);              (* r0 = unknown *)
    I (Alu64 (Mov, 2, Reg 0));
    I (Alu64 (And, 2, Imm 1));          (* r2 in [0,1] *)
    I (Call helper_ktime);              (* r0 = unknown *)
    I (Alu64 (Sub, 2, Reg 0));          (* r2 = [0,1] - unknown *)
    I (Ld_imm64 (4, Int64.add Int64.min_int 1L));
    Jl (Jeq, 2, Reg 4, "taken");
    (* fall: unguarded packet read — should be rejected *)
    I (Ldx (W64, 3, 6, 0));             (* r3 = data *)
    I (Ldx (W8, 5, 3, 0));              (* read pkt[0] with bound=0: must reject *)
    L "taken";
    I (Alu64 (Mov, 0, Imm 2));
    I Exit;
  ]

let () =
  match Verifier.verify prog with
  | Ok a -> Printf.printf "ACCEPTED (UNSOUND!) states=%d\n" a.Verifier.states_explored
  | Error v -> Printf.printf "rejected: %s\n" (Verifier.violation_to_string v)
