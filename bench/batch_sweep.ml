(* PR5 batching sweep and CI regression gate.

   Fixed-seed memcached-style workload on FlexTOE at uniform batching
   degrees 1/2/4/8. Two verdicts:

   - batch=1 throughput must stay within 5% of the checked-in
     baseline (bench/BENCH_baseline_pr5.json) — the batching machinery
     may not tax the unbatched pipeline;
   - batch=8 must beat batch=1 — coalescing has to actually pay.

   [run] prints the sweep table (harness mode); [gate] additionally
   writes BENCH_pr5.json and exits non-zero on a regression (CI
   mode, via bench/bench_gate.exe). *)

open Common

let degrees = [ 1; 2; 4; 8 ]

let measure_degree b =
  let w = mk_world ~seed:42L () in
  let config =
    {
      Flextoe.Config.default with
      Flextoe.Config.batch = Flextoe.Config.batch_of b;
    }
  in
  let server = mk_node w FlexTOE ~app_cores:2 ~config ip_server in
  let stats = Host.Rpc.Stats.create w.engine in
  ignore
    (Host.App_kv.server ~endpoint:server.ep ~port:11211 ~app_cycles:890 ());
  for i = 0 to 1 do
    let client = mk_node w FlexTOE ~app_cores:4 ~config (ip_client i) in
    Host.App_kv.client ~endpoint:client.ep ~engine:w.engine
      ~server_ip:ip_server ~server_port:11211 ~conns:16 ~pipeline:8
      ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.1 ~stats ()
  done;
  measure w ~warmup:(Sim.Time.ms 8) ~window:(Sim.Time.ms 15) [ stats ];
  Host.Rpc.Stats.mops stats

let sweep () = List.map (fun b -> (b, measure_degree b)) degrees

let print_table results =
  columns (List.map (fun (b, _) -> Printf.sprintf "b=%d" b) results);
  row_of_floats "FlexTOE mOps" (List.map snd results)

let run () =
  header "Batch sweep: throughput vs uniform batching degree";
  let results = sweep () in
  print_table results;
  let at b = List.assoc b results in
  log_result ~experiment:"batch"
    "batch=8 %.2f mOps = %.2fx batch=1 (doorbell+GRO+notify coalescing)"
    (at 8)
    (at 8 /. at 1);
  note "degree 1 is bit-identical to the unbatched seed pipeline;";
  note "gains come from amortized doorbells, GRO merges, ARX coalescing."

(* --- JSON in/out ----------------------------------------------------- *)

let write_json path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"experiment\": \"batch_sweep_pr5\",\n";
      output_string oc "  \"workload\": \"kv 32x32, 2 clients, seed 42\",\n";
      output_string oc "  \"mops\": {\n";
      List.iteri
        (fun i (b, v) ->
          Printf.fprintf oc "    \"%d\": %.4f%s\n" b v
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  }\n}\n")

let read_baseline path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      match Sim.Json.of_string s with
      | Error e -> Error e
      | Ok j -> (
          match
            Option.bind (Sim.Json.member "mops" j) (fun m ->
                Option.bind (Sim.Json.member "1" m) Sim.Json.to_float_opt)
          with
          | Some v -> Ok v
          | None -> Error "missing mops.1"))

let gate ~baseline ~out () =
  let results = sweep () in
  print_table results;
  write_json out results;
  Printf.printf "wrote %s\n" out;
  let b1 = List.assoc 1 results and b8 = List.assoc 8 results in
  let ok = ref true in
  (match read_baseline baseline with
  | Error e ->
      Printf.printf "FAIL baseline             %s: %s\n" baseline e;
      ok := false
  | Ok base1 ->
      if b1 < 0.95 *. base1 then begin
        Printf.printf
          "FAIL batch=1              %.2f mOps < 95%% of baseline %.2f\n" b1
          base1;
        ok := false
      end
      else
        Printf.printf "OK   batch=1              %.2f mOps (baseline %.2f)\n"
          b1 base1);
  if b8 <= b1 then begin
    Printf.printf "FAIL batch=8              %.2f mOps <= batch=1 %.2f\n" b8
      b1;
    ok := false
  end
  else
    Printf.printf "OK   batch=8              %.2f mOps = %.2fx batch=1\n" b8
      (b8 /. b1);
  !ok
