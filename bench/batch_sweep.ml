(* PR5 batching sweep and CI regression gate.

   Fixed-seed memcached-style workload on FlexTOE at uniform batching
   degrees 1/2/4/8. Two verdicts:

   - batch=1 throughput must stay within 5% of the checked-in
     baseline (bench/BENCH_baseline_pr5.json) — the batching machinery
     may not tax the unbatched pipeline;
   - batch=8 must beat batch=1 — coalescing has to actually pay.

   [run] prints the sweep table (harness mode); [gate] additionally
   writes BENCH_pr5.json and exits non-zero on a regression (CI
   mode, via bench/bench_gate.exe). *)

open Common

let degrees = [ 1; 2; 4; 8 ]

(* Build one batch-degree world on [w] (its own fabric, server and two
   clients) and return the stats the caller will open a measurement
   window on. Shared between the sequential sweep and the parallel
   speedup gate, which runs all four degree worlds as cluster LPs. *)
let build_degree w b =
  let config =
    {
      Flextoe.Config.default with
      Flextoe.Config.batch = Flextoe.Config.batch_of b;
    }
  in
  let server = mk_node w FlexTOE ~app_cores:2 ~config ip_server in
  let stats = Host.Rpc.Stats.create w.engine in
  ignore
    (Host.App_kv.server ~endpoint:server.ep ~port:11211 ~app_cycles:890 ());
  for i = 0 to 1 do
    let client = mk_node w FlexTOE ~app_cores:4 ~config (ip_client i) in
    Host.App_kv.client ~endpoint:client.ep ~engine:w.engine
      ~server_ip:ip_server ~server_port:11211 ~conns:16 ~pipeline:8
      ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.1 ~stats ()
  done;
  stats

let measure_degree b =
  let w = mk_world ~seed:42L () in
  let stats = build_degree w b in
  measure w ~warmup:(Sim.Time.ms 8) ~window:(Sim.Time.ms 15) [ stats ];
  Host.Rpc.Stats.mops stats

let sweep () = List.map (fun b -> (b, measure_degree b)) degrees

let print_table results =
  columns (List.map (fun (b, _) -> Printf.sprintf "b=%d" b) results);
  row_of_floats "FlexTOE mOps" (List.map snd results)

let run () =
  header "Batch sweep: throughput vs uniform batching degree";
  let results = sweep () in
  print_table results;
  let at b = List.assoc b results in
  log_result ~experiment:"batch"
    "batch=8 %.2f mOps = %.2fx batch=1 (doorbell+GRO+notify coalescing)"
    (at 8)
    (at 8 /. at 1);
  note "degree 1 is bit-identical to the unbatched seed pipeline;";
  note "gains come from amortized doorbells, GRO merges, ARX coalescing."

(* --- PR9: conservative-parallel speedup -------------------------------- *)

(* The four batch-degree worlds are independent (disjoint fabrics), so
   they make an embarrassingly-parallel cluster: one LP per degree, no
   channels. Running them under the conservative engine at domains=1
   vs domains=8 gives a wall-clock speedup that is pure engine
   overhead + scheduling — and because each LP is seeded and isolated,
   the measured mOps must be BIT-IDENTICAL at every domain count.
   Both are gated: determinism always, speedup against a threshold
   scaled to the cores actually available. *)

module Cl = Sim.Engine.Cluster

let par_warmup = Sim.Time.ms 8
let par_horizon = Sim.Time.ms 23 (* warmup + the 15 ms window *)

let par_sweep ~domains =
  let cl = Cl.create ~seed:9L ~domains () in
  let stats =
    List.map
      (fun b ->
        let lp = Cl.add_lp ~name:(Printf.sprintf "batch%d" b) ~seed:42L cl in
        let w = { engine = lp; fabric = Netsim.Fabric.create lp () } in
        let st = build_degree w b in
        (* [measure]'s between-runs start_measuring is a solo-engine
           idiom; under the cluster the window opens as an event. *)
        Sim.Engine.schedule_at lp par_warmup (fun () ->
            Host.Rpc.Stats.start_measuring st);
        (b, st))
      degrees
  in
  let t0 = Unix.gettimeofday () in
  Cl.run ~until:par_horizon cl;
  let wall = Unix.gettimeofday () -. t0 in
  ( List.map (fun (b, st) -> (b, Host.Rpc.Stats.mops st)) stats,
    wall,
    Cl.workers_used cl )

let write_par_json path ~cores ~workers ~wall1 ~walln ~speedup ~threshold
    ~deterministic results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"experiment\": \"par_speedup_pr9\",\n";
      output_string oc
        "  \"workload\": \"4 kv batch-degree worlds as cluster LPs, seed \
         42\",\n";
      Printf.fprintf oc "  \"cores\": %d,\n" cores;
      Printf.fprintf oc "  \"workers\": %d,\n" workers;
      Printf.fprintf oc
        "  \"wall_s\": { \"domains_1\": %.3f, \"domains_8\": %.3f },\n" wall1
        walln;
      Printf.fprintf oc "  \"speedup\": %.3f,\n" speedup;
      Printf.fprintf oc "  \"threshold\": %.3f,\n" threshold;
      Printf.fprintf oc "  \"deterministic\": %b,\n" deterministic;
      output_string oc "  \"mops\": {\n";
      List.iteri
        (fun i (b, v) ->
          Printf.fprintf oc "    \"%d\": %.4f%s\n" b v
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  }\n}\n")

let par_results () =
  let r1, wall1, _ = par_sweep ~domains:1 in
  let rn, walln, workers = par_sweep ~domains:8 in
  let deterministic =
    List.for_all2 (fun (b, a) (b', c) -> b = b' && a = c) r1 rn
  in
  let cores = Domain.recommended_domain_count () in
  let n_lps = List.length degrees in
  let speedup = wall1 /. Float.max walln 1e-9 in
  (* Ideal speedup is bounded by whichever is scarcest: requested
     domains, physical cores, or the 4 LPs there are to spread. Gate
     at 75% of that bound, capped at the 3x the issue asks for (on a
     >=4-core box the bound is 4, so the gate is exactly 3x). *)
  let w = min (min 8 cores) n_lps in
  let threshold = Float.min 3.0 (0.75 *. float_of_int w) in
  (r1, wall1, walln, workers, cores, deterministic, speedup, threshold)

let print_par ~cores ~workers ~wall1 ~walln ~speedup ~threshold results =
  columns (List.map (fun (b, _) -> Printf.sprintf "b=%d" b) results);
  row_of_floats "mOps (par)" (List.map snd results);
  Printf.printf
    "  domains=1 %.2fs, domains=8 %.2fs -> %.2fx (threshold %.2fx; %d \
     worker(s), %d core(s))\n"
    wall1 walln speedup threshold workers cores

let run_par () =
  header "FlexPar speedup: 4 batch-degree worlds as conservative LPs";
  let results, wall1, walln, workers, cores, deterministic, speedup, threshold
      =
    par_results ()
  in
  print_par ~cores ~workers ~wall1 ~walln ~speedup ~threshold results;
  log_result ~experiment:"par"
    "domains=8 runs the 4-LP cluster %.2fx faster than domains=1 \
     (bit-identical mOps: %b)"
    speedup deterministic;
  note "each LP is an isolated seeded world: results are bit-identical";
  note "across domain counts; only wall-clock changes."

let par_gate ~baseline:_ ~out () =
  header "FlexPar speedup gate";
  let results, wall1, walln, workers, cores, deterministic, speedup, threshold
      =
    par_results ()
  in
  print_par ~cores ~workers ~wall1 ~walln ~speedup ~threshold results;
  write_par_json out ~cores ~workers ~wall1 ~walln ~speedup ~threshold
    ~deterministic results;
  Printf.printf "wrote %s\n" out;
  let ok = ref true in
  if deterministic then
    Printf.printf "OK   determinism          mOps bit-identical at domains=1 and 8\n"
  else begin
    Printf.printf "FAIL determinism          mOps differ across domain counts\n";
    ok := false
  end;
  if speedup >= threshold then
    Printf.printf "OK   speedup              %.2fx >= %.2fx\n" speedup threshold
  else begin
    Printf.printf "FAIL speedup              %.2fx < %.2fx\n" speedup threshold;
    ok := false
  end;
  !ok

(* --- JSON in/out ----------------------------------------------------- *)

let write_json path results =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"experiment\": \"batch_sweep_pr5\",\n";
      output_string oc "  \"workload\": \"kv 32x32, 2 clients, seed 42\",\n";
      output_string oc "  \"mops\": {\n";
      List.iteri
        (fun i (b, v) ->
          Printf.fprintf oc "    \"%d\": %.4f%s\n" b v
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  }\n}\n")

let read_baseline path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      match Sim.Json.of_string s with
      | Error e -> Error e
      | Ok j -> (
          match
            Option.bind (Sim.Json.member "mops" j) (fun m ->
                Option.bind (Sim.Json.member "1" m) Sim.Json.to_float_opt)
          with
          | Some v -> Ok v
          | None -> Error "missing mops.1"))

let gate ~baseline ~out () =
  let results = sweep () in
  print_table results;
  write_json out results;
  Printf.printf "wrote %s\n" out;
  let b1 = List.assoc 1 results and b8 = List.assoc 8 results in
  let ok = ref true in
  (match read_baseline baseline with
  | Error e ->
      Printf.printf "FAIL baseline             %s: %s\n" baseline e;
      ok := false
  | Ok base1 ->
      if b1 < 0.95 *. base1 then begin
        Printf.printf
          "FAIL batch=1              %.2f mOps < 95%% of baseline %.2f\n" b1
          base1;
        ok := false
      end
      else
        Printf.printf "OK   batch=1              %.2f mOps (baseline %.2f)\n"
          b1 base1);
  if b8 <= b1 then begin
    Printf.printf "FAIL batch=8              %.2f mOps <= batch=1 %.2f\n" b8
      b1;
    ok := false
  end
  else
    Printf.printf "OK   batch=8              %.2f mOps = %.2fx batch=1\n" b8
      (b8 /. b1);
  !ok
