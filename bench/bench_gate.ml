(* CI entry point for the bench regression gates.

   Usage: bench_gate [GATE] [BASELINE.json] [OUT.json]
   GATE is "batch" (PR5 batching sweep), "churn" (PR6 churn sweep),
   "par" (PR9 parallel speedup; needs no baseline), "scale" (PR10
   FlexScale connection sweep) or "all" (default when no arguments
   are given). Baseline/output default to
   bench/BENCH_baseline_pr{5,6,10}.json and
   bench/BENCH_pr{5,6,9,10}.json per gate. Exit 0 when every
   requested gate holds, 1 otherwise.

   Back-compat: a first argument ending in ".json" is treated as the
   old [BASELINE OUT] form of the batch gate. *)

let batch_defaults = ("bench/BENCH_baseline_pr5.json", "bench/BENCH_pr5.json")
let churn_defaults = ("bench/BENCH_baseline_pr6.json", "bench/BENCH_pr6.json")
let par_defaults = ("", "bench/BENCH_pr9.json")

let scale_defaults =
  ("bench/BENCH_baseline_pr10.json", "bench/BENCH_pr10.json")

let run_gate name ~baseline ~out =
  let gate =
    match name with
    | "batch" -> Batch_sweep.gate
    | "churn" -> Churn.gate
    | "par" -> Batch_sweep.par_gate
    | "scale" -> Scale_sweep.gate
    | _ ->
        Printf.eprintf
          "bench_gate: unknown gate %S (batch|churn|par|scale|all)\n" name;
        exit 2
  in
  gate ~baseline ~out ()

let defaults_for name =
  match name with
  | "churn" -> churn_defaults
  | "par" -> par_defaults
  | "scale" -> scale_defaults
  | _ -> batch_defaults

let run_with_defaults name =
  let baseline, out = defaults_for name in
  run_gate name ~baseline ~out

let () =
  let argv = Array.to_list Sys.argv in
  let ok =
    match argv with
    | _ :: first :: rest when Filename.check_suffix first ".json" ->
        (* Legacy form: bench_gate BASELINE [OUT] runs the batch gate. *)
        let out =
          match rest with o :: _ -> o | [] -> snd batch_defaults
        in
        run_gate "batch" ~baseline:first ~out
    | [ _ ] | [ _; "all" ] ->
        let a = run_with_defaults "batch" in
        let b = run_with_defaults "churn" in
        let c = run_with_defaults "par" in
        let d = run_with_defaults "scale" in
        a && b && c && d
    | [ _; name ] -> run_with_defaults name
    | [ _; name; baseline ] ->
        run_gate name ~baseline ~out:(snd (defaults_for name))
    | _ :: name :: baseline :: out :: _ -> run_gate name ~baseline ~out
    | [] -> false
  in
  if ok then exit 0 else exit 1
