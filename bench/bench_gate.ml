(* CI entry point for the PR5 batching regression gate.

   Usage: bench_gate [BASELINE.json] [OUT.json]
   Defaults: bench/BENCH_baseline_pr5.json, BENCH_pr5.json.
   Exit 0 when batch=1 holds the baseline (within 5%) and batch=8
   beats batch=1; exit 1 otherwise. *)

let () =
  let baseline =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "bench/BENCH_baseline_pr5.json"
  in
  let out =
    if Array.length Sys.argv > 2 then Sys.argv.(2) else "BENCH_pr5.json"
  in
  if Batch_sweep.gate ~baseline ~out () then exit 0 else exit 1
