(* Chaos harness: the paper's KV workload under named fault schedules.

   Runs FlexTOE end to end (server + closed-loop memtier-style
   clients) while the fabric injects a named fault schedule — bursty
   loss, bounded reordering + duplication, bit-flip corruption, a link
   blackout, latency jitter — or while the PCIe DMA engine is made
   flaky. Reports the surviving transaction rate next to the recovery
   machinery's counters: control-plane RTOs and aborts, checksum drops
   at RX pre-processing, DMA retries, and the injector's own tallies.

   The hard integrity assertions (payload bytes, stuck connections,
   determinism) live in test/test_faults.ml; this harness is the
   quantitative companion. *)

open Common

let kv_port = 11211

let schedules =
  [ "none"; "bursty-loss"; "reorder-heavy"; "corruption"; "blackout";
    "jitter"; "dma-flaky" ]

type outcome = {
  o_mops : float;
  o_rtos : int;
  o_aborts : int;
  o_csum_drops : int;
  o_dma_faults : int;
  o_faults : (string * int) list;  (* injector counters, non-zero only *)
}

let flex_node n = Option.get n.flex

(* Gate mode: when the run is sanitized (FLEXSAN=1 in the
   environment), any FlexSan report under any fault schedule fails
   the whole harness — chaos doubles as the sanitizer's
   worst-weather test. *)
let san_gate ~schedule nodes =
  let dirty =
    List.filter_map
      (fun n ->
        match Flextoe.Datapath.san (Flextoe.datapath (flex_node n)) with
        | Some s when Flextoe.San.report_count s > 0 -> Some s
        | _ -> None)
      nodes
  in
  if dirty <> [] then begin
    Printf.printf "FLEXSAN: schedule %s produced sanitizer reports:\n"
      schedule;
    List.iter
      (fun s ->
        List.iter
          (fun r ->
            Printf.printf "  %s\n" (Flextoe.San.report_to_string r))
          (Flextoe.San.reports s))
      dirty;
    exit 1
  end

let run_schedule ?(seed = 7L) name =
  let w = mk_world ~seed () in
  let server = mk_node w FlexTOE ~app_cores:2 ip_server in
  let client = mk_node w FlexTOE ~app_cores:2 (ip_client 0) in
  (* One chain per receive direction, so e.g. Gilbert-Elliott state
     and reorder windows are per-path, as on a real link. *)
  let chains =
    if name = "dma-flaky" then begin
      List.iter
        (fun n ->
          Nfp.Dma.set_fault
            (Flextoe.Datapath.dma_engine (Flextoe.datapath (flex_node n)))
            ~rate:0.01 ())
        [ server; client ];
      []
    end
    else
      match Netsim.Faults.named name with
      | [] -> []
      | specs ->
          List.mapi
            (fun i node ->
              let f =
                Netsim.Faults.create w.engine
                  ~seed:(Int64.of_int (101 + i))
                  specs
              in
              Netsim.Faults.attach_rx f node.port;
              f)
            [ server; client ]
  in
  let stats = Host.Rpc.Stats.create w.engine in
  ignore
    (Host.App_kv.server ~endpoint:server.ep ~port:kv_port ~app_cycles:300 ());
  Host.App_kv.client ~endpoint:client.ep ~engine:w.engine
    ~server_ip:ip_server ~server_port:kv_port ~conns:8 ~pipeline:4
    ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.5 ~stats ();
  (* 5 ms warmup + 30 ms window brackets the blackout schedule's 8-13 ms
     outage, so its row shows the stall and the recovery. *)
  measure w ~warmup:(Sim.Time.ms 5) ~window:(Sim.Time.ms 30) [ stats ];
  let nodes = [ server; client ] in
  san_gate ~schedule:name nodes;
  let sum f = List.fold_left (fun acc n -> acc + f (flex_node n)) 0 nodes in
  let merge_counters =
    List.fold_left
      (fun acc f ->
        List.fold_left
          (fun acc (k, v) ->
            let prev = Option.value ~default:0 (List.assoc_opt k acc) in
            (k, prev + v) :: List.remove_assoc k acc)
          acc (Netsim.Faults.counters f))
      [] chains
  in
  {
    o_mops = Host.Rpc.Stats.mops stats;
    o_rtos = sum (fun n -> Flextoe.Control_plane.retransmit_timeouts
                     (Flextoe.control n));
    o_aborts = sum (fun n -> Flextoe.Control_plane.retransmit_aborts
                      (Flextoe.control n));
    o_csum_drops =
      sum (fun n ->
          (Flextoe.Datapath.stats (Flextoe.datapath n))
            .Flextoe.Datapath.rx_dropped_csum);
    o_dma_faults =
      sum (fun n ->
          Nfp.Dma.faults_injected
            (Flextoe.Datapath.dma_engine (Flextoe.datapath n)));
    o_faults =
      List.filter (fun (_, v) -> v > 0) merge_counters;
  }

let run () =
  header "Chaos: KV workload under fault schedules";
  Printf.printf "%-14s %10s %6s %6s %10s %10s  %s\n" "schedule" "mOps"
    "RTOs" "abort" "csum-drop" "dma-fault" "injected";
  let results =
    List.map
      (fun name ->
        let o = run_schedule name in
        Printf.printf "%-14s %10.3f %6d %6d %10d %10d  %s\n%!" name o.o_mops
          o.o_rtos o.o_aborts o.o_csum_drops o.o_dma_faults
          (String.concat " "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) o.o_faults));
        (name, o))
      schedules
  in
  let baseline = (List.assoc "none" results).o_mops in
  let pct name =
    100. *. (List.assoc name results).o_mops /. baseline
  in
  log_result ~experiment:"chaos"
    "KV rate vs fault-free: bursty-loss %.0f%%, reorder %.0f%%, corruption \
     %.0f%%, blackout %.0f%%, dma-flaky %.0f%%; all schedules recovered \
     (0 aborts expected except none observed: %d total)"
    (pct "bursty-loss") (pct "reorder-heavy") (pct "corruption")
    (pct "blackout") (pct "dma-flaky")
    (List.fold_left (fun a (_, o) -> a + o.o_aborts) 0 results);
  note "corruption drops must be detected at RX preproc (csum-drop > 0)";
  note "blackout spans 8-13 ms; recovery resumes within one backed-off RTO"
