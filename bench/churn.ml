(* PR6 churn sweep and CI regression gate (Fig. 14 flavor).

   A guarded FlexTOE server carries an established KV workload while
   an open-loop attacker SYN-floods the service port at 0/1/3/10x a
   50k pps base rate. Reported per multiplier: established-flow
   goodput, retention vs the flood-free run, and the FlexGuard
   counters that explain where the flood went (stateless cookies,
   shed SYNs) plus the bound that must never break: zero
   established-flow segments shed.

   [run] prints the sweep table (harness mode); [gate] additionally
   writes BENCH_pr6.json and exits non-zero on a regression (CI mode,
   via bench/bench_gate.exe):

   - flood-free goodput within 5% of the checked-in baseline
     (bench/BENCH_baseline_pr6.json);
   - retention at 10x at or above the baseline's retention_floor;
   - established_shed identically 0 at every multiplier;
   - per-stage peak queue depths bounded (cp peak <= g_cp_queue). *)

open Common

let kv_port = 11211
let base_rate_pps = 50_000
let multipliers = [ 0; 1; 3; 10 ]

type outcome = {
  c_mult : int;
  c_mops : float;
  c_syns : int;  (* flood SYNs actually injected *)
  c_cookies : int;
  c_shed : int;  (* shed_backlog + shed_admission + shed_queue *)
  c_est_shed : int;  (* must be 0 *)
  c_cp_peak : int;
  c_cp_bound : int;  (* g_cp_queue *)
  c_sched_peak : int;
}

let guarded_config () =
  { Flextoe.Config.default with
    Flextoe.Config.guard = Flextoe.Config.guard_default }

let flex_node n = Option.get n.flex

(* Sanitized runs (FLEXSAN=1) double as the churn-weather race check:
   any FlexSan report at any flood multiplier fails the harness. *)
let san_gate ~mult nodes =
  let dirty =
    List.filter_map
      (fun n ->
        match Flextoe.Datapath.san (Flextoe.datapath (flex_node n)) with
        | Some s when Flextoe.San.report_count s > 0 -> Some s
        | _ -> None)
      nodes
  in
  if dirty <> [] then begin
    Printf.printf "FLEXSAN: flood x%d produced sanitizer reports:\n" mult;
    List.iter
      (fun s ->
        List.iter
          (fun r -> Printf.printf "  %s\n" (Flextoe.San.report_to_string r))
          (Flextoe.San.reports s))
      dirty;
    exit 1
  end

let measure_mult mult =
  let w = mk_world ~seed:42L () in
  let config = guarded_config () in
  let server = mk_node w FlexTOE ~app_cores:2 ~config ip_server in
  let client = mk_node w FlexTOE ~app_cores:2 ~config (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  ignore
    (Host.App_kv.server ~endpoint:server.ep ~port:kv_port ~app_cycles:300 ());
  Host.App_kv.client ~endpoint:client.ep ~engine:w.engine
    ~server_ip:ip_server ~server_port:kv_port ~conns:8 ~pipeline:4
    ~key_bytes:32 ~value_bytes:32 ~set_ratio:0.5 ~stats ();
  let flood =
    if mult = 0 then None
    else
      Some
        (Netsim.Faults.Churn.syn_flood w.engine w.fabric ~src_ip:0x0A0000EE
           ~dst_ip:ip_server ~dst_port:kv_port
           ~rate_pps:(base_rate_pps * mult) ())
  in
  measure w ~warmup:(Sim.Time.ms 5) ~window:(Sim.Time.ms 20) [ stats ];
  Option.iter Netsim.Faults.Churn.stop flood;
  san_gate ~mult [ server; client ];
  let sdp = Flextoe.datapath (flex_node server) in
  let g =
    match Flextoe.Datapath.guard sdp with
    | Some g -> g
    | None -> failwith "churn sweep requires the guard armed"
  in
  let c name = Flextoe.Guard.counter g name in
  {
    c_mult = mult;
    c_mops = Host.Rpc.Stats.mops stats;
    c_syns = (match flood with Some f -> Netsim.Faults.Churn.sent f | None -> 0);
    c_cookies = c "cookie_sent";
    c_shed = c "shed_backlog" + c "shed_admission" + c "shed_queue"
             + c "shed_paused";
    c_est_shed = Flextoe.Guard.established_shed g;
    c_cp_peak = Flextoe.Guard.peak_depth g ~stage:"cp";
    c_cp_bound = (Flextoe.Guard.config g).Flextoe.Config.g_cp_queue;
    c_sched_peak = Flextoe.Datapath.sched_peak_ready sdp;
  }

let sweep () = List.map measure_mult multipliers

let print_table results =
  let base =
    match results with o :: _ -> o.c_mops | [] -> nan
  in
  Printf.printf "%-8s %10s %10s %8s %8s %8s %9s %8s %10s\n" "flood" "mOps"
    "retention" "syns" "cookies" "shed" "est-shed" "cp-peak" "sched-peak";
  List.iter
    (fun o ->
      Printf.printf "%-8s %10.3f %9.1f%% %8d %8d %8d %9d %5d/%-2d %10d\n"
        (Printf.sprintf "x%d" o.c_mult)
        o.c_mops
        (100. *. o.c_mops /. base)
        o.c_syns o.c_cookies o.c_shed o.c_est_shed o.c_cp_peak o.c_cp_bound
        o.c_sched_peak)
    results;
  base

let run () =
  header "Churn: established goodput under SYN flood (FlexGuard armed)";
  let results = sweep () in
  let base = print_table results in
  let at m = List.find (fun o -> o.c_mult = m) results in
  log_result ~experiment:"churn"
    "established goodput under 10x SYN flood: %.0f%% of flood-free (floor \
     80%%); %d flood SYNs answered with %d cookies, %d shed, 0 established \
     segments shed"
    (100. *. (at 10).c_mops /. base)
    (at 10).c_syns (at 10).c_cookies (at 10).c_shed;
  note "the attacker is open-loop: cookies cost no backlog state;";
  note "shed policy drops newest SYNs first, never established-flow segments."

(* --- JSON in/out ----------------------------------------------------- *)

let write_json path results =
  let base = (List.hd results).c_mops in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"experiment\": \"churn_sweep_pr6\",\n";
      output_string oc
        "  \"workload\": \"kv 32x32, 8 conns, syn flood 0/1/3/10x 50kpps, \
         seed 42\",\n";
      output_string oc "  \"retention_floor\": 0.80,\n";
      output_string oc "  \"mops\": {\n";
      List.iteri
        (fun i o ->
          Printf.fprintf oc "    \"%d\": %.4f%s\n" o.c_mult o.c_mops
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  },\n  \"retention\": {\n";
      List.iteri
        (fun i o ->
          Printf.fprintf oc "    \"%d\": %.4f%s\n" o.c_mult (o.c_mops /. base)
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  },\n  \"established_shed\": ";
      Printf.fprintf oc "%d\n}\n"
        (List.fold_left (fun a o -> a + o.c_est_shed) 0 results))

let read_baseline path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      match Sim.Json.of_string s with
      | Error e -> Error e
      | Ok j -> (
          let f path' =
            List.fold_left
              (fun acc k -> Option.bind acc (Sim.Json.member k))
              (Some j) path'
            |> Fun.flip Option.bind Sim.Json.to_float_opt
          in
          match (f [ "mops"; "0" ], f [ "retention_floor" ]) with
          | Some m0, Some floor -> Ok (m0, floor)
          | _ -> Error "missing mops.0 or retention_floor"))

let gate ~baseline ~out () =
  let results = sweep () in
  let base = print_table results in
  write_json out results;
  Printf.printf "wrote %s\n" out;
  let at m = List.find (fun o -> o.c_mult = m) results in
  let retention10 = (at 10).c_mops /. base in
  let ok = ref true in
  (match read_baseline baseline with
  | Error e ->
      Printf.printf "FAIL baseline             %s: %s\n" baseline e;
      ok := false
  | Ok (base0, floor) ->
      if base < 0.95 *. base0 then begin
        Printf.printf
          "FAIL flood-free           %.2f mOps < 95%% of baseline %.2f\n" base
          base0;
        ok := false
      end
      else
        Printf.printf "OK   flood-free           %.2f mOps (baseline %.2f)\n"
          base base0;
      if retention10 < floor then begin
        Printf.printf "FAIL retention@10x        %.0f%% < floor %.0f%%\n"
          (100. *. retention10) (100. *. floor);
        ok := false
      end
      else
        Printf.printf "OK   retention@10x        %.0f%% (floor %.0f%%)\n"
          (100. *. retention10) (100. *. floor));
  let est_shed = List.fold_left (fun a o -> a + o.c_est_shed) 0 results in
  if est_shed > 0 then begin
    Printf.printf "FAIL established-shed     %d segments (must be 0)\n"
      est_shed;
    ok := false
  end
  else Printf.printf "OK   established-shed     0 segments at every multiplier\n";
  let unbounded =
    List.filter (fun o -> o.c_cp_bound > 0 && o.c_cp_peak > o.c_cp_bound)
      results
  in
  if unbounded <> [] then begin
    List.iter
      (fun o ->
        Printf.printf "FAIL cp-queue bound       x%d peak %d > bound %d\n"
          o.c_mult o.c_cp_peak o.c_cp_bound)
      unbounded;
    ok := false
  end
  else Printf.printf "OK   cp-queue bound       peaks within g_cp_queue\n";
  !ok
