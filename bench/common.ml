(* Shared infrastructure for the experiment harness: node builders for
   all four stacks, measurement helpers, and table formatting. *)

type world = { engine : Sim.Engine.t; fabric : Netsim.Fabric.t }

let mk_world ?(loss = 0.) ?(seed = 42L) () =
  let engine = Sim.Engine.create ~seed () in
  let fabric = Netsim.Fabric.create engine () in
  Netsim.Fabric.set_loss fabric loss;
  { engine; fabric }

type stack = FlexTOE | Linux | TAS | Chelsio

let all_stacks = [ Linux; Chelsio; TAS; FlexTOE ]

let stack_name = function
  | FlexTOE -> "FlexTOE"
  | Linux -> "Linux"
  | TAS -> "TAS"
  | Chelsio -> "Chelsio"

let profile_of = function
  | Linux -> Baselines.Profile.linux
  | TAS -> Baselines.Profile.tas
  | Chelsio -> Baselines.Profile.chelsio
  | FlexTOE -> invalid_arg "profile_of FlexTOE"

(* A node of any stack, with uniform accessors. *)
type node = {
  ep : Host.Api.endpoint;
  cpu : Host.Host_cpu.t;
  port : Netsim.Fabric.port;
  flex : Flextoe.t option;
}

let mk_node w stack ?(app_cores = 1) ?config ip =
  match stack with
  | FlexTOE ->
      let n = Flextoe.create_node w.engine ~fabric:w.fabric ?config
          ~app_cores ~ip () in
      {
        ep = Flextoe.endpoint n;
        cpu = Flextoe.cpu n;
        port = Flextoe.Datapath.fabric_port (Flextoe.datapath n);
        flex = Some n;
      }
  | (Linux | TAS | Chelsio) as s ->
      let b =
        Baselines.Stack.create w.engine ~fabric:w.fabric
          ~profile:(profile_of s) ~ip ~app_cores ()
      in
      {
        ep = Baselines.Stack.endpoint b;
        cpu = Baselines.Stack.cpu b;
        port = Baselines.Stack.fabric_port b;
        flex = None;
      }

let ip_server = 0x0A000001
let ip_client n = 0x0A000010 + n

(* Run warmup, open the measurement window on [stats], run the window. *)
let measure w ~warmup ~window stats =
  Sim.Engine.run ~until:(Sim.Engine.now w.engine + warmup) w.engine;
  List.iter Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Engine.now w.engine + window) w.engine

(* --- Output formatting -------------------------------------------------- *)

let header title =
  Printf.printf "\n=== %s ===\n" title

let subheader s = Printf.printf "--- %s ---\n" s

let row_of_floats name vals =
  Printf.printf "%-14s" name;
  List.iter
    (fun v ->
      (* An empty measurement window reads as absent, not as 0.00
         (Rpc.Stats percentiles return NaN when nothing was
         recorded). *)
      if Float.is_nan v then Printf.printf " %10s" "n/a"
      else Printf.printf " %10.2f" v)
    vals;
  print_newline ()

let row_of_strings name vals =
  Printf.printf "%-14s" name;
  List.iter (fun v -> Printf.printf " %10s" v) vals;
  print_newline ()

let columns names =
  Printf.printf "%-14s" "";
  List.iter (fun n -> Printf.printf " %10s" n) names;
  print_newline ()

let note fmt = Printf.printf ("  note: " ^^ fmt ^^ "\n")

(* --- Workloads ------------------------------------------------------------ *)

(* Echo/RPC server of the given response behaviour. *)
let start_server node ~port ~app_cycles ~handler =
  Host.Rpc.server ~endpoint:node.ep ~port ~app_cycles ~handler ()

(* A bulk byte-sink server that counts per-connection goodput. *)
let start_sink node ~port ~(stats : Host.Rpc.Stats.t) =
  let next_id = ref 0 in
  node.ep.Host.Api.listen ~port ~on_accept:(fun sock ->
      let id = !next_id in
      incr next_id;
      sock.Host.Api.on_readable <-
        (fun () ->
          let b = sock.Host.Api.recv ~max:max_int in
          if Bytes.length b > 0 then begin
            Host.Rpc.Stats.record_conn_op stats ~conn:id
              ~bytes:(Bytes.length b)
          end))

(* Per-connection bulk senders: each connection pushes an endless
   stream. *)
let start_bulk_sources node ~engine ~server_ip ~server_port ~conns =
  for _ = 1 to conns do
    node.ep.Host.Api.connect ~remote_ip:server_ip ~remote_port:server_port
      ~on_connected:(fun result ->
        match result with
        | Error _ -> ()
        | Ok sock ->
            let chunk = Bytes.make 16384 'B' in
            let push () =
              (* Keep the socket buffer full. *)
              let rec go n =
                if n < 64 && sock.Host.Api.send chunk > 0 then go (n + 1)
              in
              go 0
            in
            sock.Host.Api.on_writable <- push;
            push ());
    ignore engine
  done

(* Paper-vs-measured bookkeeping for EXPERIMENTS.md. *)
let result_log : (string * string) list ref = ref []
let log_result ~experiment fmt =
  Printf.ksprintf
    (fun s -> result_log := (experiment, s) :: !result_log)
    fmt
