(* Figure 14: connection scalability.

   An increasing number of client connections to a multi-threaded echo
   server, each with a single 64 B RPC in flight — worst case for
   per-connection state caching (a cache miss at every stage for every
   segment). Paper: FlexTOE 3.3x Linux up to 2K connections (the CLS
   cache capacity, 512 x 4 islands), declines ~24% by 8K and plateaus
   (EMEM cache); TAS does ~1.5x FlexTOE using the large host LLC;
   Linux declines sharply; Chelsio is dominated by epoll overhead.

   The connection axis is configurable: pass [?conn_counts], or set
   FIG14_CONNS to a comma-separated list (e.g. "64,1024,16384") — the
   paper's axis stops at the testbed's 16K ceiling, but nothing here
   does. The FlexScale ≥1M-connection sweep lives in
   bench/scale_sweep.ml (open-loop; this figure's closed-loop clients
   model the testbed). The echo world itself is the shared
   {!Golden_worlds.echo_workload} wiring, not a private copy. *)

open Common

let default_conn_counts = [ 64; 256; 1024; 2048; 4096; 8192 ]

let conn_counts_of_env () =
  match Sys.getenv_opt "FIG14_CONNS" with
  | None -> None
  | Some s -> (
      match
        String.split_on_char ',' s
        |> List.filter (fun x -> String.trim x <> "")
        |> List.map (fun x -> int_of_string (String.trim x))
      with
      | [] -> None
      | counts -> Some counts
      | exception _ ->
          Printf.eprintf "fig14: ignoring unparsable FIG14_CONNS=%S\n" s;
          None)

let measure_point stack conns =
  let w = mk_world () in
  (* Congestion control is irrelevant (one tiny RPC in flight) and a
     per-flow control loop over 16K flows only slows the simulation. *)
  let config =
    { Flextoe.Config.default with Flextoe.Config.cc = Flextoe.Config.Cc_none;
      cc_interval = Sim.Time.ms 10 }
  in
  let server = mk_node w stack ~app_cores:8 ~config ip_server in
  let stats = Host.Rpc.Stats.create w.engine in
  (* Five client machines, as in the testbed. *)
  let client_eps =
    List.init 5 (fun i ->
        (mk_node w FlexTOE ~app_cores:8 ~config (ip_client i)).ep)
  in
  Golden_worlds.echo_workload ~conns ~pipeline:1 ~req_bytes:64
    ~req_cycles:200 ~app_cycles:250 ~engine:w.engine ~server_ip:ip_server
    ~server_ep:server.ep ~client_eps ~stats ();
  (* Connection setup takes longer at high counts. *)
  let setup = Sim.Time.ms (8 + (conns / 400)) in
  measure w ~warmup:setup ~window:(Sim.Time.ms 15) [ stats ];
  Host.Rpc.Stats.mops stats

let run ?conn_counts () =
  let conn_counts =
    match conn_counts with
    | Some c -> c
    | None ->
        Option.value (conn_counts_of_env ()) ~default:default_conn_counts
  in
  header "Figure 14: connection scalability (mOps vs #connections)";
  columns (List.map string_of_int conn_counts);
  let results =
    List.map
      (fun stack ->
        let vals = List.map (measure_point stack) conn_counts in
        row_of_floats (stack_name stack) vals;
        (stack, vals))
      all_stacks
  in
  (* The paper-ratio summary reads the 2K and 8K points; on a custom
     axis without them there is nothing to compare against. *)
  let idx n =
    List.assoc_opt n (List.mapi (fun i c -> (c, i)) conn_counts)
  in
  (match (idx 2048, idx 8192) with
  | Some i2k, Some i8k ->
      let v stack i = List.nth (List.assoc stack results) i in
      log_result ~experiment:"fig14"
        "2K conns: FlexTOE %.2f = %.1fx Linux (paper 3.3x), TAS/FlexTOE \
         %.2fx (paper 1.5x); FlexTOE 8K/2K = %.2f (paper ~0.76, the 24%% \
         decline)"
        (v FlexTOE i2k)
        (v FlexTOE i2k /. v Linux i2k)
        (v TAS i2k /. v FlexTOE i2k)
        (v FlexTOE i8k /. v FlexTOE i2k)
  | _ -> ());
  note "paper: FlexTOE caches 2K conns in CLS; beyond that the EMEM";
  note "cache strains, -24%% at 8K then plateau; TAS ~1.5x (host LLC)."
