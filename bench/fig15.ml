(* Figure 15: throughput under induced packet loss.

   (a) 100 connections running a 64 B echo with 8 pipelined requests,
   sweeping uniform random loss. Paper: FlexTOE at 2% loss is >= 2x
   TAS and an order of magnitude above Linux/Chelsio (NIC-side ACK
   processing triggers retransmissions sooner; predictable latency).

   (b) 8 connections streaming large RPCs unidirectionally. Paper:
   Chelsio collapses even at 1e-6 loss (RTO-only recovery); Linux
   rides out more loss (SACK-style recovery) than the go-back-N
   stacks; FlexTOE still beats TAS. *)

open Common

let loss_rates_a = [ 0.0; 0.0001; 0.001; 0.005; 0.01; 0.02 ]
let loss_rates_b = [ 0.0; 0.000001; 0.00001; 0.0001; 0.001; 0.01 ]

let measure_echo stack loss =
  let w = mk_world ~loss ~seed:5L () in
  let server = mk_node w stack ~app_cores:4 ip_server in
  let client = mk_node w stack ~app_cores:4 (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:100 ~handler:Host.Rpc.echo_handler;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
       ~server_ip:ip_server ~server_port:7 ~conns:100 ~pipeline:8
       ~req_bytes:64 ~stats ~req_cycles:150 ());
  measure w ~warmup:(Sim.Time.ms 10) ~window:(Sim.Time.ms 40) [ stats ];
  Host.Rpc.Stats.mops stats

(* Gilbert-Elliott parameters hitting a target average loss with
   ~20-frame mean bursts: avg = loss_bad * p_gb / (p_gb + p_bg). *)
let ge_spec ~avg =
  let p_bad_good = 0.05 and loss_bad = 0.5 in
  let p_good_bad = p_bad_good *. avg /. (loss_bad -. avg) in
  Netsim.Faults.Gilbert_loss { p_good_bad; p_bad_good; loss_good = 0.; loss_bad }

let measure_echo_bursty stack avg =
  let w = mk_world ~seed:5L () in
  let server = mk_node w stack ~app_cores:4 ip_server in
  let client = mk_node w stack ~app_cores:4 (ip_client 0) in
  if avg > 0. then
    List.iteri
      (fun i node ->
        let f =
          Netsim.Faults.create w.engine
            ~seed:(Int64.of_int (151 + i))
            [ ge_spec ~avg ]
        in
        Netsim.Faults.attach_rx f node.port)
      [ server; client ];
  let stats = Host.Rpc.Stats.create w.engine in
  start_server server ~port:7 ~app_cycles:100 ~handler:Host.Rpc.echo_handler;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client.ep ~engine:w.engine
       ~server_ip:ip_server ~server_port:7 ~conns:100 ~pipeline:8
       ~req_bytes:64 ~stats ~req_cycles:150 ());
  measure w ~warmup:(Sim.Time.ms 10) ~window:(Sim.Time.ms 40) [ stats ];
  Host.Rpc.Stats.mops stats

let measure_stream stack loss =
  let w = mk_world ~loss ~seed:9L () in
  let server = mk_node w stack ~app_cores:4 ip_server in
  let client = mk_node w stack ~app_cores:4 (ip_client 0) in
  let stats = Host.Rpc.Stats.create w.engine in
  start_sink server ~port:7 ~stats;
  start_bulk_sources client ~engine:w.engine ~server_ip:ip_server
    ~server_port:7 ~conns:8;
  measure w ~warmup:(Sim.Time.ms 10) ~window:(Sim.Time.ms 40) [ stats ];
  Host.Rpc.Stats.gbps stats

let run () =
  header "Figure 15: throughput under packet loss";
  subheader "(a) 100-conn 64B echo, 8 pipelined (mOps vs loss rate)";
  columns (List.map (Printf.sprintf "%g") loss_rates_a);
  let a =
    List.map
      (fun stack ->
        let vals = List.map (measure_echo stack) loss_rates_a in
        row_of_floats (stack_name stack) vals;
        (stack, vals))
      all_stacks
  in
  subheader "(b) 8-conn unidirectional streaming (Gbps vs loss rate)";
  columns (List.map (Printf.sprintf "%g") loss_rates_b);
  let b =
    List.map
      (fun stack ->
        let vals = List.map (measure_stream stack) loss_rates_b in
        row_of_floats (stack_name stack) vals;
        (stack, vals))
      all_stacks
  in
  subheader
    "(c) FlexTOE echo under bursty (Gilbert-Elliott) loss, same averages";
  columns (List.map (Printf.sprintf "%g") loss_rates_a);
  let c = List.map (measure_echo_bursty FlexTOE) loss_rates_a in
  row_of_floats "FlexTOE/GE" c;
  let last l s = List.nth (List.assoc s l) (List.length (List.assoc s l) - 1) in
  log_result ~experiment:"fig15"
    "(a) at 2%% loss FlexTOE %.3f mOps = %.1fx TAS, %.1fx Linux, %.1fx \
     Chelsio (paper: >=2x TAS, ~10x others); (b) at 1e-4 Chelsio %.2f vs \
     FlexTOE %.2f Gbps (paper: Chelsio collapses first)"
    (last a FlexTOE)
    (last a FlexTOE /. last a TAS)
    (last a FlexTOE /. last a Linux)
    (last a FlexTOE /. last a Chelsio)
    (List.nth (List.assoc Chelsio b) 3)
    (List.nth (List.assoc FlexTOE b) 3);
  log_result ~experiment:"fig15c"
    "bursty (GE) vs uniform loss at 2%% average: FlexTOE %.3f vs %.3f mOps \
     (bursts concentrate drops into fewer go-back-N recovery episodes)"
    (List.nth c (List.length c - 1))
    (last a FlexTOE);
  note "paper: (a) FlexTOE 2x TAS and ~10x Linux/Chelsio at 2%% loss;";
  note "(b) Chelsio collapses at trivial loss, Linux most robust (SACK).";
  note "(c) is this repo's extension: same averages, bursty arrivals."
