(* The experiment harness: regenerates every table and figure of the
   paper's evaluation (plus substrate microbenchmarks).

   Usage:
     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig9 table3 ...   # a subset
   Experiment ids: table1..table4, fig9..fig16, micro. *)

let experiments =
  [
    ("table1", Table1.run);
    ("fig9", Fig9.run);
    ("fig10", Fig10.run);
    ("fig11", Fig11.run);
    ("fig12", Fig12.run);
    ("fig13", Fig13.run);
    ("fig14", (fun () -> Fig14.run ()));
    ("fig15", Fig15.run);
    ("fig16", Fig16.run);
    ("table2", Table2.run);
    ("table3", Table3.run);
    ("table4", Table4.run);
    ("batch", Batch_sweep.run);
    ("par", Batch_sweep.run_par);
    ("prove", Prove_bench.run);
    ("ablations", Ablations.run);
    ("chaos", Chaos.run);
    ("churn", Churn.run);
    ("scale", Scale_sweep.run);
    ("micro", Microbench.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  print_endline "FlexTOE reproduction: experiment harness";
  print_endline
    "(shape reproduction on a simulated NFP-4000; see EXPERIMENTS.md)";
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          let t = Unix.gettimeofday () in
          run ();
          Printf.printf "  [%s done in %.1fs]\n%!" name
            (Unix.gettimeofday () -. t)
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments)))
    requested;
  Printf.printf "\nTotal: %.1fs\n" (Unix.gettimeofday () -. t0);
  if !Common.result_log <> [] then begin
    print_endline "\n=== Summary (paper vs measured) ===";
    List.iter
      (fun (exp, line) -> Printf.printf "%-8s %s\n" exp line)
      (List.rev !Common.result_log)
  end
