(* PR7 FlexProve overhead check.

   The layer-0 graph passes run once per [Datapath.create]; steady
   state must not pay for them. Two measurements:

   - the cost of one full [Prove.check_graph] over the extracted
     builtin graph, amortized over many iterations — the one-time
     price every node construction pays;
   - kv 32x32 steady-state throughput at batch 1 and 8 (the PR5 gate
     workload, create-time checks now in the path), against the
     checked-in PR5 baseline.

   Writes BENCH_pr7.json next to the other sweep artifacts. *)

open Common

let check_micros ~iters =
  let config = Flextoe.Config.default in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    match
      Flextoe.Prove.check_graph (Flextoe.Datapath.builtin_graph ~config ())
    with
    | Ok _ -> ()
    | Error _ -> failwith "builtin graph rejected"
  done;
  1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int iters

let out_path () =
  if Sys.file_exists "bench" && Sys.is_directory "bench" then
    "bench/BENCH_pr7.json"
  else "BENCH_pr7.json"

let write_json path ~micros ~results ~base1 =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"experiment\": \"prove_overhead_pr7\",\n";
      output_string oc
        "  \"workload\": \"kv 32x32, 2 clients, seed 42, create-time \
         FlexProve checks in the path\",\n";
      Printf.fprintf oc "  \"check_micros\": %.2f,\n" micros;
      output_string oc "  \"mops\": {\n";
      List.iteri
        (fun i (b, v) ->
          Printf.fprintf oc "    \"%d\": %.4f%s\n" b v
            (if i = List.length results - 1 then "" else ","))
        results;
      output_string oc "  },\n";
      Printf.fprintf oc "  \"baseline_mops_1\": %.4f,\n" base1;
      Printf.fprintf oc "  \"ratio_vs_baseline\": %.4f\n"
        (List.assoc 1 results /. base1);
      output_string oc "}\n")

let run () =
  header "FlexProve overhead: create-time graph checks vs steady state";
  let micros = check_micros ~iters:1000 in
  Printf.printf "  check_graph: %.1f us per full run (3 passes, once per \
                 node create)\n"
    micros;
  let results =
    List.map (fun b -> (b, Batch_sweep.measure_degree b)) [ 1; 8 ]
  in
  columns (List.map (fun (b, _) -> Printf.sprintf "b=%d" b) results);
  row_of_floats "FlexTOE mOps" (List.map snd results);
  let base1 =
    match Batch_sweep.read_baseline "bench/BENCH_baseline_pr5.json" with
    | Ok v -> v
    | Error _ -> (
        match Batch_sweep.read_baseline "BENCH_baseline_pr5.json" with
        | Ok v -> v
        | Error e ->
            Printf.printf "  note: no PR5 baseline (%s); ratio vs self\n" e;
            List.assoc 1 results)
  in
  let out = out_path () in
  write_json out ~micros ~results ~base1;
  Printf.printf "  wrote %s\n" out;
  let r = List.assoc 1 results /. base1 in
  log_result ~experiment:"prove"
    "create-time checks %.1f us once per node; steady state %.2f mOps = \
     %.1f%% of pre-FlexProve baseline"
    micros (List.assoc 1 results) (100. *. r);
  if r < 0.95 then begin
    Printf.printf
      "FAIL steady-state         %.2f mOps < 95%% of baseline %.2f\n"
      (List.assoc 1 results) base1;
    exit 1
  end
  else
    Printf.printf "OK   steady-state         %.2f mOps (baseline %.2f)\n"
      (List.assoc 1 results) base1
