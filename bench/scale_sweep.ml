(* PR10 FlexScale sweep and CI regression gate.

   Fig-14-style open-loop connection-scalability sweep on the sharded
   datapath: each point installs F connections (bulk state install,
   bypassing the handshake — the subject here is steady-state per-flow
   state behavior, not connection setup) and offers a fixed open-loop
   load of small data segments round-robin across all F flows — the
   worst case for per-connection state caching, one cache walk per
   segment with no temporal locality. Points run as isolated FlexPar
   cluster LPs (one seeded world per point), so the whole sweep is
   deterministic and parallel.

   Gates ([gate], CI mode via bench/bench_gate.exe scale):

   - completion: every offered segment completes within the horizon at
     every point, up to >= 1M connections;
   - steady-state throughput: mOps at the largest point (shards = 4)
     must stay within 10% of the 16K-connection point — the sharded
     EMEM model has to sustain the offered load when the working set
     is 64x the cache capacity;
   - state footprint: EMEM bytes/flow (peak resident bytes over peak
     resident flows, from the capacity-pressure accounting) must stay
     <= 128 B — the 108 B connection state plus nothing silent;
   - isolation: zero cross-shard connection-state accesses, zero
     forced evictions of pinned (Established) hot state;
   - regression: the 16K point must stay within 5% of the checked-in
     baseline (bench/BENCH_baseline_pr10.json).

   [FLEXSCALE_MAX_CONNS] caps the connection axis (CI runs a reduced
   100K sweep; the full 1M point runs locally / in the scale job). *)

open Common
module F = Flextoe
module Cl = Sim.Engine.Cluster

let shards = 4
let emem_capacity_flows = 262_144 (* cached working set: 64x under 16M DRAM *)
let inject_total = 50_000 (* segments offered per point *)
let inject_gap = Sim.Time.ns 1_000 (* open loop: one segment per us *)
let install_batch = 4_096 (* state installs per 1 us tick *)
let payload_bytes = 32

let default_flows = [ 16_384; 65_536; 262_144; 1_048_576 ]

let conns_cap () =
  match Option.bind (Sys.getenv_opt "FLEXSCALE_MAX_CONNS") int_of_string_opt
  with
  | Some n when n > 0 -> n
  | _ -> max_int

let flow_points () =
  let cap = conns_cap () in
  match List.filter (fun f -> f <= cap) default_flows with
  | [] -> [ min cap (List.hd default_flows) ]
  | fs -> fs

(* Distinct 4-tuples; ports stay in range, IPs advance per block. *)
let flow_of ~ip i =
  {
    Tcp.Flow.local_ip = ip;
    local_port = 7;
    remote_ip = 0x0B000001 + (i / 60_000);
    remote_port = 1_024 + (i mod 60_000);
  }

type point = {
  pt_flows : int;
  pt_dp : F.Datapath.t;
  mutable pt_t0 : Sim.Time.t; (* injection start *)
  mutable pt_t1 : Sim.Time.t; (* last completion observed *)
  mutable pt_done : int; (* rx completions at pt_t1 *)
}

let point_mops pt =
  if pt.pt_done = 0 || pt.pt_t1 <= pt.pt_t0 then 0.
  else
    float_of_int pt.pt_done
    /. (Sim.Time.to_sec (pt.pt_t1 - pt.pt_t0) *. 1e6)

(* Build one sweep point on LP [lp]: bulk-install [flows] connections
   in paced batches, then offer [inject_total] 32 B data segments
   round-robin (each flow's segments in sequence order), polling the
   datapath's RX completion counter for the steady-state clock. *)
let build_point lp ~flows =
  let fabric = Netsim.Fabric.create lp () in
  let ip = ip_server in
  let segs_per_conn = ((inject_total + flows - 1) / flows) + 2 in
  let config =
    {
      F.Config.default with
      F.Config.cc = F.Config.Cc_none;
      cc_interval = Sim.Time.ms 50;
      (* Buffers sized to the point: the RX buffer only ever holds
         this point's undrained payload (the footprint gate measures
         the 108 B EMEM state, not host buffers); the default 256 KB
         would be 512 GB of host memory at 1M connections. *)
      rx_buf_bytes = max 128 (payload_bytes * segs_per_conn);
      tx_buf_bytes = 128;
      scale =
        {
          (F.Config.scale_of shards) with
          F.Config.s_emem_flows = emem_capacity_flows;
        };
    }
  in
  let dp =
    F.Datapath.create lp ~config ~fabric ~mac:(0x020000000000 lor ip) ~ip ()
  in
  let pt =
    {
      pt_flows = flows;
      pt_dp = dp;
      pt_t0 = Sim.Time.zero;
      pt_t1 = Sim.Time.zero;
      pt_done = 0;
    }
  in
  let isn = Tcp.Seq32.of_int 1_000 in
  let installed = ref 0 in
  let num_ctx = F.Datapath.num_ctx dp in
  let seg_frame i pass =
    let flow = flow_of ~ip i in
    let seq = Tcp.Seq32.add isn (1 + (pass * payload_bytes)) in
    let seg =
      Tcp.Segment.make ~flags:Tcp.Segment.flags_ack
        ~payload:(Bytes.make payload_bytes 'S') ~window:0xFFFF
        ~src_ip:flow.Tcp.Flow.remote_ip ~dst_ip:flow.Tcp.Flow.local_ip
        ~src_port:flow.Tcp.Flow.remote_port
        ~dst_port:flow.Tcp.Flow.local_port ~seq
        ~ack_seq:(Tcp.Seq32.add isn 1) ()
    in
    Tcp.Segment.make_frame
      ~src_mac:(0x020000000000 lor flow.Tcp.Flow.remote_ip)
      ~dst_mac:(0x020000000000 lor ip) seg
  in
  let injected = ref 0 in
  let rec poll_done () =
    let st = F.Datapath.stats dp in
    if st.F.Datapath.rx_completed > pt.pt_done then begin
      pt.pt_done <- st.F.Datapath.rx_completed;
      pt.pt_t1 <- Sim.Engine.now lp
    end;
    if pt.pt_done < inject_total then
      Sim.Engine.schedule lp (Sim.Time.us 20) poll_done
  in
  let rec inject () =
    if !injected < inject_total then begin
      let i = !injected mod flows and pass = !injected / flows in
      F.Datapath.reinject_rx dp (seg_frame i pass);
      incr injected;
      Sim.Engine.schedule lp inject_gap inject
    end
  in
  let rec install () =
    let n = min install_batch (flows - !installed) in
    for k = 0 to n - 1 do
      let i = !installed + k in
      let flow = flow_of ~ip i in
      let cs =
        F.Conn_state.create ~idx:(F.Datapath.alloc_conn_idx dp) ~flow
          ~peer_mac:(0x020000000000 lor flow.Tcp.Flow.remote_ip)
          ~flow_group:
            (Tcp.Flow.flow_group flow
               ~groups:config.F.Config.parallelism.F.Config.flow_groups)
          ~tx_isn:isn ~rx_isn:isn ~remote_win:0xFFFF ~opaque:i
          ~ctx_id:(i mod num_ctx)
          ~rx_buf_bytes:config.F.Config.rx_buf_bytes
          ~tx_buf_bytes:config.F.Config.tx_buf_bytes ()
      in
      F.Datapath.install_conn dp cs ~k:(fun () -> ())
    done;
    installed := !installed + n;
    if !installed < flows then Sim.Engine.schedule lp (Sim.Time.us 1) install
    else
      (* Let the install DMAs settle, then open the open-loop tap. *)
      Sim.Engine.schedule lp (Sim.Time.us 50) (fun () ->
          pt.pt_t0 <- Sim.Engine.now lp;
          inject ();
          poll_done ())
  in
  Sim.Engine.schedule_at lp Sim.Time.zero install;
  pt

(* Horizon: paced installs + the open-loop injection window + drain
   slack. Generous — LPs that finish early just go idle. *)
let horizon flows_list =
  let worst = List.fold_left max 1 flows_list in
  Sim.Time.us ((worst / install_batch) + 100)
  + (inject_gap * inject_total) + Sim.Time.ms 20

let sweep () =
  let points = flow_points () in
  let dropped = List.filter (fun f -> not (List.mem f points)) default_flows in
  if dropped <> [] then
    Printf.printf
      "  (FLEXSCALE_MAX_CONNS: dropped %s-connection point(s))\n"
      (String.concat ", " (List.map string_of_int dropped));
  let domains = min 4 (Domain.recommended_domain_count ()) in
  let cl = Cl.create ~seed:10L ~domains () in
  let pts =
    List.map
      (fun flows ->
        let lp =
          Cl.add_lp ~name:(Printf.sprintf "scale%d" flows) ~seed:42L cl
        in
        build_point lp ~flows)
      points
  in
  Cl.run ~until:(horizon points) cl;
  pts

let print_table pts =
  columns (List.map (fun pt -> string_of_int pt.pt_flows) pts);
  row_of_floats "mOps" (List.map point_mops pts);
  row_of_strings "bytes/flow"
    (List.map
       (fun pt ->
         string_of_int (F.Datapath.emem_bytes_per_flow pt.pt_dp))
       pts);
  row_of_strings "completed"
    (List.map
       (fun pt -> Printf.sprintf "%d/%d" pt.pt_done inject_total)
       pts);
  row_of_strings "cross-shard"
    (List.map
       (fun pt -> string_of_int (F.Datapath.cross_shard_accesses pt.pt_dp))
       pts);
  (* Forced evictions of pinned (Established) state are loud, not
     gated: with a working set far past the cache capacity everything
     resident is hot, so forced evictions are expected — the pin
     guarantee (victims are cold while any cold entry exists) is
     pinned by the eviction-oracle unit tests. *)
  row_of_strings "pinned-evict"
    (List.map
       (fun pt -> string_of_int (F.Datapath.pinned_evictions pt.pt_dp))
       pts)

let run () =
  header
    (Printf.sprintf
       "FlexScale sweep: open-loop mOps vs #connections (shards=%d)" shards);
  let pts = sweep () in
  print_table pts;
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  log_result ~experiment:"scale"
    "%d conns: %.2f mOps = %.2fx the %d-conn point; %d B/flow EMEM state"
    last.pt_flows (point_mops last)
    (point_mops last /. Float.max (point_mops first) 1e-9)
    first.pt_flows
    (F.Datapath.emem_bytes_per_flow last.pt_dp);
  note "per-flow state shards across %d pipelines; misses past the"
    shards;
  note "%d-flow EMEM working set pay the DRAM penalty." emem_capacity_flows

(* --- JSON in/out ----------------------------------------------------- *)

let write_json path pts =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"experiment\": \"scale_sweep_pr10\",\n";
      Printf.fprintf oc
        "  \"workload\": \"open-loop %d x %d B segments round-robin, \
         shards %d, seed 42\",\n"
        inject_total payload_bytes shards;
      Printf.fprintf oc "  \"shards\": %d,\n" shards;
      let section name f last_sep =
        Printf.fprintf oc "  \"%s\": {\n" name;
        List.iteri
          (fun i pt ->
            Printf.fprintf oc "    \"%d\": %s%s\n" pt.pt_flows (f pt)
              (if i = List.length pts - 1 then "" else ","))
          pts;
        Printf.fprintf oc "  }%s\n" last_sep
      in
      section "mops" (fun pt -> Printf.sprintf "%.4f" (point_mops pt)) ",";
      section "bytes_per_flow"
        (fun pt ->
          string_of_int (F.Datapath.emem_bytes_per_flow pt.pt_dp))
        ",";
      section "completed" (fun pt -> string_of_int pt.pt_done) "";
      output_string oc "}\n")

let read_baseline path ~flows =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | s -> (
      match Sim.Json.of_string s with
      | Error e -> Error e
      | Ok j -> (
          match
            Option.bind (Sim.Json.member "mops" j) (fun m ->
                Option.bind
                  (Sim.Json.member (string_of_int flows) m)
                  Sim.Json.to_float_opt)
          with
          | Some v -> Ok v
          | None ->
              Error (Printf.sprintf "missing mops.%d" flows)))

let gate ~baseline ~out () =
  header
    (Printf.sprintf "FlexScale gate: open-loop sweep (shards=%d)" shards);
  let pts = sweep () in
  print_table pts;
  write_json out pts;
  Printf.printf "wrote %s\n" out;
  let ok = ref true in
  let pass fmt = Printf.printf ("OK   " ^^ fmt ^^ "\n") in
  let fail fmt =
    ok := false;
    Printf.printf ("FAIL " ^^ fmt ^^ "\n")
  in
  List.iter
    (fun pt ->
      if pt.pt_done < inject_total then
        fail "completion %8d     %d/%d segments within horizon" pt.pt_flows
          pt.pt_done inject_total;
      let bpf = F.Datapath.emem_bytes_per_flow pt.pt_dp in
      if bpf <= 0 || bpf > 128 then
        fail "bytes/flow %8d     %d B outside (0, 128]" pt.pt_flows bpf;
      let cross = F.Datapath.cross_shard_accesses pt.pt_dp in
      if cross > 0 then
        fail "isolation %8d      %d cross-shard conn-state accesses"
          pt.pt_flows cross)
    pts;
  if !ok then
    pass "per-point              all points complete; <=128 B/flow; no \
          cross-shard access";
  let first = List.hd pts and last = List.nth pts (List.length pts - 1) in
  let m0 = point_mops first and mn = point_mops last in
  if mn >= 0.9 *. m0 then
    pass "steady-state           %.2f mOps at %d conns >= 90%% of %.2f at %d"
      mn last.pt_flows m0 first.pt_flows
  else
    fail "steady-state           %.2f mOps at %d conns < 90%% of %.2f at %d"
      mn last.pt_flows m0 first.pt_flows;
  (match read_baseline baseline ~flows:first.pt_flows with
  | Error e -> fail "baseline               %s: %s" baseline e
  | Ok base ->
      if m0 >= 0.95 *. base then
        pass "baseline               %.2f mOps (baseline %.2f)" m0 base
      else
        fail "baseline               %.2f mOps < 95%% of baseline %.2f" m0
          base);
  !ok
