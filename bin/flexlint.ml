(* flexlint: FlexTOE static checkers from the command line.

   Subcommands (see the top-level man page): [verify] (eBPF programs;
   also the default so plain [flexlint --builtin] keeps working),
   [san] (stage-effect contracts + dynamic race sanitizer), [graph]
   (FlexProve whole-graph analysis: interference, deadlock, queue
   bounds), [fsm] (teardown-FSM model check), [top] (FlexScope
   metrics ranking), [trace-check] (trace_event schema validation),
   [fuzz-wire] (wire-codec negative corpus), [churn] (admission-policy
   replay).

   Exit status — uniform across subcommands: 0 all checks passed; 1 a
   checker's verdict failed; 2 usage, file-read or decode errors. *)

open Cmdliner
module V = Flextoe.Verifier

let version = "0.7.0"

let exit_info =
  [
    Cmd.Exit.info 0 ~doc:"all checks passed.";
    Cmd.Exit.info 1 ~doc:"a check's verdict failed (program rejected, \
                          sanitizer or prover reported, mutant survived).";
    Cmd.Exit.info 2
      ~doc:"usage error, unreadable, undecodable or empty input.";
  ]

(* --- verify: eBPF programs ------------------------------------------ *)

let spec k v = { V.key_size = k; value_size = v }

(* Name, instruction array, map shapes the program is verified
   against — mirrors what each extension's constructor builds.
   [None] means "no metadata": the verifier falls back to its weaker
   map-id/buffer checks. *)
let builtins () =
  [
    ( "null",
      Flextoe.Ebpf.instructions (Flextoe.Xdp.null_program ()),
      Some [||] );
    ("ext_firewall", Flextoe.Ext_firewall.program (), Some [| spec 4 4 |]);
    ( "ext_classifier",
      Flextoe.Ext_classifier.program (),
      Some [| spec 2 4; spec 4 8 |] );
    ("ext_vlan", Flextoe.Ext_vlan.program (), Some [||]);
    ("ext_splice", Flextoe.Ext_splice.program (), Some [| spec 12 24 |]);
    ("ext_pcap", Flextoe.Ext_pcap.program (), Some [| spec 4 8 |]);
    ( "ext_pcap(syn|fin)",
      Flextoe.Ext_pcap.(
        program_of_filter (Or (Tcp_flag `Syn, Tcp_flag `Fin))),
      Some [| spec 4 8 |] );
  ]

let dump_states insns (a : V.analysis) =
  Array.iteri
    (fun i insn ->
      Format.printf "  %3d: %a@." i Flextoe.Bpf_insn.pp insn;
      List.iter
        (fun st -> Format.printf "       in: %a@." V.pp_state st)
        a.V.trace.(i))
    insns

let check ~dump (name, insns, maps) =
  match V.verify ?maps insns with
  | Ok a ->
      Format.printf "OK   %-20s %3d insns, %d states, %d back edge%s@." name
        a.V.insn_count a.V.states_explored
        (List.length a.V.back_edges)
        (if List.length a.V.back_edges = 1 then "" else "s");
      if dump then dump_states insns a;
      true
  | Error v ->
      Format.printf "FAIL %-20s %s@." name (V.violation_to_string v);
      (match v.V.state with
      | Some st when dump -> Format.printf "     state: %a@." V.pp_state st
      | _ -> ());
      false

let parse_map s =
  match String.split_on_char 'x' s with
  | [ k; v ] -> (
      match (int_of_string_opt k, int_of_string_opt v) with
      | Some k, Some v when k > 0 && v > 0 -> Ok (spec k v)
      | _ -> Error (`Msg "expected KEYxVALUE, e.g. 4x8"))
  | _ -> Error (`Msg "expected KEYxVALUE, e.g. 4x8")

let map_conv =
  Arg.conv
    ( parse_map,
      fun ppf m ->
        Format.fprintf ppf "%dx%d" m.V.key_size m.V.value_size )

let run_verify builtin dump maps files =
  let load path =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let bytes = Bytes.create len in
          really_input ic bytes 0 len;
          bytes)
    with
    | bytes -> (
        match Flextoe.Bpf_insn.decode bytes with
        | Ok insns ->
            let specs =
              if maps = [] then None else Some (Array.of_list maps)
            in
            (path, insns, specs)
        | Error e ->
            Format.printf "FAIL %-20s undecodable: %s@." path e;
            exit 2)
    | exception Sys_error e ->
        Format.printf "FAIL %-20s unreadable: %s@." path e;
        exit 2
  in
  let targets =
    (if builtin then builtins () else []) @ List.map load files
  in
  if targets = [] then begin
    Format.printf "nothing to verify: pass --builtin or a program file@.";
    exit 2
  end;
  let ok = List.fold_left (fun ok t -> check ~dump t && ok) true targets in
  if not ok then exit 1

let builtin_t =
  Arg.(
    value & flag
    & info [ "builtin" ] ~doc:"Verify the shipped extension programs.")

let dump_t =
  Arg.(
    value & flag
    & info [ "dump" ]
        ~doc:"Print each instruction with the abstract states reaching it.")

let maps_t =
  Arg.(
    value
    & opt_all map_conv []
    & info [ "map" ] ~docv:"KEYxVALUE"
        ~doc:
          "Declare a map shape for file programs (repeatable; order gives \
           the map id). Example: --map 4x8.")

let files_t =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"PROGRAM"
        ~doc:"eBPF program file in the kernel instruction encoding.")

let verify_term = Term.(const run_verify $ builtin_t $ dump_t $ maps_t $ files_t)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~version
       ~doc:"Statically verify FlexTOE eBPF programs" ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Runs the eBPF verifier over the shipped extension programs \
              ($(b,--builtin)) and/or programs decoded from files in the \
              kernel instruction encoding. File programs take their map \
              shapes from repeated $(b,--map) options.";
         ])
    verify_term

(* --- san: stage-effect contracts and the dynamic sanitizer ---------- *)

module D = Flextoe.Datapath
module E = Flextoe.Effects
module San = Flextoe.San

let static_check () =
  let contracts = D.builtin_contracts () in
  List.iter (Format.printf "     %a@." E.pp_contract) contracts;
  match E.check contracts with
  | Ok () ->
      Format.printf "OK   contracts            %d stages, pairwise compatible@."
        (List.length contracts);
      true
  | Error cs ->
      List.iter
        (fun c -> Format.printf "FAIL contract             %s@." (E.conflict_to_string c))
        cs;
      false

(* Boot two sanitized nodes, run an echo workload, return the nodes'
   sanitizers. [sabotage] seeds a defect for --seeded. *)
let run_pipeline ?sabotage () =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let config = { Flextoe.Config.default with Flextoe.Config.san = true } in
  let ip_a = 0x0A000001 and ip_b = 0x0A000002 in
  let a = Flextoe.create_node engine ~fabric ~config ?sabotage ~ip:ip_a () in
  let b = Flextoe.create_node engine ~fabric ~config ?sabotage ~ip:ip_b () in
  let stats = Host.Rpc.Stats.create engine in
  Host.Rpc.server ~endpoint:(Flextoe.endpoint a) ~port:7 ~app_cycles:100
    ~handler:Host.Rpc.echo_handler ();
  Host.Rpc.Stats.start_measuring stats;
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint b) ~engine
       ~server_ip:ip_a ~server_port:7 ~conns:2 ~pipeline:8 ~req_bytes:256
       ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms 20) engine;
  List.filter_map (fun n -> D.san (Flextoe.datapath n)) [ a; b ]

let print_reports s =
  List.iter
    (fun r -> Format.printf "     %s@." (San.report_to_string r))
    (San.reports s)

let run_san builtin seeded =
  let ok = static_check () in
  let ok =
    ok
    &&
    if builtin then begin
      let sans = run_pipeline () in
      let n = List.fold_left (fun a s -> a + San.report_count s) 0 sans in
      let accesses = List.fold_left (fun a s -> a + San.accesses s) 0 sans in
      List.iter print_reports sans;
      if n = 0 then begin
        Format.printf "OK   pipeline             %d accesses traced, 0 reports@."
          accesses;
        true
      end
      else begin
        Format.printf "FAIL pipeline             %d sanitizer report%s@." n
          (if n = 1 then "" else "s");
        false
      end
    end
    else true
  in
  let ok =
    ok
    &&
    match seeded with
    | None -> true
    | Some variant -> (
        match List.assoc_opt variant D.sabotage_variants with
        | None ->
            Format.printf
              "FAIL seeded               unknown variant %s (have: %s)@."
              variant
              (String.concat ", " (List.map fst D.sabotage_variants));
            exit 2
        | Some sabotage -> (
            match run_pipeline ~sabotage () with
            | exception E.Contract_violation cs ->
                (* Static-layer variants are caught at create. *)
                Format.printf
                  "OK   seeded:%-13s caught statically: %s@." variant
                  (E.conflict_to_string (List.hd cs));
                true
            | sans ->
                let n =
                  List.fold_left (fun a s -> a + San.report_count s) 0 sans
                in
                List.iter print_reports sans;
                if n > 0 then begin
                  Format.printf "OK   seeded:%-13s %d report%s@." variant n
                    (if n = 1 then "" else "s");
                  true
                end
                else begin
                  Format.printf
                    "FAIL seeded:%-13s defect went undetected@." variant;
                  false
                end))
  in
  if not ok then exit 1

let san_builtin_t =
  Arg.(
    value & flag
    & info [ "builtin" ]
        ~doc:
          "Also run the dynamic sanitizer: boot a sanitized pipeline under \
           an echo workload and require zero reports.")

let seeded_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "seeded" ] ~docv:"VARIANT"
        ~doc:
          "Run a deliberately-broken datapath variant and require the \
           sanitizer to flag it (detector self-test). Variants: no_lock, \
           early_release, notify_before_payload, skip_notify_dma, \
           postproc_writes_conn, preproc_reads_proto, bad_contract.")

let san_cmd =
  Cmd.v
    (Cmd.info "san" ~version
       ~doc:
         "Check the datapath stage-effect contracts (FlexSan layer 1) and \
          optionally the dynamic race sanitizer (layer 2)"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Checks the built-in stage set's effect contracts pairwise. \
              With $(b,--builtin), additionally boots a sanitized two-node \
              pipeline under an echo workload and requires zero dynamic \
              reports; with $(b,--seeded) $(i,VARIANT), runs a \
              deliberately-broken datapath and requires the sanitizer to \
              catch it (detector self-test). The whole-graph generalization \
              of the pairwise check lives in $(b,flexlint graph).";
         ])
    Term.(const run_san $ san_builtin_t $ seeded_t)

(* --- top: FlexScope metrics-snapshot report -------------------------- *)

module J = Sim.Json

let read_json path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> (
      match J.of_string s with
      | Ok j -> j
      | Error e ->
          Format.printf "FAIL %-20s unparsable: %s@." path e;
          exit 2)
  | exception Sys_error e ->
      Format.printf "FAIL %-20s unreadable: %s@." path e;
      exit 2

let obj_members j =
  match J.to_obj_opt j with Some kvs -> kvs | None -> []

let jnum k j = Option.bind (J.member k j) J.to_float_opt
let jint k j = Option.bind (J.member k j) J.to_int_opt

let run_top path limit =
  let m = read_json path in
  (match (jint "events" m, jint "dropped_events" m, jint "flight_dumps" m) with
  | Some ev, Some dr, Some fd ->
      Printf.printf "events: %d recorded, %d dropped, %d flight dump(s)\n"
        ev dr fd
  | _ -> ());
  let hists =
    obj_members (Option.value ~default:J.Null (J.member "histograms" m))
  in
  (* Stage histograms ranked by total attributed cycles — the
     where-does-the-time-go table. *)
  let stages =
    List.filter_map
      (fun (name, h) ->
        if String.length name > 6 && String.sub name 0 6 = "stage/" then
          match (jint "count" h, jnum "mean" h) with
          | Some n, Some mean ->
              Some
                ( String.sub name 6 (String.length name - 6),
                  n,
                  mean,
                  float_of_int n *. mean,
                  h )
          | _ -> None
        else None)
      hists
    |> List.sort (fun (_, _, _, a, _) (_, _, _, b, _) -> compare b a)
  in
  let pct h q =
    match jint q h with Some v -> string_of_int v | None -> "n/a"
  in
  Printf.printf "%-14s %10s %10s %12s %8s %8s %8s\n" "stage" "count"
    "mean cyc" "total Mcyc" "p50" "p99" "p999";
  List.iteri
    (fun i (name, n, mean, total, h) ->
      if i < limit then
        Printf.printf "%-14s %10d %10.1f %12.2f %8s %8s %8s\n" name n mean
          (total /. 1e6) (pct h "p50") (pct h "p99") (pct h "p999"))
    stages;
  let lifecycle =
    List.filter
      (fun (name, _) ->
        String.length name > 13 && String.sub name 0 13 = "lifecycle_ns/")
      hists
  in
  if lifecycle <> [] then begin
    Printf.printf "%-14s %10s %10s %12s %8s %8s %8s\n" "lifecycle"
      "count" "mean ns" "" "p50" "p99" "p999";
    List.iter
      (fun (name, h) ->
        match (jint "count" h, jnum "mean" h) with
        | Some n, Some mean ->
            Printf.printf "%-14s %10d %10.1f %12s %8s %8s %8s\n"
              (String.sub name 13 (String.length name - 13))
              n mean "" (pct h "p50") (pct h "p99") (pct h "p999")
        | _ -> ())
      lifecycle
  end;
  let counters =
    obj_members (Option.value ~default:J.Null (J.member "counters" m))
  in
  if counters <> [] then begin
    Printf.printf "counters:\n";
    List.iter
      (fun (k, v) ->
        match J.to_int_opt v with
        | Some v -> Printf.printf "  %-24s %d\n" k v
        | None -> ())
      counters
  end;
  let series =
    obj_members (Option.value ~default:J.Null (J.member "series" m))
  in
  let utils =
    List.filter_map
      (fun (k, s) ->
        if String.length k > 5 && String.sub k 0 5 = "util/" then
          Option.map
            (fun mean -> (String.sub k 5 (String.length k - 5), mean, s))
            (jnum "mean" s)
        else None)
      series
    |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)
  in
  if utils <> [] then begin
    Printf.printf "utilization (busy fraction, mean over run):\n";
    List.iteri
      (fun i (k, mean, s) ->
        if i < limit then
          Printf.printf "  %-24s %5.1f%%  (max %5.1f%%)\n" k (100. *. mean)
            (100. *. Option.value ~default:0. (jnum "max" s)))
      utils
  end

let metrics_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"METRICS.json"
        ~doc:"Metrics snapshot written by flextoe-sim --profile.")

let limit_t =
  Arg.(
    value & opt int 20
    & info [ "limit" ] ~doc:"Rows per ranked table (default 20).")

let top_cmd =
  Cmd.v
    (Cmd.info "top" ~version
       ~doc:
         "Rank a FlexScope metrics snapshot: stages by total attributed \
          cycles, segment-lifecycle latencies, counters, pool utilization"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Reads a metrics snapshot written by flextoe-sim \
              $(b,--profile) and prints the where-does-the-time-go tables: \
              stage histograms ranked by total attributed cycles, \
              segment-lifecycle latencies, counters and pool utilization.";
         ])
    Term.(const run_top $ metrics_file_t $ limit_t)

(* --- fuzz-wire: negative corpus for the wire codec ------------------- *)

let run_fuzz_wire cases seed =
  let s = Tcp.Fuzz.run ~seed:(Int64.of_int seed) ~cases () in
  List.iter (fun f -> Format.printf "FAIL case                 %s@." f)
    s.Tcp.Fuzz.failures;
  if Tcp.Fuzz.ok s then
    Format.printf
      "OK   fuzz-wire            %d cases: %d accepted, %d rejected (%d by \
       checksum), 0 raised@."
      s.Tcp.Fuzz.total s.Tcp.Fuzz.accepted s.Tcp.Fuzz.rejected
      s.Tcp.Fuzz.csum_caught
  else begin
    Format.printf "FAIL fuzz-wire            %d of %d case(s) raised@."
      s.Tcp.Fuzz.raised s.Tcp.Fuzz.total;
    exit 1
  end

let fuzz_cases_t =
  Arg.(
    value & opt int 5000
    & info [ "cases" ] ~docv:"N" ~doc:"Corpus size (default 5000).")

let fuzz_seed_t =
  Arg.(
    value & opt int 0xF022
    & info [ "seed" ] ~docv:"SEED"
        ~doc:"Corpus seed; a fixed seed gives a reproducible corpus.")

let fuzz_wire_cmd =
  Cmd.v
    (Cmd.info "fuzz-wire" ~version
       ~doc:
         "Feed a seeded corpus of truncated/bit-flipped/garbage frames to \
          the wire decoder and checksum helpers; any raised exception fails"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Feeds a seeded corpus of truncated, bit-flipped and garbage \
              frames to the wire decoder and checksum helpers. Decoders may \
              reject; they may never raise. A fixed $(b,--seed) gives a \
              reproducible corpus.";
         ])
    Term.(const run_fuzz_wire $ fuzz_cases_t $ fuzz_seed_t)

(* --- trace-check: Chrome trace_event JSONL schema validation --------- *)

let run_trace_check path =
  let ic =
    try open_in path
    with Sys_error e ->
      Format.printf "FAIL %-20s unreadable: %s@." path e;
      exit 2
  in
  let total = ref 0 and bad = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            incr total;
            match J.of_string line with
            | Error e ->
                incr bad;
                if !bad <= 10 then
                  Format.printf "FAIL line %-12d unparsable: %s@." !total e
            | Ok j -> (
                match Sim.Scope.validate_trace_line j with
                | Ok () -> ()
                | Error e ->
                    incr bad;
                    if !bad <= 10 then
                      Format.printf "FAIL line %-12d %s@." !total e)
          end
        done
      with End_of_file -> ());
  (* An empty trace is an input problem, not a schema verdict: exit 2
     like every other unreadable/empty input across the subcommands
     (churn does the same). *)
  if !total = 0 then begin
    Format.printf "FAIL %-20s empty trace@." path;
    exit 2
  end;
  if !bad > 0 then begin
    Format.printf "FAIL %-20s %d of %d line(s) invalid@." path !bad !total;
    exit 1
  end;
  Format.printf "OK   %-20s %d trace_event line(s) valid@." path !total

let trace_file_t =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"TRACE.jsonl"
        ~doc:"Chrome trace_event JSONL written by flextoe-sim --profile full.")

let trace_check_cmd =
  Cmd.v
    (Cmd.info "trace-check" ~version
       ~doc:
         "Validate a FlexScope Chrome trace_event JSONL export against the \
          emitter's schema"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Validates every line of a Chrome trace_event JSONL export \
              against the emitter's schema. Invalid lines fail with exit 1; \
              an unreadable or empty file is an input error (exit 2).";
         ])
    Term.(const run_trace_check $ trace_file_t)

(* --- churn: offline admission-policy replay -------------------------- *)

module G = Flextoe.Guard

(* Trace format: one event per line, [syn|ack|seg|close] ID, with
   blank lines and #-comments skipped — the shape `flexlint churn`
   shares with test fixtures and ad-hoc hand-written storms. *)
let parse_churn_line ~lineno line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> None
  | kw :: _ when String.length kw > 0 && kw.[0] = '#' -> None
  | [ kw; id ] -> (
      match (kw, int_of_string_opt id) with
      | "syn", Some id -> Some (G.Ev_syn id)
      | "ack", Some id -> Some (G.Ev_ack id)
      | "seg", Some id -> Some (G.Ev_seg id)
      | "close", Some id -> Some (G.Ev_close id)
      | _ ->
          Format.printf "FAIL line %-12d expected [syn|ack|seg|close] ID@."
            lineno;
          exit 2)
  | _ ->
      Format.printf "FAIL line %-12d expected [syn|ack|seg|close] ID@." lineno;
      exit 2

let read_churn_trace path =
  let ic =
    if path = "-" then stdin
    else
      try open_in path
      with Sys_error e ->
        Format.printf "FAIL %-20s unreadable: %s@." path e;
        exit 2
  in
  let events = ref [] and lineno = ref 0 in
  Fun.protect
    ~finally:(fun () -> if path <> "-" then close_in_noerr ic)
    (fun () ->
      try
        while true do
          incr lineno;
          match parse_churn_line ~lineno:!lineno (input_line ic) with
          | Some ev -> events := ev :: !events
          | None -> ()
        done
      with End_of_file -> ());
  List.rev !events

let run_churn path backlog max_conns no_cookies tw_ticks =
  let g =
    {
      Flextoe.Config.guard_default with
      Flextoe.Config.g_syn_backlog = backlog;
      g_max_conns = max_conns;
      g_syn_cookies = not no_cookies;
    }
  in
  let events = read_churn_trace path in
  if events = [] then begin
    Format.printf "FAIL %-20s empty trace@." path;
    exit 2
  end;
  let l = G.replay ~tw_ticks g events in
  Format.printf "%a@." G.pp_ledger l;
  if l.G.lg_established_shed > 0 then begin
    Format.printf
      "FAIL established-shed     %d established-flow segment(s) shed@."
      l.G.lg_established_shed;
    exit 1
  end;
  Format.printf
    "OK   established-shed     0 of %d established-flow segment(s) shed@."
    l.G.lg_segments

let churn_trace_t =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"TRACE"
        ~doc:
          "Churn trace: one event per line ([syn|ack|seg|close] ID), \
           #-comments allowed; - reads stdin.")

let churn_backlog_t =
  Arg.(
    value
    & opt int Flextoe.Config.guard_default.Flextoe.Config.g_syn_backlog
    & info [ "backlog" ] ~docv:"N"
        ~doc:"Stateful SYN backlog capacity (0 = unbounded).")

let churn_max_conns_t =
  Arg.(
    value
    & opt int Flextoe.Config.guard_default.Flextoe.Config.g_max_conns
    & info [ "max-conns" ] ~docv:"N"
        ~doc:"Admission cap on established + pending (0 = unbounded).")

let churn_no_cookies_t =
  Arg.(
    value & flag
    & info [ "no-cookies" ]
        ~doc:"Disable the stateless SYN-cookie fallback on backlog overflow.")

let churn_tw_ticks_t =
  Arg.(
    value & opt int 1024
    & info [ "tw-ticks" ] ~docv:"N"
        ~doc:"TIME_WAIT lifetime in trace events (default 1024).")

let churn_cmd =
  Cmd.v
    (Cmd.info "churn" ~version
       ~doc:
         "Replay a connection-churn trace through the FlexGuard admission \
          policy; any shed established-flow segment fails"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Replays a churn trace (one $(b,syn)/$(b,ack)/$(b,seg)/\
              $(b,close) event per line) through the FlexGuard admission \
              policy offline and prints the resulting ledger. Shedding an \
              established-flow segment fails the replay.";
         ])
    Term.(
      const run_churn $ churn_trace_t $ churn_backlog_t $ churn_max_conns_t
      $ churn_no_cookies_t $ churn_tw_ticks_t)

(* --- graph: FlexProve whole-graph static analysis --------------------- *)

module GI = Flextoe.Graph_ir
module P = Flextoe.Prove

(* The acceptance matrix: batching off and the two CI-exercised
   degrees, each with FlexGuard off and on — the four structural
   shapes the extraction can take (bounded vs unbounded CP queue,
   coalesced vs unit batches). *)
let graph_degrees = [ 1; 8; 16 ]

let graph_config ~batch ~guard =
  {
    Flextoe.Config.default with
    Flextoe.Config.batch = Flextoe.Config.batch_of batch;
    guard =
      (if guard then Flextoe.Config.guard_default
       else Flextoe.Config.guard_none);
  }

let write_out path s =
  if path = "-" then print_string s
  else
    match open_out path with
    | oc ->
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc s)
    | exception Sys_error e ->
        Format.printf "FAIL %-20s unwritable: %s@." path e;
        exit 2

let check_combo ~batch ~guard =
  let mode = Printf.sprintf "batch=%-2d guard=%s" batch
      (if guard then "on " else "off") in
  match
    P.check_graph (D.builtin_graph ~config:(graph_config ~batch ~guard) ())
  with
  | Ok reports ->
      List.iter
        (fun r ->
          List.iter
            (fun n -> Format.printf "OK   %-20s %s %s@." r.P.r_pass mode n)
            r.P.r_notes)
        reports;
      true
  | Error fs ->
      List.iter
        (fun f ->
          Format.printf "FAIL %-20s %s %s: %s@." f.P.f_pass mode
            f.P.f_subject f.P.f_detail)
        fs;
      false

(* One sabotage variant against the passes: caught statically, tagged
   dynamic-only with its rationale, or — the CI-failing case — an
   unclassified gap in the safety story. *)
let classify_variant (name, sb) =
  match
    P.check_graph
      (D.builtin_graph ~sabotage:sb ~config:Flextoe.Config.default ())
  with
  | Error fs ->
      Format.printf "OK   caught:%-13s %s@." name
        (P.finding_to_string (List.hd fs));
      true
  | Ok _ -> (
      match List.assoc_opt name D.sabotage_dynamic_only with
      | Some why ->
          Format.printf "OK   dynamic:%-12s %s@." name why;
          true
      | None ->
          Format.printf
            "FAIL unclassified:%-7s as-built graph is clean yet the \
             variant is not tagged dynamic-only@."
            name;
          false)

let run_graph dot classify sabotage_v =
  (match dot with
  | Some path ->
      write_out path
        (GI.to_dot (D.builtin_graph ~config:Flextoe.Config.default ()))
  | None -> ());
  let ok =
    match sabotage_v with
    | Some v -> (
        match List.assoc_opt v D.sabotage_variants with
        | None ->
            Format.printf
              "FAIL sabotage             unknown variant %s (have: %s)@." v
              (String.concat ", " (List.map fst D.sabotage_variants));
            exit 2
        | Some sb -> classify_variant (v, sb))
    | None ->
        let clean =
          List.fold_left
            (fun acc batch ->
              List.fold_left
                (fun acc guard -> check_combo ~batch ~guard && acc)
                acc [ false; true ])
            true graph_degrees
        in
        if classify then
          List.fold_left
            (fun acc v -> classify_variant v && acc)
            clean D.sabotage_variants
        else clean
  in
  if not ok then exit 1

let graph_dot_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the healthy pipeline graph in Graphviz DOT format to \
           $(docv) (- for stdout) before checking.")

let graph_classify_t =
  Arg.(
    value & flag
    & info [ "classify" ]
        ~doc:
          "Additionally classify every seeded sabotage variant: each must \
           be caught statically or be explicitly tagged dynamic-only; an \
           unclassified variant fails.")

let graph_sabotage_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "sabotage" ] ~docv:"VARIANT"
        ~doc:
          "Classify a single sabotage variant's as-built graph instead of \
           checking the healthy matrix.")

let graph_cmd =
  Cmd.v
    (Cmd.info "graph" ~version
       ~doc:
         "FlexProve: whole-graph static analysis of the pipeline \
          (interference, deadlock freedom, queue bounds)"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Extracts the built-in pipeline as a typed graph (stages with \
              effect contracts and serialization domains, queues with \
              capacities and overflow policies, credit edges) and runs the \
              FlexProve passes: whole-graph interference — the transitive \
              generalization of the pairwise contract check in \
              $(b,flexlint san) — deadlock freedom of the \
              credit/backpressure wait-for graph, worst-case queue \
              occupancy against configured capacities, and soundness of \
              the LP partition for the parallel simulator (positive \
              lookahead on cross-LP edges, serialization domains \
              co-located). The healthy matrix \
              covers batch degrees 1, 8 and 16, each with FlexGuard off \
              and on. The same passes run at node construction; this \
              command is the offline/CI surface.";
         ])
    Term.(const run_graph $ graph_dot_t $ graph_classify_t $ graph_sabotage_t)

(* --- fsm: teardown-FSM model check ------------------------------------ *)

let fsm_modes =
  [ (false, false); (false, true); (true, false); (true, true) ]

let fsm_mode_name (guard, tw) =
  Printf.sprintf "guard=%s tw=%s" (if guard then "on " else "off")
    (if tw then "on " else "off")

let run_fsm mutate dot =
  (match dot with
  | Some path -> write_out path (P.fsm_dot ~guard:true ~tw:true ())
  | None -> ());
  match mutate with
  | None ->
      let ok =
        List.fold_left
          (fun acc mode ->
            let guard, tw = mode in
            match P.check_fsm ~guard ~tw () with
            | Ok notes ->
                List.iter
                  (fun n ->
                    Format.printf "OK   fsm %-16s %s@." (fsm_mode_name mode) n)
                  notes;
                acc
            | Error c ->
                Format.printf "FAIL fsm %-16s %s@." (fsm_mode_name mode)
                  (P.counterexample_to_string c);
                false)
          true fsm_modes
      in
      if not ok then exit 1
  | Some name -> (
      match List.assoc_opt name P.fsm_mutations with
      | None ->
          Format.printf
            "FAIL mutate               unknown mutation %s (have: %s)@." name
            (String.concat ", " (List.map fst P.fsm_mutations));
          exit 2
      | Some step -> (
          (* Checker self-test: the mutated table must be rejected in
             at least one feature mode, with a path-to-violation
             counterexample. A surviving mutant is a blind spot. *)
          let rejections =
            List.filter_map
              (fun (guard, tw) ->
                match P.check_fsm ~step ~guard ~tw () with
                | Error c -> Some ((guard, tw), c)
                | Ok _ -> None)
              fsm_modes
          in
          match rejections with
          | [] ->
              Format.printf
                "FAIL mutate:%-13s survived every mode (checker blind \
                 spot)@."
                name;
              exit 1
          | (mode, c) :: _ ->
              Format.printf "OK   mutate:%-13s rejected (%s): %s@." name
                (String.trim (fsm_mode_name mode))
                (P.counterexample_to_string c)))

let fsm_mutate_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "mutate" ] ~docv:"NAME"
        ~doc:
          "Run the checker over a seeded single-transition mutation of the \
           teardown table and require a rejection (checker self-test). \
           Mutations: drop_tw_reack, skip_time_wait, tw_immortal, \
           reopen_rx, reap_established.")

let fsm_dot_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the reachable teardown transition graph (guard and \
           TIME_WAIT on) in Graphviz DOT format to $(docv) (- for stdout).")

let fsm_cmd =
  Cmd.v
    (Cmd.info "fsm" ~version
       ~doc:
         "Model-check the shared teardown transition table against the \
          RFC-793/6191 teardown spec"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Exhaustively checks Conn_state.step — the single transition \
              table the control plane's teardown poll, idle reaper, \
              TIME_WAIT and abort paths all execute — against the teardown \
              spec: no dead states, direction monotonicity, RECLAIMED \
              absorbing, TIME_WAIT entry/re-ACK discipline (RFC 793), \
              reaper exemptions, and orphan-freedom (every closing state \
              reaches RECLAIMED; via local timer/poll events alone when \
              FlexGuard is on). Violations come with a shortest \
              path-to-violation counterexample from ESTABLISHED. \
              $(b,--mutate) runs the checker over a seeded broken table \
              and requires the rejection.";
         ])
    Term.(const run_fsm $ fsm_mutate_t $ fsm_dot_t)

(* --- infer: FlexInfer source-level effect inference ------------------- *)

module I = Flextoe.Infer

let flags_of_sb (sb : D.sabotage) =
  List.filter
    (fun n ->
      match n with
      | "sb_no_lock" -> sb.D.sb_no_lock
      | "sb_early_release" -> sb.D.sb_early_release
      | "sb_notify_before_payload" -> sb.D.sb_notify_before_payload
      | "sb_skip_notify_dma" -> sb.D.sb_skip_notify_dma
      | "sb_postproc_writes_conn" -> sb.D.sb_postproc_writes_conn
      | "sb_preproc_reads_proto" -> sb.D.sb_preproc_reads_proto
      | "sb_bad_contract" -> sb.D.sb_bad_contract
      | "sb_mis_steer" -> sb.D.sb_mis_steer
      | _ -> false)
    [
      "sb_no_lock"; "sb_early_release"; "sb_notify_before_payload";
      "sb_skip_notify_dma"; "sb_postproc_writes_conn";
      "sb_preproc_reads_proto"; "sb_bad_contract"; "sb_mis_steer";
    ]

(* The sabotage variants whose defect never shows in a stage's source
   footprint: the code executed is access-identical to the healthy
   build, only ordering/locking differs. FlexSan (or FlexProve's
   graph extraction, for the lock variants) owns these. *)
let infer_dynamic_only =
  [
    ( "no_lock",
      "footprint-identical: the lock is skipped, not an access added; \
       FlexProve's graph extraction catches the domain mismatch" );
    ( "early_release",
      "footprint-identical: same accesses, released too early; \
       FlexProve/FlexSan territory" );
    ( "notify_before_payload",
      "footprint-identical: the notification is reordered, not a new \
       access; FlexSan's happens-before layer at runtime" );
    ( "skip_notify_dma",
      "footprint-identical: the DMA-completion wait is dropped, the \
       accesses are unchanged; dynamic-only" );
    ( "mis_steer",
      "footprint-identical: the declared per-flow-group wiring is \
       intact, the defect is runtime indexing of a neighbor shard's \
       caches; the steering self-check and FlexSan own it" );
  ]

let infer_root root_opt =
  match root_opt with
  | Some r -> r
  | None -> (
      match I.find_root () with
      | Some r -> r
      | None ->
          Format.printf
            "FAIL infer                cannot find repository root \
             (lib/flextoe/datapath.ml); pass --root@.";
          exit 2)

let print_findings fs =
  List.iter (fun f -> Format.printf "%s@." (I.finding_to_string f)) fs

let print_footprints fps =
  List.iter
    (fun (fp : I.footprint) ->
      let names l =
        String.concat ","
          (List.map Flextoe.Effects.obj_name l)
      in
      Format.printf "     %-10s reads{%s} writes{%s}@." fp.I.fp_stage
        (names fp.I.fp_reads) (names fp.I.fp_writes))
    fps

(* One sabotage variant: its source-level footprint (the analyzer
   sees the sabotaged code via partial evaluation of the sb_* guards)
   diffed against its declared contracts must yield findings — or the
   variant must be tagged dynamic-only. *)
let infer_classify_variant ~root (name, sb) =
  match
    I.infer_repo_diff ~flags:(flags_of_sb sb)
      ~declared:(D.builtin_contracts_under sb) ~root ()
  with
  | Error e ->
      Format.printf "FAIL infer:%-13s %s@." name e;
      false
  | Ok (_, findings) -> (
      match (findings, List.assoc_opt name infer_dynamic_only) with
      | f :: _, _ ->
          Format.printf "OK   caught:%-13s %s@." name (I.finding_to_string f);
          true
      | [], Some why ->
          Format.printf "OK   dynamic:%-12s %s@." name why;
          true
      | [], None ->
          Format.printf
            "FAIL unclassified:%-7s source footprint matches the declared \
             contract yet the variant is not tagged dynamic-only@."
            name;
          false)

let run_infer root_opt json footprints classify sabotage_v =
  let root = infer_root root_opt in
  match sabotage_v with
  | Some v -> (
      match List.assoc_opt v D.sabotage_variants with
      | None ->
          Format.printf
            "FAIL sabotage             unknown variant %s (have: %s)@." v
            (String.concat ", " (List.map fst D.sabotage_variants));
          exit 2
      | Some sb -> if not (infer_classify_variant ~root (v, sb)) then exit 1)
  | None -> (
      match I.analyze_repo ~declared:(D.builtin_contracts ()) ~root () with
      | Error e ->
          Format.printf "FAIL infer                %s@." e;
          exit 2
      | Ok r ->
          (match json with
          | Some path -> write_out path (Sim.Json.to_string (I.report_json r))
          | None -> ());
          if footprints then print_footprints r.I.rp_footprints;
          print_findings r.I.rp_findings;
          let clean = r.I.rp_findings = [] in
          if clean then
            Format.printf
              "OK   infer                %d stages, %d files linted, %d \
               exempted sites, 0 findings@."
              (List.length r.I.rp_footprints)
              r.I.rp_files_linted r.I.rp_seq32_exempted;
          let classified =
            if classify then
              List.fold_left
                (fun acc v -> infer_classify_variant ~root v && acc)
                true D.sabotage_variants
            else true
          in
          if not (clean && classified) then exit 1)

let infer_root_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "root" ] ~docv:"DIR"
        ~doc:
          "Repository root containing lib/flextoe/datapath.ml (default: \
           walk up from the working directory).")

let infer_json_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the full report (footprints, findings, lint counters) as \
           JSON to $(docv) (- for stdout).")

let infer_footprints_t =
  Arg.(
    value & flag
    & info [ "print-footprints" ]
        ~doc:"Print each stage's inferred read/write footprint.")

let infer_classify_t =
  Arg.(
    value & flag
    & info [ "classify" ]
        ~doc:
          "Additionally classify every seeded sabotage variant: its \
           source-level footprint diff must yield findings, or the variant \
           must be explicitly tagged dynamic-only; an unclassified variant \
           fails.")

let infer_sabotage_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "sabotage" ] ~docv:"VARIANT"
        ~doc:
          "Classify a single sabotage variant's source footprint instead \
           of analyzing the clean tree.")

let infer_cmd =
  Cmd.v
    (Cmd.info "infer" ~version
       ~doc:
         "FlexInfer: infer per-stage effect footprints from source and \
          diff them against the declared contracts; Seq32 wrap-safety and \
          stage-hygiene lints"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Parses the real stage sources (compiler-libs Parsetree) and \
              infers each pipeline stage's read/write footprint over the \
              Effects regions: sanitizer witnesses plus known module \
              operations, with same-file helper calls expanded \
              transitively and Protocol/Control_plane calls crossing at \
              most one module boundary. The inferred footprint is diffed \
              against the declared contract — an undeclared access is an \
              error (the contract FlexProve trusted is unsound), a \
              declared-but-never-inferred access is a drift warning. Also \
              lints lib/tcp and lib/flextoe for structural comparisons on \
              Tcp.Seq32.t values (broken at the 2^32 wrap; annotate \
              deliberate uses '(* flexinfer: seq32-exempt *)') and stage \
              bodies for blocking calls and per-segment allocation. \
              $(b,--classify) replays the sabotage corpus through the \
              analyzer: source-visible defects must be caught here, the \
              rest must be tagged dynamic-only.";
         ])
    Term.(
      const run_infer $ infer_root_t $ infer_json_t $ infer_footprints_t
      $ infer_classify_t $ infer_sabotage_t)

let group =
  Cmd.group
    (Cmd.info "flexlint" ~version ~doc:"FlexTOE static checkers"
       ~exits:exit_info
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Static checkers for the FlexTOE reproduction, one \
              subcommand per analysis surface:";
           `P "$(b,verify) — eBPF extension programs (also the default).";
           `P "$(b,san) — stage-effect contracts + dynamic race sanitizer.";
           `P
             "$(b,graph) — FlexProve whole-graph analysis: interference, \
              deadlock, queue bounds.";
           `P
             "$(b,infer) — FlexInfer source-level footprint inference vs \
              declared contracts; Seq32 and hygiene lints.";
           `P "$(b,fsm) — teardown-FSM model check against RFC-793/6191.";
           `P "$(b,top) — rank a FlexScope metrics snapshot.";
           `P "$(b,trace-check) — validate a trace_event JSONL export.";
           `P "$(b,fuzz-wire) — wire-codec negative corpus.";
           `P "$(b,churn) — FlexGuard admission-policy replay.";
           `P
             "All subcommands share the exit contract: 0 passed, 1 a \
              verdict failed, 2 input or usage error.";
         ])
    ~default:verify_term
    [
      verify_cmd; san_cmd; graph_cmd; infer_cmd; fsm_cmd; top_cmd;
      trace_check_cmd; fuzz_wire_cmd; churn_cmd;
    ]

let () =
  (* Fold cmdliner's parse-error code into the documented usage-error
     status (2), keeping 0/1 for the checkers' own verdicts. *)
  match Cmd.eval group with
  | c when c = Cmd.Exit.cli_error -> exit 2
  | c -> exit c
