(* flexlint: run the FlexTOE eBPF verifier from the command line.

   Verifies either the shipped built-in extension programs
   ([--builtin]) or a program decoded from a file in the kernel
   instruction format, and pretty-prints the per-instruction abstract
   states on demand ([--dump]). Exit status 1 when any program is
   rejected, so CI can gate on it. *)

open Cmdliner
module V = Flextoe.Verifier

let spec k v = { V.key_size = k; value_size = v }

(* Name, instruction array, map shapes the program is verified
   against — mirrors what each extension's constructor builds.
   [None] means "no metadata": the verifier falls back to its weaker
   map-id/buffer checks. *)
let builtins () =
  [
    ( "null",
      Flextoe.Ebpf.instructions (Flextoe.Xdp.null_program ()),
      Some [||] );
    ("ext_firewall", Flextoe.Ext_firewall.program (), Some [| spec 4 4 |]);
    ( "ext_classifier",
      Flextoe.Ext_classifier.program (),
      Some [| spec 2 4; spec 4 8 |] );
    ("ext_vlan", Flextoe.Ext_vlan.program (), Some [||]);
    ("ext_splice", Flextoe.Ext_splice.program (), Some [| spec 12 24 |]);
    ("ext_pcap", Flextoe.Ext_pcap.program (), Some [| spec 4 8 |]);
    ( "ext_pcap(syn|fin)",
      Flextoe.Ext_pcap.(
        program_of_filter (Or (Tcp_flag `Syn, Tcp_flag `Fin))),
      Some [| spec 4 8 |] );
  ]

let dump_states insns (a : V.analysis) =
  Array.iteri
    (fun i insn ->
      Format.printf "  %3d: %a@." i Flextoe.Bpf_insn.pp insn;
      List.iter
        (fun st -> Format.printf "       in: %a@." V.pp_state st)
        a.V.trace.(i))
    insns

let check ~dump (name, insns, maps) =
  match V.verify ?maps insns with
  | Ok a ->
      Format.printf "OK   %-20s %3d insns, %d states, %d back edge%s@." name
        a.V.insn_count a.V.states_explored
        (List.length a.V.back_edges)
        (if List.length a.V.back_edges = 1 then "" else "s");
      if dump then dump_states insns a;
      true
  | Error v ->
      Format.printf "FAIL %-20s %s@." name (V.violation_to_string v);
      (match v.V.state with
      | Some st when dump -> Format.printf "     state: %a@." V.pp_state st
      | _ -> ());
      false

let parse_map s =
  match String.split_on_char 'x' s with
  | [ k; v ] -> (
      match (int_of_string_opt k, int_of_string_opt v) with
      | Some k, Some v when k > 0 && v > 0 -> Ok (spec k v)
      | _ -> Error (`Msg "expected KEYxVALUE, e.g. 4x8"))
  | _ -> Error (`Msg "expected KEYxVALUE, e.g. 4x8")

let map_conv =
  Arg.conv
    ( parse_map,
      fun ppf m ->
        Format.fprintf ppf "%dx%d" m.V.key_size m.V.value_size )

let run builtin dump maps files =
  let targets =
    (if builtin then builtins () else [])
    @ List.map
        (fun path ->
          let ic = open_in_bin path in
          let len = in_channel_length ic in
          let bytes = Bytes.create len in
          really_input ic bytes 0 len;
          close_in ic;
          match Flextoe.Bpf_insn.decode bytes with
          | Ok insns ->
              let specs =
                if maps = [] then None else Some (Array.of_list maps)
              in
              (path, insns, specs)
          | Error e ->
              Format.printf "FAIL %-20s undecodable: %s@." path e;
              exit 1)
        files
  in
  if targets = [] then begin
    Format.printf "nothing to verify: pass --builtin or a program file@.";
    exit 2
  end;
  let ok = List.fold_left (fun ok t -> check ~dump t && ok) true targets in
  if not ok then exit 1

let builtin_t =
  Arg.(
    value & flag
    & info [ "builtin" ] ~doc:"Verify the shipped extension programs.")

let dump_t =
  Arg.(
    value & flag
    & info [ "dump" ]
        ~doc:"Print each instruction with the abstract states reaching it.")

let maps_t =
  Arg.(
    value
    & opt_all map_conv []
    & info [ "map" ] ~docv:"KEYxVALUE"
        ~doc:
          "Declare a map shape for file programs (repeatable; order gives \
           the map id). Example: --map 4x8.")

let files_t =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"PROGRAM"
        ~doc:"eBPF program file in the kernel instruction encoding.")

let cmd =
  Cmd.v
    (Cmd.info "flexlint" ~doc:"Statically verify FlexTOE eBPF programs")
    Term.(const run $ builtin_t $ dump_t $ maps_t $ files_t)

let () = exit (Cmd.eval cmd)
