(* flextoe-sim: run single experiments from the command line.

   Examples:
     flextoe-sim echo --stack flextoe --conns 64 --size 2048 --loss 0.01
     flextoe-sim stream --stack linux --conns 8 --duration-ms 100
     flextoe-sim kv --stack tas --cores 8
     flextoe-sim ablation *)

open Cmdliner

type stack = S_flextoe | S_linux | S_tas | S_chelsio

let stack_conv =
  let parse = function
    | "flextoe" -> Ok S_flextoe
    | "linux" -> Ok S_linux
    | "tas" -> Ok S_tas
    | "chelsio" -> Ok S_chelsio
    | s -> Error (`Msg ("unknown stack: " ^ s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | S_flextoe -> "flextoe"
      | S_linux -> "linux"
      | S_tas -> "tas"
      | S_chelsio -> "chelsio")
  in
  Arg.conv (parse, print)

let profile_of = function
  | S_linux -> Baselines.Profile.linux
  | S_tas -> Baselines.Profile.tas
  | S_chelsio -> Baselines.Profile.chelsio
  | S_flextoe -> assert false

let mk_node engine fabric stack ~cores ip =
  match stack with
  | S_flextoe ->
      let n =
        Flextoe.create_node engine ~fabric ~app_cores:cores ~ip ()
      in
      (Flextoe.endpoint n, Some n)
  | s ->
      let b =
        Baselines.Stack.create engine ~fabric ~profile:(profile_of s) ~ip
          ~app_cores:cores ()
      in
      (Baselines.Stack.endpoint b, None)

(* FlexScope profile summary + export, for FlexTOE server nodes run
   with --profile. *)
let report_profile ~trace_out ~metrics_out n =
  match Flextoe.scope n with
  | None -> ()
  | Some sc ->
      Flextoe.Flexscope.write_profile ~trace:trace_out ~metrics:metrics_out
        (Flextoe.datapath n);
      Printf.printf "flexscope  : %d events recorded, %d dropped, %d flight dump(s)\n"
        (Sim.Scope.events_recorded sc)
        (Sim.Scope.dropped_events sc)
        (Sim.Scope.flight_dumps sc);
      if Sim.Scope.mode sc = Sim.Scope.Full then
        Printf.printf "trace      : %s\n" trace_out;
      Printf.printf "metrics    : %s\n" metrics_out;
      List.iter
        (fun (name, h) ->
          if String.length name > 6 && String.sub name 0 6 = "stage/" then begin
            let p q =
              match Sim.Stats.Histogram.percentile_opt h q with
              | Some v -> string_of_int v
              | None -> "n/a"
            in
            Printf.printf
              "  %-16s n=%8d  mean=%8.1f cyc  p50=%s p99=%s p999=%s\n"
              (String.sub name 6 (String.length name - 6))
              (Sim.Stats.Histogram.count h)
              (Sim.Stats.Histogram.mean h)
              (p 50.) (p 99.) (p 99.9)
          end)
        (Sim.Scope.histograms sc)

let report stats ~duration_ms ~bulk_bytes =
  Printf.printf "ops        : %d\n" (Host.Rpc.Stats.ops stats);
  Printf.printf "throughput : %.3f mOps, %.2f Gbps goodput\n"
    (Host.Rpc.Stats.mops stats)
    (if bulk_bytes > 0 then
       float_of_int (Host.Rpc.Stats.ops stats * bulk_bytes * 8)
       /. (float_of_int duration_ms /. 1000.)
       /. 1e9
     else Host.Rpc.Stats.gbps stats);
  if Host.Rpc.Stats.ops stats > 0 then begin
    Printf.printf "RTT median : %.1f us\n"
      (Host.Rpc.Stats.rtt_percentile_us stats 50.);
    Printf.printf "RTT 99p    : %.1f us\n"
      (Host.Rpc.Stats.rtt_percentile_us stats 99.);
    Printf.printf "RTT 99.99p : %.1f us\n"
      (Host.Rpc.Stats.rtt_percentile_us stats 99.99)
  end

let run_echo stack conns pipeline size loss duration_ms cores delayed_acks
    profile trace_out metrics_out =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  Netsim.Fabric.set_loss fabric loss;
  let config =
    { Flextoe.Config.default with Flextoe.Config.delayed_acks;
      scope = profile }
  in
  let mk_node engine fabric stack ~cores ip =
    match stack with
    | S_flextoe ->
        let n =
          Flextoe.create_node engine ~fabric ~config ~app_cores:cores ~ip ()
        in
        (Flextoe.endpoint n, Some n)
    | s ->
        let b =
          Baselines.Stack.create engine ~fabric ~profile:(profile_of s) ~ip
            ~app_cores:cores ()
        in
        (Baselines.Stack.endpoint b, None)
  in
  let server_ep, flex = mk_node engine fabric stack ~cores 0x0A000001 in
  let client_ep, _ = mk_node engine fabric stack ~cores:8 0x0A000002 in
  let stats = Host.Rpc.Stats.create engine in
  Host.Rpc.server ~endpoint:server_ep ~port:7 ~app_cycles:250
    ~handler:Host.Rpc.echo_handler ();
  ignore
    (Host.Rpc.closed_loop_client ~endpoint:client_ep ~engine
       ~server_ip:0x0A000001 ~server_port:7 ~conns ~pipeline
       ~req_bytes:size ~stats ());
  Sim.Engine.run ~until:(Sim.Time.ms 10) engine;
  Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Time.ms (10 + duration_ms)) engine;
  report stats ~duration_ms ~bulk_bytes:0;
  match flex with
  | Some n ->
      let st = Flextoe.Datapath.stats (Flextoe.datapath n) in
      Printf.printf
        "data path  : rx=%d tx=%d acks=%d fast-retx=%d to-control=%d\n"
        st.Flextoe.Datapath.rx_segments st.Flextoe.Datapath.tx_segments
        st.Flextoe.Datapath.tx_acks st.Flextoe.Datapath.fast_retx
        st.Flextoe.Datapath.rx_to_control;
      Printf.printf "caches     : %s\n"
        (String.concat ", "
           (List.filter_map
              (fun (name, h, m) ->
                if h + m = 0 then None
                else
                  Some
                    (Printf.sprintf "%s %.0f%%" name
                       (100. *. float_of_int h /. float_of_int (h + m))))
              (Flextoe.Datapath.cache_stats (Flextoe.datapath n))));
      report_profile ~trace_out ~metrics_out n
  | None -> ()

let run_stream stack conns loss duration_ms cores =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  Netsim.Fabric.set_loss fabric loss;
  let server_ep, _ = mk_node engine fabric stack ~cores 0x0A000001 in
  let client_ep, _ = mk_node engine fabric stack ~cores:8 0x0A000002 in
  let received = ref 0 in
  server_ep.Host.Api.listen ~port:5001 ~on_accept:(fun sock ->
      sock.Host.Api.on_readable <-
        (fun () ->
          received :=
            !received + Bytes.length (sock.Host.Api.recv ~max:max_int)));
  for _ = 1 to conns do
    client_ep.Host.Api.connect ~remote_ip:0x0A000001 ~remote_port:5001
      ~on_connected:(fun r ->
        match r with
        | Error _ -> ()
        | Ok sock ->
            let chunk = Bytes.make 16384 's' in
            let push () = while sock.Host.Api.send chunk > 0 do () done in
            sock.Host.Api.on_writable <- push;
            push ())
  done;
  Sim.Engine.run ~until:(Sim.Time.ms duration_ms) engine;
  Printf.printf "received   : %d bytes\n" !received;
  Printf.printf "throughput : %.2f Gbps\n"
    (float_of_int (8 * !received) /. (float_of_int duration_ms /. 1000.) /. 1e9)

let run_kv stack conns cores duration_ms profile trace_out metrics_out =
  let engine = Sim.Engine.create () in
  let fabric = Netsim.Fabric.create engine () in
  let config = { Flextoe.Config.default with Flextoe.Config.scope = profile } in
  let server_ep, flex =
    match stack with
    | S_flextoe ->
        let n =
          Flextoe.create_node engine ~fabric ~config ~app_cores:cores
            ~ip:0x0A000001 ()
        in
        (Flextoe.endpoint n, Some n)
    | s ->
        let b =
          Baselines.Stack.create engine ~fabric ~profile:(profile_of s)
            ~ip:0x0A000001 ~app_cores:cores ()
        in
        (Baselines.Stack.endpoint b, None)
  in
  let client_ep, _ = mk_node engine fabric S_flextoe ~cores:8 0x0A000002 in
  let stats = Host.Rpc.Stats.create engine in
  ignore (Host.App_kv.server ~endpoint:server_ep ~port:11211 ~app_cycles:890 ());
  Host.App_kv.client ~endpoint:client_ep ~engine ~server_ip:0x0A000001
    ~server_port:11211 ~conns ~pipeline:8 ~key_bytes:32 ~value_bytes:32
    ~set_ratio:0.1 ~stats ();
  Sim.Engine.run ~until:(Sim.Time.ms 10) engine;
  Host.Rpc.Stats.start_measuring stats;
  Sim.Engine.run ~until:(Sim.Time.ms (10 + duration_ms)) engine;
  report stats ~duration_ms ~bulk_bytes:0;
  match flex with
  | Some n -> report_profile ~trace_out ~metrics_out n
  | None -> ()

let run_ablation () =
  let rows =
    [
      ("baseline (run-to-completion)", Flextoe.Config.t3_baseline);
      ("+ pipelining", Flextoe.Config.t3_pipelined);
      ("+ intra-FPC threads", Flextoe.Config.t3_threads);
      ("+ replicated pre/post", Flextoe.Config.t3_replicated);
      ("+ flow-group islands", Flextoe.Config.t3_flow_groups);
    ]
  in
  List.iter
    (fun (name, par) ->
      let engine = Sim.Engine.create () in
      let fabric = Netsim.Fabric.create engine () in
      let config =
        Flextoe.Config.with_parallelism Flextoe.Config.default par
      in
      let server =
        Flextoe.create_node engine ~fabric ~config ~app_cores:8
          ~ip:0x0A000001 ()
      in
      let client =
        Flextoe.create_node engine ~fabric ~app_cores:8 ~ip:0x0A000002 ()
      in
      let stats = Host.Rpc.Stats.create engine in
      Host.Rpc.server ~endpoint:(Flextoe.endpoint server) ~port:7
        ~app_cycles:100 ~handler:Host.Rpc.echo_handler ();
      ignore
        (Host.Rpc.closed_loop_client ~endpoint:(Flextoe.endpoint client)
           ~engine ~server_ip:0x0A000001 ~server_port:7 ~conns:64
           ~pipeline:1 ~req_bytes:2048 ~stats ());
      Sim.Engine.run ~until:(Sim.Time.ms 20) engine;
      Host.Rpc.Stats.start_measuring stats;
      Sim.Engine.run ~until:(Sim.Time.ms 60) engine;
      Printf.printf "%-30s %10.1f mbps   median %8.1f us\n" name
        (2. *. Host.Rpc.Stats.gbps stats *. 1000.)
        (Host.Rpc.Stats.rtt_percentile_us stats 50.))
    rows

(* --- Cmdliner plumbing -------------------------------------------------- *)

let stack_t =
  Arg.(value & opt stack_conv S_flextoe & info [ "stack" ] ~doc:"Stack: flextoe|linux|tas|chelsio.")

let conns_t = Arg.(value & opt int 16 & info [ "conns" ] ~doc:"Connections.")
let pipeline_t = Arg.(value & opt int 2 & info [ "pipeline" ] ~doc:"Pipelined RPCs per connection.")
let size_t = Arg.(value & opt int 64 & info [ "size" ] ~doc:"RPC payload bytes.")
let loss_t = Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Uniform random loss probability.")
let duration_t = Arg.(value & opt int 50 & info [ "duration-ms" ] ~doc:"Measured (virtual) milliseconds.")
let cores_t = Arg.(value & opt int 1 & info [ "cores" ] ~doc:"Server application cores.")
let delack_t =
  Arg.(value & flag
       & info [ "delayed-acks" ]
           ~doc:"Enable FlexTOE's delayed-ACK mode (ablation feature).")

let profile_conv =
  let parse = function
    | "off" -> Ok Flextoe.Config.Scope_off
    | "metrics" -> Ok Flextoe.Config.Scope_metrics
    | "full" -> Ok Flextoe.Config.Scope_full
    | s -> Error (`Msg ("unknown profile level: " ^ s))
  in
  let print fmt m =
    Format.pp_print_string fmt
      (match m with
      | Flextoe.Config.Scope_off -> "off"
      | Flextoe.Config.Scope_metrics -> "metrics"
      | Flextoe.Config.Scope_full -> "full")
  in
  Arg.conv (parse, print)

let profile_t =
  Arg.(
    value
    & opt profile_conv Flextoe.Config.Scope_off
    & info [ "profile" ]
        ~doc:
          "FlexScope profiling for the FlexTOE server node: off|metrics|full. \
           $(b,metrics) records per-stage cycle histograms, counters and \
           utilization series; $(b,full) also buffers Chrome trace_event \
           records (load the JSONL in Perfetto / chrome://tracing).")

let trace_out_t =
  Arg.(
    value
    & opt string "flextoe_trace.jsonl"
    & info [ "trace-out" ] ~docv:"PATH"
        ~doc:"Chrome trace_event JSONL output (written with --profile full).")

let metrics_out_t =
  Arg.(
    value
    & opt string "flextoe_metrics.json"
    & info [ "metrics-out" ] ~docv:"PATH"
        ~doc:"Metrics snapshot output (written with --profile on).")

let echo_cmd =
  Cmd.v (Cmd.info "echo" ~doc:"Closed-loop echo RPC benchmark")
    Term.(const run_echo $ stack_t $ conns_t $ pipeline_t $ size_t $ loss_t
          $ duration_t $ cores_t $ delack_t $ profile_t $ trace_out_t
          $ metrics_out_t)

let stream_cmd =
  Cmd.v (Cmd.info "stream" ~doc:"Bulk unidirectional streaming")
    Term.(const run_stream $ stack_t $ conns_t $ loss_t $ duration_t
          $ cores_t)

let kv_cmd =
  Cmd.v (Cmd.info "kv" ~doc:"memcached-style key-value workload")
    Term.(const run_kv $ stack_t $ conns_t $ cores_t $ duration_t
          $ profile_t $ trace_out_t $ metrics_out_t)

let ablation_cmd =
  Cmd.v (Cmd.info "ablation" ~doc:"Data-path parallelism ablation (Table 3)")
    Term.(const run_ablation $ const ())

let () =
  let info =
    Cmd.info "flextoe-sim" ~version:"1.0.0"
      ~doc:"FlexTOE reproduction: single-experiment simulator driver"
  in
  exit (Cmd.eval (Cmd.group info [ echo_cmd; stream_cmd; kv_cmd; ablation_cmd ]))
