module S = Tcp.Segment
module Seq32 = Tcp.Seq32

let mac_of_ip ip = 0x020000000000 lor ip

type conn = {
  id : int;
  flow : Tcp.Flow.t;
  tx_isn : Seq32.t;
  rx_isn : Seq32.t;
  app_core : Host.Host_cpu.core;
  stack_core : Host.Host_cpu.core;
  tx_buf : Host.Payload_buf.t;
  rx_buf : Host.Payload_buf.t;
  mutable tx_tail : int;  (* app-appended end of stream *)
  mutable tx_next : int;  (* next byte to transmit *)
  mutable tx_max : int;  (* highest byte ever transmitted *)
  mutable tx_acked : int;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable dupacks : int;
  mutable in_recovery : bool;
  mutable recover_pos : int;
  mutable remote_win : int;
  reasm : Tcp.Reassembly_multi.t;
  mutable rx_avail : int;  (* advertised window *)
  mutable rx_read : int;  (* app read cursor *)
  mutable rx_ready : int;  (* delivered, unread *)
  mutable next_ts : int;
  mutable ece_pending : bool;
  mutable cwr_pending : bool;
  mutable ecn_cut_until : int;  (* no second ECN cut before this pos *)
  mutable rto_handle : Sim.Engine.handle option;
  mutable rto_backoff : int;
  mutable tx_fin : bool;
  mutable fin_sent : bool;
  mutable fin_acked : bool;
  mutable rx_fin : bool;
  mutable pumping : bool;
  mutable notify_pending : int;  (* bytes delivered, wake-up queued *)
  mutable notify_armed : bool;
  mutable notify_ok_at : Sim.Time.t;  (* moderation: next allowed wake *)
  mutable wnotify_armed : bool;
  mutable wnotify_ok_at : Sim.Time.t;
  mutable sock : Host.Api.socket option;
}

type pending = {
  p_flow : Tcp.Flow.t;
  p_our_isn : Seq32.t;
  mutable p_peer_isn : Seq32.t;
  p_kind :
    [ `Accept of Host.Api.socket -> unit
    | `Connect of (Host.Api.socket, string) result -> unit ];
  mutable p_done : bool;
}

type t = {
  engine : Sim.Engine.t;
  prof : Profile.t;
  cpu : Host.Host_cpu.t;
  port : Netsim.Fabric.port;
  ip : int;
  n_app_cores : int;
  conns : conn Tcp.Flow.Tbl.t;
  by_id : (int, conn) Hashtbl.t;
  pending : pending Tcp.Flow.Tbl.t;
  listeners : (int, Host.Api.socket -> unit) Hashtbl.t;
  rng : Sim.Rng.t;
  mutable next_id : int;
  mutable next_port : int;
  mutable rr_core : int;
  mutable nic_free : Sim.Time.t;  (* Chelsio ASIC serialisation *)
  mutable seg_rx : int;
  mutable seg_tx : int;
  mutable retx : int;
  mutable rto_count : int;
  endpoint : Host.Api.endpoint option ref;
}

let cpu t = t.cpu
let fabric_port t = t.port
let profile t = t.prof
let active_conns t = Tcp.Flow.Tbl.length t.conns
let segments_rx t = t.seg_rx
let segments_tx t = t.seg_tx
let retransmits t = t.retx
let rto_fires t = t.rto_count

(* --- Cost helpers ----------------------------------------------------- *)

let lock_scaled t cycles =
  let cores = float_of_int t.n_app_cores in
  int_of_float
    (float_of_int cycles *. (1. +. (t.prof.Profile.lock_factor *. (cores -. 1.))))

let seg_cost t base =
  lock_scaled t (base + t.prof.Profile.conn_penalty (active_conns t))

(* Stack processing runs inline on the app core or on a dedicated
   fast-path core, per profile. *)
let stack_core_for t conn_id app_core =
  match t.prof.Profile.placement with
  | Profile.Inline -> app_core
  | Profile.Dedicated n ->
      (* Fast-path cores live beyond the app cores. *)
      Host.Host_cpu.core t.cpu (t.n_app_cores + (conn_id mod n))

(* --- Wire helpers ------------------------------------------------------ *)

let us_of_time tm = (tm / 1_000_000) land 0xFFFF_FFFF
let scaled_window t avail = min 0xFFFF (avail lsr t.prof.Profile.window_scale)

(* Chelsio-style NIC: segments pass through the ASIC at a bounded rate
   with fixed latency; host stacks pass straight through. *)
let via_nic t k =
  match t.prof.Profile.nic_seg_rate with
  | None -> k ()
  | Some rate ->
      let now = Sim.Engine.now t.engine in
      let per_seg = int_of_float (1e12 /. rate) in
      let start = max now t.nic_free in
      t.nic_free <- start + per_seg;
      let delay = start + per_seg + t.prof.Profile.nic_latency - now in
      Sim.Engine.schedule t.engine delay k

let transmit_frame t frame =
  t.seg_tx <- t.seg_tx + 1;
  via_nic t (fun () -> Netsim.Fabric.transmit t.port frame)

let tx_seq c pos = Seq32.add c.tx_isn (1 + pos)
let rx_pos c seq = Seq32.diff seq (Seq32.add c.rx_isn 1)

let data_frame t c ~pos ~len ~fin =
  let payload =
    if len = 0 then Bytes.empty
    else Host.Payload_buf.read c.tx_buf ~off:pos ~len
  in
  let seg =
    S.make
      ~flags:
        {
          S.no_flags with
          S.ack = true;
          psh = true;
          fin;
          ece = c.ece_pending;
          cwr =
            (if c.cwr_pending then begin
               c.cwr_pending <- false;
               true
             end
             else false);
        }
      ~window:(scaled_window t c.rx_avail)
      ~options:
        {
          S.mss = None;
          ts = Some (us_of_time (Sim.Engine.now t.engine), c.next_ts);
        }
      ~payload ~src_ip:c.flow.Tcp.Flow.local_ip
      ~dst_ip:c.flow.Tcp.Flow.remote_ip
      ~src_port:c.flow.Tcp.Flow.local_port
      ~dst_port:c.flow.Tcp.Flow.remote_port ~seq:(tx_seq c pos)
      ~ack_seq:(Tcp.Reassembly_multi.next c.reasm)
      ()
  in
  S.make_frame
    ~ecn:(if t.prof.Profile.ecn_enabled then S.Ect0 else S.Not_ect)
    ~src_mac:(mac_of_ip c.flow.Tcp.Flow.local_ip)
    ~dst_mac:(mac_of_ip c.flow.Tcp.Flow.remote_ip)
    seg

let ack_frame t c =
  let seg =
    S.make
      ~flags:{ S.flags_ack with S.ece = c.ece_pending }
      ~window:(scaled_window t c.rx_avail)
      ~options:
        {
          S.mss = None;
          ts = Some (us_of_time (Sim.Engine.now t.engine), c.next_ts);
        }
      ~src_ip:c.flow.Tcp.Flow.local_ip ~dst_ip:c.flow.Tcp.Flow.remote_ip
      ~src_port:c.flow.Tcp.Flow.local_port
      ~dst_port:c.flow.Tcp.Flow.remote_port
      ~seq:(tx_seq c c.tx_next)
      ~ack_seq:(Tcp.Reassembly_multi.next c.reasm)
      ()
  in
  S.make_frame
    ~src_mac:(mac_of_ip c.flow.Tcp.Flow.local_ip)
    ~dst_mac:(mac_of_ip c.flow.Tcp.Flow.remote_ip)
    seg

(* --- RTO timer ---------------------------------------------------------- *)

let cancel_rto t c =
  match c.rto_handle with
  | Some h ->
      Sim.Engine.cancel t.engine h;
      c.rto_handle <- None
  | None -> ()

let rec arm_rto t c =
  cancel_rto t c;
  let delay = t.prof.Profile.min_rto * c.rto_backoff in
  c.rto_handle <-
    Some (Sim.Engine.schedule_cancellable t.engine delay (fun () -> rto_fire t c))

and rto_fire t c =
  c.rto_handle <- None;
  if c.tx_next > c.tx_acked || (c.fin_sent && not c.fin_acked) then begin
    t.rto_count <- t.rto_count + 1;
    c.ssthresh <- max (2 * t.prof.Profile.mss) ((c.tx_next - c.tx_acked) / 2);
    c.cwnd <- t.prof.Profile.mss;
    c.rto_backoff <- min 16 (c.rto_backoff * 2);
    c.dupacks <- 0;
    c.in_recovery <- false;
    (* All recovery models go back to the cumulative ACK on timeout. *)
    c.tx_next <- c.tx_acked;
    c.fin_sent <- false;
    arm_rto t c;
    pump t c
  end

(* --- Transmission ------------------------------------------------------- *)

and pump t c =
  if not c.pumping then begin
    c.pumping <- true;
    pump_one t c
  end

and pump_one t c =
  let mss = t.prof.Profile.mss in
  let flight = c.tx_next - c.tx_acked in
  let allowed = min c.cwnd c.remote_win - flight in
  let len = min mss (min (c.tx_tail - c.tx_next) allowed) in
  let fin_only =
    c.tx_fin && (not c.fin_sent) && c.tx_next = c.tx_tail && allowed >= 0
  in
  if len > 0 || fin_only then begin
    let pos = c.tx_next in
    let len = max 0 len in
    let fin = c.tx_fin && pos + len = c.tx_tail in
    Host.Host_cpu.exec c.stack_core ~category:"stack"
      ~cycles:(seg_cost t t.prof.Profile.tx_seg_cycles)
      (fun () ->
        (* Re-check: an ACK may have moved the window meanwhile. *)
        if pos = c.tx_next && (len > 0 || not c.fin_sent) then begin
          c.tx_next <- pos + len;
          if c.tx_next > c.tx_max then c.tx_max <- c.tx_next;
          if fin then c.fin_sent <- true;
          transmit_frame t (data_frame t c ~pos ~len ~fin);
          if c.rto_handle = None then arm_rto t c
        end;
        pump_one t c)
  end
  else c.pumping <- false

(* Retransmit a single segment at the cumulative ACK (selective
   repeat / NewReno hole repair). *)
and retransmit_head t c =
  let mss = t.prof.Profile.mss in
  let len = min mss (c.tx_tail - c.tx_acked) in
  let fin = c.tx_fin && c.tx_acked + len = c.tx_tail in
  if len > 0 || fin then begin
    t.retx <- t.retx + 1;
    Host.Host_cpu.exec c.stack_core ~category:"stack"
      ~cycles:(seg_cost t t.prof.Profile.tx_seg_cycles)
      (fun () ->
        transmit_frame t (data_frame t c ~pos:c.tx_acked ~len ~fin);
        if c.rto_handle = None then arm_rto t c)
  end

(* --- Receive ------------------------------------------------------------- *)

let deliver t c advance =
  (* Notification latency models interrupts + scheduler wake-up.
     Back-to-back arrivals coalesce (NAPI-style interrupt moderation):
     after a wake-up, the next one is deferred by the profile's
     moderation window, so bulk flows pay the notification cost once
     per window while sparse RPC traffic is unaffected. *)
  c.notify_pending <- c.notify_pending + advance;
  if not c.notify_armed then begin
    c.notify_armed <- true;
    let now = Sim.Engine.now t.engine in
    let delay =
      max t.prof.Profile.notify_latency (c.notify_ok_at - now)
    in
    Sim.Engine.schedule t.engine delay (fun () ->
        c.notify_armed <- false;
        c.notify_ok_at <-
          Sim.Engine.now t.engine + t.prof.Profile.notify_moderation;
        let epoll =
          int_of_float (t.prof.Profile.epoll_factor *. float_of_int
                          (active_conns t))
        in
        Host.Host_cpu.exec c.app_core ~category:"notify"
          ~cycles:(lock_scaled t (t.prof.Profile.notify_cycles + epoll))
          (fun () ->
            let batch = c.notify_pending in
            c.notify_pending <- 0;
            c.rx_ready <- c.rx_ready + batch;
            match c.sock with
            | Some sock -> sock.Host.Api.on_readable ()
            | None -> ()))
  end

let deliver_fin t c =
  Sim.Engine.schedule t.engine t.prof.Profile.notify_latency (fun () ->
      match c.sock with
      | Some sock -> sock.Host.Api.on_peer_closed ()
      | None -> ())

let notify_writable t c freed =
  (* Writable wake-ups coalesce under the same moderation as readable
     ones: a bulk sender is woken once per window, not once per ACK. *)
  if freed > 0 && not c.wnotify_armed then begin
    c.wnotify_armed <- true;
    let now = Sim.Engine.now t.engine in
    let delay =
      max t.prof.Profile.notify_latency (c.wnotify_ok_at - now)
    in
    Sim.Engine.schedule t.engine delay (fun () ->
        c.wnotify_armed <- false;
        c.wnotify_ok_at <-
          Sim.Engine.now t.engine + t.prof.Profile.notify_moderation;
        match c.sock with
        | Some sock -> sock.Host.Api.on_writable ()
        | None -> ())
  end

let enter_recovery t c =
  if not c.in_recovery then begin
    c.in_recovery <- true;
    c.recover_pos <- c.tx_next;
    c.ssthresh <- max (2 * t.prof.Profile.mss) ((c.tx_next - c.tx_acked) / 2);
    c.cwnd <- c.ssthresh;
    match t.prof.Profile.recovery with
    | Profile.Go_back_n ->
        t.retx <- t.retx + 1;
        c.tx_next <- c.tx_acked;
        c.fin_sent <- false;
        pump t c
    | Profile.Selective_repeat -> retransmit_head t c
    | Profile.Rto_only -> ()
  end

let process_ack t c (seg : S.t) ~ecn_ce =
  ignore ecn_ce;
  let fin_adj = if c.fin_sent then 1 else 0 in
  let ack_pos = Seq32.diff seg.S.ack_seq (Seq32.add c.tx_isn 1) in
  (* Validity is against the highest byte ever sent: after a
     go-back-N rewind, the receiver may legitimately ack beyond
     tx_next. *)
  if ack_pos > c.tx_max + fin_adj || ack_pos < c.tx_acked then ()
  else begin
    c.remote_win <- seg.S.window lsl t.prof.Profile.window_scale;
    let acked_data = min ack_pos c.tx_tail in
    let freed = acked_data - c.tx_acked in
    if freed > 0 || (c.fin_sent && ack_pos > c.tx_tail) then begin
      if c.fin_sent && ack_pos > c.tx_tail then c.fin_acked <- true;
      c.tx_acked <- acked_data;
      if c.tx_next < c.tx_acked then c.tx_next <- c.tx_acked;
      c.dupacks <- 0;
      c.rto_backoff <- 1;
      (* Congestion window growth. *)
      if c.cwnd < c.ssthresh then c.cwnd <- c.cwnd + freed
      else
        c.cwnd <-
          c.cwnd
          + max 1 (t.prof.Profile.mss * freed / max 1 c.cwnd);
      (* ECN response: at most one cut per window. *)
      if seg.S.flags.S.ece && c.tx_acked >= c.ecn_cut_until then begin
        c.ssthresh <- max (2 * t.prof.Profile.mss) (c.cwnd / 2);
        c.cwnd <- c.ssthresh;
        c.ecn_cut_until <- c.tx_next;
        c.cwr_pending <- true
      end;
      if c.in_recovery then begin
        if c.tx_acked >= c.recover_pos then c.in_recovery <- false
        else if t.prof.Profile.recovery = Profile.Selective_repeat then
          (* Partial ack: repair the next hole. *)
          retransmit_head t c
      end;
      if c.tx_acked < c.tx_next || (c.fin_sent && not c.fin_acked) then
        arm_rto t c
      else cancel_rto t c;
      notify_writable t c freed;
      pump t c
    end
    else if
      S.payload_len seg = 0 && (not seg.S.flags.S.fin)
      && ack_pos = c.tx_acked
      && c.tx_next > c.tx_acked
    then begin
      c.dupacks <- c.dupacks + 1;
      if c.dupacks >= t.prof.Profile.dupack_threshold then begin
        c.dupacks <- 0;
        enter_recovery t c
      end
    end
    else pump t c (* window update may unblock *)
  end

let process_segment t c (frame : S.frame) =
  let seg = frame.S.seg in
  if t.prof.Profile.ecn_enabled then begin
    if frame.S.ecn = S.Ce then c.ece_pending <- true;
    if seg.S.flags.S.cwr then c.ece_pending <- false
  end;
  if seg.S.flags.S.ack then process_ack t c seg ~ecn_ce:(frame.S.ecn = S.Ce);
  let plen = S.payload_len seg in
  let need_ack = ref false in
  if plen > 0 then begin
    (match
       Tcp.Reassembly_multi.process c.reasm ~seq:seg.S.seq ~len:plen
         ~window:c.rx_avail
     with
    | Tcp.Reassembly_multi.Accept { trim; len; advance } ->
        Host.Payload_buf.write c.rx_buf
          ~off:(rx_pos c (Seq32.add seg.S.seq trim))
          ~src:seg.S.payload ~src_off:trim ~len;
        c.rx_avail <- c.rx_avail - advance;
        (match seg.S.options.S.ts with
        | Some (tsval, _) -> c.next_ts <- tsval
        | None -> ());
        deliver t c advance
    | Tcp.Reassembly_multi.Ooo_accept { trim; off; len } ->
        Host.Payload_buf.write c.rx_buf
          ~off:(rx_pos c (Seq32.add seg.S.seq trim))
          ~src:seg.S.payload ~src_off:trim ~len;
        ignore off
    | Tcp.Reassembly_multi.Duplicate
    | Tcp.Reassembly_multi.Drop_out_of_window ->
        ());
    need_ack := true
  end;
  if seg.S.flags.S.fin && not c.rx_fin then begin
    let fin_seq = Seq32.add seg.S.seq plen in
    if Seq32.diff fin_seq (Tcp.Reassembly_multi.next c.reasm) = 0 then begin
      c.rx_fin <- true;
      Tcp.Reassembly_multi.force_advance c.reasm 1;
      deliver_fin t c
    end;
    need_ack := true
  end;
  if !need_ack then begin
    (* Pure ACK costs a fraction of full segment processing. *)
    Host.Host_cpu.exec c.stack_core ~category:"stack"
      ~cycles:(seg_cost t (t.prof.Profile.tx_seg_cycles / 4))
      (fun () -> transmit_frame t (ack_frame t c))
  end

(* --- Socket plumbing ----------------------------------------------------- *)

let charge_api t (c : conn) =
  Host.Host_cpu.exec_now c.app_core ~category:"sockets"
    ~cycles:(lock_scaled t t.prof.Profile.api_cycles)
    ()

let make_socket t c =
  let sock =
    Host.Api.make_socket ~sock_id:c.id ~core:c.app_core
      ~send:(fun data ->
        charge_api t c;
        let free =
          Host.Payload_buf.size c.tx_buf - (c.tx_tail - c.tx_acked)
        in
        let n = min (Bytes.length data) free in
        if n > 0 then begin
          Host.Payload_buf.write c.tx_buf ~off:c.tx_tail ~src:data
            ~src_off:0 ~len:n;
          c.tx_tail <- c.tx_tail + n;
          pump t c
        end;
        n)
      ~recv:(fun ~max ->
        charge_api t c;
        let n = min max c.rx_ready in
        if n <= 0 then Bytes.empty
        else begin
          let out = Host.Payload_buf.read c.rx_buf ~off:c.rx_read ~len:n in
          c.rx_read <- c.rx_read + n;
          c.rx_ready <- c.rx_ready - n;
          let was_closed = c.rx_avail < t.prof.Profile.mss in
          c.rx_avail <- c.rx_avail + n;
          if was_closed && c.rx_avail >= t.prof.Profile.mss then
            Host.Host_cpu.exec c.stack_core ~category:"stack"
              ~cycles:(seg_cost t (t.prof.Profile.tx_seg_cycles / 4))
              (fun () -> transmit_frame t (ack_frame t c));
          out
        end)
      ~rx_available:(fun () -> c.rx_ready)
      ~tx_space:(fun () ->
        Host.Payload_buf.size c.tx_buf - (c.tx_tail - c.tx_acked))
      ~close:(fun () ->
        charge_api t c;
        c.tx_fin <- true;
        pump t c)
  in
  c.sock <- Some sock;
  sock

let next_app_core t =
  let core = Host.Host_cpu.core t.cpu (t.rr_core mod t.n_app_cores) in
  t.rr_core <- t.rr_core + 1;
  core

let make_conn t ~flow ~tx_isn ~rx_isn =
  let id = t.next_id in
  t.next_id <- id + 1;
  let app_core = next_app_core t in
  let c =
    {
      id;
      flow;
      tx_isn;
      rx_isn;
      app_core;
      stack_core = stack_core_for t id app_core;
      tx_buf = Host.Payload_buf.create ~size:t.prof.Profile.tx_buf_bytes;
      rx_buf = Host.Payload_buf.create ~size:t.prof.Profile.rx_buf_bytes;
      tx_tail = 0;
      tx_next = 0;
      tx_max = 0;
      tx_acked = 0;
      cwnd = 10 * t.prof.Profile.mss;
      ssthresh = max_int / 2;
      dupacks = 0;
      in_recovery = false;
      recover_pos = 0;
      remote_win = 0xFFFF lsl t.prof.Profile.window_scale;
      reasm = Tcp.Reassembly_multi.create ~next:(Seq32.add rx_isn 1);
      rx_avail = t.prof.Profile.rx_buf_bytes;
      rx_read = 0;
      rx_ready = 0;
      next_ts = 0;
      ece_pending = false;
      cwr_pending = false;
      ecn_cut_until = 0;
      rto_handle = None;
      rto_backoff = 1;
      tx_fin = false;
      fin_sent = false;
      fin_acked = false;
      rx_fin = false;
      pumping = false;
      notify_pending = 0;
      notify_armed = false;
      notify_ok_at = Sim.Time.zero;
      wnotify_armed = false;
      wnotify_ok_at = Sim.Time.zero;
      sock = None;
    }
  in
  Tcp.Flow.Tbl.replace t.conns flow c;
  Hashtbl.replace t.by_id id c;
  c

(* --- Handshake ------------------------------------------------------------ *)

let ctl_frame t ~flow ~seq ~ack_seq ~flags =
  let seg =
    S.make ~flags
      ~options:{ S.mss = Some t.prof.Profile.mss; ts = None }
      ~window:(scaled_window t t.prof.Profile.rx_buf_bytes)
      ~src_ip:flow.Tcp.Flow.local_ip ~dst_ip:flow.Tcp.Flow.remote_ip
      ~src_port:flow.Tcp.Flow.local_port
      ~dst_port:flow.Tcp.Flow.remote_port ~seq ~ack_seq ()
  in
  S.make_frame
    ~src_mac:(mac_of_ip flow.Tcp.Flow.local_ip)
    ~dst_mac:(mac_of_ip flow.Tcp.Flow.remote_ip)
    seg

let rec handshake_retry t flow attempt =
  Sim.Engine.schedule t.engine (Sim.Time.ms 5) (fun () ->
      match Tcp.Flow.Tbl.find_opt t.pending flow with
      | Some p when (not p.p_done) && attempt < 10 ->
          (match p.p_kind with
          | `Connect _ ->
              transmit_frame t
                (ctl_frame t ~flow ~seq:p.p_our_isn ~ack_seq:Seq32.zero
                   ~flags:{ S.no_flags with S.syn = true })
          | `Accept _ ->
              transmit_frame t
                (ctl_frame t ~flow ~seq:p.p_our_isn
                   ~ack_seq:(Seq32.succ p.p_peer_isn)
                   ~flags:{ S.no_flags with S.syn = true; ack = true }));
          handshake_retry t flow (attempt + 1)
      | Some p when (not p.p_done) && attempt >= 10 -> begin
          Tcp.Flow.Tbl.remove t.pending flow;
          match p.p_kind with
          | `Connect k -> k (Error "connection timed out")
          | `Accept _ -> ()
        end
      | _ -> ())

let finish_handshake t (p : pending) =
  p.p_done <- true;
  Tcp.Flow.Tbl.remove t.pending p.p_flow;
  let c =
    make_conn t ~flow:p.p_flow ~tx_isn:p.p_our_isn ~rx_isn:p.p_peer_isn
  in
  let sock = make_socket t c in
  match p.p_kind with
  | `Accept k -> k sock
  | `Connect k -> k (Ok sock)

let handle_ctl t (frame : S.frame) =
  let seg = frame.S.seg in
  let flow = Tcp.Flow.of_segment_rx seg in
  match Tcp.Flow.Tbl.find_opt t.pending flow with
  | Some p ->
      if seg.S.flags.S.syn && seg.S.flags.S.ack then begin
        match p.p_kind with
        | `Connect _ when not p.p_done ->
            p.p_peer_isn <- seg.S.seq;
            transmit_frame t
              (ctl_frame t ~flow ~seq:(Seq32.succ p.p_our_isn)
                 ~ack_seq:(Seq32.succ seg.S.seq)
                 ~flags:S.flags_ack);
            finish_handshake t p
        | _ -> ()
      end
      else if (not seg.S.flags.S.syn) && seg.S.flags.S.ack && not p.p_done
      then begin
        finish_handshake t p;
        (* The third-way ACK may carry data. *)
        if S.payload_len seg > 0 then
          match Tcp.Flow.Tbl.find_opt t.conns flow with
          | Some c -> process_segment t c frame
          | None -> ()
      end
  | None ->
      if seg.S.flags.S.syn && not seg.S.flags.S.ack then begin
        match Hashtbl.find_opt t.listeners seg.S.dst_port with
        | None -> ()
        | Some on_accept ->
            let our_isn = Seq32.of_int (Sim.Rng.int t.rng 0x3FFFFFFF) in
            let p =
              {
                p_flow = flow;
                p_our_isn = our_isn;
                p_peer_isn = seg.S.seq;
                p_kind = `Accept on_accept;
                p_done = false;
              }
            in
            Tcp.Flow.Tbl.replace t.pending flow p;
            transmit_frame t
              (ctl_frame t ~flow ~seq:our_isn
                 ~ack_seq:(Seq32.succ seg.S.seq)
                 ~flags:{ S.no_flags with S.syn = true; ack = true });
            handshake_retry t flow 0
      end

let rx_frame t (frame : S.frame) =
  t.seg_rx <- t.seg_rx + 1;
  via_nic t (fun () ->
      let seg = frame.S.seg in
      let flow = Tcp.Flow.of_segment_rx seg in
      match Tcp.Flow.Tbl.find_opt t.conns flow with
      | Some c when not seg.S.flags.S.syn ->
          let cost =
            if S.payload_len seg > 0 then t.prof.Profile.rx_seg_cycles
            else t.prof.Profile.rx_seg_cycles / 4
          in
          Host.Host_cpu.exec c.stack_core ~category:"stack"
            ~cycles:(seg_cost t cost)
            (fun () -> process_segment t c frame)
      | _ -> handle_ctl t frame)

(* --- Construction ----------------------------------------------------------- *)

let debug_conns t =
  Hashtbl.fold
    (fun _ c acc ->
      (c.tx_next - c.tx_acked, c.cwnd, c.remote_win,
       c.tx_tail - c.tx_next, c.rx_avail, c.rx_ready)
      :: acc)
    t.by_id []

let endpoint t = Option.get !(t.endpoint)

let create engine ~fabric ~profile:prof ~ip ?(app_cores = 1)
    ?(wire_gbps = 40.0) () =
  let extra =
    match prof.Profile.placement with
    | Profile.Inline -> 0
    | Profile.Dedicated n -> n
  in
  let cpu = Host.Host_cpu.create engine ~cores:(app_cores + extra) () in
  Host.Host_cpu.set_noise cpu
    ~interval_cycles:prof.Profile.noise_interval_cycles
    ~mean_cycles:prof.Profile.noise_mean_cycles;
  let endpoint_ref = ref None in
  let rec t =
    lazy
      {
        engine;
        prof;
        cpu;
        port =
          Netsim.Fabric.add_port fabric ~rate_gbps:wire_gbps
            ~mac:(mac_of_ip ip) ~ip
            ~rx:(fun frame -> rx_frame (Lazy.force t) frame)
            ();
        ip;
        n_app_cores = app_cores;
        conns = Tcp.Flow.Tbl.create 256;
        by_id = Hashtbl.create 256;
        pending = Tcp.Flow.Tbl.create 64;
        listeners = Hashtbl.create 8;
        rng = Sim.Rng.split (Sim.Engine.Local.rng engine);
        next_id = 0;
        next_port = 41_000;
        rr_core = 0;
        nic_free = Sim.Time.zero;
        seg_rx = 0;
        seg_tx = 0;
        retx = 0;
        rto_count = 0;
        endpoint = endpoint_ref;
      }
  in
  let t = Lazy.force t in
  endpoint_ref :=
    Some
      {
        Host.Api.listen =
          (fun ~port ~on_accept -> Hashtbl.replace t.listeners port on_accept);
        connect =
          (fun ~remote_ip ~remote_port ~on_connected ->
            let local_port = t.next_port in
            t.next_port <- local_port + 1;
            let flow =
              Tcp.Flow.v ~local_ip:ip ~local_port ~remote_ip ~remote_port
            in
            let our_isn = Seq32.of_int (Sim.Rng.int t.rng 0x3FFFFFFF) in
            let p =
              {
                p_flow = flow;
                p_our_isn = our_isn;
                p_peer_isn = Seq32.zero;
                p_kind = `Connect on_connected;
                p_done = false;
              }
            in
            Tcp.Flow.Tbl.replace t.pending flow p;
            transmit_frame t
              (ctl_frame t ~flow ~seq:our_isn ~ack_seq:Seq32.zero
                 ~flags:{ S.no_flags with S.syn = true });
            handshake_retry t flow 0);
        local_ip = ip;
        app_core = Host.Host_cpu.core cpu 0;
      };
  t
