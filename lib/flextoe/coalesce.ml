(* Pure GRO/TSO descriptor arithmetic (§3.4 batching).

   Kept free of datapath state so the property tests can check the
   round-trip laws directly: [split_payload] inverts payload
   concatenation, and [split_desc] re-derives exactly the wire frames
   an unbatched sender would have produced (same sequence numbers,
   same FIN/CWR placement). *)

module Seq32 = Tcp.Seq32

(* The sequence number one past [s]'s payload: a following segment is
   GRO-chainable iff its [seq] equals this. *)
let chain_next (s : Meta.rx_summary) =
  Seq32.add s.Meta.seq (Bytes.length s.Meta.payload)

let chainable ~next (s : Meta.rx_summary) =
  Bytes.length s.Meta.payload > 0 && Seq32.diff s.Meta.seq next = 0

(* Merge adjacent in-sequence segments (oldest first) into one
   descriptor. Identity carried by the head (gseq, seq); acknowledgment
   state by the newest acking segment (cumulative ACKs supersede);
   event flags OR together (an ECN mark anywhere in the window must
   survive the merge); FIN can only be the tail's — a mid-batch FIN is
   not chainable in the first place. *)
let merge = function
  | [] -> invalid_arg "Coalesce.merge: empty"
  | [ s ] -> s
  | head :: _ as segs ->
      let last = List.nth segs (List.length segs - 1) in
      let payload =
        Bytes.concat Bytes.empty (List.map (fun s -> s.Meta.payload) segs)
      in
      let has_ack = List.exists (fun s -> s.Meta.has_ack) segs in
      let ack_seq, wnd =
        List.fold_left
          (fun acc s -> if s.Meta.has_ack then (s.Meta.ack_seq, s.Meta.wnd) else acc)
          (head.Meta.ack_seq, head.Meta.wnd)
          segs
      in
      {
        head with
        Meta.payload;
        has_ack;
        ack_seq;
        wnd;
        fin = last.Meta.fin;
        psh = List.exists (fun s -> s.Meta.psh) segs;
        ece = List.exists (fun s -> s.Meta.ece) segs;
        cwr = List.exists (fun s -> s.Meta.cwr) segs;
        ecn_ce = List.exists (fun s -> s.Meta.ecn_ce) segs;
        ts = last.Meta.ts;
        arrival = last.Meta.arrival;
      }

(* Cut a payload into MSS-sized wire chunks (last may be short). *)
let split_payload ~mss payload =
  let len = Bytes.length payload in
  if len <= mss then [ payload ]
  else begin
    let n = (len + mss - 1) / mss in
    List.init n (fun i ->
        let off = i * mss in
        Bytes.sub payload off (min mss (len - off)))
  end

(* Number of wire frames a TSO descriptor of [len] bytes becomes. *)
let split_count ~mss len = if len <= mss then 1 else (len + mss - 1) / mss

(* Expand a TSO descriptor back into per-frame descriptors: chunk [i]
   starts [i*mss] into the stream (sequence numbers wrap mod 2^32),
   FIN rides the last frame only, CWR the first only. ACK/window are
   replicated — they are receiver state, identical across the burst. *)
let split_desc ~mss (d : Meta.tx_desc) payload =
  let chunks = split_payload ~mss payload in
  let n = List.length chunks in
  List.mapi
    (fun i chunk ->
      let off = i * mss in
      let dc =
        {
          d with
          Meta.t_pos = d.Meta.t_pos + off;
          t_len = Bytes.length chunk;
          t_seq = Seq32.add d.Meta.t_seq off;
          t_fin = d.Meta.t_fin && i = n - 1;
          t_cwr = d.Meta.t_cwr && i = 0;
        }
      in
      (dc, chunk))
    chunks
