(** Pure GRO/TSO descriptor arithmetic for the batched datapath
    (§3.4): merging adjacent in-sequence RX segments into one
    descriptor, and splitting oversized TX descriptors back into wire
    frames at the NBI. Stateless, so the property suite can check the
    round-trip laws ([split ∘ merge] preserves payload bytes and
    sequence numbering, across 2^32 wraparound) without a datapath. *)

val chain_next : Meta.rx_summary -> Tcp.Seq32.t
(** Sequence number one past the segment's payload: the [seq] the next
    chainable segment must carry. *)

val chainable : next:Tcp.Seq32.t -> Meta.rx_summary -> bool
(** Data-bearing and exactly in sequence at [next]. Pure ACKs are
    never chainable (they must reach the protocol stage individually
    or duplicate-ACK counting breaks). *)

val merge : Meta.rx_summary list -> Meta.rx_summary
(** Merge adjacent in-sequence segments (oldest first) into one
    descriptor: head's identity (gseq, seq), concatenated payload,
    newest acknowledgment state, OR-ed event flags, tail's FIN.
    Raises [Invalid_argument] on the empty list. *)

val split_payload : mss:int -> Bytes.t -> Bytes.t list
(** Cut into MSS-sized chunks, last possibly short; concatenating the
    result is the identity. *)

val split_count : mss:int -> int -> int
(** Frames a TSO descriptor of the given payload length becomes. *)

val split_desc :
  mss:int -> Meta.tx_desc -> Bytes.t -> (Meta.tx_desc * Bytes.t) list
(** Expand a TSO descriptor into per-frame descriptors: chunk [i]
    shifts position and sequence by [i*mss] (mod 2^32), FIN on the
    last frame only, CWR on the first only. *)
