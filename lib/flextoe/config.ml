type parallelism = {
  pipelined : bool;
  fpc_threads : int;
  preproc_replicas : int;
  postproc_replicas : int;
  proto_replicas : int;
  flow_groups : int;
  dma_replicas : int;
  ctx_replicas : int;
}

type stage_costs = {
  preproc_validate : int;
  preproc_csum : int;
  preproc_lookup_hit : int;
  preproc_summary : int;
  protocol_rx : int;
  protocol_rx_ack : int;
  protocol_tx : int;
  protocol_hc : int;
  postproc_rx : int;
  postproc_tx : int;
  dma_desc : int;
  ctx_desc : int;
  sequencer : int;
  scheduler_pick : int;
  xdp_dispatch : int;
  tracepoint : int;
  pcap_capture : int;
  (* Batching cost model: one fixed cost per batch (the stage's usual
     cost) plus a per-unit variable cost below for each extra unit the
     batch carries. Charged only on batch>1 paths. *)
  gro_merge : int;  (** Per absorbed segment when GRO coalesces. *)
  tso_split : int;  (** Per extra wire frame split from a TSO descriptor. *)
  dma_doorbell : int;  (** Fixed per doorbell-batch flush. *)
  notify_coalesce : int;  (** Per absorbed ARX notification. *)
}

(** Batching degrees at each pipeline boundary (§3.4): how many units
    amortize one fixed cost. All 1 = today's per-segment behavior,
    bit-identical to the unbatched pipeline (the batch>1 code paths
    are never entered). *)
type batch = {
  b_gro : int;  (** Adjacent in-order RX segments merged per GRO descriptor. *)
  b_tso : int;  (** MSS units per TX descriptor; split at the NBI. *)
  b_doorbell : int;  (** DMA descriptors rung per doorbell. *)
  b_completion : int;  (** DMA completions coalesced per delivery. *)
  b_notify : int;  (** ARX notifications coalesced per context-queue DMA. *)
}

let batch_none =
  { b_gro = 1; b_tso = 1; b_doorbell = 1; b_completion = 1; b_notify = 1 }

let batch_of n =
  let n = max 1 n in
  { b_gro = n; b_tso = n; b_doorbell = n; b_completion = n; b_notify = n }

(** FlexGuard: overload control and graceful degradation under
    connection churn. Everything is off by default ([guard_none]) —
    the guarded code paths are never entered and no extra engine
    events are scheduled, keeping default-config runs bit-identical
    to the unguarded pipeline. *)
type guard = {
  g_on : bool;  (** Master enable; false = all mechanisms dormant. *)
  g_syn_backlog : int;
      (** Max half-open handshakes held statefully; 0 = unbounded. *)
  g_syn_cookies : bool;
      (** Stateless SYN-cookie fallback once the backlog is full. *)
  g_syn_retries : int;  (** Max SYN / SYN-ACK retransmissions. *)
  g_syn_retry_base : Sim.Time.t;  (** First retry delay (doubles). *)
  g_syn_retry_max : Sim.Time.t;  (** Backoff ceiling. *)
  g_max_conns : int;
      (** Admission cap on established + half-open connections;
          0 = unlimited. *)
  g_time_wait : Sim.Time.t;
      (** TIME_WAIT hold after both directions close; 0 = immediate
          free (the pre-FlexGuard behavior). *)
  g_time_wait_max : int;
      (** TIME_WAIT table cap; under pressure the oldest entry is
          recycled. 0 = unbounded. *)
  g_idle_timeout : Sim.Time.t;
      (** Reap FIN_WAIT/half-closed connections idle this long. *)
  g_reap_interval : Sim.Time.t;  (** Reaper loop period. *)
  g_cp_queue : int;
      (** Bound on control-path frames in flight to the CP; beyond it
          the NBI sheds newest SYNs first (never established-flow
          segments). 0 = unbounded. *)
  g_rst : bool;  (** RST generation and handling. *)
  g_evict_caches : bool;
      (** Invalidate the CAM/CLS/EMEM entries of a removed connection
          so churn does not poison the cache hierarchy. *)
}

let guard_none =
  {
    g_on = false;
    g_syn_backlog = 0;
    g_syn_cookies = false;
    g_syn_retries = 10;
    g_syn_retry_base = Sim.Time.ms 5;
    g_syn_retry_max = Sim.Time.ms 5;
    g_max_conns = 0;
    g_time_wait = Sim.Time.zero;
    g_time_wait_max = 0;
    g_idle_timeout = Sim.Time.zero;
    g_reap_interval = Sim.Time.ms 1;
    g_cp_queue = 0;
    g_rst = false;
    g_evict_caches = false;
  }

let guard_default =
  {
    g_on = true;
    g_syn_backlog = 64;
    g_syn_cookies = true;
    g_syn_retries = 6;
    g_syn_retry_base = Sim.Time.ms 1;
    g_syn_retry_max = Sim.Time.ms 8;
    g_max_conns = 0;
    g_time_wait = Sim.Time.ms 10;
    g_time_wait_max = 4096;
    g_idle_timeout = Sim.Time.ms 20;
    g_reap_interval = Sim.Time.ms 1;
    g_cp_queue = 64;
    g_rst = true;
    g_evict_caches = true;
  }

(** FlexScale: sharded flow-group pipelines (DESIGN.md §17). Off by
    default ([scale_none]) — the sharded code paths are never entered
    and behavior is bit-identical to the single-pipeline datapath.
    With [s_on] and [s_shards = 1] the sharded wiring is exercised but
    degenerates to the same single EMEM cache and steering, which the
    golden-trace gate pins bit-for-bit. *)
type scale = {
  s_on : bool;  (** Master enable; false = single-pipeline wiring. *)
  s_shards : int;
      (** Replicated protocol-stage pipelines; flow groups steer to
          shard [fg mod s_shards]. *)
  s_emem_flows : int;
      (** EMEM capacity-pressure model: connections resident before
          per-flow state overflows the cached working set and misses
          start paying the full DRAM penalty; 0 disables pressure
          accounting. *)
  s_pin_hot : bool;
      (** Never silently evict an Established flow's hot EMEM-cache
          state: hot entries are pinned and eviction prefers cold
          (closing/TIME_WAIT) state. *)
}

let scale_none =
  { s_on = false; s_shards = 1; s_emem_flows = 0; s_pin_hot = false }

let scale_of n =
  { s_on = true; s_shards = max 1 n; s_emem_flows = 0; s_pin_hot = true }

type congestion_control = Dctcp | Timely | Cc_none

type scope_mode = Scope_off | Scope_metrics | Scope_full

type t = {
  params : Nfp.Params.t;
  parallelism : parallelism;
  costs : stage_costs;
  rx_buf_bytes : int;
  tx_buf_bytes : int;
  mss : int;
  delayed_acks : bool;
  window_scale : int;
  rto : Sim.Time.t;
  rto_max : Sim.Time.t;
  max_rto_retries : int;
  cc : congestion_control;
  cc_interval : Sim.Time.t;
  wheel_slot : Sim.Time.t;
  wheel_slots : int;
  libtoe_poll : Sim.Time.t;
  sockets_api_cycles : int;
  notify_cycles : int;
  san : bool;  (** Enable the FlexSan dynamic sanitizer (layer 2). *)
  scope : scope_mode;  (** FlexScope profiling (off / metrics / full). *)
  batch : batch;  (** Pipeline-boundary batching degrees. *)
  batch_delay : Sim.Time.t;
      (** How long a partial batch (GRO window, doorbell ring, ARX
          accumulator) may be held before a timer flushes it. *)
  guard : guard;  (** FlexGuard overload control ([guard_none] off). *)
  scale : scale;  (** FlexScale sharding ([scale_none] off). *)
}

let default_costs =
  {
    preproc_validate = 50;
    preproc_csum = 30;
    preproc_lookup_hit = 25;
    preproc_summary = 55;
    protocol_rx = 90;
    protocol_rx_ack = 45;
    protocol_tx = 60;
    protocol_hc = 40;
    postproc_rx = 100;
    postproc_tx = 70;
    dma_desc = 50;
    ctx_desc = 50;
    sequencer = 15;
    scheduler_pick = 25;
    xdp_dispatch = 45;
    tracepoint = 6;
    pcap_capture = 650;
    gro_merge = 20;
    tso_split = 15;
    dma_doorbell = 30;
    notify_coalesce = 25;
  }

let t3_flow_groups =
  {
    pipelined = true;
    fpc_threads = 8;
    preproc_replicas = 4;
    postproc_replicas = 4;
    proto_replicas = 2;
    flow_groups = 4;
    dma_replicas = 4;
    ctx_replicas = 4;
  }

let t3_replicated =
  { t3_flow_groups with flow_groups = 1; proto_replicas = 1 }
let t3_threads = { t3_replicated with preproc_replicas = 1;
                   postproc_replicas = 1 }
let t3_pipelined = { t3_threads with fpc_threads = 1 }
let t3_baseline = { t3_pipelined with pipelined = false }

(* FLEXSAN=1 in the environment turns the sanitizer on for every
   default-configured node — how the CI sanitizer job runs the whole
   test suite instrumented without per-test plumbing. *)
let san_env =
  match Sys.getenv_opt "FLEXSAN" with
  | Some ("1" | "on" | "true" | "yes") -> true
  | _ -> false

(* FLEXSCOPE=1 (or =full / =metrics) turns the profiler on for every
   default-configured node, mirroring FLEXSAN: an instrumented run of
   any bench or test needs no per-callsite plumbing. *)
let scope_env =
  match Sys.getenv_opt "FLEXSCOPE" with
  | Some ("1" | "on" | "true" | "yes" | "full") -> Scope_full
  | Some ("metrics" | "metrics-only") -> Scope_metrics
  | _ -> Scope_off

(* FLEXGUARD=1 arms the overload-control layer for every
   default-configured node, mirroring FLEXSAN/FLEXSCOPE: the churn CI
   job runs the whole suite guarded without per-test plumbing. *)
let guard_env =
  match Sys.getenv_opt "FLEXGUARD" with
  | Some ("1" | "on" | "true" | "yes") -> guard_default
  | _ -> guard_none

let default =
  {
    params = Nfp.Params.default;
    parallelism = t3_flow_groups;
    costs = default_costs;
    rx_buf_bytes = 256 * 1024;
    tx_buf_bytes = 256 * 1024;
    mss = Tcp.Segment.mss_with_timestamps;
    delayed_acks = false;
    window_scale = 7;
    rto = Sim.Time.ms 2;
    rto_max = Sim.Time.ms 32;
    max_rto_retries = 8;
    cc = Dctcp;
    cc_interval = Sim.Time.us 50;
    wheel_slot = Sim.Time.us 2;
    wheel_slots = 4096;
    libtoe_poll = Sim.Time.us 1;
    sockets_api_cycles = 310;
    notify_cycles = 60;
    san = san_env;
    scope = scope_env;
    batch = batch_none;
    batch_delay = Sim.Time.us 1;
    guard = guard_env;
    scale = scale_none;
  }

let with_parallelism t p = { t with parallelism = p }
