type parallelism = {
  pipelined : bool;
  fpc_threads : int;
  preproc_replicas : int;
  postproc_replicas : int;
  proto_replicas : int;
  flow_groups : int;
  dma_replicas : int;
  ctx_replicas : int;
}

type stage_costs = {
  preproc_validate : int;
  preproc_csum : int;
  preproc_lookup_hit : int;
  preproc_summary : int;
  protocol_rx : int;
  protocol_rx_ack : int;
  protocol_tx : int;
  protocol_hc : int;
  postproc_rx : int;
  postproc_tx : int;
  dma_desc : int;
  ctx_desc : int;
  sequencer : int;
  scheduler_pick : int;
  xdp_dispatch : int;
  tracepoint : int;
  pcap_capture : int;
  (* Batching cost model: one fixed cost per batch (the stage's usual
     cost) plus a per-unit variable cost below for each extra unit the
     batch carries. Charged only on batch>1 paths. *)
  gro_merge : int;  (** Per absorbed segment when GRO coalesces. *)
  tso_split : int;  (** Per extra wire frame split from a TSO descriptor. *)
  dma_doorbell : int;  (** Fixed per doorbell-batch flush. *)
  notify_coalesce : int;  (** Per absorbed ARX notification. *)
}

(** Batching degrees at each pipeline boundary (§3.4): how many units
    amortize one fixed cost. All 1 = today's per-segment behavior,
    bit-identical to the unbatched pipeline (the batch>1 code paths
    are never entered). *)
type batch = {
  b_gro : int;  (** Adjacent in-order RX segments merged per GRO descriptor. *)
  b_tso : int;  (** MSS units per TX descriptor; split at the NBI. *)
  b_doorbell : int;  (** DMA descriptors rung per doorbell. *)
  b_completion : int;  (** DMA completions coalesced per delivery. *)
  b_notify : int;  (** ARX notifications coalesced per context-queue DMA. *)
}

let batch_none =
  { b_gro = 1; b_tso = 1; b_doorbell = 1; b_completion = 1; b_notify = 1 }

let batch_of n =
  let n = max 1 n in
  { b_gro = n; b_tso = n; b_doorbell = n; b_completion = n; b_notify = n }

type congestion_control = Dctcp | Timely | Cc_none

type scope_mode = Scope_off | Scope_metrics | Scope_full

type t = {
  params : Nfp.Params.t;
  parallelism : parallelism;
  costs : stage_costs;
  rx_buf_bytes : int;
  tx_buf_bytes : int;
  mss : int;
  delayed_acks : bool;
  window_scale : int;
  rto : Sim.Time.t;
  rto_max : Sim.Time.t;
  max_rto_retries : int;
  cc : congestion_control;
  cc_interval : Sim.Time.t;
  wheel_slot : Sim.Time.t;
  wheel_slots : int;
  libtoe_poll : Sim.Time.t;
  sockets_api_cycles : int;
  notify_cycles : int;
  san : bool;  (** Enable the FlexSan dynamic sanitizer (layer 2). *)
  scope : scope_mode;  (** FlexScope profiling (off / metrics / full). *)
  batch : batch;  (** Pipeline-boundary batching degrees. *)
  batch_delay : Sim.Time.t;
      (** How long a partial batch (GRO window, doorbell ring, ARX
          accumulator) may be held before a timer flushes it. *)
}

let default_costs =
  {
    preproc_validate = 50;
    preproc_csum = 30;
    preproc_lookup_hit = 25;
    preproc_summary = 55;
    protocol_rx = 90;
    protocol_rx_ack = 45;
    protocol_tx = 60;
    protocol_hc = 40;
    postproc_rx = 100;
    postproc_tx = 70;
    dma_desc = 50;
    ctx_desc = 50;
    sequencer = 15;
    scheduler_pick = 25;
    xdp_dispatch = 45;
    tracepoint = 6;
    pcap_capture = 650;
    gro_merge = 20;
    tso_split = 15;
    dma_doorbell = 30;
    notify_coalesce = 25;
  }

let t3_flow_groups =
  {
    pipelined = true;
    fpc_threads = 8;
    preproc_replicas = 4;
    postproc_replicas = 4;
    proto_replicas = 2;
    flow_groups = 4;
    dma_replicas = 4;
    ctx_replicas = 4;
  }

let t3_replicated =
  { t3_flow_groups with flow_groups = 1; proto_replicas = 1 }
let t3_threads = { t3_replicated with preproc_replicas = 1;
                   postproc_replicas = 1 }
let t3_pipelined = { t3_threads with fpc_threads = 1 }
let t3_baseline = { t3_pipelined with pipelined = false }

(* FLEXSAN=1 in the environment turns the sanitizer on for every
   default-configured node — how the CI sanitizer job runs the whole
   test suite instrumented without per-test plumbing. *)
let san_env =
  match Sys.getenv_opt "FLEXSAN" with
  | Some ("1" | "on" | "true" | "yes") -> true
  | _ -> false

(* FLEXSCOPE=1 (or =full / =metrics) turns the profiler on for every
   default-configured node, mirroring FLEXSAN: an instrumented run of
   any bench or test needs no per-callsite plumbing. *)
let scope_env =
  match Sys.getenv_opt "FLEXSCOPE" with
  | Some ("1" | "on" | "true" | "yes" | "full") -> Scope_full
  | Some ("metrics" | "metrics-only") -> Scope_metrics
  | _ -> Scope_off

let default =
  {
    params = Nfp.Params.default;
    parallelism = t3_flow_groups;
    costs = default_costs;
    rx_buf_bytes = 256 * 1024;
    tx_buf_bytes = 256 * 1024;
    mss = Tcp.Segment.mss_with_timestamps;
    delayed_acks = false;
    window_scale = 7;
    rto = Sim.Time.ms 2;
    rto_max = Sim.Time.ms 32;
    max_rto_retries = 8;
    cc = Dctcp;
    cc_interval = Sim.Time.us 50;
    wheel_slot = Sim.Time.us 2;
    wheel_slots = 4096;
    libtoe_poll = Sim.Time.us 1;
    sockets_api_cycles = 310;
    notify_cycles = 60;
    san = san_env;
    scope = scope_env;
    batch = batch_none;
    batch_delay = Sim.Time.us 1;
  }

let with_parallelism t p = { t with parallelism = p }
