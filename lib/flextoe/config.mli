(** FlexTOE configuration: parallelism knobs, stage cost model, and
    protocol parameters.

    The parallelism record exposes exactly the levers of the paper's
    Table 3 ablation: run-to-completion vs pipelined stages, hardware
    threads per FPC, pre/post-processing replication, and the number
    of flow-group islands. Replication factors are manual and static,
    as in the paper (§3.3). *)

type parallelism = {
  pipelined : bool;
      (** [false]: the whole data path runs to completion on a single
          FPC, one segment at a time (the Table 3 baseline). *)
  fpc_threads : int;  (** Hardware threads per FPC (1 or 8). *)
  preproc_replicas : int;  (** Pre-processor FPCs per flow group. *)
  postproc_replicas : int;  (** Post-processor FPCs per flow group. *)
  proto_replicas : int;
      (** Protocol FPCs per flow group; connections shard across them
          by index, keeping per-connection atomicity (the paper's
          connection-scalability benchmark runs the protocol stage on
          8 FPCs, two per island). *)
  flow_groups : int;  (** Protocol islands (1..4 on the Agilio CX). *)
  dma_replicas : int;  (** DMA-manager FPCs on the service island. *)
  ctx_replicas : int;  (** Context-queue FPCs. *)
}

(** Per-stage instruction budgets, in FPC cycles. These calibrate the
    simulation; see DESIGN.md §6 for how they were chosen. *)
type stage_costs = {
  preproc_validate : int;
  preproc_csum : int;
      (** TCP checksum verification: fixed overhead of driving the CRC
          unit; the per-byte part is derived from the frame length in
          the pre-processor. *)
  preproc_lookup_hit : int;  (** Local lookup-cache hit. *)
  preproc_summary : int;
  protocol_rx : int;  (** Data-bearing segment. *)
  protocol_rx_ack : int;  (** Pure-ACK segment. *)
  protocol_tx : int;
  protocol_hc : int;
  postproc_rx : int;
  postproc_tx : int;
  dma_desc : int;
  ctx_desc : int;
  sequencer : int;
  scheduler_pick : int;
  xdp_dispatch : int;  (** Fixed overhead of an enabled XDP hook. *)
  tracepoint : int;  (** Per enabled tracepoint, per segment. *)
  pcap_capture : int;  (** Per captured packet. *)
  gro_merge : int;
      (** Per absorbed segment when GRO coalesces adjacent in-order
          segments into one descriptor (batch>1 only). *)
  tso_split : int;
      (** Per extra wire frame split out of a TSO descriptor at the
          NBI boundary (batch>1 only). *)
  dma_doorbell : int;  (** Fixed cost per doorbell-batch flush. *)
  notify_coalesce : int;
      (** Per absorbed ARX notification when coalescing (batch>1
          only). *)
}

(** Batching degrees at each pipeline boundary (§3.4): how many units
    amortize one fixed cost. All 1 (the default) preserves today's
    per-segment behavior bit for bit — the batch>1 code paths are
    never entered. *)
type batch = {
  b_gro : int;
      (** Adjacent in-sequence RX data segments of a flow merged into
          one descriptor before protocol processing. *)
  b_tso : int;
      (** MSS units one TX descriptor may carry; the NBI splits the
          descriptor back into wire frames. *)
  b_doorbell : int;  (** DMA descriptors rung per doorbell. *)
  b_completion : int;  (** DMA completions coalesced per delivery. *)
  b_notify : int;
      (** ARX notifications per connection coalesced into one
          context-queue DMA and host wakeup. *)
}

val batch_none : batch
(** All degrees 1: bit-identical to the unbatched pipeline. *)

val batch_of : int -> batch
(** Uniform batching degree at every boundary (clamped to >= 1). *)

type congestion_control = Dctcp | Timely | Cc_none

(** FlexScope profiling level. [Scope_off] leaves every data-path
    hook as a single branch on an immutable option; [Scope_metrics]
    records per-stage cycle histograms, counters, series aggregates
    and the flight recorder; [Scope_full] additionally buffers Chrome
    [trace_event] records for export. *)
type scope_mode = Scope_off | Scope_metrics | Scope_full

type t = {
  params : Nfp.Params.t;
  parallelism : parallelism;
  costs : stage_costs;
  rx_buf_bytes : int;
  tx_buf_bytes : int;
  mss : int;
  delayed_acks : bool;
      (** The paper's FlexTOE acknowledges every incoming data segment
          (the default here, matching §5.2); enabling this coalesces
          ACKs — every second in-order segment is acknowledged, with
          out-of-order/duplicate/FIN segments acknowledged immediately
          and the control plane flushing stragglers (FPCs have no
          timers). Listed by the paper as a further improvement for
          large bidirectional flows. *)
  window_scale : int;
      (** Fixed window-scale shift assumed on both ends (no SYN
          negotiation is modelled); data-center defaults need windows
          larger than 64 KB. *)
  rto : Sim.Time.t;
      (** Control-plane retransmission timeout (initial value; the
          per-connection timeout doubles on each consecutive timeout —
          exponential backoff — and resets on forward progress). *)
  rto_max : Sim.Time.t;  (** Backoff ceiling. *)
  max_rto_retries : int;
      (** Consecutive timeouts without progress before the control
          plane aborts the connection and notifies the application. *)
  cc : congestion_control;
  cc_interval : Sim.Time.t;  (** Control-plane iteration interval. *)
  wheel_slot : Sim.Time.t;  (** Carousel time-wheel slot granularity. *)
  wheel_slots : int;  (** Time-wheel horizon, in slots. *)
  libtoe_poll : Sim.Time.t;  (** libTOE context-queue polling period. *)
  sockets_api_cycles : int;
      (** Host cycles charged per socket call (Table 1: 0.74 kc per
          request covers send+recv+poll). *)
  notify_cycles : int;  (** Host cycles to consume one ARX entry. *)
  san : bool;
      (** Enable the FlexSan dynamic sanitizer (layer 2): instrument
          every stage's shared-state accesses and check them against
          happens-before. Simulated timing is unchanged; host-side
          cost only. Ignored (off) for run-to-completion
          configurations — single-FPC execution serializes everything
          by construction. *)
  scope : scope_mode;
      (** Enable the FlexScope segment-lifecycle profiler: typed
          spans with per-stage cycle attribution, the per-FPC
          utilization sampler, and the per-connection flight
          recorder. Simulated timing is unchanged (profiling is
          host-side observation, like FlexSan); the modelled cost of
          {e tracepoints} remains a separate, per-point opt-in via
          {!Sim.Trace}. *)
  batch : batch;
      (** Pipeline-boundary batching degrees ({!batch_none} by
          default). *)
  batch_delay : Sim.Time.t;
      (** How long a partial batch (GRO window, doorbell ring, ARX
          accumulator) may be held before a timer flushes it. *)
}

val default : t
(** [default.san] follows the [FLEXSAN] environment variable
    ([1]/[on]/[true]/[yes] enable it), so an instrumented run of the
    whole test suite needs no per-test plumbing. [default.scope]
    likewise follows [FLEXSCOPE] ([1]/[on]/[true]/[yes]/[full] for
    {!Scope_full}, [metrics] for {!Scope_metrics}). *)

val with_parallelism : t -> parallelism -> t

(** Table 3 presets, cumulative left to right. *)

val t3_baseline : parallelism
val t3_pipelined : parallelism
val t3_threads : parallelism
val t3_replicated : parallelism
val t3_flow_groups : parallelism
