(** FlexTOE configuration: parallelism knobs, stage cost model, and
    protocol parameters.

    The parallelism record exposes exactly the levers of the paper's
    Table 3 ablation: run-to-completion vs pipelined stages, hardware
    threads per FPC, pre/post-processing replication, and the number
    of flow-group islands. Replication factors are manual and static,
    as in the paper (§3.3). *)

type parallelism = {
  pipelined : bool;
      (** [false]: the whole data path runs to completion on a single
          FPC, one segment at a time (the Table 3 baseline). *)
  fpc_threads : int;  (** Hardware threads per FPC (1 or 8). *)
  preproc_replicas : int;  (** Pre-processor FPCs per flow group. *)
  postproc_replicas : int;  (** Post-processor FPCs per flow group. *)
  proto_replicas : int;
      (** Protocol FPCs per flow group; connections shard across them
          by index, keeping per-connection atomicity (the paper's
          connection-scalability benchmark runs the protocol stage on
          8 FPCs, two per island). *)
  flow_groups : int;  (** Protocol islands (1..4 on the Agilio CX). *)
  dma_replicas : int;  (** DMA-manager FPCs on the service island. *)
  ctx_replicas : int;  (** Context-queue FPCs. *)
}

(** Per-stage instruction budgets, in FPC cycles. These calibrate the
    simulation; see DESIGN.md §6 for how they were chosen. *)
type stage_costs = {
  preproc_validate : int;
  preproc_csum : int;
      (** TCP checksum verification: fixed overhead of driving the CRC
          unit; the per-byte part is derived from the frame length in
          the pre-processor. *)
  preproc_lookup_hit : int;  (** Local lookup-cache hit. *)
  preproc_summary : int;
  protocol_rx : int;  (** Data-bearing segment. *)
  protocol_rx_ack : int;  (** Pure-ACK segment. *)
  protocol_tx : int;
  protocol_hc : int;
  postproc_rx : int;
  postproc_tx : int;
  dma_desc : int;
  ctx_desc : int;
  sequencer : int;
  scheduler_pick : int;
  xdp_dispatch : int;  (** Fixed overhead of an enabled XDP hook. *)
  tracepoint : int;  (** Per enabled tracepoint, per segment. *)
  pcap_capture : int;  (** Per captured packet. *)
  gro_merge : int;
      (** Per absorbed segment when GRO coalesces adjacent in-order
          segments into one descriptor (batch>1 only). *)
  tso_split : int;
      (** Per extra wire frame split out of a TSO descriptor at the
          NBI boundary (batch>1 only). *)
  dma_doorbell : int;  (** Fixed cost per doorbell-batch flush. *)
  notify_coalesce : int;
      (** Per absorbed ARX notification when coalescing (batch>1
          only). *)
}

(** Batching degrees at each pipeline boundary (§3.4): how many units
    amortize one fixed cost. All 1 (the default) preserves today's
    per-segment behavior bit for bit — the batch>1 code paths are
    never entered. *)
type batch = {
  b_gro : int;
      (** Adjacent in-sequence RX data segments of a flow merged into
          one descriptor before protocol processing. *)
  b_tso : int;
      (** MSS units one TX descriptor may carry; the NBI splits the
          descriptor back into wire frames. *)
  b_doorbell : int;  (** DMA descriptors rung per doorbell. *)
  b_completion : int;  (** DMA completions coalesced per delivery. *)
  b_notify : int;
      (** ARX notifications per connection coalesced into one
          context-queue DMA and host wakeup. *)
}

val batch_none : batch
(** All degrees 1: bit-identical to the unbatched pipeline. *)

val batch_of : int -> batch
(** Uniform batching degree at every boundary (clamped to >= 1). *)

(** FlexGuard: overload control and graceful degradation under
    connection churn (DESIGN.md §13). Listen-path protection (bounded
    SYN backlog with a stateless SYN-cookie fallback, bounded
    handshake retransmission with exponential backoff), a full
    teardown lifecycle (TIME_WAIT with recycling under pressure,
    idle-timeout reaping, RST generation/handling), and admission
    control with load shedding (bounded control-path queue; the shed
    policy drops newest SYNs first and {e never} an established-flow
    segment). With {!guard_none} (the default) every mechanism is
    dormant: no extra engine events are scheduled and behavior is
    bit-identical to the unguarded pipeline. *)
type guard = {
  g_on : bool;  (** Master enable. *)
  g_syn_backlog : int;
      (** Max half-open handshakes held statefully; 0 = unbounded. *)
  g_syn_cookies : bool;
      (** Stateless SYN-cookie fallback once the backlog is full: the
          SYN-ACK's ISN encodes the flow, a secret and a coarse time
          epoch, so the connection installs from the completing ACK
          without ever holding half-open state. *)
  g_syn_retries : int;  (** Max SYN / SYN-ACK retransmissions. *)
  g_syn_retry_base : Sim.Time.t;
      (** First retry delay; doubles per attempt (exponential
          backoff). On exhaustion a [connect] surfaces ["Etimedout"]. *)
  g_syn_retry_max : Sim.Time.t;  (** Backoff ceiling. *)
  g_max_conns : int;
      (** Admission cap on established + half-open connections;
          0 = unlimited. *)
  g_time_wait : Sim.Time.t;
      (** TIME_WAIT hold after both directions close; 0 = free
          immediately (the pre-FlexGuard behavior). A fresh SYN for a
          TIME_WAIT 4-tuple recycles the entry only when its ISN is
          strictly beyond the old connection's final receive point
          (Seq32 wraparound-aware), as in RFC 6191. *)
  g_time_wait_max : int;
      (** TIME_WAIT table cap; under pressure the oldest entry is
          recycled. 0 = unbounded. *)
  g_idle_timeout : Sim.Time.t;
      (** Reap closing connections (FIN_WAIT / half-closed) that have
          made no progress for this long. *)
  g_reap_interval : Sim.Time.t;  (** Reaper loop period. *)
  g_cp_queue : int;
      (** Bound on control-path frames in flight to the CP; beyond it
          the NBI sheds newest SYNs first ({e never} established-flow
          segments). 0 = unbounded. *)
  g_rst : bool;
      (** RST generation (to no-such-connection, to cookie failures)
          and handling (abort on RST, including during half-close). *)
  g_evict_caches : bool;
      (** Invalidate the CAM/CLS/EMEM entries of a removed connection
          so churn does not poison the cache hierarchy. *)
}

val guard_none : guard
(** All mechanisms off: bit-identical to the unguarded pipeline. *)

val guard_default : guard
(** The tuned churn defaults: backlog 64 with cookies, 6 retries from
    1 ms backing off to 8 ms, 10 ms TIME_WAIT (max 4096 entries),
    20 ms idle reap, CP queue bound 64, RST on, cache eviction on. *)

(** FlexScale: sharded flow-group pipelines (DESIGN.md §17). Per-flow
    state is sharded across [s_shards] replicated protocol-stage
    pipelines keyed by the flow-group hash; each shard owns its own
    CAM/CLS/EMEM-cache slice and runs as its own FlexPar LP. With
    {!scale_none} (the default) the sharded code paths are never
    entered; with [s_on] and [s_shards = 1] the sharded wiring is
    exercised but bit-identical to the single pipeline (the
    golden-trace gate pins this). *)
type scale = {
  s_on : bool;  (** Master enable. *)
  s_shards : int;
      (** Replicated protocol-stage pipelines; flow group [fg] steers
          to shard [fg mod s_shards] — a pure function of the 4-tuple,
          so a flow never migrates shards mid-life. *)
  s_emem_flows : int;
      (** EMEM capacity-pressure model: connections whose 108 B state
          fits the cached working set; past it, misses pay the full
          DRAM penalty (extra cycles grow with overcommit).
          0 disables pressure accounting. *)
  s_pin_hot : bool;
      (** Never silently evict an Established flow's hot EMEM-cache
          state: hot entries are pinned, eviction prefers cold
          (closing/TIME_WAIT) state, and a forced pinned eviction is
          counted loudly rather than silent. *)
}

val scale_none : scale
(** Sharding off: bit-identical to the single-pipeline datapath. *)

val scale_of : int -> scale
(** [scale_of n] enables sharding with [n] shards (clamped to >= 1)
    and hot-state pinning; pressure accounting stays off. *)

type congestion_control = Dctcp | Timely | Cc_none

(** FlexScope profiling level. [Scope_off] leaves every data-path
    hook as a single branch on an immutable option; [Scope_metrics]
    records per-stage cycle histograms, counters, series aggregates
    and the flight recorder; [Scope_full] additionally buffers Chrome
    [trace_event] records for export. *)
type scope_mode = Scope_off | Scope_metrics | Scope_full

type t = {
  params : Nfp.Params.t;
  parallelism : parallelism;
  costs : stage_costs;
  rx_buf_bytes : int;
  tx_buf_bytes : int;
  mss : int;
  delayed_acks : bool;
      (** The paper's FlexTOE acknowledges every incoming data segment
          (the default here, matching §5.2); enabling this coalesces
          ACKs — every second in-order segment is acknowledged, with
          out-of-order/duplicate/FIN segments acknowledged immediately
          and the control plane flushing stragglers (FPCs have no
          timers). Listed by the paper as a further improvement for
          large bidirectional flows. *)
  window_scale : int;
      (** Fixed window-scale shift assumed on both ends (no SYN
          negotiation is modelled); data-center defaults need windows
          larger than 64 KB. *)
  rto : Sim.Time.t;
      (** Control-plane retransmission timeout (initial value; the
          per-connection timeout doubles on each consecutive timeout —
          exponential backoff — and resets on forward progress). *)
  rto_max : Sim.Time.t;  (** Backoff ceiling. *)
  max_rto_retries : int;
      (** Consecutive timeouts without progress before the control
          plane aborts the connection and notifies the application. *)
  cc : congestion_control;
  cc_interval : Sim.Time.t;  (** Control-plane iteration interval. *)
  wheel_slot : Sim.Time.t;  (** Carousel time-wheel slot granularity. *)
  wheel_slots : int;  (** Time-wheel horizon, in slots. *)
  libtoe_poll : Sim.Time.t;  (** libTOE context-queue polling period. *)
  sockets_api_cycles : int;
      (** Host cycles charged per socket call (Table 1: 0.74 kc per
          request covers send+recv+poll). *)
  notify_cycles : int;  (** Host cycles to consume one ARX entry. *)
  san : bool;
      (** Enable the FlexSan dynamic sanitizer (layer 2): instrument
          every stage's shared-state accesses and check them against
          happens-before. Simulated timing is unchanged; host-side
          cost only. Ignored (off) for run-to-completion
          configurations — single-FPC execution serializes everything
          by construction. *)
  scope : scope_mode;
      (** Enable the FlexScope segment-lifecycle profiler: typed
          spans with per-stage cycle attribution, the per-FPC
          utilization sampler, and the per-connection flight
          recorder. Simulated timing is unchanged (profiling is
          host-side observation, like FlexSan); the modelled cost of
          {e tracepoints} remains a separate, per-point opt-in via
          {!Sim.Trace}. *)
  batch : batch;
      (** Pipeline-boundary batching degrees ({!batch_none} by
          default). *)
  batch_delay : Sim.Time.t;
      (** How long a partial batch (GRO window, doorbell ring, ARX
          accumulator) may be held before a timer flushes it. *)
  guard : guard;
      (** FlexGuard overload control ({!guard_none} by default). *)
  scale : scale;
      (** FlexScale sharding ({!scale_none} by default). *)
}

val default : t
(** [default.san] follows the [FLEXSAN] environment variable
    ([1]/[on]/[true]/[yes] enable it), so an instrumented run of the
    whole test suite needs no per-test plumbing. [default.scope]
    likewise follows [FLEXSCOPE] ([1]/[on]/[true]/[yes]/[full] for
    {!Scope_full}, [metrics] for {!Scope_metrics}), and
    [default.guard] follows [FLEXGUARD] ([1]/[on]/[true]/[yes] arm
    {!guard_default}). *)

val with_parallelism : t -> parallelism -> t

(** Table 3 presets, cumulative left to right. *)

val t3_baseline : parallelism
val t3_pipelined : parallelism
val t3_threads : parallelism
val t3_replicated : parallelism
val t3_flow_groups : parallelism
