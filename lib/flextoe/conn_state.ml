type pre = {
  peer_mac : int;
  peer_ip : int;
  local_ip : int;
  local_port : int;
  remote_port : int;
  flow_group : int;
}

type proto = {
  tx_isn : Tcp.Seq32.t;
  rx_isn : Tcp.Seq32.t;
  mutable tx_next_pos : int;
  mutable tx_max_pos : int;
  mutable tx_acked_pos : int;
  mutable tx_tail_pos : int;
  mutable rx_avail : int;
  mutable remote_win : int;
  reasm : Tcp.Reassembly.t;
  mutable dupack_cnt : int;
  mutable next_ts : int;
  mutable delack_segs : int;
  mutable tx_fin : bool;
  mutable fin_sent : bool;
  mutable rx_fin : bool;
  mutable rx_fin_pending : Tcp.Seq32.t option;
  mutable fin_acked : bool;
  mutable ece_pending : bool;
  mutable cwr_pending : bool;
  mutable recover_pos : int;
  mutable karn_pos : int;
  mutable last_progress : Sim.Time.t;
}

type post = {
  opaque : int;
  mutable ctx_id : int;
  rx_buf : Host.Payload_buf.t;
  tx_buf : Host.Payload_buf.t;
  mutable cnt_ackb : int;
  mutable cnt_ecnb : int;
  mutable cnt_fretx : int;
  mutable rtt_est_ns : int;
  mutable rate_bps : int;
}

type t = {
  idx : int;
  flow : Tcp.Flow.t;
  pre : pre;
  proto : proto;
  post : post;
  mutable active : bool;
}

let create ~idx ~flow ~peer_mac ~flow_group ~tx_isn ~rx_isn
    ?(remote_win = 0xFFFF lsl 7) ~opaque ~ctx_id ~rx_buf_bytes ~tx_buf_bytes
    () =
  {
    idx;
    flow;
    pre =
      {
        peer_mac;
        peer_ip = flow.Tcp.Flow.remote_ip;
        local_ip = flow.Tcp.Flow.local_ip;
        local_port = flow.Tcp.Flow.local_port;
        remote_port = flow.Tcp.Flow.remote_port;
        flow_group;
      };
    proto =
      {
        tx_isn;
        rx_isn;
        tx_next_pos = 0;
        tx_max_pos = 0;
        tx_acked_pos = 0;
        tx_tail_pos = 0;
        rx_avail = rx_buf_bytes;
        remote_win;
        reasm = Tcp.Reassembly.create ~next:(Tcp.Seq32.add rx_isn 1);
        dupack_cnt = 0;
        next_ts = 0;
        delack_segs = 0;
        tx_fin = false;
        fin_sent = false;
        rx_fin = false;
        rx_fin_pending = None;
        fin_acked = false;
        ece_pending = false;
        cwr_pending = false;
        recover_pos = 0;
        karn_pos = 0;
        last_progress = Sim.Time.zero;
      };
    post =
      {
        opaque;
        ctx_id;
        rx_buf = Host.Payload_buf.create ~size:rx_buf_bytes;
        tx_buf = Host.Payload_buf.create ~size:tx_buf_bytes;
        cnt_ackb = 0;
        cnt_ecnb = 0;
        cnt_fretx = 0;
        rtt_est_ns = 0;
        rate_bps = 0;
      };
    active = true;
  }

(* Teardown phase, derived from the four FIN bits. The data path keeps
   no explicit TCP state enum (Table 5 has no room for one); this view
   gives the control plane's reaper and the teardown tests the classic
   state names. *)
type close_phase =
  | Established
  | Fin_wait_1  (* we closed; our FIN unacknowledged *)
  | Fin_wait_2  (* our FIN acked; peer still open *)
  | Close_wait  (* peer closed; we are still open *)
  | Closing  (* both FINs seen, ours not yet acked (incl. LAST_ACK) *)
  | Closed  (* both directions closed and acknowledged *)

let close_phase t =
  let p = t.proto in
  match (p.tx_fin, p.rx_fin) with
  | false, false -> Established
  | true, false -> if p.fin_acked then Fin_wait_2 else Fin_wait_1
  | false, true -> Close_wait
  | true, true -> if p.fin_acked then Closed else Closing

let pp_close_phase ppf ph =
  Format.pp_print_string ppf
    (match ph with
    | Established -> "ESTABLISHED"
    | Fin_wait_1 -> "FIN_WAIT_1"
    | Fin_wait_2 -> "FIN_WAIT_2"
    | Close_wait -> "CLOSE_WAIT"
    | Closing -> "CLOSING"
    | Closed -> "CLOSED")

(* --- Teardown lifecycle as a pure transition table ------------------- *)

(* The control plane's teardown decisions (CP teardown poll, FlexGuard
   reaper, TIME_WAIT handling, RST abort) all consult [step] below, and
   the FlexProve FSM checker ([Prove.check_fsm]) model-checks the same
   table against the RFC-793/6191 teardown spec — a seeded mutation of
   a transition both fails the checker and changes live behavior, so
   the verified artifact is the deployed one. *)

type lifecycle =
  | Phase of close_phase  (* datapath state installed, FIN bits live *)
  | Time_wait  (* datapath state freed; 4-tuple parked in Guard's table *)
  | Reclaimed  (* everything released; absorbing *)

type close_event =
  | Ev_app_close  (* local close(): queue a FIN after the last byte *)
  | Ev_peer_fin  (* peer's FIN reached the in-order point *)
  | Ev_fin_acked  (* our FIN was cumulatively acknowledged *)
  | Ev_rst  (* RST received (guarded mode only; unguarded RSTs no-op) *)
  | Ev_abort  (* CP abort: retransmission retries exhausted *)
  | Ev_reap_idle  (* FlexGuard reaper: idle past g_idle_timeout *)
  | Ev_teardown  (* CP teardown poll found the flow fully closed *)
  | Ev_tw_fin  (* peer retransmitted its FIN into our TIME_WAIT *)
  | Ev_tw_syn  (* acceptable fresh SYN recycles the tuple (RFC 6191) *)
  | Ev_tw_expire  (* TIME_WAIT hold elapsed *)

type close_output =
  | Out_send_fin  (* push a FIN through the host-control path *)
  | Out_reack  (* re-ACK the peer's FIN from the stored endpoint state *)
  | Out_notify_err  (* x_err notification: the application must learn *)
  | Out_enter_tw  (* park the 4-tuple in the TIME_WAIT table *)
  | Out_free  (* release the data-path connection state *)

let all_lifecycles =
  [
    Phase Established; Phase Fin_wait_1; Phase Fin_wait_2;
    Phase Close_wait; Phase Closing; Phase Closed; Time_wait; Reclaimed;
  ]

let all_events =
  [
    Ev_app_close; Ev_peer_fin; Ev_fin_acked; Ev_rst; Ev_abort;
    Ev_reap_idle; Ev_teardown; Ev_tw_fin; Ev_tw_syn; Ev_tw_expire;
  ]

let lifecycle_name = function
  | Phase ph -> Format.asprintf "%a" pp_close_phase ph
  | Time_wait -> "TIME_WAIT"
  | Reclaimed -> "RECLAIMED"

let event_name = function
  | Ev_app_close -> "app_close"
  | Ev_peer_fin -> "peer_fin"
  | Ev_fin_acked -> "fin_acked"
  | Ev_rst -> "rst"
  | Ev_abort -> "abort"
  | Ev_reap_idle -> "reap_idle"
  | Ev_teardown -> "teardown"
  | Ev_tw_fin -> "tw_fin"
  | Ev_tw_syn -> "tw_syn"
  | Ev_tw_expire -> "tw_expire"

let output_name = function
  | Out_send_fin -> "send_fin"
  | Out_reack -> "reack"
  | Out_notify_err -> "notify_err"
  | Out_enter_tw -> "enter_tw"
  | Out_free -> "free"

(* Total transition function. [guard] arms the FlexGuard-only events
   (RST handling, idle reaper); [tw] says a TIME_WAIT hold is
   configured ([g_time_wait > 0]). Events that do not apply in a state
   are no-ops: [(s, [])]. The abort path ([Ev_rst]/[Ev_abort]) always
   notifies — the application must learn the connection died — except
   in TIME_WAIT, where an RST is ignored (RFC 1337: TIME-WAIT
   assassination refused). The reaper exempts Established (the
   application's business, however idle) and Close_wait (peer closed
   but the local app still owns the socket; no TCP timer covers it);
   of the reaped states, Fin_wait_2 and Closed are orphans — our FIN
   was acked, every byte delivered — reclaimed quietly, while
   Fin_wait_1/Closing mean a vanished peer, a genuine abort. *)
let step ~guard ~tw state event =
  let abort = (Reclaimed, [ Out_notify_err; Out_free ]) in
  let stay = (state, []) in
  match (state, event) with
  | Phase Established, Ev_app_close -> (Phase Fin_wait_1, [ Out_send_fin ])
  | Phase Established, Ev_peer_fin -> (Phase Close_wait, [])
  | Phase Established, Ev_rst when guard -> abort
  | Phase Established, Ev_abort -> abort
  | Phase Fin_wait_1, Ev_fin_acked -> (Phase Fin_wait_2, [])
  | Phase Fin_wait_1, Ev_peer_fin -> (Phase Closing, [])
  | Phase Fin_wait_1, Ev_rst when guard -> abort
  | Phase Fin_wait_1, Ev_abort -> abort
  | Phase Fin_wait_1, Ev_reap_idle when guard -> abort
  | Phase Fin_wait_2, Ev_peer_fin -> (Phase Closed, [])
  | Phase Fin_wait_2, Ev_rst when guard -> abort
  | Phase Fin_wait_2, Ev_reap_idle when guard -> (Reclaimed, [ Out_free ])
  | Phase Close_wait, Ev_app_close -> (Phase Closing, [ Out_send_fin ])
  | Phase Close_wait, Ev_rst when guard -> abort
  | Phase Close_wait, Ev_abort -> abort
  | Phase Closing, Ev_fin_acked -> (Phase Closed, [])
  | Phase Closing, Ev_rst when guard -> abort
  | Phase Closing, Ev_abort -> abort
  | Phase Closing, Ev_reap_idle when guard -> abort
  | Phase Closed, Ev_teardown ->
      if tw then (Time_wait, [ Out_enter_tw; Out_free ])
      else (Reclaimed, [ Out_free ])
  | Phase Closed, Ev_rst when guard -> abort
  | Phase Closed, Ev_reap_idle when guard -> (Reclaimed, [ Out_free ])
  | Time_wait, Ev_tw_fin -> (Time_wait, [ Out_reack ])
  | Time_wait, Ev_tw_syn -> (Reclaimed, [ Out_free ])
  | Time_wait, Ev_tw_expire -> (Reclaimed, [ Out_free ])
  | Reclaimed, _ -> (Reclaimed, [])
  | _ -> stay

let tx_seq_of_pos t pos = Tcp.Seq32.add t.proto.tx_isn (1 + pos)
let tx_pos_of_seq t seq = Tcp.Seq32.diff seq (Tcp.Seq32.add t.proto.tx_isn 1)
let rx_pos_of_seq t seq = Tcp.Seq32.diff seq (Tcp.Seq32.add t.proto.rx_isn 1)
let rx_seq_of_pos t pos = Tcp.Seq32.add t.proto.rx_isn (1 + pos)
let tx_avail t = t.proto.tx_tail_pos - t.proto.tx_next_pos
let tx_unacked t = t.proto.tx_next_pos - t.proto.tx_acked_pos
let rx_next_pos t = rx_pos_of_seq t (Tcp.Reassembly.next t.proto.reasm)

(* Table 5 accounting (bits): pre 48+32+32+2 = 114 bits; the paper's
   108-byte total rounds the pre partition down (14.25 B). local_ip is
   shared NIC configuration, not per-connection state. *)
let state_bytes_pre = 14
let state_bytes_proto = 43
let state_bytes_post = 51
