type pre = {
  peer_mac : int;
  peer_ip : int;
  local_ip : int;
  local_port : int;
  remote_port : int;
  flow_group : int;
}

type proto = {
  tx_isn : Tcp.Seq32.t;
  rx_isn : Tcp.Seq32.t;
  mutable tx_next_pos : int;
  mutable tx_max_pos : int;
  mutable tx_acked_pos : int;
  mutable tx_tail_pos : int;
  mutable rx_avail : int;
  mutable remote_win : int;
  reasm : Tcp.Reassembly.t;
  mutable dupack_cnt : int;
  mutable next_ts : int;
  mutable delack_segs : int;
  mutable tx_fin : bool;
  mutable fin_sent : bool;
  mutable rx_fin : bool;
  mutable rx_fin_pending : Tcp.Seq32.t option;
  mutable fin_acked : bool;
  mutable ece_pending : bool;
  mutable cwr_pending : bool;
  mutable recover_pos : int;
  mutable karn_pos : int;
  mutable last_progress : Sim.Time.t;
}

type post = {
  opaque : int;
  mutable ctx_id : int;
  rx_buf : Host.Payload_buf.t;
  tx_buf : Host.Payload_buf.t;
  mutable cnt_ackb : int;
  mutable cnt_ecnb : int;
  mutable cnt_fretx : int;
  mutable rtt_est_ns : int;
  mutable rate_bps : int;
}

type t = {
  idx : int;
  flow : Tcp.Flow.t;
  pre : pre;
  proto : proto;
  post : post;
  mutable active : bool;
}

let create ~idx ~flow ~peer_mac ~flow_group ~tx_isn ~rx_isn
    ?(remote_win = 0xFFFF lsl 7) ~opaque ~ctx_id ~rx_buf_bytes ~tx_buf_bytes
    () =
  {
    idx;
    flow;
    pre =
      {
        peer_mac;
        peer_ip = flow.Tcp.Flow.remote_ip;
        local_ip = flow.Tcp.Flow.local_ip;
        local_port = flow.Tcp.Flow.local_port;
        remote_port = flow.Tcp.Flow.remote_port;
        flow_group;
      };
    proto =
      {
        tx_isn;
        rx_isn;
        tx_next_pos = 0;
        tx_max_pos = 0;
        tx_acked_pos = 0;
        tx_tail_pos = 0;
        rx_avail = rx_buf_bytes;
        remote_win;
        reasm = Tcp.Reassembly.create ~next:(Tcp.Seq32.add rx_isn 1);
        dupack_cnt = 0;
        next_ts = 0;
        delack_segs = 0;
        tx_fin = false;
        fin_sent = false;
        rx_fin = false;
        rx_fin_pending = None;
        fin_acked = false;
        ece_pending = false;
        cwr_pending = false;
        recover_pos = 0;
        karn_pos = 0;
        last_progress = Sim.Time.zero;
      };
    post =
      {
        opaque;
        ctx_id;
        rx_buf = Host.Payload_buf.create ~size:rx_buf_bytes;
        tx_buf = Host.Payload_buf.create ~size:tx_buf_bytes;
        cnt_ackb = 0;
        cnt_ecnb = 0;
        cnt_fretx = 0;
        rtt_est_ns = 0;
        rate_bps = 0;
      };
    active = true;
  }

(* Teardown phase, derived from the four FIN bits. The data path keeps
   no explicit TCP state enum (Table 5 has no room for one); this view
   gives the control plane's reaper and the teardown tests the classic
   state names. *)
type close_phase =
  | Established
  | Fin_wait_1  (* we closed; our FIN unacknowledged *)
  | Fin_wait_2  (* our FIN acked; peer still open *)
  | Close_wait  (* peer closed; we are still open *)
  | Closing  (* both FINs seen, ours not yet acked (incl. LAST_ACK) *)
  | Closed  (* both directions closed and acknowledged *)

let close_phase t =
  let p = t.proto in
  match (p.tx_fin, p.rx_fin) with
  | false, false -> Established
  | true, false -> if p.fin_acked then Fin_wait_2 else Fin_wait_1
  | false, true -> Close_wait
  | true, true -> if p.fin_acked then Closed else Closing

let pp_close_phase ppf ph =
  Format.pp_print_string ppf
    (match ph with
    | Established -> "ESTABLISHED"
    | Fin_wait_1 -> "FIN_WAIT_1"
    | Fin_wait_2 -> "FIN_WAIT_2"
    | Close_wait -> "CLOSE_WAIT"
    | Closing -> "CLOSING"
    | Closed -> "CLOSED")

let tx_seq_of_pos t pos = Tcp.Seq32.add t.proto.tx_isn (1 + pos)
let tx_pos_of_seq t seq = Tcp.Seq32.diff seq (Tcp.Seq32.add t.proto.tx_isn 1)
let rx_pos_of_seq t seq = Tcp.Seq32.diff seq (Tcp.Seq32.add t.proto.rx_isn 1)
let rx_seq_of_pos t pos = Tcp.Seq32.add t.proto.rx_isn (1 + pos)
let tx_avail t = t.proto.tx_tail_pos - t.proto.tx_next_pos
let tx_unacked t = t.proto.tx_next_pos - t.proto.tx_acked_pos
let rx_next_pos t = rx_pos_of_seq t (Tcp.Reassembly.next t.proto.reasm)

(* Table 5 accounting (bits): pre 48+32+32+2 = 114 bits; the paper's
   108-byte total rounds the pre partition down (14.25 B). local_ip is
   shared NIC configuration, not per-connection state. *)
let state_bytes_pre = 14
let state_bytes_proto = 43
let state_bytes_post = 51
