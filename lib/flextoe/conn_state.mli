(** Per-connection data-path state, partitioned by pipeline stage.

    Mirrors the paper's Table 5 (Appendix A): the pre-processor holds
    connection identifiers (15 B), the protocol stage holds the TCP
    machine (43 B), the post-processor holds application-interface
    parameters and congestion statistics (51 B); DMA and context-queue
    stages are stateless. The partitioning is what makes stages
    independently replicable: only the protocol partition is mutated
    atomically per connection.

    Stream positions are absolute byte offsets from the start of each
    direction's stream; sequence-number mapping keeps the initial
    sequence numbers per side ([seq = isn + 1 + pos], the +1 for the
    SYN). *)

type pre = {
  peer_mac : int;
  peer_ip : int;
  local_ip : int;
  local_port : int;
  remote_port : int;
  flow_group : int;
}

type proto = {
  tx_isn : Tcp.Seq32.t;
  rx_isn : Tcp.Seq32.t;
  mutable tx_next_pos : int;  (** Next stream byte to transmit. *)
  mutable tx_max_pos : int;  (** Highest stream byte ever transmitted. *)
  mutable tx_acked_pos : int;  (** Cumulatively acknowledged. *)
  mutable tx_tail_pos : int;  (** End of app-supplied data. *)
  mutable rx_avail : int;  (** Advertised receive window. *)
  mutable remote_win : int;  (** Peer's advertised window. *)
  reasm : Tcp.Reassembly.t;
  mutable dupack_cnt : int;
  mutable next_ts : int;  (** Peer timestamp to echo. *)
  mutable delack_segs : int;
      (** In-order data segments received but not yet acknowledged
          (delayed-ACK mode only). *)
  mutable tx_fin : bool;  (** App closed; FIN after last byte. *)
  mutable fin_sent : bool;
  mutable rx_fin : bool;  (** Peer's FIN reached the in-order point. *)
  mutable rx_fin_pending : Tcp.Seq32.t option;
      (** Peer's FIN arrived out of order: its sequence, held until
          reassembly reaches it. *)
  mutable fin_acked : bool;  (** Our FIN was acknowledged. *)
  mutable ece_pending : bool;
      (** CE observed; echo ECE until the peer CWRs. *)
  mutable cwr_pending : bool;
      (** ECE received; set CWR on the next data segment. *)
  mutable recover_pos : int;
      (** Fast-retransmit gate: no second fast retransmit until the
          acked point passes this position (go-back-N recovery). *)
  mutable karn_pos : int;
      (** Karn's algorithm: positions at or below this were (go-back-N)
          retransmitted, so an ACK covering them is ambiguous — the
          timestamp echo may stem from the original transmission — and
          yields no RTT sample. Set to [tx_max_pos] at every
          retransmission. *)
  mutable last_progress : Sim.Time.t;
      (** Last time the acked point advanced (control-plane RTO). *)
}

type post = {
  opaque : int;  (** Application-level connection id. *)
  mutable ctx_id : int;  (** Owning context queue. *)
  rx_buf : Host.Payload_buf.t;
  tx_buf : Host.Payload_buf.t;
  mutable cnt_ackb : int;  (** Acked bytes since last CP read. *)
  mutable cnt_ecnb : int;  (** ECN-marked bytes since last CP read. *)
  mutable cnt_fretx : int;  (** Fast retransmits since last CP read. *)
  mutable rtt_est_ns : int;
  mutable rate_bps : int;  (** 0 = uncongested (unpaced). *)
}

type t = {
  idx : int;
  flow : Tcp.Flow.t;
  pre : pre;
  proto : proto;
  post : post;
  mutable active : bool;
}

val create :
  idx:int ->
  flow:Tcp.Flow.t ->
  peer_mac:int ->
  flow_group:int ->
  tx_isn:Tcp.Seq32.t ->
  rx_isn:Tcp.Seq32.t ->
  ?remote_win:int ->
  opaque:int ->
  ctx_id:int ->
  rx_buf_bytes:int ->
  tx_buf_bytes:int ->
  unit ->
  t

(** Teardown phase, derived from the four FIN bits ([tx_fin],
    [fin_acked], [rx_fin]; [fin_sent] distinguishes retransmission
    states only). The data path keeps no explicit TCP state enum —
    this view gives the control plane's idle reaper and the teardown
    tests the classic state names. [Closing] covers both simultaneous
    close and LAST_ACK (the bits cannot distinguish who closed
    first). *)
type close_phase =
  | Established
  | Fin_wait_1
  | Fin_wait_2
  | Close_wait
  | Closing
  | Closed

val close_phase : t -> close_phase
val pp_close_phase : Format.formatter -> close_phase -> unit

(** {1 Teardown lifecycle (shared transition table)}

    The full connection teardown lifecycle as a pure Mealy machine:
    the {!close_phase} states while data-path state is installed, plus
    [Time_wait] (state freed, 4-tuple parked in FlexGuard's table) and
    [Reclaimed] (everything released; absorbing). {!step} is the
    single source of truth for teardown decisions: the control plane's
    teardown poll, idle reaper, TIME_WAIT re-ACK/recycle and RST-abort
    paths all consult it, and the FlexProve FSM checker
    ([Prove.check_fsm]) model-checks the same table against an
    RFC-793/6191 spec — so a mutated transition both fails the checker
    and changes live behavior. *)

type lifecycle = Phase of close_phase | Time_wait | Reclaimed

type close_event =
  | Ev_app_close  (** Local close(): queue a FIN after the last byte. *)
  | Ev_peer_fin  (** Peer's FIN reached the in-order point. *)
  | Ev_fin_acked  (** Our FIN was cumulatively acknowledged. *)
  | Ev_rst  (** RST received (guarded mode; unguarded RSTs no-op). *)
  | Ev_abort  (** CP abort: retransmission retries exhausted. *)
  | Ev_reap_idle  (** FlexGuard reaper: idle past [g_idle_timeout]. *)
  | Ev_teardown  (** CP teardown poll found the flow fully closed. *)
  | Ev_tw_fin  (** Peer retransmitted its FIN into our TIME_WAIT. *)
  | Ev_tw_syn  (** Acceptable fresh SYN recycles the tuple (RFC 6191). *)
  | Ev_tw_expire  (** TIME_WAIT hold elapsed. *)

type close_output =
  | Out_send_fin  (** Push a FIN through the host-control path. *)
  | Out_reack  (** Re-ACK the peer's FIN from stored endpoint state. *)
  | Out_notify_err  (** x_err notification: the app must learn. *)
  | Out_enter_tw  (** Park the 4-tuple in the TIME_WAIT table. *)
  | Out_free  (** Release the data-path connection state. *)

val all_lifecycles : lifecycle list
val all_events : close_event list
val lifecycle_name : lifecycle -> string
val event_name : close_event -> string
val output_name : close_output -> string

val step :
  guard:bool -> tw:bool -> lifecycle -> close_event ->
  lifecycle * close_output list
(** Total: events that do not apply in a state are no-ops [(s, [])].
    [guard] arms the FlexGuard-only events (RST handling, idle
    reaper); [tw] says a TIME_WAIT hold is configured
    ([g_time_wait > 0]), steering [Ev_teardown] from [Phase Closed]
    into [Time_wait] instead of immediate reclamation. *)

val tx_seq_of_pos : t -> int -> Tcp.Seq32.t
(** Sequence number of a transmit-stream position. *)

val tx_pos_of_seq : t -> Tcp.Seq32.t -> int
val rx_pos_of_seq : t -> Tcp.Seq32.t -> int
val rx_seq_of_pos : t -> int -> Tcp.Seq32.t

val tx_avail : t -> int
(** Bytes ready for transmission ([tx_tail_pos - tx_next_pos]). *)

val tx_unacked : t -> int
val rx_next_pos : t -> int
(** In-order receive point as a stream position. *)

val state_bytes_pre : int
val state_bytes_proto : int
val state_bytes_post : int
(** The Table 5 partition sizes (14/43/51 bytes, 108 B total; the
    paper's pre-processor partition is 114 bits), asserted by tests. *)
