module S = Tcp.Segment

let mac_of_ip ip = 0x020000000000 lor ip

type conn_handle = {
  ch_conn : int;
  ch_ctx : int;
  ch_state : Conn_state.t;
}

type pending = {
  p_flow : Tcp.Flow.t;
  p_our_isn : Tcp.Seq32.t;
  p_peer_isn : Tcp.Seq32.t;
  p_win : int option;  (* window override for our SYN-ACK *)
  p_ctx : int;
  p_kind :
    [ `Accept of conn_handle -> unit
    | `Connect of (conn_handle, string) result -> unit ];
  mutable p_installing : bool;
}

(* Congestion-control state kept per monitored flow. *)
type cc_state = No_cc | Dctcp of Cc.Dctcp.t | Timely of Cc.Timely.t

type cc_flow = {
  cf_conn : int;
  cf_state : cc_state;
  mutable cf_rate_bps : int;  (* last programmed rate; 0 = uncongested *)
  mutable cf_limit_bps : int;  (* administrative ceiling; 0 = none *)
  (* The control loop polls every cc_interval, but each flow's
     congestion decision runs at most once per RTT (§3.4: "the
     interval ... is determined by the round-trip time of each
     flow"); statistics accumulate in between. *)
  mutable cf_acc_ackb : int;
  mutable cf_acc_ecnb : int;
  mutable cf_acc_fretx : int;
  mutable cf_last_decision : Sim.Time.t;
  mutable cf_closing : bool;
  (* Retransmission-timeout state: the current (backed-off) timeout
     and the consecutive timeouts since the acked point last moved. *)
  mutable cf_rto : Sim.Time.t;
  mutable cf_retries : int;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  dp : Datapath.t;
  core : Host.Host_cpu.core;
  rng : Sim.Rng.t;
  guard : Guard.t option;  (* shared with the data path *)
  paused : (int, unit) Hashtbl.t;  (* ports with accept backpressure *)
  listeners : (int, int option * (conn_handle -> unit)) Hashtbl.t;
  pending : pending Tcp.Flow.Tbl.t;
  flows : (int, cc_flow) Hashtbl.t;
  mutable next_port : int;
  mutable next_ctx : int;
  mutable rto_count : int;
  mutable rto_aborts : int;
  mutable rto_log : (int * Sim.Time.t) list;  (* newest first *)
  mutable on_rate_change : conn:int -> bps:int -> unit;
  mutable conn_limit : int option;
  mutable partitions : (int * int * int) list;  (* lo, hi, app *)
  shard_installed : int array;
      (* FlexScale: installed connections per shard group (length 1
         when unsharded). Per-shard admission splits [g_max_conns]
         across shards with this global accounting. *)
}

let active_flows t = Hashtbl.length t.flows
let shard_conns t = Array.copy t.shard_installed
let gcount t name = match t.guard with Some g -> Guard.count g name | None -> ()

(* Teardown decisions go through the shared pure transition table
   ([Conn_state.step]) that FlexProve model-checks: [lstep] fixes the
   table's mode bits from this CP's guard configuration. *)
let tw_enabled t =
  match t.guard with
  | Some g -> (Guard.config g).Config.g_time_wait > Sim.Time.zero
  | None -> false

let lstep t state ev =
  Conn_state.step ~guard:(t.guard <> None) ~tw:(tw_enabled t) state ev

let phase_of t conn =
  Option.map
    (fun cs -> Conn_state.Phase (Conn_state.close_phase cs))
    (Datapath.conn t.dp conn)
let guard_rst t =
  match t.guard with Some g -> (Guard.config g).Config.g_rst | None -> false
let retransmit_timeouts t = t.rto_count
let retransmit_aborts t = t.rto_aborts
let rto_events t = List.rev t.rto_log
let set_on_rate_change t f = t.on_rate_change <- f

let cp_cycles = 1800  (* handshake step on the CP core *)
let cc_flow_cycles = 250  (* per-flow CC iteration *)

let wire_bps cfg =
  int_of_float (cfg.Config.params.Nfp.Params.wire_gbps *. 1e9)

(* --- Segment builders ---------------------------------------------- *)

let ctl_frame t ?win ~flow ~seq ~ack_seq ~flags ~mss () =
  let default_win =
    min 0xFFFF (t.cfg.Config.rx_buf_bytes lsr t.cfg.Config.window_scale)
  in
  let seg =
    S.make ~flags
      ~options:
        {
          S.mss = (if mss then Some t.cfg.Config.mss else None);
          ts = None;
        }
      ~window:(Option.value ~default:default_win win)
      ~src_ip:flow.Tcp.Flow.local_ip ~dst_ip:flow.Tcp.Flow.remote_ip
      ~src_port:flow.Tcp.Flow.local_port
      ~dst_port:flow.Tcp.Flow.remote_port ~seq ~ack_seq ()
  in
  S.make_frame
    ~src_mac:(mac_of_ip flow.Tcp.Flow.local_ip)
    ~dst_mac:(mac_of_ip flow.Tcp.Flow.remote_ip)
    seg

(* --- Connection establishment --------------------------------------- *)

let finalize t ?remote_win (p : pending) k =
  let idx = Datapath.alloc_conn_idx t.dp in
  let flow = p.p_flow in
  let fg =
    Tcp.Flow.flow_group flow
      ~groups:t.cfg.Config.parallelism.Config.flow_groups
  in
  let cs =
    Conn_state.create ~idx ~flow
      ~peer_mac:(mac_of_ip flow.Tcp.Flow.remote_ip)
      ~flow_group:fg
      ~tx_isn:p.p_our_isn ~rx_isn:p.p_peer_isn ?remote_win ~opaque:idx
      ~ctx_id:p.p_ctx ~rx_buf_bytes:t.cfg.Config.rx_buf_bytes
      ~tx_buf_bytes:t.cfg.Config.tx_buf_bytes ()
  in
  cs.Conn_state.proto.Conn_state.last_progress <- Sim.Engine.now t.engine;
  Datapath.install_conn t.dp cs ~k:(fun () ->
      (let n = Array.length t.shard_installed in
       if n > 1 then
         t.shard_installed.(fg mod n) <- t.shard_installed.(fg mod n) + 1);
      Hashtbl.replace t.flows idx
        {
          cf_conn = idx;
          cf_state =
            (match t.cfg.Config.cc with
            | Config.Dctcp -> Dctcp (Cc.Dctcp.create ())
            | Config.Timely -> Timely (Cc.Timely.create ())
            | Config.Cc_none -> No_cc);
          cf_rate_bps = 0;
          cf_limit_bps = 0;
          cf_acc_ackb = 0;
          cf_acc_ecnb = 0;
          cf_acc_fretx = 0;
          cf_last_decision = Sim.Engine.now t.engine;
          cf_closing = false;
          cf_rto = t.cfg.Config.rto;
          cf_retries = 0;
        };
      Tcp.Flow.Tbl.remove t.pending p.p_flow;
      k { ch_conn = idx; ch_ctx = p.p_ctx; ch_state = cs })

let alloc_ctx t =
  let c = t.next_ctx mod Datapath.num_ctx t.dp in
  t.next_ctx <- t.next_ctx + 1;
  c

let set_connection_limit t limit = t.conn_limit <- limit

let at_connection_limit t =
  match t.conn_limit with
  | Some l ->
      (* Half-open handshakes count toward the limit, or a burst of
         simultaneous SYNs would blow past it. *)
      Hashtbl.length t.flows + Tcp.Flow.Tbl.length t.pending >= l
  | None -> false

(* FlexScale per-shard admission: the global [g_max_conns] budget is
   split evenly (ceiling) across shard groups, so one shard's flash
   crowd cannot consume the entire connection table and starve flows
   steered to the other shards. The global [admission_full] check
   stays in force; this only tightens it per shard. *)
let shard_admission_full t flow =
  let n = Array.length t.shard_installed in
  if n <= 1 then false
  else
    match t.guard with
    | None -> false
    | Some g ->
        let gc = Guard.config g in
        gc.Config.g_max_conns > 0
        && t.shard_installed.(Flow_group.shard_of_config t.cfg flow)
           >= (gc.Config.g_max_conns + n - 1) / n

(* Drop an installed connection: release the datapath state and the
   CC record, and return the shard's admission slot. Every removal
   path funnels through here so [shard_installed] cannot drift. *)
let forget_flow t ~conn =
  (let n = Array.length t.shard_installed in
   if n > 1 then
     match Datapath.conn t.dp conn with
     | Some cs ->
         let s = cs.Conn_state.pre.Conn_state.flow_group mod n in
         t.shard_installed.(s) <- max 0 (t.shard_installed.(s) - 1)
     | None -> ());
  Datapath.remove_conn t.dp ~conn;
  Hashtbl.remove t.flows conn

let reserve_ports t ~lo ~hi ~app =
  t.partitions <- (lo, hi, app) :: t.partitions

let port_owner t port =
  List.find_map
    (fun (lo, hi, app) -> if port >= lo && port <= hi then Some app else None)
    t.partitions

(* Handshake packets can be lost; the CP retries SYN / SYN-ACK while
   the connection is still pending. Unguarded: a fixed 5 ms period and
   10 attempts (the historical behavior, kept bit-identical). Guarded:
   [g_syn_retries] attempts with exponential backoff from
   [g_syn_retry_base] capped at [g_syn_retry_max], and exhaustion
   surfaces ["Etimedout"] — a connect to a blackholed peer fails in
   bounded time instead of hanging. *)
let retry_delay t attempt =
  match t.guard with
  | None -> Sim.Time.ms 5
  | Some g ->
      let gc = Guard.config g in
      let d = ref gc.Config.g_syn_retry_base in
      for _ = 1 to attempt do
        d := min (2 * !d) gc.Config.g_syn_retry_max
      done;
      !d

let max_handshake_retries t =
  match t.guard with
  | None -> 10
  | Some g -> (Guard.config g).Config.g_syn_retries

let timeout_error t =
  match t.guard with None -> "connection timed out" | Some _ -> "Etimedout"

let rec handshake_retry t flow attempt =
  Sim.Engine.schedule t.engine (retry_delay t attempt) (fun () ->
      match Tcp.Flow.Tbl.find_opt t.pending flow with
      | Some p when (not p.p_installing) && attempt < max_handshake_retries t
        ->
          (match p.p_kind with
          | `Connect _ ->
              gcount t "syn_retx";
              Datapath.control_tx t.dp
                (ctl_frame t ~flow ~seq:p.p_our_isn ~ack_seq:Tcp.Seq32.zero
                   ~flags:{ S.no_flags with S.syn = true }
                   ~mss:true ())
          | `Accept _ ->
              gcount t "synack_retx";
              Datapath.control_tx t.dp
                (ctl_frame t ?win:p.p_win ~flow ~seq:p.p_our_isn
                   ~ack_seq:(Tcp.Seq32.succ p.p_peer_isn)
                   ~flags:{ S.no_flags with S.syn = true; ack = true }
                   ~mss:true ()));
          handshake_retry t flow (attempt + 1)
      | Some p when not p.p_installing -> begin
          Tcp.Flow.Tbl.remove t.pending flow;
          match p.p_kind with
          | `Connect k ->
              gcount t "connect_timeout";
              k (Error (timeout_error t))
          | `Accept _ -> gcount t "synack_expired"
        end
      | _ -> ())

(* RST in response to a segment that names no connection (guarded
   mode only). Sequence comes from the offender's ACK field so the
   peer accepts it; pure SYNs get seq 0 / ack their SYN instead. *)
let send_rst t ~flow (seg : S.t) =
  gcount t "rst_tx";
  let seq, ack_seq, ack =
    if seg.S.flags.S.ack then (seg.S.ack_seq, Tcp.Seq32.zero, false)
    else (Tcp.Seq32.zero, Tcp.Seq32.succ seg.S.seq, true)
  in
  Datapath.control_tx t.dp
    (ctl_frame t ~flow ~seq ~ack_seq
       ~flags:{ S.no_flags with S.rst = true; S.ack }
       ~mss:false ())

let handle_syn t (frame : S.frame) =
  let seg = frame.S.seg in
  gcount t "syn_rx";
  match Hashtbl.find_opt t.listeners seg.S.dst_port with
  | None ->
      (* No listener. Unguarded: silent drop (no RST modelled).
         Guarded with [g_rst]: refuse actively so the peer fails fast
         instead of retrying into the void. *)
      let flow = Tcp.Flow.of_segment_rx seg in
      if guard_rst t then send_rst t ~flow seg
  | Some (win, on_accept) ->
      let flow = Tcp.Flow.of_segment_rx seg in
      (* TIME_WAIT disambiguation: a fresh SYN may recycle a 4-tuple
         still in TIME_WAIT only when its ISN is strictly beyond the
         dead incarnation's final receive point (wraparound-aware);
         otherwise it could be an old duplicate and is refused. *)
      let tw_ok =
        match t.guard with
        | None -> true
        | Some g ->
            if Guard.tw_syn_acceptable g ~flow ~isn:seg.S.seq then begin
              (if Option.is_some (Guard.tw_find g ~flow) then
                 (* RFC 6191 recycle: the table confirms an acceptable
                    SYN releases the parked tuple. *)
                 match lstep t Conn_state.Time_wait Conn_state.Ev_tw_syn with
                 | Conn_state.Reclaimed, _ ->
                     Guard.tw_remove g ~flow;
                     Guard.count g "tw_recycled_syn"
                 | _ -> ());
              true
            end
            else begin
              Guard.count g "tw_refused_syn";
              false
            end
      in
      if not tw_ok then ()
      else if Hashtbl.mem t.paused seg.S.dst_port then
        (* Accept backpressure: the application stopped draining its
           accept queue; defer the handshake to the client's retry. *)
        gcount t "shed_paused"
      else begin
        let backlog_full =
          match t.guard with
          | None -> false
          | Some g ->
              let gc = Guard.config g in
              gc.Config.g_syn_backlog > 0
              && Tcp.Flow.Tbl.length t.pending >= gc.Config.g_syn_backlog
        in
        let admission_full =
          at_connection_limit t
          ||
          match t.guard with
          | None -> false
          | Some g ->
              let gc = Guard.config g in
              gc.Config.g_max_conns > 0
              && Hashtbl.length t.flows + Tcp.Flow.Tbl.length t.pending
                 >= gc.Config.g_max_conns
        in
        if admission_full then
          (* Connection-table pressure: shedding the SYN (newest
             first) is the only safe move — a cookie would only defer
             the failure past the handshake. *)
          gcount t "shed_admission"
        else if shard_admission_full t flow then
          (* The target shard's slice of the table is full even though
             the global budget is not: shed rather than imbalance. *)
          gcount t "shed_admission_shard"
        else if backlog_full then begin
          match t.guard with
          | Some g when (Guard.config g).Config.g_syn_cookies ->
              (* Backlog full: answer statelessly. The SYN-ACK's ISN
                 is a cookie over (flow, secret, epoch); the
                 completing ACK re-derives everything, so this costs
                 zero half-open state and is never retransmitted. *)
              Guard.count g "cookie_sent";
              let isn =
                Guard.cookie_isn g ~now:(Sim.Engine.now t.engine) ~flow
              in
              Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles
                (fun () ->
                  Datapath.control_tx t.dp
                    (ctl_frame t ?win ~flow ~seq:isn
                       ~ack_seq:(Tcp.Seq32.succ seg.S.seq)
                       ~flags:{ S.no_flags with S.syn = true; ack = true }
                       ~mss:true ()))
          | _ -> gcount t "shed_backlog"
        end
        else if not (Tcp.Flow.Tbl.mem t.pending flow) then begin
          gcount t "syn_accepted";
          let our_isn = Tcp.Seq32.of_int (Sim.Rng.int t.rng 0x3FFFFFFF) in
          let p =
            {
              p_flow = flow;
              p_our_isn = our_isn;
              p_peer_isn = seg.S.seq;
              p_win = win;
              p_ctx = alloc_ctx t;
              p_kind = `Accept on_accept;
              p_installing = false;
            }
          in
          Tcp.Flow.Tbl.replace t.pending flow p;
          Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles
            (fun () ->
              Datapath.control_tx t.dp
                (ctl_frame t ?win ~flow ~seq:our_isn
                   ~ack_seq:(Tcp.Seq32.succ seg.S.seq)
                   ~flags:{ S.no_flags with S.syn = true; ack = true }
                   ~mss:true ()));
          handshake_retry t flow 0
        end
      end

let handle_synack t (p : pending) (frame : S.frame) =
  let seg = frame.S.seg in
  match p.p_kind with
  | `Connect on_connected when not p.p_installing ->
      p.p_installing <- true;
      let p = { p with p_peer_isn = seg.S.seq } in
      Tcp.Flow.Tbl.replace t.pending p.p_flow p;
      Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
          finalize t
            ~remote_win:(seg.S.window lsl t.cfg.Config.window_scale)
            p
            (fun handle ->
              Datapath.control_tx t.dp
                (ctl_frame t ~flow:p.p_flow
                   ~seq:(Tcp.Seq32.succ p.p_our_isn)
                   ~ack_seq:(Tcp.Seq32.succ seg.S.seq)
                   ~flags:S.flags_ack ~mss:false ());
              on_connected (Ok handle)))
  | _ -> ()

let handle_handshake_ack t (p : pending) (frame : S.frame) =
  match p.p_kind with
  | `Accept on_accept when not p.p_installing ->
      p.p_installing <- true;
      Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
          finalize t
            ~remote_win:(frame.S.seg.S.window lsl t.cfg.Config.window_scale)
            p
            (fun handle ->
              on_accept handle;
              (* The handshake ACK may already carry data. *)
              if Bytes.length frame.S.seg.S.payload > 0 then
                Sim.Engine.schedule t.engine (Sim.Time.us 3) (fun () ->
                    Datapath.reinject_rx t.dp frame)))
  | _ -> ()

(* A valid cookie ACK installs the connection statelessly: our ISN is
   re-derived from the ACK field, the peer's from the sequence number.
   The pending record exists only for the duration of [finalize]. *)
let install_from_cookie t (frame : S.frame) ~flow ~win ~on_accept =
  let seg = frame.S.seg in
  gcount t "cookie_accepted";
  let p =
    {
      p_flow = flow;
      p_our_isn = Tcp.Seq32.add seg.S.ack_seq (-1);
      p_peer_isn = Tcp.Seq32.add seg.S.seq (-1);
      p_win = win;
      p_ctx = alloc_ctx t;
      p_kind = `Accept on_accept;
      p_installing = true;
    }
  in
  Tcp.Flow.Tbl.replace t.pending flow p;
  Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
      finalize t
        ~remote_win:(seg.S.window lsl t.cfg.Config.window_scale)
        p
        (fun handle ->
          on_accept handle;
          if Bytes.length seg.S.payload > 0 then
            Sim.Engine.schedule t.engine (Sim.Time.us 3) (fun () ->
                Datapath.reinject_rx t.dp frame)))

(* Abort an installed connection on an incoming RST. The transition
   table sends every phase to RECLAIMED with a notify — except that it
   cannot fire unguarded ([Ev_rst] is a no-op there), matching the
   historical RSTs-ignored semantics enforced by the caller. *)
let abort_on_rst t ~conn =
  gcount t "rst_rx";
  let outs =
    match phase_of t conn with
    | Some st -> snd (lstep t st Conn_state.Ev_rst)
    | None -> [ Conn_state.Out_notify_err; Conn_state.Out_free ]
  in
  if List.mem Conn_state.Out_notify_err outs then
    Datapath.notify_abort t.dp ~conn;
  if List.mem Conn_state.Out_free outs then forget_flow t ~conn

let control_rx t (frame : S.frame) =
  let seg = frame.S.seg in
  let flow = Tcp.Flow.of_segment_rx seg in
  match Tcp.Flow.Tbl.find_opt t.pending flow with
  | Some p ->
      if seg.S.flags.S.rst && guard_rst t then begin
        (* RST against a half-open handshake: fail it immediately
           (connects surface "Econnreset"; accepts just forget). *)
        gcount t "rst_rx";
        if not p.p_installing then begin
          Tcp.Flow.Tbl.remove t.pending flow;
          match p.p_kind with
          | `Connect k -> k (Error "Econnreset")
          | `Accept _ -> ()
        end
      end
      else if seg.S.flags.S.syn && seg.S.flags.S.ack then
        handle_synack t p frame
      else if seg.S.flags.S.syn then () (* SYN retransmit: SYN-ACK lost;
                                           resent on CP timeout below *)
      else if p.p_installing then
        (* Data raced connection installation: requeue into the RX
           pipeline once the install DMA has settled. *)
        Sim.Engine.schedule t.engine (Sim.Time.us 3) (fun () ->
            Datapath.reinject_rx t.dp frame)
      else if seg.S.flags.S.ack then handle_handshake_ack t p frame
  | None ->
      if seg.S.flags.S.rst then begin
        (* RST to an installed connection aborts it (including during
           half-close); RST to nothing is ignored. Unguarded, RSTs
           keep their historical no-op semantics. *)
        if guard_rst t then
          match Datapath.conn_of_flow t.dp flow with
          | Some conn -> abort_on_rst t ~conn
          | None -> ()
      end
      else if seg.S.flags.S.syn && not seg.S.flags.S.ack then
        handle_syn t frame
      else if S.data_path_flags seg.S.flags && Datapath.has_flow t.dp flow
      then
        (* The segment was in flight through the CPI forwarding path
           when the connection finished installing: hand it back to
           the data path. *)
        Sim.Engine.schedule t.engine (Sim.Time.us 1) (fun () ->
            Datapath.reinject_rx t.dp frame)
      else
        match t.guard with
        | None -> ()  (* Stale segment of a dead connection: drop. *)
        | Some g -> (
            let gc = Guard.config g in
            let listener = Hashtbl.find_opt t.listeners seg.S.dst_port in
            if
              gc.Config.g_syn_cookies && seg.S.flags.S.ack
              && (not seg.S.flags.S.syn)
              && listener <> None
              && Guard.cookie_check g
                   ~now:(Sim.Engine.now t.engine)
                   ~flow
                   ~isn:(Tcp.Seq32.add seg.S.ack_seq (-1))
            then begin
              (* Completing ACK of a stateless SYN-ACK. Admission is
                 re-checked here: cookies defer the table commitment
                 to this point. *)
              if at_connection_limit t then gcount t "shed_admission"
              else if shard_admission_full t flow then
                gcount t "shed_admission_shard"
              else
                match listener with
                | Some (win, on_accept) ->
                    install_from_cookie t frame ~flow ~win ~on_accept
                | None -> ()
            end
            else
              match Guard.tw_find g ~flow with
              | Some (snd_nxt, rcv_nxt) when seg.S.flags.S.fin ->
                  (* The peer retransmitted its FIN into our
                     TIME_WAIT: our final ACK was lost. The re-ACK
                     edge is the transition table's — dropping it
                     there fails both the FSM checker and this path. *)
                  if
                    List.mem Conn_state.Out_reack
                      (snd (lstep t Conn_state.Time_wait Conn_state.Ev_tw_fin))
                  then begin
                    Guard.count g "tw_reack";
                    Datapath.control_tx t.dp
                      (ctl_frame t ~flow ~seq:snd_nxt ~ack_seq:rcv_nxt
                         ~flags:S.flags_ack ~mss:false ())
                  end
              | Some _ -> ()
              | None ->
                  (* No connection, no cookie, no TIME_WAIT: actively
                     refuse so the peer aborts instead of timing out. *)
                  if gc.Config.g_rst then send_rst t ~flow seg)

(* --- Public connection API ------------------------------------------ *)

let listen t ?syn_ack_window ?(app = 0) ~port ~on_accept () =
  (match port_owner t port with
  | Some owner when owner <> app ->
      invalid_arg
        (Printf.sprintf
           "Control_plane.listen: port %d is reserved for application %d"
           port owner)
  | _ -> ());
  Hashtbl.replace t.listeners port (syn_ack_window, on_accept)

let connect t ~remote_ip ~remote_port ~ctx ~on_connected =
  if at_connection_limit t then
    on_connected (Error "connection limit reached")
  else
  let local_port = t.next_port in
  t.next_port <- t.next_port + 1;
  let flow =
    Tcp.Flow.v ~local_ip:(Datapath.ip t.dp) ~local_port ~remote_ip
      ~remote_port
  in
  let our_isn = Tcp.Seq32.of_int (Sim.Rng.int t.rng 0x3FFFFFFF) in
  let p =
    {
      p_flow = flow;
      p_our_isn = our_isn;
      p_peer_isn = Tcp.Seq32.zero;
      p_win = None;
      p_ctx = ctx;
      p_kind = `Connect on_connected;
      p_installing = false;
    }
  in
  Tcp.Flow.Tbl.replace t.pending flow p;
  Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
      Datapath.control_tx t.dp
        (ctl_frame t ~flow ~seq:our_isn ~ack_seq:Tcp.Seq32.zero
           ~flags:{ S.no_flags with S.syn = true }
           ~mss:true ()));
  handshake_retry t flow 0

(* Idempotent: a second close, or a close racing teardown/abort
   (unknown conn), is a no-op — in particular no second FIN is pushed
   through the CPI, where it could overtake an in-flight Tx_avail on
   another context ring. libTOE passes [~send_fin:false] because it
   already ordered the FIN behind its pending Tx_avails on the sock's
   own ring. *)
let close ?(send_fin = true) t ~conn =
  match Hashtbl.find_opt t.flows conn with
  | None -> ()
  | Some f ->
      let first = not f.cf_closing in
      f.cf_closing <- true;
      if send_fin && first then
        (* A first close finds the flow in ESTABLISHED or CLOSE_WAIT
           (tx_fin is only ever set by this FIN), and the table emits
           [Out_send_fin] from exactly those states. *)
        let outs =
          match phase_of t conn with
          | Some st -> snd (lstep t st Conn_state.Ev_app_close)
          | None -> [ Conn_state.Out_send_fin ]
        in
        if List.mem Conn_state.Out_send_fin outs then
          Datapath.cp_push t.dp { Meta.h_conn = conn; h_op = Meta.Fin }

(* --- Congestion control ----------------------------------------------- *)

let apply_rate t (f : cc_flow) bps =
  (* The administrative ceiling composes with congestion control: the
     stricter of the two wins. *)
  let bps =
    if f.cf_limit_bps > 0 then
      if bps = 0 then f.cf_limit_bps else min bps f.cf_limit_bps
    else bps
  in
  if bps <> f.cf_rate_bps then begin
    f.cf_rate_bps <- bps;
    t.on_rate_change ~conn:f.cf_conn ~bps;
    Datapath.set_rate t.dp ~conn:f.cf_conn ~bps
  end

let apply_decision t f = function
  | Cc.Keep -> ()
  | Cc.Rate bps -> apply_rate t f bps
  | Cc.Uncongested -> apply_rate t f 0

let set_rate_limit t ~conn ~bps =
  match Hashtbl.find_opt t.flows conn with
  | Some f ->
      f.cf_limit_bps <- max 0 bps;
      (* Re-apply so the limit takes effect immediately. *)
      apply_rate t f f.cf_rate_bps
  | None -> ()

let rate_limit t ~conn =
  match Hashtbl.find_opt t.flows conn with
  | Some f -> f.cf_limit_bps
  | None -> 0


let iterate_flow t now (f : cc_flow) =
  let st = Datapath.read_cc_stats t.dp ~conn:f.cf_conn in
  f.cf_acc_ackb <- f.cf_acc_ackb + st.Datapath.ackb;
  f.cf_acc_ecnb <- f.cf_acc_ecnb + st.Datapath.ecnb;
  f.cf_acc_fretx <- f.cf_acc_fretx + st.Datapath.fretx;
  (* Forward progress re-arms the timeout at its base value. *)
  if st.Datapath.ackb > 0 then begin
    f.cf_rto <- t.cfg.Config.rto;
    f.cf_retries <- 0
  end;
  (* Retransmission timeout monitoring (§3.4): only data actually in
     flight can time out — a paced flow between transmissions is not
     stalled. Consecutive timeouts without progress back the timeout
     off exponentially (capped), and past [max_rto_retries] the flow
     is declared dead: the application is notified ([x_err]) and the
     connection is torn down. *)
  let aborted =
    if
      st.Datapath.tx_inflight > 0
      && now - st.Datapath.last_progress > f.cf_rto
    then
      if f.cf_retries >= t.cfg.Config.max_rto_retries then begin
        t.rto_aborts <- t.rto_aborts + 1;
        Datapath.notify_abort t.dp ~conn:f.cf_conn;
        forget_flow t ~conn:f.cf_conn;
        true
      end
      else begin
        t.rto_count <- t.rto_count + 1;
        t.rto_log <- (f.cf_conn, now) :: t.rto_log;
        Datapath.cp_push t.dp
          { Meta.h_conn = f.cf_conn; h_op = Meta.Retransmit };
        f.cf_acc_fretx <- f.cf_acc_fretx + 1;
        f.cf_retries <- f.cf_retries + 1;
        f.cf_rto <- min (2 * f.cf_rto) t.cfg.Config.rto_max;
        false
      end
    else false
  in
  if aborted then ()
  else begin
  if st.Datapath.ack_pending then
    Datapath.cp_push t.dp { Meta.h_conn = f.cf_conn; h_op = Meta.Ack_flush };
  (* One congestion decision per (estimated) RTT. *)
  let decision_interval =
    max t.cfg.Config.cc_interval (Sim.Time.ns st.Datapath.rtt_est_ns)
  in
  if now - f.cf_last_decision >= decision_interval then begin
    let obs =
      {
        Cc.acked_bytes = f.cf_acc_ackb;
        ecn_bytes = f.cf_acc_ecnb;
        fast_retx = f.cf_acc_fretx;
        rtt_ns = st.Datapath.rtt_est_ns;
        interval = now - f.cf_last_decision;
      }
    in
    f.cf_acc_ackb <- 0;
    f.cf_acc_ecnb <- 0;
    f.cf_acc_fretx <- 0;
    f.cf_last_decision <- now;
    match f.cf_state with
    | Dctcp d ->
        apply_decision t f (Cc.Dctcp.update d ~wire_bps:(wire_bps t.cfg) obs)
    | Timely tm ->
        apply_decision t f
          (Cc.Timely.update tm ~wire_bps:(wire_bps t.cfg) obs)
    | No_cc -> ()
  end;
  (* Teardown: both directions closed. Guarded with a TIME_WAIT hold,
     the 4-tuple parks in the guard's table (so late segments are
     re-ACKed and only sufficiently-new SYNs recycle it) while the
     data-path state frees immediately — TIME_WAIT costs a table
     entry, never a connection slot. *)
  if f.cf_closing then begin
    match Datapath.conn t.dp f.cf_conn with
    | Some cs -> (
        (* The table reclaims on [Ev_teardown] only from CLOSED
           (fin_acked implies tx_fin, so CLOSED is exactly the old
           fin_acked && rx_fin test), entering TIME_WAIT when a hold
           is configured. *)
        match
          lstep t
            (Conn_state.Phase (Conn_state.close_phase cs))
            Conn_state.Ev_teardown
        with
        | Conn_state.Time_wait, _ ->
            (match t.guard with
            | Some g ->
                let snd_nxt =
                  Tcp.Seq32.add
                    (Conn_state.tx_seq_of_pos cs
                       cs.Conn_state.proto.Conn_state.tx_tail_pos)
                    1
                in
                let rcv_nxt =
                  Tcp.Reassembly.next cs.Conn_state.proto.Conn_state.reasm
                in
                Guard.tw_add g ~now ~flow:cs.Conn_state.flow ~snd_nxt
                  ~rcv_nxt
            | None -> ());
            forget_flow t ~conn:f.cf_conn
        | Conn_state.Reclaimed, _ -> forget_flow t ~conn:f.cf_conn
        | _ -> ())
    | None -> ()
  end
  end

(* FlexGuard reaper: expires TIME_WAIT entries and reclaims teardown
   state that stopped making progress. Scheduled only when the guard
   is on, so the default configuration adds zero engine events.

   Which states are reapable, which are exempt (Established: the
   application's business however idle; Close_wait: the peer closed
   but the local app still owns the socket — no TCP timer covers it),
   and which reclaims are quiet orphans (Fin_wait_2/Closed: our FIN
   acked, every byte delivered) versus genuine aborts
   (Fin_wait_1/Closing: a vanished peer) is all [Conn_state.step]'s
   [Ev_reap_idle] row — the reaper just applies the table's verdict. *)
let rec guard_loop t g () =
  let now = Sim.Engine.now t.engine in
  ignore (Guard.tw_reap g ~now);
  let gc = Guard.config g in
  if gc.Config.g_idle_timeout > Sim.Time.zero then begin
    let stale =
      Hashtbl.fold
        (fun _ f acc ->
          match Datapath.conn t.dp f.cf_conn with
          | Some cs
            when now - cs.Conn_state.proto.Conn_state.last_progress
                 > gc.Config.g_idle_timeout -> (
              match
                lstep t
                  (Conn_state.Phase (Conn_state.close_phase cs))
                  Conn_state.Ev_reap_idle
              with
              | Conn_state.Reclaimed, outs ->
                  (f, not (List.mem Conn_state.Out_notify_err outs)) :: acc
              | _ -> acc)
          | _ -> acc)
        t.flows []
    in
    List.iter
      (fun (f, orphan) ->
        if orphan then Guard.count g "reaped_orphan"
        else begin
          Guard.count g "reaped_idle";
          Datapath.notify_abort t.dp ~conn:f.cf_conn
        end;
        forget_flow t ~conn:f.cf_conn)
      stale
  end;
  Sim.Engine.schedule t.engine gc.Config.g_reap_interval (guard_loop t g)

let set_listener_paused t ~port paused =
  if paused then Hashtbl.replace t.paused port ()
  else Hashtbl.remove t.paused port

let listener_paused t ~port = Hashtbl.mem t.paused port

let rec cc_loop t () =
  let now = Sim.Engine.now t.engine in
  let flows = Hashtbl.fold (fun _ f acc -> f :: acc) t.flows [] in
  let n = List.length flows in
  if n > 0 then
    Host.Host_cpu.exec t.core ~category:"cp" ~cycles:(n * cc_flow_cycles)
      (fun () -> List.iter (iterate_flow t now) flows);
  Sim.Engine.schedule t.engine t.cfg.Config.cc_interval (cc_loop t)

let create engine ~config ~datapath ~core () =
  let t =
    {
      engine;
      cfg = config;
      dp = datapath;
      core;
      rng = Sim.Rng.split (Sim.Engine.Local.rng engine);
      guard = Datapath.guard datapath;
      paused = Hashtbl.create 4;
      listeners = Hashtbl.create 16;
      pending = Tcp.Flow.Tbl.create 64;
      flows = Hashtbl.create 256;
      next_port = 40_000;
      next_ctx = 0;
      rto_count = 0;
      rto_aborts = 0;
      rto_log = [];
      on_rate_change = (fun ~conn:_ ~bps:_ -> ());
      conn_limit = None;
      partitions = [];
      shard_installed =
        Array.make (Flow_group.shards_of config.Config.scale) 0;
    }
  in
  Datapath.set_control_rx datapath (control_rx t);
  Sim.Engine.schedule engine config.Config.cc_interval (cc_loop t);
  (match t.guard with
  | Some g ->
      Sim.Engine.schedule engine
        (Guard.config g).Config.g_reap_interval
        (guard_loop t g)
  | None -> ());
  t
