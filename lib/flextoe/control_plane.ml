module S = Tcp.Segment

let mac_of_ip ip = 0x020000000000 lor ip

type conn_handle = {
  ch_conn : int;
  ch_ctx : int;
  ch_state : Conn_state.t;
}

type pending = {
  p_flow : Tcp.Flow.t;
  p_our_isn : Tcp.Seq32.t;
  p_peer_isn : Tcp.Seq32.t;
  p_win : int option;  (* window override for our SYN-ACK *)
  p_ctx : int;
  p_kind :
    [ `Accept of conn_handle -> unit
    | `Connect of (conn_handle, string) result -> unit ];
  mutable p_installing : bool;
}

(* Congestion-control state kept per monitored flow. *)
type cc_state = No_cc | Dctcp of Cc.Dctcp.t | Timely of Cc.Timely.t

type cc_flow = {
  cf_conn : int;
  cf_state : cc_state;
  mutable cf_rate_bps : int;  (* last programmed rate; 0 = uncongested *)
  mutable cf_limit_bps : int;  (* administrative ceiling; 0 = none *)
  (* The control loop polls every cc_interval, but each flow's
     congestion decision runs at most once per RTT (§3.4: "the
     interval ... is determined by the round-trip time of each
     flow"); statistics accumulate in between. *)
  mutable cf_acc_ackb : int;
  mutable cf_acc_ecnb : int;
  mutable cf_acc_fretx : int;
  mutable cf_last_decision : Sim.Time.t;
  mutable cf_closing : bool;
  (* Retransmission-timeout state: the current (backed-off) timeout
     and the consecutive timeouts since the acked point last moved. *)
  mutable cf_rto : Sim.Time.t;
  mutable cf_retries : int;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  dp : Datapath.t;
  core : Host.Host_cpu.core;
  rng : Sim.Rng.t;
  listeners : (int, int option * (conn_handle -> unit)) Hashtbl.t;
  pending : pending Tcp.Flow.Tbl.t;
  flows : (int, cc_flow) Hashtbl.t;
  mutable next_port : int;
  mutable next_ctx : int;
  mutable rto_count : int;
  mutable rto_aborts : int;
  mutable rto_log : (int * Sim.Time.t) list;  (* newest first *)
  mutable on_rate_change : conn:int -> bps:int -> unit;
  mutable conn_limit : int option;
  mutable partitions : (int * int * int) list;  (* lo, hi, app *)
}

let active_flows t = Hashtbl.length t.flows
let retransmit_timeouts t = t.rto_count
let retransmit_aborts t = t.rto_aborts
let rto_events t = List.rev t.rto_log
let set_on_rate_change t f = t.on_rate_change <- f

let cp_cycles = 1800  (* handshake step on the CP core *)
let cc_flow_cycles = 250  (* per-flow CC iteration *)

let wire_bps cfg =
  int_of_float (cfg.Config.params.Nfp.Params.wire_gbps *. 1e9)

(* --- Segment builders ---------------------------------------------- *)

let ctl_frame t ?win ~flow ~seq ~ack_seq ~flags ~mss () =
  let default_win =
    min 0xFFFF (t.cfg.Config.rx_buf_bytes lsr t.cfg.Config.window_scale)
  in
  let seg =
    S.make ~flags
      ~options:
        {
          S.mss = (if mss then Some t.cfg.Config.mss else None);
          ts = None;
        }
      ~window:(Option.value ~default:default_win win)
      ~src_ip:flow.Tcp.Flow.local_ip ~dst_ip:flow.Tcp.Flow.remote_ip
      ~src_port:flow.Tcp.Flow.local_port
      ~dst_port:flow.Tcp.Flow.remote_port ~seq ~ack_seq ()
  in
  S.make_frame
    ~src_mac:(mac_of_ip flow.Tcp.Flow.local_ip)
    ~dst_mac:(mac_of_ip flow.Tcp.Flow.remote_ip)
    seg

(* --- Connection establishment --------------------------------------- *)

let finalize t ?remote_win (p : pending) k =
  let idx = Datapath.alloc_conn_idx t.dp in
  let flow = p.p_flow in
  let cs =
    Conn_state.create ~idx ~flow
      ~peer_mac:(mac_of_ip flow.Tcp.Flow.remote_ip)
      ~flow_group:
        (Tcp.Flow.flow_group flow
           ~groups:t.cfg.Config.parallelism.Config.flow_groups)
      ~tx_isn:p.p_our_isn ~rx_isn:p.p_peer_isn ?remote_win ~opaque:idx
      ~ctx_id:p.p_ctx ~rx_buf_bytes:t.cfg.Config.rx_buf_bytes
      ~tx_buf_bytes:t.cfg.Config.tx_buf_bytes ()
  in
  cs.Conn_state.proto.Conn_state.last_progress <- Sim.Engine.now t.engine;
  Datapath.install_conn t.dp cs ~k:(fun () ->
      Hashtbl.replace t.flows idx
        {
          cf_conn = idx;
          cf_state =
            (match t.cfg.Config.cc with
            | Config.Dctcp -> Dctcp (Cc.Dctcp.create ())
            | Config.Timely -> Timely (Cc.Timely.create ())
            | Config.Cc_none -> No_cc);
          cf_rate_bps = 0;
          cf_limit_bps = 0;
          cf_acc_ackb = 0;
          cf_acc_ecnb = 0;
          cf_acc_fretx = 0;
          cf_last_decision = Sim.Engine.now t.engine;
          cf_closing = false;
          cf_rto = t.cfg.Config.rto;
          cf_retries = 0;
        };
      Tcp.Flow.Tbl.remove t.pending p.p_flow;
      k { ch_conn = idx; ch_ctx = p.p_ctx; ch_state = cs })

let alloc_ctx t =
  let c = t.next_ctx mod Datapath.num_ctx t.dp in
  t.next_ctx <- t.next_ctx + 1;
  c

let set_connection_limit t limit = t.conn_limit <- limit

let at_connection_limit t =
  match t.conn_limit with
  | Some l ->
      (* Half-open handshakes count toward the limit, or a burst of
         simultaneous SYNs would blow past it. *)
      Hashtbl.length t.flows + Tcp.Flow.Tbl.length t.pending >= l
  | None -> false

let reserve_ports t ~lo ~hi ~app =
  t.partitions <- (lo, hi, app) :: t.partitions

let port_owner t port =
  List.find_map
    (fun (lo, hi, app) -> if port >= lo && port <= hi then Some app else None)
    t.partitions

(* Handshake packets can be lost; the CP retries SYN / SYN-ACK while
   the connection is still pending. *)
let rec handshake_retry t flow attempt =
  Sim.Engine.schedule t.engine (Sim.Time.ms 5) (fun () ->
      match Tcp.Flow.Tbl.find_opt t.pending flow with
      | Some p when (not p.p_installing) && attempt < 10 ->
          (match p.p_kind with
          | `Connect _ ->
              Datapath.control_tx t.dp
                (ctl_frame t ~flow ~seq:p.p_our_isn ~ack_seq:Tcp.Seq32.zero
                   ~flags:{ S.no_flags with S.syn = true }
                   ~mss:true ())
          | `Accept _ ->
              Datapath.control_tx t.dp
                (ctl_frame t ?win:p.p_win ~flow ~seq:p.p_our_isn
                   ~ack_seq:(Tcp.Seq32.succ p.p_peer_isn)
                   ~flags:{ S.no_flags with S.syn = true; ack = true }
                   ~mss:true ()));
          handshake_retry t flow (attempt + 1)
      | Some p when (not p.p_installing) && attempt >= 10 -> begin
          Tcp.Flow.Tbl.remove t.pending flow;
          match p.p_kind with
          | `Connect k -> k (Error "connection timed out")
          | `Accept _ -> ()
        end
      | _ -> ())

let handle_syn t (frame : S.frame) =
  let seg = frame.S.seg in
  match Hashtbl.find_opt t.listeners seg.S.dst_port with
  | None -> ()  (* No listener: drop (no RST modelled). *)
  | Some (win, on_accept) ->
      let flow = Tcp.Flow.of_segment_rx seg in
      if at_connection_limit t then ()  (* policy: ignore the SYN *)
      else if not (Tcp.Flow.Tbl.mem t.pending flow) then begin
        let our_isn = Tcp.Seq32.of_int (Sim.Rng.int t.rng 0x3FFFFFFF) in
        let p =
          {
            p_flow = flow;
            p_our_isn = our_isn;
            p_peer_isn = seg.S.seq;
            p_win = win;
            p_ctx = alloc_ctx t;
            p_kind = `Accept on_accept;
            p_installing = false;
          }
        in
        Tcp.Flow.Tbl.replace t.pending flow p;
        Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
            Datapath.control_tx t.dp
              (ctl_frame t ?win ~flow ~seq:our_isn
                 ~ack_seq:(Tcp.Seq32.succ seg.S.seq)
                 ~flags:{ S.no_flags with S.syn = true; ack = true }
                 ~mss:true ()));
        handshake_retry t flow 0
      end

let handle_synack t (p : pending) (frame : S.frame) =
  let seg = frame.S.seg in
  match p.p_kind with
  | `Connect on_connected when not p.p_installing ->
      p.p_installing <- true;
      let p = { p with p_peer_isn = seg.S.seq } in
      Tcp.Flow.Tbl.replace t.pending p.p_flow p;
      Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
          finalize t
            ~remote_win:(seg.S.window lsl t.cfg.Config.window_scale)
            p
            (fun handle ->
              Datapath.control_tx t.dp
                (ctl_frame t ~flow:p.p_flow
                   ~seq:(Tcp.Seq32.succ p.p_our_isn)
                   ~ack_seq:(Tcp.Seq32.succ seg.S.seq)
                   ~flags:S.flags_ack ~mss:false ());
              on_connected (Ok handle)))
  | _ -> ()

let handle_handshake_ack t (p : pending) (frame : S.frame) =
  match p.p_kind with
  | `Accept on_accept when not p.p_installing ->
      p.p_installing <- true;
      Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
          finalize t
            ~remote_win:(frame.S.seg.S.window lsl t.cfg.Config.window_scale)
            p
            (fun handle ->
              on_accept handle;
              (* The handshake ACK may already carry data. *)
              if Bytes.length frame.S.seg.S.payload > 0 then
                Sim.Engine.schedule t.engine (Sim.Time.us 3) (fun () ->
                    Datapath.reinject_rx t.dp frame)))
  | _ -> ()

let control_rx t (frame : S.frame) =
  let seg = frame.S.seg in
  let flow = Tcp.Flow.of_segment_rx seg in
  match Tcp.Flow.Tbl.find_opt t.pending flow with
  | Some p ->
      if seg.S.flags.S.syn && seg.S.flags.S.ack then handle_synack t p frame
      else if seg.S.flags.S.syn then () (* SYN retransmit: SYN-ACK lost;
                                           resent on CP timeout below *)
      else if p.p_installing then
        (* Data raced connection installation: requeue into the RX
           pipeline once the install DMA has settled. *)
        Sim.Engine.schedule t.engine (Sim.Time.us 3) (fun () ->
            Datapath.reinject_rx t.dp frame)
      else if seg.S.flags.S.ack then handle_handshake_ack t p frame
  | None ->
      if seg.S.flags.S.syn && not seg.S.flags.S.ack then handle_syn t frame
      else if S.data_path_flags seg.S.flags && Datapath.has_flow t.dp flow
      then
        (* The segment was in flight through the CPI forwarding path
           when the connection finished installing: hand it back to
           the data path. *)
        Sim.Engine.schedule t.engine (Sim.Time.us 1) (fun () ->
            Datapath.reinject_rx t.dp frame)
      else ()  (* Stale segment of a dead connection: drop. *)

(* --- Public connection API ------------------------------------------ *)

let listen t ?syn_ack_window ?(app = 0) ~port ~on_accept () =
  (match port_owner t port with
  | Some owner when owner <> app ->
      invalid_arg
        (Printf.sprintf
           "Control_plane.listen: port %d is reserved for application %d"
           port owner)
  | _ -> ());
  Hashtbl.replace t.listeners port (syn_ack_window, on_accept)

let connect t ~remote_ip ~remote_port ~ctx ~on_connected =
  if at_connection_limit t then
    on_connected (Error "connection limit reached")
  else
  let local_port = t.next_port in
  t.next_port <- t.next_port + 1;
  let flow =
    Tcp.Flow.v ~local_ip:(Datapath.ip t.dp) ~local_port ~remote_ip
      ~remote_port
  in
  let our_isn = Tcp.Seq32.of_int (Sim.Rng.int t.rng 0x3FFFFFFF) in
  let p =
    {
      p_flow = flow;
      p_our_isn = our_isn;
      p_peer_isn = Tcp.Seq32.zero;
      p_win = None;
      p_ctx = ctx;
      p_kind = `Connect on_connected;
      p_installing = false;
    }
  in
  Tcp.Flow.Tbl.replace t.pending flow p;
  Host.Host_cpu.exec t.core ~category:"cp" ~cycles:cp_cycles (fun () ->
      Datapath.control_tx t.dp
        (ctl_frame t ~flow ~seq:our_isn ~ack_seq:Tcp.Seq32.zero
           ~flags:{ S.no_flags with S.syn = true }
           ~mss:true ()));
  handshake_retry t flow 0

let close t ~conn =
  (match Hashtbl.find_opt t.flows conn with
  | Some f -> f.cf_closing <- true
  | None -> ());
  Datapath.cp_push t.dp { Meta.h_conn = conn; h_op = Meta.Fin }

(* --- Congestion control ----------------------------------------------- *)

let apply_rate t (f : cc_flow) bps =
  (* The administrative ceiling composes with congestion control: the
     stricter of the two wins. *)
  let bps =
    if f.cf_limit_bps > 0 then
      if bps = 0 then f.cf_limit_bps else min bps f.cf_limit_bps
    else bps
  in
  if bps <> f.cf_rate_bps then begin
    f.cf_rate_bps <- bps;
    t.on_rate_change ~conn:f.cf_conn ~bps;
    Datapath.set_rate t.dp ~conn:f.cf_conn ~bps
  end

let apply_decision t f = function
  | Cc.Keep -> ()
  | Cc.Rate bps -> apply_rate t f bps
  | Cc.Uncongested -> apply_rate t f 0

let set_rate_limit t ~conn ~bps =
  match Hashtbl.find_opt t.flows conn with
  | Some f ->
      f.cf_limit_bps <- max 0 bps;
      (* Re-apply so the limit takes effect immediately. *)
      apply_rate t f f.cf_rate_bps
  | None -> ()

let rate_limit t ~conn =
  match Hashtbl.find_opt t.flows conn with
  | Some f -> f.cf_limit_bps
  | None -> 0


let iterate_flow t now (f : cc_flow) =
  let st = Datapath.read_cc_stats t.dp ~conn:f.cf_conn in
  f.cf_acc_ackb <- f.cf_acc_ackb + st.Datapath.ackb;
  f.cf_acc_ecnb <- f.cf_acc_ecnb + st.Datapath.ecnb;
  f.cf_acc_fretx <- f.cf_acc_fretx + st.Datapath.fretx;
  (* Forward progress re-arms the timeout at its base value. *)
  if st.Datapath.ackb > 0 then begin
    f.cf_rto <- t.cfg.Config.rto;
    f.cf_retries <- 0
  end;
  (* Retransmission timeout monitoring (§3.4): only data actually in
     flight can time out — a paced flow between transmissions is not
     stalled. Consecutive timeouts without progress back the timeout
     off exponentially (capped), and past [max_rto_retries] the flow
     is declared dead: the application is notified ([x_err]) and the
     connection is torn down. *)
  let aborted =
    if
      st.Datapath.tx_inflight > 0
      && now - st.Datapath.last_progress > f.cf_rto
    then
      if f.cf_retries >= t.cfg.Config.max_rto_retries then begin
        t.rto_aborts <- t.rto_aborts + 1;
        Datapath.notify_abort t.dp ~conn:f.cf_conn;
        Datapath.remove_conn t.dp ~conn:f.cf_conn;
        Hashtbl.remove t.flows f.cf_conn;
        true
      end
      else begin
        t.rto_count <- t.rto_count + 1;
        t.rto_log <- (f.cf_conn, now) :: t.rto_log;
        Datapath.cp_push t.dp
          { Meta.h_conn = f.cf_conn; h_op = Meta.Retransmit };
        f.cf_acc_fretx <- f.cf_acc_fretx + 1;
        f.cf_retries <- f.cf_retries + 1;
        f.cf_rto <- min (2 * f.cf_rto) t.cfg.Config.rto_max;
        false
      end
    else false
  in
  if aborted then ()
  else begin
  if st.Datapath.ack_pending then
    Datapath.cp_push t.dp { Meta.h_conn = f.cf_conn; h_op = Meta.Ack_flush };
  (* One congestion decision per (estimated) RTT. *)
  let decision_interval =
    max t.cfg.Config.cc_interval (Sim.Time.ns st.Datapath.rtt_est_ns)
  in
  if now - f.cf_last_decision >= decision_interval then begin
    let obs =
      {
        Cc.acked_bytes = f.cf_acc_ackb;
        ecn_bytes = f.cf_acc_ecnb;
        fast_retx = f.cf_acc_fretx;
        rtt_ns = st.Datapath.rtt_est_ns;
        interval = now - f.cf_last_decision;
      }
    in
    f.cf_acc_ackb <- 0;
    f.cf_acc_ecnb <- 0;
    f.cf_acc_fretx <- 0;
    f.cf_last_decision <- now;
    match f.cf_state with
    | Dctcp d ->
        apply_decision t f (Cc.Dctcp.update d ~wire_bps:(wire_bps t.cfg) obs)
    | Timely tm ->
        apply_decision t f
          (Cc.Timely.update tm ~wire_bps:(wire_bps t.cfg) obs)
    | No_cc -> ()
  end;
  (* Teardown: both directions closed. *)
  if f.cf_closing then begin
    match Datapath.conn t.dp f.cf_conn with
    | Some cs
      when cs.Conn_state.proto.Conn_state.fin_acked
           && cs.Conn_state.proto.Conn_state.rx_fin ->
        Datapath.remove_conn t.dp ~conn:f.cf_conn;
        Hashtbl.remove t.flows f.cf_conn
    | _ -> ()
  end
  end

let rec cc_loop t () =
  let now = Sim.Engine.now t.engine in
  let flows = Hashtbl.fold (fun _ f acc -> f :: acc) t.flows [] in
  let n = List.length flows in
  if n > 0 then
    Host.Host_cpu.exec t.core ~category:"cp" ~cycles:(n * cc_flow_cycles)
      (fun () -> List.iter (iterate_flow t now) flows);
  Sim.Engine.schedule t.engine t.cfg.Config.cc_interval (cc_loop t)

let create engine ~config ~datapath ~core () =
  let t =
    {
      engine;
      cfg = config;
      dp = datapath;
      core;
      rng = Sim.Rng.split (Sim.Engine.rng engine);
      listeners = Hashtbl.create 16;
      pending = Tcp.Flow.Tbl.create 64;
      flows = Hashtbl.create 256;
      next_port = 40_000;
      next_ctx = 0;
      rto_count = 0;
      rto_aborts = 0;
      rto_log = [];
      on_rate_change = (fun ~conn:_ ~bps:_ -> ());
      conn_limit = None;
      partitions = [];
    }
  in
  Datapath.set_control_rx datapath (control_rx t);
  Sim.Engine.schedule engine config.Config.cc_interval (cc_loop t);
  t
