(** The FlexTOE control plane (§3.4).

    Runs on the host in its own protection domain (a dedicated core)
    and owns everything the data path does not: ARP-free connection
    control (the TCP handshake, port and buffer allocation, data-path
    state installation), retransmission timeouts (go-back-N resets via
    HC), and the congestion-control loop (DCTCP by default, TIMELY as
    an alternative) that reads per-flow statistics from the data path
    and programs rates into the flow scheduler.

    The MAC of a peer is derived from its IP ([mac_of_ip]) — the
    testbed substitute for ARP resolution. *)

type t

type conn_handle = {
  ch_conn : int;  (** Data-path connection index. *)
  ch_ctx : int;  (** Context queue the connection is bound to. *)
  ch_state : Conn_state.t;
      (** Shared so libTOE can reach the host payload buffers, which
          live in host memory. libTOE must not touch the protocol
          partition. *)
}

val create :
  Sim.Engine.t ->
  config:Config.t ->
  datapath:Datapath.t ->
  core:Host.Host_cpu.core ->
  unit ->
  t
(** Registers itself as the data path's control-segment receiver and
    starts the CC/RTO iteration loop. *)

val mac_of_ip : int -> int
(** The fabric-wide IP-to-MAC convention. *)

val listen :
  t ->
  ?syn_ack_window:int ->
  ?app:int ->
  port:int ->
  on_accept:(conn_handle -> unit) ->
  unit ->
  unit
(** [syn_ack_window] overrides the (scaled) window advertised in our
    SYN-ACK — a splicing proxy advertises zero so no payload arrives
    before the splice is installed. [app] (default 0) identifies the
    application for port partitioning; listening on a port reserved
    for another app raises [Invalid_argument]. *)

val connect :
  t ->
  remote_ip:int ->
  remote_port:int ->
  ctx:int ->
  on_connected:((conn_handle, string) result -> unit) ->
  unit

val close : ?send_fin:bool -> t -> conn:int -> unit
(** Application close: sends FIN through HC; the connection is
    deallocated once both directions have closed. Idempotent — a
    second close or a close on an unknown (never-established or
    already-removed) connection is a no-op. [~send_fin:false] marks
    the flow closing without pushing a FIN through the CPI: used by
    libTOE, which orders the FIN behind its pending Tx_avails on the
    sock's own context ring (pushing a second FIN on ring 0 could
    overtake them and freeze the stream tail early). *)

val set_listener_paused : t -> port:int -> bool -> unit
(** Accept-queue backpressure: while paused, incoming SYNs for the
    port are deferred to the client's retransmission (counted as
    [shed_paused]) instead of accepted. *)

val listener_paused : t -> port:int -> bool

val active_flows : t -> int

val shard_conns : t -> int array
(** Installed connections per FlexScale shard group (a copy; length 1
    when sharding is off). Per-shard admission sheds a SYN — counted
    as [shed_admission_shard] — once its shard reaches its even slice
    (ceiling) of [g_max_conns], while the global admission check stays
    in force. *)

val retransmit_timeouts : t -> int
(** Timeout-triggered go-back-N retransmissions issued so far. *)

val retransmit_aborts : t -> int
(** Connections torn down after [max_rto_retries] consecutive
    timeouts without forward progress. The application is notified
    through its context queue ([x_err]). *)

val rto_events : t -> (int * Sim.Time.t) list
(** Every timeout-triggered retransmission as (connection, time), in
    chronological order — consecutive gaps for one connection expose
    the exponential backoff. *)

val set_on_rate_change : t -> (conn:int -> bps:int -> unit) -> unit
(** Test/inspection hook: observe CC rate decisions. *)

(** {1 Control-plane policies (§3.4)}

    Beyond congestion control, the control plane enforces
    administrative policies: per-connection rate limits (composed
    with the congestion controller: the stricter wins), a
    per-application limit on concurrent connections, and port
    partitioning among applications. *)

val set_rate_limit : t -> conn:int -> bps:int -> unit
(** Administrative ceiling for one flow; [0] removes it. Enforced by
    the flow scheduler like a congestion-control rate, and re-applied
    whenever the congestion controller would exceed it. *)

val rate_limit : t -> conn:int -> int

val set_connection_limit : t -> int option -> unit
(** Cap on concurrent established connections: beyond it, incoming
    SYNs are ignored and local [connect] fails. *)

val reserve_ports : t -> lo:int -> hi:int -> app:int -> unit
(** Partition a port range to application [app]; [listen] on a
    reserved port by any other app raises [Invalid_argument]. *)

val port_owner : t -> int -> int option
