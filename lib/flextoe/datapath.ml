module S = Tcp.Segment

type xdp_action =
  | Xdp_pass of S.frame
  | Xdp_drop
  | Xdp_tx of S.frame
  | Xdp_redirect of S.frame

type xdp_hook = { xdp_run : S.frame -> int * xdp_action }

type direction = Dir_rx | Dir_tx

type cc_stats = {
  ackb : int;
  ecnb : int;
  fretx : int;
  rtt_est_ns : int;
  tx_backlog : int;
  tx_inflight : int;
  ack_pending : bool;
  last_progress : Sim.Time.t;
}

type stats = {
  rx_segments : int;
  tx_segments : int;
  tx_acks : int;
  rx_to_control : int;
  rx_dropped : int;
  rx_dropped_csum : int;
  fast_retx : int;
  gro_reordered : int;
  egress_reordered : int;
  dma_bytes : int;
  rx_completed : int;
}

(* What leaves through the NBI, in egress-sequencer order. *)
type egress =
  | Eg_data of Meta.tx_desc * Bytes.t
  | Eg_ack of Meta.ack_info
  | Eg_ctl of S.frame

(* Work arriving at a post-processor. *)
type post_work =
  | Post_rx of Meta.rx_verdict
  | Post_tx of Meta.tx_desc
  | Post_hc of int * Protocol.hc_result  (* conn *)

type conn_lock = { mutable busy : bool; waiters : (unit -> unit) Queue.t }

(* A GRO coalescing window (§3.4, [Config.batch.b_gro] > 1 only): the
   adjacent in-sequence data segments of one flow accumulated since
   the last flush. Segments are newest-first; [gc_next] is the
   sequence number the next chainable segment must carry. *)
type gro_acc = {
  mutable gc_segs : Meta.rx_summary list;
  mutable gc_count : int;
  mutable gc_next : Tcp.Seq32.t;
  mutable gc_flushed : bool;
}

(* An ARX notification accumulator ([Config.batch.b_notify] > 1 only):
   per-connection deliveries coalesced into one context-queue DMA and
   host wakeup. Byte counts add; FIN sticks; the readable ranges,
   lifecycle ids and sanitizer tokens of every absorbed notification
   are kept so the single delivery can replay their effects. *)
type arx_acc = {
  aa_conn : int;
  aa_opaque : int;
  mutable aa_count : int;
  mutable aa_rx : int;
  mutable aa_txf : int;
  mutable aa_fin : bool;
  mutable aa_ranges : (int * int) list;  (* newest first *)
  mutable aa_gseqs : int list;  (* newest first *)
  mutable aa_tokens : int list;  (* newest first *)
  mutable aa_flushed : bool;
}

(* --- Stages as first-class values (FlexSan layer 1) ------------------ *)

(* A pipeline stage: its effect contract (which memory it may touch,
   under which serialization discipline) plus the tracepoint group its
   instrumentation hangs off. [create] checks the stage set with
   [Effects.check] before wiring anything. *)
type stage = { sg_contract : Effects.contract; sg_trace_group : string }

(* Deliberate synchronization defects, for the sanitizer's regression
   corpus: each flag removes or reorders exactly one ordering edge (or,
   for [sb_bad_contract], mis-declares a footprint so the static layer
   trips). All are behavior-preserving for the simulated TCP state
   machine — the simulator is single-threaded, so the "races" they
   open are visible only to FlexSan, exactly like a latent race on
   real silicon. *)
type sabotage = {
  sb_no_lock : bool;  (** Protocol stage runs without the per-conn lock. *)
  sb_early_release : bool;  (** Lock dropped before the critical section. *)
  sb_notify_before_payload : bool;
      (** ARX notification + ACK leave before the payload DMA lands. *)
  sb_skip_notify_dma : bool;
      (** Notification delivered without the DMA-completion edge. *)
  sb_postproc_writes_conn : bool;  (** Post-processor pokes proto state. *)
  sb_preproc_reads_proto : bool;  (** Pre-processor peeks at proto state. *)
  sb_bad_contract : bool;  (** Post-processor declares a proto write. *)
  sb_mis_steer : bool;
      (** Protocol stage indexes a neighbor flow group's caches/FPCs. *)
}

let no_sabotage =
  {
    sb_no_lock = false;
    sb_early_release = false;
    sb_notify_before_payload = false;
    sb_skip_notify_dma = false;
    sb_postproc_writes_conn = false;
    sb_preproc_reads_proto = false;
    sb_bad_contract = false;
    sb_mis_steer = false;
  }

let sabotage_variants =
  [
    ("no_lock", { no_sabotage with sb_no_lock = true });
    ("early_release", { no_sabotage with sb_early_release = true });
    ("notify_before_payload",
     { no_sabotage with sb_notify_before_payload = true });
    ("skip_notify_dma", { no_sabotage with sb_skip_notify_dma = true });
    ("postproc_writes_conn",
     { no_sabotage with sb_postproc_writes_conn = true });
    ("preproc_reads_proto",
     { no_sabotage with sb_preproc_reads_proto = true });
    ("bad_contract", { no_sabotage with sb_bad_contract = true });
    ("mis_steer", { no_sabotage with sb_mis_steer = true });
  ]

(* The built-in pipeline's effect contracts (§3.2's disjointness
   argument, Table 5's memory map). [sb_bad_contract] swaps in a
   post-processor that claims a protocol-partition write — statically
   incompatible with the (serialized) protocol stage. *)
let builtin_stages sb =
  let open Effects in
  let stage name group ~reads ~writes domain =
    {
      sg_contract =
        { c_stage = name; c_reads = reads; c_writes = writes;
          c_domain = domain };
      sg_trace_group = group;
    }
  in
  [
    stage "preproc" "preproc" ~reads:[ Conn_db ] ~writes:[ Global_stats ]
      Serial_none;
    stage "gro" "gro" ~reads:[] ~writes:[] (Serial_flow_group "rx-gro");
    (* Global_stats: the FlexScale steering self-check counter
       (st_cross_shard) is bumped from protocol-stage state accesses;
       the region is atomic, so the declaration costs no static
       freedom. *)
    stage "protocol" "protocol"
      ~reads:[ Conn_db; Conn_pre; Conn_proto; Reasm; Conn_post ]
      ~writes:[ Conn_proto; Reasm; Sched_state; Global_stats ] Serial_conn;
    stage "postproc" "postproc" ~reads:[ Conn_db ]
      ~writes:
        (if sb.sb_bad_contract then [ Conn_proto; Conn_post; Global_stats;
                                      Sched_state ]
         else [ Conn_post; Global_stats; Sched_state ])
      Serial_none;
    stage "dma" "dma" ~reads:[ Conn_db; Conn_post; Tx_payload ]
      ~writes:[ Rx_payload; Global_stats; Sched_state ]
      (Serial_queue "pcie-dma");
    stage "ctx" "ctx" ~reads:[ Rx_payload; Desc_ring; Conn_db; Conn_post ]
      ~writes:[ Desc_ring ] (Serial_queue "ctx");
    stage "sched" "sch" ~reads:[ Sched_state ] ~writes:[ Sched_state ]
      Serial_none;
    stage "nbi" "nbi" ~reads:[ Conn_pre; Conn_db ]
      ~writes:[ Global_stats; Sched_state ] (Serial_flow_group "tx-gro");
  ]

let builtin_contracts () =
  List.map (fun s -> s.sg_contract) (builtin_stages no_sabotage)

let builtin_contracts_under sb =
  List.map (fun s -> s.sg_contract) (builtin_stages sb)

(* --- FlexProve extraction (static layer 0) --------------------------- *)

(* Sabotage flags that change the as-built wiring or footprints map to
   graph defects, so [flexlint graph --classify] can re-derive the
   graph a sabotaged node actually runs. The contracts stay the
   *declared* ones — [sb_no_lock] is precisely a stage whose
   declaration says [Serial_conn] while the implementation takes no
   lock, which the extraction models by patching the graph's domain,
   not the contract. *)
let defects_of_sabotage sb =
  {
    Graph_ir.d_no_lock = sb.sb_no_lock;
    d_early_release = sb.sb_early_release;
    d_preproc_reads_proto = sb.sb_preproc_reads_proto;
    d_postproc_writes_conn = sb.sb_postproc_writes_conn;
  }

(* The two notify-ordering defects leave the declared dma→ctx ordered
   completion edge intact — the defect is the implementation not
   honoring its own declaration, which no analysis of the declared
   wiring can see. FlexSan's happens-before layer catches them at
   runtime; [flexlint graph --classify] reports them as dynamic-only
   with these rationales rather than pretending coverage. *)
let sabotage_dynamic_only =
  [
    ( "notify_before_payload",
      "the declared dma->ctx ordered completion edge is intact; the \
       defect is signalling before the DMA lands, visible only to \
       FlexSan's happens-before layer at runtime" );
    ( "skip_notify_dma",
      "same declared edge; delivery skips the completion wait at \
       runtime, so the wiring FlexProve sees is the sound one" );
    ( "mis_steer",
      "the declared per-flow-group wiring is intact; the defect is the \
       implementation indexing a neighbor group's caches and FPC pool \
       at runtime, caught by the datapath's steering self-check and \
       FlexSan" );
  ]

let builtin_graph ?(sabotage = no_sabotage) ~config () =
  Graph_ir.builtin
    ~defects:(defects_of_sabotage sabotage)
    ~config
    ~contracts:
      (List.map (fun s -> s.sg_contract) (builtin_stages sabotage))
    ()

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  stages : stage list;
  sabotage : sabotage;
  san : San.t option;
  scope : Sim.Scope.t option;
  guard : Guard.t option;  (* FlexGuard overload control; None = dormant *)
  mutable cp_pending : int;  (* control-path frames in flight to the CP *)
  port : Netsim.Fabric.port;
  mac : int;
  ip : int;
  n_ctx : int;
  (* Connections *)
  conns : (int, Conn_state.t) Hashtbl.t;
  conn_db : Tcp.Flow.t Nfp.Lookup.t;
  mutable next_conn_idx : int;
  locks : (int, conn_lock) Hashtbl.t;
  (* FPCs *)
  preproc_fpcs : Nfp.Fpc.t array;
  proto_fpcs : Nfp.Fpc.t array array;  (* per flow group, sharded *)
  postproc_fpcs : Nfp.Fpc.t array array;  (* per flow group *)
  dma_fpcs : Nfp.Fpc.t array;
  ctx_fpcs : Nfp.Fpc.t array;
  sch_fpc : Nfp.Fpc.t;
  gro_fpc : Nfp.Fpc.t;
  xdp_fpcs : Nfp.Fpc.t array;
  rtc_fpc : Nfp.Fpc.t;  (* run-to-completion baseline *)
  mutable rr_pre : int;
  mutable rr_post : int;
  mutable rr_dma : int;
  (* Engines *)
  dma : Nfp.Dma.t;
  (* Caches *)
  pre_lookup_cache : Nfp.Direct_cache.t;
  proto_cam : unit Nfp.Cam.t array;  (* presence-only caches *)
  fg_cls : Nfp.Direct_cache.t array;
  emem_lru : Nfp.Lru.t array;  (* per shard; length 1 when unsharded *)
  (* FlexScale: shard count for the replicated protocol-stage
     pipelines ([Config.scale]; 1 = unsharded), plus the shared-EMEM
     capacity-pressure model behind the per-shard caches. *)
  shards : int;
  emem_pressure : Nfp.Memory.Pressure.t option;
  (* Ordering *)
  rx_gro : Meta.rx_summary Sequencer.t;
  tx_gro : egress Sequencer.t;
  (* Scheduling *)
  sch : Scheduler.t;
  (* Context queues *)
  atx : Meta.hc_desc Nfp.Ring.t array;
  mutable atx_scheduled : bool array;
  arx_handlers : (Meta.arx_desc -> unit) array;
  mutable hc_descs_free : int;
  (* Batching state (empty/untouched at batch degree 1) *)
  gro_pending : (int, gro_acc) Hashtbl.t;  (* conn -> window *)
  arx_pending : (int, arx_acc) Hashtbl.t;  (* conn -> accumulator *)
  mutable atx_flush_armed : bool array;  (* partial-doorbell timers *)
  mutable st_dma_work : int;  (* doorbell-amortization counter *)
  (* Control plane hooks *)
  mutable control_rx : S.frame -> unit;
  (* Flexibility *)
  mutable xdp_ingress : xdp_hook option;
  traces : Sim.Trace.t;
  trace_groups : (string, Sim.Trace.point array) Hashtbl.t;
  mutable capture : (direction -> S.frame -> unit) option;
  (* Stats *)
  mutable st_rx : int;
  mutable st_tx : int;
  mutable st_tx_acks : int;
  mutable st_ctl : int;
  mutable st_drop : int;
  mutable st_drop_csum : int;
  mutable st_fretx : int;
  mutable st_rx_done : int;  (* RX segments fully processed by the DMA stage *)
  mutable st_cross_shard : int;  (* steering self-check trips (mis-steer) *)
}

let engine t = t.engine
let config t = t.cfg
let stages t = t.stages
let san t = t.san
let scope t = t.scope
let guard t = t.guard
let fabric_port t = t.port

(* Sanitizer access shorthands: no-ops (one test of an immutable
   option) when the sanitizer is off. *)
let sa t ~stage ~flow obj kind =
  match t.san with
  | None -> ()
  | Some s -> San.access s ~stage ~flow ~obj kind

let sa_range t ~stage ~flow obj ~range kind =
  match t.san with
  | None -> ()
  | Some s -> San.access s ~stage ~flow ~obj ~range kind

(* FlexScope shorthands: like the sanitizer's, each is one test of an
   immutable option when profiling is off.

   [sc_span] wraps a stage's completion continuation in a span whose
   wall clock runs from work submission (queueing and memory stalls
   included) and whose [cycles] are exactly the compute cycles the
   pipeline model charges — so the per-stage histograms are directly
   comparable to the configured stage costs. RX-chain spans carry the
   segment's RX sequencer slot as [id] (lifecycle attribution); spans
   with no owning RX segment use [id = -1]. *)
let sc_span t ~stage ~conn ~id ~cycles k =
  match t.scope with
  | None -> k
  | Some sc ->
      let sp = Sim.Scope.span_begin sc ~stage ~conn ~id in
      fun () ->
        Sim.Scope.span_end sc sp ~cycles;
        k ()

let sc_seg_begin t ~track ~conn ~id =
  match t.scope with
  | None -> ()
  | Some sc -> Sim.Scope.seg_begin sc ~track ~conn ~id

let sc_seg_end t ~track ~id =
  match t.scope with
  | None -> ()
  | Some sc -> Sim.Scope.seg_end sc ~track ~id

let sc_instant t ~track ~name ~conn ~arg =
  match t.scope with
  | None -> ()
  | Some sc -> Sim.Scope.instant sc ~track ~name ~conn ~arg

let sc_count t name =
  match t.scope with
  | None -> ()
  | Some sc -> Sim.Scope.count sc ~name ()
let mac t = t.mac
let ip t = t.ip
let num_ctx t = t.n_ctx
let traces t = t.traces

let trace_group_points t group =
  match Hashtbl.find_opt t.trace_groups group with
  | Some pts -> pts
  | None -> [||]

(* Per-segment tracepoint overhead for a stage: each enabled point in
   the stage's group costs a few cycles (instrumentation executes
   whether or not the event fires); event counters themselves are
   recorded semantically by [trace_event]. *)
let trace_cycles t group ~conn =
  ignore conn;
  if Sim.Trace.enabled_count t.traces = 0 then 0
  else begin
    let pts = trace_group_points t group in
    let n = ref 0 in
    Array.iter (fun p -> if Sim.Trace.enabled p then incr n) pts;
    !n * t.cfg.Config.costs.Config.tracepoint
  end

(* Record a semantic event on one named tracepoint (counts only when
   that point is enabled). *)
let trace_event t group name ~conn =
  (* Fast path: tracing disabled costs one branch, like the real
     thing. *)
  if Sim.Trace.enabled_count t.traces > 0 then begin
    let full = group ^ ":" ^ name in
    let pts = trace_group_points t group in
    Array.iter
      (fun p ->
        if Sim.Trace.enabled p && Sim.Trace.point_name p = full then
          Sim.Trace.hit t.traces p ~now:(Sim.Engine.now t.engine) ~conn
            ~arg:0)
      pts
  end

(* Transport events worth counting, derived from an RX verdict: the
   bpftrace-style tracepoints of §5.1. *)
let trace_rx_verdict t (v : Meta.rx_verdict) =
  if Sim.Trace.enabled_count t.traces = 0 then ()
  else
  let conn = v.Meta.v_conn in
  trace_event t "protocol" "rx_seg" ~conn;
  if v.Meta.v_fast_retx then trace_event t "protocol" "fast_retx" ~conn;
  if v.Meta.v_fin_reached then trace_event t "protocol" "fin" ~conn;
  (match v.Meta.v_place with
  | Some _ when v.Meta.v_rx_advance = 0 ->
      trace_event t "protocol" "ooo_seg" ~conn
  | _ -> ());
  if v.Meta.v_ack <> None && v.Meta.v_rx_advance = 0 && v.Meta.v_place = None
  then trace_event t "protocol" "dup_ack" ~conn;
  if v.Meta.v_wake_tx then trace_event t "protocol" "win_update" ~conn;
  if v.Meta.v_ack <> None then trace_event t "postproc" "ack_gen" ~conn

let pipelined t = t.cfg.Config.parallelism.Config.pipelined

(* --- Per-connection protocol-stage lock --------------------------- *)

let conn_lock t idx =
  match Hashtbl.find_opt t.locks idx with
  | Some l -> l
  | None ->
      (* Lazy once-per-connection lock init, amortized over the flow's
         lifetime — not a per-segment allocation. flexinfer: alloc-exempt *)
      let l = { busy = false; waiters = Queue.create () } in
      Hashtbl.replace t.locks idx l;
      l

let acquire t idx k =
  if t.sabotage.sb_no_lock then
    (* Sabotage: the critical section runs unserialized. No
       happens-before edge is recorded either — exactly what omitting
       the lock on hardware would mean. *)
    k ()
  else begin
    let k =
      match t.san with
      | None -> k
      | Some s ->
          fun () ->
            San.lock_acquire s ~flow:idx;
            k ()
    in
    let l = conn_lock t idx in
    if l.busy then Queue.push k l.waiters
    else begin
      l.busy <- true;
      k ()
    end
  end

let release t idx =
  if t.sabotage.sb_no_lock then ()
  else begin
    (match t.san with
    | Some s -> San.lock_release s ~flow:idx
    | None -> ());
    let l = conn_lock t idx in
    match Queue.take_opt l.waiters with
    | Some k -> k ()
    | None -> l.busy <- false
  end

(* --- State-access cost model (§4.1 caching) ----------------------- *)

(* The effective flow group a protocol-stage access indexes with. The
   steering invariant is that this equals the group pinned in the
   connection's pre state; [sb_mis_steer] breaks it for every odd
   connection index, modelling a steering bug that sends a flow to a
   neighbor group's caches and FPC pool. *)
let steer_fg t ~idx ~fg =
  if t.sabotage.sb_mis_steer && idx land 1 = 1 then
    (fg + 1) mod Array.length t.proto_cam
  else fg

(* Steering self-check: the per-flow-group serialization argument (and
   at scale, shard disjointness) rests on every state access using the
   pinned group. A mismatch is counted and surfaced to FlexSan as an
   access from an undeclared "shard-steer" stage — a contract breach,
   exactly what touching another shard's partition means. *)
let steer_check t ~idx ~fg ~fg_eff =
  if fg_eff <> fg then begin
    t.st_cross_shard <- t.st_cross_shard + 1;
    match t.san with
    | None -> ()
    | Some s ->
        San.access s ~stage:"shard-steer" ~flow:idx ~obj:Effects.Conn_proto
          Effects.Read
  end

let proto_state_phases t conn_state =
  let open Nfp.Fpc in
  if not (pipelined t) then
    (* Naive baseline: no multi-level caching, state lives in EMEM. *)
    [ Mem Nfp.Memory.Emem; Mem Nfp.Memory.Emem ]
  else begin
    let idx = conn_state.Conn_state.idx in
    let fg = conn_state.Conn_state.pre.Conn_state.flow_group in
    let fg_eff = steer_fg t ~idx ~fg in
    steer_check t ~idx ~fg ~fg_eff;
    (* Hot-state pinning (scale mode): an Established flow's CAM/EMEM$
       entries are sticky — eviction pressure from churn takes cold
       (handshake / TIME_WAIT) entries first. *)
    let pin =
      t.cfg.Config.scale.Config.s_on
      && t.cfg.Config.scale.Config.s_pin_hot
      && Conn_state.close_phase conn_state = Conn_state.Established
    in
    let cam = t.proto_cam.(fg_eff) in
    match Nfp.Cam.find cam idx with
    | Some () -> [ Mem Nfp.Memory.Local ]
    | None ->
        ignore (Nfp.Cam.insert ~pin cam idx ());
        if Nfp.Direct_cache.access t.fg_cls.(fg_eff) idx then
          [ Mem Nfp.Memory.Cls ]
        else begin
          let lru = t.emem_lru.(fg_eff mod Array.length t.emem_lru) in
          if Nfp.Lru.access ~pin lru idx then [ Mem Nfp.Memory.Emem_cached ]
          else
            (* Full miss: a DRAM walk, plus the overcommit penalty once
               resident per-flow state exceeds the EMEM cache's working
               set (zero at or below capacity). *)
            match t.emem_pressure with
            | None -> [ Mem Nfp.Memory.Emem ]
            | Some pr ->
                let extra =
                  Nfp.Memory.Pressure.extra_miss_cycles pr
                    t.cfg.Config.params
                in
                if extra = 0 then [ Mem Nfp.Memory.Emem ]
                else [ Mem Nfp.Memory.Emem; Compute extra ]
        end
  end

let preproc_lookup_phases t hash =
  let open Nfp.Fpc in
  let c = t.cfg.Config.costs in
  if Nfp.Direct_cache.access t.pre_lookup_cache hash then
    [ Compute c.Config.preproc_lookup_hit ]
  else [ Mem Nfp.Memory.Imem; Compute c.Config.preproc_lookup_hit ]

let proto_fpc_for t cs =
  let fg = cs.Conn_state.pre.Conn_state.flow_group in
  let fg_eff = steer_fg t ~idx:cs.Conn_state.idx ~fg in
  let pool = t.proto_fpcs.(fg_eff mod Array.length t.proto_fpcs) in
  pool.(cs.Conn_state.idx mod Array.length pool)

(* Round-robin pools *)

let next_preproc t =
  let f = t.preproc_fpcs.(t.rr_pre mod Array.length t.preproc_fpcs) in
  t.rr_pre <- t.rr_pre + 1;
  f

let next_postproc t fg =
  let pool = t.postproc_fpcs.(fg) in
  let f = pool.(t.rr_post mod Array.length pool) in
  t.rr_post <- t.rr_post + 1;
  f

let next_dma_fpc t =
  let f = t.dma_fpcs.(t.rr_dma mod Array.length t.dma_fpcs) in
  t.rr_dma <- t.rr_dma + 1;
  f

(* --- Connection management ---------------------------------------- *)

let alloc_conn_idx t =
  let i = t.next_conn_idx in
  t.next_conn_idx <- i + 1;
  i

let conn t idx = Hashtbl.find_opt t.conns idx

let has_flow t flow =
  Nfp.Lookup.lookup t.conn_db ~hash:(Tcp.Flow.hash flow) flow <> None

let conn_of_flow t flow =
  Nfp.Lookup.lookup t.conn_db ~hash:(Tcp.Flow.hash flow) flow

let active_conns t = Hashtbl.length t.conns

let conn_state_bytes =
  Conn_state.state_bytes_pre + Conn_state.state_bytes_proto
  + Conn_state.state_bytes_post

let install_conn t cs ~k =
  (* CP writes ~108 B of state across PCIe. *)
  Nfp.Dma.issue t.dma ~queue:1 ~bytes:128 (fun () ->
      Hashtbl.replace t.conns cs.Conn_state.idx cs;
      let flow = cs.Conn_state.flow in
      Nfp.Lookup.add t.conn_db ~hash:(Tcp.Flow.hash flow) flow
        cs.Conn_state.idx;
      (match t.emem_pressure with
      | Some pr -> Nfp.Memory.Pressure.install pr ~bytes:conn_state_bytes
      | None -> ());
      (* Fresh connection: drop any shadow state a previous occupant
         of this index left behind. *)
      (match t.san with
      | Some s -> San.flow_init s ~flow:cs.Conn_state.idx
      | None -> ());
      k ())

let remove_conn t ~conn =
  match Hashtbl.find_opt t.conns conn with
  | None -> ()
  | Some cs ->
      cs.Conn_state.active <- false;
      Hashtbl.remove t.conns conn;
      let flow = cs.Conn_state.flow in
      Nfp.Lookup.remove t.conn_db ~hash:(Tcp.Flow.hash flow) flow;
      Scheduler.forget t.sch ~conn;
      let fg = cs.Conn_state.pre.Conn_state.flow_group in
      (match t.emem_pressure with
      | Some pr ->
          Nfp.Memory.Pressure.remove pr ~bytes:conn_state_bytes;
          (* A departing flow's pins must not outlive it, or pinned
             corpses eventually force hot-state evictions. *)
          Nfp.Cam.unpin t.proto_cam.(fg) conn;
          Nfp.Lru.unpin t.emem_lru.(fg mod Array.length t.emem_lru) conn
      | None -> ());
      (* Under churn a dead connection's cache lines are pure poison:
         invalidate its CAM/CLS/EMEM entries so short-lived flows
         cannot crowd out the working set of established ones. *)
      (match t.guard with
      | Some g when (Guard.config g).Config.g_evict_caches ->
          Nfp.Cam.remove t.proto_cam.(fg) conn;
          Nfp.Direct_cache.invalidate t.fg_cls.(fg) conn;
          Nfp.Lru.remove t.emem_lru.(fg mod Array.length t.emem_lru) conn;
          Guard.count g "evicted_cache"
      | _ -> ());
      (match t.san with
      | Some s -> San.flow_forget s ~flow:conn
      | None -> ())

let set_control_rx t f = t.control_rx <- f

(* --- Notification path (ARX) -------------------------------------- *)

let set_arx_handler t ~ctx f = t.arx_handlers.(ctx) <- f

let dma_engine t = t.dma

(* The context-queue stage DMAs the descriptor into the host ring;
   libTOE sees it one polling period later. [range] is the stretch of
   the RX payload buffer the notification makes readable — the bytes
   the handler (and the application behind it) will touch, so the
   sanitizer checks them against the payload DMA's writes. *)
let notify_libtoe_now t ?range ?(gseq = -1) cs (desc : Meta.arx_desc) =
  let conn_idx = cs.Conn_state.idx in
  let ctx = cs.Conn_state.post.Conn_state.ctx_id mod t.n_ctx in
  let fpc = t.ctx_fpcs.(ctx mod Array.length t.ctx_fpcs) in
  let c = t.cfg.Config.costs in
  let extra = trace_cycles t "ctx" ~conn:conn_idx in
  let deliver ~join () =
    sc_instant t ~track:"ctx" ~name:"arx_delivery" ~conn:conn_idx ~arg:gseq;
    if gseq >= 0 then sc_seg_end t ~track:"seg_rx" ~id:gseq;
    match t.san with
    | None -> t.arx_handlers.(ctx) desc
    | Some s ->
        San.run_as s ~thread:("hostctx" ^ string_of_int ctx) ?join (fun () ->
            (match range with
            | Some (off, len) when len > 0 ->
                San.access s ~stage:"ctx" ~flow:conn_idx
                  ~obj:Effects.Rx_payload ~range:(off, len) Effects.Read
            | _ -> ());
            t.arx_handlers.(ctx) desc;
            (* The app can only return RX-buffer credit for bytes it
               was notified of: publish the delivery so the Rx_credit
               doorbell (and thus the window reopening that lets the
               DMA reuse these buffer positions) is ordered after this
               read. *)
            San.chan_send s ("arx#" ^ string_of_int conn_idx))
  in
  Nfp.Fpc.submit fpc
    [ Compute (c.Config.ctx_desc + extra) ]
    (sc_span t ~stage:"ctx" ~conn:conn_idx ~id:gseq
       ~cycles:(c.Config.ctx_desc + extra) (fun () ->
      sa t ~stage:"ctx" ~flow:conn_idx Effects.Desc_ring Effects.Write;
      if t.sabotage.sb_skip_notify_dma then
        (* Sabotage: hand the descriptor to the host without the DMA
           completion edge — the poll delay still elapses, but nothing
           orders the handler after the payload write. *)
        Sim.Engine.schedule t.engine t.cfg.Config.libtoe_poll (fun () ->
            deliver ~join:None ())
      else
        Nfp.Dma.issue t.dma ~queue:1 ~bytes:32 (fun () ->
            let join =
              match t.san with
              | Some s -> Some (San.token_send s)
              | None -> None
            in
            Sim.Engine.schedule t.engine t.cfg.Config.libtoe_poll (fun () ->
                deliver ~join ()))))

(* Flush one connection's ARX accumulator: one context-queue descriptor,
   one 32B DMA and one host wakeup stand in for [aa_count] of each.
   The fixed descriptor cost is paid once plus [notify_coalesce] per
   absorbed notification; byte counts were summed at accumulation.
   Every absorbed notification's sanitizer token (captured in its
   payload-DMA completion context) is joined before the host reads, so
   the coalesced delivery keeps each payload-write -> host-read
   happens-before edge of the unbatched path. *)
let arx_flush t acc =
  if not acc.aa_flushed then begin
    acc.aa_flushed <- true;
    Hashtbl.remove t.arx_pending acc.aa_conn;
    let conn_idx = acc.aa_conn in
    let gseqs = List.rev acc.aa_gseqs in
    (match t.scope with
    | Some sc -> Sim.Scope.record sc "batch/arx/coalesced" acc.aa_count
    | None -> ());
    match conn t conn_idx with
    | None ->
        (* Torn down with a window pending: nothing to notify, but the
           RX lifecycles must still close. *)
        List.iter
          (fun g -> if g >= 0 then sc_seg_end t ~track:"seg_rx" ~id:g)
          gseqs
    | Some cs ->
        let desc =
          {
            Meta.x_opaque = acc.aa_opaque;
            x_rx_bytes = acc.aa_rx;
            x_tx_freed = acc.aa_txf;
            x_fin = acc.aa_fin;
            x_err = false;
          }
        in
        let ranges = List.rev acc.aa_ranges in
        let tokens = List.rev acc.aa_tokens in
        let ctx = cs.Conn_state.post.Conn_state.ctx_id mod t.n_ctx in
        let fpc = t.ctx_fpcs.(ctx mod Array.length t.ctx_fpcs) in
        let c = t.cfg.Config.costs in
        let extra = trace_cycles t "ctx" ~conn:conn_idx in
        let cycles =
          c.Config.ctx_desc
          + ((acc.aa_count - 1) * c.Config.notify_coalesce)
          + extra
        in
        let deliver ~join () =
          List.iter
            (fun g ->
              sc_instant t ~track:"ctx" ~name:"arx_delivery" ~conn:conn_idx
                ~arg:g;
              if g >= 0 then sc_seg_end t ~track:"seg_rx" ~id:g)
            gseqs;
          match t.san with
          | None -> t.arx_handlers.(ctx) desc
          | Some s ->
              San.run_as s ~thread:("hostctx" ^ string_of_int ctx) ?join
                (fun () ->
                  List.iter (fun tok -> San.token_join s tok) tokens;
                  List.iter
                    (fun (off, len) ->
                      if len > 0 then
                        San.access s ~stage:"ctx" ~flow:conn_idx
                          ~obj:Effects.Rx_payload ~range:(off, len)
                          Effects.Read)
                    ranges;
                  t.arx_handlers.(ctx) desc;
                  San.chan_send s ("arx#" ^ string_of_int conn_idx))
        in
        Nfp.Fpc.submit fpc [ Compute cycles ]
          (sc_span t ~stage:"ctx" ~conn:conn_idx ~id:(-1) ~cycles (fun () ->
               sa t ~stage:"ctx" ~flow:conn_idx Effects.Desc_ring
                 Effects.Write;
               Nfp.Dma.issue t.dma ~queue:1 ~bytes:32 (fun () ->
                   let join =
                     match t.san with
                     | Some s -> Some (San.token_send s)
                     | None -> None
                   in
                   Sim.Engine.schedule t.engine t.cfg.Config.libtoe_poll
                     (fun () -> deliver ~join ()))))
  end

(* Notification entry point. At [b_notify = 1] (or for error
   notifications, which must not wait) this is exactly the unbatched
   delivery. Above 1, per-connection notifications accumulate and
   flush on FIN, a full window, or the batch-delay timer. *)
let notify_libtoe t ?range ?(gseq = -1) cs (desc : Meta.arx_desc) =
  let b = t.cfg.Config.batch.Config.b_notify in
  let conn_idx = cs.Conn_state.idx in
  if b <= 1 || desc.Meta.x_err then begin
    (* An error notification overtaking coalesced data would reorder
       the host's view: drain the window first. *)
    (if desc.Meta.x_err then
       match Hashtbl.find_opt t.arx_pending conn_idx with
       | Some acc -> arx_flush t acc
       | None -> ());
    notify_libtoe_now t ?range ~gseq cs desc
  end
  else begin
    (* Capture the happens-before token in the issuing context (the
       payload DMA's completion), exactly where the unbatched path
       would have issued its descriptor DMA. *)
    let tok =
      match t.san with Some s -> Some (San.token_send s) | None -> None
    in
    match Hashtbl.find_opt t.arx_pending conn_idx with
    | Some acc ->
        acc.aa_count <- acc.aa_count + 1;
        acc.aa_rx <- acc.aa_rx + desc.Meta.x_rx_bytes;
        acc.aa_txf <- acc.aa_txf + desc.Meta.x_tx_freed;
        acc.aa_fin <- acc.aa_fin || desc.Meta.x_fin;
        (match range with
        | Some r -> acc.aa_ranges <- r :: acc.aa_ranges
        | None -> ());
        acc.aa_gseqs <- gseq :: acc.aa_gseqs;
        (match tok with
        | Some tk -> acc.aa_tokens <- tk :: acc.aa_tokens
        | None -> ());
        if acc.aa_count >= b || acc.aa_fin then arx_flush t acc
    | None ->
        let acc =
          {
            aa_conn = conn_idx;
            aa_opaque = desc.Meta.x_opaque;
            aa_count = 1;
            aa_rx = desc.Meta.x_rx_bytes;
            aa_txf = desc.Meta.x_tx_freed;
            aa_fin = desc.Meta.x_fin;
            aa_ranges = (match range with Some r -> [ r ] | None -> []);
            aa_gseqs = [ gseq ];
            aa_tokens = (match tok with Some tk -> [ tk ] | None -> []);
            aa_flushed = false;
          }
        in
        Hashtbl.replace t.arx_pending conn_idx acc;
        if acc.aa_fin then arx_flush t acc
        else
          Sim.Engine.schedule t.engine t.cfg.Config.batch_delay (fun () ->
              arx_flush t acc)
  end

(* --- NBI egress ---------------------------------------------------- *)

let build_data_frame t cs (d : Meta.tx_desc) payload =
  let pre = cs.Conn_state.pre in
  let now_us = Protocol.us_of_time (Sim.Engine.now t.engine) in
  let seg =
    S.make
      ~flags:
        {
          S.no_flags with
          S.ack = true;
          psh = true;
          fin = d.Meta.t_fin;
          cwr = d.Meta.t_cwr;
        }
      ~window:d.Meta.t_wnd
      ~options:{ S.mss = None; ts = Some (now_us, d.Meta.t_ts_ecr) }
      ~payload ~src_ip:pre.Conn_state.local_ip ~dst_ip:pre.Conn_state.peer_ip
      ~src_port:pre.Conn_state.local_port ~dst_port:pre.Conn_state.remote_port
      ~seq:d.Meta.t_seq ~ack_seq:d.Meta.t_ack ()
  in
  S.make_frame ~ecn:S.Ect0 ~src_mac:t.mac ~dst_mac:pre.Conn_state.peer_mac seg

let build_ack_frame t cs (a : Meta.ack_info) =
  let pre = cs.Conn_state.pre in
  (* The frame's sequence number is [a_seq], snapshotted under the
     protocol lock — not the live [tx_next_pos], which a concurrent TX
     workflow may have advanced by NBI time (a race FlexSan flags). *)
  let now_us = Protocol.us_of_time (Sim.Engine.now t.engine) in
  let seg =
    S.make
      ~flags:{ S.flags_ack with S.ece = a.Meta.a_ece }
      ~window:a.Meta.a_wnd
      ~options:{ S.mss = None; ts = Some (now_us, a.Meta.a_ts_ecr) }
      ~src_ip:pre.Conn_state.local_ip ~dst_ip:pre.Conn_state.peer_ip
      ~src_port:pre.Conn_state.local_port ~dst_port:pre.Conn_state.remote_port
      ~seq:a.Meta.a_seq ~ack_seq:a.Meta.a_ack ()
  in
  S.make_frame ~src_mac:t.mac ~dst_mac:pre.Conn_state.peer_mac seg

let nbi_emit_one t eg =
  let frame =
    match eg with
    | Eg_data (d, payload) -> begin
        match conn t d.Meta.t_conn with
        | Some cs ->
            sa t ~stage:"nbi" ~flow:d.Meta.t_conn Effects.Conn_pre
              Effects.Read;
            Some (build_data_frame t cs d payload)
        | None -> None
      end
    | Eg_ack a -> begin
        match conn t a.Meta.a_conn with
        | Some cs ->
            sa t ~stage:"nbi" ~flow:a.Meta.a_conn Effects.Conn_pre
              Effects.Read;
            Some (build_ack_frame t cs a)
        | None -> None
      end
    | Eg_ctl f -> Some f
  in
  (match frame with
  | Some f ->
      (match t.capture with Some cap -> cap Dir_tx f | None -> ());
      (match eg with
      | Eg_data _ -> t.st_tx <- t.st_tx + 1
      | Eg_ack _ -> t.st_tx_acks <- t.st_tx_acks + 1
      | Eg_ctl _ -> ());
      (match eg with
      | Eg_data (d, _) -> sc_count t "nbi/tx_frames";
          sc_seg_end t ~track:"seg_tx" ~id:d.Meta.t_gseq
      | Eg_ack _ -> sc_count t "nbi/tx_acks"
      | Eg_ctl _ -> sc_count t "nbi/tx_ctl");
      Netsim.Fabric.transmit t.port f
  | None -> (
      (* Connection torn down before NBI: close the TX lifecycle or
         the open-span table leaks. *)
      match eg with
      | Eg_data (d, _) -> sc_seg_end t ~track:"seg_tx" ~id:d.Meta.t_gseq
      | _ -> ()));
  (* A data segment's buffer (credit) frees on transmission. *)
  match eg with
  | Eg_data _ -> Scheduler.credit_return t.sch
  | Eg_ack _ | Eg_ctl _ -> ()

(* TSO (§3.4): a descriptor wider than one MSS — only producible at
   [b_tso > 1], where the protocol stage emits up to [b_tso * mss] per
   descriptor — is segmented back into wire frames here at the NBI
   boundary. One egress slot, one credit, [split_count] frames. *)
let nbi_emit t eg =
  match eg with
  | Eg_data (d, payload)
    when Bytes.length payload > t.cfg.Config.mss -> begin
      match conn t d.Meta.t_conn with
      | None -> nbi_emit_one t eg  (* teardown: the one-frame path
                                      already closes the lifecycle *)
      | Some cs ->
          sa t ~stage:"nbi" ~flow:d.Meta.t_conn Effects.Conn_pre
            Effects.Read;
          let chunks =
            Coalesce.split_desc ~mss:t.cfg.Config.mss d payload
          in
          (match t.scope with
          | Some sc ->
              Sim.Scope.record sc "batch/tso/frames" (List.length chunks)
          | None -> ());
          List.iter
            (fun (dc, chunk) ->
              let f = build_data_frame t cs dc chunk in
              (match t.capture with Some cap -> cap Dir_tx f | None -> ());
              t.st_tx <- t.st_tx + 1;
              sc_count t "nbi/tx_frames";
              Netsim.Fabric.transmit t.port f)
            chunks;
          sc_seg_end t ~track:"seg_tx" ~id:d.Meta.t_gseq;
          Scheduler.credit_return t.sch
    end
  | _ -> nbi_emit_one t eg

(* --- DMA stage ------------------------------------------------------ *)

type dma_work = {
  dw_conn : int;
  dw_gseq : int;
      (* RX sequencer slot of the segment this work answers (-1 for
         TX/HC-originated work): FlexScope lifecycle attribution. *)
  dw_payload : (int * Bytes.t) option;  (* RX placement *)
  dw_readable : (int * int) option;
      (* In-order bytes the notification makes host-visible: (pos,
         len) from the pre-advance stream position. Distinct from
         [dw_payload]: an out-of-order placement writes bytes the
         host cannot read yet, and a hole-filling segment delivers
         more than it places (the previously-placed OOO tail). *)
  dw_fetch : (Meta.tx_desc * int * int) option;  (* TX fetch (desc,pos,len) *)
  dw_ack : Meta.ack_info option;
  dw_notify : Meta.arx_desc option;
}

let dma_stage t (w : dma_work) =
  let c = t.cfg.Config.costs in
  let fpc = next_dma_fpc t in
  let extra = trace_cycles t "dma" ~conn:w.dw_conn in
  (* Doorbell amortization: in batched mode the MMIO ring costs
     [dma_doorbell] once per [b_doorbell] descriptors instead of being
     folded into [dma_desc]. Unbatched mode leaves the counter (and
     the charge) untouched. *)
  let db =
    let b = t.cfg.Config.batch.Config.b_doorbell in
    if b <= 1 then 0
    else begin
      t.st_dma_work <- t.st_dma_work + 1;
      if t.st_dma_work mod b = 0 then c.Config.dma_doorbell else 0
    end
  in
  Nfp.Fpc.submit fpc
    [ Compute (c.Config.dma_desc + extra + db) ]
    (sc_span t ~stage:"dma" ~conn:w.dw_conn ~id:w.dw_gseq
       ~cycles:(c.Config.dma_desc + extra + db) (fun () ->
      sa t ~stage:"dma" ~flow:w.dw_conn Effects.Conn_db Effects.Read;
      let cs = conn t w.dw_conn in
      let finish () =
        (* An RX segment's datapath work ends here (notification and
           egress are downstream of this point): the open-loop scale
           sweep polls this counter for completion. *)
        if w.dw_gseq >= 0 then t.st_rx_done <- t.st_rx_done + 1;
        (* Notification and ACK leave only after payload DMA (§3.1.3:
           neither host nor peer may learn of data that has not landed
           in the receive buffer). *)
        (match (w.dw_notify, cs) with
        | Some d, Some cs ->
            notify_libtoe t ?range:w.dw_readable ~gseq:w.dw_gseq cs d
        | _ ->
            (* No notification will fire: the RX lifecycle ends here,
               with the segment fully processed by the data path. *)
            if w.dw_gseq >= 0 then sc_seg_end t ~track:"seg_rx" ~id:w.dw_gseq);
        match w.dw_ack with
        | Some a ->
            Sequencer.submit t.tx_gro ~seq:a.Meta.a_gseq (Eg_ack a)
        | None -> ()
      in
      match (w.dw_payload, w.dw_fetch, cs) with
      | Some (pos, bytes), _, Some cs ->
          (* Sabotage: notification and ACK escape before the payload
             lands — the host (or the peer, via the ACK) can read
             bytes the DMA has not written yet. *)
          if t.sabotage.sb_notify_before_payload then finish ();
          (* RX: payload to host receive buffer. *)
          sc_instant t ~track:"dma" ~name:"payload_rx_issue" ~conn:w.dw_conn
            ~arg:(Bytes.length bytes);
          Nfp.Dma.issue t.dma ~queue:0 ~bytes:(Bytes.length bytes)
            (fun () ->
              sc_instant t ~track:"dma" ~name:"payload_rx_complete"
                ~conn:w.dw_conn ~arg:(Bytes.length bytes);
              sa_range t ~stage:"dma" ~flow:w.dw_conn Effects.Rx_payload
                ~range:(pos, Bytes.length bytes) Effects.Write;
              Host.Payload_buf.write
                cs.Conn_state.post.Conn_state.rx_buf ~off:pos ~src:bytes
                ~src_off:0 ~len:(Bytes.length bytes);
              if not t.sabotage.sb_notify_before_payload then finish ())
      | None, Some (desc, pos, len), Some cs ->
          (* TX: fetch payload from host transmit buffer. *)
          Nfp.Dma.issue t.dma ~queue:0 ~bytes:len (fun () ->
              sc_instant t ~track:"dma" ~name:"payload_tx_fetched"
                ~conn:w.dw_conn ~arg:len;
              (if len > 0 then
                 sa_range t ~stage:"dma" ~flow:w.dw_conn Effects.Tx_payload
                   ~range:(pos, len) Effects.Read);
              let payload =
                if len = 0 then Bytes.empty
                else
                  Host.Payload_buf.read
                    cs.Conn_state.post.Conn_state.tx_buf ~off:pos ~len
              in
              finish ();
              Sequencer.submit t.tx_gro ~seq:desc.Meta.t_gseq
                (Eg_data (desc, payload)))
      | None, Some (desc, _, _), None ->
          (* The connection was torn down mid-pipeline: the egress
             sequence number must still be released or the whole TX
             reorder stream stalls, and the buffer credit must come
             back. *)
          Sequencer.skip t.tx_gro ~seq:desc.Meta.t_gseq;
          sc_seg_end t ~track:"seg_tx" ~id:desc.Meta.t_gseq;
          Scheduler.credit_return t.sch;
          finish ()
      | _ -> finish ()))

(* --- Post-processing stage ----------------------------------------- *)

let rtt_ewma old sample = if old = 0 then sample else ((7 * old) + sample) / 8

let postproc_stage t fg (w : post_work) =
  let c = t.cfg.Config.costs in
  let fpc = next_postproc t fg in
  let conn_idx =
    match w with
    | Post_rx v -> v.Meta.v_conn
    | Post_tx d -> d.Meta.t_conn
    | Post_hc (i, _) -> i
  in
  let cost =
    match w with
    | Post_rx _ -> c.Config.postproc_rx
    | Post_tx d when d.Meta.t_len > t.cfg.Config.mss ->
        (* A TSO descriptor ([b_tso > 1] only): laying out the
           per-frame DMA gather list costs [tso_split] per extra wire
           frame on top of the ordinary descriptor work. *)
        c.Config.postproc_tx
        + (Coalesce.split_count ~mss:t.cfg.Config.mss d.Meta.t_len - 1)
          * c.Config.tso_split
    | Post_tx _ | Post_hc _ -> c.Config.postproc_tx
  in
  let capture_extra =
    (* tcpdump on egress taps the post-processor. *)
    match (t.capture, w) with
    | Some _, Post_tx _ -> c.Config.pcap_capture
    | _ -> 0
  in
  let extra = trace_cycles t "postproc" ~conn:conn_idx in
  let gseq = match w with Post_rx v -> v.Meta.v_gseq | _ -> -1 in
  Nfp.Fpc.submit fpc
    [ Nfp.Fpc.Mem Nfp.Memory.Cls; Compute (cost + extra + capture_extra) ]
    (sc_span t ~stage:"postproc" ~conn:conn_idx ~id:gseq
       ~cycles:(cost + extra + capture_extra) (fun () ->
      sa t ~stage:"postproc" ~flow:conn_idx Effects.Conn_db Effects.Read;
      (match (t.san, conn t conn_idx) with
      | Some s, Some cs ->
          San.access s ~stage:"postproc" ~flow:conn_idx
            ~obj:Effects.Conn_post Effects.Write;
          if t.sabotage.sb_postproc_writes_conn then begin
            (* Sabotage: poke the protocol partition from an
               unserialized stage. The store is value-preserving (the
               TCP state machine cannot tell), but on hardware it
               would race the protocol stage's writes. *)
            let p = cs.Conn_state.proto in
            p.Conn_state.last_progress <- p.Conn_state.last_progress;
            San.access s ~stage:"postproc" ~flow:conn_idx
              ~obj:Effects.Conn_proto Effects.Write
          end
      | _ -> ());
      match (w, conn t conn_idx) with
      | _, None -> begin
          (* Connection vanished mid-pipeline: drop cleanly. *)
          match w with
          | Post_tx d ->
              Sequencer.skip t.tx_gro ~seq:d.Meta.t_gseq;
              sc_seg_end t ~track:"seg_tx" ~id:d.Meta.t_gseq;
              Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:0 ~more:false;
              Scheduler.credit_return t.sch
          | Post_rx v -> begin
              sc_seg_end t ~track:"seg_rx" ~id:v.Meta.v_gseq;
              match v.Meta.v_ack with
              | Some a -> Sequencer.skip t.tx_gro ~seq:a.Meta.a_gseq
              | None -> ()
            end
          | Post_hc (_, r) ->
              (* Release the window-update's egress slot and the HC
                 descriptor, or both leak on teardown races. *)
              (match r.Protocol.hc_window_update with
              | Some a -> Sequencer.skip t.tx_gro ~seq:a.Meta.a_gseq
              | None -> ());
              t.hc_descs_free <- t.hc_descs_free + 1
        end
      | Post_rx v, Some cs ->
          let post = cs.Conn_state.post in
          (* Stats step: congestion-control counters for the CP. *)
          post.Conn_state.cnt_ackb <-
            post.Conn_state.cnt_ackb + v.Meta.v_ack_bytes;
          post.Conn_state.cnt_ecnb <-
            post.Conn_state.cnt_ecnb + v.Meta.v_ecn_bytes;
          if v.Meta.v_fast_retx then begin
            post.Conn_state.cnt_fretx <- post.Conn_state.cnt_fretx + 1;
            t.st_fretx <- t.st_fretx + 1
          end;
          if v.Meta.v_rtt_sample_ns > 0 then
            post.Conn_state.rtt_est_ns <-
              rtt_ewma post.Conn_state.rtt_est_ns v.Meta.v_rtt_sample_ns;
          if v.Meta.v_wake_tx || v.Meta.v_fast_retx then
            Scheduler.wakeup t.sch ~conn:conn_idx;
          let notify =
            if
              v.Meta.v_rx_advance > 0 || v.Meta.v_tx_freed > 0
              || v.Meta.v_fin_reached
            then
              Some
                {
                  Meta.x_opaque = post.Conn_state.opaque;
                  x_rx_bytes = v.Meta.v_rx_advance;
                  x_tx_freed = v.Meta.v_tx_freed;
                  x_fin = v.Meta.v_fin_reached;
                  x_err = false;
                }
            else None
          in
          let readable =
            match v.Meta.v_place with
            | Some (pos, _) when v.Meta.v_rx_advance > 0 ->
                Some (pos, v.Meta.v_rx_advance)
            | _ -> None
          in
          dma_stage t
            {
              dw_conn = conn_idx;
              dw_gseq = v.Meta.v_gseq;
              dw_payload = v.Meta.v_place;
              dw_readable = readable;
              dw_fetch = None;
              dw_ack = v.Meta.v_ack;
              dw_notify = notify;
            }
      | Post_tx d, Some _ ->
          (* FS step: tell the scheduler what happened. *)
          Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:d.Meta.t_len
            ~more:d.Meta.t_more;
          dma_stage t
            {
              dw_conn = conn_idx;
              dw_gseq = -1;
              dw_payload = None;
              dw_readable = None;
              dw_fetch = Some (d, d.Meta.t_pos, d.Meta.t_len);
              dw_ack = None;
              dw_notify = None;
            }
      | Post_hc (_, r), Some _ ->
          if r.Protocol.hc_wake_tx then Scheduler.wakeup t.sch ~conn:conn_idx;
          (match r.Protocol.hc_window_update with
          | Some a ->
              dma_stage t
                {
                  dw_conn = conn_idx;
                  dw_gseq = -1;
                  dw_payload = None;
                  dw_readable = None;
                  dw_fetch = None;
                  dw_ack = Some a;
                  dw_notify = None;
                }
          | None -> ());
          t.hc_descs_free <- t.hc_descs_free + 1))

(* --- Protocol stage ------------------------------------------------- *)

(* The protocol stage's critical section, as the sanitizer sees it: a
   span from lock grant (where the state fetch reads the proto
   partition) to just before lock release (after the state writeback).
   The span being multi-instant is what lets the atomicity check catch
   another stage's write landing in the middle. *)
let proto_span_begin t conn_idx =
  match t.san with
  | None -> ()
  | Some s ->
      San.span_begin s ~stage:"protocol" ~flow:conn_idx;
      San.access s ~stage:"protocol" ~flow:conn_idx ~obj:Effects.Conn_pre
        Effects.Read;
      San.access s ~stage:"protocol" ~flow:conn_idx ~obj:Effects.Conn_proto
        Effects.Read

let proto_writeback t conn_idx ~reasm =
  match t.san with
  | None -> ()
  | Some s ->
      San.access s ~stage:"protocol" ~flow:conn_idx ~obj:Effects.Conn_proto
        Effects.Write;
      if reasm then begin
        San.access s ~stage:"protocol" ~flow:conn_idx ~obj:Effects.Reasm
          Effects.Read;
        San.access s ~stage:"protocol" ~flow:conn_idx ~obj:Effects.Reasm
          Effects.Write
      end;
      San.span_end s ~stage:"protocol" ~flow:conn_idx

let protocol_rx t (s : Meta.rx_summary) =
  match conn t s.Meta.conn with
  | None -> ()
  | Some cs ->
      let fg = cs.Conn_state.pre.Conn_state.flow_group in
      acquire t s.Meta.conn (fun () ->
          proto_span_begin t s.Meta.conn;
          (* Sabotage: drop the lock before the critical section
             instead of after — the classic too-early unlock. *)
          let early = t.sabotage.sb_early_release in
          if early then release t s.Meta.conn;
          let phases = proto_state_phases t cs in
          let c = t.cfg.Config.costs in
          let extra = trace_cycles t "protocol" ~conn:s.Meta.conn in
          let cost =
            if Bytes.length s.Meta.payload = 0 && not s.Meta.fin then
              c.Config.protocol_rx_ack
            else c.Config.protocol_rx
          in
          Nfp.Fpc.submit (proto_fpc_for t cs)
            (phases @ [ Compute (cost + extra) ])
            (sc_span t ~stage:"protocol" ~conn:s.Meta.conn ~id:s.Meta.rx_gseq
               ~cycles:(cost + extra) (fun () ->
                 let v =
                   Protocol.rx t.cfg ~now:(Sim.Engine.now t.engine) cs s
                     ~alloc_gseq:(fun () -> Sequencer.next_seq t.tx_gro)
                 in
                 proto_writeback t s.Meta.conn ~reasm:true;
                 if not early then release t s.Meta.conn;
                 trace_rx_verdict t v;
                 postproc_stage t fg (Post_rx v))))

let protocol_tx t ~conn:conn_idx =
  match conn t conn_idx with
  | None ->
      Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:0 ~more:false;
      Scheduler.credit_return t.sch
  | Some cs ->
      let fg = cs.Conn_state.pre.Conn_state.flow_group in
      acquire t conn_idx (fun () ->
          proto_span_begin t conn_idx;
          let early = t.sabotage.sb_early_release in
          if early then release t conn_idx;
          let phases = proto_state_phases t cs in
          let c = t.cfg.Config.costs in
          let extra = trace_cycles t "protocol" ~conn:conn_idx in
          ignore fg;
          Nfp.Fpc.submit (proto_fpc_for t cs)
            (phases @ [ Compute (c.Config.protocol_tx + extra) ])
            (sc_span t ~stage:"protocol" ~conn:conn_idx ~id:(-1)
               ~cycles:(c.Config.protocol_tx + extra) (fun () ->
                 let d =
                   Protocol.tx t.cfg ~now:(Sim.Engine.now t.engine) cs
                     ~alloc_gseq:(fun () -> Sequencer.next_seq t.tx_gro)
                 in
                 proto_writeback t conn_idx ~reasm:false;
                 if not early then release t conn_idx;
                 match d with
                 | Some d ->
                     trace_event t "protocol" "tx_seg" ~conn:conn_idx;
                     sc_seg_begin t ~track:"seg_tx" ~conn:conn_idx
                       ~id:d.Meta.t_gseq;
                     postproc_stage t fg (Post_tx d)
                 | None ->
                     Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:0
                       ~more:false;
                     Scheduler.credit_return t.sch)))

let protocol_hc t (d : Meta.hc_desc) =
  match conn t d.Meta.h_conn with
  | None -> t.hc_descs_free <- t.hc_descs_free + 1
  | Some cs ->
      let fg = cs.Conn_state.pre.Conn_state.flow_group in
      (* A credit doorbell is the host's "I consumed those bytes"
         edge: join the deliveries it follows, so the window advance
         it enables (and any buffer-position reuse behind it) is
         ordered after the host's reads. *)
      (match (t.san, d.Meta.h_op) with
      | Some s, Meta.Rx_credit _ ->
          San.chan_recv s ("arx#" ^ string_of_int d.Meta.h_conn)
      | _ -> ());
      acquire t d.Meta.h_conn (fun () ->
          proto_span_begin t d.Meta.h_conn;
          let early = t.sabotage.sb_early_release in
          if early then release t d.Meta.h_conn;
          let phases = proto_state_phases t cs in
          let c = t.cfg.Config.costs in
          let extra = trace_cycles t "protocol" ~conn:d.Meta.h_conn in
          ignore fg;
          Nfp.Fpc.submit (proto_fpc_for t cs)
            (phases @ [ Compute (c.Config.protocol_hc + extra) ])
            (sc_span t ~stage:"protocol" ~conn:d.Meta.h_conn ~id:(-1)
               ~cycles:(c.Config.protocol_hc + extra) (fun () ->
                 let r =
                   Protocol.hc t.cfg ~now:(Sim.Engine.now t.engine) cs
                     d.Meta.h_op ~alloc_gseq:(fun () ->
                       Sequencer.next_seq t.tx_gro)
                 in
                 proto_writeback t d.Meta.h_conn ~reasm:false;
                 if not early then release t d.Meta.h_conn;
                 postproc_stage t fg (Post_hc (d.Meta.h_conn, r)))))

(* --- GRO (RX reorder point) ----------------------------------------- *)

(* Hand one (possibly merged) summary to the protocol stage. [merged]
   is the number of wire segments it carries: the sequencer cost is
   paid once per descriptor, plus [gro_merge] per absorbed segment. *)
let gro_submit t ~merged (s : Meta.rx_summary) =
  let c = t.cfg.Config.costs in
  let extra = trace_cycles t "gro" ~conn:s.Meta.conn in
  let cycles =
    c.Config.sequencer + extra + ((merged - 1) * c.Config.gro_merge)
  in
  Nfp.Fpc.submit t.gro_fpc
    [ Compute cycles ]
    (sc_span t ~stage:"gro" ~conn:s.Meta.conn ~id:s.Meta.rx_gseq
       ~cycles (fun () -> protocol_rx t s))

(* Flush a connection's GRO window: merge the accumulated run into one
   descriptor carrying the head's identity. Absorbed segments' RX
   lifecycles end at the merge point — from here on the head's gseq
   stands for the whole run. *)
let gro_flush t acc =
  if not acc.gc_flushed then begin
    acc.gc_flushed <- true;
    match acc.gc_segs with
    | [] -> ()
    | newest :: _ ->
        Hashtbl.remove t.gro_pending newest.Meta.conn;
        let segs = List.rev acc.gc_segs in
        let merged = Coalesce.merge segs in
        List.iter
          (fun (s : Meta.rx_summary) ->
            if s.Meta.rx_gseq <> merged.Meta.rx_gseq then
              sc_seg_end t ~track:"seg_rx" ~id:s.Meta.rx_gseq)
          segs;
        (match t.scope with
        | Some sc -> Sim.Scope.record sc "batch/gro/segments" acc.gc_count
        | None -> ());
        gro_submit t ~merged:acc.gc_count merged
  end

(* The RX sequencer's release point. At [b_gro = 1] every segment goes
   straight through, bit-identically to the unbatched pipeline. Above
   1, adjacent in-sequence data segments of a flow accumulate (the
   sequencer has already put them in arrival order) and flush when the
   window fills, on FIN, on any non-chainable segment, or when the
   batch-delay timer fires. Pure ACKs never merge and never wait —
   duplicate-ACK counting must see each one — but they do flush the
   window ahead of themselves so the host's view stays ordered. *)
let gro_release t (s : Meta.rx_summary) =
  let b = t.cfg.Config.batch.Config.b_gro in
  if b <= 1 then gro_submit t ~merged:1 s
  else begin
    let pending = Hashtbl.find_opt t.gro_pending s.Meta.conn in
    match pending with
    | Some acc when Coalesce.chainable ~next:acc.gc_next s
                    && acc.gc_count < b ->
        acc.gc_segs <- s :: acc.gc_segs;
        acc.gc_count <- acc.gc_count + 1;
        acc.gc_next <- Coalesce.chain_next s;
        if acc.gc_count >= b || s.Meta.fin then gro_flush t acc
    | _ ->
        (match pending with Some acc -> gro_flush t acc | None -> ());
        if Bytes.length s.Meta.payload = 0 || s.Meta.fin then
          gro_submit t ~merged:1 s
        else begin
          let acc =
            {
              gc_segs = [ s ];
              gc_count = 1;
              gc_next = Coalesce.chain_next s;
              gc_flushed = false;
            }
          in
          Hashtbl.replace t.gro_pending s.Meta.conn acc;
          Sim.Engine.schedule t.engine t.cfg.Config.batch_delay (fun () ->
              gro_flush t acc)
        end
  end

(* --- Pre-processing (RX) -------------------------------------------- *)

let forward_to_control t frame =
  t.st_ctl <- t.st_ctl + 1;
  (match t.guard with
  | Some g ->
      t.cp_pending <- t.cp_pending + 1;
      Guard.note_depth g ~stage:"cp" t.cp_pending
  | None -> ());
  let c = t.cfg.Config.costs in
  let fpc = t.ctx_fpcs.(0) in
  Nfp.Fpc.submit fpc
    [ Compute c.Config.ctx_desc ]
    (fun () ->
      Nfp.Dma.issue t.dma ~queue:1
        ~bytes:(S.frame_wire_len frame)
        (fun () ->
          if t.guard <> None then t.cp_pending <- t.cp_pending - 1;
          t.control_rx frame))

(* Checksum verification cost: driving the CRC/checksum unit has a
   fixed overhead plus a per-16B streaming component over the frame
   (the NFP checksums at near line rate). *)
let csum_cycles t frame =
  t.cfg.Config.costs.Config.preproc_csum + (S.frame_wire_len frame / 16)

let preproc_rx t gseq (frame : S.frame) =
  let c = t.cfg.Config.costs in
  let seg = frame.S.seg in
  let flow = Tcp.Flow.of_segment_rx seg in
  let hash = Tcp.Flow.hash flow in
  let lookup_phases = preproc_lookup_phases t hash in
  let capture_extra =
    match t.capture with Some _ -> c.Config.pcap_capture | None -> 0
  in
  let extra = trace_cycles t "preproc" ~conn:(-1) in
  let span_cycles =
    c.Config.preproc_validate + csum_cycles t frame + capture_extra + extra
    + c.Config.preproc_lookup_hit + c.Config.preproc_summary
  in
  let fpc = next_preproc t in
  Nfp.Fpc.submit fpc
    ([
       Nfp.Fpc.Compute
         (c.Config.preproc_validate + csum_cycles t frame + capture_extra
        + extra);
     ]
    @ lookup_phases
    @ [ Nfp.Fpc.Compute c.Config.preproc_summary ])
    (sc_span t ~stage:"preproc" ~conn:(-1) ~id:gseq ~cycles:span_cycles
       (fun () ->
      sa t ~stage:"preproc" ~flow:(-1) Effects.Conn_db Effects.Read;
      if not (S.csum_ok frame) then begin
        (* Corrupted in flight: drop at pre-processing so it never
           reaches GRO or the protocol stage. The sender recovers via
           retransmission (dup-ACK or RTO), exactly as for loss. *)
        t.st_drop_csum <- t.st_drop_csum + 1;
        sa t ~stage:"preproc" ~flow:(-1) Effects.Global_stats Effects.Write;
        trace_event t "preproc" "seg_invalid" ~conn:(-1);
        sc_count t "preproc/drop_csum";
        sc_seg_end t ~track:"seg_rx" ~id:gseq;
        Sequencer.skip t.rx_gro ~seq:gseq
      end
      else
      let conn_idx = Nfp.Lookup.lookup t.conn_db ~hash flow in
      (* Sabotage: peek at the protocol partition from the replicated
         pre-processor — e.g. "optimizing" the in-window test by
         reading [reasm] state outside the lock. *)
      (match (conn_idx, t.sabotage.sb_preproc_reads_proto) with
      | Some idx, true ->
          sa t ~stage:"preproc" ~flow:idx Effects.Conn_proto Effects.Read
      | _ -> ());
      let datapath_ok =
        S.data_path_flags seg.S.flags && frame.S.vlan = None
      in
      match conn_idx with
      | Some idx when datapath_ok ->
          let summary =
            {
              Meta.rx_gseq = gseq;
              conn = idx;
              seq = seg.S.seq;
              ack_seq = seg.S.ack_seq;
              has_ack = seg.S.flags.S.ack;
              wnd = seg.S.window;
              payload = seg.S.payload;
              fin = seg.S.flags.S.fin;
              psh = seg.S.flags.S.psh;
              ece = seg.S.flags.S.ece;
              cwr = seg.S.flags.S.cwr;
              ecn_ce = frame.S.ecn = S.Ce;
              ts = seg.S.options.S.ts;
              arrival = Sim.Engine.now t.engine;
            }
          in
          Sequencer.submit t.rx_gro ~seq:gseq summary
      | _ ->
          (* Control segment, VLAN-tagged, or unknown connection. *)
          sc_count t "preproc/to_control";
          sc_seg_end t ~track:"seg_rx" ~id:gseq;
          Sequencer.skip t.rx_gro ~seq:gseq;
          forward_to_control t frame))

(* --- Run-to-completion baseline (Table 3, row 1) --------------------- *)

let rtc_pcie_sleep t bytes =
  let p = t.cfg.Config.params in
  let ser =
    int_of_float
      (Float.round (float_of_int (8 * bytes) *. 1000. /. p.Nfp.Params.pcie_gbps))
  in
  Nfp.Fpc.Sleep (p.Nfp.Params.pcie_base_latency + ser)

let rtc_rx t (frame : S.frame) =
  let c = t.cfg.Config.costs in
  let seg = frame.S.seg in
  let flow = Tcp.Flow.of_segment_rx seg in
  let hash = Tcp.Flow.hash flow in
  let plen = Bytes.length seg.S.payload in
  let phases =
    [
      Nfp.Fpc.Compute
        (c.Config.preproc_validate + csum_cycles t frame
       + c.Config.preproc_lookup_hit + c.Config.preproc_summary
       + c.Config.protocol_rx + c.Config.postproc_rx + c.Config.dma_desc
       + c.Config.ctx_desc);
      Mem Nfp.Memory.Imem;
      Mem Nfp.Memory.Emem;
      Mem Nfp.Memory.Emem;
      Mem Nfp.Memory.Emem;
      rtc_pcie_sleep t plen;
      rtc_pcie_sleep t 32;
    ]
  in
  Nfp.Fpc.submit t.rtc_fpc phases (fun () ->
      if not (S.csum_ok frame) then
        t.st_drop_csum <- t.st_drop_csum + 1
      else
      match Nfp.Lookup.lookup t.conn_db ~hash flow with
      | Some idx when S.data_path_flags seg.S.flags -> begin
          match conn t idx with
          | None -> forward_to_control t frame
          | Some cs ->
              let summary =
                {
                  Meta.rx_gseq = 0;
                  conn = idx;
                  seq = seg.S.seq;
                  ack_seq = seg.S.ack_seq;
                  has_ack = seg.S.flags.S.ack;
                  wnd = seg.S.window;
                  payload = seg.S.payload;
                  fin = seg.S.flags.S.fin;
                  psh = seg.S.flags.S.psh;
                  ece = seg.S.flags.S.ece;
                  cwr = seg.S.flags.S.cwr;
                  ecn_ce = frame.S.ecn = S.Ce;
                  ts = seg.S.options.S.ts;
                  arrival = Sim.Engine.now t.engine;
                }
              in
              let v =
                Protocol.rx t.cfg ~now:(Sim.Engine.now t.engine) cs summary
                  ~alloc_gseq:(fun () -> Sequencer.next_seq t.tx_gro)
              in
              let post = cs.Conn_state.post in
              post.Conn_state.cnt_ackb <-
                post.Conn_state.cnt_ackb + v.Meta.v_ack_bytes;
              post.Conn_state.cnt_ecnb <-
                post.Conn_state.cnt_ecnb + v.Meta.v_ecn_bytes;
              if v.Meta.v_fast_retx then t.st_fretx <- t.st_fretx + 1;
              if v.Meta.v_rtt_sample_ns > 0 then
                post.Conn_state.rtt_est_ns <-
                  rtt_ewma post.Conn_state.rtt_est_ns v.Meta.v_rtt_sample_ns;
              (match v.Meta.v_place with
              | Some (pos, bytes) ->
                  Host.Payload_buf.write post.Conn_state.rx_buf ~off:pos
                    ~src:bytes ~src_off:0 ~len:(Bytes.length bytes)
              | None -> ());
              if v.Meta.v_wake_tx || v.Meta.v_fast_retx then
                Scheduler.wakeup t.sch ~conn:idx;
              if
                v.Meta.v_rx_advance > 0 || v.Meta.v_tx_freed > 0
                || v.Meta.v_fin_reached
              then
                notify_libtoe t cs
                  {
                    Meta.x_opaque = post.Conn_state.opaque;
                    x_rx_bytes = v.Meta.v_rx_advance;
                    x_tx_freed = v.Meta.v_tx_freed;
                    x_fin = v.Meta.v_fin_reached;
                    x_err = false;
                  };
              match v.Meta.v_ack with
              | Some a ->
                  Sequencer.submit t.tx_gro ~seq:a.Meta.a_gseq (Eg_ack a)
              | None -> ()
        end
      | _ -> forward_to_control t frame)

let rtc_tx t ~conn:conn_idx =
  let c = t.cfg.Config.costs in
  let phases =
    [
      Nfp.Fpc.Compute
        (c.Config.scheduler_pick + c.Config.preproc_summary
       + c.Config.protocol_tx + c.Config.postproc_tx + c.Config.dma_desc);
      Mem Nfp.Memory.Emem;
      Mem Nfp.Memory.Emem;
      Mem Nfp.Memory.Emem;
      rtc_pcie_sleep t t.cfg.Config.mss;
    ]
  in
  Nfp.Fpc.submit t.rtc_fpc phases (fun () ->
      match conn t conn_idx with
      | None ->
          Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:0 ~more:false;
          Scheduler.credit_return t.sch
      | Some cs -> begin
          let d =
            Protocol.tx t.cfg ~now:(Sim.Engine.now t.engine) cs
              ~alloc_gseq:(fun () -> Sequencer.next_seq t.tx_gro)
          in
          match d with
          | None ->
              Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:0 ~more:false;
              Scheduler.credit_return t.sch
          | Some d ->
              Scheduler.on_sent t.sch ~conn:conn_idx ~bytes:d.Meta.t_len
                ~more:d.Meta.t_more;
              let payload =
                if d.Meta.t_len = 0 then Bytes.empty
                else
                  Host.Payload_buf.read cs.Conn_state.post.Conn_state.tx_buf
                    ~off:d.Meta.t_pos ~len:d.Meta.t_len
              in
              Sequencer.submit t.tx_gro ~seq:d.Meta.t_gseq
                (Eg_data (d, payload))
        end)

let rtc_hc t (d : Meta.hc_desc) =
  let c = t.cfg.Config.costs in
  let phases =
    [
      Nfp.Fpc.Compute
        (c.Config.ctx_desc + c.Config.protocol_hc + c.Config.postproc_tx);
      Mem Nfp.Memory.Emem;
      rtc_pcie_sleep t 32;
    ]
  in
  Nfp.Fpc.submit t.rtc_fpc phases (fun () ->
      (match conn t d.Meta.h_conn with
      | None -> ()
      | Some cs ->
          let r =
            Protocol.hc t.cfg ~now:(Sim.Engine.now t.engine) cs d.Meta.h_op
              ~alloc_gseq:(fun () -> Sequencer.next_seq t.tx_gro)
          in
          if r.Protocol.hc_wake_tx then
            Scheduler.wakeup t.sch ~conn:d.Meta.h_conn;
          match r.Protocol.hc_window_update with
          | Some a -> Sequencer.submit t.tx_gro ~seq:a.Meta.a_gseq (Eg_ack a)
          | None -> ());
      t.hc_descs_free <- t.hc_descs_free + 1)

(* --- NBI ingress ------------------------------------------------------ *)

let rx_datapath t frame =
  t.st_rx <- t.st_rx + 1;
  sc_count t "nbi/rx_frames";
  if pipelined t then begin
    let gseq = Sequencer.next_seq t.rx_gro in
    sc_seg_begin t ~track:"seg_rx" ~conn:(-1) ~id:gseq;
    preproc_rx t gseq frame
  end
  else rtc_rx t frame

(* Ingress shed policy: when the control path is saturated ([g_cp_queue]
   frames already in flight to the CP) drop the newest pure SYNs at the
   NBI. Never anything else — established-flow segments and handshake
   completions always pass, so load shedding degrades accept rate, not
   goodput. *)
let guard_shed_rx t frame =
  match t.guard with
  | None -> false
  | Some g ->
      let q = (Guard.config g).Config.g_cp_queue in
      let fl = frame.S.seg.S.flags in
      if q > 0 && t.cp_pending >= q && fl.S.syn && not fl.S.ack then begin
        Guard.count g "shed_queue";
        t.st_drop <- t.st_drop + 1;
        true
      end
      else false

let rx_frame t frame =
  (match t.capture with Some cap -> cap Dir_rx frame | None -> ());
  if guard_shed_rx t frame then ()
  else
  match t.xdp_ingress with
  | None -> rx_datapath t frame
  | Some hook ->
      (* XDP modules run on the islands' spare FPCs, before the
         data-path pipeline; FlexTOE re-sequences afterwards (§3.3). *)
      let cycles, action = hook.xdp_run frame in
      let c = t.cfg.Config.costs in
      let fpc =
        t.xdp_fpcs.(t.st_rx mod Array.length t.xdp_fpcs)
      in
      Nfp.Fpc.submit fpc
        [ Compute (c.Config.xdp_dispatch + cycles) ]
        (fun () ->
          match action with
          | Xdp_pass f -> rx_datapath t f
          | Xdp_drop -> t.st_drop <- t.st_drop + 1
          | Xdp_tx f ->
              let gseq = Sequencer.next_seq t.tx_gro in
              Sequencer.submit t.tx_gro ~seq:gseq (Eg_ctl f)
          | Xdp_redirect f -> forward_to_control t f)

(* --- TX dispatch (from the scheduler) --------------------------------- *)

let dispatch_tx t ~conn:conn_idx =
  if not (pipelined t) then rtc_tx t ~conn:conn_idx
  else begin
    let c = t.cfg.Config.costs in
    let extra = trace_cycles t "sch" ~conn:conn_idx in
    Nfp.Fpc.submit t.sch_fpc
      [ Compute (c.Config.scheduler_pick + extra) ]
      (sc_span t ~stage:"sched" ~conn:conn_idx ~id:(-1)
         ~cycles:(c.Config.scheduler_pick + extra) (fun () ->
           sa t ~stage:"sched" ~flow:conn_idx Effects.Sched_state
             Effects.Write;
           (* Pre-processing: segment alloc + Ethernet/IP headers. *)
           let fpc = next_preproc t in
           let pre_extra = trace_cycles t "preproc" ~conn:conn_idx in
           Nfp.Fpc.submit fpc
             [ Compute (c.Config.preproc_summary + pre_extra) ]
             (fun () -> protocol_tx t ~conn:conn_idx)))
  end

(* --- Host-control path ------------------------------------------------- *)

(* The ATX consumer runs off engine timers (doorbell MMIO latency /
   flow-control retries), i.e. in no datapath context; give it a
   thread identity so the ring's push/pop edge (host doorbell →
   descriptor fetch) is the only thing ordering it after the host's
   writes. *)
let rec atx_drain t ctx =
  match t.san with
  | Some s ->
      San.run_as s ~thread:("atxq" ^ string_of_int ctx) (fun () ->
          atx_drain_body t ctx)
  | None -> atx_drain_body t ctx

and atx_drain_body t ctx =
  t.atx_scheduled.(ctx) <- false;
  let ring = t.atx.(ctx) in
  let c = t.cfg.Config.costs in
  if not (Nfp.Ring.is_empty ring) then begin
    if t.hc_descs_free <= 0 then begin
      (* Descriptor pool exhausted: flow-control, retry shortly. *)
      if not t.atx_scheduled.(ctx) then begin
        t.atx_scheduled.(ctx) <- true;
        Sim.Engine.schedule t.engine (Sim.Time.us 2) (fun () ->
            atx_drain t ctx)
      end
    end
    else begin
      match Nfp.Ring.pop ring with
      | None -> ()
      | Some desc ->
          t.hc_descs_free <- t.hc_descs_free - 1;
          let fpc = t.ctx_fpcs.(ctx mod Array.length t.ctx_fpcs) in
          let extra = trace_cycles t "ctx" ~conn:desc.Meta.h_conn in
          Nfp.Fpc.submit fpc
            [ Compute (c.Config.ctx_desc + extra) ]
            (fun () ->
              (* Fetch the descriptor from the host context queue. *)
              Nfp.Dma.issue t.dma ~queue:1 ~bytes:32 (fun () ->
                  if pipelined t then begin
                    (* Steer through a pre-processor to the right
                       protocol stage. *)
                    let pre = next_preproc t in
                    Nfp.Fpc.submit pre
                      [ Compute c.Config.preproc_lookup_hit ]
                      (fun () -> protocol_hc t desc)
                  end
                  else rtc_hc t desc));
          atx_drain t ctx
    end
  end

let atx_push t ~ctx (d : Meta.hc_desc) =
  let ctx = ctx mod t.n_ctx in
  let ok = Nfp.Ring.push t.atx.(ctx) d in
  (match t.guard with
  | Some g ->
      Guard.note_depth g ~stage:"atx" (Nfp.Ring.length t.atx.(ctx))
  | None -> ());
  let b = t.cfg.Config.batch.Config.b_doorbell in
  if ok && not t.atx_scheduled.(ctx) then begin
    if b <= 1 || Nfp.Ring.length t.atx.(ctx) >= b then begin
      t.atx_scheduled.(ctx) <- true;
      (* MMIO doorbell posts to the NIC. *)
      Sim.Engine.schedule t.engine
        t.cfg.Config.params.Nfp.Params.mmio_latency (fun () ->
          atx_drain t ctx)
    end
    else if not t.atx_flush_armed.(ctx) then begin
      (* Held doorbell: ring when the batch fills (above) or when the
         hold timer expires on a partial batch, whichever is first. *)
      t.atx_flush_armed.(ctx) <- true;
      Sim.Engine.schedule t.engine t.cfg.Config.batch_delay (fun () ->
          t.atx_flush_armed.(ctx) <- false;
          if (not t.atx_scheduled.(ctx))
             && not (Nfp.Ring.is_empty t.atx.(ctx))
          then begin
            t.atx_scheduled.(ctx) <- true;
            Sim.Engine.schedule t.engine
              t.cfg.Config.params.Nfp.Params.mmio_latency (fun () ->
                atx_drain t ctx)
          end)
    end
  end;
  ok

let cp_push t (d : Meta.hc_desc) =
  (* Control plane interface (CPI): same path, context queue 0. *)
  ignore (atx_push t ~ctx:0 d)

(* Abort notification (CP decided the flow is unrecoverable). Must be
   sent while the connection state still exists — callers remove the
   connection afterwards. *)
let notify_abort t ~conn:conn_idx =
  match conn t conn_idx with
  | None -> ()
  | Some cs ->
      (* Abort paths dump the connection's flight recorder: the last N
         lifecycle events before the control plane gave up. *)
      (match t.scope with
      | Some sc ->
          Sim.Scope.dump_flight sc ~conn:conn_idx ~reason:"abort"
            Format.err_formatter
      | None -> ());
      notify_libtoe t cs
        {
          Meta.x_opaque = cs.Conn_state.post.Conn_state.opaque;
          x_rx_bytes = 0;
          x_tx_freed = 0;
          x_fin = false;
          x_err = true;
        }

let reinject_rx t frame = rx_datapath t frame

let control_tx t frame =
  Nfp.Dma.issue t.dma ~queue:1
    ~bytes:(S.frame_wire_len frame)
    (fun () ->
      let gseq = Sequencer.next_seq t.tx_gro in
      Sequencer.submit t.tx_gro ~seq:gseq (Eg_ctl frame))

(* --- CP knobs ----------------------------------------------------------- *)

let read_cc_stats t ~conn:conn_idx =
  match conn t conn_idx with
  | None ->
      {
        ackb = 0;
        ecnb = 0;
        fretx = 0;
        rtt_est_ns = 0;
        tx_backlog = 0;
        tx_inflight = 0;
        ack_pending = false;
        last_progress = Sim.Time.zero;
      }
  | Some cs ->
      let post = cs.Conn_state.post in
      let proto = cs.Conn_state.proto in
      let r =
        {
          ackb = post.Conn_state.cnt_ackb;
          ecnb = post.Conn_state.cnt_ecnb;
          fretx = post.Conn_state.cnt_fretx;
          rtt_est_ns = post.Conn_state.rtt_est_ns;
          tx_backlog =
            proto.Conn_state.tx_tail_pos - proto.Conn_state.tx_acked_pos;
          tx_inflight =
            (* An unacked FIN is in flight too: without this, a lost
               FIN never trips the RTO and teardown hangs in
               FIN_WAIT_1. *)
            proto.Conn_state.tx_next_pos - proto.Conn_state.tx_acked_pos
            + (if proto.Conn_state.fin_sent && not proto.Conn_state.fin_acked
               then 1
               else 0);
          ack_pending = proto.Conn_state.delack_segs > 0;
          last_progress = proto.Conn_state.last_progress;
        }
      in
      post.Conn_state.cnt_ackb <- 0;
      post.Conn_state.cnt_ecnb <- 0;
      post.Conn_state.cnt_fretx <- 0;
      r

let set_rate t ~conn:conn_idx ~bps =
  (* The host does the division; the wheel multiplies (§3.5). *)
  let ps_per_byte =
    if bps <= 0 then 0
    else int_of_float (Float.round (8e12 /. float_of_int bps))
  in
  (match conn t conn_idx with
  | Some cs -> cs.Conn_state.post.Conn_state.rate_bps <- bps
  | None -> ());
  Sim.Engine.schedule t.engine t.cfg.Config.params.Nfp.Params.mmio_latency
    (fun () -> Scheduler.set_interval t.sch ~conn:conn_idx ~ps_per_byte)

let wake_tx t ~conn = Scheduler.wakeup t.sch ~conn
let sched_peak_ready t = Scheduler.peak_ready t.sch

let set_xdp_ingress t h = t.xdp_ingress <- h
let set_capture t c = t.capture <- c

(* --- Stats ---------------------------------------------------------------- *)

let stats t =
  {
    rx_segments = t.st_rx;
    tx_segments = t.st_tx;
    tx_acks = t.st_tx_acks;
    rx_to_control = t.st_ctl;
    rx_dropped = t.st_drop;
    rx_dropped_csum = t.st_drop_csum;
    fast_retx = t.st_fretx;
    gro_reordered = Sequencer.reordered t.rx_gro;
    egress_reordered = Sequencer.reordered t.tx_gro;
    dma_bytes = Nfp.Dma.bytes_transferred t.dma;
    rx_completed = t.st_rx_done;
  }

let all_fpcs t =
  Array.concat
    ([
       t.preproc_fpcs;
       Array.concat (Array.to_list t.proto_fpcs);
       t.dma_fpcs;
       t.ctx_fpcs;
       [| t.sch_fpc; t.gro_fpc; t.rtc_fpc |];
       t.xdp_fpcs;
     ]
    @ Array.to_list t.postproc_fpcs)

let cache_stats t =
  let cams =
    Array.to_list
      (Array.mapi
         (fun i cam ->
           (Printf.sprintf "cam%d" i, Nfp.Cam.hits cam, Nfp.Cam.misses cam))
         t.proto_cam)
  in
  let clss =
    Array.to_list
      (Array.mapi
         (fun i c ->
           ( Printf.sprintf "cls%d" i,
             Nfp.Direct_cache.hits c,
             Nfp.Direct_cache.misses c ))
         t.fg_cls)
  in
  let emems =
    if Array.length t.emem_lru = 1 then
      [ ("emem$", Nfp.Lru.hits t.emem_lru.(0), Nfp.Lru.misses t.emem_lru.(0)) ]
    else
      Array.to_list
        (Array.mapi
           (fun i l ->
             (Printf.sprintf "emem$%d" i, Nfp.Lru.hits l, Nfp.Lru.misses l))
           t.emem_lru)
  in
  (("pre-lookup", Nfp.Direct_cache.hits t.pre_lookup_cache,
    Nfp.Direct_cache.misses t.pre_lookup_cache)
   :: cams)
  @ clss
  @ emems

(* --- FlexScale observability ------------------------------------------ *)

let shards t = t.shards
let cross_shard_accesses t = t.st_cross_shard

let emem_bytes_per_flow t =
  match t.emem_pressure with
  | None -> 0
  | Some pr -> Nfp.Memory.Pressure.bytes_per_flow pr

let emem_resident_flows t =
  match t.emem_pressure with
  | None -> 0
  | Some pr -> Nfp.Memory.Pressure.flows pr

let pinned_evictions t =
  Array.fold_left (fun n c -> n + Nfp.Cam.pinned_evictions c) 0 t.proto_cam
  + Array.fold_left (fun n l -> n + Nfp.Lru.pinned_evictions l) 0 t.emem_lru

let fpc_busy t =
  Array.to_list (all_fpcs t)
  |> List.map (fun f -> (Nfp.Fpc.name f, Nfp.Fpc.busy_time f))

(* Pools with their island assignment, for the FlexScope utilization
   sampler: per-flow-group pools carry their island index, service
   island pools (DMA, context queues, scheduler, GRO) carry -1. *)
let fpc_pools t =
  let groups = Array.length t.proto_fpcs in
  let split name arr =
    let n = Array.length arr in
    if groups > 0 && n > 0 && n mod groups = 0 then
      List.init groups (fun g ->
          (name, g, Array.sub arr (g * (n / groups)) (n / groups)))
    else [ (name, 0, arr) ]
  in
  split "preproc" t.preproc_fpcs
  @ List.init groups (fun g -> ("protocol", g, t.proto_fpcs.(g)))
  @ List.init groups (fun g -> ("postproc", g, t.postproc_fpcs.(g)))
  @ split "xdp" t.xdp_fpcs
  @ [
      ("dma", -1, t.dma_fpcs);
      ("ctx", -1, t.ctx_fpcs);
      ("sch", -1, [| t.sch_fpc |]);
      ("gro", -1, [| t.gro_fpc |]);
    ]

(* The LP partition plan for this node, consistent with [fpc_pools]:
   per-flow-group pools land on their island's LP, service pools
   (island index -1) on the service LP. The host model is not an FPC
   pool; partitioners place it on [Graph_ir.Lp_host] themselves. *)
(* At scale, each shard group gets its own island LP: flow group [fg]
   lands on island [fg mod shards], so the [shards] replicated
   pipelines run as distinct FlexPar LPs while service pools stay
   shared. Unsharded, island = flow group, as before. *)
let lp_plan t =
  List.map
    (fun (name, island, _fpcs) ->
      ( name,
        island,
        if island < 0 then Graph_ir.Lp_service
        else if t.cfg.Config.scale.Config.s_on then
          Graph_ir.Lp_island (island mod t.shards)
        else Graph_ir.Lp_island island ))
    (fpc_pools t)

let atx_rings t = t.atx

(* --- Construction ----------------------------------------------------------- *)

let trace_point_names =
  (* 48 tracepoints across the pipeline (§5.1). *)
  [
    ("preproc", [ "seg_valid"; "seg_invalid"; "conn_hit"; "conn_miss";
                  "steer"; "ctl_fwd" ]);
    ("gro", [ "in_order"; "reordered"; "queue_occupancy"; "released" ]);
    ("protocol",
     [ "rx_seg"; "tx_seg"; "hc_op"; "ooo_seg"; "dup_ack"; "fast_retx";
       "win_update"; "fin"; "crit_section"; "drop_merge"; "drop_window" ]);
    ("postproc", [ "ack_gen"; "stamp"; "stats"; "notify"; "ecn_echo" ]);
    ("dma", [ "payload_rx"; "payload_tx"; "desc"; "queue_depth" ]);
    ("ctx", [ "arx_notify"; "atx_fetch"; "doorbell"; "pool_empty" ]);
    ("sch",
     [ "dispatch"; "rr_pick"; "wheel_park"; "wheel_fire"; "credit_stall" ]);
    ("nbi", [ "rx_frame"; "tx_frame"; "tx_ack"; "ctl_inject" ]);
    ("cp", [ "retransmit"; "rate_set"; "conn_install"; "conn_remove";
             "stats_read" ]);
  ]

let create engine ~config:cfg ~fabric ~mac ~ip ?(ctx_queues = 4)
    ?(sabotage = no_sabotage) () =
  let p = cfg.Config.params in
  let par = cfg.Config.parallelism in
  let stages = builtin_stages sabotage in
  (* Layer 1: the stage graph must be statically sound before any FPC
     is wired. An unserialized write/write or write/read overlap on a
     non-atomic, non-partitioned region fails construction with the
     conflicting (stage, region) pairs. *)
  (match Effects.check (List.map (fun s -> s.sg_contract) stages) with
  | Ok () -> ()
  | Error cs -> raise (Effects.Contract_violation cs));
  (* Layer 0: FlexProve over the declared graph — whole-graph
     interference, deadlock freedom of the credit/backpressure loops,
     worst-case queue occupancy. Checked once per node on the wiring
     the node *declares* (seeded as-built defects are FlexSan's and
     [flexlint graph --classify]'s business), so an unsound
     composition — a capacity that no longer covers a reorder buffer,
     a credit loop without a drain — fails construction before any
     FPC exists, at zero per-segment cost. *)
  (match Prove.check_graph (builtin_graph ~config:cfg ()) with
  | Ok _ -> ()
  | Error fs -> raise (Prove.Graph_rejected fs));
  (* Layer 2 only makes sense for the parallel pipeline: the
     run-to-completion baseline serializes everything on one FPC, so
     whole-region accesses would be reported against replicas that
     cannot exist. *)
  let san =
    if cfg.Config.san && par.Config.pipelined then
      Some
        (San.create ~engine
           ~contracts:(List.map (fun s -> s.sg_contract) stages)
           ())
    else None
  in
  let groups = max 1 par.Config.flow_groups in
  let threads = max 1 par.Config.fpc_threads in
  let scale = cfg.Config.scale in
  let shards = Flow_group.shards_of scale in
  let mk ?(threads = threads) name i =
    Nfp.Fpc.create engine ~params:p ~threads
      ~name:(Printf.sprintf "%s%d" name i)
      ()
  in
  let traces = Sim.Trace.create () in
  let trace_groups = Hashtbl.create 16 in
  List.iter
    (fun (group, names) ->
      let pts =
        List.map (fun n -> Sim.Trace.register traces ~group n) names
      in
      Hashtbl.replace trace_groups group (Array.of_list pts))
    trace_point_names;
  (* FlexScope (host-side observation, like FlexSan): constructed once
     here so every data-path hook is a single branch on an immutable
     option when profiling is off. *)
  let scope =
    match cfg.Config.scope with
    | Config.Scope_off -> None
    | Config.Scope_metrics ->
        Some (Sim.Scope.create ~mode:Sim.Scope.Metrics_only engine)
    | Config.Scope_full ->
        Some (Sim.Scope.create ~mode:Sim.Scope.Full engine)
  in
  (* FlexGuard: constructed here (off by default) so every data-path
     hook is a single branch on an immutable option, like FlexSan and
     FlexScope. The cookie secret is derived from the node identity —
     deterministic per node, different across nodes. *)
  let guard =
    if cfg.Config.guard.Config.g_on then
      Some
        (Guard.create ~g:cfg.Config.guard
           ~secret:(((mac * 0x9E3779B1) lxor (ip * 0x85EBCA6B)) land max_int)
           ())
    else None
  in
  let rec t =
    lazy
      {
        engine;
        cfg;
        stages;
        sabotage;
        san;
        scope;
        guard;
        cp_pending = 0;
        port =
          Netsim.Fabric.add_port fabric ~rate_gbps:p.Nfp.Params.wire_gbps
            ~mac ~ip
            ~rx:(fun frame -> rx_frame (Lazy.force t) frame)
            ();
        mac;
        ip;
        n_ctx = ctx_queues;
        conns = Hashtbl.create 1024;
        conn_db = Nfp.Lookup.create ~equal:Tcp.Flow.equal;
        next_conn_idx = 0;
        locks = Hashtbl.create 1024;
        preproc_fpcs =
          Array.init
            (max 1 (par.Config.preproc_replicas * groups))
            (mk "pre");
        proto_fpcs =
          Array.init groups (fun g ->
              Array.init
                (max 1 par.Config.proto_replicas)
                (fun i -> mk "proto" ((g * 10) + i)));
        postproc_fpcs =
          Array.init groups (fun g ->
              Array.init
                (max 1 par.Config.postproc_replicas)
                (fun i -> mk "post" ((g * 10) + i)));
        dma_fpcs = Array.init (max 1 par.Config.dma_replicas) (mk "dma");
        ctx_fpcs = Array.init (max 1 par.Config.ctx_replicas) (mk "ctx");
        sch_fpc = mk "sch" 0;
        gro_fpc = mk "gro" 0;
        xdp_fpcs = Array.init (3 * groups) (mk "xdp");
        rtc_fpc = mk ~threads:1 "rtc" 0;
        rr_pre = 0;
        rr_post = 0;
        rr_dma = 0;
        dma = Nfp.Dma.create engine ~params:p;
        pre_lookup_cache =
          Nfp.Direct_cache.create
            ~entries:p.Nfp.Params.preproc_cache_entries;
        proto_cam =
          Array.init groups (fun _ ->
              Nfp.Cam.create ~entries:p.Nfp.Params.cam_entries);
        fg_cls =
          Array.init groups (fun _ ->
              Nfp.Direct_cache.create
                ~entries:p.Nfp.Params.cls_cache_entries);
        emem_lru =
          (* Shards split the shared EMEM cache's working set; at
             shards = 1 the single full-size LRU is bit-identical to
             the unsharded hierarchy. *)
          (if shards <= 1 then
             [| Nfp.Lru.create ~entries:p.Nfp.Params.emem_cache_entries |]
           else
             Array.init shards (fun _ ->
                 Nfp.Lru.create
                   ~entries:
                     (max 1 (p.Nfp.Params.emem_cache_entries / shards))));
        shards;
        emem_pressure =
          (if scale.Config.s_on then
             Some
               (Nfp.Memory.Pressure.create
                  ~capacity_flows:scale.Config.s_emem_flows)
           else None);
        rx_gro =
          Sequencer.create ~name:"rx-gro" ~release:(fun s ->
              gro_release (Lazy.force t) s);
        tx_gro =
          Sequencer.create ~name:"tx-gro" ~release:(fun e ->
              nbi_emit (Lazy.force t) e);
        sch =
          Scheduler.create ~shards
            ~shard_of:(fun ~conn ->
              match Hashtbl.find_opt (Lazy.force t).conns conn with
              | Some cs ->
                  Flow_group.shard_of_group
                    cs.Conn_state.pre.Conn_state.flow_group ~shards
              | None -> 0)
            engine ~slot:cfg.Config.wheel_slot ~slots:cfg.Config.wheel_slots
            ~credits:(min 256 p.Nfp.Params.seg_buffers)
            ~dispatch:(fun ~conn -> dispatch_tx (Lazy.force t) ~conn);
        atx =
          Array.init ctx_queues (fun i ->
              Nfp.Ring.create ~capacity:512
                ~name:(Printf.sprintf "atx%d" i)
                ());
        atx_scheduled = Array.make ctx_queues false;
        arx_handlers = Array.make ctx_queues (fun _ -> ());
        hc_descs_free = 128;
        gro_pending = Hashtbl.create 64;
        arx_pending = Hashtbl.create 64;
        atx_flush_armed = Array.make ctx_queues false;
        st_dma_work = 0;
        control_rx = (fun _ -> ());
        xdp_ingress = None;
        traces;
        trace_groups;
        capture = None;
        st_rx = 0;
        st_tx = 0;
        st_tx_acks = 0;
        st_ctl = 0;
        st_drop = 0;
        st_drop_csum = 0;
        st_fretx = 0;
        st_rx_done = 0;
        st_cross_shard = 0;
      }
  in
  let t = Lazy.force t in
  (* Guard counters mirror into the FlexScope metrics snapshot under
     "guard/<name>" when both subsystems are on. *)
  (match (t.guard, t.scope) with
  | Some g, Some sc ->
      Guard.set_on_count g (fun name ->
          Sim.Scope.count sc ~name:("guard/" ^ name) ())
  | _ -> ());
  (* Doorbell/completion batching on the PCIe engine ([set_batch] at
     1/1 is a no-op, but skipping the call keeps the unbatched engine
     provably untouched). *)
  let b = cfg.Config.batch in
  if b.Config.b_doorbell > 1 || b.Config.b_completion > 1 then
    Nfp.Dma.set_batch t.dma ~doorbell:b.Config.b_doorbell
      ~completion:b.Config.b_completion ~delay:cfg.Config.batch_delay;
  (* Layer 2 wiring: give every execution context an identity and
     every ordering mechanism a happens-before edge. The RTC baseline
     FPC is deliberately left untraced (san is None for it anyway). *)
  (match san with
  | None -> ()
  | Some s ->
      let fpc f =
        Nfp.Fpc.set_tracer f (Some (San.fpc_tracer s ~name:(Nfp.Fpc.name f)))
      in
      Array.iter fpc t.preproc_fpcs;
      Array.iter (Array.iter fpc) t.proto_fpcs;
      Array.iter (Array.iter fpc) t.postproc_fpcs;
      Array.iter fpc t.dma_fpcs;
      Array.iter fpc t.ctx_fpcs;
      Array.iter fpc t.xdp_fpcs;
      fpc t.sch_fpc;
      fpc t.gro_fpc;
      Nfp.Dma.set_tracer t.dma (Some (San.dma_tracer s));
      Sequencer.set_tracer t.rx_gro (Some (San.seq_tracer s ~name:"rx-gro"));
      Sequencer.set_tracer t.tx_gro (Some (San.seq_tracer s ~name:"tx-gro"));
      Scheduler.set_tracer t.sch (Some (San.sch_tracer s));
      Array.iter
        (fun ring ->
          Nfp.Ring.set_tracer ring
            (Some (San.ring_tracer s ~name:(Nfp.Ring.name ring))))
        t.atx);
  (* When both layers are on, a sanitizer report dumps the offending
     connection's flight-recorder ring: the last N lifecycle events
     leading up to the race, alongside FlexSan's own access trace. *)
  (match (san, scope) with
  | Some s, Some sc ->
      San.set_on_report s
        (Some
           (fun r ->
             Sim.Scope.dump_flight sc ~conn:(San.report_flow r)
               ~reason:"flexsan" Format.err_formatter))
  | _ -> ());
  t
