(** The offloaded FlexTOE data path: the NIC side of the system.

    Owns the FPCs, inter-stage rings, sequencers, DMA engine, flow
    scheduler, connection caches and the NBI port, and wires the three
    workflows of §3.1 through the five-stage pipeline:

    - {b RX}: NBI → (XDP) → pre-processing (validate, identify,
      summarise) → GRO reorder → protocol (atomic per connection) →
      post-processing (ACK, stamps, stats) → payload DMA →
      notification + ACK egress;
    - {b TX}: flow scheduler → pre-processing (alloc, headers) →
      protocol (sequence) → post-processing → payload fetch DMA →
      TX reorder → NBI;
    - {b HC}: doorbell → descriptor fetch DMA → steer → protocol
      (window/FIN/reset) → scheduler update.

    The host sides (libTOE, control plane) talk to it through context
    queues and MMIO, never directly. *)

type t

(** {1 Stage-effect contracts (FlexSan)} *)

(** A pipeline stage as a first-class value: its {!Effects.contract}
    plus the tracepoint group its instrumentation hangs off. *)
type stage = { sg_contract : Effects.contract; sg_trace_group : string }

(** Deliberate synchronization defects for the sanitizer's regression
    corpus. Each flag removes or reorders exactly one ordering edge
    (or mis-declares a footprint, for [sb_bad_contract]); all are
    behavior-preserving under the single-threaded simulator, so only
    FlexSan can tell a sabotaged node from a healthy one — exactly
    like a latent race on real silicon. *)
type sabotage = {
  sb_no_lock : bool;  (** Protocol stage runs without the per-conn lock. *)
  sb_early_release : bool;  (** Lock dropped before the critical section. *)
  sb_notify_before_payload : bool;
      (** ARX notification + ACK leave before the payload DMA lands. *)
  sb_skip_notify_dma : bool;
      (** Notification delivered without the DMA-completion edge. *)
  sb_postproc_writes_conn : bool;  (** Post-processor pokes proto state. *)
  sb_preproc_reads_proto : bool;  (** Pre-processor peeks at proto state. *)
  sb_bad_contract : bool;
      (** Post-processor declares a protocol-partition write: the
          static layer rejects the stage graph at {!create}. *)
  sb_mis_steer : bool;
      (** Protocol stage indexes a neighbor flow group's caches and
          FPC pool for odd connection indices — a steering bug that
          breaks the shard-disjointness invariant. Caught at runtime
          by the datapath's steering self-check
          ({!cross_shard_accesses}) and reported to FlexSan as an
          undeclared-stage access. *)
}

val no_sabotage : sabotage

val sabotage_variants : (string * sabotage) list
(** The seeded-race corpus, one variant per defect. *)

val builtin_contracts : unit -> Effects.contract list
(** The healthy pipeline's effect contracts (what [flexlint san]
    checks statically without building a node). *)

val builtin_contracts_under : sabotage -> Effects.contract list
(** The contracts as declared under a sabotage variant — only
    [sb_bad_contract] changes a declaration; the other defects lie in
    the implementation, which is exactly what [flexlint infer]
    diffs the declarations against. *)

val builtin_graph : ?sabotage:sabotage -> config:Config.t -> unit -> Graph_ir.t
(** FlexProve extraction of the built-in pipeline as actually wired
    under [sabotage] (default healthy): stage slots from
    [config.parallelism], queue capacities from [config.params] and
    the ring sizes, batch degrees from [config.batch], the CP-queue
    bound from [config.guard]. [flexlint graph] and the create-time
    layer-0 check both go through this. *)

val sabotage_dynamic_only : (string * string) list
(** The sabotage variants no analysis of the declared wiring can see
    (variant name, rationale): their declared ordering edge is intact
    and the defect is the implementation not honoring it at runtime —
    FlexSan's business. [flexlint graph --classify] requires every
    {!sabotage_variants} entry to be statically caught or listed
    here. *)

val stages : t -> stage list

val san : t -> San.t option
(** The dynamic sanitizer, when enabled ([config.san] set and the
    pipeline parallelism active). *)

val scope : t -> Sim.Scope.t option
(** The FlexScope recorder, when enabled ([config.scope] not
    {!Config.Scope_off}). Every data-path hook costs one branch on
    this option when profiling is off. *)

val guard : t -> Guard.t option
(** FlexGuard overload control, when enabled ([config.guard.g_on]).
    Like [san] and [scope], a dormant guard is a [None]: no events,
    no counters, bit-identical behavior. *)

val create :
  Sim.Engine.t ->
  config:Config.t ->
  fabric:Netsim.Fabric.t ->
  mac:int ->
  ip:int ->
  ?ctx_queues:int ->
  ?sabotage:sabotage ->
  unit ->
  t
(** Raises {!Effects.Contract_violation} if the stage set's contracts
    are statically incompatible (layer 1 fails fast, before any FPC
    is wired). *)

val engine : t -> Sim.Engine.t
val config : t -> Config.t

val fabric_port : t -> Netsim.Fabric.port
[@@ocaml.doc
  " The NBI's port on the fabric (e.g. to shape it for incast    experiments). "]
val mac : t -> int
val ip : t -> int
val num_ctx : t -> int

(** {1 Connection management (control-plane interface)} *)

val alloc_conn_idx : t -> int

val install_conn : t -> Conn_state.t -> k:(unit -> unit) -> unit
(** Write connection state into the data path (costs a PCIe write);
    the connection processes data-path segments once [k] runs. *)

val remove_conn : t -> conn:int -> unit
val conn : t -> int -> Conn_state.t option

val has_flow : t -> Tcp.Flow.t -> bool
(** Is this 4-tuple installed in the active-connection database? Used
    by the control plane to distinguish segments that raced a
    connection installation (reinjected) from stale traffic
    (dropped). *)

val active_conns : t -> int

val conn_of_flow : t -> Tcp.Flow.t -> int option
(** Connection index currently installed for a 4-tuple (the RST and
    teardown paths need the index, not just presence). *)

val sched_peak_ready : t -> int
(** High-water mark of the flow scheduler's queued-flow count
    (FlexGuard bounded-queue gate). *)

(** {1 Control-plane segment path} *)

val set_control_rx : t -> (Tcp.Segment.frame -> unit) -> unit
(** Non-data-path segments (SYN/RST, unknown connections) are
    forwarded here, arriving at host-visible time (after the CPI
    context queue and DMA). *)

val control_tx : t -> Tcp.Segment.frame -> unit
(** Inject a control segment for transmission (SYN-ACK, RST...);
    pays host-to-NIC DMA before entering the egress path. *)

val reinject_rx : t -> Tcp.Segment.frame -> unit
(** Feed a received frame back into the RX pipeline. Used by the
    control plane for data segments that raced ahead of connection
    installation. *)

(** {1 Context queues (libTOE interface)} *)

val atx_push : t -> ctx:int -> Meta.hc_desc -> bool
(** Host-control descriptor + doorbell. [false] if the ATX ring is
    full (libTOE must retry). *)

val set_arx_handler : t -> ctx:int -> (Meta.arx_desc -> unit) -> unit
(** Notifications for an application context; the handler runs at the
    time the descriptor is host-visible (after DMA + libTOE poll
    delay). *)

(** {1 Control-plane knobs} *)

val cp_push : t -> Meta.hc_desc -> unit
(** Control-plane-originated HC operation (retransmit). *)

val notify_abort : t -> conn:int -> unit
(** Push an abort notification ([x_err]) to the connection's context
    queue. Called by the control plane before tearing down a flow
    whose retransmission retries are exhausted, so the application
    learns the connection died instead of waiting forever. *)

val dma_engine : t -> Nfp.Dma.t
(** The PCIe DMA engine (e.g. to inject transfer faults). *)

type cc_stats = {
  ackb : int;
  ecnb : int;
  fretx : int;
  rtt_est_ns : int;
  tx_backlog : int;  (** Unsent + unacked bytes. *)
  tx_inflight : int;
      (** Sent-but-unacknowledged bytes — the RTO condition (a paced
          flow with nothing in flight must not look stalled). *)
  ack_pending : bool;  (** Delayed ACK awaiting a control-plane flush. *)
  last_progress : Sim.Time.t;
}

val read_cc_stats : t -> conn:int -> cc_stats
(** Read-and-reset the per-flow congestion statistics (CP loop). *)

val set_rate : t -> conn:int -> bps:int -> unit
(** Program the flow scheduler's pacing rate via MMIO. The
    cycles/byte conversion happens here (on the host — FPCs cannot
    divide). 0 means uncongested. *)

(** {1 Flexibility hooks} *)

type xdp_action =
  | Xdp_pass of Tcp.Segment.frame
  | Xdp_drop
  | Xdp_tx of Tcp.Segment.frame
  | Xdp_redirect of Tcp.Segment.frame

type xdp_hook = { xdp_run : Tcp.Segment.frame -> int * xdp_action }
(** [xdp_run frame] returns (FPC cycles consumed, action). *)

val set_xdp_ingress : t -> xdp_hook option -> unit

val traces : t -> Sim.Trace.t
(** The 48-tracepoint registry (groups: nbi, preproc, gro, protocol,
    postproc, dma, ctx, sch). Enabling points adds per-segment cycles
    to the owning stage. *)

type direction = Dir_rx | Dir_tx

val set_capture : t -> (direction -> Tcp.Segment.frame -> unit) option -> unit
(** tcpdump-style capture tap on the NBI (charges capture cycles per
    packet on the service island). *)

(** {1 Statistics} *)

type stats = {
  rx_segments : int;
  tx_segments : int;
  tx_acks : int;
  rx_to_control : int;
  rx_dropped : int;
  rx_dropped_csum : int;
      (** Frames whose TCP checksum failed verification, dropped at
          RX pre-processing (they never reach GRO or the protocol
          stage). *)
  fast_retx : int;
  gro_reordered : int;
  egress_reordered : int;
  dma_bytes : int;
  rx_completed : int;
      (** RX segments whose datapath work (through the DMA stage)
          finished — the completion counter open-loop harnesses poll
          against the number of injected segments. *)
}

val stats : t -> stats

(** {1 FlexScale (sharded flow-group pipelines)} *)

val shards : t -> int
(** Number of shard groups ([Config.scale]; 1 when scale is off). *)

val cross_shard_accesses : t -> int
(** Steering self-check trips: protocol-stage accesses whose effective
    flow group differed from the one pinned at installation. Zero on a
    healthy node — nonzero means shard disjointness is broken (see
    [sb_mis_steer]). *)

val emem_bytes_per_flow : t -> int
(** Peak resident connection-state bytes per peak resident flow from
    the EMEM pressure model (the "scale" bench-gate footprint number);
    0 when scale is off. *)

val emem_resident_flows : t -> int
(** Currently resident flows in the EMEM pressure model; 0 when scale
    is off. *)

val pinned_evictions : t -> int
(** Evictions that were forced to take a pinned (Established) flow's
    hot state, summed over the per-group CAMs and per-shard EMEM
    caches. Zero unless every slot of some cache is pinned — the
    regression gate for "established state is never dropped". *)

val fpc_busy : t -> (string * Sim.Time.t) list
(** Busy time per FPC, for utilisation reporting. *)

val fpc_pools : t -> (string * int * Nfp.Fpc.t array) list
(** FPC pools as [(pool, island, fpcs)]: per-flow-group pools
    (preproc, protocol, postproc, xdp) carry their island index;
    service-island pools (dma, ctx, sch, gro) carry [-1]. Drives the
    {!Flexscope} utilization sampler. *)

val lp_plan : t -> (string * int * Graph_ir.lp) list
(** The LP partition plan for this node, consistent with
    {!fpc_pools}: [(pool, island, lp)] where per-flow-group pools map
    to [Graph_ir.Lp_island island] and service pools (island [-1]) to
    [Graph_ir.Lp_service]. The host model is not an FPC pool;
    partitioners place it on [Graph_ir.Lp_host] themselves. *)

val atx_rings : t -> Meta.hc_desc Nfp.Ring.t array
(** The per-context-queue ATX descriptor rings (queue-depth series in
    the profiler). *)

val cache_stats : t -> (string * int * int) list
(** (cache, hits, misses) for the connection-state hierarchy: the
    pre-processor's lookup cache, each protocol island's CAM and CLS
    caches, and the EMEM SRAM cache — the levers behind the
    connection-scalability behaviour (Figure 14). *)

(** {1 Internals exposed for the control plane and libTOE} *)

val wake_tx : t -> conn:int -> unit
(** Nudge the flow scheduler (used by the control plane after
    installing a connection with pending data). *)
