open Bpf_insn

type program = { insns : Bpf_insn.t array }

let instructions p = p.insns

(* Segmented VM address space. *)
let ctx_base = 0x1000_0000
let pkt_base = 0x2000_0000
let stack_base = 0x3000_0000
let stack_size = 512
let map_base = 0x4000_0000
let map_stride = 0x0100_0000

let known_helpers =
  [
    helper_map_lookup;
    helper_map_update;
    helper_map_delete;
    helper_ktime;
    helper_adjust_head;
    helper_csum_fixup;
  ]

(* Syntactic pre-pass: the original per-instruction scan. Cheap, and
   kept as a fast filter in front of the abstract-interpretation
   verifier; [load_unverified] uses only this (for tests of the VM's
   dynamic guards). *)
let validate_syntactic ?(max_insns = 4096) insns =
  let n = Array.length insns in
  if n = 0 then Error "empty program"
  else if n > max_insns then Error "program too long"
  else begin
    let has_exit = Array.exists (fun i -> i = Exit) insns in
    if not has_exit then Error "no exit instruction"
    else begin
      let err = ref None in
      let reg_ok r = r >= 0 && r <= 10 in
      let src_ok = function Reg r -> reg_ok r | Imm _ -> true in
      let jump_ok i off =
        let t = i + 1 + off in
        t >= 0 && t < n
      in
      (* An instruction that can fall through must have an in-range
         fallthrough edge. Only Exit and Ja never fall through: a
         conditional jump's not-taken edge is i+1 like any other. *)
      let falls_through = function Exit | Ja _ -> false | _ -> true in
      Array.iteri
        (fun i insn ->
          if !err = None then
            let bad msg = err := Some (Printf.sprintf "insn %d: %s" i msg) in
            (match insn with
            | Alu64 (_, d, s) | Alu32 (_, d, s) ->
                if not (reg_ok d && src_ok s) then bad "bad register"
                else if d = 10 then bad "write to r10"
            | Endian_be (d, bits) ->
                if not (reg_ok d) then bad "bad register"
                else if d = 10 then bad "write to r10"
                else if bits <> 16 && bits <> 32 && bits <> 64 then
                  bad "bad endian width"
            | Ld_imm64 (d, _) ->
                if not (reg_ok d) then bad "bad register"
                else if d = 10 then bad "write to r10"
            | Ldx (_, d, s, _) ->
                if not (reg_ok d && reg_ok s) then bad "bad register"
                else if d = 10 then bad "write to r10"
            | St_imm (_, d, _, _) -> if not (reg_ok d) then bad "bad register"
            | Stx (_, d, _, s) ->
                if not (reg_ok d && reg_ok s) then bad "bad register"
            | Ja off -> if not (jump_ok i off) then bad "jump out of bounds"
            | Jmp (_, d, s, off) ->
                if not (reg_ok d && src_ok s) then bad "bad register"
                else if not (jump_ok i off) then bad "jump out of bounds"
            | Call id ->
                if not (List.mem id known_helpers) then bad "unknown helper"
            | Exit -> ());
            if !err = None && i = n - 1 && falls_through insn then
              bad "control falls through off the end of the program")
        insns;
      match !err with Some e -> Error e | None -> Ok ()
    end
  end

let verify_full ?max_insns insns =
  match validate_syntactic ?max_insns insns with
  | Error e -> Error e
  | Ok () -> (
      match Verifier.verify ?max_insns insns with
      | Ok _ -> Ok ()
      | Error v -> Error (Verifier.violation_to_string v))

let load ?max_insns insns =
  match verify_full ?max_insns insns with
  | Ok () -> Ok { insns = Array.copy insns }
  | Error e -> Error e

let load_unverified ?max_insns insns =
  match validate_syntactic ?max_insns insns with
  | Ok () -> Ok { insns = Array.copy insns }
  | Error e -> Error e

type outcome = { ret : int; insns_executed : int; packet : Bytes.t }

exception Fault of string

type memory = {
  maps : Bpf_map.t array;
  mutable pkt : Bytes.t;
  mutable head : int;  (* packet view starts here *)
  stack : Bytes.t;
  ctx : Bytes.t;  (* 16 bytes: data, data_end as u64 LE *)
}

let u64_to_bytes_le b off v =
  for i = 0 to 7 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let refresh_ctx m =
  u64_to_bytes_le m.ctx 0 (Int64.of_int (pkt_base + m.head));
  u64_to_bytes_le m.ctx 8 (Int64.of_int (pkt_base + Bytes.length m.pkt))

(* Resolve an address to (backing bytes, offset), checking [width]. *)
let resolve m addr width =
  let a = Int64.to_int addr in
  if a >= ctx_base && a + width <= ctx_base + 16 then (m.ctx, a - ctx_base)
  else if a >= pkt_base + m.head && a + width <= pkt_base + Bytes.length m.pkt
  then (m.pkt, a - pkt_base)
  else if a >= stack_base && a + width <= stack_base + stack_size then
    (m.stack, a - stack_base)
  else if a >= map_base then begin
    let map_id = (a - map_base) / map_stride in
    let off = (a - map_base) mod map_stride in
    if map_id < Array.length m.maps then begin
      let arena = Bpf_map.arena m.maps.(map_id) in
      if off + width <= Bytes.length arena then (arena, off)
      else raise (Fault "map access out of bounds")
    end
    else raise (Fault "bad map pointer")
  end
  else raise (Fault (Printf.sprintf "bad memory access at 0x%x" a))

let width_of = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let load_mem m addr size =
  let width = width_of size in
  let b, off = resolve m addr width in
  let v = ref 0L in
  for i = width - 1 downto 0 do
    v :=
      Int64.logor
        (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get b (off + i))))
  done;
  !v

let store_mem m addr size v =
  let width = width_of size in
  let b, off = resolve m addr width in
  for i = 0 to width - 1 do
    Bytes.set b (off + i)
      (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
  done

let read_key m addr size =
  let b, off = resolve m addr size in
  Bytes.sub b off size

let be_swap v bits =
  (* Values are stored little-endian in memory reads; to-BE reverses
     byte order over the given width. *)
  let bytes = bits / 8 in
  let out = ref 0L in
  for i = 0 to bytes - 1 do
    let byte =
      Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL
    in
    out := Int64.logor !out (Int64.shift_left byte (8 * (bytes - 1 - i)))
  done;
  !out

let budget = 65536

let run p ~maps ~now_ns ~packet =
  let m =
    {
      maps;
      pkt = Bytes.copy packet;
      head = 0;
      stack = Bytes.make stack_size '\000';
      ctx = Bytes.make 16 '\000';
    }
  in
  refresh_ctx m;
  let regs = Array.make 11 0L in
  regs.(1) <- Int64.of_int ctx_base;
  regs.(10) <- Int64.of_int (stack_base + stack_size);
  let count = ref 0 in
  let final_pkt () =
    Bytes.sub m.pkt m.head (Bytes.length m.pkt - m.head)
  in
  let src_val = function Reg r -> regs.(r) | Imm v -> Int64.of_int v in
  let alu64 op dst s =
    let a = regs.(dst) and b = src_val s in
    let open Int64 in
    regs.(dst) <-
      (match op with
      | Add -> add a b
      | Sub -> sub a b
      | Mul -> mul a b
      | Div -> if b = 0L then 0L else unsigned_div a b
      | Or -> logor a b
      | And -> logand a b
      | Lsh -> shift_left a (to_int (logand b 63L))
      | Rsh -> shift_right_logical a (to_int (logand b 63L))
      | Neg -> neg a
      | Mod -> if b = 0L then a else unsigned_rem a b
      | Xor -> logxor a b
      | Mov -> b
      | Arsh -> shift_right a (to_int (logand b 63L)))
  in
  let mask32 v = Int64.logand v 0xFFFFFFFFL in
  let alu32 op dst s =
    let a = mask32 regs.(dst) and b = mask32 (src_val s) in
    let open Int64 in
    let r =
      match op with
      | Add -> add a b
      | Sub -> sub a b
      | Mul -> mul a b
      | Div -> if b = 0L then 0L else unsigned_div a b
      | Or -> logor a b
      | And -> logand a b
      | Lsh -> shift_left a (to_int (logand b 31L))
      | Rsh -> shift_right_logical a (to_int (logand b 31L))
      | Neg -> neg a
      | Mod -> if b = 0L then a else unsigned_rem a b
      | Xor -> logxor a b
      | Mov -> b
      | Arsh ->
          (* sign-extend the 32-bit value before shifting *)
          let sa = shift_right (shift_left a 32) 32 in
          shift_right sa (to_int (logand b 31L))
    in
    regs.(dst) <- mask32 r
  in
  let jump_taken cond dst s =
    let a = regs.(dst) and b = src_val s in
    let u = Int64.unsigned_compare a b in
    let sg = Int64.compare a b in
    match cond with
    | Jeq -> a = b
    | Jne -> a <> b
    | Jgt -> u > 0
    | Jge -> u >= 0
    | Jlt -> u < 0
    | Jle -> u <= 0
    | Jset -> Int64.logand a b <> 0L
    | Jsgt -> sg > 0
    | Jsge -> sg >= 0
    | Jslt -> sg < 0
    | Jsle -> sg <= 0
  in
  let helper id =
    if id = helper_ktime then regs.(0) <- now_ns
    else if id = helper_adjust_head then begin
      let delta = Int64.to_int regs.(2) in
      let new_head = m.head + delta in
      if new_head < 0 || new_head > Bytes.length m.pkt then
        regs.(0) <- Int64.minus_one
      else begin
        m.head <- new_head;
        refresh_ctx m;
        regs.(0) <- 0L
      end
    end
    else if id = helper_csum_fixup then begin
      let view = final_pkt () in
      (try
         Tcp.Wire.fixup_tcp_checksum view;
         Bytes.blit view 0 m.pkt m.head (Bytes.length view);
         regs.(0) <- 0L
       with _ -> regs.(0) <- Int64.minus_one)
    end
    else begin
      (* Map helpers. *)
      let map_id = Int64.to_int regs.(1) in
      if map_id < 0 || map_id >= Array.length maps then
        raise (Fault "bad map id");
      let map = maps.(map_id) in
      if id = helper_map_lookup then begin
        let key = read_key m regs.(2) (Bpf_map.key_size map) in
        match Bpf_map.lookup_slot map ~key with
        | Some slot ->
            regs.(0) <-
              Int64.of_int (map_base + (map_id * map_stride) + slot)
        | None -> regs.(0) <- 0L
      end
      else if id = helper_map_update then begin
        let key = read_key m regs.(2) (Bpf_map.key_size map) in
        let value = read_key m regs.(3) (Bpf_map.value_size map) in
        match Bpf_map.update map ~key ~value with
        | Ok () -> regs.(0) <- 0L
        | Error _ -> regs.(0) <- Int64.minus_one
      end
      else if id = helper_map_delete then begin
        let key = read_key m regs.(2) (Bpf_map.key_size map) in
        regs.(0) <- (if Bpf_map.delete map ~key then 0L else Int64.minus_one)
      end
      else raise (Fault "unknown helper")
    end
  in
  let rec exec pc =
    if !count >= budget then raise (Fault "instruction budget exceeded");
    incr count;
    match p.insns.(pc) with
    | Exit -> Int64.to_int (mask32 regs.(0))
    | Alu64 (op, d, s) ->
        alu64 op d s;
        exec (pc + 1)
    | Alu32 (op, d, s) ->
        alu32 op d s;
        exec (pc + 1)
    | Endian_be (d, bits) ->
        regs.(d) <- be_swap regs.(d) bits;
        exec (pc + 1)
    | Ld_imm64 (d, v) ->
        regs.(d) <- v;
        exec (pc + 1)
    | Ldx (size, d, s, off) ->
        regs.(d) <- load_mem m (Int64.add regs.(s) (Int64.of_int off)) size;
        exec (pc + 1)
    | St_imm (size, d, off, imm) ->
        store_mem m
          (Int64.add regs.(d) (Int64.of_int off))
          size (Int64.of_int imm);
        exec (pc + 1)
    | Stx (size, d, off, s) ->
        store_mem m (Int64.add regs.(d) (Int64.of_int off)) size regs.(s);
        exec (pc + 1)
    | Ja off -> exec (pc + 1 + off)
    | Jmp (cond, d, s, off) ->
        if jump_taken cond d s then exec (pc + 1 + off) else exec (pc + 1)
    | Call id ->
        helper id;
        exec (pc + 1)
  in
  match exec 0 with
  | ret -> { ret; insns_executed = !count; packet = final_pkt () }
  | exception Fault _ ->
      { ret = xdp_aborted; insns_executed = !count; packet = final_pkt () }
