(** The eBPF virtual machine.

    Interprets {!Bpf_insn} programs against a packet, a 512-byte
    stack, and a set of {!Bpf_map}s, with the XDP calling convention:
    r1 points to a context holding [data]/[data_end] pointers, and r0
    at [Exit] is the XDP action. Memory is a segmented address space
    (context, packet, stack, map value arenas); every access is
    bounds-checked and a bad access aborts the program (XDP_ABORTED),
    like the hardware offload would.

    The instruction count of each run is reported so the data path can
    charge FPC cycles (eBPF compiles roughly 1:1 to NFP instructions). *)

type program

val load : ?max_insns:int -> Bpf_insn.t array -> (program, string) result
(** Verify and load: the legacy syntactic scan (register indices,
    jump targets, fallthrough, known helpers, [Exit] present), then
    {!Verifier.verify} — abstract interpretation proving initialized
    reads, in-bounds guarded packet access, helper-argument types,
    and termination. Errors are {!Verifier.violation_to_string}
    renderings; callers that want the structured
    {!Verifier.violation} (re-exported as
    {!Flextoe.verifier_violation}) should call the verifier
    directly. *)

val load_unverified :
  ?max_insns:int -> Bpf_insn.t array -> (program, string) result
(** Load after only the weak syntactic pre-pass, skipping the abstract
    interpreter. Exists so tests and benchmarks can exercise the VM's
    {e dynamic} defenses (runtime bounds faults, the instruction
    budget) with programs the static verifier would refuse. Data-path
    attach points never use this. *)

val instructions : program -> Bpf_insn.t array

type outcome = {
  ret : int;  (** r0 at exit (an XDP action code), or
                  {!Bpf_insn.xdp_aborted} on fault. *)
  insns_executed : int;
  packet : Bytes.t;  (** Final packet view (head adjustments and
                          stores applied). *)
}

val run :
  program ->
  maps:Bpf_map.t array ->
  now_ns:int64 ->
  packet:Bytes.t ->
  outcome
(** Execute over (a copy of) [packet]. Runaway programs are cut off
    at 65536 instructions and abort. *)
