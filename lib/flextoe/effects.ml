(** Stage-effect contracts for the parallel datapath (FlexSan layer 1).

    FlexTOE's one-touch parallelism claim (§3.2) is that every stage
    except the serialized protocol stage touches disjoint per-flow
    state, so replicating stages and pipelining segments is safe
    without locks. This module makes that argument a checkable
    artifact: each datapath stage declares the memory regions it may
    read and write — keyed by logical object and annotated with the
    {!Nfp.Memory.level} the object lives at — plus the serialization
    domain its executions are ordered under. {!check} then verifies
    the contracts pairwise: two stages that may run concurrently for
    the same flow must have disjoint write footprints and no
    write/read overlap, unless the region is accessed only with
    hardware atomics or is address-partitioned (in which case FlexSan
    layer 2, {!San}, checks the actual byte ranges at runtime).

    [Datapath.create] runs {!check} over its built-in stage set and
    raises {!Contract_violation} on any conflict, so an unsound stage
    graph fails fast with a diagnostic naming the conflicting
    (stage, region) pair. *)

(** Logical objects of the datapath memory map. *)
type obj =
  | Conn_pre  (** Steering partition of connection state (read-only
                  on the datapath after CP install). *)
  | Conn_proto  (** Protocol partition: seq/ack state machine. *)
  | Reasm  (** Out-of-order reassembly metadata. *)
  | Conn_post  (** Post partition: stats counters, rate, buffers ids. *)
  | Rx_payload  (** Host receive payload buffer (per flow). *)
  | Tx_payload  (** Host transmit payload buffer (per flow). *)
  | Desc_ring  (** Context-queue descriptor rings. *)
  | Conn_db  (** Flow lookup table. *)
  | Sched_state  (** Scheduler wheel / round-robin state. *)
  | Global_stats  (** Global per-datapath counters. *)

let all_objs =
  [ Conn_pre; Conn_proto; Reasm; Conn_post; Rx_payload; Tx_payload;
    Desc_ring; Conn_db; Sched_state; Global_stats ]

let obj_name = function
  | Conn_pre -> "conn.pre"
  | Conn_proto -> "conn.proto"
  | Reasm -> "conn.reasm"
  | Conn_post -> "conn.post"
  | Rx_payload -> "rx-payload"
  | Tx_payload -> "tx-payload"
  | Desc_ring -> "desc-ring"
  | Conn_db -> "conn-db"
  | Sched_state -> "sched"
  | Global_stats -> "stats"

let obj_tag = function
  | Conn_pre -> 0
  | Conn_proto -> 1
  | Reasm -> 2
  | Conn_post -> 3
  | Rx_payload -> 4
  | Tx_payload -> 5
  | Desc_ring -> 6
  | Conn_db -> 7
  | Sched_state -> 8
  | Global_stats -> 9

(** A region: where the object lives and which concurrency discipline
    its accesses follow. [r_atomic] regions are only touched with
    hardware atomics (CLS/EMEM atomic engines, CAM-assisted tables),
    so concurrent access is safe by construction. [r_disjoint]
    regions are address-partitioned: concurrent accesses are claimed
    to target disjoint byte ranges — a claim the static layer cannot
    discharge, so layer 2 checks the actual ranges dynamically. *)
type region = {
  r_obj : obj;
  r_level : Nfp.Memory.level;
  r_atomic : bool;
  r_disjoint : bool;
}

(* The datapath memory map (Table 5 / §4.1): pre partition cached in
   CLS, proto in the local-memory..EMEM hierarchy, post in CLS,
   payload buffers in host memory behind PCIe (modelled as EMEM
   distance), rings in CTM, lookup and stats on atomic engines. *)
let region obj =
  let v level ?(atomic = false) ?(disjoint = false) () =
    { r_obj = obj; r_level = level; r_atomic = atomic;
      r_disjoint = disjoint }
  in
  match obj with
  | Conn_pre -> v Nfp.Memory.Cls ()
  | Conn_proto -> v Nfp.Memory.Local ()
  | Reasm -> v Nfp.Memory.Emem ()
  | Conn_post -> v Nfp.Memory.Cls ~atomic:true ()
  | Rx_payload -> v Nfp.Memory.Emem ~disjoint:true ()
  | Tx_payload -> v Nfp.Memory.Emem ~disjoint:true ()
  | Desc_ring -> v Nfp.Memory.Ctm ~atomic:true ()
  | Conn_db -> v Nfp.Memory.Imem ~atomic:true ()
  | Sched_state -> v Nfp.Memory.Ctm ~atomic:true ()
  | Global_stats -> v Nfp.Memory.Cls ~atomic:true ()

(** Serialization domain: which executions of a stage (and of other
    stages sharing the domain) are mutually ordered.

    - [Serial_none]: replicated, no ordering — any two executions may
      run concurrently, including two for the same flow.
    - [Serial_conn]: per-connection mutual exclusion (the protocol
      stage's seq/ack critical section).
    - [Serial_flow_group name]: executions for the same flow group
      are ordered by the named sequencer.
    - [Serial_queue name]: executions are ordered by the named FIFO
      queue (DMA completion queues, context queues). *)
type domain =
  | Serial_none
  | Serial_conn
  | Serial_flow_group of string
  | Serial_queue of string

let domain_name = function
  | Serial_none -> "none"
  | Serial_conn -> "per-conn"
  | Serial_flow_group s -> "flow-group:" ^ s
  | Serial_queue s -> "queue:" ^ s

type contract = {
  c_stage : string;
  c_reads : obj list;
  c_writes : obj list;
  c_domain : domain;
}

type kind = Read | Write

let kind_name = function Read -> "R" | Write -> "W"

(** A static conflict: two (stage, region) accesses that may run
    concurrently for the same flow and overlap unsafely. *)
type conflict = {
  k_stage1 : string;
  k_kind1 : kind;
  k_stage2 : string;
  k_kind2 : kind;
  k_obj : obj;
}

let conflict_to_string c =
  let r = region c.k_obj in
  Format.asprintf "%s:%s(%s) conflicts with %s:%s(%s) at %a"
    c.k_stage1 (kind_name c.k_kind1) (obj_name c.k_obj) c.k_stage2
    (kind_name c.k_kind2) (obj_name c.k_obj) Nfp.Memory.pp_level r.r_level

exception Contract_violation of conflict list

let () =
  Printexc.register_printer (function
    | Contract_violation cs ->
        Some
          ("Effects.Contract_violation: "
          ^ String.concat "; " (List.map conflict_to_string cs))
    | _ -> None)

(* Two stages are mutually serialized for a given flow when their
   executions share an ordering mechanism: the same sequencer, the
   same FIFO queue, or the per-connection lock. *)
let serialized_together s1 s2 =
  match (s1.c_domain, s2.c_domain) with
  | Serial_conn, Serial_conn -> true
  | Serial_flow_group a, Serial_flow_group b -> a = b
  | Serial_queue a, Serial_queue b -> a = b
  | _ -> false

let mem o l = List.exists (fun x -> obj_tag x = obj_tag o) l

(* One direction: writes of [s1] against reads+writes of [s2]. *)
let conflicts_of_pair s1 s2 =
  List.filter_map
    (fun o ->
      let r = region o in
      if r.r_atomic || r.r_disjoint then None
      else if mem o s2.c_writes then
        Some
          { k_stage1 = s1.c_stage; k_kind1 = Write; k_stage2 = s2.c_stage;
            k_kind2 = Write; k_obj = o }
      else if mem o s2.c_reads then
        Some
          { k_stage1 = s1.c_stage; k_kind1 = Write; k_stage2 = s2.c_stage;
            k_kind2 = Read; k_obj = o }
      else None)
    s1.c_writes

(** Check a stage set for contract compatibility. Every pair of
    stages (including a replicated stage against itself) that may run
    concurrently for the same flow must have disjoint write
    footprints and no write/read overlap, modulo atomic and
    address-partitioned regions. *)
let check contracts =
  let rec pairs = function
    | [] -> []
    | s :: rest -> (s, s) :: List.map (fun s' -> (s, s')) rest @ pairs rest
  in
  let conflicts =
    List.concat_map
      (fun (s1, s2) ->
        if serialized_together s1 s2 then []
        else if s1.c_stage = s2.c_stage then
          (* Self-pair: a replicated stage races its own replicas. *)
          conflicts_of_pair s1 s2
        else conflicts_of_pair s1 s2 @ conflicts_of_pair s2 s1)
      (pairs contracts)
  in
  match conflicts with [] -> Ok () | cs -> Error cs

let pp_contract fmt c =
  let names l = String.concat "," (List.map obj_name l) in
  Format.fprintf fmt "%-10s reads:[%s] writes:[%s] domain:%s" c.c_stage
    (names c.c_reads) (names c.c_writes) (domain_name c.c_domain)
