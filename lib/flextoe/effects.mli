(** Stage-effect contracts for the parallel datapath (FlexSan layer 1).

    FlexTOE's one-touch parallelism claim (§3.2) is that every stage
    except the serialized protocol stage touches disjoint per-flow
    state, so replicating stages and pipelining segments is safe
    without locks. This module makes that argument a checkable
    artifact: each datapath stage declares the memory regions it may
    read and write — keyed by logical object and annotated with the
    {!Nfp.Memory.level} the object lives at — plus the serialization
    domain its executions are ordered under. {!check} verifies the
    contracts pairwise; {!Prove} generalizes the check to the whole
    stage graph; {!Infer} checks the declarations against the stage
    sources; {!San} (layer 2) checks the actual accesses at
    runtime. *)

(** Logical objects of the datapath memory map. *)
type obj =
  | Conn_pre  (** Steering partition of connection state (read-only
                  on the datapath after CP install). *)
  | Conn_proto  (** Protocol partition: seq/ack state machine. *)
  | Reasm  (** Out-of-order reassembly metadata. *)
  | Conn_post  (** Post partition: stats counters, rate, buffers ids. *)
  | Rx_payload  (** Host receive payload buffer (per flow). *)
  | Tx_payload  (** Host transmit payload buffer (per flow). *)
  | Desc_ring  (** Context-queue descriptor rings. *)
  | Conn_db  (** Flow lookup table. *)
  | Sched_state  (** Scheduler wheel / round-robin state. *)
  | Global_stats  (** Global per-datapath counters. *)

val all_objs : obj list
val obj_name : obj -> string

val obj_tag : obj -> int
(** Stable small-int identity (indexing, set membership). *)

(** A region: where the object lives and which concurrency discipline
    its accesses follow. [r_atomic] regions are only touched with
    hardware atomics (CLS/EMEM atomic engines, CAM-assisted tables),
    so concurrent access is safe by construction. [r_disjoint]
    regions are address-partitioned: concurrent accesses are claimed
    to target disjoint byte ranges — a claim the static layer cannot
    discharge, so layer 2 checks the actual ranges dynamically. *)
type region = {
  r_obj : obj;
  r_level : Nfp.Memory.level;
  r_atomic : bool;
  r_disjoint : bool;
}

val region : obj -> region
(** The datapath memory map (Table 5 / §4.1). *)

(** Serialization domain: which executions of a stage (and of other
    stages sharing the domain) are mutually ordered.

    - [Serial_none]: replicated, no ordering — any two executions may
      run concurrently, including two for the same flow.
    - [Serial_conn]: per-connection mutual exclusion (the protocol
      stage's seq/ack critical section).
    - [Serial_flow_group name]: executions for the same flow group
      are ordered by the named sequencer.
    - [Serial_queue name]: executions are ordered by the named FIFO
      queue (DMA completion queues, context queues). *)
type domain =
  | Serial_none
  | Serial_conn
  | Serial_flow_group of string
  | Serial_queue of string

val domain_name : domain -> string

type contract = {
  c_stage : string;
  c_reads : obj list;
  c_writes : obj list;
  c_domain : domain;
}

type kind = Read | Write

val kind_name : kind -> string

(** A static conflict: two (stage, region) accesses that may run
    concurrently for the same flow and overlap unsafely. *)
type conflict = {
  k_stage1 : string;
  k_kind1 : kind;
  k_stage2 : string;
  k_kind2 : kind;
  k_obj : obj;
}

val conflict_to_string : conflict -> string

exception Contract_violation of conflict list
(** Raised by [Datapath.create] when its stage set fails {!check}. *)

val serialized_together : contract -> contract -> bool
(** Do two stages share an ordering mechanism (same sequencer, same
    FIFO queue, or the per-connection lock)? *)

val mem : obj -> obj list -> bool

val conflicts_of_pair : contract -> contract -> conflict list
(** One direction: writes of the first against reads+writes of the
    second, modulo atomic and address-partitioned regions. *)

val check : contract list -> (unit, conflict list) result
(** Check a stage set for contract compatibility. Every pair of
    stages (including a replicated stage against itself) that may run
    concurrently for the same flow must have disjoint write
    footprints and no write/read overlap, modulo atomic and
    address-partitioned regions. *)

val pp_contract : Format.formatter -> contract -> unit
