open Bpf_insn

let classes = 8

(* Map 0: dst port (2B, network order) -> class id (u32 LE).
   Map 1: array of per-class u64 packet counters. *)

let program () =
  assemble
    [
      I (Ldx (W64, 6, 1, 0));
      I (Ldx (W64, 7, 1, 8));
      I (Alu64 (Mov, 2, Reg 6));
      I (Alu64 (Add, 2, Imm 38));
      Jl (Jgt, 2, Reg 7, "pass");  (* too short to classify *)
      (* key = raw dst-port bytes at offset 36 *)
      I (Ldx (W16, 3, 6, Tcp.Wire.off_tcp_dport));
      I (Stx (W16, 10, -4, 3));
      I (Alu64 (Mov, 1, Imm 0));
      I (Alu64 (Mov, 2, Reg 10));
      I (Alu64 (Add, 2, Imm (-4)));
      I (Call helper_map_lookup);
      (* r8 = class id (0 if unclassified) *)
      I (Alu64 (Mov, 8, Imm 0));
      Jl (Jeq, 0, Imm 0, "count");
      I (Ldx (W32, 8, 0, 0));
      L "count";
      (* counter = lookup(map 1, class); *counter += 1, in place *)
      I (Stx (W32, 10, -8, 8));
      I (Alu64 (Mov, 1, Imm 1));
      I (Alu64 (Mov, 2, Reg 10));
      I (Alu64 (Add, 2, Imm (-8)));
      I (Call helper_map_lookup);
      Jl (Jeq, 0, Imm 0, "pass");
      I (Ldx (W64, 3, 0, 0));
      I (Alu64 (Add, 3, Imm 1));
      I (Stx (W64, 0, 0, 3));
      L "pass";
      I (Alu64 (Mov, 0, Imm xdp_pass));
      I Exit;
    ]

type t = { xdp : Xdp.t; port_map : Bpf_map.t; counters : Bpf_map.t }

let create engine =
  let port_map =
    Bpf_map.create Bpf_map.Hash_map ~key_size:2 ~value_size:4
      ~max_entries:256
  in
  let counters =
    Bpf_map.create Bpf_map.Array_map ~key_size:4 ~value_size:8
      ~max_entries:classes
  in
  let insns = program () in
  (match
     Verifier.verify ~maps:(Xdp.map_specs [| port_map; counters |]) insns
   with
  | Ok _ -> ()
  | Error v ->
      invalid_arg ("Ext_classifier: " ^ Verifier.violation_to_string v));
  match Ebpf.load_unverified insns with
  | Ok p ->
      { xdp = Xdp.create engine ~program:p ~maps:[| port_map; counters |];
        port_map; counters }
  | Error e -> invalid_arg ("Ext_classifier: " ^ e)

let xdp t = t.xdp
let install t dp = Xdp.install t.xdp dp

let port_key port =
  let b = Bytes.create 2 in
  Bytes.set b 0 (Char.chr ((port lsr 8) land 0xFF));
  Bytes.set b 1 (Char.chr (port land 0xFF));
  b

let u32_le v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (v land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xFF));
  b

let classify t ~port ~cls =
  if cls < 0 || cls >= classes then
    invalid_arg "Ext_classifier.classify: class out of range";
  match Bpf_map.update t.port_map ~key:(port_key port) ~value:(u32_le cls)
  with
  | Ok () -> ()
  | Error e -> invalid_arg ("Ext_classifier.classify: " ^ e)

let declassify t ~port = ignore (Bpf_map.delete t.port_map ~key:(port_key port))

let class_of_port t ~port =
  match Bpf_map.lookup t.port_map ~key:(port_key port) with
  | Some v -> Char.code (Bytes.get v 0)
  | None -> 0

let count t ~cls =
  match Bpf_map.lookup t.counters ~key:(u32_le cls) with
  | Some v ->
      let b i = Char.code (Bytes.get v i) in
      b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)
      lor (b 4 lsl 32) lor (b 5 lsl 40)
  | None -> 0
