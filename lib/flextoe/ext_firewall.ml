(** Firewall XDP module (§3.3's worked example).

    A BPF hash map holds blacklisted source IPs; the eBPF program
    looks up each ingress frame's source address and drops on a hit.
    The control plane adds and removes entries dynamically through
    {!block}/{!unblock} — the map is shared state between the host and
    the data path, exactly as in the paper. *)

open Bpf_insn

type t = { xdp : Xdp.t; map : Bpf_map.t }

(* Frame offsets (untagged Ethernet/IPv4/TCP). *)
let off_ethertype = Tcp.Wire.off_ethertype
let off_ip_src = Tcp.Wire.off_ip_src

let program () =
  (* r6 = data, r7 = data_end. Malformed/short -> PASS (let the
     pipeline's validator deal with it); IPv4 with blacklisted source
     -> DROP. *)
  assemble
    [
      I (Ldx (W64, 6, 1, 0));
      I (Ldx (W64, 7, 1, 8));
      (* bounds: need the IPv4 header *)
      I (Alu64 (Mov, 2, Reg 6));
      I (Alu64 (Add, 2, Imm 34));
      Jl (Jgt, 2, Reg 7, "pass");
      (* IPv4? ethertype 0x0800 big-endian = 0x0008 as an LE u16 load *)
      I (Ldx (W16, 3, 6, off_ethertype));
      Jl (Jne, 3, Imm 0x0008, "pass");
      (* key = raw 4 source-address bytes *)
      I (Ldx (W32, 3, 6, off_ip_src));
      I (Alu64 (Mov, 4, Reg 10));
      I (Alu64 (Add, 4, Imm (-8)));
      I (Stx (W32, 4, 0, 3));
      I (Alu64 (Mov, 1, Imm 0));
      I (Alu64 (Mov, 2, Reg 4));
      I (Call helper_map_lookup);
      Jl (Jne, 0, Imm 0, "drop");
      L "pass";
      I (Alu64 (Mov, 0, Imm xdp_pass));
      I Exit;
      L "drop";
      I (Alu64 (Mov, 0, Imm xdp_drop));
      I Exit;
    ]

let create engine =
  let map =
    Bpf_map.create Bpf_map.Hash_map ~key_size:4 ~value_size:4
      ~max_entries:1024
  in
  let insns = program () in
  (match Verifier.verify ~maps:(Xdp.map_specs [| map |]) insns with
  | Ok _ -> ()
  | Error v ->
      invalid_arg ("Ext_firewall: " ^ Verifier.violation_to_string v));
  let prog =
    match Ebpf.load_unverified insns with
    | Ok p -> p
    | Error e -> invalid_arg ("Ext_firewall: " ^ e)
  in
  { xdp = Xdp.create engine ~program:prog ~maps:[| map |]; map }

let xdp t = t.xdp
let install t dp = Xdp.install t.xdp dp

let ip_key ip =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((ip lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((ip lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((ip lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (ip land 0xFF));
  b

let block t ~ip =
  match Bpf_map.update t.map ~key:(ip_key ip) ~value:(Bytes.make 4 '\001') with
  | Ok () -> ()
  | Error e -> invalid_arg ("Ext_firewall.block: " ^ e)

let unblock t ~ip = ignore (Bpf_map.delete t.map ~key:(ip_key ip))
let blocked t = Bpf_map.length t.map
let dropped t = Xdp.dropped t.xdp
