type filter =
  | All
  | Host of int
  | Src_host of int
  | Dst_host of int
  | Port of int
  | Tcp_flag of [ `Syn | `Fin | `Rst | `Ack | `Psh ]
  | And of filter * filter
  | Or of filter * filter
  | Not of filter

let rec matches f (frame : Tcp.Segment.frame) =
  let seg = frame.Tcp.Segment.seg in
  match f with
  | All -> true
  | Host ip -> seg.Tcp.Segment.src_ip = ip || seg.Tcp.Segment.dst_ip = ip
  | Src_host ip -> seg.Tcp.Segment.src_ip = ip
  | Dst_host ip -> seg.Tcp.Segment.dst_ip = ip
  | Port p -> seg.Tcp.Segment.src_port = p || seg.Tcp.Segment.dst_port = p
  | Tcp_flag flag -> begin
      let fl = seg.Tcp.Segment.flags in
      match flag with
      | `Syn -> fl.Tcp.Segment.syn
      | `Fin -> fl.Tcp.Segment.fin
      | `Rst -> fl.Tcp.Segment.rst
      | `Ack -> fl.Tcp.Segment.ack
      | `Psh -> fl.Tcp.Segment.psh
    end
  | And (a, b) -> matches a frame && matches b frame
  | Or (a, b) -> matches a frame || matches b frame
  | Not a -> not (matches a frame)

type record = { ts : Sim.Time.t; orig_len : int; data : Bytes.t }

type t = {
  engine : Sim.Engine.t;
  snaplen : int;
  limit : int;
  filter : filter;
  records : record Queue.t;
  mutable seen : int;
  mutable captured : int;
}

let create engine ?(snaplen = 96) ?(limit = 65536) ?(filter = All) () =
  { engine; snaplen; limit; filter; records = Queue.create ();
    seen = 0; captured = 0 }

let tap t (_dir : Datapath.direction) frame =
  t.seen <- t.seen + 1;
  if matches t.filter frame then begin
    t.captured <- t.captured + 1;
    let bytes = Tcp.Wire.encode frame in
    let orig_len = Bytes.length bytes in
    let data =
      if orig_len > t.snaplen then Bytes.sub bytes 0 t.snaplen else bytes
    in
    Queue.push { ts = Sim.Engine.now t.engine; orig_len; data } t.records;
    if Queue.length t.records > t.limit then ignore (Queue.pop t.records)
  end

let attach t dp = Datapath.set_capture dp (Some (tap t))
let detach dp = Datapath.set_capture dp None
let captured t = t.captured
let seen t = t.seen

let put_u32_le b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let put_u16_le b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF))

let to_pcap t =
  let total =
    Queue.fold (fun n r -> n + 16 + Bytes.length r.data) 24 t.records
  in
  let out = Bytes.make total '\000' in
  (* Global header. *)
  put_u32_le out 0 0xa1b2c3d4;
  put_u16_le out 4 2;  (* major *)
  put_u16_le out 6 4;  (* minor *)
  put_u32_le out 16 t.snaplen;
  put_u32_le out 20 1;  (* LINKTYPE_ETHERNET *)
  let off = ref 24 in
  Queue.iter
    (fun r ->
      let usec_total = int_of_float (Sim.Time.to_us r.ts) in
      put_u32_le out !off (usec_total / 1_000_000);
      put_u32_le out (!off + 4) (usec_total mod 1_000_000);
      put_u32_le out (!off + 8) (Bytes.length r.data);
      put_u32_le out (!off + 12) r.orig_len;
      Bytes.blit r.data 0 out (!off + 16) (Bytes.length r.data);
      off := !off + 16 + Bytes.length r.data)
    t.records;
  out

let write_file t path =
  let oc = open_out_bin path in
  output_bytes oc (to_pcap t);
  close_out oc

(* --- Data-path filter programs ------------------------------------- *)

(* Compile a [filter] into an XDP program that counts matching frames
   in a BPF array map (map 0, one u64 slot) and always returns
   XDP_PASS: the in-line companion of the host-side tap, and a
   non-trivial generated-code workout for the verifier. Only
   well-formed IPv4/TCP frames (54 header bytes proven by the guard)
   are considered; everything the program emits must verify, so
   constant sub-filters are folded away first — they would otherwise
   generate statically unreachable blocks, which the verifier
   rejects. *)

type sfilter =
  | S_const of bool
  | S_src_host of int
  | S_dst_host of int
  | S_port of int
  | S_flag of int  (* mask in the TCP flags byte *)
  | S_and of sfilter * sfilter
  | S_or of sfilter * sfilter
  | S_negated of sfilter  (* negation pushed down onto an atom *)

let flag_mask = function
  | `Fin -> 0x01
  | `Syn -> 0x02
  | `Rst -> 0x04
  | `Psh -> 0x08
  | `Ack -> 0x10

(* Fold constants and push negation down to the atoms (an atom's
   negation just swaps its jump targets, handled at emit time via
   [neg] below). *)
let rec simplify f =
  match f with
  | All -> S_const true
  | Host ip -> S_or (S_src_host ip, S_dst_host ip)
  | Src_host ip -> S_src_host ip
  | Dst_host ip -> S_dst_host ip
  | Port p -> S_port p
  | Tcp_flag fl -> S_flag (flag_mask fl)
  | And (a, b) -> (
      match (simplify a, simplify b) with
      | S_const false, _ | _, S_const false -> S_const false
      | S_const true, x | x, S_const true -> x
      | x, y -> S_and (x, y))
  | Or (a, b) -> (
      match (simplify a, simplify b) with
      | S_const true, _ | _, S_const true -> S_const true
      | S_const false, x | x, S_const false -> x
      | x, y -> S_or (x, y))
  | Not a -> neg (simplify a)

(* De Morgan: negation sinks to the atoms, where it just swaps the
   emit targets. *)
and neg = function
  | S_const b -> S_const (not b)
  | S_and (a, b) -> S_or (neg a, neg b)
  | S_or (a, b) -> S_and (neg a, neg b)
  | S_negated atom -> atom
  | atom -> S_negated atom

let bswap32 v =
  ((v land 0xFF) lsl 24)
  lor ((v lsr 8) land 0xFF) lsl 16
  lor ((v lsr 16) land 0xFF) lsl 8
  lor ((v lsr 24) land 0xFF)

let bswap16 v = ((v land 0xFF) lsl 8) lor ((v lsr 8) land 0xFF)

let program_of_filter filter =
  let open Bpf_insn in
  let next = ref 0 in
  let fresh prefix =
    incr next;
    Printf.sprintf "%s%d" prefix !next
  in
  (* Emit code that transfers control to [tl] when the (non-const)
     sub-filter matches the frame at r6, to [fl] otherwise. Every
     label produced is the target of at least one jump, so the whole
     expansion stays CFG-reachable. *)
  let rec emit sf ~tl ~fl =
    match sf with
    | S_const _ -> assert false  (* folded away by [simplify] *)
    | S_src_host ip -> host_cmp Tcp.Wire.off_ip_src ip ~tl ~fl
    | S_dst_host ip -> host_cmp Tcp.Wire.off_ip_dst ip ~tl ~fl
    | S_port p ->
        let p' = bswap16 p in
        [
          I (Ldx (W16, 3, 6, Tcp.Wire.off_tcp_sport));
          Jl (Jeq, 3, Imm p', tl);
          I (Ldx (W16, 3, 6, Tcp.Wire.off_tcp_dport));
          Jl (Jeq, 3, Imm p', tl);
          Jal fl;
        ]
    | S_flag mask ->
        [
          I (Ldx (W8, 3, 6, Tcp.Wire.off_tcp_flags));
          Jl (Jset, 3, Imm mask, tl);
          Jal fl;
        ]
    | S_negated atom -> emit atom ~tl:fl ~fl:tl
    | S_and (a, b) ->
        let mid = fresh "and" in
        emit a ~tl:mid ~fl @ [ L mid ] @ emit b ~tl ~fl
    | S_or (a, b) ->
        let mid = fresh "or" in
        emit a ~tl ~fl:mid @ [ L mid ] @ emit b ~tl ~fl
  and host_cmp off ip ~tl ~fl =
    (* The wire is big-endian; a little-endian W32 load of the
       address bytes therefore reads bswap32(ip). The swapped value
       may not fit a signed 32-bit immediate, so compare via a
       register. *)
    [
      I (Ldx (W32, 3, 6, off));
      I (Ld_imm64 (4, Int64.of_int (bswap32 ip)));
      Jl (Jeq, 3, Reg 4, tl);
      Jal fl;
    ]
  in
  match simplify filter with
  | S_const false ->
      (* Nothing can match: no counter traffic, just pass. *)
      assemble [ I (Alu64 (Mov, 0, Imm xdp_pass)); I Exit ]
  | simplified ->
      let filter_code =
        match simplified with
        | S_const true -> []  (* fall straight into the match block *)
        | sf -> emit sf ~tl:"matched" ~fl:"out" @ [ L "matched" ]
      in
      assemble
        ([
           I (Ldx (W64, 6, 1, 0));
           I (Ldx (W64, 7, 1, 8));
           (* Need the full Ethernet/IPv4/TCP header. *)
           I (Alu64 (Mov, 2, Reg 6));
           I (Alu64 (Add, 2, Imm 54));
           Jl (Jgt, 2, Reg 7, "out");
           (* IPv4? ethertype 0x0800 big-endian = 0x0008 LE. *)
           I (Ldx (W16, 3, 6, Tcp.Wire.off_ethertype));
           Jl (Jne, 3, Imm 0x0008, "out");
         ]
        @ filter_code
        @ [
            (* Bump the u64 match counter in map 0, key 0. *)
            I (St_imm (W32, 10, -4, 0));
            I (Alu64 (Mov, 1, Imm 0));
            I (Alu64 (Mov, 2, Reg 10));
            I (Alu64 (Add, 2, Imm (-4)));
            I (Call helper_map_lookup);
            Jl (Jeq, 0, Imm 0, "out");
            I (Ldx (W64, 3, 0, 0));
            I (Alu64 (Add, 3, Imm 1));
            I (Stx (W64, 0, 0, 3));
            L "out";
            I (Alu64 (Mov, 0, Imm xdp_pass));
            I Exit;
          ])

let program () = program_of_filter All

let counter_map () =
  Bpf_map.create Bpf_map.Array_map ~key_size:4 ~value_size:8 ~max_entries:1

let match_count map =
  match Bpf_map.lookup map ~key:(Bytes.make 4 '\000') with
  | None -> 0L
  | Some v ->
      let n = ref 0L in
      for i = 7 downto 0 do
        n :=
          Int64.logor (Int64.shift_left !n 8)
            (Int64.of_int (Char.code (Bytes.get v i)))
      done;
      !n
