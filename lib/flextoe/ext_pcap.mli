(** tcpdump-style packet capture (§2.1, Table 2).

    A capture tap on the NBI records frames matching a header filter
    into an in-memory ring and can emit a standard libpcap file.
    Capture costs FPC cycles per packet (charged by the data path),
    which is why the paper reports up to 43% throughput degradation
    when logging everything — the flexibility story is that the tap
    can be attached and detached at run time. *)

(** Header filter expressions, tcpdump-flavoured. *)
type filter =
  | All
  | Host of int  (** Source or destination IPv4 address. *)
  | Src_host of int
  | Dst_host of int
  | Port of int
  | Tcp_flag of [ `Syn | `Fin | `Rst | `Ack | `Psh ]
  | And of filter * filter
  | Or of filter * filter
  | Not of filter

val matches : filter -> Tcp.Segment.frame -> bool

type t

val create :
  Sim.Engine.t -> ?snaplen:int -> ?limit:int -> ?filter:filter -> unit -> t
(** [snaplen] (default 96) caps stored bytes per packet; [limit]
    (default 65536) caps retained records (oldest dropped). *)

val attach : t -> Datapath.t -> unit
(** Install as the data path's capture tap. *)

val detach : Datapath.t -> unit

val captured : t -> int
(** Packets recorded (post-filter). *)

val seen : t -> int
(** Packets inspected. *)

val to_pcap : t -> Bytes.t
(** Serialise as a classic libpcap capture file (magic 0xa1b2c3d4,
    LINKTYPE_ETHERNET), with virtual-time timestamps. *)

val write_file : t -> string -> unit

(** {1 Data-path filter programs}

    A [filter] can also be compiled into an XDP program that counts
    matching frames in a BPF array map — the in-line companion of the
    host tap, and a generated-code workout for {!Verifier.verify}
    (every emitted program must pass it). *)

val program_of_filter : filter -> Bpf_insn.t array
(** Compile [filter] to eBPF. The program considers only well-formed
    IPv4/TCP frames (a 54-byte header guard precedes all accesses),
    bumps a u64 counter in map 0 (key 0) on match, and always returns
    XDP_PASS. Constant sub-filters are folded before code generation
    so no statically unreachable block is emitted. *)

val program : unit -> Bpf_insn.t array
(** [program_of_filter All] — count every well-formed frame. *)

val counter_map : unit -> Bpf_map.t
(** A fresh match-counter map of the shape the compiled programs
    expect: array map, 4-byte key, 8-byte value, one entry. *)

val match_count : Bpf_map.t -> int64
(** Current value of the u64 match counter (key 0). *)
