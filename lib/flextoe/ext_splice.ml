(** Connection splicing as an XDP module — the paper's Listing 1
    (Appendix B), AccelTCP-style.

    A BPF hash map keyed by the arriving segment's 4-tuple holds the
    header rewrite: new destination MAC/IP, translated ports, and
    sequence/acknowledgment deltas derived from the two connections'
    initial sequence numbers. Hits are patched and bounced straight
    out the MAC (XDP_TX) — the proxy host never sees the payload.
    Segments with control flags (SYN/FIN/RST) atomically remove the
    map entry and are redirected to the control plane; non-TCP frames
    are redirected as well. FlexTOE refreshes the checksum on TX. *)

open Bpf_insn

(* Packet offsets (untagged Ethernet/IPv4/TCP). *)
let off_ip_src = Tcp.Wire.off_ip_src  (* 26; the 12-byte key starts here *)
let off_tcp_sport = Tcp.Wire.off_tcp_sport
let off_tcp_seq = Tcp.Wire.off_tcp_seq
let off_tcp_ack = Tcp.Wire.off_tcp_ack
let off_tcp_flags = Tcp.Wire.off_tcp_flags

(* Value layout in the splice table (24 bytes):
   0..6   remote_mac   (network byte order)
   8..12  remote_ip    (network byte order)
   12..14 local_port   (network byte order)
   14..16 remote_port  (network byte order)
   16..20 seq_delta    (host u32)
   20..24 ack_delta    (host u32) *)
let value_size = 24

let program () =
  assemble
    [
      I (Ldx (W64, 6, 1, 0));  (* r6 = data *)
      I (Ldx (W64, 7, 1, 8));  (* r7 = data_end *)
      (* Short frames and non-IPv4/TCP go to the control plane. *)
      I (Alu64 (Mov, 2, Reg 6));
      I (Alu64 (Add, 2, Imm 54));
      Jl (Jgt, 2, Reg 7, "redirect");
      I (Ldx (W16, 3, 6, 12));
      Jl (Jne, 3, Imm 0x0008, "redirect");  (* ethertype 0x0800 BE *)
      I (Ldx (W8, 3, 6, 23));
      Jl (Jne, 3, Imm 6, "redirect");
      (* Build the 12-byte 4-tuple key on the stack. *)
      I (Ldx (W64, 3, 6, off_ip_src));
      I (Stx (W64, 10, -16, 3));
      I (Ldx (W32, 3, 6, off_tcp_sport));
      I (Stx (W32, 10, -8, 3));
      (* Control flags (SYN|FIN|RST): remove entry, to control plane. *)
      I (Ldx (W8, 3, 6, off_tcp_flags));
      I (Alu64 (And, 3, Imm 0x07));
      Jl (Jeq, 3, Imm 0, "lookup");
      I (Alu64 (Mov, 1, Imm 0));
      I (Alu64 (Mov, 2, Reg 10));
      I (Alu64 (Add, 2, Imm (-16)));
      I (Call helper_map_delete);
      Jal "redirect";
      L "lookup";
      I (Alu64 (Mov, 1, Imm 0));
      I (Alu64 (Mov, 2, Reg 10));
      I (Alu64 (Add, 2, Imm (-16)));
      I (Call helper_map_lookup);
      Jl (Jne, 0, Imm 0, "patch");
      (* No splice state: normal data-path segment. *)
      I (Alu64 (Mov, 0, Imm xdp_pass));
      I Exit;
      L "patch";
      I (Alu64 (Mov, 8, Reg 0));  (* r8 = splice state *)
      (* eth.src <- eth.dst (the proxy's MAC) *)
      I (Ldx (W32, 3, 6, 0));
      I (Ldx (W16, 4, 6, 4));
      I (Stx (W32, 6, 6, 3));
      I (Stx (W16, 6, 10, 4));
      (* eth.dst <- remote_mac *)
      I (Ldx (W32, 3, 8, 0));
      I (Ldx (W16, 4, 8, 4));
      I (Stx (W32, 6, 0, 3));
      I (Stx (W16, 6, 4, 4));
      (* ip.src <- ip.dst; ip.dst <- remote_ip *)
      I (Ldx (W32, 3, 6, 30));
      I (Stx (W32, 6, 26, 3));
      I (Ldx (W32, 3, 8, 8));
      I (Stx (W32, 6, 30, 3));
      (* ports *)
      I (Ldx (W16, 3, 8, 12));
      I (Stx (W16, 6, 34, 3));
      I (Ldx (W16, 3, 8, 14));
      I (Stx (W16, 6, 36, 3));
      (* seq += seq_delta (byte-swap, add, swap back) *)
      I (Ldx (W32, 3, 6, off_tcp_seq));
      I (Endian_be (3, 32));
      I (Ldx (W32, 4, 8, 16));
      I (Alu32 (Add, 3, Reg 4));
      I (Endian_be (3, 32));
      I (Stx (W32, 6, off_tcp_seq, 3));
      (* ack += ack_delta *)
      I (Ldx (W32, 3, 6, off_tcp_ack));
      I (Endian_be (3, 32));
      I (Ldx (W32, 4, 8, 20));
      I (Alu32 (Add, 3, Reg 4));
      I (Endian_be (3, 32));
      I (Stx (W32, 6, off_tcp_ack, 3));
      (* FlexTOE recomputes the checksum on egress. *)
      I (Call helper_csum_fixup);
      I (Alu64 (Mov, 0, Imm xdp_tx));
      I Exit;
      L "redirect";
      I (Alu64 (Mov, 0, Imm xdp_redirect));
      I Exit;
    ]

type t = { xdp : Xdp.t; map : Bpf_map.t }

let create engine =
  let map =
    Bpf_map.create Bpf_map.Hash_map ~key_size:12 ~value_size
      ~max_entries:4096
  in
  let insns = program () in
  (match Verifier.verify ~maps:(Xdp.map_specs [| map |]) insns with
  | Ok _ -> ()
  | Error v -> invalid_arg ("Ext_splice: " ^ Verifier.violation_to_string v));
  match Ebpf.load_unverified insns with
  | Ok p -> { xdp = Xdp.create engine ~program:p ~maps:[| map |]; map }
  | Error e -> invalid_arg ("Ext_splice: " ^ e)

let xdp t = t.xdp
let install t dp = Xdp.install t.xdp dp

(* --- Control-plane side -------------------------------------------- *)

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let put_u32 b off v =
  put_u16 b off ((v lsr 16) land 0xFFFF);
  put_u16 b (off + 2) (v land 0xFFFF)

let put_u32_le b off v =
  Bytes.set b off (Char.chr (v land 0xFF));
  Bytes.set b (off + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b (off + 3) (Char.chr ((v lsr 24) land 0xFF))

let put_u48 b off v =
  put_u16 b off ((v lsr 32) land 0xFFFF);
  put_u32 b (off + 2) (v land 0xFFFFFFFF)

(* Key as it appears in an arriving packet at the proxy: the sender's
   4-tuple in network byte order. *)
let key ~src_ip ~dst_ip ~src_port ~dst_port =
  let b = Bytes.create 12 in
  put_u32 b 0 src_ip;
  put_u32 b 4 dst_ip;
  put_u16 b 8 src_port;
  put_u16 b 10 dst_port;
  b

type rewrite = {
  remote_mac : int;
  remote_ip : int;
  local_port : int;
  remote_port : int;
  seq_delta : int;  (** mod 2^32 *)
  ack_delta : int;
}

let encode_rewrite r =
  let b = Bytes.make value_size '\000' in
  put_u48 b 0 r.remote_mac;
  put_u32 b 8 r.remote_ip;
  put_u16 b 12 r.local_port;
  put_u16 b 14 r.remote_port;
  put_u32_le b 16 (r.seq_delta land 0xFFFFFFFF);
  put_u32_le b 20 (r.ack_delta land 0xFFFFFFFF);
  b

let add t ~src_ip ~dst_ip ~src_port ~dst_port rewrite =
  match
    Bpf_map.update t.map
      ~key:(key ~src_ip ~dst_ip ~src_port ~dst_port)
      ~value:(encode_rewrite rewrite)
  with
  | Ok () -> ()
  | Error e -> invalid_arg ("Ext_splice.add: " ^ e)

let remove t ~src_ip ~dst_ip ~src_port ~dst_port =
  ignore (Bpf_map.delete t.map ~key:(key ~src_ip ~dst_ip ~src_port ~dst_port))

(* After installing the rewrite entries, each endpoint gets one
   translated window-update ACK so a sender parked on the proxy's
   zero-window SYN-ACK (the pre-splice guard) starts transmitting. *)
let nudge dp (via : Control_plane.conn_handle) ~window =
  let cs = via.Control_plane.ch_state in
  let pre = cs.Conn_state.pre in
  let p = cs.Conn_state.proto in
  let seg =
    Tcp.Segment.make ~flags:Tcp.Segment.flags_ack ~window
      ~src_ip:pre.Conn_state.local_ip ~dst_ip:pre.Conn_state.peer_ip
      ~src_port:pre.Conn_state.local_port
      ~dst_port:pre.Conn_state.remote_port
      ~seq:(Conn_state.tx_seq_of_pos cs p.Conn_state.tx_next_pos)
      ~ack_seq:(Tcp.Reassembly.next p.Conn_state.reasm)
      ()
  in
  Datapath.control_tx dp
    (Tcp.Segment.make_frame
       ~src_mac:(Control_plane.mac_of_ip pre.Conn_state.local_ip)
       ~dst_mac:pre.Conn_state.peer_mac seg)

(* Splice two established proxy connections [a] (to the client) and
   [b] (to the server): traffic arriving on either is rewritten onto
   the other. Valid when spliced before any payload flows (the usual
   AccelTCP pattern: splice right after connection setup). *)
let splice_pair t ~dp ~(a : Control_plane.conn_handle)
    ~(b : Control_plane.conn_handle) =
  let mask = 0xFFFFFFFF in
  let proto (h : Control_plane.conn_handle) =
    h.Control_plane.ch_state.Conn_state.proto
  in
  let flow (h : Control_plane.conn_handle) =
    h.Control_plane.ch_state.Conn_state.flow
  in
  let fa = flow a and fb = flow b in
  let pa = proto a and pb = proto b in
  let mac_of_ip = Control_plane.mac_of_ip in
  (* client -> proxy (conn a's RX) becomes proxy -> server (b's TX) *)
  add t ~src_ip:fa.Tcp.Flow.remote_ip ~dst_ip:fa.Tcp.Flow.local_ip
    ~src_port:fa.Tcp.Flow.remote_port ~dst_port:fa.Tcp.Flow.local_port
    {
      remote_mac = mac_of_ip fb.Tcp.Flow.remote_ip;
      remote_ip = fb.Tcp.Flow.remote_ip;
      local_port = fb.Tcp.Flow.local_port;
      remote_port = fb.Tcp.Flow.remote_port;
      seq_delta = (pb.Conn_state.tx_isn - pa.Conn_state.rx_isn) land mask;
      ack_delta = (pb.Conn_state.rx_isn - pa.Conn_state.tx_isn) land mask;
    };
  (* server -> proxy (conn b's RX) becomes proxy -> client (a's TX) *)
  add t ~src_ip:fb.Tcp.Flow.remote_ip ~dst_ip:fb.Tcp.Flow.local_ip
    ~src_port:fb.Tcp.Flow.remote_port ~dst_port:fb.Tcp.Flow.local_port
    {
      remote_mac = mac_of_ip fa.Tcp.Flow.remote_ip;
      remote_ip = fa.Tcp.Flow.remote_ip;
      local_port = fa.Tcp.Flow.local_port;
      remote_port = fa.Tcp.Flow.remote_port;
      seq_delta = (pa.Conn_state.tx_isn - pb.Conn_state.rx_isn) land mask;
      ack_delta = (pa.Conn_state.rx_isn - pb.Conn_state.tx_isn) land mask;
    };
  (* Window-update nudges: each endpoint now sees the other's window. *)
  let scaled w = min 0xFFFF (w lsr 7) in
  nudge dp a ~window:(scaled pb.Conn_state.remote_win);
  nudge dp b ~window:(scaled pa.Conn_state.remote_win)

let spliced_segments t = Xdp.txed t.xdp
let entries t = Bpf_map.length t.map
