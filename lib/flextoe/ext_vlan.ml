(** VLAN-strip XDP module (one of the paper's "common XDP modules",
    Table 2).

    802.1Q-tagged ingress frames have their tag removed before
    entering the data path (which only handles untagged frames): the
    program copies the two MAC addresses forward by four bytes and
    adjusts the packet head, exactly how the real XDP idiom works. *)

open Bpf_insn

let program () =
  assemble
    [
      I (Ldx (W64, 6, 1, 0));
      I (Ldx (W64, 7, 1, 8));
      I (Alu64 (Mov, 2, Reg 6));
      I (Alu64 (Add, 2, Imm 18));
      Jl (Jgt, 2, Reg 7, "pass");
      (* Tagged? ethertype 0x8100 big-endian reads as 0x0081 LE. *)
      I (Ldx (W16, 3, 6, 12));
      Jl (Jne, 3, Imm 0x0081, "pass");
      (* Read both MACs before overwriting. *)
      I (Ldx (W64, 3, 6, 0));
      I (Ldx (W32, 4, 6, 8));
      I (Stx (W64, 6, 4, 3));
      I (Stx (W32, 6, 12, 4));
      (* Drop the first 4 bytes. *)
      I (Alu64 (Mov, 2, Imm 4));
      I (Call helper_adjust_head);
      L "pass";
      I (Alu64 (Mov, 0, Imm xdp_pass));
      I Exit;
    ]

type t = { xdp : Xdp.t }

let create engine =
  let insns = program () in
  (match Verifier.verify insns with
  | Ok _ -> ()
  | Error v -> invalid_arg ("Ext_vlan: " ^ Verifier.violation_to_string v));
  match Ebpf.load_unverified insns with
  | Ok p -> { xdp = Xdp.create engine ~program:p ~maps:[||] }
  | Error e -> invalid_arg ("Ext_vlan: " ^ e)

let xdp t = t.xdp
let install t dp = Xdp.install t.xdp dp
let stripped t = Xdp.passed t.xdp
