(* FlexScope datapath wiring: the periodic utilization / queue-depth
   sampler on top of the generic Sim.Scope recorder.

   Every tick it reads the cumulative busy and memory-stall time of
   each FPC pool (Datapath.fpc_pools groups them by island), diffs
   against the previous tick, and records the busy and stall
   fractions of the pool's capacity as Scope series. DMA queue
   occupancy and ATX descriptor-ring depths are sampled directly.
   In Full mode each sample is also a Chrome "C" counter event, so
   the utilization timelines render under the stage tracks. *)

type t = {
  engine : Sim.Engine.t;
  dp : Datapath.t;
  sc : Sim.Scope.t;
  interval : Sim.Time.t;
  (* series key -> (busy_ns, stall_ns) cumulative at the last tick *)
  prev : (string, float * float) Hashtbl.t;
  mutable running : bool;
  mutable ticks : int;
}

let scope t = t.sc
let ticks t = t.ticks

let pool_key name island =
  if island < 0 then name else Printf.sprintf "%s/fg%d" name island

let sample_tick t =
  let iv_ns = Sim.Time.to_ns t.interval in
  List.iter
    (fun (name, island, fpcs) ->
      if Array.length fpcs > 0 then begin
        let busy =
          Array.fold_left
            (fun a f -> a +. Sim.Time.to_ns (Nfp.Fpc.busy_time f))
            0. fpcs
        in
        let stall =
          Array.fold_left
            (fun a f -> a +. Sim.Time.to_ns (Nfp.Fpc.stall_time f))
            0. fpcs
        in
        let key = pool_key name island in
        let pb, ps =
          Option.value ~default:(0., 0.) (Hashtbl.find_opt t.prev key)
        in
        Hashtbl.replace t.prev key (busy, stall);
        let cap = float_of_int (Array.length fpcs) *. iv_ns in
        Sim.Scope.sample t.sc
          ~series:("util/" ^ key)
          ~value:((busy -. pb) /. cap);
        Sim.Scope.sample t.sc
          ~series:("stall/" ^ key)
          ~value:((stall -. ps) /. cap)
      end)
    (Datapath.fpc_pools t.dp);
  Array.iteri
    (fun i (inflight, waiting) ->
      Sim.Scope.sample t.sc
        ~series:(Printf.sprintf "dmaq%d/inflight" i)
        ~value:(float_of_int inflight);
      Sim.Scope.sample t.sc
        ~series:(Printf.sprintf "dmaq%d/waiting" i)
        ~value:(float_of_int waiting))
    (Nfp.Dma.queue_stats (Datapath.dma_engine t.dp));
  Array.iteri
    (fun i ring ->
      Sim.Scope.sample t.sc
        ~series:(Printf.sprintf "atx%d/depth" i)
        ~value:(float_of_int (Nfp.Ring.length ring)))
    (Datapath.atx_rings t.dp);
  t.ticks <- t.ticks + 1

let rec loop t =
  if t.running then begin
    sample_tick t;
    Sim.Engine.schedule t.engine t.interval (fun () -> loop t)
  end

let start ?(interval = Sim.Time.us 25) dp =
  match Datapath.scope dp with
  | None -> None
  | Some sc ->
      let t =
        {
          engine = Datapath.engine dp;
          dp;
          sc;
          interval;
          prev = Hashtbl.create 32;
          running = true;
          ticks = 0;
        }
      in
      Sim.Engine.schedule t.engine interval (fun () -> loop t);
      Some t

let stop t = t.running <- false

let write_profile ?trace ?metrics dp =
  match Datapath.scope dp with
  | None -> ()
  | Some sc ->
      let with_file path f =
        let oc = open_out path in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
      in
      (match trace with
      | Some path when Sim.Scope.mode sc = Sim.Scope.Full ->
          with_file path (fun oc -> Sim.Scope.write_trace sc oc)
      | _ -> ());
      match metrics with
      | Some path -> with_file path (fun oc -> Sim.Scope.write_metrics sc oc)
      | None -> ()
