(** FlexScope: the datapath-facing half of the profiler.

    {!Sim.Scope} is the generic recorder (spans, histograms, series,
    flight recorder, Chrome [trace_event] export); this module wires
    it to a {!Datapath}: a periodic sampler turning cumulative per-FPC
    busy / memory-stall time into per-pool, per-island utilization
    series, plus DMA queue occupancy and ATX descriptor-ring depths.

    The sampler reschedules itself for as long as it runs, so a
    simulation with profiling enabled must either bound
    {!Sim.Engine.run} with [~until] or {!stop} the sampler before
    draining the queue. *)

type t

val start : ?interval:Sim.Time.t -> Datapath.t -> t option
(** Start sampling the datapath's pools every [interval] (default
    25us). [None] when the datapath has no scope attached
    ([config.scope = Scope_off]) — profiling fully disabled costs no
    timer traffic at all. *)

val stop : t -> unit
(** Stop rescheduling (takes effect at the next tick). *)

val scope : t -> Sim.Scope.t
val ticks : t -> int

val write_profile : ?trace:string -> ?metrics:string -> Datapath.t -> unit
(** Export the datapath's recorder to files: [?trace] gets Chrome
    [trace_event] JSONL (written only in [Full] mode), [?metrics] the
    JSON metrics snapshot. No-op when profiling is off. *)
