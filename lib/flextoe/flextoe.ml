module Config = Config
module Flow_group = Flow_group
module Conn_state = Conn_state
module Meta = Meta
module Coalesce = Coalesce
module Protocol = Protocol
module Sequencer = Sequencer
module Scheduler = Scheduler
module Effects = Effects
module Graph_ir = Graph_ir
module Prove = Prove
module Infer = Infer
module San = San
module Guard = Guard
module Datapath = Datapath
module Cc = Cc
module Control_plane = Control_plane
module Libtoe = Libtoe
module Bpf_insn = Bpf_insn
module Bpf_map = Bpf_map
module Ebpf = Ebpf
module Verifier = Verifier
module Flexscope = Flexscope
module Xdp = Xdp
module Ext_firewall = Ext_firewall
module Ext_vlan = Ext_vlan
module Ext_splice = Ext_splice
module Ext_pcap = Ext_pcap
module Ext_classifier = Ext_classifier

type t = {
  dp : Datapath.t;
  cp : Control_plane.t;
  lib : Libtoe.t;
  cpu : Host.Host_cpu.t;
  n_app_cores : int;
  cfg : Config.t;
  sampler : Flexscope.t option;
}

(* Re-export the verifier's error surface so callers embedding the
   eBPF toolchain only need the umbrella module: a rejection is a
   [verifier_violation] and renders with {!verifier_violation_to_string}. *)
type verifier_reason = Verifier.reason

type verifier_violation = Verifier.violation = {
  pc : int;
  reason : verifier_reason;
  state : Verifier.state option;
}

let verifier_violation_to_string = Verifier.violation_to_string

let mac_of_ip = Control_plane.mac_of_ip

let create_node engine ~fabric ?(config = Config.default) ?(app_cores = 1)
    ?(sabotage = Datapath.no_sabotage) ~ip () =
  let cpu = Host.Host_cpu.create engine ~cores:(app_cores + 1) () in
  (* Host jitter: small — libTOE busy-polls in user space and the TCP
     stack is on the NIC, but the application core still takes
     occasional interrupts. *)
  Host.Host_cpu.set_noise cpu ~interval_cycles:2_500_000
    ~mean_cycles:30_000;
  let dp =
    Datapath.create engine ~config ~fabric ~mac:(mac_of_ip ip) ~ip
      ~ctx_queues:app_cores ~sabotage ()
  in
  let cp_core = Host.Host_cpu.core cpu app_cores in
  let cp = Control_plane.create engine ~config ~datapath:dp ~core:cp_core () in
  let cores = List.init app_cores (Host.Host_cpu.core cpu) in
  let lib =
    Libtoe.create engine ~config ~datapath:dp ~control:cp ~cores ()
  in
  (* Profiling opt-in: the sampler only exists when the datapath was
     built with a scope, so a default node schedules nothing. *)
  let sampler = Flexscope.start dp in
  { dp; cp; lib; cpu; n_app_cores = app_cores; cfg = config; sampler }

let endpoint t = Libtoe.endpoint t.lib
let datapath t = t.dp
let control t = t.cp
let libtoe t = t.lib
let cpu t = t.cpu
let app_cores t = List.init t.n_app_cores (Host.Host_cpu.core t.cpu)
let config t = t.cfg
let flexscope t = t.sampler
let scope t = Datapath.scope t.dp
