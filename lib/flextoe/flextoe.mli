(** FlexTOE: flexible TCP offload with fine-grained parallelism.

    Top-level facade assembling a complete node: a SmartNIC data path
    ({!Datapath}) attached to the network fabric, a host control plane
    ({!Control_plane}) on a dedicated core, and a libTOE socket
    library ({!Libtoe}) for the application, which programs against
    {!Host.Api}.

    {[
      let engine = Sim.Engine.create () in
      let fabric = Netsim.Fabric.create engine () in
      let server = Flextoe.create_node engine ~fabric ~ip:0x0A000001 () in
      let client = Flextoe.create_node engine ~fabric ~ip:0x0A000002 () in
      Host.Rpc.server ~endpoint:(Flextoe.endpoint server) ~port:7
        ~app_cycles:250 ~handler:Host.Rpc.echo_handler ();
      ...
      Sim.Engine.run ~until:(Sim.Time.ms 100) engine
    ]} *)

(** {1 Components} *)

module Config = Config
module Flow_group = Flow_group
module Conn_state = Conn_state
module Meta = Meta
module Coalesce = Coalesce
module Protocol = Protocol
module Sequencer = Sequencer
module Scheduler = Scheduler
module Effects = Effects
module Graph_ir = Graph_ir
module Prove = Prove
module Infer = Infer
module San = San
module Guard = Guard
module Datapath = Datapath
module Cc = Cc
module Control_plane = Control_plane
module Libtoe = Libtoe
module Bpf_insn = Bpf_insn
module Bpf_map = Bpf_map
module Ebpf = Ebpf
module Verifier = Verifier
module Flexscope = Flexscope
module Xdp = Xdp
module Ext_firewall = Ext_firewall
module Ext_vlan = Ext_vlan
module Ext_splice = Ext_splice
module Ext_pcap = Ext_pcap
module Ext_classifier = Ext_classifier

(** {1 Verifier error surface}

    Re-exported so embedders of the eBPF toolchain ([Ebpf.load] and
    friends) can pattern-match rejections against the umbrella module
    alone. *)

type verifier_reason = Verifier.reason

type verifier_violation = Verifier.violation = {
  pc : int;
  reason : verifier_reason;
  state : Verifier.state option;
}

val verifier_violation_to_string : verifier_violation -> string

(** {1 Assembled node} *)

type t

val create_node :
  Sim.Engine.t ->
  fabric:Netsim.Fabric.t ->
  ?config:Config.t ->
  ?app_cores:int ->
  ?sabotage:Datapath.sabotage ->
  ip:int ->
  unit ->
  t
(** Build a node: host CPU with [app_cores] application cores (default
    1) plus one control-plane core, NIC data path with one context
    queue per application core, control plane, and libTOE.
    [sabotage] (default {!Datapath.no_sabotage}) seeds a deliberate
    synchronization defect for sanitizer regression tests. *)

val endpoint : t -> Host.Api.endpoint
val datapath : t -> Datapath.t
val control : t -> Control_plane.t
val libtoe : t -> Libtoe.t
val cpu : t -> Host.Host_cpu.t
val app_cores : t -> Host.Host_cpu.core list
val config : t -> Config.t

val flexscope : t -> Flexscope.t option
(** The node's utilization sampler, running iff [config.scope] is not
    {!Config.Scope_off} (it keeps the event queue non-empty — bound
    runs with [~until] or {!Flexscope.stop} it). *)

val scope : t -> Sim.Scope.t option
(** Shorthand for [Datapath.scope (datapath t)]. *)

val mac_of_ip : int -> int
(** Fabric-wide IP-to-MAC convention (shared with the baselines). *)
