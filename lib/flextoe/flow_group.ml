(* FlexScale steering (DESIGN.md §17). Everything here is a pure
   function of the connection 4-tuple and the static configuration:
   steering can never depend on load, time or table state, which is
   what makes "a flow never migrates shards mid-life" a theorem
   rather than a property of the scheduler's mood. *)

let group_of_flow flow ~groups =
  if groups <= 0 then invalid_arg "Flow_group.group_of_flow: groups <= 0";
  Tcp.Flow.flow_group flow ~groups

let shard_of_group fg ~shards =
  if shards <= 0 then invalid_arg "Flow_group.shard_of_group: shards <= 0";
  fg mod shards

let shard_of_flow flow ~groups ~shards =
  shard_of_group (group_of_flow flow ~groups) ~shards

let shards_of (scale : Config.scale) =
  if scale.Config.s_on then max 1 scale.Config.s_shards else 1

let shard_of_config (cfg : Config.t) flow =
  shard_of_flow flow
    ~groups:cfg.Config.parallelism.Config.flow_groups
    ~shards:(shards_of cfg.Config.scale)
