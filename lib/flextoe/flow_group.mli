(** FlexScale flow-group steering (DESIGN.md §17).

    Sharding assigns every connection to one of [shards] replicated
    protocol-stage pipelines. The assignment is a pure function of
    the 4-tuple: [shard = (crc32 of the 4-tuple) mod groups mod
    shards]. No load, time or table state enters the computation, so
    the same flow always lands on the same shard — the property the
    FlexProve shard-disjointness pass and the FlexSan cross-shard
    audit both rest on. *)

val group_of_flow : Tcp.Flow.t -> groups:int -> int
(** The flow-group hash ([Tcp.Flow.flow_group]); raises
    [Invalid_argument] on [groups <= 0]. *)

val shard_of_group : int -> shards:int -> int
(** [shard_of_group fg ~shards = fg mod shards]. *)

val shard_of_flow : Tcp.Flow.t -> groups:int -> shards:int -> int
(** Composition of the two: the shard a flow steers to. *)

val shards_of : Config.scale -> int
(** Effective shard count: 1 when sharding is off. *)

val shard_of_config : Config.t -> Tcp.Flow.t -> int
(** Steering under a full configuration (its flow-group count and
    effective shard count). *)
