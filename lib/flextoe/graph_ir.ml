(** FlexProve graph IR: an explicit typed model of the datapath.

    The datapath's safety argument lives in its wiring — which stages
    exist, what serializes them, which queues sit between them, which
    credits gate them. [Datapath.create] builds that wiring
    imperatively; this module states it as data so the FlexProve
    passes ({!Prove}) can check an *arbitrary* stage graph, not just
    the built-in one: whole-graph interference, deadlock freedom in
    the credit/backpressure graph, and worst-case queue occupancy
    against configured capacities.

    {!builtin} is the extraction of the built-in pipeline: it mirrors
    the as-built wiring of [datapath.ml] (including, on request, the
    seeded sabotage defects, so `flexlint graph` can classify each
    variant as statically caught or dynamic-only). Capacities, batch
    degrees and guard bounds come from {!Config.t}, never from
    constants of their own. *)

(* --- Types ----------------------------------------------------------- *)

type capacity = Bounded of int | Unbounded

(** What happens when a queue is offered more than it can hold.
    [Backpressure] blocks the producer (safe for occupancy, feeds the
    deadlock pass); [Drop] sheds by a named policy (safe by design);
    [Reject] means overflow would be a bug — the bounds pass must
    prove worst-case occupancy fits the capacity. *)
type overflow = Backpressure | Drop of string | Reject

(** Worst-case-occupancy expressions, evaluated by the bounds pass
    against the graph itself: [Slots s] is stage [s]'s concurrent
    execution slots, [Tokens l] / [Cap l] the token count / capacity
    of the edge labelled [l]. [Unbounded_by s] declares open-loop
    inflow limited only by [s] — never acceptable on a [Reject]
    queue. *)
type bound =
  | Const of int
  | Slots of string
  | Tokens of string
  | Cap of string
  | Sum of bound list
  | Prod of bound list
  | Min_of of bound list
  | Unbounded_by of string

(** Logical-process assignment for the parallel simulator's
    partition: which LP a stage's executions live on. Per-flow-group
    stages carry the island class [Lp_island g]; the graph's stage
    nodes aggregate the per-group replicas, so the builtin extraction
    uses the representative index 0 — two [Lp_island] stage nodes are
    co-located exactly when flow-group steering keeps a segment's
    processing inside one island, which is what the shared index
    asserts. Service-island hardware (GRO sequencer, DMA, context
    queues, scheduler, NBI) is [Lp_service]; libTOE and the
    applications are [Lp_host]. *)
type lp = Lp_host | Lp_service | Lp_island of int

let lp_name = function
  | Lp_host -> "host"
  | Lp_service -> "service"
  | Lp_island g -> "island" ^ string_of_int g

type node = {
  n_name : string;
  n_contract : Effects.contract;
  n_slots : int;  (** Concurrent execution slots (replicas × threads). *)
  n_serialized_writes : bool;
      (** Writes happen inside the serialization domain's critical
          section; [false] models an early-release defect. *)
  n_lp : lp;  (** Logical process this stage's executions live on. *)
}

type edge_kind =
  | Dataflow of { df_ordered : bool }
      (** Work handed downstream; [df_ordered] = the hand-off
          preserves completion order (FIFO / sequencer / waits for
          DMA completion). *)
  | Queue of {
      q_capacity : capacity;
      q_overflow : overflow;
      q_batch : int;  (** Units coalesced per hand-off. *)
      q_bound : bound;  (** Worst-case occupancy. *)
    }
  | Credit of { cr_tokens : int }
      (** Backpressure loop: [src]'s execution is gated on tokens
          that only [dst]'s progress returns. *)

type edge = {
  e_src : string;
  e_dst : string;
  e_label : string;
  e_kind : edge_kind;
  e_drain : string option;
      (** For blocking edges (credits, backpressured queues): why the
          block always clears without help from the blocked side
          (timer flush, unconditional completion). [None] = clearing
          needs the far side to make progress — such an edge cannot
          break a deadlock cycle. *)
  e_lookahead : Sim.Time.t;
      (** Minimum hand-off latency of this edge: the conservative
          parallel simulator may claim it as lookahead on the channel
          realizing the edge. Must be positive on every cross-LP edge
          (the partition pass checks this); [Sim.Time.zero] is fine —
          and expected — on edges whose endpoints share an LP. *)
}

type t = { g_name : string; g_nodes : node list; g_edges : edge list }

(* --- Accessors -------------------------------------------------------- *)

let find_node g name = List.find_opt (fun n -> n.n_name = name) g.g_nodes
let find_edge g label = List.find_opt (fun e -> e.e_label = label) g.g_edges

let edge_capacity e =
  match e.e_kind with Queue q -> Some q.q_capacity | _ -> None

let edge_tokens e =
  match e.e_kind with Credit c -> Some c.cr_tokens | _ -> None

(** Edges a unit of work actually travels (queues and dataflow, not
    credit returns), used for ordering-path searches. *)
let is_dataflow e =
  match e.e_kind with Dataflow _ | Queue _ -> true | Credit _ -> false

(** Does the edge preserve per-flow completion order? Queues are FIFO
    by construction; dataflow edges declare it. *)
let is_ordered e =
  match e.e_kind with
  | Queue _ -> true
  | Dataflow d -> d.df_ordered
  | Credit _ -> false

(** Blocking edges: the source can stall until the far side clears
    them. These form the wait-for graph of the deadlock pass. *)
let is_blocking e =
  match e.e_kind with
  | Credit _ -> true
  | Queue { q_overflow = Backpressure; _ } -> true
  | Queue _ | Dataflow _ -> false

(** The LPs of an edge's endpoints, when both resolve. *)
let edge_lps g e =
  match (find_node g e.e_src, find_node g e.e_dst) with
  | Some a, Some b -> Some (a.n_lp, b.n_lp)
  | _ -> None

(** Does the edge cross an LP boundary? [false] when an endpoint is
    missing (well-formedness reports that separately). *)
let is_cross_lp g e =
  match edge_lps g e with Some (a, b) -> a <> b | None -> false

(* --- Builtin-pipeline extraction -------------------------------------- *)

(** The as-built defects that change the *declared* wiring or
    footprints (the [Datapath.sabotage] flags minus the two notify
    ordering defects, which leave the declared completion edge intact
    and are detectable only by FlexSan at runtime). *)
type defects = {
  d_no_lock : bool;  (** Protocol stage loses its Serial_conn domain. *)
  d_early_release : bool;
      (** Protocol writes escape the per-conn critical section. *)
  d_preproc_reads_proto : bool;
  d_postproc_writes_conn : bool;
}

let no_defects =
  {
    d_no_lock = false;
    d_early_release = false;
    d_preproc_reads_proto = false;
    d_postproc_writes_conn = false;
  }

(* The extraction mirrors [Datapath.create]'s wiring: same stage set
   and serialization domains as [Datapath.builtin_stages], queue
   capacities from the same sources (Nfp.Params for the NBI pool and
   DMA in-flight window, the 512-slot ATX rings, the 128-descriptor HC
   pool, [min 256 seg_buffers] scheduler credits), batch degrees from
   [Config.batch] and the CP-queue bound from [Config.guard]. The two
   pseudo-nodes [host] (libTOE + applications) and the NBI bracket the
   PCIe and wire boundaries so payload-ordering obligations are
   visible to the passes. *)
let builtin ?(defects = no_defects) ~config ~contracts () =
  let open Effects in
  let p = config.Config.params in
  let par = config.Config.parallelism in
  let b = config.Config.batch in
  let gc = config.Config.guard in
  let threads = max 1 par.Config.fpc_threads in
  let groups = max 1 par.Config.flow_groups in
  let contract name =
    match List.find_opt (fun c -> c.c_stage = name) contracts with
    | Some c -> c
    | None ->
        invalid_arg ("Graph_ir.builtin: no contract for stage " ^ name)
  in
  let patch name c =
    match name with
    | "protocol" when defects.d_no_lock -> { c with c_domain = Serial_none }
    | "preproc" when defects.d_preproc_reads_proto ->
        { c with c_reads = Conn_proto :: c.c_reads }
    | "postproc" when defects.d_postproc_writes_conn ->
        { c with c_writes = Conn_proto :: c.c_writes }
    | _ -> c
  in
  let node ?(serialized = true) name lp slots =
    {
      n_name = name;
      n_contract = patch name (contract name);
      n_slots = slots;
      n_serialized_writes = serialized;
      n_lp = lp;
    }
  in
  let host =
    (* libTOE + applications: drains notifications and Rx payload,
       fills Tx payload, rings ATX doorbells. Descriptor rings are
       single-producer/single-consumer per side (atomic region). *)
    {
      n_name = "host";
      n_contract =
        {
          c_stage = "host";
          c_reads = [ Rx_payload; Desc_ring ];
          c_writes = [ Tx_payload; Desc_ring ];
          c_domain = Serial_none;
        };
      n_slots = 4;
      n_serialized_writes = true;
      n_lp = Lp_host;
    }
  in
  (* Per-flow-group pipeline stages share the representative island
     LP (flow-group steering keeps a segment inside one island);
     service-island hardware lives on the service LP. Mirrors
     [Datapath.fpc_pools]: preproc/protocol/postproc carry an island
     index there, gro/dma/ctx/sched carry -1. *)
  let nodes =
    [
      node "preproc" (Lp_island 0)
        (max 1 (par.Config.preproc_replicas * groups) * threads);
      node "gro" Lp_service threads;
      node "protocol" (Lp_island 0)
        ~serialized:(not defects.d_early_release)
        (max 1 par.Config.proto_replicas * groups * threads);
      node "postproc" (Lp_island 0)
        (max 1 (par.Config.postproc_replicas * groups) * threads);
      node "dma" Lp_service (max 1 par.Config.dma_replicas * threads);
      node "ctx" Lp_service (max 1 par.Config.ctx_replicas * threads);
      node "sched" Lp_service threads;
      node "nbi" Lp_service 1;
      host;
    ]
  in
  (* Cross-LP hand-off latencies, claimable as lookahead: an island
     boundary costs at least one distributed-switch push into the
     neighbour's CTM; host-bound notifications ride a PCIe
     transaction; host doorbells a posted MMIO write. *)
  let island_hop =
    Sim.Time.Freq.cycles p.Nfp.Params.fpc_freq p.Nfp.Params.island_hop_cycles
  in
  let e ?drain ?(lookahead = Sim.Time.zero) src dst label kind =
    { e_src = src; e_dst = dst; e_label = label; e_kind = kind;
      e_drain = drain; e_lookahead = lookahead }
  in
  let flow ?(ordered = true) ?lookahead src dst label =
    e ?lookahead src dst label (Dataflow { df_ordered = ordered })
  in
  let seg_credits = min 256 p.Nfp.Params.seg_buffers in
  let edges =
    [
      (* RX: wire → NBI buffer pool → preproc → flow-group sequencer
         (GRO) → protocol → postproc → payload DMA → notify. *)
      e "nbi" "preproc" "nbi-pool" ~lookahead:island_hop
        (Queue
           {
             q_capacity = Bounded p.Nfp.Params.seg_buffers;
             q_overflow = Drop "tail-drop at the NBI segment-buffer pool";
             q_batch = 1;
             q_bound = Cap "nbi-pool";
           });
      (* The rx-gro sequencer's reorder buffer is unbounded in code;
         the bounds pass proves its occupancy is capped by the NBI
         pool (every queued summary pins a segment buffer). *)
      e "preproc" "gro" "rx-gro" ~lookahead:island_hop
        (Queue
           {
             q_capacity = Unbounded;
             q_overflow = Reject;
             q_batch = b.Config.b_gro;
             q_bound = Cap "nbi-pool";
           });
      flow "gro" "protocol" "rx-proto" ~lookahead:island_hop;
      flow "protocol" "postproc" "rx-post";
      flow "postproc" "dma" "payload-dma" ~lookahead:island_hop;
      (* The PCIe DMA engine: per-queue in-flight window; issuing
         blocks when full, completions are unconditional and FIFO. *)
      e "dma" "dma" "pcie-dma"
        ~drain:"PCIe completions are unconditional and FIFO per queue"
        (Credit { cr_tokens = p.Nfp.Params.dma_inflight });
      (* Notification + ACK leave only after the payload DMA lands:
         this ordered edge is the declared obligation the
         notify_before_payload / skip_notify_dma sabotage violate at
         runtime (the declaration stays intact — dynamic-only). *)
      flow "dma" "ctx" "ctx";
      e "ctx" "ctx" "arx-accum"
        ~drain:"batch_delay timer flushes partial batches"
        (Queue
           {
             q_capacity = Bounded b.Config.b_notify;
             q_overflow = Reject;
             q_batch = b.Config.b_notify;
             q_bound = Const b.Config.b_notify;
           });
      flow "ctx" "host" "arx-notify"
        ~lookahead:p.Nfp.Params.pcie_base_latency;
      (* Control-path frames to the CP: unguarded they are bounded
         only by the NBI pool; FlexGuard bounds them explicitly and
         names the shed policy. *)
      e "nbi" "host" "cp-queue" ~lookahead:p.Nfp.Params.pcie_base_latency
        (Queue
           {
             q_capacity =
               (if gc.Config.g_on && gc.Config.g_cp_queue > 0 then
                  Bounded gc.Config.g_cp_queue
                else Unbounded);
             q_overflow =
               (if gc.Config.g_on && gc.Config.g_cp_queue > 0 then
                  Drop "newest SYNs first, never established-flow segments"
                else Reject);
             q_batch = 1;
             q_bound = Cap "nbi-pool";
           });
      (* TX / HC: ATX doorbells → ctx drain (gated by the HC
         descriptor pool) → protocol → scheduler dispatch. *)
      e "host" "ctx" "atx" ~lookahead:p.Nfp.Params.mmio_latency
        (Queue
           {
             q_capacity = Bounded 512;
             q_overflow = Backpressure;
             q_batch = b.Config.b_doorbell;
             q_bound = Cap "atx";
           });
      e "ctx" "protocol" "hc-pool" ~lookahead:island_hop
        (Credit { cr_tokens = 128 });
      flow "ctx" "protocol" "hc-dispatch" ~lookahead:island_hop;
      flow ~ordered:false "sched" "preproc" "tx-dispatch"
        ~lookahead:island_hop;
      e "sched" "nbi" "seg-credits" (Credit { cr_tokens = seg_credits });
      flow ~ordered:false "postproc" "sched" "sched-update"
        ~lookahead:island_hop;
      (* TX reorder at the NBI: data descriptors are credit-gated,
         ACK egress is pinned to RX segments in flight. *)
      e "dma" "nbi" "tx-gro"
        (Queue
           {
             q_capacity = Unbounded;
             q_overflow = Reject;
             q_batch = b.Config.b_tso;
             q_bound = Sum [ Tokens "seg-credits"; Cap "nbi-pool" ];
           });
    ]
  in
  (* FlexScale: replicate the per-flow-group stages across shard
     islands. Each shard k gets its own copy of preproc/protocol/
     postproc on [Lp_island k] (slots split evenly, rounded up) and
     its own copies of every edge touching a sharded endpoint; edges
     whose endpoints are both sharded pair same-k, because flow-group
     steering keeps a segment inside one shard end to end. Shard 0
     keeps the unsuffixed names and labels so bound expressions
     ([Cap "nbi-pool"]) and serialization-domain realization
     ([Serial_flow_group "rx-gro"]) keep resolving; replicas append
     ["#k"], which {!Prove}'s sharding pass parses back into replica
     families. At one shard the graph is exactly the unsharded one. *)
  let shards = Flow_group.shards_of config.Config.scale in
  let nodes, edges =
    if shards <= 1 then (nodes, edges)
    else begin
      let sharded = [ "preproc"; "protocol"; "postproc" ] in
      let is_sharded name = List.mem name sharded in
      let suffix name k =
        if k = 0 then name else name ^ "#" ^ string_of_int k
      in
      let nodes =
        List.concat_map
          (fun n ->
            if is_sharded n.n_name then
              List.init shards (fun k ->
                  {
                    n with
                    n_name = suffix n.n_name k;
                    n_lp = Lp_island k;
                    n_slots = max 1 ((n.n_slots + shards - 1) / shards);
                  })
            else [ n ])
          nodes
      in
      let edges =
        List.concat_map
          (fun e ->
            let ss = is_sharded e.e_src and sd = is_sharded e.e_dst in
            if not (ss || sd) then [ e ]
            else
              List.init shards (fun k ->
                  {
                    e with
                    e_src = (if ss then suffix e.e_src k else e.e_src);
                    e_dst = (if sd then suffix e.e_dst k else e.e_dst);
                    e_label = suffix e.e_label k;
                  }))
          edges
      in
      (nodes, edges)
    end
  in
  { g_name = "flextoe-builtin"; g_nodes = nodes; g_edges = edges }

(* --- DOT export ------------------------------------------------------- *)

let dot_escape s =
  String.concat "\\\"" (String.split_on_char '"' s)

let bound_to_string b =
  let rec go = function
    | Const n -> string_of_int n
    | Slots s -> "slots(" ^ s ^ ")"
    | Tokens l -> "tokens(" ^ l ^ ")"
    | Cap l -> "cap(" ^ l ^ ")"
    | Sum bs -> "(" ^ String.concat " + " (List.map go bs) ^ ")"
    | Prod bs -> "(" ^ String.concat " * " (List.map go bs) ^ ")"
    | Min_of bs -> "min(" ^ String.concat ", " (List.map go bs) ^ ")"
    | Unbounded_by s -> "unbounded-by:" ^ s
  in
  go b

let capacity_to_string = function
  | Bounded n -> string_of_int n
  | Unbounded -> "∞"

let to_dot g =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph \"%s\" {\n" (dot_escape g.g_name);
  pf "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  List.iter
    (fun n ->
      let d = Effects.domain_name n.n_contract.Effects.c_domain in
      pf "  \"%s\" [label=\"%s\\n%s | slots=%d | lp=%s%s\"];\n" n.n_name
        n.n_name d n.n_slots (lp_name n.n_lp)
        (if n.n_serialized_writes then "" else " | EARLY-RELEASE"))
    g.g_nodes;
  List.iter
    (fun e ->
      let label, style =
        match e.e_kind with
        | Dataflow d ->
            ( Printf.sprintf "%s%s" e.e_label
                (if d.df_ordered then " [ord]" else ""),
              "solid" )
        | Queue q ->
            ( Printf.sprintf "%s cap=%s batch=%d" e.e_label
                (capacity_to_string q.q_capacity)
                q.q_batch,
              "bold" )
        | Credit c ->
            (Printf.sprintf "%s credits=%d" e.e_label c.cr_tokens, "dashed")
      in
      let label =
        if e.e_lookahead > Sim.Time.zero then
          Format.asprintf "%s la=%a" label Sim.Time.pp e.e_lookahead
        else label
      in
      pf "  \"%s\" -> \"%s\" [label=\"%s\", style=%s%s];\n" e.e_src e.e_dst
        (dot_escape label) style
        (match e.e_drain with
        | Some _ -> ", color=darkgreen"
        | None -> ""))
    g.g_edges;
  pf "}\n";
  Buffer.contents buf
