(** FlexProve graph IR: an explicit typed model of the datapath.

    The datapath's safety argument lives in its wiring — which stages
    exist, what serializes them, which queues sit between them, which
    credits gate them. [Datapath.create] builds that wiring
    imperatively; this module states it as data so the FlexProve
    passes ({!Prove}) can check an arbitrary stage graph, not just the
    built-in one. {!builtin} is the extraction of the built-in
    pipeline, parameterized by {!Config.t} (capacities, batch degrees,
    guard bounds) and optionally by the as-built sabotage
    {!defects}. *)

type capacity = Bounded of int | Unbounded

(** What happens when a queue is offered more than it can hold.
    [Backpressure] blocks the producer (occupancy-safe, feeds the
    deadlock pass); [Drop] sheds by a named policy (safe by design);
    [Reject] means overflow would be a bug — the bounds pass must
    prove worst-case occupancy fits the capacity. *)
type overflow = Backpressure | Drop of string | Reject

(** Worst-case-occupancy expressions, evaluated by the bounds pass
    against the graph itself: [Slots s] is stage [s]'s concurrent
    execution slots, [Tokens l] / [Cap l] the token count / capacity
    of the edge labelled [l]. [Unbounded_by s] declares open-loop
    inflow limited only by [s] — never acceptable on a [Reject]
    queue. *)
type bound =
  | Const of int
  | Slots of string
  | Tokens of string
  | Cap of string
  | Sum of bound list
  | Prod of bound list
  | Min_of of bound list
  | Unbounded_by of string

(** Logical-process assignment for the parallel simulator's
    partition ({!Sim.Engine.Cluster}): which LP a stage's executions
    live on. Per-flow-group pipeline stages carry the island class
    [Lp_island g] — the builtin extraction uses the representative
    index 0, asserting that flow-group steering keeps a segment's
    pipeline processing inside one island. Service-island hardware
    (GRO sequencer, DMA, context queues, scheduler, NBI) is
    [Lp_service]; libTOE and the applications are [Lp_host]. *)
type lp = Lp_host | Lp_service | Lp_island of int

val lp_name : lp -> string

type node = {
  n_name : string;
  n_contract : Effects.contract;
  n_slots : int;  (** Concurrent execution slots (replicas × threads). *)
  n_serialized_writes : bool;
      (** Writes happen inside the serialization domain's critical
          section; [false] models an early-release defect. *)
  n_lp : lp;  (** Logical process this stage's executions live on. *)
}

type edge_kind =
  | Dataflow of { df_ordered : bool }
      (** Work handed downstream; [df_ordered] = the hand-off
          preserves completion order (FIFO / sequencer / waits for
          DMA completion). *)
  | Queue of {
      q_capacity : capacity;
      q_overflow : overflow;
      q_batch : int;  (** Units coalesced per hand-off. *)
      q_bound : bound;  (** Worst-case occupancy. *)
    }
  | Credit of { cr_tokens : int }
      (** Backpressure loop: [src]'s execution is gated on tokens
          that only [dst]'s progress returns. *)

type edge = {
  e_src : string;
  e_dst : string;
  e_label : string;
  e_kind : edge_kind;
  e_drain : string option;
      (** For blocking edges: why the block always clears without
          help from the blocked side (timer flush, unconditional
          completion). [None] = clearing needs the far side to make
          progress — such an edge cannot break a deadlock cycle. *)
  e_lookahead : Sim.Time.t;
      (** Minimum hand-off latency of this edge: the conservative
          parallel simulator may claim it as lookahead on the channel
          realizing the edge. The partition pass requires it positive
          on every cross-LP edge; [Sim.Time.zero] is expected on
          edges whose endpoints share an LP. *)
}

type t = { g_name : string; g_nodes : node list; g_edges : edge list }

val find_node : t -> string -> node option
val find_edge : t -> string -> edge option
val edge_capacity : edge -> capacity option
val edge_tokens : edge -> int option

val is_dataflow : edge -> bool
(** Edges a unit of work actually travels (queues and dataflow, not
    credit returns), used for ordering-path searches. *)

val is_ordered : edge -> bool
(** Does the edge preserve per-flow completion order? Queues are FIFO
    by construction; dataflow edges declare it. *)

val is_blocking : edge -> bool
(** Blocking edges: the source can stall until the far side clears
    them. These form the wait-for graph of the deadlock pass. *)

val edge_lps : t -> edge -> (lp * lp) option
(** The LPs of an edge's endpoints, when both resolve. *)

val is_cross_lp : t -> edge -> bool
(** Does the edge cross an LP boundary? [false] when an endpoint is
    missing (well-formedness reports that separately). *)

(** The as-built defects that change the declared wiring or
    footprints: the [Datapath.sabotage] flags minus the two notify
    ordering defects, which leave the declared completion edge intact
    and are detectable only by FlexSan at runtime. *)
type defects = {
  d_no_lock : bool;  (** Protocol stage loses its Serial_conn domain. *)
  d_early_release : bool;
      (** Protocol writes escape the per-conn critical section. *)
  d_preproc_reads_proto : bool;
  d_postproc_writes_conn : bool;
}

val no_defects : defects

val builtin :
  ?defects:defects ->
  config:Config.t ->
  contracts:Effects.contract list ->
  unit ->
  t
(** Extraction of the built-in pipeline: mirrors the wiring of
    [Datapath.create] — same stages and serialization domains as
    [Datapath.builtin_stages], queue capacities from the same sources
    ([Nfp.Params], the ATX/HC ring sizes, scheduler credits), batch
    degrees from [Config.batch], CP-queue bound from [Config.guard].
    Raises [Invalid_argument] if [contracts] lacks a builtin stage. *)

val bound_to_string : bound -> string
val capacity_to_string : capacity -> string

val to_dot : t -> string
(** Graphviz rendering: queues bold (capacity/batch), credits dashed,
    draining edges dark green, early-release stages flagged. *)
