(* FlexGuard: the overload-control policy engine (DESIGN.md §13).

   Owns the mechanism state the control plane and data path consult
   under churn: the SYN-cookie secret, the TIME_WAIT table, the event
   counters, and the per-stage queue-depth high-water marks. The
   module is deliberately simulator-light — decisions are pure
   functions of explicit [now] arguments — so the same policy core
   replays offline under `flexlint churn`. *)

type tw_entry = {
  tw_flow : Tcp.Flow.t;
  tw_snd_nxt : Tcp.Seq32.t;  (* our seq after the FIN *)
  tw_rcv_nxt : Tcp.Seq32.t;  (* peer seq after their FIN *)
  tw_deadline : Sim.Time.t;
  tw_born : int;  (* insertion order, for oldest-first recycling *)
}

type t = {
  g : Config.guard;
  secret : int;
  tw : tw_entry Tcp.Flow.Tbl.t;
  mutable tw_births : int;
  counters : (string, int ref) Hashtbl.t;
  peaks : (string, int ref) Hashtbl.t;
  mutable on_count : (string -> unit) option;
}

let create ~g ~secret () =
  {
    g;
    secret = secret land 0x3FFFFFFF;
    tw = Tcp.Flow.Tbl.create 256;
    tw_births = 0;
    counters = Hashtbl.create 32;
    peaks = Hashtbl.create 8;
    on_count = None;
  }

let config t = t.g
let set_on_count t f = t.on_count <- Some f

let count t name =
  (match Hashtbl.find_opt t.counters name with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counters name (ref 1));
  match t.on_count with Some f -> f name | None -> ()

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let established_shed t = counter t "established_shed"

(* --- Queue-depth high-water marks ----------------------------------- *)

let note_depth t ~stage depth =
  match Hashtbl.find_opt t.peaks stage with
  | Some r -> if depth > !r then r := depth
  | None -> Hashtbl.replace t.peaks stage (ref depth)

let peak_depth t ~stage =
  match Hashtbl.find_opt t.peaks stage with Some r -> !r | None -> 0

let peak_depths t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.peaks []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* --- SYN cookies ------------------------------------------------------ *)

(* A cookie ISN folds the 4-tuple, a per-node secret and a coarse time
   epoch through an avalanche mix. Validation accepts the current and
   previous epoch, so a cookie stays good for one to two epochs — the
   stateless analogue of the bounded SYN-ACK retransmission window. *)

let mix h v =
  let h = (h lxor v) * 0x9E3779B1 land max_int in
  (h lxor (h lsr 16)) land max_int

let cookie_epoch_len t =
  if t.g.Config.g_time_wait > Sim.Time.zero then t.g.Config.g_time_wait
  else Sim.Time.ms 4

let cookie_of_epoch t ~flow ~epoch =
  let open Tcp.Flow in
  let h = mix t.secret epoch in
  let h = mix h flow.local_ip in
  let h = mix h flow.remote_ip in
  let h = mix h ((flow.local_port lsl 16) lor flow.remote_port) in
  Tcp.Seq32.of_int (h land 0x3FFFFFFF)

let cookie_isn t ~now ~flow =
  cookie_of_epoch t ~flow ~epoch:(now / cookie_epoch_len t)

let cookie_check t ~now ~flow ~isn =
  let epoch = now / cookie_epoch_len t in
  Tcp.Seq32.diff isn (cookie_of_epoch t ~flow ~epoch) = 0
  || (epoch > 0
     && Tcp.Seq32.diff isn (cookie_of_epoch t ~flow ~epoch:(epoch - 1)) = 0)

(* --- TIME_WAIT table -------------------------------------------------- *)

let tw_length t = Tcp.Flow.Tbl.length t.tw

let tw_find t ~flow =
  match Tcp.Flow.Tbl.find_opt t.tw flow with
  | Some e -> Some (e.tw_snd_nxt, e.tw_rcv_nxt)
  | None -> None

let tw_remove t ~flow = Tcp.Flow.Tbl.remove t.tw flow

let tw_add t ~now ~flow ~snd_nxt ~rcv_nxt =
  let cap = t.g.Config.g_time_wait_max in
  if cap > 0 && tw_length t >= cap && not (Tcp.Flow.Tbl.mem t.tw flow) then begin
    (* Pressure: recycle the oldest entry so teardown can't be wedged
       by a full table. *)
    let oldest =
      Tcp.Flow.Tbl.fold
        (fun _ e acc ->
          match acc with
          | Some o when o.tw_born <= e.tw_born -> acc
          | _ -> Some e)
        t.tw None
    in
    match oldest with
    | Some o ->
        Tcp.Flow.Tbl.remove t.tw o.tw_flow;
        count t "tw_recycled_pressure"
    | None -> ()
  end;
  t.tw_births <- t.tw_births + 1;
  Tcp.Flow.Tbl.replace t.tw flow
    {
      tw_flow = flow;
      tw_snd_nxt = snd_nxt;
      tw_rcv_nxt = rcv_nxt;
      tw_deadline = now + t.g.Config.g_time_wait;
      tw_born = t.tw_births;
    };
  count t "tw_installed"

(* A fresh SYN may take over a TIME_WAIT 4-tuple only when its ISN is
   strictly beyond the old connection's final receive point —
   wraparound-aware, so a recycled port with a wrapped sequence space
   still disambiguates (RFC 6191 flavor). *)
let tw_syn_acceptable t ~flow ~isn =
  match Tcp.Flow.Tbl.find_opt t.tw flow with
  | None -> true
  | Some e -> Tcp.Seq32.gt isn e.tw_rcv_nxt

let tw_reap t ~now =
  let dead =
    Tcp.Flow.Tbl.fold
      (fun flow e acc -> if now >= e.tw_deadline then flow :: acc else acc)
      t.tw []
  in
  List.iter
    (fun flow ->
      Tcp.Flow.Tbl.remove t.tw flow;
      count t "tw_expired")
    dead;
  List.length dead

(* --- Offline admission replay (flexlint churn) ------------------------ *)

type churn_event =
  | Ev_syn of int  (* connection attempt [id] arrives *)
  | Ev_ack of int  (* handshake ACK for [id] *)
  | Ev_seg of int  (* established-flow segment for [id] *)
  | Ev_close of int  (* both directions of [id] closed *)

type ledger = {
  lg_syns : int;
  lg_accepted : int;  (* entered the stateful backlog *)
  lg_cookies : int;  (* answered statelessly *)
  lg_shed : int;  (* SYNs dropped by backlog/admission pressure *)
  lg_established : int;  (* handshakes completed *)
  lg_segments : int;  (* established-flow segments passed *)
  lg_established_shed : int;  (* MUST be 0: the policy never sheds these *)
  lg_tw_recycled : int;  (* TIME_WAIT entries recycled under pressure *)
  lg_peak_backlog : int;
  lg_peak_established : int;
}

(* Replays the admission policy over an abstract trace: the same
   decision order as the live control plane (TIME_WAIT check, then
   backlog/admission, then cookie fallback), with logical time = event
   index and a TIME_WAIT lifetime of [tw_ticks] events. *)
let replay ?(tw_ticks = 1024) (g : Config.guard) events =
  let pending = Hashtbl.create 64 in  (* id -> () *)
  let cookie_sent = Hashtbl.create 64 in
  let established = Hashtbl.create 64 in
  let tw = Hashtbl.create 64 in  (* id -> expiry tick *)
  let lg =
    ref
      {
        lg_syns = 0;
        lg_accepted = 0;
        lg_cookies = 0;
        lg_shed = 0;
        lg_established = 0;
        lg_segments = 0;
        lg_established_shed = 0;
        lg_tw_recycled = 0;
        lg_peak_backlog = 0;
        lg_peak_established = 0;
      }
  in
  List.iteri
    (fun tick ev ->
      (* Expire TIME_WAIT entries. *)
      let dead =
        Hashtbl.fold
          (fun id exp acc -> if tick >= exp then id :: acc else acc)
          tw []
      in
      List.iter (Hashtbl.remove tw) dead;
      let l = !lg in
      match ev with
      | Ev_syn id ->
          let l = { l with lg_syns = l.lg_syns + 1 } in
          let tw_blocked = Hashtbl.mem tw id in
          let backlog_full =
            g.Config.g_syn_backlog > 0
            && Hashtbl.length pending >= g.Config.g_syn_backlog
          in
          let table_full =
            g.Config.g_max_conns > 0
            && Hashtbl.length established + Hashtbl.length pending
               >= g.Config.g_max_conns
          in
          lg :=
            if tw_blocked then
              (* Old incarnation still in TIME_WAIT: the abstract trace
                 carries no ISN, so treat the SYN as a pressure recycle
                 (the live path compares ISNs). *)
              begin
                Hashtbl.remove tw id;
                Hashtbl.replace pending id ();
                {
                  l with
                  lg_tw_recycled = l.lg_tw_recycled + 1;
                  lg_accepted = l.lg_accepted + 1;
                }
              end
            else if table_full then { l with lg_shed = l.lg_shed + 1 }
            else if backlog_full then
              if g.Config.g_syn_cookies then begin
                Hashtbl.replace cookie_sent id ();
                { l with lg_cookies = l.lg_cookies + 1 }
              end
              else { l with lg_shed = l.lg_shed + 1 }
            else begin
              Hashtbl.replace pending id ();
              { l with lg_accepted = l.lg_accepted + 1 }
            end;
          lg :=
            {
              !lg with
              lg_peak_backlog = max !lg.lg_peak_backlog (Hashtbl.length pending);
            }
      | Ev_ack id ->
          if Hashtbl.mem pending id || Hashtbl.mem cookie_sent id then begin
            Hashtbl.remove pending id;
            Hashtbl.remove cookie_sent id;
            Hashtbl.replace established id ();
            lg :=
              {
                l with
                lg_established = l.lg_established + 1;
                lg_peak_established =
                  max l.lg_peak_established (Hashtbl.length established);
              }
          end
      | Ev_seg id ->
          (* The shed policy never touches established-flow segments;
             a segment for a flow we admitted always passes. *)
          if Hashtbl.mem established id then
            lg := { l with lg_segments = l.lg_segments + 1 }
      | Ev_close id ->
          if Hashtbl.mem established id then begin
            Hashtbl.remove established id;
            if g.Config.g_time_wait > Sim.Time.zero then begin
              (if
                 g.Config.g_time_wait_max > 0
                 && Hashtbl.length tw >= g.Config.g_time_wait_max
               then
                 let oldest =
                   Hashtbl.fold
                     (fun id' exp acc ->
                       match acc with
                       | Some (_, e) when e <= exp -> acc
                       | _ -> Some (id', exp))
                     tw None
                 in
                 match oldest with
                 | Some (id', _) ->
                     Hashtbl.remove tw id';
                     lg := { !lg with lg_tw_recycled = !lg.lg_tw_recycled + 1 }
                 | None -> ());
              Hashtbl.replace tw id (tick + tw_ticks)
            end
          end)
    events;
  !lg

let pp_ledger ppf l =
  Format.fprintf ppf
    "@[<v>syns         %8d@,\
     accepted     %8d@,\
     cookies      %8d@,\
     shed         %8d@,\
     established  %8d@,\
     segments     %8d@,\
     est. shed    %8d@,\
     tw recycled  %8d@,\
     peak backlog %8d@,\
     peak estab.  %8d@]"
    l.lg_syns l.lg_accepted l.lg_cookies l.lg_shed l.lg_established
    l.lg_segments l.lg_established_shed l.lg_tw_recycled l.lg_peak_backlog
    l.lg_peak_established
