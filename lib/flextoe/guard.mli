(** FlexGuard: the overload-control policy engine (DESIGN.md §13).

    Holds the mechanism state consulted by the control plane and the
    data path under connection churn: the SYN-cookie secret, the
    TIME_WAIT table, the accept/shed/evict/reap counters, and the
    per-stage queue-depth high-water marks. Created by the data path
    when {!Config.guard} has [g_on] set; absent (a [None] option, one
    branch per hook) otherwise.

    Decisions are pure functions of explicit [now] arguments so the
    same policy core replays offline under [flexlint churn]. *)

type t

val create : g:Config.guard -> secret:int -> unit -> t
val config : t -> Config.guard

(** {1 Counters}

    Every guard event increments a named counter; with FlexScope
    enabled the data path mirrors each increment into the metrics
    snapshot under ["guard/<name>"]. *)

val count : t -> string -> unit
val counter : t -> string -> int
val counters : t -> (string * int) list
(** Sorted by name. *)

val established_shed : t -> int
(** The one counter that must stay 0: established-flow segments
    dropped by the shed policy. *)

(** {1 Queue-depth high-water marks} *)

val note_depth : t -> stage:string -> int -> unit
val peak_depth : t -> stage:string -> int
val peak_depths : t -> (string * int) list

(** {1 SYN cookies}

    A cookie ISN folds the 4-tuple, a per-node secret and a coarse
    time epoch; validation accepts the current and previous epoch. *)

val cookie_isn : t -> now:Sim.Time.t -> flow:Tcp.Flow.t -> Tcp.Seq32.t
val cookie_check :
  t -> now:Sim.Time.t -> flow:Tcp.Flow.t -> isn:Tcp.Seq32.t -> bool

(** {1 TIME_WAIT table} *)

val tw_add :
  t ->
  now:Sim.Time.t ->
  flow:Tcp.Flow.t ->
  snd_nxt:Tcp.Seq32.t ->
  rcv_nxt:Tcp.Seq32.t ->
  unit
(** Install a TIME_WAIT entry; at [g_time_wait_max] capacity the
    oldest entry is recycled (counted). *)

val tw_find : t -> flow:Tcp.Flow.t -> (Tcp.Seq32.t * Tcp.Seq32.t) option
(** [(snd_nxt, rcv_nxt)] of the dead incarnation, if any. *)

val tw_remove : t -> flow:Tcp.Flow.t -> unit

val tw_syn_acceptable : t -> flow:Tcp.Flow.t -> isn:Tcp.Seq32.t -> bool
(** May a fresh SYN with this ISN take over the 4-tuple? True when no
    TIME_WAIT entry exists or the ISN is strictly beyond the old
    incarnation's final receive point (Seq32 wraparound-aware). *)

val tw_reap : t -> now:Sim.Time.t -> int
(** Expire entries past their deadline; returns how many. *)

val tw_length : t -> int

(** {1 Offline admission replay (flexlint churn)} *)

type churn_event =
  | Ev_syn of int
  | Ev_ack of int
  | Ev_seg of int
  | Ev_close of int

type ledger = {
  lg_syns : int;
  lg_accepted : int;
  lg_cookies : int;
  lg_shed : int;
  lg_established : int;
  lg_segments : int;
  lg_established_shed : int;  (** Must be 0. *)
  lg_tw_recycled : int;
  lg_peak_backlog : int;
  lg_peak_established : int;
}

val replay : ?tw_ticks:int -> Config.guard -> churn_event list -> ledger
(** Replay the admission policy over an abstract churn trace, with
    logical time = event index and TIME_WAIT lifetime [tw_ticks]
    events (default 1024). Decision order matches the live control
    plane: TIME_WAIT check, then admission cap, then backlog (cookie
    fallback), and established-flow segments are never shed. *)

val pp_ledger : Format.formatter -> ledger -> unit

(**/**)

val set_on_count : t -> (string -> unit) -> unit
(** Wired by the data path to mirror counter increments into
    FlexScope. *)
