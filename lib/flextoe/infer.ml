(** FlexInfer: source-level effect inference over the real stage
    sources, closing FlexProve's trusted-contract gap.

    FlexProve ({!Prove}) proves the pipeline interference-free — but
    only over the hand-declared {!Effects.contract}s. Nothing checked
    declaration against implementation: a stage that silently grows a
    new shared-state write invalidates every downstream proof without
    any tool noticing. FlexInfer parses the actual stage sources with
    compiler-libs and closes that gap with three analyses:

    - {b Footprint inference}: a syntactic access-path walk over the
      stage entry functions in [datapath.ml], tracking which
      expressions denote the datapath record, the per-connection
      state and its partitions, the connection tables, and the ATX
      rings. Accesses are recognized two ways: by {e witness} — any
      call carrying both a literal [Effects.<Obj>] and a literal
      [Effects.Read]/[Effects.Write] argument (the [sa]/[San.access]
      idiom) — and by {e mapping} — known module operations
      ([Hashtbl.*] on the connection table, [Nfp.Lookup.*],
      [Host.Payload_buf.*], [Scheduler.*], [Nfp.Ring.*] on ATX
      rings, [Tcp.Reassembly.*]) plus field reads/writes on the
      partition records and the [st_*] statistics counters. Calls
      into the same file are expanded transitively; calls into the
      declared helper modules ([Protocol], [Control_plane]) are
      expanded crossing at most one module boundary; stage entry
      points (pipeline hand-offs) and the run-to-completion baseline
      are never expanded into a caller's footprint. The inferred
      footprint is diffed against the declared contract: an
      inferred-but-undeclared access is an error (the contract is
      unsound and FlexProve's proofs are void), a
      declared-but-never-inferred access is a warning (contract
      drift).

    - {b Seq32 wrap-safety lint}: [Tcp.Seq32.t = int], so structural
      [<]/[compare]/[Stdlib.max] on sequence numbers typechecks and
      breaks only at the 2^32 wrap. The lint seeds Seq32-typed
      fields and function results from [.mli] signatures and [.ml]
      type declarations, flows the taint through lets and matches,
      and rejects structural comparison on tainted values. A
      [(* flexinfer: seq32-exempt *)] comment on the same or the
      preceding line exempts a deliberate use.

    - {b Stage hygiene lint}: stage bodies must not block (I/O,
      [Unix], threads) and should not allocate containers per
      segment; [(* flexinfer: alloc-exempt *)] marks deliberate
      amortized allocations.

    Soundness caveats (documented in DESIGN.md §15): the analysis is
    syntactic. It sees one module boundary of helper calls, does not
    track values through containers or higher-order escapes beyond
    literal closures, and partial-evaluates only the [t.sabotage.sb_*]
    guards. It is exact on the current pipeline by construction (the
    golden test pins the clean-tree diff to empty) and is a tripwire,
    not a verifier: FlexSan layer 2 remains the runtime authority. *)

module E = Effects

type severity = Sev_error | Sev_warning

let severity_name = function Sev_error -> "error" | Sev_warning -> "warning"

type finding = {
  f_rule : string;
  f_severity : severity;
  f_stage : string option;  (** stage the finding is about, if any *)
  f_file : string;
  f_line : int;
  f_msg : string;
}

let finding_to_string f =
  Printf.sprintf "%s:%d: [%s] %s%s" f.f_file f.f_line
    (severity_name f.f_severity)
    (match f.f_stage with Some s -> s ^ ": " | None -> "")
    f.f_msg

type footprint = {
  fp_stage : string;
  fp_reads : E.obj list;
  fp_writes : E.obj list;
}

let errors fs = List.filter (fun f -> f.f_severity = Sev_error) fs

(* --- Parsing -------------------------------------------------------- *)

let parse_with parser path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lexbuf = Lexing.from_channel ic in
        Lexing.set_filename lexbuf path;
        parser lexbuf)
  with
  | ast -> Ok ast
  | exception Sys_error msg -> Error msg
  | exception exn -> Error (path ^ ": " ^ Printexc.to_string exn)

let parse_impl path = parse_with Parse.implementation path
let parse_intf path = parse_with Parse.interface path

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
let file_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_fname

let module_of_path path =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename path))

(* Longident helpers. [Lapply] never appears in the sources we
   analyze; flatten would raise on it, so guard. *)
let lid_parts (l : Longident.t) =
  match l with
  | Longident.Lapply _ -> []
  | _ -> ( try Longident.flatten l with _ -> [])

let lid_last l = match List.rev (lid_parts l) with x :: _ -> Some x | [] -> None

(* Last two components: ("", f) for an unqualified [f]. *)
let lid_last2 l =
  match List.rev (lid_parts l) with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

(* Exemption comments. The parser drops comments, so exemptions are
   matched textually: the marker on the finding's line or the line
   above suppresses it. *)
let file_lines path =
  match open_in_bin path with
  | exception Sys_error _ -> [||]
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          Array.of_list (List.rev !lines))

let contains_sub line sub =
  let ll = String.length line and sl = String.length sub in
  let rec go i = i + sl <= ll && (String.sub line i sl = sub || go (i + 1)) in
  sl > 0 && go 0

let exempted lines marker ln =
  let has i = i >= 1 && i <= Array.length lines && contains_sub lines.(i - 1) marker in
  has ln || has (ln - 1)

(* ==================================================================== *)
(* Footprint inference                                                  *)
(* ==================================================================== *)

let obj_constructors =
  [
    ("Conn_pre", E.Conn_pre);
    ("Conn_proto", E.Conn_proto);
    ("Reasm", E.Reasm);
    ("Conn_post", E.Conn_post);
    ("Rx_payload", E.Rx_payload);
    ("Tx_payload", E.Tx_payload);
    ("Desc_ring", E.Desc_ring);
    ("Conn_db", E.Conn_db);
    ("Sched_state", E.Sched_state);
    ("Global_stats", E.Global_stats);
  ]

(* Abstract values the walker tracks: just enough structure to resolve
   the access paths the datapath actually uses. *)
type tag =
  | T_dp  (** the [Datapath.t] record *)
  | T_conn  (** [Conn_state.t] *)
  | T_conn_opt  (** [Conn_state.t option] *)
  | T_pre
  | T_proto
  | T_post  (** connection-state partitions *)
  | T_reasm  (** [Tcp.Reassembly.t] (proto partition field) *)
  | T_conns_tbl  (** [t.conns] — the Conn_db hashtable *)
  | T_conn_db  (** [t.conn_db] — the Nfp.Lookup flow table *)
  | T_atx_arr  (** [t.atx] *)
  | T_atx_ring  (** one ATX descriptor ring *)
  | T_rxbuf
  | T_txbuf  (** host payload buffers *)
  | T_sabotage
  | T_bool of bool  (** statically-known boolean (sabotage flags) *)
  | T_none

type fn_info = {
  fn_params : (Asttypes.arg_label * Parsetree.pattern) list;
  fn_body : Parsetree.expression;
}

(* A module scope: where unqualified calls resolve, and whether the
   walk has already crossed a module boundary (at most one helper
   module deep). *)
type mod_scope = {
  m_name : string;
  m_fns : (string, fn_info) Hashtbl.t;
  m_crossed : bool;
}

type acc = {
  mutable ac_reads : (E.obj * string * int) list;  (* obj, file, line *)
  mutable ac_writes : (E.obj * string * int) list;
  mutable ac_findings : finding list;
}

type wctx = {
  w_flags : string list;  (* sabotage record fields evaluated to true *)
  w_stage : string;
  w_entries : string list;  (* stage entries: never expanded (hand-offs) *)
  w_excluded : string list;  (* rtc baseline &c.: never expanded *)
  w_helpers : (string * (string, fn_info) Hashtbl.t) list;
  w_acc : acc;
  w_lines : (string, string array) Hashtbl.t;  (* file -> source lines *)
  mutable w_budget : int;  (* expansion fuel *)
}

let record_access ctx kind obj (loc : Location.t) =
  let entry = (obj, file_of loc, line_of loc) in
  let mem l = List.exists (fun (o, _, _) -> o = obj) l in
  match kind with
  | E.Read ->
      if not (mem ctx.w_acc.ac_reads) then
        ctx.w_acc.ac_reads <- entry :: ctx.w_acc.ac_reads
  | E.Write ->
      if not (mem ctx.w_acc.ac_writes) then
        ctx.w_acc.ac_writes <- entry :: ctx.w_acc.ac_writes

(* Stages reach shared helpers along several expansion paths; one
   finding per (rule, site) is enough. *)
let add_finding ctx f =
  if
    not
      (List.exists
         (fun g ->
           g.f_rule = f.f_rule && g.f_file = f.f_file && g.f_line = f.f_line)
         ctx.w_acc.ac_findings)
  then ctx.w_acc.ac_findings <- f :: ctx.w_acc.ac_findings

let lines_for ctx file =
  match Hashtbl.find_opt ctx.w_lines file with
  | Some l -> l
  | None ->
      let l = file_lines file in
      Hashtbl.replace ctx.w_lines file l;
      l

(* --- Collecting top-level functions --------------------------------- *)

let rec strip_fun acc (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (lbl, dflt, pat, body) ->
      ignore dflt;
      strip_fun ((lbl, pat) :: acc) body
  | Pexp_newtype (_, body) -> strip_fun acc body
  | Pexp_constraint (body, _) -> strip_fun acc body
  | _ -> (List.rev acc, e)

let collect_fns (str : Parsetree.structure) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match vb.pvb_pat.ppat_desc with
              | Ppat_var name -> (
                  match strip_fun [] vb.pvb_expr with
                  | [], _ -> ()  (* not a function *)
                  | params, body ->
                      Hashtbl.replace tbl name.txt
                        { fn_params = params; fn_body = body })
              | _ -> ())
            vbs
      | _ -> ())
    str;
  tbl

(* --- Pattern binding ------------------------------------------------- *)

let rec pat_vars (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Ppat_var v -> [ v.txt ]
  | Ppat_alias (p, v) -> v.txt :: pat_vars p
  | Ppat_tuple ps -> List.concat_map pat_vars ps
  | Ppat_construct (_, Some (_, p)) -> pat_vars p
  | Ppat_variant (_, Some p) -> pat_vars p
  | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> pat_vars p) fields
  | Ppat_array ps -> List.concat_map pat_vars ps
  | Ppat_or (a, b) -> pat_vars a @ pat_vars b
  | Ppat_constraint (p, _) -> pat_vars p
  | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p -> pat_vars p
  | _ -> []

(* Bind a pattern against an abstract value. Only the shapes the
   datapath uses carry information: [Some cs] on a connection option
   projects to the connection tag; everything else binds opaque. *)
let rec bind_pat env (p : Parsetree.pattern) tag =
  match p.ppat_desc with
  | Ppat_var v -> (v.txt, tag) :: env
  | Ppat_alias (p, v) -> bind_pat ((v.txt, tag) :: env) p tag
  | Ppat_constraint (p, _) -> bind_pat env p tag
  | Ppat_construct (lid, Some (_, sub)) ->
      let sub_tag =
        match (lid_last lid.txt, tag) with
        | Some "Some", T_conn_opt -> T_conn
        | _ -> T_none
      in
      bind_pat env sub sub_tag
  | _ -> List.fold_left (fun env v -> (v, T_none) :: env) env (pat_vars p)

(* Does a pattern definitely not match a statically-known boolean? *)
let rec pat_excludes (p : Parsetree.pattern) tag =
  match (p.ppat_desc, tag) with
  | Ppat_construct (lid, None), T_bool b -> (
      match lid_last lid.txt with
      | Some "true" -> not b
      | Some "false" -> b
      | _ -> false)
  | Ppat_or (a, b), _ -> pat_excludes a tag && pat_excludes b tag
  | Ppat_alias (p, _), _ | Ppat_constraint (p, _), _ -> pat_excludes p tag
  | _ -> false

(* --- Module-operation effect mapping -------------------------------- *)

let starts_with pfx s =
  String.length s >= String.length pfx
  && String.sub s 0 (String.length pfx) = pfx

(* Blocking and per-segment-allocation call patterns for the hygiene
   lint. *)
let blocking_modules = [ "Unix"; "Thread"; "Mutex"; "Condition" ]

let blocking_bare =
  [
    "print_string"; "print_endline"; "print_newline"; "print_int";
    "read_line"; "input_line"; "open_in"; "open_out"; "exit";
  ]

let alloc_calls =
  [
    ("Hashtbl", "create"); ("Queue", "create"); ("Buffer", "create");
    ("Stack", "create"); ("Array", "make"); ("Array", "init");
    ("Bytes", "make"); ("Bytes", "create");
  ]

let is_blocking (m, f) =
  List.mem m blocking_modules
  || ((m = "" || m = "Stdlib") && List.mem f blocking_bare)
  || (m = "Printf" && f = "printf")
  || (m = "Format" && f = "printf")
  || (m = "Sys" && f = "command")

let is_alloc (m, f) = List.mem (m, f) alloc_calls

(* --- The walker ------------------------------------------------------ *)

(* Witness detection: a call that carries both a literal
   [Effects.<Obj>] and a literal [Effects.Read]/[Effects.Write]
   argument is a sanitizer access hook; the constructor pair IS the
   access. Only direct constructor arguments count (nested calls
   report at their own apply). *)
let witness_of_args args =
  let find f =
    List.find_map
      (fun ((_ : Asttypes.arg_label), (a : Parsetree.expression)) ->
        match a.pexp_desc with
        | Pexp_construct (lid, None) -> (
            match lid_parts lid.txt with
            | [ x ] -> f x
            | [ m; x ] when m = "Effects" || m = "E" -> f x
            | _ -> None)
        | _ -> None)
      args
  in
  let obj = find (fun x -> List.assoc_opt x obj_constructors) in
  let kind =
    find (function
      | "Read" -> Some E.Read
      | "Write" -> Some E.Write
      | _ -> None)
  in
  match (obj, kind) with Some o, Some k -> Some (o, k) | _ -> None

let rec walk ctx (ms : mod_scope) env seen (e : Parsetree.expression) : tag =
  let w = walk ctx ms env seen in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match List.assoc_opt x env with Some t -> t | None -> T_none)
  | Pexp_ident _ | Pexp_constant _ -> T_none
  | Pexp_construct (lid, arg) -> (
      let at = match arg with Some a -> Some (w a) | None -> None in
      match (lid_last lid.txt, at) with
      | Some "true", _ -> T_bool true
      | Some "false", _ -> T_bool false
      | Some "Some", Some T_conn -> T_conn_opt
      | _ -> T_none)
  | Pexp_field (recv, fld) -> walk_field ctx ms env seen recv fld e.pexp_loc
  | Pexp_setfield (recv, fld, v) ->
      ignore (w v);
      walk_setfield ctx ms env seen recv fld e.pexp_loc;
      T_none
  | Pexp_apply (head, args) -> walk_apply ctx ms env seen head args e.pexp_loc
  | Pexp_let (rf, vbs, body) ->
      let env' = walk_bindings ctx ms env seen rf vbs in
      walk ctx ms env' seen body
  | Pexp_fun (_, dflt, pat, body) ->
      (* Closures are same-stage code: their bodies execute on behalf
         of the stage that built them (completion continuations), so
         walk them inline at definition. *)
      (match dflt with Some d -> ignore (w d) | None -> ());
      let env' = bind_pat env pat T_none in
      ignore (walk ctx ms env' seen body);
      T_none
  | Pexp_function cases ->
      walk_cases ctx ms env seen [ T_none ] cases;
      T_none
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      let tags =
        match scr.pexp_desc with
        | Pexp_tuple elems -> List.map w elems
        | _ -> [ w scr ]
      in
      walk_cases ctx ms env seen tags cases;
      T_none
  | Pexp_ifthenelse (c, e1, e2) -> (
      match w c with
      | T_bool true -> w e1
      | T_bool false -> ( match e2 with Some e -> w e | None -> T_none)
      | _ ->
          let t1 = w e1 in
          let t2 = match e2 with Some e -> Some (w e) | None -> None in
          if t2 = Some t1 then t1 else T_none)
  | Pexp_sequence (a, b) ->
      ignore (w a);
      w b
  | Pexp_tuple es ->
      List.iter (fun e -> ignore (w e)) es;
      T_none
  | Pexp_constraint (e, _) -> w e
  | Pexp_open (_, e) -> w e
  | Pexp_while (c, body) ->
      ignore (w c);
      ignore (w body);
      T_none
  | Pexp_for (pat, lo, hi, _, body) ->
      ignore (w lo);
      ignore (w hi);
      ignore (walk ctx ms (bind_pat env pat T_none) seen body);
      T_none
  | _ ->
      (* Anything else: walk child expressions with the same
         environment. *)
      iter_child_exprs (fun e' -> ignore (w e')) e;
      T_none

and iter_child_exprs f e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ e' -> f e') }
  in
  Ast_iterator.default_iterator.expr it e

and walk_bindings ctx ms env seen rf vbs =
  match rf with
  | Asttypes.Recursive ->
      (* Bind the names opaquely first (they may be closures), then
         walk the bodies. *)
      let env' =
        List.fold_left
          (fun env (vb : Parsetree.value_binding) ->
            List.fold_left
              (fun env v -> (v, T_none) :: env)
              env
              (pat_vars vb.pvb_pat))
          env vbs
      in
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          ignore (walk ctx ms env' seen vb.pvb_expr))
        vbs;
      env'
  | Asttypes.Nonrecursive ->
      List.fold_left
        (fun env_acc (vb : Parsetree.value_binding) ->
          match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
          | Ppat_tuple ps, Pexp_tuple es when List.length ps = List.length es
            ->
              List.fold_left2
                (fun env_acc p e ->
                  bind_pat env_acc p (walk ctx ms env seen e))
                env_acc ps es
          | _ ->
              let t = walk ctx ms env seen vb.pvb_expr in
              bind_pat env_acc vb.pvb_pat t)
        env vbs

and walk_cases ctx ms env seen tags cases =
  List.iter
    (fun (c : Parsetree.case) ->
      let dead =
        match (c.pc_lhs.ppat_desc, tags) with
        | Ppat_tuple ps, _ :: _ :: _ when List.length ps = List.length tags
          ->
            List.exists2 pat_excludes ps tags
        | _, [ t ] -> pat_excludes c.pc_lhs t
        | _ -> false
      in
      if not dead then begin
        let env' =
          match (c.pc_lhs.ppat_desc, tags) with
          | Ppat_tuple ps, _ :: _ :: _ when List.length ps = List.length tags
            ->
              List.fold_left2 bind_pat env ps tags
          | _, [ t ] -> bind_pat env c.pc_lhs t
          | _ -> bind_pat env c.pc_lhs T_none
        in
        let guard_false =
          match c.pc_guard with
          | Some g -> walk ctx ms env' seen g = T_bool false
          | None -> false
        in
        if not guard_false then ignore (walk ctx ms env' seen c.pc_rhs)
      end)
    cases

and walk_field ctx ms env seen recv fld loc =
  let rt = walk ctx ms env seen recv in
  let f = match lid_last fld.Location.txt with Some f -> f | None -> "" in
  match (rt, f) with
  | T_dp, "conns" -> T_conns_tbl
  | T_dp, "conn_db" -> T_conn_db
  | T_dp, "atx" -> T_atx_arr
  | T_dp, "sabotage" -> T_sabotage
  | T_dp, f when starts_with "st_" f ->
      record_access ctx E.Read E.Global_stats loc;
      T_none
  | T_dp, _ -> T_none
  | T_sabotage, f when starts_with "sb_" f -> T_bool (List.mem f ctx.w_flags)
  | T_conn, "pre" -> T_pre
  | T_conn, "proto" -> T_proto
  | T_conn, "post" -> T_post
  | T_conn, _ -> T_none  (* idx, flow, active: identity, no region *)
  | T_pre, _ ->
      record_access ctx E.Read E.Conn_pre loc;
      T_none
  | T_proto, "reasm" ->
      record_access ctx E.Read E.Conn_proto loc;
      T_reasm
  | T_proto, _ ->
      record_access ctx E.Read E.Conn_proto loc;
      T_none
  | T_post, "rx_buf" ->
      record_access ctx E.Read E.Conn_post loc;
      T_rxbuf
  | T_post, "tx_buf" ->
      record_access ctx E.Read E.Conn_post loc;
      T_txbuf
  | T_post, _ ->
      record_access ctx E.Read E.Conn_post loc;
      T_none
  | _ -> T_none

and walk_setfield ctx ms env seen recv fld loc =
  let rt = walk ctx ms env seen recv in
  let f = match lid_last fld.Location.txt with Some f -> f | None -> "" in
  match (rt, f) with
  | T_dp, f when starts_with "st_" f ->
      record_access ctx E.Write E.Global_stats loc
  | T_pre, _ -> record_access ctx E.Write E.Conn_pre loc
  | T_proto, _ -> record_access ctx E.Write E.Conn_proto loc
  | T_post, _ -> record_access ctx E.Write E.Conn_post loc
  | _ -> ()

and walk_apply ctx ms env seen head args loc =
  (* Witness first: the constructor pair is the access, wherever the
     callee is. *)
  (match witness_of_args args with
  | Some (o, k) -> record_access ctx k o loc
  | None -> ());
  (* Walk arguments (including closure bodies) in the caller's
     scope. *)
  let arg_tags =
    List.map
      (fun (lbl, a) -> (lbl, walk ctx ms env seen a))
      args
  in
  let first_pos =
    List.find_map
      (fun (lbl, t) ->
        match lbl with Asttypes.Nolabel -> Some t | _ -> None)
      arg_tags
  in
  let a0 = match first_pos with Some t -> t | None -> T_none in
  match head.pexp_desc with
  | Pexp_ident lid -> (
      let name2 =
        match lid_last2 lid.Location.txt with
        | Some mf -> mf
        | None -> ("", "")
      in
      let m, f = name2 in
      (* Locally-bound closures shadow everything. *)
      match
        match lid.Location.txt with
        | Longident.Lident x -> List.assoc_opt x env
        | _ -> None
      with
      | Some _ -> T_none
      | None -> (
          hygiene ctx name2 loc;
          (* Boolean operators over statically-known flags. *)
          match (m, f, arg_tags) with
          | "", "not", [ (_, T_bool b) ] -> T_bool (not b)
          | "", "&&", [ (_, T_bool a); (_, T_bool b) ] -> T_bool (a && b)
          | "", "&&", [ (_, T_bool false); _ ] | "", "&&", [ _, (T_bool false) ]
            ->
              T_bool false
          | "", "||", [ (_, T_bool a); (_, T_bool b) ] -> T_bool (a || b)
          | "", "||", [ (_, T_bool true); _ ] | "", "||", [ _, (T_bool true) ]
            ->
              T_bool true
          | _ -> (
              match effect_of_call ctx name2 a0 loc with
              | Some t -> t
              | None -> expand_call ctx ms seen lid.Location.txt args arg_tags)))
  | _ ->
      ignore (walk ctx ms env seen head);
      T_none

(* Known module operations on tracked values. Returns the result tag
   when the call is recognized, [None] to fall through to call
   expansion. *)
and effect_of_call ctx (m, f) a0 loc =
  let r = record_access ctx E.Read and wr = record_access ctx E.Write in
  match (m, f, a0) with
  (* The connection table: Hashtbl ops on [t.conns] only — the
     datapath's other hashtables (locks, GRO/ARX accumulators) are
     private scratch, not a shared region. *)
  | "Hashtbl", ("find_opt" | "find" | "mem" | "length" | "iter" | "fold"), T_conns_tbl
    ->
      r E.Conn_db loc;
      Some (if f = "find_opt" then T_conn_opt
            else if f = "find" then T_conn
            else T_none)
  | "Hashtbl", ("replace" | "add" | "remove" | "reset"), T_conns_tbl ->
      r E.Conn_db loc;
      wr E.Conn_db loc;
      Some T_none
  | "Hashtbl", _, _ -> Some T_none  (* private scratch tables *)
  | "Lookup", ("lookup" | "mem" | "find"), T_conn_db ->
      r E.Conn_db loc;
      Some T_none
  | "Lookup", ("add" | "remove"), T_conn_db ->
      r E.Conn_db loc;
      wr E.Conn_db loc;
      Some T_none
  | "Payload_buf", "write", _ ->
      wr (match a0 with T_txbuf -> E.Tx_payload | _ -> E.Rx_payload) loc;
      Some T_none
  | "Payload_buf", "read", _ ->
      r (match a0 with T_rxbuf -> E.Rx_payload | _ -> E.Tx_payload) loc;
      Some T_none
  | "Payload_buf", _, _ -> Some T_none  (* size &c.: metadata only *)
  | "Scheduler", ("peak_ready" | "stats" | "reordered"), _ ->
      r E.Sched_state loc;
      Some T_none
  | "Scheduler", "create", _ -> Some T_none
  | "Scheduler", _, _ ->
      (* wakeup, on_sent, credit_return, forget, set_interval,
         set_tracer: scheduler-state mutations. *)
      r E.Sched_state loc;
      wr E.Sched_state loc;
      Some T_none
  | "Ring", ("is_empty" | "length"), T_atx_ring ->
      r E.Desc_ring loc;
      Some T_none
  | "Ring", "push", T_atx_ring ->
      r E.Desc_ring loc;
      wr E.Desc_ring loc;
      Some T_none
  | "Ring", "pop", T_atx_ring ->
      r E.Desc_ring loc;
      wr E.Desc_ring loc;
      Some T_none
  | "Reassembly", ("process" | "force_advance"), T_reasm ->
      r E.Reasm loc;
      wr E.Reasm loc;
      Some T_none
  | "Reassembly", _, T_reasm ->
      r E.Reasm loc;
      Some T_none
  | "Array", "get", T_atx_arr -> Some T_atx_ring
  | _ -> None

and hygiene ctx (m, f) loc =
  if is_blocking (m, f) then
    add_finding ctx
      {
        f_rule = "stage-blocking-call";
        f_severity = Sev_error;
        f_stage = Some ctx.w_stage;
        f_file = file_of loc;
        f_line = line_of loc;
        f_msg =
          Printf.sprintf
            "stage body calls %s.%s, which can block or perform I/O" m f;
      }
  else if
    is_alloc (m, f)
    && not
         (exempted
            (lines_for ctx (file_of loc))
            "flexinfer: alloc-exempt" (line_of loc))
  then
    add_finding ctx
      {
        f_rule = "stage-alloc";
        f_severity = Sev_warning;
        f_stage = Some ctx.w_stage;
        f_file = file_of loc;
        f_line = line_of loc;
        f_msg =
          Printf.sprintf
            "stage body allocates with %s.%s per execution (annotate \
             '(* flexinfer: alloc-exempt *)' if amortized)"
            m f;
      }

(* Bounded call expansion: same-file calls expand transitively (the
   callee's effects belong to the calling stage); calls into a
   declared helper module expand crossing that one boundary; stage
   entries (pipeline hand-offs) and the excluded run-to-completion
   baseline never expand into a caller. *)
and expand_call ctx ms seen lid args arg_tags =
  let resolve =
    match lid with
    | Longident.Lident f -> (
        if
          ms.m_name <> "" && (List.mem f ctx.w_entries || List.mem f ctx.w_excluded)
          && Hashtbl.mem ms.m_fns f
        then None
        else
          match Hashtbl.find_opt ms.m_fns f with
          | Some fi -> Some (ms, f, fi)
          | None -> None)
    | _ -> (
        match lid_last2 lid with
        | Some (m, f) when not ms.m_crossed -> (
            match List.assoc_opt m ctx.w_helpers with
            | Some tbl -> (
                match Hashtbl.find_opt tbl f with
                | Some fi ->
                    Some ({ m_name = m; m_fns = tbl; m_crossed = true }, f, fi)
                | None -> None)
            | None -> None)
        | _ -> None)
  in
  match resolve with
  | None ->
      ignore args;
      T_none
  | Some (callee_ms, fname, fi) ->
      let key = (callee_ms.m_name, fname) in
      if List.mem key seen || ctx.w_budget <= 0 then T_none
      else begin
        ctx.w_budget <- ctx.w_budget - 1;
        let callee_env = bind_args fi.fn_params arg_tags in
        walk ctx callee_ms callee_env (key :: seen) fi.fn_body
      end

(* Match call arguments to parameters: labels by name, positional in
   order. Unmatched parameters stay unbound (opaque). *)
and bind_args params arg_tags =
  let n = List.length params in
  let consumed = Array.make n false in
  let params_arr = Array.of_list params in
  let label_name = function
    | Asttypes.Labelled s | Asttypes.Optional s -> Some s
    | Asttypes.Nolabel -> None
  in
  List.fold_left
    (fun env (albl, tag) ->
      let aname = label_name albl in
      let rec find i =
        if i >= n then None
        else if consumed.(i) then find (i + 1)
        else
          let plbl, pat = params_arr.(i) in
          match (label_name plbl, aname) with
          | None, None -> Some (i, pat)
          | Some p, Some a when p = a -> Some (i, pat)
          | _ -> find (i + 1)
      in
      match find 0 with
      | Some (i, pat) ->
          consumed.(i) <- true;
          bind_pat env pat tag
      | None -> env)
    [] arg_tags

(* --- Stage analysis -------------------------------------------------- *)

(* The built-in pipeline's stage entry points, by contract stage
   name. [rtc_*] is the run-to-completion baseline: it reuses the
   protocol helpers but belongs to no pipeline stage. *)
let builtin_stage_map =
  [
    ("preproc",
     [ "rx_frame"; "rx_datapath"; "guard_shed_rx"; "preproc_rx";
       "forward_to_control" ]);
    ("gro", [ "gro_release"; "gro_flush"; "gro_submit" ]);
    ("protocol", [ "protocol_rx"; "protocol_tx"; "protocol_hc" ]);
    ("postproc", [ "postproc_stage" ]);
    ("dma", [ "dma_stage" ]);
    ("ctx",
     [ "notify_libtoe"; "notify_libtoe_now"; "arx_flush"; "atx_drain";
       "atx_drain_body" ]);
    ("sched", [ "dispatch_tx" ]);
    ("nbi", [ "nbi_emit"; "nbi_emit_one" ]);
  ]

let builtin_excluded = [ "rtc_rx"; "rtc_tx"; "rtc_hc"; "rtc_pcie_sleep" ]

let default_entry_env params =
  List.fold_left
    (fun env ((_ : Asttypes.arg_label), pat) ->
      match pat.Parsetree.ppat_desc with
      | Ppat_var v when v.txt = "t" -> (v.txt, T_dp) :: env
      | Ppat_var v when v.txt = "cs" || v.txt = "conn_state" ->
          (v.txt, T_conn) :: env
      | _ ->
          List.fold_left (fun env v -> (v, T_none) :: env) env (pat_vars pat))
    [] params

let dedup_objs l =
  List.rev
    (List.fold_left (fun acc o -> if List.mem o acc then acc else o :: acc) [] l)

(* Infer per-stage footprints from source.

   [flags] names the [sb_*] sabotage fields assumed true (the clean
   tree is all-false); [helper_files] maps helper module names to
   paths; [stage_map] lists each stage's entry functions in
   [dp_file]. Returns the footprints plus the analysis findings
   (hygiene lint, missing entries). *)
let infer_footprints ?(flags = []) ~dp_file
    ?(helper_files : (string * string) list = [])
    ?(stage_map = builtin_stage_map) ?(excluded = builtin_excluded) () =
  match parse_impl dp_file with
  | Error e -> Error e
  | Ok str -> (
      let helper_results =
        List.map (fun (m, p) -> (m, parse_impl p)) helper_files
      in
      match
        List.find_map
          (fun (_, r) -> match r with Error e -> Some e | Ok _ -> None)
          helper_results
      with
      | Some e -> Error e
      | None ->
          let helpers =
            List.map
              (fun (m, r) ->
                match r with
                | Ok s -> (m, collect_fns s)
                | Error _ -> assert false)
              helper_results
          in
          let dp_fns = collect_fns str in
          let dp_mod = module_of_path dp_file in
          let entries = List.concat_map snd stage_map in
          let lines_cache = Hashtbl.create 8 in
          let analyze (stage, stage_entries) =
            let acc = { ac_reads = []; ac_writes = []; ac_findings = [] } in
            let ctx =
              {
                w_flags = flags;
                w_stage = stage;
                w_entries = entries;
                w_excluded = excluded;
                w_helpers = helpers;
                w_acc = acc;
                w_lines = lines_cache;
                w_budget = 4000;
              }
            in
            let ms = { m_name = dp_mod; m_fns = dp_fns; m_crossed = false } in
            List.iter
              (fun entry ->
                match Hashtbl.find_opt dp_fns entry with
                | None ->
                    acc.ac_findings <-
                      {
                        f_rule = "missing-entry";
                        f_severity = Sev_error;
                        f_stage = Some stage;
                        f_file = dp_file;
                        f_line = 1;
                        f_msg =
                          Printf.sprintf
                            "stage entry function '%s' not found in %s \
                             (renamed? update the stage map)"
                            entry dp_file;
                      }
                      :: acc.ac_findings
                | Some fi ->
                    let env = default_entry_env fi.fn_params in
                    ignore
                      (walk ctx ms env [ (dp_mod, entry) ] fi.fn_body))
              stage_entries;
            ( {
                fp_stage = stage;
                fp_reads = dedup_objs (List.map (fun (o, _, _) -> o) acc.ac_reads);
                fp_writes =
                  dedup_objs (List.map (fun (o, _, _) -> o) acc.ac_writes);
              },
              acc )
          in
          let results = List.map analyze stage_map in
          let footprints = List.map fst results in
          let findings =
            List.concat_map (fun (_, acc) -> List.rev acc.ac_findings) results
          in
          let locs =
            List.concat_map
              (fun (fp, acc) ->
                List.map (fun (o, f, l) -> ((fp.fp_stage, E.Read, o), (f, l)))
                  acc.ac_reads
                @ List.map
                    (fun (o, f, l) -> ((fp.fp_stage, E.Write, o), (f, l)))
                    acc.ac_writes)
              results
          in
          Ok (footprints, findings, locs))

(* Diff inferred footprints against declared contracts. Read
   conformance matches FlexSan layer 2: a declared write covers
   reads of the same object. *)
let diff_contracts ~(declared : E.contract list) ~footprints ~locs ~dp_file =
  let loc_of key =
    match List.assoc_opt key locs with
    | Some (f, l) -> (f, l)
    | None -> (dp_file, 0)
  in
  List.concat_map
    (fun (fp : footprint) ->
      match
        List.find_opt (fun (c : E.contract) -> c.c_stage = fp.fp_stage) declared
      with
      | None ->
          [
            {
              f_rule = "unknown-stage";
              f_severity = Sev_error;
              f_stage = Some fp.fp_stage;
              f_file = dp_file;
              f_line = 0;
              f_msg =
                Printf.sprintf "no declared contract for stage '%s'"
                  fp.fp_stage;
            };
          ]
      | Some c ->
          let undeclared_writes =
            List.filter (fun o -> not (E.mem o c.c_writes)) fp.fp_writes
          in
          let undeclared_reads =
            List.filter
              (fun o -> not (E.mem o c.c_reads || E.mem o c.c_writes))
              fp.fp_reads
          in
          let drift_reads =
            List.filter
              (fun o ->
                not
                  (List.exists (fun i -> E.obj_tag i = E.obj_tag o) fp.fp_reads
                  || List.exists
                       (fun i -> E.obj_tag i = E.obj_tag o)
                       fp.fp_writes))
              c.c_reads
          in
          let drift_writes =
            List.filter
              (fun o ->
                not
                  (List.exists (fun i -> E.obj_tag i = E.obj_tag o) fp.fp_writes))
              c.c_writes
          in
          List.map
            (fun o ->
              let file, line = loc_of (fp.fp_stage, E.Write, o) in
              {
                f_rule = "undeclared-write";
                f_severity = Sev_error;
                f_stage = Some fp.fp_stage;
                f_file = file;
                f_line = line;
                f_msg =
                  Printf.sprintf
                    "inferred write to %s is not in the declared contract \
                     (FlexProve's interference proof is void)"
                    (E.obj_name o);
              })
            undeclared_writes
          @ List.map
              (fun o ->
                let file, line = loc_of (fp.fp_stage, E.Read, o) in
                {
                  f_rule = "undeclared-read";
                  f_severity = Sev_error;
                  f_stage = Some fp.fp_stage;
                  f_file = file;
                  f_line = line;
                  f_msg =
                    Printf.sprintf
                      "inferred read of %s is not in the declared contract"
                      (E.obj_name o);
                })
              undeclared_reads
          @ List.map
              (fun o ->
                {
                  f_rule = "contract-drift";
                  f_severity = Sev_warning;
                  f_stage = Some fp.fp_stage;
                  f_file = dp_file;
                  f_line = 0;
                  f_msg =
                    Printf.sprintf
                      "declared read of %s never inferred from the stage \
                       body (stale declaration?)"
                      (E.obj_name o);
                })
              drift_reads
          @ List.map
              (fun o ->
                {
                  f_rule = "contract-drift";
                  f_severity = Sev_warning;
                  f_stage = Some fp.fp_stage;
                  f_file = dp_file;
                  f_line = 0;
                  f_msg =
                    Printf.sprintf
                      "declared write of %s never inferred from the stage \
                       body (stale declaration?)"
                      (E.obj_name o);
                })
              drift_writes)
    footprints

(* ==================================================================== *)
(* Seq32 wrap-safety lint                                               *)
(* ==================================================================== *)

type seq_tag = S_seq | S_opt | S_carrier

let seq_tag_name = function
  | S_seq -> "Seq32.t"
  | S_opt -> "Seq32.t option"
  | S_carrier -> "a value carrying Seq32.t"

type seeds = {
  sd_fields : (string, seq_tag) Hashtbl.t;  (* unambiguous field names *)
  sd_fns : (string * string, seq_tag) Hashtbl.t;  (* (Module, fn) results *)
}

(* Classify a core type: does it denote Seq32.t, an option of it, or
   a structure mentioning it? *)
let rec ct_verdict (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_constr (lid, args) -> (
      match lid_last2 lid.Location.txt with
      | Some ("Seq32", "t") -> Some S_seq
      | Some (_, "option") -> (
          match args with
          | [ a ] -> (
              match ct_verdict a with
              | Some S_seq -> Some S_opt
              | Some _ -> Some S_carrier
              | None -> None)
          | _ -> None)
      | _ ->
          if List.exists (fun a -> ct_verdict a <> None) args then
            Some S_carrier
          else None)
  | Ptyp_tuple l ->
      if List.exists (fun a -> ct_verdict a <> None) l then Some S_carrier
      else None
  | Ptyp_alias (a, _) | Ptyp_poly (_, a) -> ct_verdict a
  | _ -> None

let rec arrow_result (ct : Parsetree.core_type) =
  match ct.ptyp_desc with
  | Ptyp_arrow (_, _, r) -> arrow_result r
  | Ptyp_poly (_, a) -> arrow_result a
  | _ -> ct

(* Seed from type declarations (record fields) and value signatures
   (function results). Field names seen with conflicting verdicts
   across the scanned sources are ambiguous and dropped. *)
let seed_files paths =
  let field_votes : (string, seq_tag option list) Hashtbl.t =
    Hashtbl.create 64
  in
  let fns = Hashtbl.create 64 in
  let vote name v =
    let cur =
      match Hashtbl.find_opt field_votes name with Some l -> l | None -> []
    in
    Hashtbl.replace field_votes name (v :: cur)
  in
  let scan_type_decl (td : Parsetree.type_declaration) =
    match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun (ld : Parsetree.label_declaration) ->
            vote ld.pld_name.txt (ct_verdict ld.pld_type))
          labels
    | _ -> ()
  in
  let scan_val modname (vd : Parsetree.value_description) =
    match ct_verdict (arrow_result vd.pval_type) with
    | Some v -> Hashtbl.replace fns (modname, vd.pval_name.txt) v
    | None -> ()
  in
  List.iter
    (fun path ->
      let modname = module_of_path path in
      if Filename.check_suffix path ".mli" then
        match parse_intf path with
        | Error _ -> ()
        | Ok sg ->
            List.iter
              (fun (item : Parsetree.signature_item) ->
                match item.psig_desc with
                | Psig_type (_, tds) -> List.iter scan_type_decl tds
                | Psig_value vd -> scan_val modname vd
                | _ -> ())
              sg
      else
        match parse_impl path with
        | Error _ -> ()
        | Ok str ->
            List.iter
              (fun (item : Parsetree.structure_item) ->
                match item.pstr_desc with
                | Pstr_type (_, tds) -> List.iter scan_type_decl tds
                | _ -> ())
              str)
    paths;
  let fields = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name votes ->
      match List.sort_uniq compare votes with
      | [ Some v ] -> Hashtbl.replace fields name v
      | _ -> ()  (* ambiguous across records, or never Seq32 *))
    field_votes;
  { sd_fields = fields; sd_fns = fns }

let cmp_ops = [ "="; "<>"; "<"; ">"; "<="; ">="; "=="; "!=" ]
let cmp_fns = [ "compare"; "min"; "max" ]

let seq32_marker = "flexinfer: seq32-exempt"

type seq_ctx = {
  q_seeds : seeds;
  q_mod : string;  (* module of the file being linted *)
  q_lines : string array;
  mutable q_findings : finding list;
  mutable q_exempted : int;
}

let rec swalk ctx env (e : Parsetree.expression) : seq_tag option =
  let w = swalk ctx env in
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match List.assoc_opt x env with Some t -> t | None -> None)
  | Pexp_ident _ | Pexp_constant _ -> None
  | Pexp_field (recv, fld) -> (
      ignore (w recv);
      match lid_last fld.Location.txt with
      | Some f -> Hashtbl.find_opt ctx.q_seeds.sd_fields f
      | None -> None)
  | Pexp_setfield (recv, _, v) ->
      ignore (w recv);
      ignore (w v);
      None
  | Pexp_construct (lid, arg) -> (
      let at = Option.map w arg in
      match (lid_last lid.txt, at) with
      | Some "Some", Some (Some S_seq) -> Some S_opt
      | Some "Some", Some (Some _) -> Some S_carrier
      | _ -> None)
  | Pexp_tuple es ->
      if List.exists (fun e -> w e <> None) es then Some S_carrier else None
  | Pexp_apply (head, args) -> swalk_apply ctx env head args e.pexp_loc
  | Pexp_let (rf, vbs, body) ->
      let env' = swalk_bindings ctx env rf vbs in
      swalk ctx env' body
  | Pexp_fun (_, dflt, pat, body) ->
      (match dflt with Some d -> ignore (w d) | None -> ());
      ignore (swalk ctx (sbind env pat None) body);
      None
  | Pexp_function cases ->
      swalk_cases ctx env None cases;
      None
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      let st = w scr in
      swalk_cases ctx env st cases;
      None
  | Pexp_ifthenelse (c, e1, e2) -> (
      ignore (w c);
      let t1 = w e1 in
      match e2 with
      | Some e -> if w e = t1 then t1 else None
      | None -> None)
  | Pexp_sequence (a, b) ->
      ignore (w a);
      w b
  | Pexp_constraint (e, ct) -> (
      let t = w e in
      match ct_verdict ct with Some v -> Some v | None -> t)
  | Pexp_open (_, e) -> w e
  | _ ->
      iter_child_exprs (fun e' -> ignore (w e')) e;
      None

and sbind env (p : Parsetree.pattern) tag =
  match p.ppat_desc with
  | Ppat_var v -> (v.txt, tag) :: env
  | Ppat_alias (p, v) -> sbind ((v.txt, tag) :: env) p tag
  | Ppat_constraint (p, ct) -> (
      match ct_verdict ct with
      | Some v -> sbind env p (Some v)
      | None -> sbind env p tag)
  | Ppat_construct (lid, Some (_, sub)) ->
      let sub_tag =
        match (lid_last lid.txt, tag) with
        | Some "Some", Some S_opt -> Some S_seq
        | _ -> None
      in
      sbind env sub sub_tag
  | Ppat_tuple ps -> List.fold_left (fun env p -> sbind env p None) env ps
  | _ -> List.fold_left (fun env v -> (v, None) :: env) env (pat_vars p)

and swalk_bindings ctx env rf vbs =
  match rf with
  | Asttypes.Recursive ->
      let env' =
        List.fold_left
          (fun env (vb : Parsetree.value_binding) ->
            List.fold_left (fun env v -> (v, None) :: env) env
              (pat_vars vb.pvb_pat))
          env vbs
      in
      List.iter
        (fun (vb : Parsetree.value_binding) ->
          ignore (swalk ctx env' vb.pvb_expr))
        vbs;
      env'
  | Asttypes.Nonrecursive ->
      List.fold_left
        (fun env_acc (vb : Parsetree.value_binding) ->
          match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
          | Ppat_tuple ps, Pexp_tuple es when List.length ps = List.length es
            ->
              List.fold_left2
                (fun env_acc p e -> sbind env_acc p (swalk ctx env e))
                env_acc ps es
          | _ ->
              let t = swalk ctx env vb.pvb_expr in
              sbind env_acc vb.pvb_pat t)
        env vbs

and swalk_cases ctx env scrutinee cases =
  List.iter
    (fun (c : Parsetree.case) ->
      let env' = sbind env c.pc_lhs scrutinee in
      (match c.pc_guard with Some g -> ignore (swalk ctx env' g) | None -> ());
      ignore (swalk ctx env' c.pc_rhs))
    cases

and swalk_apply ctx env head args loc =
  let arg_tags = List.map (fun (_, a) -> swalk ctx env a) args in
  match head.pexp_desc with
  | Pexp_ident lid -> (
      let shadowed =
        match lid.Location.txt with
        | Longident.Lident x -> List.mem_assoc x env
        | _ -> false
      in
      let m, f =
        match lid_last2 lid.Location.txt with
        | Some mf -> mf
        | None -> ("", "")
      in
      let is_structural_cmp =
        (not shadowed)
        && (m = "" || m = "Stdlib")
        && (List.mem f cmp_ops || List.mem f cmp_fns)
      in
      if is_structural_cmp then begin
        (match
           List.find_map
             (fun t -> match t with Some v -> Some v | None -> None)
             arg_tags
         with
        | Some v ->
            let line = line_of loc in
            if exempted ctx.q_lines seq32_marker line then
              ctx.q_exempted <- ctx.q_exempted + 1
            else
              ctx.q_findings <-
                {
                  f_rule = "seq32-structural-compare";
                  f_severity = Sev_error;
                  f_stage = None;
                  f_file = file_of loc;
                  f_line = line;
                  f_msg =
                    Printf.sprintf
                      "structural '%s' on %s breaks at the 2^32 sequence \
                       wrap; use Seq32.lt/le/gt/ge/max/min/diff (or \
                       annotate '(* %s *)')"
                      f (seq_tag_name v) seq32_marker;
                }
                :: ctx.q_findings
        | None -> ());
        (* Result of min/max keeps the operand's taint. *)
        if List.mem f [ "min"; "max" ] then
          List.find_map (fun t -> t) arg_tags
        else None
      end
      else if shadowed then None
      else
        let key = if m = "" then (ctx.q_mod, f) else (m, f) in
        Hashtbl.find_opt ctx.q_seeds.sd_fns key)
  | _ ->
      ignore (swalk ctx env head);
      None

(* Lint a set of implementation files, seeding types from
   [seed_paths] (defaults to the linted files plus their [.mli]s). *)
let lint_seq32 ?seed_paths ~files () =
  let seed_paths =
    match seed_paths with
    | Some p -> p
    | None ->
        List.concat_map
          (fun f ->
            let mli = Filename.remove_extension f ^ ".mli" in
            if Sys.file_exists mli then [ f; mli ] else [ f ])
          files
  in
  let seeds = seed_files seed_paths in
  let results =
    List.map
      (fun path ->
        match parse_impl path with
        | Error e ->
            ( [
                {
                  f_rule = "parse-error";
                  f_severity = Sev_error;
                  f_stage = None;
                  f_file = path;
                  f_line = 1;
                  f_msg = e;
                };
              ],
              0 )
        | Ok str ->
            let ctx =
              {
                q_seeds = seeds;
                q_mod = module_of_path path;
                q_lines = file_lines path;
                q_findings = [];
                q_exempted = 0;
              }
            in
            List.iter
              (fun (item : Parsetree.structure_item) ->
                match item.pstr_desc with
                | Pstr_value (rf, vbs) ->
                    ignore (swalk_bindings ctx [] rf vbs)
                | _ -> ())
              str;
            (List.rev ctx.q_findings, ctx.q_exempted))
      files
  in
  ( List.concat_map fst results,
    List.fold_left (fun n (_, e) -> n + e) 0 results )

(* ==================================================================== *)
(* Repository-level drivers                                             *)
(* ==================================================================== *)

(* Walk up from [start] (default cwd) to the repository root —
   identified by the datapath source the analysis is about. *)
let find_root ?start () =
  let rec up dir n =
    if n > 8 then None
    else if Sys.file_exists (Filename.concat dir "lib/flextoe/datapath.ml")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (n + 1)
  in
  up (match start with Some s -> s | None -> Sys.getcwd ()) 0

let ml_files_in dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      List.sort compare
        (List.filter_map
           (fun f ->
             if Filename.check_suffix f ".ml" then
               Some (Filename.concat dir f)
             else None)
           (Array.to_list entries))

let seed_paths_in dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      List.sort compare
        (List.filter_map
           (fun f ->
             if Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"
             then Some (Filename.concat dir f)
             else None)
           (Array.to_list entries))

(* The full FlexInfer run over a repository checkout: footprint
   inference + contract diff over the datapath, Seq32 lint over
   lib/tcp and lib/flextoe. *)
type report = {
  rp_footprints : footprint list;
  rp_findings : finding list;
  rp_seq32_exempted : int;
  rp_files_linted : int;
}

let repo_dp_file root = Filename.concat root "lib/flextoe/datapath.ml"

let repo_helper_files root =
  List.filter_map
    (fun (m, rel) ->
      let p = Filename.concat root rel in
      if Sys.file_exists p then Some (m, p) else None)
    [
      ("Protocol", "lib/flextoe/protocol.ml");
      ("Control_plane", "lib/flextoe/control_plane.ml");
    ]

(* Footprints + contract diff only (no Seq32 sweep): the per-variant
   classification path, where the lint result would be identical
   every time. *)
let infer_repo_diff ?(flags = []) ~declared ~root () =
  let dp_file = repo_dp_file root in
  match
    infer_footprints ~flags ~dp_file ~helper_files:(repo_helper_files root) ()
  with
  | Error e -> Error e
  | Ok (footprints, hygiene, locs) ->
      Ok (footprints, hygiene @ diff_contracts ~declared ~footprints ~locs ~dp_file)

let analyze_repo ?(flags = []) ~declared ~root () =
  let dp_file = repo_dp_file root in
  let helper_files = repo_helper_files root in
  match infer_footprints ~flags ~dp_file ~helper_files () with
  | Error e -> Error e
  | Ok (footprints, hygiene, locs) ->
      let diff = diff_contracts ~declared ~footprints ~locs ~dp_file in
      let lint_dirs =
        List.map (Filename.concat root) [ "lib/tcp"; "lib/flextoe" ]
      in
      let files = List.concat_map ml_files_in lint_dirs in
      let seq_findings, exempted =
        lint_seq32
          ~seed_paths:(List.concat_map seed_paths_in lint_dirs)
          ~files ()
      in
      Ok
        {
          rp_footprints = footprints;
          rp_findings = hygiene @ diff @ seq_findings;
          rp_seq32_exempted = exempted;
          rp_files_linted = List.length files;
        }

(* --- JSON ------------------------------------------------------------ *)

let finding_json f =
  Sim.Json.Obj
    [
      ("rule", Sim.Json.String f.f_rule);
      ("severity", Sim.Json.String (severity_name f.f_severity));
      ( "stage",
        match f.f_stage with
        | Some s -> Sim.Json.String s
        | None -> Sim.Json.Null );
      ("file", Sim.Json.String f.f_file);
      ("line", Sim.Json.Int f.f_line);
      ("msg", Sim.Json.String f.f_msg);
    ]

let footprint_json fp =
  let objs l = Sim.Json.List (List.map (fun o -> Sim.Json.String (E.obj_name o)) l) in
  Sim.Json.Obj
    [
      ("stage", Sim.Json.String fp.fp_stage);
      ("reads", objs fp.fp_reads);
      ("writes", objs fp.fp_writes);
    ]

let report_json r =
  Sim.Json.Obj
    [
      ("footprints", Sim.Json.List (List.map footprint_json r.rp_footprints));
      ("findings", Sim.Json.List (List.map finding_json r.rp_findings));
      ("seq32_exempted", Sim.Json.Int r.rp_seq32_exempted);
      ("files_linted", Sim.Json.Int r.rp_files_linted);
    ]
