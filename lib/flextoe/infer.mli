(** FlexInfer: source-level effect inference and wrap-safety lint.

    Closes FlexProve's trusted-contract gap: {!Prove} proves the
    pipeline interference-free over the {e declared}
    {!Effects.contract}s, and nothing — until this module — checked
    that the declarations describe what the stage code actually does.
    FlexInfer parses the real sources with compiler-libs and runs
    three analyses:

    + {b Footprint inference} over the stage entry functions in
      [datapath.ml]: a syntactic access-path walk recognizing both
      sanitizer witnesses (calls carrying literal [Effects.<Obj>] +
      [Effects.Read]/[Write] constructors) and known module
      operations on tracked values (the connection table, partition
      records, payload buffers, scheduler, ATX rings, reassembler).
      Same-file helper calls expand transitively; calls into the
      declared helper modules ([Protocol], [Control_plane]) cross at
      most one module boundary; stage hand-offs never leak a callee
      stage's footprint into the caller. The result is diffed
      against the declared contracts.
    + {b Seq32 wrap-safety lint}: rejects structural
      comparison/[compare]/[min]/[max] on [Tcp.Seq32.t]-typed values
      (an [int] alias — structural [<] breaks at the 2^32 wrap),
      seeding types from [.mli] signatures and [.ml] type
      declarations. [(* flexinfer: seq32-exempt *)] on the same or
      preceding line exempts a deliberate use.
    + {b Stage hygiene}: no blocking/I-O calls in stage bodies;
      per-execution container allocation warns unless annotated
      [(* flexinfer: alloc-exempt *)].

    The analysis is deliberately syntactic (DESIGN.md §15 lists the
    soundness caveats); it is a tripwire for contract rot, with
    FlexSan layer 2 remaining the runtime authority. *)

(** {1 Findings} *)

type severity = Sev_error | Sev_warning

val severity_name : severity -> string

type finding = {
  f_rule : string;
      (** [undeclared-write], [undeclared-read], [contract-drift],
          [seq32-structural-compare], [stage-blocking-call],
          [stage-alloc], [missing-entry], [unknown-stage],
          [parse-error]. *)
  f_severity : severity;
  f_stage : string option;
  f_file : string;
  f_line : int;
  f_msg : string;
}

val finding_to_string : finding -> string
val errors : finding list -> finding list

(** {1 Footprint inference} *)

type footprint = {
  fp_stage : string;
  fp_reads : Effects.obj list;
  fp_writes : Effects.obj list;
}

val builtin_stage_map : (string * string list) list
(** Contract stage name → entry functions in [datapath.ml] analyzed
    as that stage's body. *)

val builtin_excluded : string list
(** Functions never expanded into any stage (the run-to-completion
    baseline reuses stage helpers but belongs to no pipeline
    stage). *)

val infer_footprints :
  ?flags:string list ->
  dp_file:string ->
  ?helper_files:(string * string) list ->
  ?stage_map:(string * string list) list ->
  ?excluded:string list ->
  unit ->
  ( footprint list
    * finding list
    * ((string * Effects.kind * Effects.obj) * (string * int)) list,
    string )
  result
(** Parse [dp_file] and infer each stage's footprint. [flags] names
    the sabotage record fields ([sb_*]) assumed true — the analyzer
    partial-evaluates the [t.sabotage.sb_*] guards, so a clean run
    (no flags) skips the sabotage blocks and a flagged run sees
    them. [helper_files] maps module names ([Protocol], ...) to
    their sources for the one-boundary call summaries. Returns
    (footprints, hygiene/structural findings, first-occurrence
    source location per (stage, kind, obj)) or a parse error. *)

val diff_contracts :
  declared:Effects.contract list ->
  footprints:footprint list ->
  locs:((string * Effects.kind * Effects.obj) * (string * int)) list ->
  dp_file:string ->
  finding list
(** Inferred-but-undeclared write or read: error. Declared access
    never inferred: warning (drift). Read conformance matches
    FlexSan layer 2: a declared write covers reads of the same
    object. *)

(** {1 Seq32 lint} *)

val lint_seq32 :
  ?seed_paths:string list ->
  files:string list ->
  unit ->
  finding list * int
(** Lint [files]; seed Seq32-typed field names and function results
    from [seed_paths] (defaults to the files plus their [.mli]s when
    present). Returns the findings and the count of exempted
    comparison sites. *)

(** {1 Repository driver} *)

type report = {
  rp_footprints : footprint list;
  rp_findings : finding list;
  rp_seq32_exempted : int;
  rp_files_linted : int;
}

val find_root : ?start:string -> unit -> string option
(** Walk up from [start] (default: cwd) looking for
    [lib/flextoe/datapath.ml]. *)

val infer_repo_diff :
  ?flags:string list ->
  declared:Effects.contract list ->
  root:string ->
  unit ->
  (footprint list * finding list, string) result
(** Footprint inference + contract diff only (no Seq32 sweep) — the
    per-sabotage-variant classification path. *)

val analyze_repo :
  ?flags:string list ->
  declared:Effects.contract list ->
  root:string ->
  unit ->
  (report, string) result
(** The full FlexInfer run: footprint inference + contract diff over
    the datapath, Seq32 lint over [lib/tcp] and [lib/flextoe]. *)

(** {1 JSON} *)

val finding_json : finding -> Sim.Json.t
val footprint_json : footprint -> Sim.Json.t
val report_json : report -> Sim.Json.t
