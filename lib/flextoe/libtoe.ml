type sock = {
  handle : Control_plane.conn_handle;
  api : Host.Api.socket;
  core : Host.Host_cpu.core;
  ctx : int;
  (* libTOE-side cursors over the shared host payload buffers. *)
  mutable tx_tail : int;  (* next stream offset the app writes *)
  mutable tx_free : int;  (* free TX-buffer space *)
  mutable rx_read : int;  (* next stream offset the app reads *)
  mutable rx_ready : int;  (* notified, unread bytes *)
  mutable rx_credit_pending : int;  (* consumed, not yet returned *)
  mutable tx_avail_pending : int;  (* appended, not yet announced *)
  mutable fin_pending : bool;
  mutable hc_retry_armed : bool;
  mutable hc_retry_delay : Sim.Time.t;  (* current backoff *)
  mutable hc_batch_armed : bool;  (* coalescing-window timer pending *)
  mutable peer_closed : bool;
  mutable closed : bool;
}

type t = {
  engine : Sim.Engine.t;
  cfg : Config.t;
  dp : Datapath.t;
  control : Control_plane.t;
  cores : Host.Host_cpu.core array;
  by_opaque : (int, sock) Hashtbl.t;
  mutable next_sock : int;
  mutable next_core : int;
  mutable atx_retries : int;
  mutable aborted : int;
  endpoint : Host.Api.endpoint;
}

let sockets_open t = Hashtbl.length t.by_opaque
let atx_retries t = t.atx_retries
let sockets_aborted t = t.aborted

let charge sock cycles =
  Host.Host_cpu.exec_now sock.core ~category:"sockets" ~cycles ()

let hc_retry_base = Sim.Time.us 5
let hc_retry_max = Sim.Time.us 80

(* Post pending host-control updates. The ATX ring can be full under
   bursts (it flow-controls the host, §3.1.1): updates coalesce here
   and retry with exponential backoff instead of being lost — a lost
   Tx_avail would strand the data forever, while hammering a full
   ring every fixed interval just burns the doorbell path. *)
let rec flush_hc t sock =
  let conn = sock.handle.Control_plane.ch_conn in
  let push op = Datapath.atx_push t.dp ~ctx:sock.ctx
      { Meta.h_conn = conn; h_op = op }
  in
  if sock.tx_avail_pending > 0 then begin
    let n = sock.tx_avail_pending in
    if push (Meta.Tx_avail n) then sock.tx_avail_pending <- 0
  end;
  if sock.tx_avail_pending = 0 && sock.rx_credit_pending > 0 then begin
    let n = sock.rx_credit_pending in
    if push (Meta.Rx_credit n) then sock.rx_credit_pending <- 0
  end;
  if
    sock.tx_avail_pending = 0 && sock.rx_credit_pending = 0
    && sock.fin_pending
  then begin
    if push Meta.Fin then sock.fin_pending <- false
  end;
  let backlog =
    sock.tx_avail_pending > 0 || sock.rx_credit_pending > 0
    || sock.fin_pending
  in
  if not backlog then sock.hc_retry_delay <- hc_retry_base
  else if not sock.hc_retry_armed then begin
    sock.hc_retry_armed <- true;
    t.atx_retries <- t.atx_retries + 1;
    let delay = sock.hc_retry_delay in
    sock.hc_retry_delay <- min (2 * delay) hc_retry_max;
    Sim.Engine.schedule t.engine delay (fun () ->
        sock.hc_retry_armed <- false;
        flush_hc t sock)
  end

(* --- Socket operations -------------------------------------------- *)

let do_send t sock data =
  if sock.closed then 0
  else begin
    charge sock t.cfg.Config.sockets_api_cycles;
    let n = min (Bytes.length data) sock.tx_free in
    if n > 0 then begin
      let buf = sock.handle.Control_plane.ch_state.Conn_state.post
                  .Conn_state.tx_buf
      in
      Host.Payload_buf.write buf ~off:sock.tx_tail ~src:data ~src_off:0
        ~len:n;
      sock.tx_tail <- sock.tx_tail + n;
      sock.tx_free <- sock.tx_free - n;
      sock.tx_avail_pending <- sock.tx_avail_pending + n;
      (* HC-update coalescing (§3.4): at [b_notify > 1] small appends
         accumulate into one Tx_avail doorbell — posted as soon as a
         full segment's worth is pending, or when the batch-delay
         timer fires on a partial window. Degree 1 posts every
         append, exactly as before. *)
      if
        t.cfg.Config.batch.Config.b_notify <= 1
        || sock.tx_avail_pending >= t.cfg.Config.mss
      then flush_hc t sock
      else if not sock.hc_batch_armed then begin
        sock.hc_batch_armed <- true;
        Sim.Engine.schedule t.engine t.cfg.Config.batch_delay (fun () ->
            sock.hc_batch_armed <- false;
            flush_hc t sock)
      end
    end;
    n
  end

let do_recv t sock ~max =
  charge sock t.cfg.Config.sockets_api_cycles;
  let n = min max sock.rx_ready in
  if n <= 0 then Bytes.empty
  else begin
    let buf =
      sock.handle.Control_plane.ch_state.Conn_state.post.Conn_state.rx_buf
    in
    let out = Host.Payload_buf.read buf ~off:sock.rx_read ~len:n in
    sock.rx_read <- sock.rx_read + n;
    sock.rx_ready <- sock.rx_ready - n;
    (* Return buffer space to the data path's receive window; credits
       are coalesced (the paper batches HC updates per doorbell) and
       flushed once an eighth of the buffer is pending. *)
    sock.rx_credit_pending <- sock.rx_credit_pending + n;
    if sock.rx_credit_pending >= t.cfg.Config.rx_buf_bytes / 8 then
      flush_hc t sock;
    out
  end

let do_close t sock =
  if not sock.closed then begin
    sock.closed <- true;
    charge sock t.cfg.Config.sockets_api_cycles;
    sock.fin_pending <- true;
    flush_hc t sock;
    (* The FIN rides the sock's own context ring, ordered behind any
       pending Tx_avails (flush_hc above). [~send_fin:false] keeps the
       control plane from pushing a second FIN on ring 0, which could
       overtake them and freeze the stream tail early. *)
    Control_plane.close ~send_fin:false t.control
      ~conn:sock.handle.Control_plane.ch_conn
  end

let make_sock t (handle : Control_plane.conn_handle) =
  let ctx = handle.Control_plane.ch_ctx mod Datapath.num_ctx t.dp in
  let core = t.cores.(ctx mod Array.length t.cores) in
  let sock_id = t.next_sock in
  t.next_sock <- sock_id + 1;
  let rec api =
    lazy
      (Host.Api.make_socket ~sock_id ~core
         ~send:(fun data -> do_send t (Lazy.force sockref) data)
         ~recv:(fun ~max -> do_recv t (Lazy.force sockref) ~max)
         ~rx_available:(fun () -> (Lazy.force sockref).rx_ready)
         ~tx_space:(fun () -> (Lazy.force sockref).tx_free)
         ~close:(fun () -> do_close t (Lazy.force sockref)))
  and sockref =
    lazy
      {
        handle;
        api = Lazy.force api;
        core;
        ctx;
        tx_tail = 0;
        tx_free = t.cfg.Config.tx_buf_bytes;
        rx_read = 0;
        rx_ready = 0;
        rx_credit_pending = 0;
        tx_avail_pending = 0;
        fin_pending = false;
        hc_retry_armed = false;
        hc_retry_delay = hc_retry_base;
        hc_batch_armed = false;
        peer_closed = false;
        closed = false;
      }
  in
  let sock = Lazy.force sockref in
  Hashtbl.replace t.by_opaque
    handle.Control_plane.ch_state.Conn_state.post.Conn_state.opaque sock;
  sock

(* --- ARX notification handling ------------------------------------- *)

let on_arx t (d : Meta.arx_desc) =
  match Hashtbl.find_opt t.by_opaque d.Meta.x_opaque with
  | None -> ()
  | Some sock ->
      Host.Host_cpu.exec sock.core ~category:"sockets"
        ~cycles:t.cfg.Config.notify_cycles (fun () ->
          if d.Meta.x_err then begin
            (* Connection aborted by the control plane: the data-path
               state is gone, so pending HC updates are moot and no
               further notifications will arrive. *)
            sock.closed <- true;
            sock.peer_closed <- true;
            sock.tx_avail_pending <- 0;
            sock.rx_credit_pending <- 0;
            sock.fin_pending <- false;
            t.aborted <- t.aborted + 1;
            Hashtbl.remove t.by_opaque d.Meta.x_opaque;
            sock.api.Host.Api.on_error ()
          end
          else begin
            if d.Meta.x_rx_bytes > 0 then
              sock.rx_ready <- sock.rx_ready + d.Meta.x_rx_bytes;
            if d.Meta.x_tx_freed > 0 then
              sock.tx_free <- sock.tx_free + d.Meta.x_tx_freed;
            if d.Meta.x_fin then sock.peer_closed <- true;
            if d.Meta.x_rx_bytes > 0 then sock.api.Host.Api.on_readable ();
            if d.Meta.x_tx_freed > 0 then sock.api.Host.Api.on_writable ();
            if d.Meta.x_fin then sock.api.Host.Api.on_peer_closed ()
          end)

(* --- Endpoint construction ------------------------------------------ *)

let create engine ~config ~datapath ~control ~cores () =
  if cores = [] then invalid_arg "Libtoe.create: needs at least one core";
  let rec t =
    lazy
      {
        engine;
        cfg = config;
        dp = datapath;
        control;
        cores = Array.of_list cores;
        by_opaque = Hashtbl.create 256;
        next_sock = 0;
        next_core = 0;
        atx_retries = 0;
        aborted = 0;
        endpoint =
          {
            Host.Api.listen =
              (fun ~port ~on_accept ->
                Control_plane.listen control ~port
                  ~on_accept:(fun handle ->
                    let sock = make_sock (Lazy.force t) handle in
                    on_accept sock.api)
                  ());
            connect =
              (fun ~remote_ip ~remote_port ~on_connected ->
                let lt = Lazy.force t in
                let ctx = lt.next_core mod Datapath.num_ctx lt.dp in
                lt.next_core <- lt.next_core + 1;
                Control_plane.connect control ~remote_ip ~remote_port ~ctx
                  ~on_connected:(fun result ->
                    match result with
                    | Ok handle ->
                        let sock = make_sock lt handle in
                        on_connected (Ok sock.api)
                    | Error e -> on_connected (Error e)));
            local_ip = Datapath.ip datapath;
            app_core = List.hd cores;
          };
      }
  in
  let t = Lazy.force t in
  for ctx = 0 to Datapath.num_ctx datapath - 1 do
    Datapath.set_arx_handler datapath ~ctx (on_arx t)
  done;
  t

let endpoint t = t.endpoint
