(** libTOE: the POSIX-sockets library linked into applications.

    Interposes on socket calls and talks to the data path through
    per-context queues in host shared memory: sends append payload to
    the per-socket TX buffer and post an HC descriptor (with an MMIO
    doorbell); receives consume the RX buffer at positions the data
    path announced via ARX notifications, returning credits so the
    protocol stage can re-open the receive window. Connection
    establishment is delegated to the control plane.

    Each libTOE instance is one application process; sockets are
    spread round-robin over the instance's cores, with one context
    queue per core (the paper's per-thread CTX-Qs, §3). Socket-call
    CPU cost is charged to the socket's core in the "sockets"
    accounting category. *)

type t

val create :
  Sim.Engine.t ->
  config:Config.t ->
  datapath:Datapath.t ->
  control:Control_plane.t ->
  cores:Host.Host_cpu.core list ->
  unit ->
  t
(** [cores] must be non-empty; context queue [i] maps to core
    [i mod length cores]. *)

val endpoint : t -> Host.Api.endpoint
(** The application-facing socket interface. *)

val sockets_open : t -> int

val atx_retries : t -> int
(** Times a full ATX ring forced HC updates to be re-posted later.
    Retries back off exponentially (5 us doubling to 80 us) and reset
    once the backlog drains. *)

val sockets_aborted : t -> int
(** Sockets killed by a stack-side abort notification ([x_err]);
    their [on_error] callback has fired. *)
