(** Messages flowing between pipeline stages.

    Stages communicate explicitly (no shared state): each record below
    is the meta-data one stage forwards to the next (§3.3, "state that
    may be accessed by further pipeline stages is forwarded as
    meta-data"). *)

(** Header summary produced by the pre-processor (Sum step): only the
    fields later stages need, plus the connection index and pipeline
    (GRO) sequence number. *)
type rx_summary = {
  rx_gseq : int;
  conn : int;
  seq : Tcp.Seq32.t;
  ack_seq : Tcp.Seq32.t;
  has_ack : bool;
  wnd : int;
  payload : Bytes.t;
  fin : bool;
  psh : bool;
  ece : bool;
  cwr : bool;
  ecn_ce : bool;  (** IP-level CE mark. *)
  ts : (int * int) option;  (** (TSval, TSecr) of the peer. *)
  arrival : Sim.Time.t;
}

(** Acknowledgment the post-processor should emit. *)
type ack_info = {
  a_conn : int;
  a_gseq : int;  (** Egress reorder sequence, assigned at protocol. *)
  a_seq : Tcp.Seq32.t;
      (** Sequence number for the ACK frame, snapshotted under the
          protocol lock. Emitting stages must not read the live
          connection state: by NBI time a later TX may have advanced
          it (forward-state-as-metadata, §3.3). *)
  a_ack : Tcp.Seq32.t;
  a_wnd : int;
  a_ts_ecr : int;  (** Peer TSval to echo (Stamp step). *)
  a_ece : bool;
}

(** Protocol-stage output for a received segment. *)
type rx_verdict = {
  v_conn : int;
  v_gseq : int;
      (** The RX sequencer slot of the segment this verdict answers —
          carried through post-processing and DMA so profilers can
          attribute downstream work to the segment. *)
  v_place : (int * Bytes.t) option;
      (** Payload to DMA into the RX buffer at this stream position. *)
  v_rx_advance : int;  (** Newly in-order bytes (incl. filled holes). *)
  v_tx_freed : int;  (** Acked bytes released from the TX buffer. *)
  v_ack : ack_info option;
  v_fin_reached : bool;
  v_wake_tx : bool;  (** Window/ack progress: wake the scheduler. *)
  v_rtt_sample_ns : int;  (** 0 = no sample. *)
  v_ack_bytes : int;  (** For DCTCP: bytes newly acked... *)
  v_ecn_bytes : int;  (** ...of which acked-with-ECE. *)
  v_fast_retx : bool;
}

(** TX segment descriptor (protocol -> post-processing -> DMA). *)
type tx_desc = {
  t_conn : int;
  t_gseq : int;
  t_pos : int;  (** TX-buffer stream position of the payload. *)
  t_len : int;
  t_seq : Tcp.Seq32.t;
  t_ack : Tcp.Seq32.t;
  t_wnd : int;
  t_fin : bool;
  t_cwr : bool;
  t_ts_ecr : int;
  t_more : bool;  (** Flow still has transmittable data. *)
}

(** Host-control operations (libTOE / control plane -> data path). *)
type hc_op =
  | Tx_avail of int  (** App appended N bytes to the TX buffer. *)
  | Rx_credit of int  (** App consumed N bytes of the RX buffer. *)
  | Fin  (** App closed its sending direction. *)
  | Retransmit  (** Control plane: go-back-N reset. *)
  | Ack_flush
      (** Control plane: emit any delayed acknowledgment (delayed-ACK
          mode; the data path has no timers). *)

type hc_desc = { h_conn : int; h_op : hc_op }

(** Notification descriptor (data path -> libTOE, via ARX). *)
type arx_desc = {
  x_opaque : int;  (** Application connection id. *)
  x_rx_bytes : int;  (** Newly readable bytes. *)
  x_tx_freed : int;  (** Newly free TX-buffer space. *)
  x_fin : bool;
  x_err : bool;
      (** Connection aborted by the control plane (retransmission
          retries exhausted): the flow is dead, buffered state is
          gone, and the application must not expect further
          notifications. *)
}
