open Conn_state

let us_of_time t = (t / 1_000_000) land 0xFFFF_FFFF

let scaled_window cfg avail =
  min 0xFFFF (avail lsr cfg.Config.window_scale)

let make_ack cfg conn ~gseq =
  let p = conn.proto in
  let ack = Tcp.Reassembly.next p.reasm in
  {
    Meta.a_conn = conn.idx;
    a_gseq = gseq;
    a_seq = tx_seq_of_pos conn p.tx_next_pos;
    a_ack = ack;
    a_wnd = scaled_window cfg p.rx_avail;
    a_ts_ecr = p.next_ts;
    a_ece = p.ece_pending;
  }

(* Cumulative-ACK processing: returns (freed, ack_bytes, ecn_bytes,
   rtt_ns, wake, fast_retx). *)
let process_ack cfg ~now conn (s : Meta.rx_summary) =
  ignore cfg;
  let p = conn.proto in
  let fin_adj = if p.fin_sent || p.fin_acked then 1 else 0 in
  let ack_pos = tx_pos_of_seq conn s.Meta.ack_seq in
  (* Validity is against the highest byte ever sent: after a
     go-back-N rewind the receiver may legitimately acknowledge
     beyond [tx_next_pos]. *)
  if ack_pos > p.tx_max_pos + fin_adj || ack_pos < p.tx_acked_pos then
    (* Acks data we never sent, or ancient: ignore. *)
    (0, 0, 0, 0, false, false)
  else begin
    let old_win = p.remote_win in
    let old_usable = p.remote_win - tx_unacked conn in
    p.remote_win <- s.Meta.wnd lsl cfg.Config.window_scale;
    let acked_data = min ack_pos p.tx_tail_pos in
    let freed = acked_data - p.tx_acked_pos in
    if freed > 0 || (p.fin_sent && ack_pos > p.tx_tail_pos) then begin
      if p.fin_sent && ack_pos > p.tx_tail_pos then p.fin_acked <- true;
      p.tx_acked_pos <- acked_data;
      if p.tx_next_pos < p.tx_acked_pos then p.tx_next_pos <- p.tx_acked_pos;
      p.dupack_cnt <- 0;
      p.last_progress <- now;
      let rtt =
        (* Karn: an ACK that doesn't pass the retransmission high-water
           mark may echo a timestamp from the original transmission —
           no sample. *)
        if ack_pos <= p.karn_pos then 0
        else
          match s.Meta.ts with
          | Some (_tsval, tsecr) when tsecr > 0 ->
              let sample = (us_of_time now - tsecr) land 0xFFFF_FFFF in
              if sample < 10_000_000 then sample * 1000 else 0
          | _ -> 0
      in
      let ecnb = if s.Meta.ece then freed else 0 in
      if s.Meta.ece then p.cwr_pending <- true;
      (freed, freed, ecnb, rtt, true, false)
    end
    else begin
      (* No progress: count duplicate ACKs on pure-ACK segments. A
         segment that changes the advertised window is a window
         update, not a duplicate (RFC 5681). *)
      let window_changed = p.remote_win <> old_win in
      let is_dup =
        Bytes.length s.Meta.payload = 0
        && (not s.Meta.fin)
        && (not window_changed)
        && ack_pos = p.tx_acked_pos
        && tx_unacked conn > 0
      in
      if is_dup then begin
        p.dupack_cnt <- (p.dupack_cnt + 1) land 0xF;
        if p.dupack_cnt >= 3 && p.tx_acked_pos >= p.recover_pos then begin
          (* Fast retransmit: go-back-N reset. *)
          p.recover_pos <- p.tx_next_pos;
          p.tx_next_pos <- p.tx_acked_pos;
          p.karn_pos <- p.tx_max_pos;
          p.fin_sent <- false;
          p.dupack_cnt <- 0;
          (0, 0, 0, 0, true, true)
        end
        else (0, 0, 0, 0, false, false)
      end
      else begin
        (* Window update may reopen a stalled flow. *)
        let new_usable = p.remote_win - tx_unacked conn in
        let wake = old_usable <= 0 && new_usable > 0 in
        (0, 0, 0, 0, wake, false)
      end
    end
  end

let rx cfg ~now conn (s : Meta.rx_summary) ~alloc_gseq =
  let p = conn.proto in
  (* ECN: a CE mark on any arriving segment sets the echo state; CWR
     from the peer clears it. *)
  if s.Meta.ecn_ce then p.ece_pending <- true;
  if s.Meta.cwr then p.ece_pending <- false;
  let freed, ackb, ecnb, rtt, wake_ack, fretx =
    if s.Meta.has_ack then process_ack cfg ~now conn s
    else (0, 0, 0, 0, false, false)
  in
  let plen = Bytes.length s.Meta.payload in
  let place = ref None in
  let advance = ref 0 in
  let need_ack = ref false in
  (* In delayed-ACK mode a plain in-order segment may defer its
     acknowledgment; anything irregular acknowledges immediately. *)
  let delayable = ref false in
  if plen > 0 then begin
    match
      Tcp.Reassembly.process p.reasm ~seq:s.Meta.seq ~len:plen
        ~window:p.rx_avail
    with
    | Tcp.Reassembly.Accept { trim; len; advance = adv; filled_hole } ->
        let pos = rx_pos_of_seq conn (Tcp.Seq32.add s.Meta.seq trim) in
        place := Some (pos, Bytes.sub s.Meta.payload trim len);
        p.rx_avail <- p.rx_avail - adv;
        advance := adv;
        need_ack := true;
        delayable := (not filled_hole) && trim = 0;
        (* In-order data refreshes the timestamp echo. *)
        (match s.Meta.ts with
        | Some (tsval, _) -> p.next_ts <- tsval
        | None -> ())
    | Tcp.Reassembly.Ooo_accept { trim; off; len } ->
        let pos = rx_next_pos conn + off in
        ignore trim;
        place := Some (pos, Bytes.sub s.Meta.payload trim len);
        need_ack := true
    | Tcp.Reassembly.Duplicate | Tcp.Reassembly.Drop_merge_failed
    | Tcp.Reassembly.Drop_out_of_window ->
        (* Re-ack at the expected sequence number to prod the sender. *)
        need_ack := true
  end;
  (* FIN: only consumable once all preceding data is in order. A FIN
     ahead of the in-order point (its carrier overtook earlier data)
     is remembered, not dropped — it is consumed below when
     reassembly reaches its cut point, which may be this very segment
     filling the hole. *)
  let fin_reached = ref false in
  if s.Meta.fin && not p.rx_fin then begin
    let fin_seq = Tcp.Seq32.add s.Meta.seq plen in
    if Tcp.Seq32.diff fin_seq (Tcp.Reassembly.next p.reasm) >= 0 then
      p.rx_fin_pending <- Some fin_seq;
    need_ack := true
  end;
  (match p.rx_fin_pending with
  | Some fs
    when (not p.rx_fin)
         && Tcp.Seq32.diff fs (Tcp.Reassembly.next p.reasm) <= 0 ->
      p.rx_fin_pending <- None;
      p.rx_fin <- true;
      Tcp.Reassembly.force_advance p.reasm 1;
      fin_reached := true;
      need_ack := true
  | _ -> ());
  let ack =
    if not !need_ack then None
    else if cfg.Config.delayed_acks && !delayable && not !fin_reached then begin
      p.delack_segs <- p.delack_segs + 1;
      if p.delack_segs >= 2 then begin
        p.delack_segs <- 0;
        Some (make_ack cfg conn ~gseq:(alloc_gseq ()))
      end
      else None
    end
    else begin
      p.delack_segs <- 0;
      Some (make_ack cfg conn ~gseq:(alloc_gseq ()))
    end
  in
  {
    Meta.v_conn = conn.idx;
    v_gseq = s.Meta.rx_gseq;
    v_place = !place;
    v_rx_advance = !advance;
    v_tx_freed = freed;
    v_ack = ack;
    v_fin_reached = !fin_reached;
    v_wake_tx = wake_ack;
    v_rtt_sample_ns = rtt;
    v_ack_bytes = ackb;
    v_ecn_bytes = ecnb;
    v_fast_retx = fretx;
  }

let tx cfg ~now conn ~alloc_gseq =
  ignore now;
  let p = conn.proto in
  let usable = p.remote_win - tx_unacked conn in
  (* TSO (§3.4): one descriptor may carry up to [b_tso] MSS units; the
     NBI splits it back into wire frames. At [b_tso = 1] the cap is
     exactly [mss], today's per-segment behavior. *)
  let cap = cfg.Config.mss * cfg.Config.batch.Config.b_tso in
  let len = min cap (min (tx_avail conn) usable) in
  let emit ~len ~fin =
    let pos = p.tx_next_pos in
    let seq = tx_seq_of_pos conn pos in
    p.tx_next_pos <- pos + len;
    if p.tx_next_pos > p.tx_max_pos then p.tx_max_pos <- p.tx_next_pos;
    (* A data segment carries the cumulative ACK: delayed ACKs ride
       along. *)
    p.delack_segs <- 0;
    if fin then p.fin_sent <- true;
    let more = tx_avail conn > 0 && p.remote_win - tx_unacked conn > 0 in
    Some
      {
        Meta.t_conn = conn.idx;
        t_gseq = alloc_gseq ();
        t_pos = pos;
        t_len = len;
        t_seq = seq;
        t_ack = Tcp.Reassembly.next p.reasm;
        t_wnd = scaled_window cfg p.rx_avail;
        t_fin = fin;
        t_cwr =
          (if p.cwr_pending then begin
             p.cwr_pending <- false;
             true
           end
           else false);
        t_ts_ecr = p.next_ts;
        t_more = more;
      }
  in
  if len > 0 then
    emit ~len ~fin:(p.tx_fin && p.tx_next_pos + len = p.tx_tail_pos)
  else if
    p.tx_fin && (not p.fin_sent)
    && tx_avail conn = 0
    && usable >= 0
  then emit ~len:0 ~fin:true
  else None

type hc_result = {
  hc_wake_tx : bool;
  hc_window_update : Meta.ack_info option;
}

let hc cfg ~now conn op ~alloc_gseq =
  let p = conn.proto in
  match op with
  | Meta.Tx_avail n ->
      (* Once the FIN is on the wire the stream end is committed: a
         Tx_avail that raced the Fin (cross-ring reorder, or a delayed
         descriptor DMA completing out of order) must not extend the
         tail past a sent FIN — that would emit data overlapping the
         FIN's sequence number. Before [fin_sent], extending is safe:
         the FIN simply rides after the new tail. *)
      if p.tx_fin && (p.fin_sent || p.fin_acked) then
        { hc_wake_tx = false; hc_window_update = None }
      else begin
        p.tx_tail_pos <- p.tx_tail_pos + n;
        { hc_wake_tx = true; hc_window_update = None }
      end
  | Meta.Rx_credit n ->
      let was_closed = p.rx_avail < cfg.Config.mss in
      (* Defensive: libTOE is untrusted (§3); never credit beyond the
         buffer the control plane allocated (a static per-connection
         size, so reading it does not breach stage-state separation). *)
      let buf_size = Host.Payload_buf.size conn.post.Conn_state.rx_buf in
      p.rx_avail <- min (p.rx_avail + n) buf_size;
      let update =
        if was_closed && p.rx_avail >= cfg.Config.mss then
          Some (make_ack cfg conn ~gseq:(alloc_gseq ()))
        else None
      in
      { hc_wake_tx = false; hc_window_update = update }
  | Meta.Fin ->
      (* Idempotent: a second Fin (double close, or libTOE and the
         control plane both signalling) is a no-op — re-waking TX for
         an already-frozen tail would only burn scheduler credits. *)
      if p.tx_fin then { hc_wake_tx = false; hc_window_update = None }
      else begin
        p.tx_fin <- true;
        { hc_wake_tx = true; hc_window_update = None }
      end
  | Meta.Retransmit ->
      p.tx_next_pos <- p.tx_acked_pos;
      p.karn_pos <- p.tx_max_pos;
      p.fin_sent <- false;
      p.dupack_cnt <- 0;
      p.last_progress <- now;
      { hc_wake_tx = true; hc_window_update = None }
  | Meta.Ack_flush ->
      if p.delack_segs > 0 then begin
        p.delack_segs <- 0;
        {
          hc_wake_tx = false;
          hc_window_update = Some (make_ack cfg conn ~gseq:(alloc_gseq ()));
        }
      end
      else { hc_wake_tx = false; hc_window_update = None }
