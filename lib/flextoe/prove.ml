(** FlexProve: whole-graph static analysis over the {!Graph_ir}.

    Six passes, each a pure function of the IR:

    - {!interference}: the whole-graph generalization of the pairwise
      {!Effects.check} — computes which stage executions may happen in
      parallel (serialization domains, early-release defects, replica
      self-races), footprint-checks every such pair, verifies every
      named serialization domain is realized by an edge of the graph,
      and demands an ordered dataflow path from writer to reader for
      every address-partitioned ([r_disjoint]) region hand-off;
    - {!deadlock}: cycles in the wait-for graph of blocking edges
      (credits, backpressured queues) must contain a draining edge;
    - {!bounds}: worst-case occupancy of every queue, evaluated from
      the graph's own slots/tokens/capacities, must fit the configured
      capacity wherever overflow would be a bug;
    - {!partition}: the LP partition is sound for conservative
      parallel simulation — every cross-LP edge carries a positive
      lookahead (a zero-lookahead boundary would stall the
      null-message protocol), and stages that share a serialization
      domain are co-located on one LP (a critical section cannot span
      logical processes);
    - {!sharding}: FlexScale replica families (nodes named [stage] /
      [stage#k]) are sound shardings — members are footprint-identical
      copies of one stage, each on its own LP, and everything they
      write outside atomic/partitioned regions sits under a per-conn
      or per-flow-group serialization domain, so flow-group steering
      (which pins each connection to exactly one member) makes their
      conn-state footprints disjoint across members;
    - {!check_fsm}: exhaustive model check of the shared teardown
      transition table ({!Conn_state.step}) against the RFC-793/6191
      teardown spec, producing a path-to-violation counterexample.

    [Datapath.create] runs the five graph passes once per node (after
    the pairwise {!Effects.check}) and raises {!Graph_rejected} on any
    finding, so an unsound composition fails before any FPC is wired —
    and at zero per-segment cost. *)

module G = Graph_ir
module E = Effects

(* --- Reports ---------------------------------------------------------- *)

type finding = { f_pass : string; f_subject : string; f_detail : string }

type report = {
  r_pass : string;
  r_notes : string list;  (** What was proven, for the OK lines. *)
  r_findings : finding list;  (** Empty = the pass holds. *)
}

let finding_to_string f =
  Printf.sprintf "[%s] %s: %s" f.f_pass f.f_subject f.f_detail

exception Graph_rejected of finding list

let () =
  Printexc.register_printer (function
    | Graph_rejected fs ->
        Some
          ("Prove.Graph_rejected: "
          ^ String.concat "; " (List.map finding_to_string fs))
    | _ -> None)

(* --- Well-formedness (shared by the passes) --------------------------- *)

let wellformed_findings (g : G.t) =
  let fail subject detail = { f_pass = "graph"; f_subject = subject;
                              f_detail = detail } in
  let node_names = List.map (fun n -> n.G.n_name) g.G.g_nodes in
  let dup =
    List.filter
      (fun n -> List.length (List.filter (( = ) n) node_names) > 1)
      (List.sort_uniq compare node_names)
  in
  let dups = List.map (fun n -> fail n "duplicate node name") dup in
  let endpoints =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun name ->
            if List.mem name node_names then None
            else Some (fail e.G.e_label ("unknown endpoint " ^ name)))
          [ e.G.e_src; e.G.e_dst ])
      g.G.g_edges
  in
  dups @ endpoints

(* --- Pass 1: whole-graph interference --------------------------------- *)

(* May two executions (one of [a], one of [b]) run concurrently for
   the same flow? Serialization domains order them only if both
   stages' writes actually stay inside the critical section; an
   early-release defect voids the domain's protection. A single stage
   races itself when it has multiple slots and no domain. *)
let may_run_concurrently a b =
  let serialized =
    E.serialized_together a.G.n_contract b.G.n_contract
    && a.G.n_serialized_writes && b.G.n_serialized_writes
  in
  if serialized then false
  else if a.G.n_name = b.G.n_name then
    (* Self-pair: only one execution exists unless the stage has
       multiple slots (or its single FPC is multi-threaded). *)
    a.G.n_slots > 1
  else true

(* Ordered dataflow reachability: a path of order-preserving work
   edges from [src] to [dst] means [src]'s completion of a unit
   happens-before [dst]'s processing of that unit. *)
let ordered_path (g : G.t) ~src ~dst =
  let rec bfs visited = function
    | [] -> false
    | n :: _ when n = dst -> true
    | n :: rest ->
        let next =
          List.filter_map
            (fun e ->
              if
                e.G.e_src = n && G.is_dataflow e && G.is_ordered e
                && not (List.mem e.G.e_dst visited)
              then Some e.G.e_dst
              else None)
            g.G.g_edges
        in
        bfs (next @ visited) (rest @ next)
  in
  src = dst || bfs [ src ] [ src ]

let interference (g : G.t) : report =
  let fail subject detail =
    { f_pass = "interference"; f_subject = subject; f_detail = detail }
  in
  let wf = wellformed_findings g in
  (* (a) Footprint compatibility over the may-happen-in-parallel
     relation, reusing the pairwise conflict enumeration. *)
  let rec pairs = function
    | [] -> []
    | n :: rest -> (n, n) :: List.map (fun m -> (n, m)) rest @ pairs rest
  in
  let conflicts =
    List.concat_map
      (fun (a, b) ->
        if not (may_run_concurrently a b) then []
        else
          let ca = a.G.n_contract and cb = b.G.n_contract in
          let cs =
            if a.G.n_name = b.G.n_name then E.conflicts_of_pair ca cb
            else E.conflicts_of_pair ca cb @ E.conflicts_of_pair cb ca
          in
          List.map
            (fun c ->
              fail
                (a.G.n_name ^ "/" ^ b.G.n_name)
                (E.conflict_to_string c))
            cs)
      (pairs g.G.g_nodes)
  in
  (* (b) Domain realization: a Serial_queue / Serial_flow_group claim
     is only as good as the queue or sequencer that implements it —
     it must exist as an edge of the graph. Unrealizable pairwise. *)
  let labels = List.map (fun e -> e.G.e_label) g.G.g_edges in
  let domains =
    List.filter_map
      (fun n ->
        match n.G.n_contract.E.c_domain with
        | E.Serial_queue l | E.Serial_flow_group l ->
            if List.mem l labels then None
            else
              Some
                (fail n.G.n_name
                   (Printf.sprintf
                      "serialization domain %s is not realized by any \
                       edge of the graph"
                      (E.domain_name n.G.n_contract.E.c_domain)))
        | E.Serial_none | E.Serial_conn -> None)
      g.G.g_nodes
  in
  (* (c) Address-partitioned hand-offs: an [r_disjoint] region's
     safety argument is that the writer's ranges reach the reader
     through an ordered hand-off — demand the path. This is what
     makes "notify only after payload DMA" a declared, checkable
     obligation instead of a comment. *)
  let disjoint =
    List.concat_map
      (fun w ->
        List.concat_map
          (fun r ->
            if w.G.n_name = r.G.n_name then []
            else
              List.filter_map
                (fun o ->
                  let reg = E.region o in
                  if
                    reg.E.r_disjoint
                    && E.mem o w.G.n_contract.E.c_writes
                    && E.mem o r.G.n_contract.E.c_reads
                    && not (ordered_path g ~src:w.G.n_name ~dst:r.G.n_name)
                  then
                    Some
                      (fail
                         (w.G.n_name ^ "->" ^ r.G.n_name)
                         (Printf.sprintf
                            "no ordered dataflow path covers the \
                             partitioned hand-off of %s"
                            (E.obj_name o)))
                  else None)
                E.all_objs)
          g.G.g_nodes)
      g.G.g_nodes
  in
  let mhp =
    List.length
      (List.filter (fun (a, b) -> may_run_concurrently a b)
         (pairs g.G.g_nodes))
  in
  {
    r_pass = "interference";
    r_notes =
      [
        Printf.sprintf
          "%d stages, %d concurrent pairs footprint-checked, domains \
           realized, partitioned hand-offs ordered"
          (List.length g.G.g_nodes) mhp;
      ];
    r_findings = wf @ conflicts @ domains @ disjoint;
  }

(* --- Pass 2: deadlock freedom ----------------------------------------- *)

(* Wait-for graph: a blocking edge src→dst means src's progress can
   stall until dst makes progress. A cycle of blocking edges is a
   deadlock unless some edge on it drains on its own (timer flush,
   unconditional completion). Reported cycles name the nodes and the
   edge labels, so the overflowing composition is actionable. *)
let deadlock (g : G.t) : report =
  let blocking = List.filter G.is_blocking g.G.g_edges in
  (* Enumerate elementary cycles by DFS from each node (the graphs
     here are a dozen edges, so simplicity beats Johnson's). *)
  let cycles = ref [] in
  let rec dfs start path node =
    List.iter
      (fun e ->
        if e.G.e_src = node then
          if e.G.e_dst = start then cycles := List.rev (e :: path) :: !cycles
          else if
            not (List.exists (fun e' -> e'.G.e_src = e.G.e_dst) path)
            && e.G.e_dst >= start
            (* canonical start = smallest node name: each cycle once *)
          then dfs start (e :: path) e.G.e_dst)
      blocking
  in
  List.iter (fun n -> dfs n.G.n_name [] n.G.n_name) g.G.g_nodes;
  let cycle_findings =
    List.filter_map
      (fun cycle ->
        let drained =
          List.filter_map (fun e -> e.G.e_drain) cycle
        in
        let path =
          String.concat " -> "
            (List.map
               (fun e -> Printf.sprintf "%s[%s]" e.G.e_src e.G.e_label)
               cycle)
        in
        if drained = [] then
          Some
            {
              f_pass = "deadlock";
              f_subject = path;
              f_detail =
                "blocking cycle with no draining edge: every edge waits \
                 on the next";
            }
        else None)
      !cycles
  in
  let broken =
    List.filter
      (fun cycle -> List.exists (fun e -> e.G.e_drain <> None) cycle)
      !cycles
  in
  {
    r_pass = "deadlock";
    r_notes =
      [
        Printf.sprintf
          "%d blocking edges, %d cycle(s), %d broken by a draining edge"
          (List.length blocking) (List.length !cycles) (List.length broken);
      ];
    r_findings = cycle_findings;
  }

(* --- Pass 3: queue bounds --------------------------------------------- *)

let rec eval_bound (g : G.t) b : (int, string) result =
  let combine f = function
    | [] -> Error "empty bound expression"
    | x :: rest ->
        List.fold_left
          (fun acc y ->
            match (acc, eval_bound g y) with
            | Ok a, Ok v -> Ok (f a v)
            | (Error _ as e), _ -> e
            | _, (Error _ as e) -> e)
          (eval_bound g x) rest
  in
  match b with
  | G.Const n -> Ok n
  | G.Slots s -> (
      match G.find_node g s with
      | Some n -> Ok n.G.n_slots
      | None -> Error (Printf.sprintf "bound references unknown stage %s" s))
  | G.Tokens l -> (
      match Option.bind (G.find_edge g l) G.edge_tokens with
      | Some t -> Ok t
      | None ->
          Error (Printf.sprintf "bound references no credit edge %s" l))
  | G.Cap l -> (
      match Option.bind (G.find_edge g l) G.edge_capacity with
      | Some (G.Bounded c) -> Ok c
      | Some G.Unbounded ->
          Error (Printf.sprintf "bound references unbounded queue %s" l)
      | None -> Error (Printf.sprintf "bound references no queue edge %s" l))
  | G.Sum bs -> combine ( + ) bs
  | G.Prod bs -> combine ( * ) bs
  | G.Min_of bs -> combine min bs
  | G.Unbounded_by s -> Error (Printf.sprintf "open-loop inflow from %s" s)

let bounds (g : G.t) : report =
  let checked = ref 0 in
  let findings =
    List.filter_map
      (fun e ->
        match e.G.e_kind with
        | G.Dataflow _ | G.Credit _ -> None
        | G.Queue { q_overflow; q_bound; q_capacity; _ } -> (
            incr checked;
            match q_overflow with
            | G.Backpressure | G.Drop _ ->
                (* Occupancy cannot exceed capacity by construction
                   (blocking), or overflow is shed by stated policy. *)
                None
            | G.Reject -> (
                match (eval_bound g q_bound, q_capacity) with
                | Error e_msg, _ ->
                    Some
                      {
                        f_pass = "bounds";
                        f_subject = e.G.e_label;
                        f_detail =
                          "worst-case occupancy not provable: " ^ e_msg;
                      }
                | Ok v, G.Bounded c when v > c ->
                    Some
                      {
                        f_pass = "bounds";
                        f_subject = e.G.e_label;
                        f_detail =
                          Printf.sprintf
                            "worst-case occupancy %d (= %s) exceeds \
                             capacity %d on edge %s -> %s"
                            v
                            (G.bound_to_string q_bound)
                            c e.G.e_src e.G.e_dst;
                      }
                | Ok _, _ -> None)))
      g.G.g_edges
  in
  {
    r_pass = "bounds";
    r_notes =
      [ Printf.sprintf "%d queue(s): occupancy fits capacity" !checked ];
    r_findings = findings;
  }

(* --- Pass 4: partition soundness --------------------------------------- *)

(* The conservative parallel simulator maps each node's LP onto a
   Cluster LP and each cross-LP edge onto a channel whose lookahead is
   the edge's declared minimum hand-off latency. Two obligations make
   that mapping sound:

   (a) every cross-LP edge needs [e_lookahead > 0] — a channel's
       lookahead is what lets the receiving LP execute ahead of the
       sender; a zero-lookahead boundary forces lockstep and, in a
       cycle, stalls the null-message protocol entirely;

   (b) stages whose contracts share a serialization domain must live
       on the same LP — the critical section realizing the domain is
       LP-local state, it cannot span domains of the OCaml runtime.
       (Early-release sabotage is irrelevant here: the *claim* of a
       shared domain already implies shared placement.)

   FlexScale exemption for (b): members of one replica family
   ([stage] / [stage#k]) deliberately live on different LPs while
   sharing a per-conn domain — flow-group steering pins each
   connection to exactly one member, so the critical section is
   realized member-locally. The {!sharding} pass discharges the
   obligations that make that exemption sound. *)

(* Replica family of a node name: the part before the "#k" shard
   suffix ("protocol#2" -> "protocol"; shard 0 is unsuffixed). *)
let family name =
  match String.index_opt name '#' with
  | Some i -> String.sub name 0 i
  | None -> name

let partition (g : G.t) : report =
  let fail subject detail =
    { f_pass = "partition"; f_subject = subject; f_detail = detail }
  in
  (* Unknown endpoints are already reported by the interference pass's
     well-formedness prelude; [edge_lps] returns [None] for them, so
     this pass just skips such edges. *)
  let cross = List.filter (fun e -> G.is_cross_lp g e) g.G.g_edges in
  let zero_lookahead =
    List.filter_map
      (fun e ->
        if e.G.e_lookahead > Sim.Time.zero then None
        else
          match G.edge_lps g e with
          | Some (a, b) ->
              Some
                (fail e.G.e_label
                   (Printf.sprintf
                      "cross-LP edge %s -> %s (%s -> %s) has no positive \
                       lookahead: the conservative channel cannot make \
                       progress guarantees"
                      e.G.e_src e.G.e_dst (G.lp_name a) (G.lp_name b)))
          | None -> None)
      cross
  in
  let rec pairs = function
    | [] -> []
    | n :: rest -> List.map (fun m -> (n, m)) rest @ pairs rest
  in
  let split_domains =
    List.filter_map
      (fun ((a : G.node), (b : G.node)) ->
        if
          E.serialized_together a.G.n_contract b.G.n_contract
          && a.G.n_lp <> b.G.n_lp
          && family a.G.n_name <> family b.G.n_name
        then
          Some
            (fail
               (a.G.n_name ^ "/" ^ b.G.n_name)
               (Printf.sprintf
                  "stages share serialization domain %s but live on \
                   different LPs (%s vs %s): a critical section cannot \
                   span logical processes"
                  (E.domain_name a.G.n_contract.E.c_domain)
                  (G.lp_name a.G.n_lp) (G.lp_name b.G.n_lp)))
        else None)
      (pairs g.G.g_nodes)
  in
  let lps =
    List.sort_uniq compare (List.map (fun n -> n.G.n_lp) g.G.g_nodes)
  in
  {
    r_pass = "partition";
    r_notes =
      [
        Printf.sprintf
          "%d LP(s), %d cross-LP edge(s) with positive lookahead, \
           serialization domains co-located"
          (List.length lps)
          (List.length cross);
      ];
    r_findings = zero_lookahead @ split_domains;
  }

(* --- Pass 5: sharding soundness ---------------------------------------- *)

(* FlexScale replicates per-flow-group stages across shard LPs and
   claims their conn-state footprints are disjoint because flow-group
   steering maps each connection to exactly one replica. That claim —
   which both the interference pass (replicas treated as mutually
   serialized) and the partition pass (same-family exemption) lean on
   — reduces to three checkable obligations per replica family:

   (a) members are footprint-identical: same reads, writes and
       serialization domain (a replica with a different footprint is
       not a shard of the same stage, and the family exemptions would
       be unsound for it);

   (b) members live on pairwise distinct LPs: two members sharing an
       LP would mean steering does not partition the family's work,
       so "member-local critical section" stops being meaningful;

   (c) every object a member writes outside atomic / address-
       partitioned regions sits under a [Serial_conn] or
       [Serial_flow_group] domain — exactly the domains steering
       realizes member-locally by pinning a connection (and its flow
       group) to one shard. A [Serial_none] or [Serial_queue] write
       has no per-conn partitioning argument, so replicating it
       across shards is a race. *)
let sharding (g : G.t) : report =
  let fail subject detail =
    { f_pass = "sharding"; f_subject = subject; f_detail = detail }
  in
  let families =
    List.fold_left
      (fun acc n ->
        let f = family n.G.n_name in
        match List.assoc_opt f acc with
        | Some ns -> (f, n :: ns) :: List.remove_assoc f acc
        | None -> (f, [ n ]) :: acc)
      [] g.G.g_nodes
  in
  let replicated =
    List.filter (fun (_, ns) -> List.length ns > 1) families
  in
  let findings =
    List.concat_map
      (fun (fam, ns) ->
        let rep = List.hd ns in
        let footprints =
          List.filter_map
            (fun n ->
              if
                n.G.n_contract.E.c_reads = rep.G.n_contract.E.c_reads
                && n.G.n_contract.E.c_writes = rep.G.n_contract.E.c_writes
                && n.G.n_contract.E.c_domain = rep.G.n_contract.E.c_domain
              then None
              else
                Some
                  (fail fam
                     (Printf.sprintf
                        "replica %s is not footprint-identical to %s: \
                         a divergent copy is not a shard of the same \
                         stage"
                        n.G.n_name rep.G.n_name)))
            ns
        in
        let lps = List.map (fun n -> n.G.n_lp) ns in
        let colocated =
          if List.length (List.sort_uniq compare lps) = List.length ns
          then []
          else
            [
              fail fam
                "replica family members share an LP: steering cannot \
                 partition the family's work across them";
            ]
        in
        let unprotected =
          List.filter_map
            (fun o ->
              let r = E.region o in
              if r.E.r_atomic || r.E.r_disjoint then None
              else if not (E.mem o rep.G.n_contract.E.c_writes) then None
              else
                match rep.G.n_contract.E.c_domain with
                | E.Serial_conn | E.Serial_flow_group _ -> None
                | E.Serial_none | E.Serial_queue _ ->
                    Some
                      (fail fam
                         (Printf.sprintf
                            "replicated write of %s is not under a \
                             per-conn or per-flow-group domain: \
                             steering gives no disjointness argument \
                             for it"
                            (E.obj_name o))))
            E.all_objs
        in
        footprints @ colocated @ unprotected)
      replicated
  in
  {
    r_pass = "sharding";
    r_notes =
      [
        (match replicated with
        | [] -> "no replica families: graph is unsharded"
        | fs ->
            Printf.sprintf
              "%d replica family(ies) [%s]: footprint-identical, \
               LP-disjoint, writes steering-partitioned"
              (List.length fs)
              (String.concat ", "
                 (List.map
                    (fun (f, ns) ->
                      Printf.sprintf "%s x%d" f (List.length ns))
                    fs)));
      ];
    r_findings = findings;
  }

(* --- Graph driver ------------------------------------------------------ *)

let graph_reports g =
  [ interference g; deadlock g; bounds g; partition g; sharding g ]
let reports_ok rs = List.for_all (fun r -> r.r_findings = []) rs
let report_findings rs = List.concat_map (fun r -> r.r_findings) rs

let check_graph g =
  let rs = graph_reports g in
  if reports_ok rs then Ok rs else Error (report_findings rs)

(* --- Pass 4: teardown FSM model check ---------------------------------- *)

module C = Conn_state

type fsm_step =
  guard:bool -> tw:bool -> C.lifecycle -> C.close_event ->
  C.lifecycle * C.close_output list

type fsm_counterexample = {
  fc_path : (C.lifecycle * C.close_event) list;
      (** Shortest event path from ESTABLISHED to [fc_state]. *)
  fc_state : C.lifecycle;  (** The state where the spec breaks. *)
  fc_msg : string;
}

let path_to_string path dst =
  String.concat ""
    (List.map
       (fun (s, e) ->
         Printf.sprintf "%s --%s--> " (C.lifecycle_name s) (C.event_name e))
       path)
  ^ C.lifecycle_name dst

let counterexample_to_string c =
  match c.fc_path with
  | [] -> c.fc_msg
  | path -> path_to_string path c.fc_state ^ " : " ^ c.fc_msg

(* Direction-monotonicity spec: teardown never reopens a closed
   direction. *)
let closed_dirs = function
  | C.Phase C.Established -> (false, false)
  | C.Phase C.Fin_wait_1 | C.Phase C.Fin_wait_2 -> (true, false)
  | C.Phase C.Close_wait -> (false, true)
  | C.Phase C.Closing | C.Phase C.Closed -> (true, true)
  | C.Time_wait | C.Reclaimed -> (true, true)

(* Local events: fire without any cooperation from the peer or the
   application — timers and CP polls. Strong liveness (guard on) must
   reclaim every closing state through these alone; [Ev_abort] rides
   along because the RTO timer drives it whenever our FIN is in
   flight (the PR 6 fix made a lost FIN count as in-flight). *)
let local_events = [ C.Ev_teardown; C.Ev_reap_idle; C.Ev_tw_expire;
                     C.Ev_abort ]

let check_fsm ?(step : fsm_step = C.step) ~guard ~tw () :
    (string list, fsm_counterexample) result =
  let step = step ~guard ~tw in
  (* BFS of the reachable state space, recording one shortest event
     path per state for counterexamples. *)
  let paths : (C.lifecycle * (C.lifecycle * C.close_event) list) list ref =
    ref [ (C.Phase C.Established, []) ]
  in
  let frontier = ref [ C.Phase C.Established ] in
  while !frontier <> [] do
    let next =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun e ->
              let s', _ = step s e in
              if List.mem_assoc s' !paths then None
              else begin
                paths := (s', List.assoc s !paths @ [ (s, e) ]) :: !paths;
                Some s'
              end)
            C.all_events)
        !frontier
    in
    frontier := next
  done;
  let reachable = List.map fst !paths in
  let path_to s = List.assoc s !paths in
  let violation s msg =
    Error { fc_path = path_to s; fc_state = s; fc_msg = msg }
  in
  let rec first_error = function
    | [] -> Ok ()
    | check :: rest -> (
        match check () with Ok () -> first_error rest | e -> e)
  in
  let reaches_reclaimed ~events from =
    let rec go visited = function
      | [] -> false
      | C.Reclaimed :: _ -> true
      | s :: rest ->
          let next =
            List.filter_map
              (fun e ->
                let s', _ = step s e in
                if List.mem s' visited then None else Some s')
              events
          in
          go (next @ visited) (rest @ next)
    in
    go [ from ] [ from ]
  in
  let checks =
    [
      (* No unreachable-but-live states: with the matching features
         on, every lifecycle state must be reachable (a state nothing
         can enter is dead weight the CP would never exercise). *)
      (fun () ->
        let expected =
          List.filter
            (fun s -> (s <> C.Time_wait) || tw)
            C.all_lifecycles
        in
        match List.find_opt (fun s -> not (List.mem s reachable)) expected with
        | Some s ->
            Error
              {
                fc_path = [];
                fc_state = s;
                fc_msg =
                  Printf.sprintf "state %s is unreachable (dead state)"
                    (C.lifecycle_name s);
              }
        | None -> Ok ());
      (* TIME_WAIT without a hold configured must stay unreachable. *)
      (fun () ->
        if (not tw) && List.mem C.Time_wait reachable then
          violation C.Time_wait
            "TIME_WAIT reachable although no hold is configured"
        else Ok ());
      (* Monotonicity: no transition reopens a closed direction. *)
      (fun () ->
        first_error
          (List.concat_map
             (fun s ->
               List.map
                 (fun e () ->
                   let s', _ = step s e in
                   let txc, rxc = closed_dirs s in
                   let txc', rxc' = closed_dirs s' in
                   if (txc && not txc') || (rxc && not rxc') then
                     violation s
                       (Printf.sprintf
                          "%s --%s--> %s reopens a closed direction"
                          (C.lifecycle_name s) (C.event_name e)
                          (C.lifecycle_name s'))
                   else Ok ())
                 C.all_events)
             reachable));
      (* RECLAIMED is absorbing and silent. *)
      (fun () ->
        first_error
          (List.map
             (fun e () ->
               match step C.Reclaimed e with
               | C.Reclaimed, [] -> Ok ()
               | s', _ ->
                   violation C.Reclaimed
                     (Printf.sprintf
                        "RECLAIMED --%s--> %s: reclaimed state is not \
                         absorbing"
                        (C.event_name e) (C.lifecycle_name s')))
             C.all_events));
      (* TIME_WAIT entry discipline: only the CP teardown poll on a
         fully-closed connection may park a tuple (RFC 793's
         prescribed entry, collapsed over our FIN bits). *)
      (fun () ->
        first_error
          (List.concat_map
             (fun s ->
               List.map
                 (fun e () ->
                   let s', _ = step s e in
                   if
                     s' = C.Time_wait && s <> C.Time_wait
                     && not (s = C.Phase C.Closed && e = C.Ev_teardown)
                   then
                     violation s
                       (Printf.sprintf
                          "TIME_WAIT entered via %s --%s-->: only \
                           teardown of CLOSED may park a tuple"
                          (C.lifecycle_name s) (C.event_name e))
                   else Ok ())
                 C.all_events)
             reachable));
      (* The TIME_WAIT re-ACK edge (RFC 793 §3.9: a retransmitted FIN
         must be re-acknowledged) — the edge the seeded mutation
         drops. *)
      (fun () ->
        if not (tw && List.mem C.Time_wait reachable) then Ok ()
        else
          match step C.Time_wait C.Ev_tw_fin with
          | C.Time_wait, outs when List.mem C.Out_reack outs -> Ok ()
          | s', outs ->
              violation C.Time_wait
                (Printf.sprintf
                   "TIME_WAIT --tw_fin--> %s [%s]: peer FIN retransmit \
                    not re-ACKed"
                   (C.lifecycle_name s')
                   (String.concat ","
                      (List.map C.output_name outs))));
      (* Reaper exemptions: ESTABLISHED and CLOSE_WAIT are the
         application's business; the idle reaper must not touch
         them. *)
      (fun () ->
        first_error
          (List.map
             (fun s () ->
               match step s C.Ev_reap_idle with
               | s', _ when s' = s -> Ok ()
               | s', _ ->
                   violation s
                     (Printf.sprintf
                        "%s --reap_idle--> %s: reaper touched an exempt \
                         state"
                        (C.lifecycle_name s) (C.lifecycle_name s')))
             (List.filter
                (fun s -> List.mem s reachable)
                [ C.Phase C.Established; C.Phase C.Close_wait ])));
      (* Liveness: no un-reclaimable orphans. Guarded, every closing
         state must reach RECLAIMED through local events alone
         (timers and CP polls — no peer, no app). Unguarded, weak
         liveness (any events) is the honest claim: FIN_WAIT_2 with a
         vanished peer leaks by design, which is precisely what
         FlexGuard's reaper exists to fix. *)
      (fun () ->
        let closing =
          List.filter
            (fun s ->
              s <> C.Phase C.Established && s <> C.Phase C.Close_wait)
            reachable
        in
        let events = if guard then local_events else C.all_events in
        match
          List.find_opt
            (fun s -> not (reaches_reclaimed ~events s))
            closing
        with
        | Some s ->
            violation s
              (Printf.sprintf
                 "%s cannot reach RECLAIMED via %s events \
                  (un-reclaimable orphan)"
                 (C.lifecycle_name s)
                 (if guard then "local (timer/poll)" else "any"))
        | None -> Ok ());
    ]
  in
  match first_error checks with
  | Error c -> Error c
  | Ok () ->
      Ok
        [
          Printf.sprintf
            "%d states reachable, %d transitions enumerated; monotone, \
             TIME_WAIT disciplined, %s liveness"
            (List.length reachable)
            (List.length reachable * List.length C.all_events)
            (if guard then "strong (local-event)" else "weak");
        ]

(* --- Seeded FSM mutations (checker self-test) -------------------------- *)

(* Each mutation rewrites one row of the table; [flexlint fsm
   --mutate] runs the checker over the mutant and must obtain a
   counterexample — the moral equivalent of [flexlint san --seeded]
   for the model checker. *)
let mutate f : fsm_step =
 fun ~guard ~tw s e ->
  match f s e with Some r -> r | None -> C.step ~guard ~tw s e

let fsm_mutations : (string * fsm_step) list =
  [
    ( "drop_tw_reack",
      mutate (fun s e ->
          match (s, e) with
          | C.Time_wait, C.Ev_tw_fin -> Some (C.Time_wait, [])
          | _ -> None) );
    ( "skip_time_wait",
      mutate (fun s e ->
          match (s, e) with
          | C.Phase C.Closed, C.Ev_teardown ->
              Some (C.Reclaimed, [ C.Out_free ])
          | _ -> None) );
    ( "tw_immortal",
      mutate (fun s e ->
          match (s, e) with
          | C.Time_wait, (C.Ev_tw_expire | C.Ev_tw_syn) ->
              Some (C.Time_wait, [])
          | _ -> None) );
    ( "reopen_rx",
      mutate (fun s e ->
          match (s, e) with
          | C.Phase C.Closing, C.Ev_fin_acked ->
              Some (C.Phase C.Fin_wait_2, [])
          | _ -> None) );
    ( "reap_established",
      mutate (fun s e ->
          match (s, e) with
          | C.Phase C.Established, C.Ev_reap_idle ->
              Some (C.Reclaimed, [ C.Out_free ])
          | _ -> None) );
  ]

let fsm_dot ?(step : fsm_step = C.step) ~guard ~tw () =
  let step = step ~guard ~tw in
  let buf = Buffer.create 2048 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "digraph teardown {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  let seen = ref [] in
  let reachable = ref [ C.Phase C.Established ] in
  let frontier = ref [ C.Phase C.Established ] in
  while !frontier <> [] do
    let next =
      List.concat_map
        (fun s ->
          List.filter_map
            (fun e ->
              let s', outs = step s e in
              if s' <> s then begin
                let key = (s, e, s') in
                if not (List.mem key !seen) then begin
                  seen := key :: !seen;
                  pf "  \"%s\" -> \"%s\" [label=\"%s%s\"];\n"
                    (C.lifecycle_name s) (C.lifecycle_name s')
                    (C.event_name e)
                    (match outs with
                    | [] -> ""
                    | _ ->
                        " / "
                        ^ String.concat ","
                            (List.map C.output_name outs))
                end;
                if List.mem s' !reachable then None
                else begin
                  reachable := s' :: !reachable;
                  Some s'
                end
              end
              else None)
            C.all_events)
        !frontier
    in
    frontier := next
  done;
  (* Self-loop outputs worth showing (the re-ACK edge). *)
  (match step C.Time_wait C.Ev_tw_fin with
  | s', outs when s' = C.Time_wait && outs <> [] && List.mem C.Time_wait !reachable ->
      pf "  \"TIME_WAIT\" -> \"TIME_WAIT\" [label=\"tw_fin / %s\"];\n"
        (String.concat "," (List.map C.output_name outs))
  | _ -> ());
  pf "}\n";
  Buffer.contents buf
