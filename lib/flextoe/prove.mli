(** FlexProve: whole-graph static analysis of the datapath.

    Five graph passes over the {!Graph_ir} — whole-graph interference
    (the transitive generalization of the pairwise {!Effects.check}),
    deadlock freedom of the credit/backpressure wait-for graph,
    worst-case queue occupancy against configured capacities,
    soundness of the LP partition for conservative parallel simulation
    (positive lookahead on every cross-LP edge, serialization domains
    co-located), and soundness of FlexScale replica families (shard
    copies footprint-identical, LP-disjoint, with every replicated
    write covered by a steering-partitioned domain) — plus an
    exhaustive model check of the shared teardown transition table
    ({!Conn_state.step}) against an RFC-793/6191 spec.

    [Datapath.create] runs the graph passes once per node and raises
    {!Graph_rejected} on any finding, so an unsound composition fails
    before any FPC is wired — at zero per-segment cost. [flexlint
    graph] and [flexlint fsm] expose all six passes offline. *)

type finding = { f_pass : string; f_subject : string; f_detail : string }

type report = {
  r_pass : string;
  r_notes : string list;  (** What was proven, for the OK lines. *)
  r_findings : finding list;  (** Empty = the pass holds. *)
}

val finding_to_string : finding -> string

exception Graph_rejected of finding list

val interference : Graph_ir.t -> report
(** May-happen-in-parallel pairs (serialization domains × slot counts,
    including stage-vs-itself replica races and early-release defects)
    footprint-checked via the {!Effects} conflict rules; every named
    serialization domain must be realized by an edge of the graph; and
    every address-partitioned ([r_disjoint]) region hand-off must be
    covered by an ordered dataflow path from writer to reader. *)

val deadlock : Graph_ir.t -> report
(** Every cycle of blocking edges (credits, backpressured queues) must
    contain an edge with a drain guarantee; reported cycles name the
    nodes and edge labels on the cycle. *)

val bounds : Graph_ir.t -> report
(** Every [Reject]-overflow queue needs a provable worst-case
    occupancy — finite, and within capacity when the capacity is
    bounded. Findings name the overflowing edge and the bound that
    exceeded it. *)

val eval_bound : Graph_ir.t -> Graph_ir.bound -> (int, string) result

val partition : Graph_ir.t -> report
(** Soundness of the LP partition for the conservative parallel
    simulator ({!Sim.Engine.Cluster}): every cross-LP edge must carry
    a positive [e_lookahead] (the channel realizing it cannot
    guarantee progress otherwise), and stages whose contracts share a
    serialization domain must be assigned the same LP — a critical
    section cannot span logical processes. FlexScale replica families
    ([stage] / [stage#k]) are exempt from co-location: steering
    realizes their shared per-conn domain member-locally, and
    {!sharding} discharges the obligations that make that sound. *)

val family : string -> string
(** Replica family of a node name: the part before the ["#k"] shard
    suffix (["protocol#2"] → ["protocol"]; shard 0 is unsuffixed). *)

val sharding : Graph_ir.t -> report
(** Soundness of FlexScale replica families: members of each family
    with ≥ 2 members must be footprint-identical (same reads, writes
    and domain), live on pairwise distinct LPs, and write outside
    atomic/partitioned regions only under [Serial_conn] or
    [Serial_flow_group] — the domains flow-group steering realizes
    member-locally, which is what makes members' conn-state
    footprints disjoint. Vacuously holds on unsharded graphs. *)

val graph_reports : Graph_ir.t -> report list
(** The five graph passes, in order. *)

val reports_ok : report list -> bool
val report_findings : report list -> finding list

val check_graph : Graph_ir.t -> (report list, finding list) result
(** All five passes; [Error] carries every finding. *)

(** {1 Teardown FSM model check} *)

type fsm_step =
  guard:bool ->
  tw:bool ->
  Conn_state.lifecycle ->
  Conn_state.close_event ->
  Conn_state.lifecycle * Conn_state.close_output list

type fsm_counterexample = {
  fc_path : (Conn_state.lifecycle * Conn_state.close_event) list;
      (** Shortest event path from ESTABLISHED to [fc_state]. *)
  fc_state : Conn_state.lifecycle;  (** The state where the spec breaks. *)
  fc_msg : string;
}

val path_to_string :
  (Conn_state.lifecycle * Conn_state.close_event) list ->
  Conn_state.lifecycle ->
  string

val counterexample_to_string : fsm_counterexample -> string

val check_fsm :
  ?step:fsm_step ->
  guard:bool ->
  tw:bool ->
  unit ->
  (string list, fsm_counterexample) result
(** Model-checks [step] (default {!Conn_state.step}) against the
    teardown spec: no dead states among the feature-enabled lifecycle
    states, TIME_WAIT unreachable unless a hold is configured, no
    transition reopens a closed direction, RECLAIMED absorbing and
    silent, TIME_WAIT entered only by tearing down a fully-closed
    flow, a retransmitted peer FIN into TIME_WAIT re-ACKed (RFC 793
    §3.9), the idle reaper exempts ESTABLISHED and CLOSE_WAIT, and
    liveness: every closing state reaches RECLAIMED — through local
    (timer/poll) events alone when [guard] is on, through some event
    sequence otherwise. [Ok] carries human-readable notes; [Error]
    carries a path-to-violation counterexample. *)

val fsm_mutations : (string * fsm_step) list
(** Seeded single-transition mutations of {!Conn_state.step} — each
    must be rejected by {!check_fsm} in at least one (guard, tw) mode;
    the checker's own negative test suite ([flexlint fsm --mutate]). *)

val fsm_dot : ?step:fsm_step -> guard:bool -> tw:bool -> unit -> string
(** Graphviz rendering of the reachable transition graph, edges
    labelled [event / outputs]. *)
