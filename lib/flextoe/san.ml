(** FlexSan layer 2: a dynamic happens-before race and atomicity
    sanitizer for the parallel datapath.

    The simulator is single-threaded and deterministic, so nothing
    ever *actually* races — what FlexSan checks is the synchronization
    structure of the pipeline: whether the explicit ordering
    mechanisms (flow-group sequencers, the per-connection protocol
    lock, ring push/pop, DMA completion delivery, work hand-off to an
    FPC hardware thread) are sufficient to order every pair of
    conflicting accesses, as they would have to be on the real
    40-core/8-thread NFP. An access pair left unordered by those
    edges is a race on the hardware even if the simulator happened to
    execute it benignly.

    Mechanics: every execution context is a logical thread — an FPC
    hardware-thread slot ("proto12.3"), a DMA completion queue
    ("dmaq0"), a host context-queue handler ("hostctx1") — with a
    vector clock. Happens-before edges join clocks:

    - FPC work submission: the submitter's clock flows to the
      hardware thread that picks the item up ({!Nfp.Fpc.tracer}).
    - DMA completion delivery: the issuer's clock flows to the
      queue's completion context; per-queue program order provides
      the PCIe FIFO edge ({!Nfp.Dma.tracer}).
    - Sequencer submit/release: every submitter's clock accumulates
      in the sequencer channel; a release joins it — the GRO /
      egress-ordering edge ({!Sequencer.tracer}).
    - The per-connection protocol lock: release publishes, acquire
      joins ({!lock_acquire}/{!lock_release}).
    - Ring push/pop and scheduler doorbells: channel send/recv at the
      corresponding call sites.

    Each shared-state access is reported with
    (thread, stage, flow, region, kind, time); conflicting accesses
    unordered by happens-before are races, an access outside the
    stage's declared {!Effects.contract} is a contract breach, and a
    write that lands inside another stage's open span on a region
    that span already touched is an atomicity violation. *)

module E = Effects

type kind = E.kind = Read | Write

type access = {
  a_thread : string;
  a_stage : string;
  a_flow : int;  (** -1 for global objects. *)
  a_obj : E.obj;
  a_kind : kind;
  a_time : Sim.Time.t;
  a_range : (int * int) option;  (** payload (offset, length) *)
}

type report =
  | Race of access * access  (** older access first *)
  | Atomicity of {
      at_stage : string;  (** the span whose atomicity broke *)
      at_first : access;  (** the span's first touch of the region *)
      at_intruder : access;  (** the write that interleaved mid-span *)
    }
  | Contract_breach of access

let access_to_string a =
  Printf.sprintf "%s@%s %s %s[flow %d]%s t=%dns" a.a_stage a.a_thread
    (match a.a_kind with Read -> "R" | Write -> "W")
    (E.obj_name a.a_obj) a.a_flow
    (match a.a_range with
    | Some (o, l) -> Printf.sprintf "[%d..%d)" o (o + l)
    | None -> "")
    (int_of_float (Sim.Time.to_ns a.a_time))

let report_to_string = function
  | Race (a1, a2) ->
      Printf.sprintf "data race: %s unordered with %s"
        (access_to_string a1) (access_to_string a2)
  | Atomicity { at_stage; at_first; at_intruder } ->
      Printf.sprintf "atomicity violation: %s span broken — %s then %s"
        at_stage (access_to_string at_first) (access_to_string at_intruder)
  | Contract_breach a ->
      Printf.sprintf "contract breach: %s outside the stage's declared \
                      footprint"
        (access_to_string a)

(* --- Vector clocks ------------------------------------------------- *)

(* A clock maps thread id -> counter; represented as a growable int
   array. Thread 0 is the ambient "env" context (host code, engine
   timers): it never joins anything, so publishes from it carry no
   false edges and accesses are never attributed to it by the
   datapath. *)
type clock = int array

let clock_get (c : clock) i = if i < Array.length c then c.(i) else 0

let clock_join (dst : clock) (src : clock) : clock =
  if Array.length src <= Array.length dst then begin
    Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src;
    dst
  end
  else begin
    let out = Array.make (Array.length src) 0 in
    Array.blit dst 0 out 0 (Array.length dst);
    Array.iteri (fun i v -> if v > out.(i) then out.(i) <- v) src;
    out
  end

(* --- Spans --------------------------------------------------------- *)

type span = {
  sp_id : int;
  sp_stage : string;
  sp_flow : int;
  sp_begin : Sim.Time.t;
  (* (flow,obj) -> shadow version + the span's first access there. *)
  sp_touched : (int * int, int * access) Hashtbl.t;
}

(* --- Shadow state -------------------------------------------------- *)

(* Whole-object shadow cell: last write epoch plus the reads since. *)
type cell = {
  mutable cw : (int * int * access) option;  (* tid, counter, access *)
  cr : (int, int * access) Hashtbl.t;  (* tid -> counter, access *)
  mutable ver : int;  (* bumped per write, for atomicity spans *)
  mutable last_w_span : int;  (* span id of last writer, -1 if none *)
  mutable last_w_acc : access option;
}

(* Interval shadow for address-partitioned (payload) regions. *)
type pev = { pe_tid : int; pe_cnt : int; pe_acc : access }

type pcell = { mutable pw : pev list; mutable pr : pev list }

let interval_cap = 128

type t = {
  engine : Sim.Engine.t;
  contracts : (string, E.contract) Hashtbl.t;
  mutable names : string array;  (* tid -> name *)
  tids : (string, int) Hashtbl.t;
  mutable clocks : clock array;  (* tid -> clock *)
  mutable n_threads : int;
  mutable cur : int;  (* ambient thread; 0 = env *)
  chans : (string, clock) Hashtbl.t;
  mutable tokens : clock option array;  (* token id -> published clock *)
  mutable n_tokens : int;
  shadow : (int * int, cell) Hashtbl.t;  (* (flow, obj tag) *)
  pshadow : (int * int, pcell) Hashtbl.t;
  open_spans : (int, span list) Hashtbl.t;  (* flow -> open spans *)
  mutable n_spans : int;
  mutable span_overlaps : int;
  mutable record_spans : bool;
  mutable closed_spans : (int * string * Sim.Time.t * Sim.Time.t) list;
  mutable reports : report list;  (* newest first, bounded *)
  mutable n_reports : int;
  seen : (string, unit) Hashtbl.t;  (* report dedup *)
  mutable n_accesses : int;
  mutable on_report : (report -> unit) option;
      (* fresh-report hook (FlexScope flight-recorder dump) *)
}

let max_kept_reports = 64

let create ~engine ~contracts ?(record_spans = false) () =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (c : E.contract) -> Hashtbl.replace tbl c.c_stage c) contracts;
  let names = Array.make 64 "" in
  names.(0) <- "env";
  let clocks = Array.make 64 [||] in
  clocks.(0) <- Array.make 1 1;
  let tids = Hashtbl.create 64 in
  Hashtbl.replace tids "env" 0;
  let t =
    {
      engine;
      contracts = tbl;
      names;
      tids;
      clocks;
      n_threads = 1;
      cur = 0;
      chans = Hashtbl.create 256;
      tokens = Array.make 1024 None;
      n_tokens = 0;
      shadow = Hashtbl.create 1024;
      pshadow = Hashtbl.create 1024;
      open_spans = Hashtbl.create 64;
      n_spans = 0;
      span_overlaps = 0;
      record_spans;
      closed_spans = [];
      reports = [];
      n_reports = 0;
      seen = Hashtbl.create 64;
      n_accesses = 0;
      on_report = None;
    }
  in
  t

(* --- Threads ------------------------------------------------------- *)

let tid t name =
  match Hashtbl.find_opt t.tids name with
  | Some i -> i
  | None ->
      let i = t.n_threads in
      t.n_threads <- i + 1;
      if i >= Array.length t.names then begin
        let names = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 names 0 (Array.length t.names);
        t.names <- names;
        let clocks = Array.make (2 * Array.length t.clocks) [||] in
        Array.blit t.clocks 0 clocks 0 (Array.length t.clocks);
        t.clocks <- clocks
      end;
      t.names.(i) <- name;
      (* FastTrack convention: a thread's own component starts at 1,
         so its first epoch is never covered by another thread's
         default (zero) view — a fresh thread's accesses must be
         ordered by an explicit edge, not by birth. *)
      let c = Array.make (i + 1) 0 in
      c.(i) <- 1;
      t.clocks.(i) <- c;
      Hashtbl.replace t.tids name i;
      i

let env_tid t = tid t "env"

let cur_clock t =
  let c = t.clocks.(t.cur) in
  if Array.length c <= t.cur then begin
    let c' = Array.make (t.cur + 1) 0 in
    Array.blit c 0 c' 0 (Array.length c);
    t.clocks.(t.cur) <- c';
    c'
  end
  else c

(* Publish the current context: snapshot its clock, then advance its
   own component so later events on this thread are not covered by
   the snapshot. *)
let publish t =
  let c = cur_clock t in
  let snap = Array.copy c in
  c.(t.cur) <- c.(t.cur) + 1;
  snap

let join_into_cur t (src : clock) =
  (* env never joins: the ambient host/timer context must not
     accumulate edges (that would let unrelated host activity appear
     ordered after datapath internals and mask races). *)
  if t.cur <> 0 then t.clocks.(t.cur) <- clock_join (cur_clock t) src

(* --- Channels and tokens ------------------------------------------- *)

let chan_send t name =
  let snap = publish t in
  let cl =
    match Hashtbl.find_opt t.chans name with
    | Some c -> clock_join c snap
    | None -> snap
  in
  Hashtbl.replace t.chans name cl

let chan_recv t name =
  match Hashtbl.find_opt t.chans name with
  | Some c -> join_into_cur t c
  | None -> ()

let token_send t =
  let snap = publish t in
  let id = t.n_tokens in
  t.n_tokens <- id + 1;
  if id >= Array.length t.tokens then begin
    let a = Array.make (2 * Array.length t.tokens) None in
    Array.blit t.tokens 0 a 0 (Array.length t.tokens);
    t.tokens <- a
  end;
  t.tokens.(id) <- Some snap;
  id

let token_join t id =
  if id >= 0 && id < Array.length t.tokens then
    match t.tokens.(id) with
    | Some c ->
        join_into_cur t c;
        t.tokens.(id) <- None  (* single consumer; free the snapshot *)
    | None -> ()

let run_as t ~thread ?join k =
  let prev = t.cur in
  t.cur <- tid t thread;
  (match join with Some tok -> token_join t tok | None -> ());
  Fun.protect ~finally:(fun () -> t.cur <- prev) k

(* --- Lock edges ---------------------------------------------------- *)

let lock_chan flow = "lock#" ^ string_of_int flow

let lock_acquire t ~flow = chan_recv t (lock_chan flow)
let lock_release t ~flow = chan_send t (lock_chan flow)

(* --- Reports ------------------------------------------------------- *)

let add_report t key r =
  t.n_reports <- t.n_reports + 1;
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    if List.length t.reports < max_kept_reports then
      t.reports <- r :: t.reports;
    match t.on_report with Some f -> f r | None -> ()
  end

let set_on_report t f = t.on_report <- f

(* The flow a report is about (first access's flow; -1 = global). *)
let report_flow = function
  | Race (a, _) -> a.a_flow
  | Atomicity { at_first; _ } -> at_first.a_flow
  | Contract_breach a -> a.a_flow

let race_key a1 a2 =
  let part a =
    a.a_stage ^ (match a.a_kind with Read -> ":R:" | Write -> ":W:")
    ^ E.obj_name a.a_obj
  in
  let p1 = part a1 and p2 = part a2 in
  if p1 <= p2 then "race|" ^ p1 ^ "|" ^ p2 else "race|" ^ p2 ^ "|" ^ p1

let report_race t older newer = add_report t (race_key older newer) (Race (older, newer))

(* --- Spans --------------------------------------------------------- *)

let span_begin t ~stage ~flow =
  let existing =
    match Hashtbl.find_opt t.open_spans flow with Some l -> l | None -> []
  in
  if List.exists (fun s -> s.sp_stage = stage) existing then
    t.span_overlaps <- t.span_overlaps + 1;
  let sp =
    {
      sp_id = t.n_spans;
      sp_stage = stage;
      sp_flow = flow;
      sp_begin = Sim.Engine.now t.engine;
      sp_touched = Hashtbl.create 8;
    }
  in
  t.n_spans <- t.n_spans + 1;
  Hashtbl.replace t.open_spans flow (sp :: existing)

let span_end t ~stage ~flow =
  match Hashtbl.find_opt t.open_spans flow with
  | None -> ()
  | Some spans ->
      let rec split acc = function
        | [] -> (None, List.rev acc)
        | s :: rest when s.sp_stage = stage ->
            (Some s, List.rev_append acc rest)
        | s :: rest -> split (s :: acc) rest
      in
      let closed, rest = split [] spans in
      (match closed with
      | Some s when t.record_spans ->
          t.closed_spans <-
            (flow, stage, s.sp_begin, Sim.Engine.now t.engine)
            :: t.closed_spans
      | _ -> ());
      if rest = [] then Hashtbl.remove t.open_spans flow
      else Hashtbl.replace t.open_spans flow rest

let cur_span t ~stage ~flow =
  match Hashtbl.find_opt t.open_spans flow with
  | None -> None
  | Some spans -> List.find_opt (fun s -> s.sp_stage = stage) spans

(* --- Access checking ----------------------------------------------- *)

let hb_before t (etid, ecnt) = ecnt <= clock_get (cur_clock t) etid

let cell_of t key =
  match Hashtbl.find_opt t.shadow key with
  | Some c -> c
  | None ->
      let c =
        { cw = None; cr = Hashtbl.create 4; ver = 0; last_w_span = -1;
          last_w_acc = None }
      in
      Hashtbl.replace t.shadow key c;
      c

let pcell_of t key =
  match Hashtbl.find_opt t.pshadow key with
  | Some c -> c
  | None ->
      let c = { pw = []; pr = [] } in
      Hashtbl.replace t.pshadow key c;
      c

let overlap r1 r2 =
  match (r1, r2) with
  | Some (o1, l1), Some (o2, l2) -> o1 < o2 + l2 && o2 < o1 + l1
  | _ ->
      (* A range-less access to a partitioned region is a pure
         metadata touch; it conflicts with nothing. *)
      false

let bounded_cons ev l = if List.length l >= interval_cap then ev :: List.filteri (fun i _ -> i < interval_cap - 1) l else ev :: l

let check_interval t cell (acc : access) =
  let epoch_cnt = clock_get (cur_clock t) t.cur in
  let me = { pe_tid = t.cur; pe_cnt = epoch_cnt; pe_acc = acc } in
  let conflicts ev =
    ev.pe_tid <> t.cur
    && overlap ev.pe_acc.a_range acc.a_range
    && not (hb_before t (ev.pe_tid, ev.pe_cnt))
  in
  (match acc.a_kind with
  | Read ->
      List.iter (fun ev -> if conflicts ev then report_race t ev.pe_acc acc) cell.pw;
      cell.pr <- bounded_cons me cell.pr
  | Write ->
      List.iter (fun ev -> if conflicts ev then report_race t ev.pe_acc acc) cell.pw;
      List.iter (fun ev -> if conflicts ev then report_race t ev.pe_acc acc) cell.pr;
      cell.pw <- bounded_cons me cell.pw)

let check_cell t cell (acc : access) ~span =
  let epoch_cnt = clock_get (cur_clock t) t.cur in
  (* Snapshot the writer state before applying this access: the
     atomicity check below must see who wrote last *between* the
     span's touches, not the current access itself. *)
  let pre_ver = cell.ver in
  let pre_w_span = cell.last_w_span in
  let pre_w_acc = cell.last_w_acc in
  (* Race vs the last write. *)
  (match cell.cw with
  | Some (wt, wc, wacc) when wt <> t.cur && not (hb_before t (wt, wc)) ->
      report_race t wacc acc
  | _ -> ());
  (match acc.a_kind with
  | Read -> Hashtbl.replace cell.cr t.cur (epoch_cnt, acc)
  | Write ->
      (* Race vs reads since the last write. *)
      Hashtbl.iter
        (fun rt (rc, racc) ->
          if rt <> t.cur && not (hb_before t (rt, rc)) then
            report_race t racc acc)
        cell.cr;
      Hashtbl.reset cell.cr;
      cell.cw <- Some (t.cur, epoch_cnt, acc);
      cell.ver <- cell.ver + 1;
      cell.last_w_span <- (match span with Some s -> s.sp_id | None -> -1);
      cell.last_w_acc <- Some acc);
  (* Atomicity: within an open span, the region must not be written
     from outside the span between the span's touches — even when
     that write is happens-before ordered (a lock released too early
     still breaks the critical section's atomicity). *)
  match span with
  | None -> ()
  | Some s ->
      let key = (acc.a_flow, E.obj_tag acc.a_obj) in
      (match Hashtbl.find_opt s.sp_touched key with
      | None -> ()
      | Some (v0, first) ->
          if pre_ver > v0 && pre_w_span <> s.sp_id then
            match pre_w_acc with
            | Some intruder ->
                add_report t
                  ("atom|" ^ s.sp_stage ^ "|" ^ E.obj_name acc.a_obj ^ "|"
                 ^ intruder.a_stage)
                  (Atomicity
                     { at_stage = s.sp_stage; at_first = first;
                       at_intruder = intruder })
            | None -> ());
      (* Track the post-access version; keep the first touch for the
         diagnostic. *)
      let first =
        match Hashtbl.find_opt s.sp_touched key with
        | Some (_, f) -> f
        | None -> acc
      in
      Hashtbl.replace s.sp_touched key (cell.ver, first)

let access t ~stage ~flow ~obj ?range kind =
  t.n_accesses <- t.n_accesses + 1;
  let acc =
    {
      a_thread = (if t.cur < t.n_threads then t.names.(t.cur) else "?");
      a_stage = stage;
      a_flow = flow;
      a_obj = obj;
      a_kind = kind;
      a_time = Sim.Engine.now t.engine;
      a_range = range;
    }
  in
  (* Contract conformance. *)
  (match Hashtbl.find_opt t.contracts stage with
  | None -> add_report t ("breach|" ^ stage) (Contract_breach acc)
  | Some c ->
      let declared =
        match kind with
        | Write -> E.mem obj c.c_writes
        | Read -> E.mem obj c.c_reads || E.mem obj c.c_writes
      in
      if not declared then
        add_report t
          ("breach|" ^ stage
          ^ (match kind with Read -> ":R:" | Write -> ":W:")
          ^ E.obj_name obj)
          (Contract_breach acc));
  let r = E.region obj in
  if r.E.r_atomic then ()
  else if r.E.r_disjoint then
    check_interval t (pcell_of t (flow, E.obj_tag obj)) acc
  else
    check_cell t
      (cell_of t (flow, E.obj_tag obj))
      acc
      ~span:(cur_span t ~stage ~flow)

(* --- Flow lifecycle ------------------------------------------------ *)

let flow_init t ~flow =
  List.iter
    (fun o ->
      Hashtbl.remove t.shadow (flow, E.obj_tag o);
      Hashtbl.remove t.pshadow (flow, E.obj_tag o))
    E.all_objs;
  Hashtbl.remove t.open_spans flow;
  Hashtbl.remove t.chans (lock_chan flow);
  Hashtbl.remove t.chans ("arx#" ^ string_of_int flow)

let flow_forget = flow_init

(* --- Tracer constructors ------------------------------------------- *)

let fpc_tracer t ~name =
  {
    Nfp.Fpc.tr_submit = (fun () -> token_send t);
    tr_run =
      (fun ~slot ~token k ->
        run_as t ~thread:(name ^ "." ^ string_of_int slot) ~join:token k);
  }

let dma_tracer t =
  {
    Nfp.Dma.dt_issue = (fun ~queue:_ -> token_send t);
    dt_complete =
      (fun ~queue ~token k ->
        run_as t ~thread:("dmaq" ^ string_of_int queue) ~join:token k);
  }

let seq_tracer t ~name =
  let chan = "seq#" ^ name in
  {
    Sequencer.sq_submit = (fun () -> chan_send t chan);
    sq_release =
      (fun k ->
        chan_recv t chan;
        k ());
  }

let sch_tracer t =
  let chan conn = "sch#" ^ string_of_int conn in
  {
    Scheduler.sc_signal =
      (fun ~conn ->
        chan_send t (chan conn);
        chan_send t "sch#*");
    sc_dispatch =
      (fun ~conn k ->
        run_as t ~thread:"sch" (fun () ->
            chan_recv t (chan conn);
            chan_recv t "sch#*";
            k ()));
  }

let ring_tracer t ~name =
  let chan = "ring#" ^ name in
  {
    Nfp.Ring.rg_push = (fun () -> chan_send t chan);
    rg_pop = (fun () -> chan_recv t chan);
  }

(* --- Introspection ------------------------------------------------- *)

let reports t = List.rev t.reports
let report_count t = t.n_reports
let accesses t = t.n_accesses
let span_overlaps t = t.span_overlaps
let closed_spans t = t.closed_spans
let set_record_spans t v = t.record_spans <- v
let threads t = t.n_threads
let env_thread = env_tid
