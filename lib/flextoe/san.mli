(** FlexSan layer 2: the dynamic race and atomicity sanitizer.

    Layer 1 ({!Effects.check}) verified the declared contracts are
    pairwise compatible; this layer checks the accesses the datapath
    {e actually performs} against the happens-before order its
    synchronization {e actually establishes}. Every stage execution
    runs under {!run_as} as a logical thread; FPC submissions, DMA
    completions, sequencer releases, scheduler dispatches and ring
    pushes each publish/join vector clocks through the tracer hooks,
    so two accesses are ordered iff some chain of real mechanisms
    orders them. On top of the classic vector-clock race check it
    enforces:

    - {b contract conformance}: every access must be covered by the
      executing stage's declared footprint (a write needs the object
      in [c_writes]; a read, in [c_reads] or [c_writes]) —
      {!Contract_breach};
    - {b span atomicity}: between {!span_begin} and {!span_end} no
      other thread may write a region the span touched —
      {!Atomicity};
    - {b range disjointness}: for address-partitioned regions
      (payload buffers) concurrent accesses must target disjoint
      byte ranges, checked on the actual [(offset, length)]
      intervals.

    Reports are deduplicated and bounded; the sanitizer never throws
    from the datapath. *)

type kind = Effects.kind = Read | Write

type access = {
  a_thread : string;
  a_stage : string;
  a_flow : int;  (** -1 for global objects. *)
  a_obj : Effects.obj;
  a_kind : kind;
  a_time : Sim.Time.t;
  a_range : (int * int) option;  (** payload (offset, length) *)
}

type report =
  | Race of access * access  (** older access first *)
  | Atomicity of {
      at_stage : string;  (** the span whose atomicity broke *)
      at_first : access;  (** the span's first touch of the region *)
      at_intruder : access;  (** the write that interleaved mid-span *)
    }
  | Contract_breach of access

val access_to_string : access -> string
val report_to_string : report -> string

type t

val create :
  engine:Sim.Engine.t ->
  contracts:Effects.contract list ->
  ?record_spans:bool ->
  unit ->
  t

(** {1 Thread and ordering edges}

    Called from the datapath's instrumentation points; each maps one
    real synchronization mechanism onto the vector-clock order. *)

val run_as : t -> thread:string -> ?join:int -> (unit -> 'a) -> 'a
(** Run [k] as the named logical thread, optionally joining a
    published token first. Nests; restores the ambient thread. *)

val chan_send : t -> string -> unit
val chan_recv : t -> string -> unit
(** Named-channel publish/join (sequencers, rings, locks). *)

val token_send : t -> int
(** Publish the current clock; returns the token to pass to the
    consumer side. *)

val token_join : t -> int -> unit

val lock_acquire : t -> flow:int -> unit
val lock_release : t -> flow:int -> unit
(** The per-connection protocol lock as a channel edge. *)

val set_on_report : t -> (report -> unit) option -> unit
(** Fresh-report hook (FlexScope's flight-recorder dump). *)

val report_flow : report -> int

(** {1 Spans and accesses} *)

val span_begin : t -> stage:string -> flow:int -> unit
val span_end : t -> stage:string -> flow:int -> unit
(** Atomic-section brackets (the protocol stage's critical
    section). *)

val access :
  t ->
  stage:string ->
  flow:int ->
  obj:Effects.obj ->
  ?range:int * int ->
  kind ->
  unit
(** One shadow-memory access check: race, contract conformance, span
    atomicity, and — when [range] is given on an
    address-partitioned region — interval disjointness. *)

val flow_init : t -> flow:int -> unit
(** Reset shadow state for a (re)installed connection index. *)

val flow_forget : t -> flow:int -> unit

(** {1 Tracer constructors}

    Adapters handed to the simulated hardware so its internal
    ordering mechanisms publish/join clocks. *)

val fpc_tracer : t -> name:string -> Nfp.Fpc.tracer
val dma_tracer : t -> Nfp.Dma.tracer
val seq_tracer : t -> name:string -> Sequencer.tracer
val sch_tracer : t -> Scheduler.tracer
val ring_tracer : t -> name:string -> Nfp.Ring.tracer

(** {1 Introspection} *)

val reports : t -> report list
(** Oldest first, deduplicated, bounded. *)

val report_count : t -> int
val accesses : t -> int
val span_overlaps : t -> int
val threads : t -> int
val closed_spans : t -> (int * string * Sim.Time.t * Sim.Time.t) list
val set_record_spans : t -> bool -> unit
val env_thread : t -> int
