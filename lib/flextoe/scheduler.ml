type flow_status = Idle | Ready | Dispatched

type flow = {
  conn : int;
  shard : int;  (* round-robin queue this flow parks in (FlexScale) *)
  mutable status : flow_status;
  mutable ps_per_byte : int;
  mutable next_time : Sim.Time.t;  (* earliest allowed transmission *)
  mutable wake_pending : bool;
}

(* Observation hooks for the FlexSan sanitizer. [sc_signal] publishes
   the context that made a flow eligible (wakeup / on_sent requeue /
   credit return; [conn] is -1 for the global credit doorbell);
   [sc_dispatch] wraps each dispatch, joining the published clocks —
   the scheduler's doorbell as a happens-before edge. *)
type tracer = {
  sc_signal : conn:int -> unit;
  sc_dispatch : conn:int -> (unit -> unit) -> unit;
}

type t = {
  engine : Sim.Engine.t;
  slot : Sim.Time.t;
  slots : int;
  mutable credits : int;
  dispatch : conn:int -> unit;
  shard_of : conn:int -> int;
  flows : (int, flow) Hashtbl.t;
  rr : flow Queue.t array;
      (* uncongested + due flows, one queue per shard group; length 1
         (and byte-identical dispatch order to the single-queue
         scheduler) when unsharded *)
  mutable pump_cursor : int;  (* next shard queue the pump offers to *)
  mutable in_wheel : int;
  mutable dispatched_total : int;
  mutable peak_ready : int;  (* high-water mark of ready t *)
  mutable tracer : tracer option;
}

let create ?(shards = 1) ?(shard_of = fun ~conn:_ -> 0) engine ~slot ~slots
    ~credits ~dispatch =
  if slot <= 0 || slots <= 0 then
    invalid_arg "Scheduler.create: bad wheel geometry";
  if shards <= 0 then invalid_arg "Scheduler.create: shards must be positive";
  {
    engine;
    slot;
    slots;
    credits;
    dispatch;
    shard_of;
    flows = Hashtbl.create 256;
    rr = Array.init shards (fun _ -> Queue.create ());
    pump_cursor = 0;
    in_wheel = 0;
    dispatched_total = 0;
    peak_ready = 0;
    tracer = None;
  }

let set_tracer t tr = t.tracer <- tr

let flow t conn =
  match Hashtbl.find_opt t.flows conn with
  | Some f -> f
  | None ->
      let n = Array.length t.rr in
      let shard =
        if n = 1 then 0
        else begin
          let s = t.shard_of ~conn in
          if s < 0 || s >= n then 0 else s
        end
      in
      let f =
        {
          conn;
          shard;
          status = Idle;
          ps_per_byte = 0;
          next_time = Sim.Time.zero;
          wake_pending = false;
        }
      in
      Hashtbl.replace t.flows conn f;
      f

(* Dispatch loop: round-robin across the shard queues (trivially the
   old single-queue behavior at one shard), popping one Ready flow per
   visit so no shard can starve another while credits last. *)
let rec pump t =
  if t.credits > 0 then begin
    let n = Array.length t.rr in
    let rec find i =
      if i >= n then None
      else
        let qi = (t.pump_cursor + i) mod n in
        if Queue.is_empty t.rr.(qi) then find (i + 1) else Some qi
    in
    match find 0 with
    | None -> ()
    | Some qi ->
        t.pump_cursor <- (qi + 1) mod n;
        let f = Queue.pop t.rr.(qi) in
        if f.status = Ready then begin
          f.status <- Dispatched;
          t.credits <- t.credits - 1;
          t.dispatched_total <- t.dispatched_total + 1;
          (match t.tracer with
          | None -> t.dispatch ~conn:f.conn
          | Some tr ->
              tr.sc_dispatch ~conn:f.conn (fun () -> t.dispatch ~conn:f.conn));
          pump t
        end
        else pump t
  end

(* Park a Ready flow: straight onto the round-robin queue when
   unpaced or already due; otherwise into the wheel slot covering its
   deadline (deadlines are rounded up to slot granularity; the horizon
   clamps far-future deadlines, as a bounded hardware wheel must). *)
let note_peak t =
  let d =
    Array.fold_left (fun n q -> n + Queue.length q) t.in_wheel t.rr
  in
  if d > t.peak_ready then t.peak_ready <- d

let park t f =
  let now = Sim.Engine.now t.engine in
  if f.ps_per_byte = 0 || f.next_time <= now then begin
    Queue.push f t.rr.(f.shard);
    note_peak t;
    pump t
  end
  else begin
    let horizon = t.slot * t.slots in
    let deadline = min f.next_time (now + horizon) in
    let slot_deadline = (deadline + t.slot - 1) / t.slot * t.slot in
    t.in_wheel <- t.in_wheel + 1;
    note_peak t;
    Sim.Engine.schedule_at t.engine slot_deadline (fun () ->
        t.in_wheel <- t.in_wheel - 1;
        if f.status = Ready then begin
          Queue.push f t.rr.(f.shard);
          pump t
        end)
  end

let wakeup t ~conn =
  (match t.tracer with Some tr -> tr.sc_signal ~conn | None -> ());
  let f = flow t conn in
  match f.status with
  | Idle ->
      f.status <- Ready;
      park t f
  | Ready -> ()
  | Dispatched -> f.wake_pending <- true

let on_sent t ~conn ~bytes ~more =
  (match t.tracer with Some tr -> tr.sc_signal ~conn | None -> ());
  let f = flow t conn in
  if f.status = Dispatched then begin
    if bytes > 0 && f.ps_per_byte > 0 then begin
      let now = Sim.Engine.now t.engine in
      let base = max f.next_time now in
      f.next_time <- base + (bytes * f.ps_per_byte)
    end;
    if more || f.wake_pending then begin
      f.wake_pending <- false;
      f.status <- Ready;
      park t f
    end
    else f.status <- Idle
  end

let credit_return t =
  (match t.tracer with Some tr -> tr.sc_signal ~conn:(-1) | None -> ());
  t.credits <- t.credits + 1;
  pump t

let set_interval t ~conn ~ps_per_byte = (flow t conn).ps_per_byte <- ps_per_byte
let interval t ~conn = (flow t conn).ps_per_byte

let forget t ~conn =
  (match Hashtbl.find_opt t.flows conn with
  | Some f -> f.status <- Idle
  | None -> ());
  Hashtbl.remove t.flows conn

let credits_available t = t.credits

let ready t =
  Array.fold_left
    (fun acc q ->
      Queue.fold (fun n f -> if f.status = Ready then n + 1 else n) acc q)
    t.in_wheel t.rr

let dispatched_total t = t.dispatched_total
let peak_ready t = t.peak_ready
