type flow_status = Idle | Ready | Dispatched

type flow = {
  conn : int;
  mutable status : flow_status;
  mutable ps_per_byte : int;
  mutable next_time : Sim.Time.t;  (* earliest allowed transmission *)
  mutable wake_pending : bool;
}

(* Observation hooks for the FlexSan sanitizer. [sc_signal] publishes
   the context that made a flow eligible (wakeup / on_sent requeue /
   credit return; [conn] is -1 for the global credit doorbell);
   [sc_dispatch] wraps each dispatch, joining the published clocks —
   the scheduler's doorbell as a happens-before edge. *)
type tracer = {
  sc_signal : conn:int -> unit;
  sc_dispatch : conn:int -> (unit -> unit) -> unit;
}

type t = {
  engine : Sim.Engine.t;
  slot : Sim.Time.t;
  slots : int;
  mutable credits : int;
  dispatch : conn:int -> unit;
  flows : (int, flow) Hashtbl.t;
  rr : flow Queue.t;  (* uncongested + due flows *)
  mutable in_wheel : int;
  mutable dispatched_total : int;
  mutable peak_ready : int;  (* high-water mark of ready t *)
  mutable tracer : tracer option;
}

let create engine ~slot ~slots ~credits ~dispatch =
  if slot <= 0 || slots <= 0 then
    invalid_arg "Scheduler.create: bad wheel geometry";
  {
    engine;
    slot;
    slots;
    credits;
    dispatch;
    flows = Hashtbl.create 256;
    rr = Queue.create ();
    in_wheel = 0;
    dispatched_total = 0;
    peak_ready = 0;
    tracer = None;
  }

let set_tracer t tr = t.tracer <- tr

let flow t conn =
  match Hashtbl.find_opt t.flows conn with
  | Some f -> f
  | None ->
      let f =
        {
          conn;
          status = Idle;
          ps_per_byte = 0;
          next_time = Sim.Time.zero;
          wake_pending = false;
        }
      in
      Hashtbl.replace t.flows conn f;
      f

let rec pump t =
  if t.credits > 0 && not (Queue.is_empty t.rr) then begin
    let f = Queue.pop t.rr in
    if f.status = Ready then begin
      f.status <- Dispatched;
      t.credits <- t.credits - 1;
      t.dispatched_total <- t.dispatched_total + 1;
      (match t.tracer with
      | None -> t.dispatch ~conn:f.conn
      | Some tr ->
          tr.sc_dispatch ~conn:f.conn (fun () -> t.dispatch ~conn:f.conn));
      pump t
    end
    else pump t
  end

(* Park a Ready flow: straight onto the round-robin queue when
   unpaced or already due; otherwise into the wheel slot covering its
   deadline (deadlines are rounded up to slot granularity; the horizon
   clamps far-future deadlines, as a bounded hardware wheel must). *)
let note_peak t =
  let d = Queue.length t.rr + t.in_wheel in
  if d > t.peak_ready then t.peak_ready <- d

let park t f =
  let now = Sim.Engine.now t.engine in
  if f.ps_per_byte = 0 || f.next_time <= now then begin
    Queue.push f t.rr;
    note_peak t;
    pump t
  end
  else begin
    let horizon = t.slot * t.slots in
    let deadline = min f.next_time (now + horizon) in
    let slot_deadline = (deadline + t.slot - 1) / t.slot * t.slot in
    t.in_wheel <- t.in_wheel + 1;
    note_peak t;
    Sim.Engine.schedule_at t.engine slot_deadline (fun () ->
        t.in_wheel <- t.in_wheel - 1;
        if f.status = Ready then begin
          Queue.push f t.rr;
          pump t
        end)
  end

let wakeup t ~conn =
  (match t.tracer with Some tr -> tr.sc_signal ~conn | None -> ());
  let f = flow t conn in
  match f.status with
  | Idle ->
      f.status <- Ready;
      park t f
  | Ready -> ()
  | Dispatched -> f.wake_pending <- true

let on_sent t ~conn ~bytes ~more =
  (match t.tracer with Some tr -> tr.sc_signal ~conn | None -> ());
  let f = flow t conn in
  if f.status = Dispatched then begin
    if bytes > 0 && f.ps_per_byte > 0 then begin
      let now = Sim.Engine.now t.engine in
      let base = max f.next_time now in
      f.next_time <- base + (bytes * f.ps_per_byte)
    end;
    if more || f.wake_pending then begin
      f.wake_pending <- false;
      f.status <- Ready;
      park t f
    end
    else f.status <- Idle
  end

let credit_return t =
  (match t.tracer with Some tr -> tr.sc_signal ~conn:(-1) | None -> ());
  t.credits <- t.credits + 1;
  pump t

let set_interval t ~conn ~ps_per_byte = (flow t conn).ps_per_byte <- ps_per_byte
let interval t ~conn = (flow t conn).ps_per_byte

let forget t ~conn =
  (match Hashtbl.find_opt t.flows conn with
  | Some f -> f.status <- Idle
  | None -> ());
  Hashtbl.remove t.flows conn

let credits_available t = t.credits

let ready t =
  Queue.fold (fun n f -> if f.status = Ready then n + 1 else n) 0 t.rr
  + t.in_wheel

let dispatched_total t = t.dispatched_total
let peak_ready t = t.peak_ready
