(** Work-conserving flow scheduler, after Carousel (§3.5).

    The scheduler initiates TX workflows for flows with a non-zero
    transmit window, enforcing the control plane's per-flow rate
    limits via a time wheel: a flow's next transmission time advances
    by [bytes / rate] after each segment, and the flow parks in the
    wheel slot covering that deadline. Uncongested flows (rate 0)
    bypass the rate limiter and are scheduled round-robin. Order
    within a slot is not preserved (hardware-queue semantics).

    Division is not available on FPCs, so rates are stored as
    picoseconds-per-byte intervals, precomputed by the control plane;
    the wheel computes deadlines with multiplication only.

    Dispatch is credit-gated: each in-flight TX workflow holds one
    credit (an NIC segment buffer); credits return when the segment
    leaves the NBI or the workflow aborts. *)

type t

(** Observation hooks (used by the FlexSan sanitizer). [sc_signal]
    runs in the context that made a flow eligible ([conn] is [-1] for
    the global credit doorbell); [sc_dispatch] wraps each dispatch —
    the scheduler's doorbell as a happens-before edge. *)
type tracer = {
  sc_signal : conn:int -> unit;
  sc_dispatch : conn:int -> (unit -> unit) -> unit;
}

val set_tracer : t -> tracer option -> unit
(** Install (or clear) the tracer. Zero cost when unset. *)

val create :
  ?shards:int ->
  ?shard_of:(conn:int -> int) ->
  Sim.Engine.t ->
  slot:Sim.Time.t ->
  slots:int ->
  credits:int ->
  dispatch:(conn:int -> unit) ->
  t
(** [shards] (default 1) splits the round-robin path into per-shard
    queues serviced round-robin by the dispatch pump, so one shard
    group's backlog cannot starve another's (FlexScale). [shard_of]
    maps a connection to its shard at first sight (clamped to
    [0, shards)); at [shards = 1] dispatch order is byte-identical to
    the single-queue scheduler. *)

val wakeup : t -> conn:int -> unit
(** The flow (possibly) became eligible to send: new app data (HC),
    window opened, or retransmission reset. Idempotent. *)

val on_sent : t -> conn:int -> bytes:int -> more:bool -> unit
(** Called at the end of a dispatched TX workflow: [bytes] were
    committed for this flow ([0] if nothing could be sent) and [more]
    says whether the flow still has transmittable data. Advances the
    flow's pacing deadline and requeues it if needed. Does {e not}
    return the credit. *)

val credit_return : t -> unit
(** A TX workflow's segment buffer was freed. *)

val set_interval : t -> conn:int -> ps_per_byte:int -> unit
(** Program a flow's pacing interval; 0 returns it to the
    round-robin (uncongested) path. *)

val interval : t -> conn:int -> int

val forget : t -> conn:int -> unit
(** Drop scheduler state for a closed connection. *)

val credits_available : t -> int
val ready : t -> int
(** Flows currently queued (round-robin and wheel). *)

val dispatched_total : t -> int

val peak_ready : t -> int
(** High-water mark of the queued-flow count (round-robin + wheel),
    for FlexGuard's bounded-queue-depth gate. Always tracked — a bare
    int comparison per park. *)
