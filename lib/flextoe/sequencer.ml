type 'a slot = Item of 'a | Skipped

(* Observation hooks for the FlexSan sanitizer. Every submit/skip
   publishes the submitting context ([sq_submit]); a release joins the
   accumulated channel ([sq_release] wraps the release callback) —
   the sequencer's ordering guarantee as a happens-before edge. *)
type tracer = {
  sq_submit : unit -> unit;
  sq_release : (unit -> unit) -> unit;
}

type 'a t = {
  name : string;
  release : 'a -> unit;
  mutable next_alloc : int;
  mutable next_release : int;
  waiting : (int, 'a slot) Hashtbl.t;
  mutable released : int;
  mutable reordered : int;
  mutable tracer : tracer option;
}

let create ~name ~release =
  {
    name;
    release;
    next_alloc = 0;
    next_release = 0;
    waiting = Hashtbl.create 64;
    released = 0;
    reordered = 0;
    tracer = None;
  }

let set_tracer t tr = t.tracer <- tr

let next_seq t =
  let s = t.next_alloc in
  t.next_alloc <- s + 1;
  s

let rec drain t =
  match Hashtbl.find_opt t.waiting t.next_release with
  | None -> ()
  | Some slot ->
      Hashtbl.remove t.waiting t.next_release;
      t.next_release <- t.next_release + 1;
      (match slot with
      | Item v ->
          t.released <- t.released + 1;
          (match t.tracer with
          | None -> t.release v
          | Some tr -> tr.sq_release (fun () -> t.release v))
      | Skipped -> ());
      drain t

let check_valid t seq =
  if seq >= t.next_alloc then
    invalid_arg (t.name ^ ": sequence number was never allocated");
  if seq < t.next_release || Hashtbl.mem t.waiting seq then
    invalid_arg (t.name ^ ": duplicate sequence number")

let submit t ~seq v =
  check_valid t seq;
  if seq <> t.next_release then t.reordered <- t.reordered + 1;
  (match t.tracer with Some tr -> tr.sq_submit () | None -> ());
  Hashtbl.replace t.waiting seq (Item v);
  drain t

let skip t ~seq =
  check_valid t seq;
  (match t.tracer with Some tr -> tr.sq_submit () | None -> ());
  Hashtbl.replace t.waiting seq Skipped;
  drain t

let pending t = Hashtbl.length t.waiting
let released t = t.released
let reordered t = t.reordered
