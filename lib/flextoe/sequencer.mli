(** Segment sequencing and reordering (§3.2).

    Parallel pipeline stages (replicated pre/post-processors, DMA
    managers) can reorder segments. Because TCP receivers treat
    reordering as loss, FlexTOE assigns every segment entering the
    pipeline a sequence number and re-establishes that order at two
    choke points: before the protocol stage (the GRO FPC) and before
    the NBI (the TX reorderer). A dropped segment must {e skip} its
    sequence number or the stream would stall. *)

type 'a t

(** Observation hooks (used by the FlexSan sanitizer). [sq_submit]
    runs in the submitting context on every {!submit} and {!skip};
    [sq_release] wraps each in-order release — together they expose
    the sequencer's ordering guarantee as a happens-before edge. *)
type tracer = {
  sq_submit : unit -> unit;
  sq_release : (unit -> unit) -> unit;
}

val create : name:string -> release:('a -> unit) -> 'a t
(** [release] is called, in sequence order, for every submitted item. *)

val set_tracer : 'a t -> tracer option -> unit
(** Install (or clear) the tracer. Zero cost when unset. *)

val next_seq : 'a t -> int
(** Allocate the next pipeline sequence number (at pipeline entry). *)

val submit : 'a t -> seq:int -> 'a -> unit
(** Hand an item (back) to the sequencer; it is released once all
    earlier sequence numbers have been submitted or skipped. Raises
    [Invalid_argument] on duplicate or never-allocated sequence
    numbers. *)

val skip : 'a t -> seq:int -> unit
(** Declare a sequence number dead (segment dropped mid-pipeline). *)

val pending : 'a t -> int
(** Items buffered waiting for a predecessor. *)

val released : 'a t -> int
val reordered : 'a t -> int
(** Items that arrived out of pipeline order (a measure of how much
    reordering the parallel stages introduced). *)
