(* Abstract-interpretation eBPF verifier. See verifier.mli and
   DESIGN.md §9 for the safety argument and the deliberate deviations
   from the Linux verifier. *)

open Bpf_insn

let stack_size = 512

type map_spec = { key_size : int; value_size : int }

type interval = { lo : int64; hi : int64 }

type aval =
  | Uninit
  | Scalar of interval
  | Ptr_ctx of int
  | Ptr_pkt of int
  | Ptr_pkt_end
  | Ptr_stack of int
  | Ptr_map_value of { map : int option; off : int; size : int option }
  | Null_or_map_value of { map : int option; size : int option }

type state = { regs : aval array; stack : Bytes.t; mutable bound : int }

type reason =
  | Empty_program
  | Program_too_long of { len : int; max : int }
  | Invalid_register of int
  | Write_to_r10
  | Bad_endian_width of int
  | Jump_out_of_bounds of { target : int }
  | Fallthrough_off_end
  | Unreachable_insn
  | Unknown_helper of int
  | Uninitialized_register of int
  | Uninitialized_stack of { off : int; width : int }
  | Stack_out_of_bounds of { off : int; width : int }
  | Pkt_out_of_bounds of { off : int; width : int; bound : int }
  | Ctx_bad_access of { off : int; width : int }
  | Write_to_ctx
  | Map_value_out_of_bounds of { off : int; width : int; size : int }
  | Possibly_null_deref of int
  | Deref_of_non_pointer of { reg : int; value : string }
  | Pointer_store_forbidden of string
  | Pointer_arithmetic of string
  | Pointer_return of string
  | Bad_helper_arg of {
      helper : int;
      arg : int;
      expected : string;
      got : string;
    }
  | Bad_map_id of { helper : int; got : string; n_maps : int }
  | Unbounded_loop of { back_to : int }
  | Complexity_exceeded of { budget : int }

type violation = { pc : int; reason : reason; state : state option }

type analysis = {
  insn_count : int;
  states_explored : int;
  back_edges : (int * int) list;
  trace : state list array;
}

(* --- Pretty printing ------------------------------------------------- *)

let aval_to_string = function
  | Uninit -> "uninit"
  | Scalar { lo; hi } when lo = hi -> Printf.sprintf "%Ld" lo
  | Scalar { lo; hi } when lo = Int64.min_int && hi = Int64.max_int ->
      "scalar(?)"
  | Scalar { lo; hi } -> Printf.sprintf "scalar[%Ld..%Ld]" lo hi
  | Ptr_ctx o -> Printf.sprintf "ctx%+d" o
  | Ptr_pkt o -> Printf.sprintf "pkt%+d" o
  | Ptr_pkt_end -> "pkt_end"
  | Ptr_stack o -> Printf.sprintf "fp%+d" (o - stack_size)
  | Ptr_map_value { map; off; size } ->
      Printf.sprintf "map_value%s%+d%s"
        (match map with Some m -> Printf.sprintf "(%d)" m | None -> "")
        off
        (match size with Some s -> Printf.sprintf "/%d" s | None -> "")
  | Null_or_map_value { map; _ } ->
      Printf.sprintf "map_value_or_null%s"
        (match map with Some m -> Printf.sprintf "(%d)" m | None -> "")

let pp_aval fmt v = Format.pp_print_string fmt (aval_to_string v)

let pp_state fmt st =
  let first = ref true in
  Format.fprintf fmt "@[<h>";
  Array.iteri
    (fun r v ->
      if v <> Uninit then begin
        if not !first then Format.fprintf fmt " ";
        first := false;
        Format.fprintf fmt "r%d=%a" r pp_aval v
      end)
    st.regs;
  if st.bound > 0 then Format.fprintf fmt " pkt_bound=%d" st.bound;
  (* Summarize initialized stack bytes as fp-relative ranges. *)
  let ranges = ref [] in
  let start = ref (-1) in
  for i = 0 to stack_size do
    let init = i < stack_size && Bytes.get st.stack i <> '\000' in
    if init && !start < 0 then start := i
    else if (not init) && !start >= 0 then begin
      ranges := (!start, i) :: !ranges;
      start := -1
    end
  done;
  List.iter
    (fun (a, b) ->
      Format.fprintf fmt " stack[%d..%d)" (a - stack_size) (b - stack_size))
    (List.rev !ranges);
  Format.fprintf fmt "@]"

let pp_reason fmt = function
  | Empty_program -> Format.fprintf fmt "empty program"
  | Program_too_long { len; max } ->
      Format.fprintf fmt "program too long (%d insns, max %d)" len max
  | Invalid_register r -> Format.fprintf fmt "invalid register r%d" r
  | Write_to_r10 -> Format.fprintf fmt "write to frame pointer r10"
  | Bad_endian_width w -> Format.fprintf fmt "bad endian width %d" w
  | Jump_out_of_bounds { target } ->
      Format.fprintf fmt "jump out of bounds (target %d)" target
  | Fallthrough_off_end ->
      Format.fprintf fmt "control falls through off the end of the program"
  | Unreachable_insn -> Format.fprintf fmt "unreachable instruction"
  | Unknown_helper id -> Format.fprintf fmt "unknown helper %d" id
  | Uninitialized_register r ->
      Format.fprintf fmt "read of uninitialized register r%d" r
  | Uninitialized_stack { off; width } ->
      Format.fprintf fmt
        "read of uninitialized stack bytes at fp%+d (width %d)" off width
  | Stack_out_of_bounds { off; width } ->
      Format.fprintf fmt "stack access out of bounds at fp%+d (width %d)" off
        width
  | Pkt_out_of_bounds { off; width; bound } ->
      Format.fprintf fmt
        "packet access at offset %d (width %d) exceeds proven bound of %d \
         bytes; add a data_end guard branch"
        off width bound
  | Ctx_bad_access { off; width } ->
      Format.fprintf fmt
        "context access at offset %d (width %d); only 8-byte loads of \
         data (+0) and data_end (+8) are allowed"
        off width
  | Write_to_ctx -> Format.fprintf fmt "write through context pointer"
  | Map_value_out_of_bounds { off; width; size } ->
      Format.fprintf fmt
        "map value access at offset %d (width %d) outside value size %d" off
        width size
  | Possibly_null_deref r ->
      Format.fprintf fmt
        "dereference of possibly-null map value in r%d; null-check the \
         lookup result first"
        r
  | Deref_of_non_pointer { reg; value } ->
      Format.fprintf fmt "dereference of non-pointer r%d (%s)" reg value
  | Pointer_store_forbidden region ->
      Format.fprintf fmt "storing a pointer to %s would leak it" region
  | Pointer_arithmetic what ->
      Format.fprintf fmt "unsupported pointer arithmetic: %s" what
  | Pointer_return v ->
      Format.fprintf fmt "r0 at exit must be a scalar action, not %s" v
  | Bad_helper_arg { helper; arg; expected; got } ->
      Format.fprintf fmt "helper %d argument r%d: expected %s, got %s" helper
        arg expected got
  | Bad_map_id { helper; got; n_maps } ->
      Format.fprintf fmt
        "helper %d map id must be a known constant in [0..%d), got %s" helper
        n_maps got
  | Unbounded_loop { back_to } ->
      Format.fprintf fmt
        "loop back to instruction %d cannot be proven to terminate" back_to
  | Complexity_exceeded { budget } ->
      Format.fprintf fmt "verification budget of %d states exceeded" budget

let pp_violation fmt v =
  Format.fprintf fmt "insn %d: %a" v.pc pp_reason v.reason;
  match v.state with
  | Some st -> Format.fprintf fmt " [%a]" pp_state st
  | None -> ()

let violation_to_string v = Format.asprintf "%a" pp_violation v

(* --- Abstract values -------------------------------------------------- *)

exception Reject of violation

let reject ?state pc reason = raise (Reject { pc; reason; state })

let unknown = Scalar { lo = Int64.min_int; hi = Int64.max_int }
let const v = Scalar { lo = v; hi = v }
let u32_interval = Scalar { lo = 0L; hi = 0xFFFFFFFFL }

let width_scalar = function
  | W8 -> Scalar { lo = 0L; hi = 0xFFL }
  | W16 -> Scalar { lo = 0L; hi = 0xFFFFL }
  | W32 -> u32_interval
  | W64 -> unknown

let width_of = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

let is_ptr = function
  | Ptr_ctx _ | Ptr_pkt _ | Ptr_pkt_end | Ptr_stack _ | Ptr_map_value _
  | Null_or_map_value _ ->
      true
  | Uninit | Scalar _ -> false

let copy_state st =
  { regs = Array.copy st.regs; stack = Bytes.copy st.stack; bound = st.bound }

(* st is at least as precise as old: every concrete state described by
   st is also described by old, so a path already verified from old
   covers st. *)
let subsumed ~old st =
  old.bound <= st.bound
  && (let ok = ref true in
      for r = 0 to 10 do
        (match (old.regs.(r), st.regs.(r)) with
        | Uninit, _ -> ()
        | Scalar a, Scalar b -> if not (a.lo <= b.lo && b.hi <= a.hi) then ok := false
        | o, v -> if o <> v then ok := false)
      done;
      !ok)
  &&
  let ok = ref true in
  for i = 0 to stack_size - 1 do
    if Bytes.get old.stack i <> '\000' && Bytes.get st.stack i = '\000' then
      ok := false
  done;
  !ok

(* --- Constant ALU semantics (mirrors Ebpf.run) ------------------------ *)

let alu64_const op a b =
  let open Int64 in
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> if b = 0L then 0L else unsigned_div a b
  | Or -> logor a b
  | And -> logand a b
  | Lsh -> shift_left a (to_int (logand b 63L))
  | Rsh -> shift_right_logical a (to_int (logand b 63L))
  | Neg -> neg a
  | Mod -> if b = 0L then a else unsigned_rem a b
  | Xor -> logxor a b
  | Mov -> b
  | Arsh -> shift_right a (to_int (logand b 63L))

let mask32 v = Int64.logand v 0xFFFFFFFFL

let alu32_const op a b =
  let a = mask32 a and b = mask32 b in
  let open Int64 in
  let r =
    match op with
    | Add -> add a b
    | Sub -> sub a b
    | Mul -> mul a b
    | Div -> if b = 0L then 0L else unsigned_div a b
    | Or -> logor a b
    | And -> logand a b
    | Lsh -> shift_left a (to_int (logand b 31L))
    | Rsh -> shift_right_logical a (to_int (logand b 31L))
    | Neg -> neg a
    | Mod -> if b = 0L then a else unsigned_rem a b
    | Xor -> logxor a b
    | Mov -> b
    | Arsh ->
        let sa = shift_right (shift_left a 32) 32 in
        shift_right sa (to_int (logand b 31L))
  in
  mask32 r

let add_no_ov x y =
  let s = Int64.add x y in
  if (x > 0L && y > 0L && s < 0L) || (x < 0L && y < 0L && s >= 0L) then None
  else Some s

(* Interval result of a 64-bit scalar op. Consts stay exact; a few
   shapes keep useful bounds; everything else widens to unknown. *)
let alu64_scalar op a b =
  if a.lo = a.hi && b.lo = b.hi then const (alu64_const op a.lo b.lo)
  else
    match op with
    | Mov -> Scalar b
    | And when b.lo = b.hi && b.lo >= 0L -> Scalar { lo = 0L; hi = b.lo }
    | Add -> (
        match (add_no_ov a.lo b.lo, add_no_ov a.hi b.hi) with
        | Some lo, Some hi -> Scalar { lo; hi }
        | _ -> unknown)
    | Sub -> (
        match (add_no_ov a.lo (Int64.neg b.hi), add_no_ov a.hi (Int64.neg b.lo))
        with
        | Some lo, Some hi when b.hi <> Int64.min_int -> Scalar { lo; hi }
        | _ -> unknown)
    | _ -> unknown

let eval_cond cond a b =
  let u = Int64.unsigned_compare a b in
  let sg = Int64.compare a b in
  match cond with
  | Jeq -> a = b
  | Jne -> a <> b
  | Jgt -> u > 0
  | Jge -> u >= 0
  | Jlt -> u < 0
  | Jle -> u <= 0
  | Jset -> Int64.logand a b <> 0L
  | Jsgt -> sg > 0
  | Jsge -> sg >= 0
  | Jslt -> sg < 0
  | Jsle -> sg <= 0

(* --- Helper signatures ------------------------------------------------ *)

type arg_kind = Arg_scalar | Arg_map_id | Arg_key | Arg_value
type ret_kind = Ret_scalar | Ret_map_value_or_null

type helper_sig = {
  args : (int * arg_kind) list;  (* (register, kind) *)
  ret : ret_kind;
  invalidates_pkt : bool;
}

let helper_sigs =
  [
    ( helper_map_lookup,
      {
        args = [ (1, Arg_map_id); (2, Arg_key) ];
        ret = Ret_map_value_or_null;
        invalidates_pkt = false;
      } );
    ( helper_map_update,
      {
        args = [ (1, Arg_map_id); (2, Arg_key); (3, Arg_value) ];
        ret = Ret_scalar;
        invalidates_pkt = false;
      } );
    ( helper_map_delete,
      {
        args = [ (1, Arg_map_id); (2, Arg_key) ];
        ret = Ret_scalar;
        invalidates_pkt = false;
      } );
    (helper_ktime, { args = []; ret = Ret_scalar; invalidates_pkt = false });
    ( helper_adjust_head,
      { args = [ (2, Arg_scalar) ]; ret = Ret_scalar; invalidates_pkt = true }
    );
    ( helper_csum_fixup,
      { args = []; ret = Ret_scalar; invalidates_pkt = false } );
  ]

(* --- Syntactic pass --------------------------------------------------- *)

let can_fallthrough = function Exit | Ja _ -> false | _ -> true

let successors prog i =
  match prog.(i) with
  | Exit -> []
  | Ja off -> [ i + 1 + off ]
  | Jmp (_, _, _, off) -> [ i + 1 + off; i + 1 ]
  | _ -> [ i + 1 ]

let syntactic_pass ~max_insns insns =
  let n = Array.length insns in
  if n = 0 then reject 0 Empty_program;
  if n > max_insns then reject 0 (Program_too_long { len = n; max = max_insns });
  let reg_ok r = r >= 0 && r <= 10 in
  let check_src pc = function
    | Reg r -> if not (reg_ok r) then reject pc (Invalid_register r)
    | Imm _ -> ()
  in
  let check_dst pc d =
    if not (reg_ok d) then reject pc (Invalid_register d);
    if d = 10 then reject pc Write_to_r10
  in
  let check_jump pc off =
    let t = pc + 1 + off in
    if t < 0 || t >= n then reject pc (Jump_out_of_bounds { target = t })
  in
  Array.iteri
    (fun pc insn ->
      (match insn with
      | Alu64 (_, d, s) | Alu32 (_, d, s) ->
          check_dst pc d;
          check_src pc s
      | Endian_be (d, bits) ->
          check_dst pc d;
          if bits <> 16 && bits <> 32 && bits <> 64 then
            reject pc (Bad_endian_width bits)
      | Ld_imm64 (d, _) -> check_dst pc d
      | Ldx (_, d, s, _) ->
          check_dst pc d;
          if not (reg_ok s) then reject pc (Invalid_register s)
      | St_imm (_, d, _, _) ->
          if not (reg_ok d) then reject pc (Invalid_register d)
      | Stx (_, d, _, s) ->
          if not (reg_ok d) then reject pc (Invalid_register d);
          if not (reg_ok s) then reject pc (Invalid_register s)
      | Ja off -> check_jump pc off
      | Jmp (_, d, s, off) ->
          if not (reg_ok d) then reject pc (Invalid_register d);
          check_src pc s;
          check_jump pc off
      | Call id ->
          if not (List.mem_assoc id helper_sigs) then
            reject pc (Unknown_helper id)
      | Exit -> ());
      if pc = n - 1 && can_fallthrough insn then reject pc Fallthrough_off_end)
    insns

(* Reachability from instruction 0 and back-edge classification. *)
let cfg_pass insns =
  let n = Array.length insns in
  let color = Array.make n 0 in
  let back = ref [] in
  let rec dfs u =
    color.(u) <- 1;
    List.iter
      (fun v ->
        if color.(v) = 0 then dfs v
        else if color.(v) = 1 then back := (u, v) :: !back)
      (successors insns u);
    color.(u) <- 2
  in
  dfs 0;
  Array.iteri (fun i c -> if c = 0 then reject i Unreachable_insn) color;
  List.rev !back

(* --- Abstract interpretation ------------------------------------------ *)

let state_budget = 200_000
let unroll_limit = 4096
let trace_keep = 4

let init_state () =
  let regs = Array.make 11 Uninit in
  regs.(1) <- Ptr_ctx 0;
  regs.(10) <- Ptr_stack stack_size;
  { regs; stack = Bytes.make stack_size '\000'; bound = 0 }

(* One abstract execution step: interpret [prog.(pc)] over a copy of
   [st] and return the successor (pc, state) pairs. Raises [Reject] on
   a safety violation. *)
let step ~maps ~prog pc st0 =
  let st = copy_state st0 in
  let insn = prog.(pc) in
  let read r =
    match st.regs.(r) with
    | Uninit -> reject ~state:st pc (Uninitialized_register r)
    | v -> v
  in
  let operand = function Reg r -> read r | Imm v -> const (Int64.of_int v) in
  let ptr_add what ptr k =
    match ptr with
    | Ptr_pkt o -> Ptr_pkt (o + k)
    | Ptr_stack o -> Ptr_stack (o + k)
    | Ptr_ctx o -> Ptr_ctx (o + k)
    | Ptr_map_value m -> Ptr_map_value { m with off = m.off + k }
    | _ -> reject ~state:st pc (Pointer_arithmetic what)
  in
  (* Memory access through [ptr] (register [reg]) at [ptr + ioff],
     [width] bytes. For stores, [value] is the stored abstract value
     (None for St_imm). Returns the loaded value for loads. *)
  let access ~store ~reg ?value ptr ioff width =
    let storing_ptr =
      store && match value with Some v -> is_ptr v | None -> false
    in
    match ptr with
    | Ptr_ctx o ->
        if store then reject ~state:st pc Write_to_ctx;
        let a = o + ioff in
        if width = 8 && a = 0 then Ptr_pkt 0
        else if width = 8 && a = 8 then Ptr_pkt_end
        else reject ~state:st pc (Ctx_bad_access { off = a; width })
    | Ptr_pkt o ->
        if storing_ptr then
          reject ~state:st pc (Pointer_store_forbidden "packet");
        let a = o + ioff in
        if a < 0 || a + width > st.bound then
          reject ~state:st pc
            (Pkt_out_of_bounds { off = a; width; bound = st.bound });
        width_scalar (match width with 1 -> W8 | 2 -> W16 | 4 -> W32 | _ -> W64)
    | Ptr_stack o ->
        let a = o + ioff in
        if a < 0 || a + width > stack_size then
          reject ~state:st pc
            (Stack_out_of_bounds { off = a - stack_size; width });
        if store then begin
          Bytes.fill st.stack a width '\001';
          unknown
        end
        else begin
          for i = a to a + width - 1 do
            if Bytes.get st.stack i = '\000' then
              reject ~state:st pc
                (Uninitialized_stack { off = a - stack_size; width })
          done;
          width_scalar
            (match width with 1 -> W8 | 2 -> W16 | 4 -> W32 | _ -> W64)
        end
    | Ptr_map_value { off; size; _ } ->
        if storing_ptr then
          reject ~state:st pc (Pointer_store_forbidden "map value");
        let a = off + ioff in
        let known_size = match size with Some s -> s | None -> max_int in
        if a < 0 || a + width > known_size then
          reject ~state:st pc
            (Map_value_out_of_bounds
               { off = a; width; size = (match size with Some s -> s | None -> -1) });
        width_scalar (match width with 1 -> W8 | 2 -> W16 | 4 -> W32 | _ -> W64)
    | Null_or_map_value _ -> reject ~state:st pc (Possibly_null_deref reg)
    | (Ptr_pkt_end | Scalar _) as v ->
        reject ~state:st pc
          (Deref_of_non_pointer { reg; value = aval_to_string v })
    | Uninit -> assert false (* [read] already rejected *)
  in
  (* Buffer argument to a helper: [len] bytes readable through [v]. *)
  let check_buffer ~helper ~arg v len =
    match v with
    | Ptr_stack o ->
        if o < 0 || o + len > stack_size then
          reject ~state:st pc (Stack_out_of_bounds { off = o - stack_size; width = len });
        for i = o to o + len - 1 do
          if Bytes.get st.stack i = '\000' then
            reject ~state:st pc
              (Uninitialized_stack { off = o - stack_size; width = len })
        done
    | Ptr_pkt o ->
        if o < 0 || o + len > st.bound then
          reject ~state:st pc
            (Pkt_out_of_bounds { off = o; width = len; bound = st.bound })
    | Ptr_map_value { off; size; _ } -> (
        match size with
        | Some s when off < 0 || off + len > s ->
            reject ~state:st pc
              (Map_value_out_of_bounds { off; width = len; size = s })
        | _ -> ())
    | v ->
        reject ~state:st pc
          (Bad_helper_arg
             {
               helper;
               arg;
               expected = "pointer to readable memory";
               got = aval_to_string v;
             })
  in
  let next = pc + 1 in
  match insn with
  | Exit -> (
      match st.regs.(0) with
      | Uninit -> reject ~state:st pc (Uninitialized_register 0)
      | Scalar _ -> []
      | v -> reject ~state:st pc (Pointer_return (aval_to_string v)))
  | Ld_imm64 (d, v) ->
      st.regs.(d) <- const v;
      [ (next, st) ]
  | Endian_be (d, bits) -> (
      match read d with
      | Scalar _ ->
          st.regs.(d) <-
            width_scalar (match bits with 16 -> W16 | 32 -> W32 | _ -> W64);
          [ (next, st) ]
      | v ->
          reject ~state:st pc
            (Pointer_arithmetic ("byte swap of " ^ aval_to_string v)))
  | Alu64 (op, d, s) ->
      (match op with
      | Mov -> st.regs.(d) <- operand s
      | Neg -> (
          match read d with
          | Scalar a when a.lo = a.hi -> st.regs.(d) <- const (Int64.neg a.lo)
          | Scalar _ -> st.regs.(d) <- unknown
          | v ->
              reject ~state:st pc
                (Pointer_arithmetic ("neg of " ^ aval_to_string v)))
      | Add | Sub -> (
          let vd = read d and vs = operand s in
          match (vd, vs) with
          | Scalar a, Scalar b -> st.regs.(d) <- alu64_scalar op a b
          | ptr, Scalar { lo; hi } when lo = hi && is_ptr ptr ->
              let k = Int64.to_int lo in
              let k = if op = Sub then -k else k in
              st.regs.(d) <-
                ptr_add
                  (Printf.sprintf "r%d %s non-constant or oversized offset" d
                     (if op = Sub then "-" else "+"))
                  ptr k
          | Scalar { lo; hi }, ptr when lo = hi && op = Add && is_ptr ptr ->
              st.regs.(d) <-
                ptr_add
                  (Printf.sprintf "constant + r%d pointer" d)
                  ptr (Int64.to_int lo)
          | a, b ->
              reject ~state:st pc
                (Pointer_arithmetic
                   (Printf.sprintf "%s on %s and %s"
                      (if op = Add then "add" else "sub")
                      (aval_to_string a) (aval_to_string b))))
      | _ -> (
          let vd = read d and vs = operand s in
          match (vd, vs) with
          | Scalar a, Scalar b -> st.regs.(d) <- alu64_scalar op a b
          | a, b ->
              reject ~state:st pc
                (Pointer_arithmetic
                   (Printf.sprintf "alu64 on %s and %s" (aval_to_string a)
                      (aval_to_string b)))));
      [ (next, st) ]
  | Alu32 (op, d, s) ->
      let vs = match op with Neg -> const 0L | _ -> operand s in
      let vd = match op with Mov -> Scalar { lo = 0L; hi = 0L } | _ -> read d in
      (match (vd, vs) with
      | Scalar a, Scalar b ->
          if a.lo = a.hi && b.lo = b.hi then
            st.regs.(d) <- const (alu32_const op a.lo b.lo)
          else st.regs.(d) <- u32_interval
      | a, b ->
          reject ~state:st pc
            (Pointer_arithmetic
               (Printf.sprintf "32-bit alu on %s and %s" (aval_to_string a)
                  (aval_to_string b))));
      [ (next, st) ]
  | Ldx (sz, d, s, off) ->
      let v = access ~store:false ~reg:s (read s) off (width_of sz) in
      st.regs.(d) <- v;
      [ (next, st) ]
  | St_imm (sz, d, off, _) ->
      ignore (access ~store:true ~reg:d (read d) off (width_of sz));
      [ (next, st) ]
  | Stx (sz, d, off, s) ->
      let value = read s in
      ignore (access ~store:true ~reg:d ~value (read d) off (width_of sz));
      [ (next, st) ]
  | Ja off -> [ (pc + 1 + off, st) ]
  | Jmp (cond, d, s, off) -> (
      let vd = read d and vs = operand s in
      let taken = pc + 1 + off and fall = pc + 1 in
      let both () = [ (taken, st); (fall, copy_state st) ] in
      match (vd, vs) with
      | Scalar a, Scalar b when a.lo = a.hi && b.lo = b.hi ->
          (* Statically decided branch: prune the dead edge. This is
             what makes bounded loops verifiable. *)
          if eval_cond cond a.lo b.lo then [ (taken, st) ] else [ (fall, st) ]
      | Ptr_pkt o, Ptr_pkt_end | Ptr_pkt_end, Ptr_pkt o ->
          (* Length-guard refinement: comparing data+o against
             data_end proves a packet bound on one edge. *)
          let flipped = match vd with Ptr_pkt_end -> true | _ -> false in
          let base_cond =
            match cond with
            | Jsgt -> Jgt
            | Jsge -> Jge
            | Jslt -> Jlt
            | Jsle -> Jle
            | c -> c
          in
          let t_gain, f_gain =
            (* Proven bytes on (taken, fallthrough) edges; 0 = none. *)
            if not flipped then
              (* data+o  <cond>  data_end, packet length = len:
                 taken means (o cond len). *)
              match base_cond with
              | Jgt -> (0, o)  (* fall: o <= len *)
              | Jge -> (0, o + 1)  (* fall: o < len *)
              | Jlt -> (o + 1, 0)  (* taken: o < len *)
              | Jle -> (o, 0)  (* taken: o <= len *)
              | Jeq -> (o, 0)
              | Jne -> (0, o)
              | _ -> (0, 0)
            else
              (* data_end <cond> data+o: taken means (len cond o). *)
              match base_cond with
              | Jgt -> (o + 1, 0)  (* taken: len > o *)
              | Jge -> (o, 0)
              | Jlt -> (0, o)  (* fall: len >= o *)
              | Jle -> (0, o + 1)  (* fall: len > o *)
              | Jeq -> (o, 0)
              | Jne -> (0, o)
              | _ -> (0, 0)
          in
          let st_t = st and st_f = copy_state st in
          st_t.bound <- max st_t.bound t_gain;
          st_f.bound <- max st_f.bound f_gain;
          [ (taken, st_t); (fall, st_f) ]
      | Null_or_map_value { map; size }, Scalar { lo = 0L; hi = 0L } -> (
          let as_ptr = Ptr_map_value { map; off = 0; size } in
          match cond with
          | Jeq ->
              let st_t = st and st_f = copy_state st in
              st_t.regs.(d) <- const 0L;
              st_f.regs.(d) <- as_ptr;
              [ (taken, st_t); (fall, st_f) ]
          | Jne ->
              let st_t = st and st_f = copy_state st in
              st_t.regs.(d) <- as_ptr;
              st_f.regs.(d) <- const 0L;
              [ (taken, st_t); (fall, st_f) ]
          | _ -> both ())
      | _ -> both ())
  | Call id ->
      let hsig = List.assoc id helper_sigs in
      (* Resolve the map id argument first (if any) so buffer sizes are
         known when checking key/value arguments. *)
      let map_id =
        if List.exists (fun (_, k) -> k = Arg_map_id) hsig.args then begin
          let argreg = fst (List.find (fun (_, k) -> k = Arg_map_id) hsig.args) in
          match read argreg with
          | Scalar { lo; hi } when lo = hi -> (
              let idv = Int64.to_int lo in
              match maps with
              | Some specs ->
                  if idv < 0 || idv >= Array.length specs then
                    reject ~state:st pc
                      (Bad_map_id
                         {
                           helper = id;
                           got = Int64.to_string lo;
                           n_maps = Array.length specs;
                         });
                  Some idv
              | None -> Some idv)
          | Scalar _ -> (
              match maps with
              | Some specs ->
                  reject ~state:st pc
                    (Bad_map_id
                       {
                         helper = id;
                         got = "non-constant scalar";
                         n_maps = Array.length specs;
                       })
              | None -> None)
          | v ->
              reject ~state:st pc
                (Bad_helper_arg
                   {
                     helper = id;
                     arg = argreg;
                     expected = "map id (constant scalar)";
                     got = aval_to_string v;
                   })
        end
        else None
      in
      let spec =
        match (maps, map_id) with
        | Some specs, Some idv when idv >= 0 && idv < Array.length specs ->
            Some specs.(idv)
        | _ -> None
      in
      List.iter
        (fun (argreg, kind) ->
          let v = read argreg in
          match kind with
          | Arg_map_id -> ()  (* already checked above *)
          | Arg_scalar -> (
              match v with
              | Scalar _ -> ()
              | v ->
                  reject ~state:st pc
                    (Bad_helper_arg
                       {
                         helper = id;
                         arg = argreg;
                         expected = "scalar";
                         got = aval_to_string v;
                       }))
          | Arg_key ->
              let len = match spec with Some s -> s.key_size | None -> 1 in
              check_buffer ~helper:id ~arg:argreg v len
          | Arg_value ->
              let len = match spec with Some s -> s.value_size | None -> 1 in
              check_buffer ~helper:id ~arg:argreg v len)
        hsig.args;
      (* Caller-saved registers are clobbered by the call. *)
      for r = 1 to 5 do
        st.regs.(r) <- Uninit
      done;
      st.regs.(0) <-
        (match hsig.ret with
        | Ret_scalar -> unknown
        | Ret_map_value_or_null ->
            Null_or_map_value
              {
                map = map_id;
                size =
                  (match spec with Some s -> Some s.value_size | None -> None);
              });
      if hsig.invalidates_pkt then begin
        (* adjust_head moves the packet view: every derived packet
           pointer and the proven bound are stale. *)
        for r = 0 to 10 do
          match st.regs.(r) with
          | Ptr_pkt _ | Ptr_pkt_end -> st.regs.(r) <- Uninit
          | _ -> ()
        done;
        st.bound <- 0
      end;
      [ (next, st) ]

let verify ?(max_insns = 4096) ?maps insns =
  try
    syntactic_pass ~max_insns insns;
    let back_edges = cfg_pass insns in
    let n = Array.length insns in
    let memo = Array.make n [] in
    let trace = Array.make n [] in
    let visits = Array.make n 0 in
    let explored = ref 0 in
    let rec visit pc st =
      incr explored;
      if !explored > state_budget then
        reject ~state:st pc (Complexity_exceeded { budget = state_budget });
      match
        List.find_opt (fun (old, _) -> subsumed ~old st) memo.(pc)
      with
      | Some (_, on_path) when !on_path ->
          (* A cycle whose state is no more precise than when we last
             entered this instruction: no progress toward exit. *)
          reject ~state:st pc (Unbounded_loop { back_to = pc })
      | Some _ -> ()  (* already verified from an equal-or-weaker state *)
      | None ->
          if visits.(pc) >= unroll_limit then
            reject ~state:st pc (Unbounded_loop { back_to = pc });
          visits.(pc) <- visits.(pc) + 1;
          if List.length trace.(pc) < trace_keep then
            trace.(pc) <- trace.(pc) @ [ copy_state st ];
          let on_path = ref true in
          memo.(pc) <- (copy_state st, on_path) :: memo.(pc);
          let succs = step ~maps ~prog:insns pc st in
          List.iter (fun (pc', st') -> visit pc' st') succs;
          on_path := false;
          visits.(pc) <- visits.(pc) - 1
    in
    visit 0 (init_state ());
    Ok
      {
        insn_count = n;
        states_explored = !explored;
        back_edges;
        trace;
      }
  with Reject v -> Error v
