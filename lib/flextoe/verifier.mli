(** Abstract-interpretation eBPF verifier (§3.4's extension safety).

    FlexTOE only stays flexible if user programs can run {e on the
    data path} without being able to corrupt connection state, read
    past packet bounds, or stall an FPC. This module proves those
    properties statically, in the style of the Linux kernel verifier:

    - a CFG pass checks every jump target, rejects fallthrough off the
      end of the program and unreachable instructions;
    - a symbolic execution pass tracks an abstract value per register
      (uninitialized, scalar with signed bounds, pointer to
      context/packet/packet-end/stack/map-value, or
      null-or-map-value) and a per-byte stack initialization map;
    - packet loads and stores are only legal under a packet bound
      {e proven} by a preceding guard branch comparing a
      [data + const] pointer against [data_end] (the canonical XDP
      idiom);
    - helper calls are checked against per-helper signatures (map-id
      scalars, initialized key/value buffers of the map's declared
      sizes when map metadata is supplied), and clobber caller-saved
      registers; [bpf_xdp_adjust_head] additionally invalidates every
      packet pointer and the proven bound;
    - termination: a cycle that re-enters an instruction with a state
      no more precise than one already on the DFS path can never make
      progress and is rejected as an unbounded loop; other loops are
      unrolled up to a per-instruction bound, and total explored
      states are capped, so verification itself always terminates.

    Rejections carry structured diagnostics: the instruction index,
    the abstract state at that point, and a typed reason. *)

(** {1 Map metadata} *)

type map_spec = { key_size : int; value_size : int }
(** Shape of one BPF map, indexed by the map id the program passes in
    r1. When [verify] receives the array, helper argument buffers are
    checked against the exact key/value sizes and map-value
    dereferences against [value_size]; without it those checks degrade
    to weaker pointer-validity checks (documented in DESIGN.md §9). *)

(** {1 Abstract domain} *)

type interval = { lo : int64; hi : int64 }  (** signed 64-bit bounds *)

type aval =
  | Uninit  (** never written (or clobbered by a helper call) *)
  | Scalar of interval
  | Ptr_ctx of int  (** XDP context + offset *)
  | Ptr_pkt of int  (** packet data + constant offset *)
  | Ptr_pkt_end
  | Ptr_stack of int  (** offset from the stack base; r10 = stack size *)
  | Ptr_map_value of { map : int option; off : int; size : int option }
  | Null_or_map_value of { map : int option; size : int option }
      (** result of [helper_map_lookup]; must be null-checked before
          dereference *)

type state = {
  regs : aval array;  (** length 11, r0..r10 *)
  stack : Bytes.t;  (** per-byte init map, ['\001'] = initialized *)
  mutable bound : int;  (** proven accessible packet bytes from data *)
}

val stack_size : int

(** {1 Diagnostics} *)

type reason =
  | Empty_program
  | Program_too_long of { len : int; max : int }
  | Invalid_register of int
  | Write_to_r10
  | Bad_endian_width of int
  | Jump_out_of_bounds of { target : int }
  | Fallthrough_off_end
  | Unreachable_insn
  | Unknown_helper of int
  | Uninitialized_register of int
  | Uninitialized_stack of { off : int; width : int }
      (** [off] is frame-pointer-relative (negative) *)
  | Stack_out_of_bounds of { off : int; width : int }
  | Pkt_out_of_bounds of { off : int; width : int; bound : int }
      (** access at [off] exceeds the [bound] bytes proven by guard
          branches *)
  | Ctx_bad_access of { off : int; width : int }
  | Write_to_ctx
  | Map_value_out_of_bounds of { off : int; width : int; size : int }
  | Possibly_null_deref of int
  | Deref_of_non_pointer of { reg : int; value : string }
  | Pointer_store_forbidden of string
      (** spilling a pointer into packet or map memory would leak it *)
  | Pointer_arithmetic of string
  | Pointer_return of string  (** r0 at [Exit] must be a scalar *)
  | Bad_helper_arg of {
      helper : int;
      arg : int;
      expected : string;
      got : string;
    }
  | Bad_map_id of { helper : int; got : string; n_maps : int }
  | Unbounded_loop of { back_to : int }
  | Complexity_exceeded of { budget : int }

type violation = { pc : int; reason : reason; state : state option }

val pp_aval : Format.formatter -> aval -> unit
val pp_state : Format.formatter -> state -> unit
val pp_reason : Format.formatter -> reason -> unit
val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string

(** {1 Verification} *)

type analysis = {
  insn_count : int;
  states_explored : int;
  back_edges : (int * int) list;  (** (from, to) CFG back edges *)
  trace : state list array;
      (** per instruction: the first few abstract in-states observed
          (for [flexlint --dump]) *)
}

val verify :
  ?max_insns:int ->
  ?maps:map_spec array ->
  Bpf_insn.t array ->
  (analysis, violation) result
(** Verify a program for the XDP entry convention (r1 = context
    pointer, r10 = frame pointer). [maps] enables exact key/value-size
    and map-id checking. *)
