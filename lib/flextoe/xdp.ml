type t = {
  engine : Sim.Engine.t;
  program : Ebpf.program;
  maps : Bpf_map.t array;
  mutable runs : int;
  mutable passed : int;
  mutable dropped : int;
  mutable txed : int;
  mutable redirected : int;
  mutable insns : int;
}

let create engine ~program ~maps =
  {
    engine;
    program;
    maps;
    runs = 0;
    passed = 0;
    dropped = 0;
    txed = 0;
    redirected = 0;
    insns = 0;
  }

let map_specs maps =
  Array.map
    (fun m ->
      {
        Verifier.key_size = Bpf_map.key_size m;
        value_size = Bpf_map.value_size m;
      })
    maps

let null_program () =
  match
    Ebpf.load
      [|
        Bpf_insn.Alu64 (Bpf_insn.Mov, 0, Bpf_insn.Imm Bpf_insn.xdp_pass);
        Bpf_insn.Exit;
      |]
  with
  | Ok p -> p
  | Error _ -> assert false

let run_on_frame t frame =
  t.runs <- t.runs + 1;
  let packet = Tcp.Wire.encode frame in
  let now_ns =
    Int64.of_float (Sim.Time.to_ns (Sim.Engine.now t.engine))
  in
  let outcome = Ebpf.run t.program ~maps:t.maps ~now_ns ~packet in
  t.insns <- t.insns + outcome.Ebpf.insns_executed;
  let decode_result ~fixup =
    let bytes = outcome.Ebpf.packet in
    if fixup && Bytes.length bytes >= 54 then
      (try Tcp.Wire.fixup_tcp_checksum bytes with _ -> ());
    match Tcp.Wire.decode ~verify_checksums:false bytes with
    | Ok f -> Some f
    | Error _ -> None
  in
  let action =
    if outcome.Ebpf.ret = Bpf_insn.xdp_pass then begin
      match decode_result ~fixup:false with
      | Some f ->
          t.passed <- t.passed + 1;
          Datapath.Xdp_pass f
      | None ->
          t.dropped <- t.dropped + 1;
          Datapath.Xdp_drop
    end
    else if outcome.Ebpf.ret = Bpf_insn.xdp_tx then begin
      match decode_result ~fixup:true with
      | Some f ->
          t.txed <- t.txed + 1;
          Datapath.Xdp_tx f
      | None ->
          t.dropped <- t.dropped + 1;
          Datapath.Xdp_drop
    end
    else if outcome.Ebpf.ret = Bpf_insn.xdp_redirect then begin
      match decode_result ~fixup:false with
      | Some f ->
          t.redirected <- t.redirected + 1;
          Datapath.Xdp_redirect f
      | None ->
          t.dropped <- t.dropped + 1;
          Datapath.Xdp_drop
    end
    else begin
      (* XDP_DROP and XDP_ABORTED. *)
      t.dropped <- t.dropped + 1;
      Datapath.Xdp_drop
    end
  in
  (outcome.Ebpf.insns_executed, action)

let hook t = { Datapath.xdp_run = (fun frame -> run_on_frame t frame) }

let install t dp = Datapath.set_xdp_ingress dp (Some (hook t))
let uninstall dp = Datapath.set_xdp_ingress dp None

let attach engine ~insns ~maps dp =
  match Verifier.verify ~maps:(map_specs maps) insns with
  | Error v -> Error v
  | Ok _ -> (
      (* The abstract interpreter just accepted the program, so the
         syntactic-only load cannot fail. *)
      match Ebpf.load_unverified insns with
      | Error _ -> assert false
      | Ok program ->
          let t = create engine ~program ~maps in
          install t dp;
          Ok t)

let maps t = t.maps
let runs t = t.runs
let passed t = t.passed
let dropped t = t.dropped
let txed t = t.txed
let redirected t = t.redirected
let insns_total t = t.insns
