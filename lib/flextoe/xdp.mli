(** XDP hook: running eBPF programs inside the data path (§3.3).

    An XDP module sees raw frames before the RX pipeline and returns
    XDP_PASS (continue into the pipeline), XDP_DROP, XDP_TX (bounce
    out the MAC — connection splicing), or XDP_REDIRECT (to the
    control plane). The data path charges the dispatch overhead plus
    the instructions the program actually executed, and re-sequences
    segments afterwards. On XDP_TX, checksums are refreshed (the NFP
    recomputes them in hardware; cf. Listing 1's note). *)

type t

val create :
  Sim.Engine.t -> program:Ebpf.program -> maps:Bpf_map.t array -> t

val map_specs : Bpf_map.t array -> Verifier.map_spec array
(** Verifier metadata (key/value sizes) for a concrete map set. *)

val attach :
  Sim.Engine.t ->
  insns:Bpf_insn.t array ->
  maps:Bpf_map.t array ->
  Datapath.t ->
  (t, Verifier.violation) result
(** The safe front door: verify [insns] against the real shapes of
    [maps] with {!Verifier.verify}, and only if the proof succeeds
    load the program and install it as the data path's XDP ingress
    hook. Unverifiable programs never reach the data path. *)

val null_program : unit -> Ebpf.program
(** [return XDP_PASS] — the paper's null-module overhead probe. *)

val hook : t -> Datapath.xdp_hook

val install : t -> Datapath.t -> unit
val uninstall : Datapath.t -> unit

val maps : t -> Bpf_map.t array
val runs : t -> int
val passed : t -> int
val dropped : t -> int
val txed : t -> int
val redirected : t -> int
val insns_total : t -> int
