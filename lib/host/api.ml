type socket = {
  send : Bytes.t -> int;
  recv : max:int -> Bytes.t;
  rx_available : unit -> int;
  tx_space : unit -> int;
  close : unit -> unit;
  sock_id : int;
  core : Host_cpu.core;
  mutable on_readable : unit -> unit;
  mutable on_writable : unit -> unit;
  mutable on_peer_closed : unit -> unit;
  mutable on_error : unit -> unit;
}

type endpoint = {
  listen : port:int -> on_accept:(socket -> unit) -> unit;
  connect :
    remote_ip:int ->
    remote_port:int ->
    on_connected:((socket, string) result -> unit) ->
    unit;
  local_ip : int;
  app_core : Host_cpu.core;
}

let null_handler () = ()

let make_socket ~sock_id ~core ~send ~recv ~rx_available ~tx_space ~close =
  {
    send;
    recv;
    rx_available;
    tx_space;
    close;
    sock_id;
    core;
    on_readable = null_handler;
    on_writable = null_handler;
    on_peer_closed = null_handler;
    on_error = null_handler;
  }
