(** The POSIX-sockets-shaped interface applications program against.

    Applications (echo, key-value store, RPC generators) are written
    once against this interface and run unmodified over every stack in
    the repository — FlexTOE's libTOE, and the Linux/TAS/Chelsio
    baseline models — mirroring the paper's "identical application
    binaries across all baselines" methodology (§5).

    Because the whole system is event-driven, blocking calls are
    replaced by callbacks: [on_readable]/[on_writable] fire when a
    blocked direction becomes actionable. Socket operations execute
    immediately; their CPU cost is charged to the caller's core by the
    stack implementation. *)

type socket = {
  send : Bytes.t -> int;
      (** Append to the socket's transmit stream; returns bytes
          accepted (0 when the buffer is full). *)
  recv : max:int -> Bytes.t;
      (** Consume up to [max] readable bytes (may be empty). *)
  rx_available : unit -> int;
  tx_space : unit -> int;
  close : unit -> unit;
  sock_id : int;  (** Unique per endpoint, for stats. *)
  core : Host_cpu.core;
      (** The core this socket's events are delivered on; server
          handlers charge their application work here. *)
  mutable on_readable : unit -> unit;
  mutable on_writable : unit -> unit;
  mutable on_peer_closed : unit -> unit;
  mutable on_error : unit -> unit;
      (** The stack aborted the connection (e.g. retransmission
          retries exhausted): the socket is dead, unread data is lost,
          and no further callbacks will fire. *)
}

type endpoint = {
  listen : port:int -> on_accept:(socket -> unit) -> unit;
  connect :
    remote_ip:int ->
    remote_port:int ->
    on_connected:((socket, string) result -> unit) ->
    unit;
  local_ip : int;
  app_core : Host_cpu.core;
      (** The core application handlers should charge their work to. *)
}

val null_handler : unit -> unit

val make_socket :
  sock_id:int ->
  core:Host_cpu.core ->
  send:(Bytes.t -> int) ->
  recv:(max:int -> Bytes.t) ->
  rx_available:(unit -> int) ->
  tx_space:(unit -> int) ->
  close:(unit -> unit) ->
  socket
(** Build a socket with all callbacks initialised to no-ops. *)
