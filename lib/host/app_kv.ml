type request = Get of Bytes.t | Set of Bytes.t * Bytes.t
type response = Value of Bytes.t | Stored | Miss | Bad_request

let put_u16 b off v =
  Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b (off + 1) (Char.chr (v land 0xFF))

let put_u32 b off v =
  put_u16 b off (v lsr 16);
  put_u16 b (off + 2) v

let get_u16 b off =
  (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))

let get_u32 b off = (get_u16 b off lsl 16) lor get_u16 b (off + 2)

let encode_request req =
  let op, key, value =
    match req with
    | Get k -> (0, k, Bytes.empty)
    | Set (k, v) -> (1, k, v)
  in
  let klen = Bytes.length key and vlen = Bytes.length value in
  let out = Bytes.create (7 + klen + vlen) in
  Bytes.set out 0 (Char.chr op);
  put_u16 out 1 klen;
  put_u32 out 3 vlen;
  Bytes.blit key 0 out 7 klen;
  Bytes.blit value 0 out (7 + klen) vlen;
  out

let decode_request b =
  if Bytes.length b < 7 then None
  else begin
    let op = Char.code (Bytes.get b 0) in
    let klen = get_u16 b 1 and vlen = get_u32 b 3 in
    if Bytes.length b <> 7 + klen + vlen then None
    else begin
      let key = Bytes.sub b 7 klen in
      match op with
      | 0 when vlen = 0 -> Some (Get key)
      | 1 -> Some (Set (key, Bytes.sub b (7 + klen) vlen))
      | _ -> None
    end
  end

let encode_response resp =
  let status, value =
    match resp with
    | Value v -> (0, v)
    | Stored -> (0, Bytes.empty)
    | Miss -> (1, Bytes.empty)
    | Bad_request -> (2, Bytes.empty)
  in
  let vlen = Bytes.length value in
  let out = Bytes.create (5 + vlen) in
  Bytes.set out 0 (Char.chr status);
  put_u32 out 1 vlen;
  Bytes.blit value 0 out 5 vlen;
  out

let decode_response b =
  if Bytes.length b < 5 then None
  else begin
    let status = Char.code (Bytes.get b 0) in
    let vlen = get_u32 b 1 in
    if Bytes.length b <> 5 + vlen then None
    else
      match status with
      | 0 when vlen > 0 -> Some (Value (Bytes.sub b 5 vlen))
      | 0 -> Some Stored
      | 1 -> Some Miss
      | 2 -> Some Bad_request
      | _ -> None
  end

type server = { store : (string, Bytes.t) Hashtbl.t }

let handle t req =
  match decode_request req with
  | None -> encode_response Bad_request
  | Some (Get key) -> begin
      match Hashtbl.find_opt t.store (Bytes.to_string key) with
      | Some v -> encode_response (Value v)
      | None -> encode_response Miss
    end
  | Some (Set (key, value)) ->
      Hashtbl.replace t.store (Bytes.to_string key) value;
      encode_response Stored

let server ~endpoint ~port ~app_cycles () =
  let t = { store = Hashtbl.create 4096 } in
  endpoint.Api.listen ~port ~on_accept:(fun sock ->
      let core = sock.Api.core in
      let decoder = Framing.create () in
      sock.Api.on_readable <-
        (fun () ->
          let chunk = sock.Api.recv ~max:max_int in
          Framing.push decoder chunk;
          Framing.iter_available decoder (fun req ->
              Host_cpu.exec core ~category:"app" ~cycles:app_cycles
                (fun () ->
                  let resp = handle t req in
                  ignore (sock.Api.send (Framing.encode resp))))));
  t

let entries t = Hashtbl.length t.store

let client ~endpoint ~engine ~server_ip ~server_port ~conns ~pipeline
    ~key_bytes ~value_bytes ~set_ratio ?(think_cycles = 200) ~stats () =
  let rng = Sim.Rng.split (Sim.Engine.Local.rng engine) in
  let keyspace = 1024 in
  let key i =
    let b = Bytes.make key_bytes 'k' in
    let s = string_of_int i in
    Bytes.blit_string s 0 b 0 (min (String.length s) key_bytes);
    b
  in
  let make_request () =
    if Sim.Rng.bool rng set_ratio then
      Set (key (Sim.Rng.int rng keyspace), Bytes.make value_bytes 'v')
    else Get (key (Sim.Rng.int rng keyspace))
  in
  for i = 0 to conns - 1 do
    endpoint.Api.connect ~remote_ip:server_ip ~remote_port:server_port
      ~on_connected:(fun result ->
        match result with
        | Error _ -> ()
        | Ok sock ->
            let decoder = Framing.create () in
            let outstanding = Queue.create () in
            let send_one () =
              Host_cpu.exec sock.Api.core ~category:"app"
                ~cycles:think_cycles (fun () ->
                  let msg =
                    Framing.encode (encode_request (make_request ()))
                  in
                  Queue.push (Sim.Engine.now engine) outstanding;
                  ignore (sock.Api.send msg))
            in
            sock.Api.on_readable <-
              (fun () ->
                let chunk = sock.Api.recv ~max:max_int in
                Framing.push decoder chunk;
                Framing.iter_available decoder (fun resp ->
                    (match Queue.take_opt outstanding with
                    | Some t0 ->
                        Rpc.Stats.record_rtt stats
                          (Sim.Engine.now engine - t0);
                        Rpc.Stats.record_conn_op stats ~conn:i
                          ~bytes:(Bytes.length resp)
                    | None -> ());
                    send_one ()));
            (* Pre-populate some keys so GETs mostly hit. *)
            for _ = 1 to pipeline do
              send_one ()
            done)
  done
