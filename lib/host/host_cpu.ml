type work = { cycles : int; category : string; k : unit -> unit }

type core = {
  engine : Sim.Engine.t;
  freq : Sim.Time.Freq.t;
  pending : work Queue.t;
  mutable busy : bool;
  mutable busy_time : Sim.Time.t;
  accounting : (string, int ref) Hashtbl.t;
  rng : Sim.Rng.t;
  mutable noise_interval : int;  (* busy cycles per expected stall *)
  mutable noise_mean : int;
}

type t = {
  e : Sim.Engine.t;
  f : Sim.Time.Freq.t;
  cs : core array;
}

let create engine ?(freq = Sim.Time.Freq.of_ghz 2.0) ~cores () =
  if cores <= 0 then invalid_arg "Host_cpu.create: cores must be positive";
  {
    e = engine;
    f = freq;
    cs =
      Array.init cores (fun _ ->
          {
            engine;
            freq;
            pending = Queue.create ();
            busy = false;
            busy_time = 0;
            accounting = Hashtbl.create 8;
            rng = Sim.Rng.split (Sim.Engine.Local.rng engine);
            noise_interval = 0;
            noise_mean = 0;
          });
  }

let set_noise t ~interval_cycles ~mean_cycles =
  Array.iter
    (fun c ->
      c.noise_interval <- interval_cycles;
      c.noise_mean <- mean_cycles)
    t.cs

let engine t = t.e
let cores t = Array.length t.cs
let core t i = t.cs.(i)
let freq t = t.f

let account c category cycles =
  let r =
    match Hashtbl.find_opt c.accounting category with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace c.accounting category r;
        r
  in
  r := !r + cycles

let rec start c (w : work) =
  c.busy <- true;
  account c w.category w.cycles;
  let noise =
    if c.noise_interval > 0 then begin
      let p =
        Float.min 0.25
          (float_of_int w.cycles /. float_of_int c.noise_interval)
      in
      if Sim.Rng.bool c.rng p then
        int_of_float
          (Sim.Rng.exponential c.rng (float_of_int c.noise_mean))
      else 0
    end
    else 0
  in
  if noise > 0 then account c "noise" noise;
  let dur = Sim.Time.Freq.cycles c.freq (w.cycles + noise) in
  c.busy_time <- c.busy_time + dur;
  Sim.Engine.schedule c.engine dur (fun () ->
      c.busy <- false;
      w.k ();
      if (not c.busy) && not (Queue.is_empty c.pending) then
        start c (Queue.pop c.pending))

let exec c ?(category = "other") ~cycles k =
  let w = { cycles; category; k } in
  if c.busy then Queue.push w c.pending else start c w

let exec_now c ?category ~cycles () = exec c ?category ~cycles (fun () -> ())
let busy_time c = c.busy_time
let queue_length c = Queue.length c.pending

let cycles_by_category t =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun c ->
      Hashtbl.iter
        (fun cat r ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt tbl cat) in
          Hashtbl.replace tbl cat (cur + !r))
        c.accounting)
    t.cs;
  Hashtbl.fold (fun cat n acc -> (cat, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let total_cycles t =
  List.fold_left (fun acc (_, n) -> acc + n) 0 (cycles_by_category t)

let utilization c ~total =
  if total <= 0 then 0.
  else Sim.Time.to_sec c.busy_time /. Sim.Time.to_sec total
