module Stats = struct
  type t = {
    engine : Sim.Engine.t;
    rtt : Sim.Stats.Histogram.t;  (* nanoseconds *)
    mutable ops : int;
    mutable bytes : int;
    mutable measuring : bool;
    mutable window_start : Sim.Time.t;
    per_conn : (int, int ref) Hashtbl.t;
  }

  let create engine =
    {
      engine;
      rtt = Sim.Stats.Histogram.create ();
      ops = 0;
      bytes = 0;
      measuring = false;
      window_start = Sim.Time.zero;
      per_conn = Hashtbl.create 64;
    }

  let start_measuring t =
    t.measuring <- true;
    t.window_start <- Sim.Engine.now t.engine

  let record_rtt t rtt =
    if t.measuring then
      Sim.Stats.Histogram.add t.rtt (int_of_float (Sim.Time.to_ns rtt))

  let record_op t ~bytes =
    if t.measuring then begin
      t.ops <- t.ops + 1;
      t.bytes <- t.bytes + bytes
    end

  let record_conn_op t ~conn ~bytes =
    record_op t ~bytes;
    if t.measuring then begin
      let r =
        match Hashtbl.find_opt t.per_conn conn with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.replace t.per_conn conn r;
            r
      in
      incr r
    end

  let ops t = t.ops

  let measured_duration t =
    if t.measuring then Sim.Engine.now t.engine - t.window_start else 0

  let mops t =
    let d = measured_duration t in
    if d <= 0 then 0. else float_of_int t.ops /. Sim.Time.to_sec d /. 1e6

  let gbps t =
    let d = measured_duration t in
    if d <= 0 then 0.
    else float_of_int (8 * t.bytes) /. Sim.Time.to_sec d /. 1e9

  let rtt_percentile_us_opt t p =
    Option.map
      (fun v -> float_of_int v /. 1e3)
      (Sim.Stats.Histogram.percentile_opt t.rtt p)

  let rtt_percentile_us t p =
    match rtt_percentile_us_opt t p with Some v -> v | None -> Float.nan

  let rtt_mean_us t = Sim.Stats.Histogram.mean t.rtt /. 1e3

  let conn_throughputs t =
    Hashtbl.fold (fun _ r acc -> float_of_int !r :: acc) t.per_conn []
    |> Array.of_list

  let jain_index t = Sim.Stats.jain_fairness (conn_throughputs t)
end

let echo_handler req = req
let const_handler n _req = Bytes.make n 'R'

let server ?(send_batch = 1) ?engine ?(batch_delay = 1_000_000) ~endpoint
    ~port ~app_cycles ~handler () =
  if send_batch > 1 && engine = None then
    invalid_arg "Rpc.server: send_batch > 1 needs ~engine for the flush timer";
  endpoint.Api.listen ~port ~on_accept:(fun sock ->
      let decoder = Framing.create () in
      (* Responses can exceed the socket buffer: keep an app-side
         backlog and flush it as transmit space frees up. *)
      let backlog = ref [] in
      let flush () =
        let rec go () =
          match !backlog with
          | [] -> ()
          | (msg, off) :: rest ->
              let remaining = Bytes.length msg - off in
              let attempt = min remaining (max 0 (sock.Api.tx_space ())) in
              if attempt > 0 then begin
                let n = sock.Api.send (Bytes.sub msg off attempt) in
                if n = remaining then begin
                  backlog := rest;
                  go ()
                end
                else if n > 0 then backlog := (msg, off + n) :: rest
              end
        in
        go ()
      in
      (* Response batching ([send_batch > 1]): completed responses are
         held and pushed into the socket as one concatenated write per
         [send_batch] responses (or when [batch_delay] expires on a
         partial batch) — one send-side doorbell amortized over the
         batch. Degree 1 sends each response as it completes. *)
      let pending = ref [] in
      let npending = ref 0 in
      let timer_armed = ref false in
      let queue_pending () =
        if !npending > 0 then begin
          let msgs = List.rev !pending in
          pending := [];
          npending := 0;
          backlog := !backlog @ [ (Bytes.concat Bytes.empty msgs, 0) ];
          flush ()
        end
      in
      sock.Api.on_writable <- flush;
      let process req =
        Host_cpu.exec sock.Api.core ~category:"app" ~cycles:app_cycles
          (fun () ->
            let resp = handler req in
            if send_batch <= 1 then begin
              backlog := !backlog @ [ (Framing.encode resp, 0) ];
              flush ()
            end
            else begin
              pending := Framing.encode resp :: !pending;
              incr npending;
              if !npending >= send_batch then queue_pending ()
              else if not !timer_armed then begin
                timer_armed := true;
                match engine with
                | Some e ->
                    Sim.Engine.schedule e batch_delay (fun () ->
                        timer_armed := false;
                        queue_pending ())
                | None -> ()
              end
            end)
      in
      sock.Api.on_readable <-
        (fun () ->
          let chunk = sock.Api.recv ~max:max_int in
          Framing.push decoder chunk;
          Framing.iter_available decoder process))

type conn_state = {
  conn_id : int;
  sock : Api.socket;
  decoder : Framing.t;
  sent_at : Sim.Time.t Queue.t;  (* send time of outstanding requests *)
  mutable backlog : (Bytes.t * int) list;
      (* app-side queue of (message, bytes already sent); messages can
         exceed the socket buffer, so sends may be partial *)
}

type client = {
  mutable conns : conn_state list;
  mutable n_connected : int;
}

let connected c = c.n_connected

let flush_backlog cs =
  let rec go () =
    match cs.backlog with
    | [] -> ()
    | (msg, off) :: rest ->
        let remaining = Bytes.length msg - off in
        (* Slice only what can be accepted, so a message much larger
           than the socket buffer is not re-copied on every flush. *)
        let attempt = min remaining (max 0 (cs.sock.Api.tx_space ())) in
        if attempt > 0 then begin
          let n = cs.sock.Api.send (Bytes.sub msg off attempt) in
          if n = remaining then begin
            cs.backlog <- rest;
            go ()
          end
          else if n > 0 then cs.backlog <- (msg, off + n) :: rest
        end
  in
  go ()

let make_conn ~engine ~stats ?(on_response = fun ~conn:_ _ -> ())
    ~on_resp_complete conn_id sock =
  let cs =
    {
      conn_id;
      sock;
      decoder = Framing.create ();
      sent_at = Queue.create ();
      backlog = [];
    }
  in
  sock.Api.on_readable <-
    (fun () ->
      let chunk = sock.Api.recv ~max:max_int in
      Framing.push cs.decoder chunk;
      Framing.iter_available cs.decoder (fun resp ->
          (match Queue.take_opt cs.sent_at with
          | Some t0 ->
              Stats.record_rtt stats (Sim.Engine.now engine - t0);
              Stats.record_conn_op stats ~conn:conn_id
                ~bytes:(Bytes.length resp)
          | None -> ());
          on_response ~conn:conn_id resp;
          on_resp_complete cs));
  sock.Api.on_writable <- (fun () -> flush_backlog cs);
  cs

let send_request ~engine cs req_bytes =
  let msg = Framing.encode (Bytes.make req_bytes 'Q') in
  Queue.push (Sim.Engine.now engine) cs.sent_at;
  cs.backlog <- cs.backlog @ [ (msg, 0) ];
  flush_backlog cs

let closed_loop_client ~endpoint ~engine ~server_ip ~server_port ~conns
    ~pipeline ~req_bytes ~stats ?on_response ?(req_cycles = 0) () =
  let client = { conns = []; n_connected = 0 } in
  let core = endpoint.Api.app_core in
  for i = 0 to conns - 1 do
    endpoint.Api.connect ~remote_ip:server_ip ~remote_port:server_port
      ~on_connected:(fun result ->
        match result with
        | Error _ -> ()
        | Ok sock ->
            let on_resp_complete cs =
              if req_cycles > 0 then
                Host_cpu.exec core ~category:"app" ~cycles:req_cycles
                  (fun () -> send_request ~engine cs req_bytes)
              else send_request ~engine cs req_bytes
            in
            let cs =
              make_conn ~engine ~stats ?on_response ~on_resp_complete i sock
            in
            client.conns <- cs :: client.conns;
            client.n_connected <- client.n_connected + 1;
            for _ = 1 to pipeline do
              send_request ~engine cs req_bytes
            done)
  done;
  client

let open_loop_client ~endpoint ~engine ~server_ip ~server_port ~conns
    ~rate_per_sec ~req_bytes ~stats () =
  let client = { conns = []; n_connected = 0 } in
  let rng = Sim.Rng.split (Sim.Engine.Local.rng engine) in
  let order = ref [] in
  let next_conn =
    let i = ref 0 in
    fun () ->
      match !order with
      | [] -> None
      | l ->
          let n = List.length l in
          let c = List.nth l (!i mod n) in
          incr i;
          Some c
  in
  for i = 0 to conns - 1 do
    endpoint.Api.connect ~remote_ip:server_ip ~remote_port:server_port
      ~on_connected:(fun result ->
        match result with
        | Error _ -> ()
        | Ok sock ->
            let cs =
              make_conn ~engine ~stats ~on_resp_complete:(fun _ -> ()) i sock
            in
            client.conns <- cs :: client.conns;
            order := cs :: !order;
            client.n_connected <- client.n_connected + 1)
  done;
  let rec arrival () =
    (match next_conn () with
    | Some cs -> send_request ~engine cs req_bytes
    | None -> ());
    let gap = Sim.Rng.exponential rng (1e12 /. rate_per_sec) in
    Sim.Engine.schedule engine (int_of_float gap) arrival
  in
  Sim.Engine.schedule engine 0 arrival;
  client
