(** RPC workload machinery: servers, closed- and open-loop clients,
    and measurement.

    These drive every RPC experiment in the paper's evaluation:
    saturated-server throughput (Fig 11), single-RPC RTT (Fig 12),
    large-RPC streaming (Fig 13), connection scalability (Fig 14),
    loss robustness (Fig 15a/b) and incast (Table 4). *)

module Stats : sig
  type t

  val create : Sim.Engine.t -> t

  val start_measuring : t -> unit
  (** Begin the measurement window (call after warm-up). Samples
      before this are discarded. *)

  val record_rtt : t -> Sim.Time.t -> unit
  val record_op : t -> bytes:int -> unit
  val record_conn_op : t -> conn:int -> bytes:int -> unit
  (** Like {!record_op} but also attributes to a per-connection
      counter (for fairness metrics). *)

  val ops : t -> int
  val measured_duration : t -> Sim.Time.t
  val mops : t -> float
  val gbps : t -> float
  (** Application-payload goodput. *)

  val rtt_percentile_us_opt : t -> float -> float option
  (** [None] when no RTT was recorded in the window — a run that
      measured nothing reads as absent, not as a 0 us latency. *)

  val rtt_percentile_us : t -> float -> float
  (** Like {!rtt_percentile_us_opt} but [Float.nan] on an empty
      window (renders as [n/a] in the bench tables). *)

  val rtt_mean_us : t -> float
  val conn_throughputs : t -> float array
  (** Per-connection ops counts over the window (only connections
      touched via {!record_conn_op}). *)

  val jain_index : t -> float
end

val server :
  ?send_batch:int ->
  ?engine:Sim.Engine.t ->
  ?batch_delay:Sim.Time.t ->
  endpoint:Api.endpoint ->
  port:int ->
  app_cycles:int ->
  handler:(Bytes.t -> Bytes.t) ->
  unit ->
  unit
(** Framed-RPC server: for each complete request message, charge
    [app_cycles] to the endpoint's app core and send
    [handler request] back on the same socket.

    [send_batch > 1] holds completed responses and pushes them into
    the socket as one concatenated write per [send_batch] responses,
    or when [batch_delay] (default 1 us) expires on a partial batch —
    the send-side analogue of the datapath's notification coalescing.
    Requires [engine] for the flush timer. The default (1) sends each
    response as it completes, exactly the unbatched behavior. *)

val echo_handler : Bytes.t -> Bytes.t
val const_handler : int -> Bytes.t -> Bytes.t
(** [const_handler n] replies with [n] fixed bytes regardless of the
    request (the paper's 32 B-response streaming benchmark). *)

type client

val closed_loop_client :
  endpoint:Api.endpoint ->
  engine:Sim.Engine.t ->
  server_ip:int ->
  server_port:int ->
  conns:int ->
  pipeline:int ->
  req_bytes:int ->
  stats:Stats.t ->
  ?on_response:(conn:int -> Bytes.t -> unit) ->
  ?req_cycles:int ->
  unit ->
  client
(** Open [conns] connections; keep [pipeline] requests of [req_bytes]
    outstanding on each; on every response record RTT + op and send
    the next request. [req_cycles] is charged per request to the
    client's app core (default 0: the client machine is never the
    bottleneck, as in the paper's multi-client setup). *)

val open_loop_client :
  endpoint:Api.endpoint ->
  engine:Sim.Engine.t ->
  server_ip:int ->
  server_port:int ->
  conns:int ->
  rate_per_sec:float ->
  req_bytes:int ->
  stats:Stats.t ->
  unit ->
  client
(** Poisson arrivals at [rate_per_sec] spread round-robin over
    [conns] connections; requests queue app-side when a connection's
    transmit buffer is full (their queueing delay counts toward
    RTT, as in an open-loop load generator). *)

val connected : client -> int
(** Connections currently established. *)
