type shaping = {
  rate_gbps : float;
  queue_bytes : int;
  ecn_threshold_bytes : int;
}

type t = {
  engine : Sim.Engine.t;
  switch_latency : Sim.Time.t;
  rng : Sim.Rng.t;
  mutable loss : float;
  mutable ports : port list;
  by_mac : (int, port) Hashtbl.t;
  by_ip : (int, port) Hashtbl.t;
  mutable delivered : int;
  mutable dropped_loss : int;
  mutable dropped_queue : int;
  mutable dropped_unroutable : int;
  mutable ecn_marked : int;
}

and port = {
  fabric : t;
  mac : int;
  ip : int;
  rate_gbps : float;
  rx : Tcp.Segment.frame -> unit;
  mutable tx_free : Sim.Time.t;  (* ingress serialisation *)
  mutable egress_free : Sim.Time.t;
  mutable egress_queued : int;  (* bytes committed but not yet delivered *)
  mutable shaping : shaping option;
  mutable tx_fault : fault_hook option;
  mutable rx_fault : fault_hook option;
}

(* A fault hook intercepts a frame and decides its fate by invoking
   the continuation zero (drop), one (pass, possibly mutated or
   delayed via the engine) or several (duplicate) times. *)
and fault_hook = Tcp.Segment.frame -> (Tcp.Segment.frame -> unit) -> unit

let create engine ?(switch_latency = Sim.Time.us 1) ?(seed = 42L) () =
  {
    engine;
    switch_latency;
    rng = Sim.Rng.create seed;
    loss = 0.;
    ports = [];
    by_mac = Hashtbl.create 16;
    by_ip = Hashtbl.create 16;
    delivered = 0;
    dropped_loss = 0;
    dropped_queue = 0;
    dropped_unroutable = 0;
    ecn_marked = 0;
  }

let set_loss t p = t.loss <- p

let add_port t ?(rate_gbps = 40.0) ~mac ~ip ~rx () =
  let port =
    {
      fabric = t;
      mac;
      ip;
      rate_gbps;
      rx;
      tx_free = Sim.Time.zero;
      egress_free = Sim.Time.zero;
      egress_queued = 0;
      shaping = None;
      tx_fault = None;
      rx_fault = None;
    }
  in
  t.ports <- port :: t.ports;
  Hashtbl.replace t.by_mac mac port;
  Hashtbl.replace t.by_ip ip port;
  port

let shape_port _t port ~rate_gbps ~queue_bytes ~ecn_threshold_bytes =
  port.shaping <- Some { rate_gbps; queue_bytes; ecn_threshold_bytes }

let wire_time ~rate_gbps ~bytes =
  let bytes = max bytes 64 in
  let on_wire = bytes + 24 in
  int_of_float (Float.round (float_of_int (8 * on_wire) *. 1000. /. rate_gbps))

(* Hand a frame to the destination port's receiver, through its
   ingress fault stage if one is attached. *)
let rx_into (dst : port) frame =
  match dst.rx_fault with None -> dst.rx frame | Some hook -> hook frame dst.rx

let deliver t (dst : port) frame =
  let now = Sim.Engine.now t.engine in
  let bytes = Tcp.Segment.frame_wire_len frame in
  match dst.shaping with
  | None ->
      (* Unshaped: serialise onto the destination link at port rate. *)
      let ser = wire_time ~rate_gbps:dst.rate_gbps ~bytes in
      let start = max now dst.egress_free in
      dst.egress_free <- start + ser;
      Sim.Engine.schedule_at t.engine dst.egress_free (fun () ->
          t.delivered <- t.delivered + 1;
          rx_into dst frame)
  | Some s ->
      if dst.egress_queued + bytes > s.queue_bytes then
        t.dropped_queue <- t.dropped_queue + 1
      else begin
        let frame =
          if
            dst.egress_queued > s.ecn_threshold_bytes
            && (frame.Tcp.Segment.ecn = Tcp.Segment.Ect0
               || frame.Tcp.Segment.ecn = Tcp.Segment.Ect1)
          then begin
            t.ecn_marked <- t.ecn_marked + 1;
            { frame with Tcp.Segment.ecn = Tcp.Segment.Ce }
          end
          else frame
        in
        dst.egress_queued <- dst.egress_queued + bytes;
        let ser = wire_time ~rate_gbps:s.rate_gbps ~bytes in
        let start = max now dst.egress_free in
        dst.egress_free <- start + ser;
        Sim.Engine.schedule_at t.engine dst.egress_free (fun () ->
            dst.egress_queued <- dst.egress_queued - bytes;
            t.delivered <- t.delivered + 1;
            rx_into dst frame)
      end

let forward t frame =
  if t.loss > 0. && Sim.Rng.bool t.rng t.loss then
    t.dropped_loss <- t.dropped_loss + 1
  else begin
    let dst_mac = frame.Tcp.Segment.dst_mac in
    let dst =
      match Hashtbl.find_opt t.by_mac dst_mac with
      | Some p -> Some p
      | None -> Hashtbl.find_opt t.by_ip frame.Tcp.Segment.seg.dst_ip
    in
    match dst with
    | None -> t.dropped_unroutable <- t.dropped_unroutable + 1
    | Some p -> deliver t p frame
  end

let transmit_clean port frame =
  let t = port.fabric in
  let now = Sim.Engine.now t.engine in
  let bytes = Tcp.Segment.frame_wire_len frame in
  let ser = wire_time ~rate_gbps:port.rate_gbps ~bytes in
  let start = max now port.tx_free in
  port.tx_free <- start + ser;
  let arrival = port.tx_free + t.switch_latency in
  Sim.Engine.schedule_at t.engine arrival (fun () -> forward t frame)

let transmit port frame =
  match port.tx_fault with
  | None -> transmit_clean port frame
  | Some hook -> hook frame (transmit_clean port)

let set_tx_fault port hook = port.tx_fault <- hook
let set_rx_fault port hook = port.rx_fault <- hook

let port_mac p = p.mac
let port_ip p = p.ip
let delivered t = t.delivered
let dropped_loss t = t.dropped_loss
let dropped_queue t = t.dropped_queue
let dropped_unroutable t = t.dropped_unroutable
let ecn_marked t = t.ecn_marked
